// Quickstart for strq: build a string database, write relational-calculus
// queries with string operations (the paper's RC(S)), evaluate them with the
// exact automata engine, and let the library decide safety for you.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/signature.h"
#include "safety/query_safety.h"

namespace {

using namespace strq;

void PrintRelation(const Relation& r) {
  for (const Tuple& t : r.tuples()) {
    std::printf("  (");
    for (size_t i = 0; i < t.size(); ++i) {
      std::printf("%s'%s'", i ? ", " : "", t[i].c_str());
    }
    std::printf(")\n");
  }
}

int Run() {
  // 1. A database over the alphabet {a, b, c}: one unary relation of
  //    "words" and one binary relation of (word, tag) pairs.
  Result<Alphabet> alphabet = Alphabet::Create("abc");
  if (!alphabet.ok()) return 1;
  Database db(*alphabet);
  Status s1 = db.AddRelation(
      "Words", 1, {{"abba"}, {"cab"}, {"abc"}, {"bca"}, {"a"}});
  Status s2 = db.AddRelation(
      "Tagged", 2, {{"abba", "b"}, {"abc", "c"}, {"cab", "b"}});
  if (!s1.ok() || !s2.ok()) return 1;

  // 2. Parse a query: words that start with 'a' and end with the letter
  //    their tag names. LIKE handles the prefix; last[·] is the paper's L_a.
  Result<FormulaPtr> q = ParseFormula(
      "Words(x) & like(x, 'a%') & exists t. Tagged(x, t) & "
      "((t = 'b' & last[b](x)) | (t = 'c' & last[c](x)))");
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.status().ToString().c_str());
    return 1;
  }

  // 3. The signature checker tells you which calculus the query lives in.
  Result<StructureId> structure = MinimalStructure(*q, *alphabet);
  if (!structure.ok()) return 1;
  std::printf("query is in RC(%s)\n", StructureName(*structure));

  // 4. Evaluate with natural semantics (quantifiers over all of Σ*).
  AutomataEvaluator engine(&db);
  Result<Relation> out = engine.Evaluate(*q);
  if (!out.ok()) {
    std::printf("evaluation error: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("answers (%zu):\n", out->size());
  PrintRelation(*out);

  // 5. Safety analysis. This query is unsafe — its output is infinite —
  //    and the engine proves that instead of looping.
  Result<FormulaPtr> unsafe = ParseFormula("exists w. Words(w) & w <= x");
  if (!unsafe.ok()) return 1;
  Result<bool> is_safe = StateSafe(*unsafe, db);
  if (!is_safe.ok()) return 1;
  std::printf("\n'all extensions of stored words' safe on this db? %s\n",
              *is_safe ? "yes" : "no (infinite output, Proposition 7)");

  // 6. Prefixes of stored words are safe, and the engine enumerates them.
  Result<FormulaPtr> prefixes = ParseFormula(
      "exists w. Words(w) & x <= w & !(x = '')");
  if (!prefixes.ok()) return 1;
  Result<Relation> pre = engine.Evaluate(*prefixes);
  if (!pre.ok()) return 1;
  std::printf("non-empty prefixes of stored words: %zu strings\n",
              pre->size());
  return 0;
}

}  // namespace

int main() { return Run(); }
