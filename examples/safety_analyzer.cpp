// A static-analysis pipeline for string queries, exercising the Section 6
// machinery end to end: language placement, state-safety (Proposition 7),
// query safety for conjunctive queries (Theorem 5 / Corollary 6),
// range-restricted evaluation (Theorem 3), and translation to the safe
// algebra (Theorem 4).
//
// Run: ./build/examples/safety_analyzer ["query"]
// With no argument, analyzes a built-in battery.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/signature.h"
#include "safety/query_safety.h"
#include "safety/range_restriction.h"
#include "safety/safe_translation.h"

namespace {

using namespace strq;

void Analyze(const std::string& text, const Database& db) {
  std::printf("query: %s\n", text.c_str());
  Result<FormulaPtr> parsed = ParseFormula(text);
  if (!parsed.ok()) {
    std::printf("  parse error: %s\n\n", parsed.status().ToString().c_str());
    return;
  }
  FormulaPtr f = *parsed;

  // 1. Which calculus?
  Result<StructureId> structure = MinimalStructure(f, db.alphabet());
  if (!structure.ok()) {
    std::printf("  language error: %s\n\n",
                structure.status().ToString().c_str());
    return;
  }
  std::printf("  calculus: RC(%s)\n", StructureName(*structure));

  // 2. Query safety across ALL databases, when the query is a (union of)
  //    conjunctive queries.
  Result<bool> always_safe = QuerySafe(f, db.alphabet());
  if (always_safe.ok()) {
    std::printf("  safe on every database (CQ analysis): %s\n",
                *always_safe ? "yes" : "no");
  } else {
    std::printf("  CQ safety: not applicable (%s)\n",
                always_safe.status().ToString().c_str());
  }

  // 3. State-safety on this database.
  Result<bool> state_safe = StateSafe(f, db);
  if (!state_safe.ok()) {
    std::printf("  state-safety: %s\n\n",
                state_safe.status().ToString().c_str());
    return;
  }
  std::printf("  safe on the sample database: %s\n",
              *state_safe ? "yes" : "no");

  bool open_query = !FreeVars(f).empty();
  if (*state_safe && open_query) {
    // 4. Exact answer vs range-restricted answer (γ_k, φ).
    AutomataEvaluator engine(&db);
    Result<Relation> exact = engine.Evaluate(f);
    // The theoretical k = EffectiveK(f) makes the S_left/S_ins closure
    // families huge; cap the demo's reach (correctness is still gated by
    // the comparison against the exact answer).
    int k = std::min(EffectiveK(f), 5);
    Result<Relation> restricted =
        EvaluateRangeRestricted(f, *structure, db, k);
    if (exact.ok() && restricted.ok()) {
      std::printf("  |answer| = %zu; range-restricted (k=%d) agrees: %s\n",
                  exact->size(), k,
                  (*exact == *restricted) ? "yes" : "NO (bug!)");
    } else if (!restricted.ok()) {
      std::printf("  range-restricted (k=%d): %s\n", k,
                  restricted.status().ToString().c_str());
    }

    // 5. Algebra plan (Theorem 4/8).
    std::map<std::string, int> schema;
    for (const auto& [name, rel] : db.relations()) {
      schema[name] = rel.arity();
    }
    // The theoretical reach EffectiveK(f) is conservative and can make the
    // universe expression expensive; fall back to smaller reaches for the
    // demonstration (the cross-check against the exact answer still gates
    // correctness).
    bool translated = false;
    for (int reach : {std::min(EffectiveK(f), 4), 2}) {
      Result<RaPtr> plan =
          TranslateToAlgebra(f, *structure, schema, db.alphabet(), reach);
      if (!plan.ok()) {
        std::printf("  algebra translation: %s\n",
                    plan.status().ToString().c_str());
        translated = true;
        break;
      }
      AlgebraEvaluator::Options options;
      options.max_tuples = 5000000;
      AlgebraEvaluator algebra(&db, options);
      Result<Relation> via_algebra = algebra.Evaluate(*plan);
      if (via_algebra.ok() && exact.ok()) {
        std::printf("  RA(%s) plan (reach k=%d) computes the same answer: %s\n",
                    StructureName(*structure), reach,
                    (*via_algebra == *exact) ? "yes" : "NO (bug!)");
        translated = true;
        break;
      }
    }
    if (!translated) {
      std::printf("  RA plan evaluation exceeded budget at every reach\n");
    }
  }
  std::printf("\n");
}

int Run(int argc, char** argv) {
  Database db(Alphabet::Binary());
  Status s = db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}});
  if (!s.ok()) return 1;
  std::printf(
      "sample database: R = {'0', '01', '110'} over the binary alphabet\n\n");

  if (argc > 1) {
    Analyze(argv[1], db);
    return 0;
  }

  const std::vector<std::string> battery = {
      // Safe everywhere: prefixes of stored strings.
      "exists y. R(y) & x <= y",
      // Unsafe everywhere: extensions of stored strings.
      "exists y. R(y) & y <= x",
      // Safe everywhere: one-symbol right extension of stored strings.
      "exists y. R(y) & append[1](y) = x",
      // Unsafe: trim preimages include everything not starting with 1.
      "exists y. R(y) & trim[1](x) = y",
      // Safe: equal length to a stored string (S_len).
      "exists y. R(y) & eqlen(x, y)",
      // Database-dependent: complement within a regular language.
      "!R(x) & member(x, '1|11|111')",
      // A sentence: safety is trivial, the engine just decides truth.
      "exists x. R(x) & like(x, '%1%')",
      // Not a CQ (universal quantifier): CQ analysis bows out, Prop. 7
      // still decides the instance.
      "forall y. R(y) -> lcp(x, y) = x",
  };
  for (const std::string& q : battery) Analyze(q, db);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
