// An interactive (and scriptable) shell around the whole library: define
// relations, load tuples, run queries through the exact engine, and invoke
// the static analyses. Reads commands from stdin, one per line:
//
//   alphabet <chars>            set Σ (resets the database)
//   rel <name> <arity>          declare an empty relation
//   add <name> <v1> [v2 ...]    insert a tuple ('' stands for ε)
//   update <name> ±t [±t ...]   batch tuple writes, ONE commit: +w inserts,
//                               -w deletes; fields comma-separated ('' = ε)
//   show                        print the catalog and active domain
//   query <formula>             evaluate; prints tuples or the error
//   exists <formula>            first (shortest) witness tuple, early-exit
//   topk <k> <formula>          first k answers in shortlex order
//   explain <formula>           EXPLAIN ANALYZE: span tree + metrics
//   ask <formula>               evaluate a sentence (true/false)
//   safe <formula>              state-safety on the current database
//   cqsafe <formula>            CQ safety over ALL databases
//   lang <formula>              minimal calculus containing the formula
//   simplify <formula>          print the simplified formula
//   plan <formula> <k>          translate to algebra (reach k) and run it
//   describe <formula>          unary answer set as a regular expression
//   load <name> <path>          load a relation from a TSV file
//   save <name> <path>          save a relation to a TSV file
//   width                       active-domain width; width1 rewrites the db
//   threads <n>                 parallelism for query/explain (1 = serial)
//   budget <ms> [states] [tuples]  per-request deadline/state/tuple limits
//   refresh                     re-pin the session at the current head
//   stats                       memory gauges, cache stats, latency p50/p99
//   flight [clear|export <path>]  dump/clear/export the flight recorder
//   help / quit
//
// The shell is a thin client over the serving layer (src/serve): commands
// run in a Session pinned to an MVCC snapshot of a QueryServer's versioned
// database; mutations commit through the server and re-pin the session.
//
// Example session: ./build/examples/strq_shell < demo.strq
//
// With `--serve N` the shell becomes a miniature multi-session server:
// stdin is read in full, runs of read-only commands are dispatched to N
// concurrent worker sessions (each pinned to the same snapshot), and their
// buffered outputs are printed in submission order — byte-identical to the
// serial transcript, demonstrating snapshot isolation and in-flight dedup.

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "automata/regex_from_dfa.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "eval/explain.h"
#include "logic/parser.h"
#include "logic/signature.h"
#include "logic/simplify.h"
#include "relational/tsv.h"
#include "relational/width.h"
#include "safety/query_safety.h"
#include "safety/safe_translation.h"
#include "serve/server.h"

namespace {

using namespace strq;

class Shell {
 public:
  explicit Shell(int serve_workers = 0, int num_shards = 1)
      : serve_workers_(serve_workers), num_shards_(num_shards) {
    server_ = std::make_unique<serve::QueryServer>(Alphabet::Binary(),
                                                   MakeServerOptions());
    session_ = server_->OpenSession();
  }

  void Run() {
    if (serve_workers_ > 0) {
      RunServe();
      return;
    }
    std::string line;
    while (std::getline(std::cin, line)) {
      std::string out;
      bool keep_going = Dispatch(line, &out, session_.get());
      std::fputs(out.c_str(), stdout);
      if (!keep_going) break;
    }
  }

 private:
  // All command output funnels through a per-command buffer so `--serve`
  // workers can run concurrently and still print in submission order.
  static void Printf(std::string* out, const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
      va_end(ap2);
      return;
    }
    size_t old = out->size();
    out->resize(old + static_cast<size_t>(n) + 1);
    std::vsnprintf(&(*out)[old], static_cast<size_t>(n) + 1, fmt, ap2);
    va_end(ap2);
    out->resize(old + static_cast<size_t>(n));
  }

  static std::string Unescape(const std::string& word) {
    return word == "''" ? "" : word;
  }

  // Read-only commands that `--serve` mode may fan out to worker sessions.
  // Everything else (mutations, tracing, session control) is a barrier.
  static bool Parallelizable(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;
    return cmd == "query" || cmd == "ask" || cmd == "safe" ||
           cmd == "cqsafe" || cmd == "describe" || cmd == "lang" ||
           cmd == "simplify" || cmd == "exists" || cmd == "topk";
  }

  void RunServe() {
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(std::cin, line)) lines.push_back(line);
    size_t i = 0;
    while (i < lines.size()) {
      if (!Parallelizable(lines[i])) {
        std::string out;
        bool keep_going = Dispatch(lines[i], &out, session_.get());
        std::fputs(out.c_str(), stdout);
        if (!keep_going) return;
        ++i;
        continue;
      }
      size_t j = i;
      while (j < lines.size() && Parallelizable(lines[j])) ++j;
      size_t n = j - i;
      // Sessions open at the batch boundary, so the whole batch reads one
      // snapshot no matter what an earlier barrier committed (and a fresh
      // `alphabet` barrier means a fresh server to open them against).
      std::vector<std::unique_ptr<serve::Session>> pool;
      for (int w = 0; w < serve_workers_; ++w) {
        pool.push_back(server_->OpenSession());
        pool.back()->set_budget(budget_);
      }
      std::vector<std::string> outs(n);
      std::atomic<size_t> next{0};
      std::vector<std::thread> threads;
      threads.reserve(pool.size());
      for (auto& session : pool) {
        threads.emplace_back([&, worker = session.get()] {
          size_t k;
          while ((k = next.fetch_add(1)) < n) {
            Dispatch(lines[i + k], &outs[k], worker);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      for (const std::string& buffered : outs) {
        std::fputs(buffered.c_str(), stdout);
      }
      i = j;
    }
  }

  FormulaPtr Parse(const std::string& text, std::string* out) {
    Result<FormulaPtr> f = ParseFormula(text);
    if (!f.ok()) {
      Printf(out, "  parse error: %s\n", f.status().ToString().c_str());
      return nullptr;
    }
    return *std::move(f);
  }

  // Commits one mutation through the server and re-pins the main session so
  // the next command reads its own write. Dead snapshots' cache entries are
  // reclaimed opportunistically on every commit.
  Status Commit(const std::function<Status(Database&)>& mutate) {
    Status s = server_->versioned_db().Update(mutate);
    session_->Refresh();
    server_->ReclaimDeadSnapshots();
    return s;
  }

  bool Dispatch(const std::string& line, std::string* out,
                serve::Session* session) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;
    std::string rest;
    std::getline(in, rest);
    if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);

    // \explain is the SQL-flavored spelling; both forms are accepted.
    if (cmd == "\\explain") cmd = "explain";

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Printf(out,
             "  commands: alphabet rel add update load save show query "
             "exists topk explain ask safe cqsafe lang simplify plan "
             "describe width threads budget refresh stats flight help "
             "quit\n");
      Printf(out,
             "  exists <formula> / topk <k> <formula>: early-exit query "
             "modes over the lazy\n"
             "  on-the-fly product — only the product states the traversal "
             "touches are created\n"
             "  (docs/LAZY.md); answers match query's tuples\n");
      Printf(out,
             "  update <rel> +t -t ...: batch tuple writes committed as ONE "
             "revision (+ inserts, - deletes; fields comma-separated, '' = "
             "ε); the published delta patches cached automata incrementally "
             "(docs/INCREMENTAL.md)\n");
      Printf(out,
             "  explain (or \\explain) <formula>: compile with tracing on "
             "and print the chosen plan\n"
             "  (cost estimates per node), the span tree, automaton sizes "
             "and metric counters\n"
             "  (docs/OBSERVABILITY.md); repeated explains show plan-cache "
             "hits\n");
      Printf(out,
             "  threads <n>: compile independent subplans on n threads "
             "(explain then shows @tN worker spans)\n"
             "  budget <ms> [states] [tuples]: per-request deadline, product"
             "-state and answer-tuple caps (budget off clears)\n"
             "  refresh: re-pin this session at the newest committed "
             "revision (docs/SERVING.md)\n"
             "  stats: retained bytes per structure, cache hit rates, "
             "latency histograms\n"
             "  flight: dump recent spans; flight clear; flight export "
             "<path> writes Chrome trace JSON for Perfetto\n");
      return true;
    }
    if (cmd == "threads") {
      std::istringstream args(rest);
      int n = 0;
      if (!(args >> n) || n < 0) {
        Printf(out, "  usage: threads <n>  (0 = hardware, 1 = serial)\n");
        return true;
      }
      parallel_ = ParallelOptions{n};
      session_->set_parallel_options(parallel_);
      Printf(out, "  parallelism: %d effective thread(s)\n",
             parallel_.EffectiveThreads());
      return true;
    }
    if (cmd == "budget") {
      std::istringstream args(rest);
      std::string first;
      args >> first;
      if (first == "off" || first.empty()) {
        budget_ = serve::SessionBudget{};
        session_->set_budget(budget_);
        Printf(out, "  budget cleared\n");
        return true;
      }
      long long ms = -1;
      try {
        ms = std::stoll(first);
      } catch (...) {
      }
      if (ms < 0) {
        Printf(out, "  usage: budget <timeout_ms> [max_product_states] "
                    "[max_tuples] | budget off\n");
        return true;
      }
      serve::SessionBudget budget;
      budget.timeout = std::chrono::milliseconds(ms);
      long long states = 0;
      long long tuples = 0;
      if (args >> states && states > 0) {
        budget.max_product_states = static_cast<int>(states);
      }
      if (args >> tuples && tuples > 0) {
        budget.max_answer_tuples = static_cast<size_t>(tuples);
      }
      budget_ = budget;
      session_->set_budget(budget_);
      Printf(out, "  budget: timeout=%lldms max_product_states=%lld "
                  "max_tuples=%lld (0 = engine default)\n",
             ms, states, tuples);
      return true;
    }
    if (cmd == "refresh") {
      session_->Refresh();
      server_->ReclaimDeadSnapshots();
      Printf(out, "  pinned at revision %lld\n",
             static_cast<long long>(session_->revision()));
      return true;
    }
    if (cmd == "stats") {
      PrintStats(out);
      return true;
    }
    if (cmd == "flight") {
      std::istringstream args(rest);
      std::string sub;
      args >> sub;
      obs::FlightRecorder& flight = obs::FlightRecorder::Global();
      if (sub == "clear") {
        flight.Clear();
        Printf(out, "  flight recorder cleared\n");
      } else if (sub == "export") {
        std::string path;
        if (!(args >> path)) {
          Printf(out, "  usage: flight export <path>\n");
          return true;
        }
        std::vector<obs::SpanRecord> spans = flight.Snapshot();
        std::ofstream file(path);
        if (!file) {
          Printf(out, "  cannot write %s\n", path.c_str());
          return true;
        }
        file << obs::ChromeTrace(spans).Dump(2) << "\n";
        Printf(out,
               "  %zu span(s) exported to %s (load in ui.perfetto.dev or "
               "chrome://tracing)\n",
               spans.size(), path.c_str());
      } else if (sub.empty()) {
        std::vector<obs::SpanRecord> spans = flight.Snapshot();
        if (spans.empty()) {
          Printf(out,
                 "  flight recorder empty (spans land here while tracing is "
                 "on — run explain, or STRQ_OBS=1)\n");
        } else {
          Printf(out, "%s", obs::PrettyFlight(spans).c_str());
          Printf(out, "  %zu span(s) retained, %llu recorded in total\n",
                 spans.size(),
                 static_cast<unsigned long long>(flight.total_recorded()));
        }
      } else {
        Printf(out, "  usage: flight [clear|export <path>]\n");
      }
      return true;
    }
    if (cmd == "alphabet") {
      Result<Alphabet> a = Alphabet::Create(rest);
      if (!a.ok()) {
        Printf(out, "  %s\n", a.status().ToString().c_str());
        return true;
      }
      // Atoms are alphabet-specific; a new Σ means a new server (fresh
      // AtomCache, fresh planner, empty versioned database) and a fresh
      // session pinned to it. The shard count carries over.
      server_ = std::make_unique<serve::QueryServer>(*a, MakeServerOptions());
      session_ = server_->OpenSession();
      session_->set_parallel_options(parallel_);
      session_->set_budget(budget_);
      Printf(out, "  Σ = \"%s\" (database reset)\n", rest.c_str());
      return true;
    }
    if (cmd == "rel") {
      std::istringstream args(rest);
      std::string name;
      int arity;
      if (!(args >> name >> arity)) {
        Printf(out, "  usage: rel <name> <arity>\n");
        return true;
      }
      Status s = Commit([&](Database& db) {
        return db.AddRelation(name, Relation::Empty(arity));
      });
      Printf(out, "  %s\n", s.ok() ? "ok" : s.ToString().c_str());
      return true;
    }
    if (cmd == "add") {
      std::istringstream args(rest);
      std::string name;
      args >> name;
      if (session_->snapshot().db().Find(name) == nullptr) {
        Printf(out, "  unknown relation %s\n", name.c_str());
        return true;
      }
      Tuple t;
      std::string w;
      while (args >> w) t.push_back(Unescape(w));
      // A tuple-level commit (not a whole-relation replace): the published
      // delta is replayable, so downstream caches patch instead of rebuild.
      Result<CommitDelta> d =
          server_->CommitDeltas({TupleDelta{name, std::move(t), true}});
      session_->Refresh();
      Printf(out, "  %s\n", d.ok() ? "ok" : d.status().ToString().c_str());
      return true;
    }
    if (cmd == "update") {
      std::istringstream args(rest);
      std::string name;
      args >> name;
      std::vector<TupleDelta> ops;
      std::string tok;
      bool bad = name.empty();
      while (!bad && args >> tok) {
        if (tok.size() < 2 || (tok[0] != '+' && tok[0] != '-')) {
          bad = true;
          break;
        }
        TupleDelta op;
        op.relation = name;
        op.insert = tok[0] == '+';
        std::string fields = tok.substr(1);
        size_t start = 0;
        while (true) {
          size_t comma = fields.find(',', start);
          op.tuple.push_back(Unescape(
              fields.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start)));
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        ops.push_back(std::move(op));
      }
      if (bad || ops.empty()) {
        Printf(out, "  usage: update <rel> +t -t ...  (fields "
                    "comma-separated, '' = ε)\n");
        return true;
      }
      // The whole batch is ONE copy-modify-publish commit: one revision
      // edge, one published delta, one cache-patch pass downstream.
      Result<CommitDelta> d = server_->CommitDeltas(ops);
      session_->Refresh();
      if (!d.ok()) {
        Printf(out, "  %s\n", d.status().ToString().c_str());
        return true;
      }
      if (d->ops.empty()) {
        Printf(out, "  no-op (nothing changed; no revision published)\n");
      } else {
        size_t inserts = 0;
        for (const TupleDelta& op : d->ops) inserts += op.insert ? 1 : 0;
        Printf(out,
               "  committed %zu effective op(s) (%zu insert, %zu delete) in "
               "one revision\n",
               d->ops.size(), inserts, d->ops.size() - inserts);
      }
      return true;
    }
    if (cmd == "show") {
      const Database& db = session_->snapshot().db();
      for (const auto& [name, rel] : db.relations()) {
        Printf(out, "  %s/%d: %zu tuples\n", name.c_str(), rel.arity(),
               rel.size());
      }
      Printf(out, "  adom:");
      for (const std::string& s : db.ActiveDomain()) {
        Printf(out, " '%s'", s.c_str());
      }
      Printf(out, "\n");
      return true;
    }
    if (cmd == "load" || cmd == "save") {
      std::istringstream args(rest);
      std::string name;
      std::string path;
      if (!(args >> name >> path)) {
        Printf(out, "  usage: %s <name> <path>\n", cmd.c_str());
        return true;
      }
      Status s = cmd == "load"
                     ? Commit([&](Database& db) {
                         return LoadTsvRelation(db, name, path);
                       })
                     : SaveTsvRelation(session_->snapshot().db(), name, path);
      Printf(out, "  %s\n", s.ok() ? "ok" : s.ToString().c_str());
      return true;
    }
    if (cmd == "width") {
      Printf(out, "  width(adom) = %d\n",
             AdomWidth(session_->snapshot().db()));
      Result<WidthOneResult> w1 = MakeWidthOne(session_->snapshot().db());
      if (w1.ok()) {
        Commit([&](Database& db) {
          db = std::move(w1->database);
          return Status::Ok();
        });
        Printf(out, "  rewritten to width-1 (chain of 0^i)\n");
      } else {
        Printf(out, "  width-1 rewrite: %s\n",
               w1.status().ToString().c_str());
      }
      return true;
    }

    // `topk` carries a leading answer count; strip it before parsing.
    size_t topk_count = 10;
    if (cmd == "topk") {
      std::istringstream args(rest);
      long long n = 0;
      if (!(args >> n) || n <= 0) {
        Printf(out, "  usage: topk <k> <formula>\n");
        return true;
      }
      topk_count = static_cast<size_t>(n);
      std::getline(args, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
    }

    // `plan` may carry a trailing reach number; strip it before parsing.
    int plan_reach = 2;
    if (cmd == "plan") {
      size_t pos = rest.find_last_of(' ');
      if (pos != std::string::npos) {
        const std::string tail = rest.substr(pos + 1);
        bool numeric = !tail.empty();
        for (char c : tail) numeric = numeric && c >= '0' && c <= '9';
        if (numeric) {
          plan_reach = 0;
          for (char c : tail) plan_reach = plan_reach * 10 + (c - '0');
          rest = rest.substr(0, pos);
        }
      }
    }

    FormulaPtr f = Parse(rest, out);
    if (f == nullptr) return true;
    // Every command reads this session's pinned snapshot; all sessions share
    // the server's AtomCache (and its AutomatonStore) and planner, so atoms,
    // patterns, table tries and plans compiled by one query warm all later
    // ones — across sessions.
    const Database& db = session->snapshot().db();

    if (cmd == "describe") {
      // Works for safe AND unsafe unary queries: the answer set as a regex.
      Result<TrackAutomaton> rel = session->Compile(f);
      if (!rel.ok()) {
        Printf(out, "  %s\n", rel.status().ToString().c_str());
        return true;
      }
      Result<Dfa> lang = rel->UnaryLanguage();
      if (!lang.ok()) {
        Printf(out, "  %s\n", lang.status().ToString().c_str());
        return true;
      }
      Result<std::string> described = DescribeLanguage(*lang, db.alphabet());
      if (!described.ok()) {
        Printf(out, "  %s\n", described.status().ToString().c_str());
        return true;
      }
      Printf(out, "  answers = %s  (%s)\n", described->c_str(),
             rel->IsFinite() ? "finite" : "infinite");
      return true;
    }
    if (cmd == "query") {
      Result<Relation> result = session->Query(f);
      if (!result.ok()) {
        Printf(out, "  %s\n", result.status().ToString().c_str());
        return true;
      }
      Printf(out, "  %zu tuple(s) over (", result->size());
      std::vector<std::string> cols = AutomataEvaluator::FreeVarOrder(f);
      for (size_t i = 0; i < cols.size(); ++i) {
        Printf(out, "%s%s", i ? ", " : "", cols[i].c_str());
      }
      Printf(out, ")\n");
      for (const Tuple& t : result->tuples()) {
        Printf(out, "   ");
        for (const std::string& v : t) Printf(out, " '%s'", v.c_str());
        Printf(out, "\n");
      }
    } else if (cmd == "exists") {
      Result<std::optional<std::vector<std::string>>> witness =
          session->ExistsWitness(f);
      if (!witness.ok()) {
        Printf(out, "  %s\n", witness.status().ToString().c_str());
        return true;
      }
      if (!witness->has_value()) {
        Printf(out, "  no witness (empty answer)\n");
      } else if ((*witness)->empty()) {
        Printf(out, "  witness: ()\n");
      } else {
        Printf(out, "  witness:");
        for (const std::string& v : **witness) Printf(out, " '%s'", v.c_str());
        Printf(out, "\n");
      }
    } else if (cmd == "topk") {
      Result<std::vector<std::vector<std::string>>> result =
          session->TopK(f, topk_count);
      if (!result.ok()) {
        Printf(out, "  %s\n", result.status().ToString().c_str());
        return true;
      }
      Printf(out, "  %zu tuple(s), shortlex over (", result->size());
      std::vector<std::string> cols = AutomataEvaluator::FreeVarOrder(f);
      for (size_t i = 0; i < cols.size(); ++i) {
        Printf(out, "%s%s", i ? ", " : "", cols[i].c_str());
      }
      Printf(out, ")\n");
      for (const std::vector<std::string>& t : *result) {
        Printf(out, "   ");
        for (const std::string& v : t) Printf(out, " '%s'", v.c_str());
        Printf(out, "\n");
      }
    } else if (cmd == "explain") {
      Result<ExplainAnalyzeResult> result =
          ExplainAnalyze(&db, f, /*max_tuples=*/1000000,
                         server_->atom_cache(), server_->planner(), parallel_);
      if (!result.ok()) {
        Printf(out, "  %s\n", result.status().ToString().c_str());
        return true;
      }
      Printf(out, "%s", result->Pretty().c_str());
    } else if (cmd == "ask") {
      Result<bool> v = session->QuerySentence(f);
      Printf(out, "  %s\n", v.ok() ? (*v ? "true" : "false")
                                   : v.status().ToString().c_str());
    } else if (cmd == "safe") {
      Result<bool> v = StateSafe(f, db, server_->atom_cache());
      Printf(out, "  %s\n",
             v.ok() ? (*v ? "safe on this database"
                          : "UNSAFE on this database (infinite output)")
                    : v.status().ToString().c_str());
    } else if (cmd == "cqsafe") {
      Result<bool> v = QuerySafe(f, db.alphabet(), server_->atom_cache());
      Printf(out, "  %s\n", v.ok() ? (*v ? "safe on every database"
                                         : "unsafe on some database")
                                   : v.status().ToString().c_str());
    } else if (cmd == "lang") {
      Result<StructureId> s = MinimalStructure(f, db.alphabet());
      Printf(out, "  RC(%s)\n", s.ok() ? StructureName(*s)
                                       : s.status().ToString().c_str());
    } else if (cmd == "simplify") {
      Printf(out, "  %s\n", ToString(Simplify(f)).c_str());
    } else if (cmd == "plan") {
      int reach = plan_reach;
      Result<StructureId> s = MinimalStructure(f, db.alphabet());
      if (!s.ok()) {
        Printf(out, "  %s\n", s.status().ToString().c_str());
        return true;
      }
      std::map<std::string, int> schema;
      for (const auto& [name, rel] : db.relations()) {
        schema[name] = rel.arity();
      }
      Result<RaPtr> plan =
          TranslateToAlgebra(f, *s, schema, db.alphabet(), reach);
      if (!plan.ok()) {
        Printf(out, "  %s\n", plan.status().ToString().c_str());
        return true;
      }
      AlgebraEvaluator algebra(&db, AlgebraEvaluator::Options(),
                               server_->atom_cache());
      algebra.set_planner(server_->planner());
      Result<Relation> result = algebra.Evaluate(*plan);
      Printf(out, "  RA(%s) plan, reach %d: %s (%zu tuples)\n",
             StructureName(*s), reach,
             result.ok() ? "evaluated" : result.status().ToString().c_str(),
             result.ok() ? result->size() : 0);
    } else {
      Printf(out, "  unknown command '%s' (try help)\n", cmd.c_str());
    }
    return true;
  }

  void PrintStats(std::string* out) {
    const std::shared_ptr<AtomCache>& cache = server_->atom_cache();
    // Retained bytes: the process-wide gauges first (they cover every store
    // and cache in the process), then the shared structures' own stats.
    Printf(out, "  memory (process-wide gauges):\n");
    for (const auto& [name, bytes] : obs::MemSnapshot()) {
      Printf(out, "    %-24s %lld bytes\n", name.c_str(),
             static_cast<long long>(bytes));
    }
    const AutomatonStore::Stats store = cache->store().stats();
    Printf(out,
           "  store: %zu unique / %zu computed entries, "
           "%lld/%lld unique hits, %lld/%lld op hits, %lld bytes\n",
           cache->store().unique_size(), cache->store().computed_size(),
           static_cast<long long>(store.unique_hits),
           static_cast<long long>(store.unique_hits + store.unique_misses),
           static_cast<long long>(store.op_hits),
           static_cast<long long>(store.op_hits + store.op_misses),
           static_cast<long long>(store.bytes));
    const AtomCache::Stats atoms = cache->stats();
    Printf(out,
           "  atom cache: %zu entries, %lld/%lld atom hits, %lld/%lld "
           "pattern hits, %lld bytes\n",
           cache->size(), static_cast<long long>(atoms.hits),
           static_cast<long long>(atoms.hits + atoms.misses),
           static_cast<long long>(atoms.pattern_hits),
           static_cast<long long>(atoms.pattern_hits + atoms.pattern_misses),
           static_cast<long long>(atoms.bytes));
    const plan::Planner::Stats plans = server_->planner()->stats();
    Printf(out,
           "  plan cache: %lld/%lld hits, %lld rules fired, %lld bytes\n",
           static_cast<long long>(plans.cache_hits),
           static_cast<long long>(plans.cache_hits + plans.cache_misses),
           static_cast<long long>(plans.rules_fired),
           static_cast<long long>(plans.bytes));
    const serve::QueryServer::Stats serving = server_->stats();
    Printf(out,
           "  serving: %lld session(s), %lld request(s), %lld dedup hit(s), "
           "%lld admission reject(s), %lld budget reject(s), revision %lld\n",
           static_cast<long long>(serving.sessions),
           static_cast<long long>(serving.requests),
           static_cast<long long>(serving.inflight_dedup_hits),
           static_cast<long long>(serving.admission_rejects),
           static_cast<long long>(serving.budget_rejects),
           static_cast<long long>(session_->revision()));
    Printf(out,
           "  snapshots: %lld live pin(s), %lld cache entr(y/ies) reclaimed, "
           "%lld atom-cache eviction(s)\n",
           static_cast<long long>(serving.live_pins),
           static_cast<long long>(serving.entries_reclaimed),
           static_cast<long long>(atoms.evictions));
    if (server_->incremental() != nullptr) {
      const incr::Stats inc = server_->incremental()->stats();
      Printf(out,
             "  incremental: %lld patch(es) (%lld answer-level), %lld "
             "recompile(s), %lld compaction(s), %lld unchanged hit(s)\n",
             static_cast<long long>(inc.patches),
             static_cast<long long>(inc.answer_patches),
             static_cast<long long>(inc.recompiles),
             static_cast<long long>(inc.compactions),
             static_cast<long long>(inc.unchanged_hits));
    }
    std::map<std::string, obs::Histogram::Snapshot> hists =
        obs::MetricsRegistry::Global().HistSnapshot();
    if (hists.empty()) {
      Printf(out,
             "  latency: no samples yet (histograms fill while tracing is "
             "on — run explain, or STRQ_OBS=1)\n");
    } else {
      Printf(out, "  latency:\n");
      for (const auto& [name, h] : hists) {
        Printf(out,
               "    %-24s n=%-6lld p50=%.0fns p90=%.0fns p99=%.0fns "
               "max=%lldns\n",
               name.c_str(), static_cast<long long>(h.count), h.p50, h.p90,
               h.p99, static_cast<long long>(h.max));
      }
    }
    obs::FlightRecorder& flight = obs::FlightRecorder::Global();
    Printf(out, "  flight: %zu/%zu span(s) retained, %llu recorded, %s\n",
           flight.size(), flight.capacity(),
           static_cast<unsigned long long>(flight.total_recorded()),
           flight.armed() ? "armed" : "disarmed");
    if (server_->sharded() != nullptr) {
      // One row per shard, so partition skew (tuples), per-shard store
      // residency and pinned shard snapshots are visible without a bench.
      Printf(out, "  shards (%d, partition track %d):\n",
             server_->sharded()->num_shards(),
             server_->sharded()->options().partition_track);
      std::vector<shard::ShardedDatabase::ShardStats> shard_stats =
          server_->sharded()->stats();
      for (size_t i = 0; i < shard_stats.size(); ++i) {
        const shard::ShardedDatabase::ShardStats& s = shard_stats[i];
        Printf(out,
               "    shard %-2zu %lld tuple(s), %lld store byte(s), %lld live "
               "pin(s), %lld commit(s), %lld reseed(s)\n",
               i, static_cast<long long>(s.tuples),
               static_cast<long long>(s.store_bytes),
               static_cast<long long>(s.live_pins),
               static_cast<long long>(s.commits),
               static_cast<long long>(s.reseeds));
      }
    }
  }

  serve::ServerOptions MakeServerOptions() const {
    serve::ServerOptions options;
    options.num_shards = num_shards_;
    return options;
  }

  int serve_workers_;
  int num_shards_ = 1;
  std::unique_ptr<serve::QueryServer> server_;
  std::unique_ptr<serve::Session> session_;
  ParallelOptions parallel_{1};
  serve::SessionBudget budget_;
};

}  // namespace

int main(int argc, char** argv) {
  int serve_workers = 0;
  int num_shards = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--serve" && i + 1 < argc) {
      serve_workers = std::atoi(argv[++i]);
      if (serve_workers < 1) {
        std::fprintf(stderr,
                     "usage: strq_shell [--serve <workers>] [--shards <n>]\n");
        return 2;
      }
    } else if (arg == "--shards" && i + 1 < argc) {
      num_shards = std::atoi(argv[++i]);
      if (num_shards < 1) {
        std::fprintf(stderr,
                     "usage: strq_shell [--serve <workers>] [--shards <n>]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: strq_shell [--serve <workers>] [--shards <n>]\n");
      return 2;
    }
  }
  Shell shell(serve_workers, num_shards);
  shell.Run();
  return 0;
}
