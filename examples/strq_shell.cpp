// An interactive (and scriptable) shell around the whole library: define
// relations, load tuples, run queries through the exact engine, and invoke
// the static analyses. Reads commands from stdin, one per line:
//
//   alphabet <chars>            set Σ (resets the database)
//   rel <name> <arity>          declare an empty relation
//   add <name> <v1> [v2 ...]    insert a tuple ('' stands for ε)
//   show                        print the catalog and active domain
//   query <formula>             evaluate; prints tuples or the error
//   explain <formula>           EXPLAIN ANALYZE: span tree + metrics
//   ask <formula>               evaluate a sentence (true/false)
//   safe <formula>              state-safety on the current database
//   cqsafe <formula>            CQ safety over ALL databases
//   lang <formula>              minimal calculus containing the formula
//   simplify <formula>          print the simplified formula
//   plan <formula> <k>          translate to algebra (reach k) and run it
//   describe <formula>          unary answer set as a regular expression
//   load <name> <path>          load a relation from a TSV file
//   save <name> <path>          save a relation to a TSV file
//   width                       active-domain width; width1 rewrites the db
//   threads <n>                 parallelism for query/explain (1 = serial)
//   stats                       memory gauges, cache stats, latency p50/p99
//   flight [clear|export <path>]  dump/clear/export the flight recorder
//   help / quit
//
// Example session: ./build/examples/strq_shell < demo.strq

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "automata/regex_from_dfa.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "eval/explain.h"
#include "logic/parser.h"
#include "logic/signature.h"
#include "logic/simplify.h"
#include "relational/tsv.h"
#include "relational/width.h"
#include "safety/query_safety.h"
#include "safety/safe_translation.h"

namespace {

using namespace strq;

class Shell {
 public:
  Shell()
      : db_(Alphabet::Binary()),
        cache_(std::make_shared<AtomCache>(db_.alphabet())),
        planner_(std::make_shared<plan::Planner>()) {}

  void Run() {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

 private:
  static std::string Unescape(const std::string& word) {
    return word == "''" ? "" : word;
  }

  FormulaPtr Parse(const std::string& text) {
    Result<FormulaPtr> f = ParseFormula(text);
    if (!f.ok()) {
      std::printf("  parse error: %s\n", f.status().ToString().c_str());
      return nullptr;
    }
    return *std::move(f);
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;
    std::string rest;
    std::getline(in, rest);
    if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);

    // \explain is the SQL-flavored spelling; both forms are accepted.
    if (cmd == "\\explain") cmd = "explain";

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "  commands: alphabet rel add load save show query explain ask "
          "safe cqsafe lang simplify plan describe width threads stats "
          "flight help quit\n");
      std::printf(
          "  explain (or \\explain) <formula>: compile with tracing on and "
          "print the chosen plan\n"
          "  (cost estimates per node), the span tree, automaton sizes and "
          "metric counters\n"
          "  (docs/OBSERVABILITY.md); repeated explains show plan-cache "
          "hits\n");
      std::printf(
          "  threads <n>: compile independent subplans on n threads "
          "(explain then shows @tN worker spans)\n"
          "  stats: retained bytes per structure, cache hit rates, latency "
          "histograms\n"
          "  flight: dump recent spans; flight clear; flight export "
          "<path> writes Chrome trace JSON for Perfetto\n");
      return true;
    }
    if (cmd == "threads") {
      std::istringstream args(rest);
      int n = 0;
      if (!(args >> n) || n < 0) {
        std::printf("  usage: threads <n>  (0 = hardware, 1 = serial)\n");
        return true;
      }
      parallel_ = ParallelOptions{n};
      std::printf("  parallelism: %d effective thread(s)\n",
                  parallel_.EffectiveThreads());
      return true;
    }
    if (cmd == "stats") {
      PrintStats();
      return true;
    }
    if (cmd == "flight") {
      std::istringstream args(rest);
      std::string sub;
      args >> sub;
      obs::FlightRecorder& flight = obs::FlightRecorder::Global();
      if (sub == "clear") {
        flight.Clear();
        std::printf("  flight recorder cleared\n");
      } else if (sub == "export") {
        std::string path;
        if (!(args >> path)) {
          std::printf("  usage: flight export <path>\n");
          return true;
        }
        std::vector<obs::SpanRecord> spans = flight.Snapshot();
        std::ofstream out(path);
        if (!out) {
          std::printf("  cannot write %s\n", path.c_str());
          return true;
        }
        out << obs::ChromeTrace(spans).Dump(2) << "\n";
        std::printf(
            "  %zu span(s) exported to %s (load in ui.perfetto.dev or "
            "chrome://tracing)\n",
            spans.size(), path.c_str());
      } else if (sub.empty()) {
        std::vector<obs::SpanRecord> spans = flight.Snapshot();
        if (spans.empty()) {
          std::printf(
              "  flight recorder empty (spans land here while tracing is "
              "on — run explain, or STRQ_OBS=1)\n");
        } else {
          std::printf("%s", obs::PrettyFlight(spans).c_str());
          std::printf("  %zu span(s) retained, %llu recorded in total\n",
                      spans.size(),
                      static_cast<unsigned long long>(
                          flight.total_recorded()));
        }
      } else {
        std::printf("  usage: flight [clear|export <path>]\n");
      }
      return true;
    }
    if (cmd == "alphabet") {
      Result<Alphabet> a = Alphabet::Create(rest);
      if (!a.ok()) {
        std::printf("  %s\n", a.status().ToString().c_str());
        return true;
      }
      db_ = Database(*a);
      // Atoms are alphabet-specific; start a fresh cache for the new Σ.
      // Plan-cost estimates peeked at the old cache, so the planner restarts
      // too (its plan cache is keyed on the database revision anyway).
      cache_ = std::make_shared<AtomCache>(db_.alphabet());
      planner_ = std::make_shared<plan::Planner>();
      std::printf("  Σ = \"%s\" (database reset)\n", rest.c_str());
      return true;
    }
    if (cmd == "rel") {
      std::istringstream args(rest);
      std::string name;
      int arity;
      if (!(args >> name >> arity)) {
        std::printf("  usage: rel <name> <arity>\n");
        return true;
      }
      Status s = db_.AddRelation(name, Relation::Empty(arity));
      std::printf("  %s\n", s.ok() ? "ok" : s.ToString().c_str());
      return true;
    }
    if (cmd == "add") {
      std::istringstream args(rest);
      std::string name;
      args >> name;
      const Relation* rel = db_.Find(name);
      if (rel == nullptr) {
        std::printf("  unknown relation %s\n", name.c_str());
        return true;
      }
      Tuple t;
      std::string w;
      while (args >> w) t.push_back(Unescape(w));
      std::vector<Tuple> tuples = rel->tuples();
      tuples.push_back(std::move(t));
      Status s = db_.AddRelation(name, rel->arity(), std::move(tuples));
      std::printf("  %s\n", s.ok() ? "ok" : s.ToString().c_str());
      return true;
    }
    if (cmd == "show") {
      for (const auto& [name, rel] : db_.relations()) {
        std::printf("  %s/%d: %zu tuples\n", name.c_str(), rel.arity(),
                    rel.size());
      }
      std::printf("  adom:");
      for (const std::string& s : db_.ActiveDomain()) {
        std::printf(" '%s'", s.c_str());
      }
      std::printf("\n");
      return true;
    }
    if (cmd == "load" || cmd == "save") {
      std::istringstream args(rest);
      std::string name;
      std::string path;
      if (!(args >> name >> path)) {
        std::printf("  usage: %s <name> <path>\n", cmd.c_str());
        return true;
      }
      Status s = cmd == "load" ? LoadTsvRelation(db_, name, path)
                               : SaveTsvRelation(db_, name, path);
      std::printf("  %s\n", s.ok() ? "ok" : s.ToString().c_str());
      return true;
    }
    if (cmd == "width") {
      std::printf("  width(adom) = %d\n", AdomWidth(db_));
      Result<WidthOneResult> w1 = MakeWidthOne(db_);
      if (w1.ok()) {
        db_ = std::move(w1->database);
        std::printf("  rewritten to width-1 (chain of 0^i)\n");
      } else {
        std::printf("  width-1 rewrite: %s\n",
                    w1.status().ToString().c_str());
      }
      return true;
    }

    // `plan` may carry a trailing reach number; strip it before parsing.
    int plan_reach = 2;
    if (cmd == "plan") {
      size_t pos = rest.find_last_of(' ');
      if (pos != std::string::npos) {
        const std::string tail = rest.substr(pos + 1);
        bool numeric = !tail.empty();
        for (char c : tail) numeric = numeric && c >= '0' && c <= '9';
        if (numeric) {
          plan_reach = 0;
          for (char c : tail) plan_reach = plan_reach * 10 + (c - '0');
          rest = rest.substr(0, pos);
        }
      }
    }

    FormulaPtr f = Parse(rest);
    if (f == nullptr) return true;
    // Every command shares one AtomCache (and its AutomatonStore), so atoms,
    // patterns and table tries compiled by one query warm all later ones.
    // The shared planner does the same for plans: re-issued queries skip the
    // rewrite pipeline via the plan cache.
    AutomataEvaluator engine(&db_, cache_, planner_);
    engine.set_parallel_options(parallel_);

    if (cmd == "describe") {
      // Works for safe AND unsafe unary queries: the answer set as a regex.
      Result<TrackAutomaton> rel = engine.Compile(f);
      if (!rel.ok()) {
        std::printf("  %s\n", rel.status().ToString().c_str());
        return true;
      }
      Result<Dfa> lang = rel->UnaryLanguage();
      if (!lang.ok()) {
        std::printf("  %s\n", lang.status().ToString().c_str());
        return true;
      }
      Result<std::string> described = DescribeLanguage(*lang, db_.alphabet());
      if (!described.ok()) {
        std::printf("  %s\n", described.status().ToString().c_str());
        return true;
      }
      std::printf("  answers = %s  (%s)\n", described->c_str(),
                  rel->IsFinite() ? "finite" : "infinite");
      return true;
    }
    if (cmd == "query") {
      Result<Relation> out = engine.Evaluate(f);
      if (!out.ok()) {
        std::printf("  %s\n", out.status().ToString().c_str());
        return true;
      }
      std::printf("  %zu tuple(s) over (", out->size());
      std::vector<std::string> cols = AutomataEvaluator::FreeVarOrder(f);
      for (size_t i = 0; i < cols.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", cols[i].c_str());
      }
      std::printf(")\n");
      for (const Tuple& t : out->tuples()) {
        std::printf("   ");
        for (const std::string& v : t) std::printf(" '%s'", v.c_str());
        std::printf("\n");
      }
    } else if (cmd == "explain") {
      Result<ExplainAnalyzeResult> out = ExplainAnalyze(
          &db_, f, /*max_tuples=*/1000000, cache_, planner_, parallel_);
      if (!out.ok()) {
        std::printf("  %s\n", out.status().ToString().c_str());
        return true;
      }
      std::printf("%s", out->Pretty().c_str());
    } else if (cmd == "ask") {
      Result<bool> v = engine.EvaluateSentence(f);
      std::printf("  %s\n", v.ok() ? (*v ? "true" : "false")
                                   : v.status().ToString().c_str());
    } else if (cmd == "safe") {
      Result<bool> v = StateSafe(f, db_, cache_);
      std::printf("  %s\n",
                  v.ok() ? (*v ? "safe on this database"
                               : "UNSAFE on this database (infinite output)")
                         : v.status().ToString().c_str());
    } else if (cmd == "cqsafe") {
      Result<bool> v = QuerySafe(f, db_.alphabet(), cache_);
      std::printf("  %s\n", v.ok() ? (*v ? "safe on every database"
                                         : "unsafe on some database")
                                   : v.status().ToString().c_str());
    } else if (cmd == "lang") {
      Result<StructureId> s = MinimalStructure(f, db_.alphabet());
      std::printf("  RC(%s)\n", s.ok() ? StructureName(*s)
                                       : s.status().ToString().c_str());
    } else if (cmd == "simplify") {
      std::printf("  %s\n", ToString(Simplify(f)).c_str());
    } else if (cmd == "plan") {
      int reach = plan_reach;
      Result<StructureId> s = MinimalStructure(f, db_.alphabet());
      if (!s.ok()) {
        std::printf("  %s\n", s.status().ToString().c_str());
        return true;
      }
      std::map<std::string, int> schema;
      for (const auto& [name, rel] : db_.relations()) {
        schema[name] = rel.arity();
      }
      Result<RaPtr> plan =
          TranslateToAlgebra(f, *s, schema, db_.alphabet(), reach);
      if (!plan.ok()) {
        std::printf("  %s\n", plan.status().ToString().c_str());
        return true;
      }
      AlgebraEvaluator algebra(&db_, AlgebraEvaluator::Options(), cache_);
      algebra.set_planner(planner_);
      Result<Relation> out = algebra.Evaluate(*plan);
      std::printf("  RA(%s) plan, reach %d: %s (%zu tuples)\n",
                  StructureName(*s), reach,
                  out.ok() ? "evaluated" : out.status().ToString().c_str(),
                  out.ok() ? out->size() : 0);
    } else {
      std::printf("  unknown command '%s' (try help)\n", cmd.c_str());
    }
    return true;
  }

  void PrintStats() {
    // Retained bytes: the process-wide gauges first (they cover every store
    // and cache in the process), then the shared structures' own stats.
    std::printf("  memory (process-wide gauges):\n");
    for (const auto& [name, bytes] : obs::MemSnapshot()) {
      std::printf("    %-24s %lld bytes\n", name.c_str(),
                  static_cast<long long>(bytes));
    }
    const AutomatonStore::Stats store = cache_->store().stats();
    std::printf(
        "  store: %zu unique / %zu computed entries, "
        "%lld/%lld unique hits, %lld/%lld op hits, %lld bytes\n",
        cache_->store().unique_size(), cache_->store().computed_size(),
        static_cast<long long>(store.unique_hits),
        static_cast<long long>(store.unique_hits + store.unique_misses),
        static_cast<long long>(store.op_hits),
        static_cast<long long>(store.op_hits + store.op_misses),
        static_cast<long long>(store.bytes));
    const AtomCache::Stats atoms = cache_->stats();
    std::printf(
        "  atom cache: %zu entries, %lld/%lld atom hits, %lld/%lld pattern "
        "hits, %lld bytes\n",
        cache_->size(), static_cast<long long>(atoms.hits),
        static_cast<long long>(atoms.hits + atoms.misses),
        static_cast<long long>(atoms.pattern_hits),
        static_cast<long long>(atoms.pattern_hits + atoms.pattern_misses),
        static_cast<long long>(atoms.bytes));
    const plan::Planner::Stats plans = planner_->stats();
    std::printf(
        "  plan cache: %lld/%lld hits, %lld rules fired, %lld bytes\n",
        static_cast<long long>(plans.cache_hits),
        static_cast<long long>(plans.cache_hits + plans.cache_misses),
        static_cast<long long>(plans.rules_fired),
        static_cast<long long>(plans.bytes));
    std::map<std::string, obs::Histogram::Snapshot> hists =
        obs::MetricsRegistry::Global().HistSnapshot();
    if (hists.empty()) {
      std::printf(
          "  latency: no samples yet (histograms fill while tracing is "
          "on — run explain, or STRQ_OBS=1)\n");
    } else {
      std::printf("  latency:\n");
      for (const auto& [name, h] : hists) {
        std::printf(
            "    %-24s n=%-6lld p50=%.0fns p90=%.0fns p99=%.0fns "
            "max=%lldns\n",
            name.c_str(), static_cast<long long>(h.count), h.p50, h.p90,
            h.p99, static_cast<long long>(h.max));
      }
    }
    obs::FlightRecorder& flight = obs::FlightRecorder::Global();
    std::printf("  flight: %zu/%zu span(s) retained, %llu recorded, %s\n",
                flight.size(), flight.capacity(),
                static_cast<unsigned long long>(flight.total_recorded()),
                flight.armed() ? "armed" : "disarmed");
  }

  Database db_;
  std::shared_ptr<AtomCache> cache_;
  std::shared_ptr<plan::Planner> planner_;
  ParallelOptions parallel_{1};
};

}  // namespace

int main() {
  Shell shell;
  shell.Run();
  return 0;
}
