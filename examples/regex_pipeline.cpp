// Regular-expression pattern matching as a first-class query citizen:
// RC(S_reg)'s P_L predicates (Section 7), grep-style filtering over a log
// database, and the star-free/regular dividing line of Figure 1 checked by
// machine (automata/starfree.h).
//
// Run: ./build/examples/regex_pipeline

#include <cstdio>

#include "automata/regex.h"
#include "automata/starfree.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/signature.h"

namespace {

using namespace strq;

FormulaPtr Q(const char* text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) {
    std::printf("parse error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(r);
}

int Run() {
  // A "log" of event strings over {r, w, f}: reads, writes, flushes.
  Result<Alphabet> alphabet = Alphabet::Create("rwf");
  if (!alphabet.ok()) return 1;
  Database db(*alphabet);
  Status s = db.AddRelation("Log", 1, {{"rwrwf"},
                                       {"rrrr"},
                                       {"wwf"},
                                       {"rwfrwf"},
                                       {"frw"},
                                       {"rw"}});
  if (!s.ok()) return 1;
  AutomataEvaluator engine(&db);

  // grep '^r.*f$' — star-free, so this is already an RC(S) query.
  FormulaPtr starts_r_ends_f = Q("Log(x) & member(x, 'r(r|w|f)*f')");
  std::printf("sessions starting with r and ending with f (RC(%s)):\n",
              StructureName(*MinimalStructure(starts_r_ends_f, *alphabet)));
  Result<Relation> out1 = engine.Evaluate(starts_r_ends_f);
  if (!out1.ok()) return 1;
  for (const Tuple& t : out1->tuples()) std::printf("  %s\n", t[0].c_str());

  // grep '(rw)+f?' — alternation of *distinct* letters needs no modular
  // counting, so this language is star-free and the query stays in RC(S).
  Result<Dfa> rw_plus = CompileRegex("(rw)+f?", *alphabet);
  if (!rw_plus.ok()) return 1;
  Result<bool> star_free = IsStarFree(*rw_plus);
  if (!star_free.ok()) return 1;
  std::printf("\n'(rw)+f?' star-free? %s\n", *star_free ? "yes" : "no");

  FormulaPtr alternating = Q("Log(x) & member(x, '(rw)+f?')");
  std::printf("strict read/write alternation (RC(%s)):\n",
              StructureName(*MinimalStructure(alternating, *alphabet)));
  Result<Relation> out2 = engine.Evaluate(alternating);
  if (!out2.ok()) return 1;
  for (const Tuple& t : out2->tuples()) std::printf("  %s\n", t[0].c_str());

  // Even-length sessions DO need modular counting: not star-free, so the
  // query requires RC(S_reg) — Figure 1's S ⊊ S_reg separation, by machine.
  Result<Dfa> even = CompileRegex("((r|w|f)(r|w|f))*", *alphabet);
  if (!even.ok()) return 1;
  Result<bool> even_star_free = IsStarFree(*even);
  if (!even_star_free.ok()) return 1;
  std::printf("\n'((r|w|f)(r|w|f))*' star-free? %s\n",
              *even_star_free ? "yes" : "no");
  FormulaPtr even_q = Q("Log(x) & member(x, '((r|w|f)(r|w|f))*')");
  std::printf("even-length sessions (RC(%s)):\n",
              StructureName(*MinimalStructure(even_q, *alphabet)));
  Result<Relation> out_even = engine.Evaluate(even_q);
  if (!out_even.ok()) return 1;
  for (const Tuple& t : out_even->tuples()) {
    std::printf("  %s\n", t[0].c_str());
  }

  // P_L at full power: sessions whose continuation *within a longer stored
  // session* is a flush-terminated block — suffixin(x, y, pattern) is the
  // paper's P_L(x, y), relating two strings.
  FormulaPtr pl = Q(
      "Log(y) & suffixin(x, y, '(r|w)*f') & !(x = y)");
  std::printf(
      "\n(prefix, session) pairs where the remainder is a flushed block:\n");
  Result<Relation> out3 = engine.Evaluate(pl);
  if (!out3.ok()) return 1;
  for (const Tuple& t : out3->tuples()) {
    std::printf("  '%s' + flushed-block = '%s'\n", t[0].c_str(),
                t[1].c_str());
  }

  // Definable answer sets stay regular: compile the answer automaton of a
  // unary S_reg query and inspect it.
  Result<TrackAutomaton> answers = engine.Compile(
      Q("member(x, '(rw)*') & !(x = '')"));
  if (!answers.ok()) return 1;
  std::printf("\nanswer automaton for nonempty (rw)*: %d states, %s\n",
              answers->NumStates(),
              answers->IsFinite() ? "finite language" : "infinite language");

  // ... and bounded slices of infinite answers are still enumerable.
  std::printf("first answers: ");
  for (const auto& t : answers->EnumerateTuples(8, 4)) {
    std::printf("'%s' ", t[0].c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
