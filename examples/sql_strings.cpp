// SQL string operations through the paper's lens (Sections 1 and 4).
//
// SQL restricts how LIKE/SIMILAR mix with relational operators; the paper's
// calculi make the combination fully compositional. This example models a
// FACULTY table and shows:
//   * LIKE / lexicographic ORDER BY / TRIM TRAILING — all RC(S);
//   * TRIM LEADING — needs RC(S_left);
//   * SIMILAR TO (full regular expressions) — needs RC(S_reg);
//   * LEN comparisons — need RC(S_len);
// and how the signature checker enforces the boundaries of Figure 1.
//
// Run: ./build/examples/sql_strings

#include <cstdio>

#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/signature.h"

namespace {

using namespace strq;

FormulaPtr Q(const char* text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) {
    std::printf("parse error in %s: %s\n", text,
                r.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(r);
}

void Show(const char* title, const Result<Relation>& out) {
  std::printf("%s\n", title);
  if (!out.ok()) {
    std::printf("  -> %s\n", out.status().ToString().c_str());
    return;
  }
  for (const Tuple& t : out->tuples()) {
    std::printf("  ->");
    for (const std::string& v : t) std::printf(" '%s'", v.c_str());
    std::printf("\n");
  }
}

int Run() {
  Result<Alphabet> alphabet = Alphabet::Create("nyckler");  // tiny demo Σ
  if (!alphabet.ok()) return 1;
  Database db(*alphabet);
  // FACULTY.NAME, motivated by the paper's "NAME LIKE 'Nyckeln'" example.
  Status s = db.AddRelation("Faculty", 1, {{"nyckeln"},
                                           {"nyckel"},
                                           {"klyn"},
                                           {"lynn"},
                                           {"kync"}});
  if (!s.ok()) {
    std::printf("%s\n", s.ToString().c_str());
    return 1;
  }
  AutomataEvaluator engine(&db);

  // --- WHERE NAME LIKE 'nyck%' ------------------------------------- RC(S)
  FormulaPtr like = Q("Faculty(x) & like(x, 'nyck%')");
  std::printf("[RC(%s)] ",
              StructureName(*MinimalStructure(like, *alphabet)));
  Show("SELECT name WHERE name LIKE 'nyck%'", engine.Evaluate(like));

  // --- ORDER BY name LIMIT 1 (lexicographic minimum) ---------------- RC(S)
  FormulaPtr min = Q("Faculty(x) & forall y. Faculty(y) -> lexleq(x, y)");
  Show("\nSELECT min(name) (lexicographic order, Section 4)",
       engine.Evaluate(min));

  // --- TRIM TRAILING 'n' -------------------------------------------- RC(S)
  // "y is x with all trailing n's removed": y ≼ x, y has no trailing n
  // beyond... expressible with suffixin over the star-free language n*.
  FormulaPtr rtrim = Q(
      "exists x. Faculty(x) & suffixin(y, x, 'n*') & !last[n](y)");
  Show("\nSELECT TRIM(TRAILING 'n' FROM name)", engine.Evaluate(rtrim));

  // --- TRIM LEADING 'n' ------------------------------------------ RC(S_left)
  FormulaPtr ltrim = Q("exists x. Faculty(x) & trim[n](x) = y");
  std::printf("\n[RC(%s)] ",
              StructureName(*MinimalStructure(ltrim, *alphabet)));
  Show("SELECT TRIM(LEADING 'n' FROM name)", engine.Evaluate(ltrim));

  // And the checker refuses it as an RC(S) query — this is Figure 1's
  // S ⊊ S_left separation at work.
  Status gate = CheckInLanguage(ltrim, StructureId::kS, *alphabet);
  std::printf("  as RC(S)? %s\n", gate.ToString().c_str());

  // --- SIMILAR TO '(ny|k)%n' ------------------------------------ RC(S_reg)
  FormulaPtr similar = Q(
      "Faculty(x) & member(x, '(ny|k)%n', similar)");
  std::printf("\n[RC(%s)] ",
              StructureName(*MinimalStructure(similar, *alphabet)));
  Show("SELECT name WHERE name SIMILAR TO '(ny|k)%n'",
       engine.Evaluate(similar));

  // A genuinely non-star-free SIMILAR pattern is rejected over S but fine
  // over S_reg: pairs of repeated letters.
  FormulaPtr parity = Q("Faculty(x) & member(x, '((n|y|c|k|l|e|r)(n|y|c|k|l|e|r))*')");
  std::printf("\n  even-length names as RC(S)?    %s\n",
              CheckInLanguage(parity, StructureId::kS, *alphabet)
                  .ToString()
                  .c_str());
  std::printf("  even-length names as RC(S_reg)? %s\n",
              CheckInLanguage(parity, StructureId::kSReg, *alphabet)
                  .ToString()
                  .c_str());
  Show("  evaluated over RC(S_reg):", engine.Evaluate(parity));

  // --- LEN(x) = LEN(y) ------------------------------------------- RC(S_len)
  FormulaPtr samelen = Q(
      "Faculty(x) & Faculty(y) & eqlen(x, y) & !(x = y) & lexleq(x, y)");
  std::printf("\n[RC(%s)] ",
              StructureName(*MinimalStructure(samelen, *alphabet)));
  Show("SELECT x, y WHERE LEN(x) = LEN(y) AND x < y",
       engine.Evaluate(samelen));

  // --- The SQL composition the paper fixes -----------------------------
  // SQL cannot apply LIKE to a *subquery's* derived column; the calculus
  // composes freely: match a pattern against trimmed names.
  FormulaPtr composed = Q(
      "exists x. Faculty(x) & trim[n](x) = y & like(y, '%l%')");
  Show("\nLIKE over a derived column (not expressible in SQL92's WHERE):",
       engine.Evaluate(composed));

  return 0;
}

}  // namespace

int main() { return Run(); }
