# Runs the shell over a script and compares the transcript byte-for-byte
# against a committed golden file. Invoked by ctest (see CMakeLists.txt):
#   cmake -DSHELL=... -DDEMO=... -DGOLDEN=... -DSERVE_WORKERS=N [-DSHARDS=N] -P run_golden.cmake
if(SERVE_WORKERS GREATER 0)
  set(extra_args --serve ${SERVE_WORKERS})
else()
  set(extra_args "")
endif()
if(SHARDS GREATER 1)
  list(APPEND extra_args --shards ${SHARDS})
endif()
execute_process(
  COMMAND ${SHELL} ${extra_args}
  INPUT_FILE ${DEMO}
  OUTPUT_VARIABLE got
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "strq_shell exited with ${code}")
endif()
file(READ ${GOLDEN} want)
if(NOT got STREQUAL want)
  file(WRITE ${CMAKE_BINARY_DIR}/shell_demo_actual.txt "${got}")
  message(FATAL_ERROR
    "shell transcript differs from ${GOLDEN}; "
    "actual output written to ${CMAKE_BINARY_DIR}/shell_demo_actual.txt")
endif()
