#!/usr/bin/env python3
"""Compare two strq.bench.v1 scalar snapshots with per-scalar tolerance bands.

Usage: bench_diff.py [--allow-new] BASELINE.json CANDIDATE.json

Exit status:

  0  every baseline scalar is present in the candidate and inside its band,
     and (without --allow-new) the candidate introduces no scalars the
     baseline does not know about
  1  at least one scalar drifted out of its tolerance band, or (without
     --allow-new) the candidate carries scalars missing from the baseline
  2  usage / unreadable input
  3  at least one BASELINE SCALAR IS MISSING from the candidate — a counter
     namespace silently fell out of the report (an instrumentation or
     plumbing regression, not perf drift; refreshing the baseline would
     hide it, so this is distinct from exit 1)

When both problems occur, the missing-scalar status (3) wins: absent data is
a worse failure than drifting data.

Candidate-only scalars FAIL by default: an unreviewed scalar sneaking into
the committed baseline on the next refresh is how gates rot. A change that
deliberately adds instrumentation passes --allow-new (as check.sh does),
which lists the new scalars and accepts them. --allow-new never excuses
MISSING baseline scalars — removals still exit 3.

Bands are keyed on scalar-name patterns, widest match last:

  *_agree / *_ok                     exact match (semantic gates: kernel or
                                     serving-layer switches must never
                                     change answers)
  *_hit_rate                         +/-0.15 absolute (cache warmth shifts
                                     with workload tweaks, never collapses)
  *_reduction                        35% relative (ratios of two drifting
                                     quantities)
  *classes* / *bytes*                25% relative (alphabet partitions and
                                     table layouts drift with the workload)
  (default)                          25% relative

Scalars only in the candidate are listed but pass (new instrumentation is
fine; the baseline refresh picks them up).
"""

import json
import sys

EXACT_SUFFIXES = ("_agree", "_ok")
ABS_RATE_TOL = 0.15


def band(key):
    """Returns (kind, tolerance) for a scalar name."""
    if key.endswith(EXACT_SUFFIXES):
        return ("exact", 0.0)
    if key.endswith("_hit_rate"):
        return ("abs", ABS_RATE_TOL)
    if key.endswith("_reduction"):
        return ("rel", 0.35)
    return ("rel", 0.25)


def interval(kind, tol, base):
    """The closed [lo, hi] interval a candidate value must land in."""
    if kind == "exact":
        return (base, base)
    if kind == "abs":
        return (base - tol, base + tol)
    # Relative, with a unit floor so a zero baseline does not divide out.
    slack = tol * max(abs(base), 1.0)
    return (base - slack, base + slack)


def within(kind, tol, base, cand):
    lo, hi = interval(kind, tol, base)
    return lo <= cand <= hi


def main(argv):
    args = argv[1:]
    allow_new = "--allow-new" in args
    args = [a for a in args if a != "--allow-new"]
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(args[0]) as f:
        base_doc = json.load(f)
    with open(args[1]) as f:
        cand_doc = json.load(f)
    # Check BOTH documents before returning, so one bad file does not mask
    # the other being bad too (a single run reports everything wrong).
    bad_schema = False
    for doc, path in ((base_doc, args[0]), (cand_doc, args[1])):
        if doc.get("schema") != "strq.bench.v1":
            print(f"bench_diff: {path}: not a strq.bench.v1 document")
            bad_schema = True
    if bad_schema:
        return 1

    base = base_doc.get("scalars", {})
    cand = cand_doc.get("scalars", {})
    failures = []
    missing = []
    for key in sorted(base):
        kind, tol = band(key)
        if key not in cand:
            missing.append(f"{key}: in baseline (= {base[key]}) but absent "
                           "from the fresh run")
            continue
        b, c = base[key], cand[key]
        if not isinstance(c, (int, float)) or isinstance(c, bool):
            failures.append(f"{key}: candidate value {c!r} is not numeric")
            continue
        if within(kind, tol, b, c):
            continue
        lo, hi = interval(kind, tol, b)
        if kind == "exact":
            failures.append(f"{key}: {b} -> {c} (exact match required)")
        elif kind == "abs":
            failures.append(
                f"{key}: {b} -> {c} (band: +/-{tol}, "
                f"allowed [{lo:g}, {hi:g}])")
        else:
            failures.append(
                f"{key}: {b} -> {c} (band: {tol:.0%} relative, "
                f"allowed [{lo:g}, {hi:g}])")

    new_keys = sorted(set(cand) - set(base))
    if new_keys:
        print(f"bench_diff: {len(new_keys)} new scalar(s) not in baseline: "
              + ", ".join(new_keys))
        if allow_new:
            print("bench_diff: --allow-new set; accepting them (the "
                  "baseline refresh picks them up).")
        else:
            failures.append(
                f"{len(new_keys)} candidate-only scalar(s) "
                "(rerun with --allow-new if the new instrumentation is "
                "intended): " + ", ".join(new_keys))
    checked = len(base)
    if missing:
        print(f"bench_diff: {len(missing)}/{checked} BASELINE SCALAR(S) "
              "MISSING from the fresh run:")
        for line in missing:
            print(f"  {line}")
        print("bench_diff: a scalar the baseline tracks was not emitted at "
              "all — this is an instrumentation/plumbing regression (a "
              "counter namespace fell out of the bench JSON), not perf "
              "drift. Fix the reporting before refreshing the baseline.")
        if failures:
            print(f"bench_diff: additionally {len(failures)} scalar(s) out "
                  "of band:")
            for line in failures:
                print(f"  {line}")
        return 3
    if failures:
        print(f"bench_diff: {len(failures)}/{checked} scalar(s) out of band:")
        for line in failures:
            print(f"  {line}")
        print("bench_diff: if the drift is intended, refresh the committed "
              "baseline (scripts/check.sh rewrites BENCH.json).")
        return 1
    print(f"bench_diff: {checked} scalar(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
