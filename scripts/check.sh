#!/usr/bin/env bash
# Full local gate: tier-1 (RelWithDebInfo build + ctest) followed by the
# same suite under ASan (`cmake --preset asan`), standalone UBSan
# (`cmake --preset ubsan`) and TSan (`cmake --preset tsan`, for the thread
# pool and the parallel compile/eval paths), then a smoke run of the two
# substrate benches so the strq.bench.v1 JSON contract and the store.* /
# plan.* / pool.* / dfa.product_states_* counters stay exercised. Run from
# anywhere; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== tier-1: RelWithDebInfo ===="
cmake --preset default
cmake --build --preset default -j"${JOBS}"
ctest --preset default -j"${JOBS}"

echo "==== tier-2: ASan/UBSan ===="
cmake --preset asan
cmake --build --preset asan -j"${JOBS}"
ctest --preset asan -j"${JOBS}"

echo "==== tier-2b: UBSan standalone ===="
cmake --preset ubsan
cmake --build --preset ubsan -j"${JOBS}"
ctest --preset ubsan -j"${JOBS}"

echo "==== tier-2c: TSan (parallel compile/eval paths) ===="
cmake --preset tsan
cmake --build --preset tsan -j"${JOBS}"
ctest --preset tsan -j"${JOBS}"

echo "==== bench smoke: substrate + ablation JSON ===="
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
./build/bench/bench_substrate --smoke --json="${tmpdir}/BENCH_SUB.json"
./build/bench/bench_ablation --smoke --json="${tmpdir}/BENCH_AB.json"
python3 - "${tmpdir}/BENCH_SUB.json" "${tmpdir}/BENCH_AB.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    doc = json.load(open(path))
    assert doc["schema"] == "strq.bench.v1", path
    hits = doc["scalars"].get("store.op_hits", 0)
    assert hits > 0, f"{path}: store.op_hits == 0 (substrate not warming)"
    plan_keys = [k for k in doc["scalars"] if k.startswith("plan.")]
    assert plan_keys, f"{path}: no plan.* scalars (planner fell out of JSON)"
    explored = doc["metrics"].get("dfa.product_states_explored", 0)
    assert explored > 0, f"{path}: dfa.product_states_explored missing"
    pool_keys = [k for k in doc["scalars"] if k.startswith("pool.")]
    assert pool_keys, f"{path}: no pool.* scalars (thread pool fell out)"
    print(f"  {path}: ok (store.op_hits={hits:.0f}, "
          f"{len(plan_keys)} plan.* scalars, {len(pool_keys)} pool.* scalars)")
EOF

echo "ALL CHECKS PASSED"
