#!/usr/bin/env bash
# Full local gate: tier-1 (RelWithDebInfo build + ctest) followed by the
# same suite under ASan (`cmake --preset asan`), standalone UBSan
# (`cmake --preset ubsan`) and TSan (`cmake --preset tsan`, for the thread
# pool and the parallel compile/eval paths), a tier-2d TSan run of the
# serving bench (concurrent sessions, MVCC snapshots, single-flight,
# admission), a tier-2e incremental-maintenance gate (bench_ablation's
# update-stream section: >=5x updates/sec over full recompile with
# identical answers/ids/verdicts), a tier-2f lazy early-exit gate
# (bench_lazy: >=5x fewer states created than eager materialization with
# byte-identical answers and untouched store ids), a tier-2g sharded
# coordinator gate (bench_shard under TSan plus a >=2x 4-shard decider
# throughput floor with byte-identical answers/order/ids across 1/2/4/8
# shards), then a smoke run of the
# substrate/ablation/serving/lazy/shard benches so
# the strq.bench.v1 JSON contract and the store.* / plan.* / pool.* /
# dfa.product_states_* / dfa.classes_* / dfa.table_bytes_* / serve.*
# counters stay exercised, and finally a BENCH.json drift gate
# (scripts/bench_diff.py, per-scalar tolerance bands against the committed
# baseline; exit 3 = a baseline scalar vanished from the fresh run)
# followed by a baseline refresh. Run from anywhere; exits nonzero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== tier-1: RelWithDebInfo ===="
cmake --preset default
cmake --build --preset default -j"${JOBS}"
ctest --preset default -j"${JOBS}"

echo "==== tier-2: ASan/UBSan ===="
cmake --preset asan
cmake --build --preset asan -j"${JOBS}"
ctest --preset asan -j"${JOBS}"

echo "==== tier-2b: UBSan standalone ===="
cmake --preset ubsan
cmake --build --preset ubsan -j"${JOBS}"
ctest --preset ubsan -j"${JOBS}"

echo "==== tier-2c: TSan (parallel compile/eval paths) ===="
cmake --preset tsan
cmake --build --preset tsan -j"${JOBS}"
ctest --preset tsan -j"${JOBS}"

echo "==== tier-2d: TSan serving gate (bench_serving --smoke) ===="
# The serving bench is the densest cross-thread workout in the tree
# (concurrent sessions over MVCC snapshots, striped store, atom-cache
# single-flight, admission queue, writer/reader churn); its smoke run under
# TSan is the race gate for the whole serving stack. The bench exits
# nonzero itself if any serving invariant (answers_agree, mvcc_agree,
# budget_isolation_ok, dedup, admission) fails.
./build-tsan/bench/bench_serving --smoke

echo "==== bench smoke: substrate + ablation + serving + lazy + shard JSON ===="
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
./build/bench/bench_substrate --smoke --json="${tmpdir}/BENCH_SUB.json"
./build/bench/bench_ablation --smoke --json="${tmpdir}/BENCH_AB.json"
./build/bench/bench_serving --smoke --json="${tmpdir}/BENCH_SRV.json"
./build/bench/bench_lazy --smoke --json="${tmpdir}/BENCH_LZ.json"
./build/bench/bench_shard --smoke --json="${tmpdir}/BENCH_SH.json"
python3 - "${tmpdir}/BENCH_SRV.json" <<'EOF'
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
assert doc["schema"] == "strq.bench.v1", path
scalars = doc["scalars"]
# The serving counters must reach the JSON: sessions/requests prove the
# serve.* namespace is wired, dedup/admission prove the concurrency
# features actually fired during the smoke run.
for key in ("serve.sessions", "serve.requests"):
    assert scalars.get(key, 0) > 0, f"{path}: {key} missing or zero"
assert scalars.get("serve.inflight_dedup_hits", 0) > 0, \
    f"{path}: no in-flight dedup observed on the repeated-query workload"
assert scalars.get("serve.admission_rejects", 0) > 0, \
    f"{path}: no admission rejects under the saturated no-queue server"
for key in ("serve.answers_agree", "serve.mvcc_agree",
            "serve.budget_isolation_ok"):
    assert scalars.get(key) == 1.0, f"{path}: {key} != 1"
hists = doc.get("histograms", {})
assert "serve.latency_ns" in hists and hists["serve.latency_ns"]["count"] > 0, \
    f"{path}: serve.latency_ns histogram missing or empty"
metrics = doc.get("metrics", {})
assert metrics.get("serve.requests", 0) > 0, \
    f"{path}: serve.* metric counters fell out"
print(f"  {path}: ok (sessions={scalars['serve.sessions']:.0f}, "
      f"dedup_hits={scalars['serve.inflight_dedup_hits']:.0f}, "
      f"admission_rejects={scalars['serve.admission_rejects']:.0f}, "
      f"latency_n={hists['serve.latency_ns']['count']:.0f})")
EOF
python3 - "${tmpdir}/BENCH_SUB.json" "${tmpdir}/BENCH_AB.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    doc = json.load(open(path))
    assert doc["schema"] == "strq.bench.v1", path
    meta = doc.get("meta")
    assert meta and meta.get("harness_version", 0) >= 2, \
        f"{path}: missing meta block (harness provenance fell out)"
    for key in ("seed", "threads", "product_kernel", "class_kernel"):
        assert key in meta, f"{path}: meta.{key} missing"
    assert "histograms" in doc, f"{path}: no histograms block"
    mem = doc.get("memory", {})
    for key in ("store.bytes", "atom_cache.bytes", "plan.cache_bytes"):
        assert key in mem, f"{path}: memory.{key} missing"
    hits = doc["scalars"].get("store.op_hits", 0)
    assert hits > 0, f"{path}: store.op_hits == 0 (substrate not warming)"
    plan_keys = [k for k in doc["scalars"] if k.startswith("plan.")]
    assert plan_keys, f"{path}: no plan.* scalars (planner fell out of JSON)"
    explored = doc["metrics"].get("dfa.product_states_explored", 0)
    assert explored > 0, f"{path}: dfa.product_states_explored missing"
    pool_keys = [k for k in doc["scalars"] if k.startswith("pool.")]
    assert pool_keys, f"{path}: no pool.* scalars (thread pool fell out)"
    class_keys = [k for k in doc["scalars"] if k.startswith("dfa.classes_")]
    assert class_keys, f"{path}: no dfa.classes_* scalars (class counters fell out)"
    bytes_cond = doc["scalars"].get("dfa.table_bytes_condensed", 0)
    bytes_dense = doc["scalars"].get("dfa.table_bytes_dense_equiv", 0)
    assert bytes_cond > 0 and bytes_dense > 0, (
        f"{path}: dfa.table_bytes_* scalars missing or zero")
    print(f"  {path}: ok (store.op_hits={hits:.0f}, "
          f"{len(plan_keys)} plan.* scalars, {len(pool_keys)} pool.* scalars, "
          f"table bytes {bytes_cond:.0f}/{bytes_dense:.0f})")
# The ablation's kernel switches must never change semantics or identity.
ab = json.load(open(sys.argv[2]))
assert ab["scalars"].get("classes.answers_agree") == 1.0, \
    "class kernels disagree on answers"
assert ab["scalars"].get("classes.store_ids_agree") == 1.0, \
    "class kernels produce different canonical store ids"
EOF

echo "==== tier-2e: incremental update-stream gate (bench_ablation [8]) ===="
# The src/incr acceptance gate: replaying the same update stream with the
# incremental index on must be >= 5x the recompile-everything baseline in
# updates/sec, AND indistinguishable from it — identical per-step answer
# counts, canonical store ids and safety verdicts. The speedup floor lives
# here (not in BENCH.json) because wall-clock ratios are too noisy for the
# drift gate's bands; the agree scalars go into the baseline below.
python3 - "${tmpdir}/BENCH_AB.json" <<'EOF'
import json, sys
path = sys.argv[1]
s = json.load(open(path))["scalars"]
for key in ("incr.answers_agree", "incr.store_ids_agree", "incr.safe_agree"):
    assert s.get(key) == 1.0, \
        f"{path}: {key} != 1 (patching changed an observable!)"
assert s.get("incr.patches", 0) > 0, f"{path}: no patches fired"
assert s.get("incr.answer_patches", 0) > 0, \
    f"{path}: no answer-level patches fired"
speedup = s.get("incr.update_speedup", 0)
assert speedup >= 5.0, (
    f"{path}: incremental arm only {speedup:.1f}x over full recompile "
    f"(acceptance floor 5x)")
print(f"  {path}: ok (speedup={speedup:.1f}x, "
      f"patches={s['incr.patches']:.0f} "
      f"({s['incr.answer_patches']:.0f} answer-level), "
      f"recompiles={s['incr.recompiles']:.0f}, "
      f"compactions={s['incr.compactions']:.0f})")
EOF

echo "==== tier-2f: lazy early-exit gate (bench_lazy --smoke) ===="
# The src/lazy acceptance gate: every early-exit mode (Contains /
# ExistsWitness / TopK) must return exactly what the materialized pipeline
# returns, canonical store ids must be untouched by lazy traffic, and the
# on-the-fly product must create >= 5x fewer states than eager
# materialization explores for ExistsWitness and TopK(10). The state ratios
# are deterministic (fixed seed, no wall-clock) so the floor lives here; the
# agree scalars also go into the baseline below under exact bands.
python3 - "${tmpdir}/BENCH_LZ.json" <<'EOF'
import json, sys
path = sys.argv[1]
s = json.load(open(path))["scalars"]
for key in ("lazy.answers_agree", "lazy.store_ids_agree"):
    assert s.get(key) == 1.0, \
        f"{path}: {key} != 1 (a lazy mode changed an observable!)"
for key in ("lazy.state_reduction_witness", "lazy.state_reduction_topk10"):
    r = s.get(key, 0)
    assert r >= 5.0, (
        f"{path}: {key} only {r:.2f}x (acceptance floor 5x)")
print(f"  {path}: ok (witness reduction="
      f"{s['lazy.state_reduction_witness']:.1f}x, topk10 reduction="
      f"{s['lazy.state_reduction_topk10']:.1f}x, "
      f"states lazy/eager={s['lazy.states_lazy_witness']:.0f}/"
      f"{s['lazy.states_eager_witness']:.0f})")
EOF

echo "==== tier-2g: sharded coordinator gate (bench_shard) ===="
# The src/shard acceptance gate, in two halves:
#  (a) TSan smoke run — commit fan-out, coherent snapshot-vector handout,
#      and the coordinator's per-shard compile + merge all cross the shard
#      stacks' mutexes; the bench exits nonzero itself if any shard-count
#      invariance scalar (answers/order/ids/safety/update agree) fails.
#  (b) Wall-clock floor on the REGULAR build's smoke JSON: at 4 shards the
#      decider workload must clear 2x the unsharded compile throughput
#      (early-exit work reduction — each shard holds ~1/4 of R and the
#      serial deciders stop at the first shard that settles the question,
#      so the floor does not depend on core count). The floor lives here,
#      not in BENCH.json, because wall-clock ratios are too noisy for the
#      drift gate's bands; the agree scalars go into the baseline below.
./build-tsan/bench/bench_shard --smoke
python3 - "${tmpdir}/BENCH_SH.json" <<'EOF'
import json, sys
path = sys.argv[1]
s = json.load(open(path))["scalars"]
for key in ("sh.answers_agree", "sh.order_agree", "sh.ids_agree",
            "sh.safety_agree", "sh.update_agree"):
    assert s.get(key) == 1.0, \
        f"{path}: {key} != 1 (sharding changed an observable!)"
speedup = s.get("sh.compile_speedup_4x", 0)
assert speedup >= 2.0, (
    f"{path}: 4-shard arm only {speedup:.2f}x over unsharded "
    f"(acceptance floor 2x)")
print(f"  {path}: ok (speedup={speedup:.2f}x, qps 1s/4s="
      f"{s['sh.compile_qps_1s']:.0f}/{s['sh.compile_qps_4s']:.0f}, "
      f"update_qps_4s={s['sh.update_qps_4s']:.0f})")
EOF

echo "==== BENCH.json baseline snapshot + drift gate ===="
# Selected scalars from both smoke runs, merged under sub./ab. prefixes into
# a committed top-level baseline (schema strq.bench.v1) so perf-relevant
# counters are tracked in-repo alongside the code that moves them. The fresh
# snapshot is diffed against the committed baseline with per-scalar tolerance
# bands (scripts/bench_diff.py) BEFORE overwriting it, so out-of-band drift
# fails the gate instead of silently rebasing.
python3 - "${tmpdir}/BENCH_SUB.json" "${tmpdir}/BENCH_AB.json" \
    "${tmpdir}/BENCH_SRV.json" "${tmpdir}/BENCH_LZ.json" \
    "${tmpdir}/BENCH_SH.json" "${tmpdir}/BENCH_NEW.json" <<'EOF'
import json, sys
# Only stable scalars go into the committed baseline: semantic gates
# (*_agree, *_ok — exact bands in bench_diff.py) and slow-drifting counts.
# QPS and latency percentiles are machine-dependent and stay out.
KEEP = {
    "sub.": [
        "store.unique_hit_rate", "store.op_hit_rate", "plan.cache_hit_rate",
        "workload.parallel_answers_agree", "dfa.classes_total",
        "dfa.table_bytes_condensed", "dfa.table_bytes_dense_equiv",
        "dfa.table_bytes_reduction",
    ],
    "ab.": [
        "store.answers_agree", "plan.answers_agree", "plan.total_reduction",
        "kernel.answers_agree", "classes.answers_agree",
        "classes.store_ids_agree", "classes.table_bytes_reduction",
        "classes.product_work_reduction", "dfa.classes_final",
        "dfa.table_bytes_condensed", "dfa.table_bytes_dense_equiv",
        "incr.answers_agree", "incr.store_ids_agree", "incr.safe_agree",
    ],
    "srv.": [
        "serve.answers_agree", "serve.mvcc_agree",
        "serve.budget_isolation_ok", "serve.sessions", "serve.requests",
    ],
    "lz.": [
        "lazy.answers_agree", "lazy.store_ids_agree",
        "lazy.state_reduction_witness", "lazy.state_reduction_topk10",
        "lazy.states_lazy_witness", "lazy.contains_states",
    ],
    # Shard-count invariance gates only; the throughput/latency scalars are
    # machine-dependent and stay out (tier-2g asserts the speedup floor).
    # Empty prefix: the bench already namespaces its scalars under sh.*.
    "": [
        "sh.answers_agree", "sh.order_agree", "sh.ids_agree",
        "sh.safety_agree", "sh.update_agree",
    ],
}
docs = [json.load(open(p)) for p in sys.argv[1:6]]
scalars = {}
for doc, prefix in zip(docs, KEEP):
    for key in KEEP[prefix]:
        if key in doc["scalars"]:
            scalars[prefix + key] = doc["scalars"][key]
out = {
    "schema": "strq.bench.v1",
    "id": "BASELINE",
    "title": "selected scalars from bench_substrate + bench_ablation + "
             "bench_serving + bench_lazy + bench_shard smoke",
    "smoke": True,
    "series": [],
    "scalars": scalars,
    "metrics": {},
}
with open(sys.argv[6], "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"  wrote {sys.argv[6]} ({len(scalars)} scalars)")
EOF
if [[ -f BENCH.json ]]; then
  # --allow-new: this script IS the deliberate instrumentation path — newly
  # KEEP-listed scalars are reviewed above, so they may enter the baseline.
  # Removals still exit 3 (a tracked namespace vanished).
  python3 scripts/bench_diff.py --allow-new BENCH.json "${tmpdir}/BENCH_NEW.json"
else
  echo "  no committed BENCH.json yet; skipping drift gate"
fi
cp "${tmpdir}/BENCH_NEW.json" BENCH.json
echo "  refreshed BENCH.json"

echo "ALL CHECKS PASSED"
