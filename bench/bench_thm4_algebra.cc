// Theorems 4 and 8 — safe RC(M) = RA(M) for all four structures. For each
// battery query: translate to an algebra plan, validate it against the
// algebra's own operator/σ-language gates, evaluate, compare with the exact
// calculus answer, and time both routes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "safety/safe_translation.h"

namespace strq {
namespace {

using bench::Header;
using bench::RandomUnaryDb;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

struct Case {
  StructureId structure;
  const char* query;
  int reach;
};

int Run() {
  Header("T4", "Theorems 4/8 — calculus == algebra on safe queries");

  Database db = RandomUnaryDb(71, 6, 1, 3);
  std::map<std::string, int> schema = {{"R", 1}};

  const std::vector<Case> battery = {
      {StructureId::kS, "exists y. R(y) & x <= y", 2},
      {StructureId::kS, "R(x) & !(exists y. R(y) & y < x)", 2},
      {StructureId::kS, "exists y. R(y) & step(x, y) & last[1](y)", 2},
      {StructureId::kS, "exists y in adom. lcp(x, y) = x & R(x)", 2},
      {StructureId::kS, "R(x) & forall y in adom. lexleq(x, y)", 2},
      {StructureId::kSLeft, "exists y. R(y) & prepend[1](y) = x", 2},
      {StructureId::kSLeft, "exists y. R(y) & trim[0](y) = x", 2},
      {StructureId::kSReg, "exists y. R(y) & suffixin(x, y, '(10)*')", 2},
      {StructureId::kSReg, "R(x) & member(x, '(0|1)(0|1)*1')", 2},
      {StructureId::kSLen, "exists y. R(y) & eqlen(x, y) & last[0](x)", 2},
      {StructureId::kSLen,
       "exists y in adom. eqlen(x, y) & member(x, '0*')", 2},
  };

  std::printf(
      "  struct  | valid-RA | match | t_calc (s) | t_plan (s) | query\n");
  for (const Case& c : battery) {
    FormulaPtr f = Q(c.query);
    AutomataEvaluator engine(&db);
    Result<Relation> exact = InternalError("unset");
    double t_calc = TimeSeconds([&] { exact = engine.Evaluate(f); });
    Result<RaPtr> plan =
        TranslateToAlgebra(f, c.structure, schema, db.alphabet(), c.reach);
    if (!exact.ok() || !plan.ok()) {
      std::printf("  %-7s | translation/eval error on %s\n",
                  StructureName(c.structure), c.query);
      continue;
    }
    bool valid =
        ValidateAlgebra(*plan, c.structure, schema, db.alphabet()).ok();
    AlgebraEvaluator::Options options;
    options.max_tuples = 30000000;
    AlgebraEvaluator algebra(&db, options);
    Result<Relation> out = InternalError("unset");
    double t_plan = TimeSeconds([&] { out = algebra.Evaluate(*plan); });
    std::printf("  %-7s | %-8s | %-5s | %10.4f | %10.4f | %s\n",
                StructureName(c.structure), valid ? "yes" : "NO",
                out.ok() && *out == *exact ? "yes" : "NO", t_calc, t_plan,
                c.query);
  }
  std::printf(
      "\n  the plan route pays for materializing the γ-universe; the\n"
      "  calculus route pays in automaton sizes — same answers (Thm 4/8).\n");
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
