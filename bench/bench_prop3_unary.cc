// Proposition 3 — Boolean RC(S) queries over *unary* databases evaluate in
// linear time in the database size. Measured: evaluation time of a battery
// of Boolean prefix-restricted RC(S) queries over unary databases of
// growing size, with the fitted scaling degree printed per query (≈ 1
// expected for queries whose restricted evaluation makes a single pass).

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::LogLogSlope;
using bench::RandomUnaryDb;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

int Run(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "P3",
                         "Proposition 3 — linear-time Boolean RC(S) on "
                         "unary dbs");
  reporter.set_seed(41);
  Header("P3", "Proposition 3 — linear-time Boolean RC(S) on unary dbs");

  struct QueryCase {
    const char* name;
    const char* text;
    // Queries with one adom-quantifier scale linearly; nested adom
    // quantifiers are the quadratic comparison baseline.
    double expected_degree;
  };
  const QueryCase queries[] = {
      {"single-scan", "exists x in adom. last[1](x) & like(x, '0%')", 1.0},
      {"scan+pattern", "forall x in adom. member(x, '(0|1)*')", 1.0},
      {"nested(baseline)",
       "forall x in adom. forall y in adom. lexleq(lcp(x, y), x)", 2.0},
  };

  std::vector<int> sizes = {250, 500, 1000, 2000, 4000};
  if (reporter.smoke()) sizes = {100, 200};
  for (const QueryCase& q : queries) {
    std::printf("\n  %-16s n ->", q.name);
    std::vector<double> ns;
    std::vector<double> ts;
    for (int n : sizes) {
      Database db = RandomUnaryDb(41, n, 1, 16);
      RestrictedEvaluator engine(&db);
      FormulaPtr f = Q(q.text);
      double t = TimeSeconds([&] { (void)engine.EvaluateSentence(f); }, 3);
      std::printf(" %d:%.4fs", n, t);
      ns.push_back(n);
      ts.push_back(t);
    }
    std::printf("\n  fitted degree %.2f (expected ≈ %.1f)\n",
                LogLogSlope(ns, ts), q.expected_degree);
    reporter.AddSeries(q.name, ns, ts);
    reporter.AddScalar(std::string(q.name) + ".expected_degree",
                       q.expected_degree);
  }
  std::printf(
      "\n  (worst-case existential scans may exit early; the paper's bound\n"
      "   is on the evaluation strategy, measured here as the degree of the\n"
      "   full-pass universal queries.)\n");
  return 0;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::Run(argc, argv); }
