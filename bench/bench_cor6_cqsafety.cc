// Theorem 5 / Corollaries 6 & 8 — safety of conjunctive queries (and unions
// thereof) is decidable for all four calculi: the derived S_len sentence
// (finiteness definable with parameters) is decided by the automata engine.
// The bench reports the verdict, correctness against the expected answer,
// and the decision latency per query.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "logic/parser.h"
#include "safety/query_safety.h"

namespace strq {
namespace {

using bench::Header;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

struct Case {
  const char* calculus;
  const char* query;
  bool expect_safe;
};

int Run() {
  Header("C6", "Corollary 6/8 — conjunctive-query safety decisions");

  const std::vector<Case> battery = {
      {"S", "R(x) & last[1](x)", true},
      {"S", "exists y. R(y) & x <= y", true},
      {"S", "exists y. R(y) & y <= x", false},
      {"S", "exists y. R(y) & step(y, x)", true},
      {"S", "exists y. R(y) & lcp(x, '111') = y", false},
      {"S", "exists y. exists z. R(y) & R(z) & lcp(y, z) = x", true},
      {"S_left", "exists y. R(y) & prepend[0](y) = x", true},
      {"S_left", "exists y. R(y) & trim[1](x) = y", false},
      {"S_reg", "exists y. R(y) & suffixin(x, y, '0*1')", true},
      {"S_reg", "exists y. R(y) & suffixin(y, x, '0*1')", false},
      {"S_reg", "member(x, '0|00|000')", true},
      {"S_reg", "member(x, '0*')", false},
      {"S_len", "exists y. R(y) & eqlen(x, y)", true},
      {"S_len", "exists y. R(y) & leqlen(x, y)", true},
      {"S_len", "exists y. R(y) & leqlen(y, x)", false},
      {"S_len", "exists y. exists z. R(y) & S(y, z) & eqlen(x, z)", true},
  };

  std::printf("  calc   | verdict | expect | correct | t (s) | query\n");
  int correct = 0;
  for (const Case& c : battery) {
    FormulaPtr f = Q(c.query);
    Result<bool> safe = InternalError("unset");
    double t =
        TimeSeconds([&] { safe = QuerySafe(f, Alphabet::Binary()); });
    if (!safe.ok()) {
      std::printf("  %-6s | ERROR %s on %s\n", c.calculus,
                  safe.status().ToString().c_str(), c.query);
      continue;
    }
    bool right = *safe == c.expect_safe;
    correct += right;
    std::printf("  %-6s | %-7s | %-6s | %-7s | %.3f | %s\n", c.calculus,
                *safe ? "safe" : "unsafe", c.expect_safe ? "safe" : "unsafe",
                right ? "yes" : "NO", t, c.query);
  }
  std::printf("\n  %d/%zu decisions match the hand-derived safety status.\n",
              correct, battery.size());

  // Union of CQs: safe iff every disjunct is.
  Result<bool> u1 = QuerySafe(
      Q("(R(x) & last[1](x)) | (exists y. R(y) & x <= y)"),
      Alphabet::Binary());
  Result<bool> u2 = QuerySafe(
      Q("(R(x) & last[1](x)) | (exists y. R(y) & y <= x)"),
      Alphabet::Binary());
  std::printf("  union of two safe CQs:   %s (expected safe)\n",
              u1.ok() ? (*u1 ? "safe" : "unsafe") : "ERR");
  std::printf("  union with an unsafe CQ: %s (expected unsafe)\n",
              u2.ok() ? (*u2 ? "safe" : "unsafe") : "ERR");
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
