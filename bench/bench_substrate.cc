// Substrate microbenchmarks: the automata and multi-track machinery that
// everything else stands on. Determinization, minimization, products,
// star-free certification, convolution coding, atom construction, and
// first-order operations on track automata.

#include <benchmark/benchmark.h>

#include "automata/ops.h"
#include "automata/regex.h"
#include "automata/starfree.h"
#include "base/rng.h"
#include "mta/atoms.h"
#include "mta/track_automaton.h"

namespace strq {
namespace {

// (0|1)*1(0|1)^k — the classical exponential-determinization family.
std::string HardPattern(int k) {
  std::string p = "(0|1)*1";
  for (int i = 0; i < k; ++i) p += "(0|1)";
  return p;
}

void BM_Determinize(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Binary();
  Result<RegexPtr> rx = ParseRegex(HardPattern(static_cast<int>(state.range(0))));
  Result<Nfa> nfa = RegexToNfa(*rx, alphabet);
  for (auto _ : state) {
    Result<Dfa> dfa = Determinize(*nfa);
    if (!dfa.ok()) {
      state.SkipWithError("determinize failed");
      return;
    }
    benchmark::DoNotOptimize(dfa->num_states());
  }
}
BENCHMARK(BM_Determinize)->DenseRange(4, 12, 4);

void BM_Minimize(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Binary();
  Result<Dfa> dfa =
      CompileRegex(HardPattern(static_cast<int>(state.range(0))), alphabet);
  // CompileRegex already minimizes; build an un-minimized one via product.
  Result<Dfa> big = Intersect(*dfa, Dfa::AllStrings(2));
  for (auto _ : state) {
    Dfa min = big->Minimized();
    benchmark::DoNotOptimize(min.num_states());
  }
}
BENCHMARK(BM_Minimize)->DenseRange(4, 10, 3);

void BM_ProductIntersect(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Binary();
  Result<Dfa> a = CompileRegex(HardPattern(6), alphabet);
  Result<Dfa> b = CompileRegex("(00|11)*(0|1)?", alphabet);
  for (auto _ : state) {
    Result<Dfa> product = Intersect(*a, *b);
    if (!product.ok()) {
      state.SkipWithError("product failed");
      return;
    }
    benchmark::DoNotOptimize(product->num_states());
  }
}
BENCHMARK(BM_ProductIntersect);

void BM_StarFreeCheck(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Binary();
  Result<Dfa> dfa = CompileRegex("(0|1)*11(0|1)*0", alphabet);
  for (auto _ : state) {
    Result<bool> sf = IsStarFree(*dfa);
    if (!sf.ok()) {
      state.SkipWithError("check failed");
      return;
    }
    benchmark::DoNotOptimize(*sf);
  }
}
BENCHMARK(BM_StarFreeCheck);

void BM_ConvolutionRoundTrip(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Binary();
  Result<ConvAlphabet> conv = ConvAlphabet::Create(2, 3);
  Rng rng(5);
  std::vector<std::vector<std::string>> tuples;
  for (int i = 0; i < 64; ++i) {
    tuples.push_back({rng.NextString("01", 0, 12), rng.NextString("01", 0, 12),
                      rng.NextString("01", 0, 12)});
  }
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& t : tuples) {
      Result<std::vector<Symbol>> w = conv->ConvolveStrings(alphabet, t);
      total += w->size();
      benchmark::DoNotOptimize(conv->DeconvolveStrings(alphabet, *w));
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ConvolutionRoundTrip);

void BM_AtomConstruction(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Binary();
  for (auto _ : state) {
    Result<TrackAutomaton> lex = LexLeqAtom(alphabet, 0, 1);
    Result<TrackAutomaton> lcp = LcpAtom(alphabet, 0, 1, 2);
    Result<TrackAutomaton> pre = PrependGraphAtom(alphabet, '1', 0, 1);
    if (!lex.ok() || !lcp.ok() || !pre.ok()) {
      state.SkipWithError("atom failed");
      return;
    }
    benchmark::DoNotOptimize(lex->NumStates() + lcp->NumStates() +
                             pre->NumStates());
  }
}
BENCHMARK(BM_AtomConstruction);

void BM_TrackIntersectProject(benchmark::State& state) {
  // The inner loop of formula compilation: align, intersect, project.
  Alphabet alphabet = Alphabet::Binary();
  Result<TrackAutomaton> p01 = PrefixAtom(alphabet, 0, 1);
  Result<TrackAutomaton> p12 = PrefixAtom(alphabet, 1, 2);
  Result<TrackAutomaton> l2 = LastSymbolAtom(alphabet, '1', 2);
  for (auto _ : state) {
    Result<TrackAutomaton> conj = TrackAutomaton::Intersect(*p01, *p12);
    Result<TrackAutomaton> conj2 = TrackAutomaton::Intersect(*conj, *l2);
    Result<TrackAutomaton> proj = conj2->Project(1);
    if (!proj.ok()) {
      state.SkipWithError("pipeline failed");
      return;
    }
    benchmark::DoNotOptimize(proj->NumStates());
  }
}
BENCHMARK(BM_TrackIntersectProject);

void BM_RelationTrie(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Binary();
  Rng rng(7);
  std::vector<std::vector<std::string>> tuples;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    tuples.push_back({rng.NextString("01", 1, 10), rng.NextString("01", 1, 10)});
  }
  for (auto _ : state) {
    Result<TrackAutomaton> rel =
        TrackAutomaton::FromTuples(alphabet, {0, 1}, tuples);
    if (!rel.ok()) {
      state.SkipWithError("trie failed");
      return;
    }
    benchmark::DoNotOptimize(rel->NumStates());
  }
}
BENCHMARK(BM_RelationTrie)->Range(16, 256);

void BM_FinitenessDecision(benchmark::State& state) {
  // The Proposition 7 primitive: answer-automaton finiteness.
  Alphabet alphabet = Alphabet::Binary();
  Result<TrackAutomaton> pre = PrefixAtom(alphabet, 0, 1);
  Result<TrackAutomaton> projected = pre->Project(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(projected->IsFinite());
  }
}
BENCHMARK(BM_FinitenessDecision);

}  // namespace
}  // namespace strq

BENCHMARK_MAIN();
