// Substrate microbenchmarks: the automata and multi-track machinery that
// everything else stands on. Determinization, minimization, products,
// star-free certification, atom construction, relation tries — and the
// hash-consed AutomatonStore that now sits under all of it: interned DFAs,
// memoized operations, and the shared AtomCache the evaluators draw from.
// With --json the emitted strq.bench.v1 file carries the store.* counters
// the run moved, so the unique/computed-table hit rate is recorded next to
// the timings it explains.

#include <cstdio>

#include "automata/ops.h"
#include "automata/regex.h"
#include "automata/starfree.h"
#include "automata/store.h"
#include "base/rng.h"
#include "bench/bench_util.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "mta/atom_cache.h"
#include "mta/atoms.h"
#include "plan/planner.h"
#include "mta/track_automaton.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::RandomUnaryDb;
using bench::Row;
using bench::TimeSeconds;

// (0|1)*1(0|1)^k — the classical exponential-determinization family.
std::string HardPattern(int k) {
  std::string p = "(0|1)*1";
  for (int i = 0; i < k; ++i) p += "(0|1)";
  return p;
}

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

int Run(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "SUB",
                         "substrate — determinize/minimize/product and the "
                         "hash-consed store");
  reporter.set_seed(41);
  Header("SUB", "automaton substrate");
  Alphabet alphabet = Alphabet::Binary();

  // --- 1. Determinization scaling --------------------------------------
  {
    std::vector<int> ks = {4, 6, 8, 10, 12};
    if (reporter.smoke()) ks = {4, 6};
    std::vector<double> xs;
    std::vector<double> ts;
    std::printf("\n  determinize (0|1)*1(0|1)^k   k ->");
    for (int k : ks) {
      Result<RegexPtr> rx = ParseRegex(HardPattern(k));
      Result<Nfa> nfa = RegexToNfa(*rx, alphabet);
      double t = TimeSeconds([&] { (void)Determinize(*nfa); }, 3);
      std::printf(" %d:%.4fs", k, t);
      xs.push_back(k);
      ts.push_back(t);
    }
    std::printf("\n");
    reporter.AddSeries("determinize", xs, ts);
  }

  // --- 2. Minimization (Hopcroft) --------------------------------------
  {
    std::vector<int> ks = {4, 7, 10};
    if (reporter.smoke()) ks = {4, 6};
    std::vector<double> xs;
    std::vector<double> ts;
    std::printf("  minimize via product blow-up  k ->");
    for (int k : ks) {
      Result<Dfa> dfa = CompileRegex(HardPattern(k), alphabet);
      // CompileRegex already minimizes; build an un-minimized one via
      // product so Minimized() has real work to do.
      Result<Dfa> big = Intersect(*dfa, Dfa::AllStrings(2));
      double t = TimeSeconds([&] { (void)big->Minimized(); }, 3);
      std::printf(" %d:%.4fs", k, t);
      xs.push_back(k);
      ts.push_back(t);
    }
    std::printf("\n");
    reporter.AddSeries("minimize", xs, ts);
  }

  // --- 3. Products: raw ops vs the store's computed table ---------------
  {
    AutomatonStore store;
    Result<Dfa> a = CompileRegex(HardPattern(6), alphabet);
    Result<Dfa> b = CompileRegex("(00|11)*(0|1)?", alphabet);
    DfaRef ra = store.Intern(*a);
    DfaRef rb = store.Intern(*b);
    int reps = reporter.smoke() ? 50 : 400;
    double t_raw = TimeSeconds([&] {
      for (int i = 0; i < reps; ++i) (void)Intersect(*a, *b);
    });
    double t_store = TimeSeconds([&] {
      for (int i = 0; i < reps; ++i) (void)store.Intersect(ra, rb);
    });
    std::printf("  product x%d: raw %.4fs, memoized %.4fs (%.0fx)\n", reps,
                t_raw, t_store, t_raw / t_store);
    reporter.AddScalar("product.raw_seconds", t_raw);
    reporter.AddScalar("product.memoized_seconds", t_store);
  }

  // --- 4. Star-free certification ---------------------------------------
  {
    Result<Dfa> dfa = CompileRegex("(0|1)*11(0|1)*0", alphabet);
    double t = TimeSeconds([&] { (void)IsStarFree(*dfa); },
                           reporter.smoke() ? 3 : 10);
    std::printf("  star-free check: %.5fs\n", t);
    reporter.AddScalar("starfree.seconds", t);
  }

  // --- 5. Atom construction: direct builders vs shared cache ------------
  {
    AtomCache cache(alphabet);
    int reps = reporter.smoke() ? 20 : 200;
    double t_direct = TimeSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        (void)LexLeqAtom(alphabet, 0, 1);
        (void)LcpAtom(alphabet, 0, 1, 2);
        (void)PrependGraphAtom(alphabet, '1', 0, 1);
      }
    });
    double t_cached = TimeSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        (void)cache.LexLeq(0, 1);
        (void)cache.Lcp(0, 1, 2);
        (void)cache.PrependGraph('1', 0, 1);
      }
    });
    std::printf("  atoms x%d: direct %.4fs, cached %.4fs (%.0fx)\n", reps,
                t_direct, t_cached, t_direct / t_cached);
    reporter.AddScalar("atoms.direct_seconds", t_direct);
    reporter.AddScalar("atoms.cached_seconds", t_cached);
  }

  // --- 6. Relation tries ------------------------------------------------
  {
    Rng rng(7);
    std::vector<std::vector<std::string>> tuples;
    int n = reporter.smoke() ? 32 : 256;
    for (int i = 0; i < n; ++i) {
      tuples.push_back(
          {rng.NextString("01", 1, 10), rng.NextString("01", 1, 10)});
    }
    double t = TimeSeconds(
        [&] { (void)TrackAutomaton::FromTuples(alphabet, {0, 1}, tuples); },
        3);
    std::printf("  relation trie (%d tuples): %.4fs\n", n, t);
    reporter.AddScalar("trie.seconds", t);
  }

  // --- 7. Repeated-query workload through the shared substrate ----------
  // The store's reason to exist: a battery of queries that keep asking for
  // the same atoms, patterns and table tries. Pass 1 populates the caches;
  // later passes ride them. The store.* counters land in the JSON metrics.
  {
    Database db = RandomUnaryDb(41, reporter.smoke() ? 40 : 200, 1, 10);
    const FormulaPtr battery[] = {
        Q("exists x in adom. last[1](x) & like(x, '0%')"),
        Q("forall x in adom. member(x, '(0|1)*')"),
        Q("exists x in adom. exists y in adom. x <= y & lexleq(x, y)"),
        Q("forall x in adom. forall y in adom. lexleq(lcp(x, y), x)"),
        Q("exists x in adom. R(x) & like(x, '%1')"),
    };
    AutomatonStore store;
    auto cache = std::make_shared<AtomCache>(db.alphabet(), &store);
    // One planner shared across every pass: pass 1 plans the battery, later
    // passes hit the plan cache (same formulas, same database revision).
    auto planner = std::make_shared<plan::Planner>();
    int passes = reporter.smoke() ? 3 : 10;
    double t_cold = -1;
    double t_warm = -1;
    for (int p = 0; p < passes; ++p) {
      double t = TimeSeconds([&] {
        AutomataEvaluator engine(&db, cache, planner);
        for (const FormulaPtr& f : battery) (void)engine.EvaluateSentence(f);
      });
      if (p == 0) t_cold = t;
      t_warm = t;
    }
    AutomatonStore::Stats st = store.stats();
    double unique_total =
        static_cast<double>(st.unique_hits + st.unique_misses);
    double op_total = static_cast<double>(st.op_hits + st.op_misses);
    std::printf(
        "  repeated queries (%d passes): cold %.4fs, warm %.4fs (%.1fx)\n",
        passes, t_cold, t_warm, t_cold / t_warm);
    std::printf(
        "    store: unique %lld/%lld hits (%.0f%%), ops %lld/%lld hits "
        "(%.0f%%)\n",
        static_cast<long long>(st.unique_hits),
        static_cast<long long>(st.unique_hits + st.unique_misses),
        unique_total > 0 ? 100.0 * st.unique_hits / unique_total : 0.0,
        static_cast<long long>(st.op_hits),
        static_cast<long long>(st.op_hits + st.op_misses),
        op_total > 0 ? 100.0 * st.op_hits / op_total : 0.0);
    reporter.AddScalar("workload.cold_seconds", t_cold);
    reporter.AddScalar("workload.warm_seconds", t_warm);
    reporter.AddScalar("store.unique_hits",
                       static_cast<double>(st.unique_hits));
    reporter.AddScalar("store.unique_misses",
                       static_cast<double>(st.unique_misses));
    reporter.AddScalar("store.op_hits", static_cast<double>(st.op_hits));
    reporter.AddScalar("store.op_misses", static_cast<double>(st.op_misses));
    reporter.AddScalar(
        "store.unique_hit_rate",
        unique_total > 0 ? st.unique_hits / unique_total : 0.0);
    reporter.AddScalar("store.op_hit_rate",
                       op_total > 0 ? st.op_hits / op_total : 0.0);
    plan::Planner::Stats ps = planner->stats();
    double plan_total = static_cast<double>(ps.cache_hits + ps.cache_misses);
    std::printf(
        "    planner: %lld/%lld plan-cache hits (%.0f%%)\n",
        static_cast<long long>(ps.cache_hits),
        static_cast<long long>(ps.cache_hits + ps.cache_misses),
        plan_total > 0 ? 100.0 * ps.cache_hits / plan_total : 0.0);
    reporter.AddScalar("plan.cache_hits", static_cast<double>(ps.cache_hits));
    reporter.AddScalar("plan.cache_misses",
                       static_cast<double>(ps.cache_misses));
    reporter.AddScalar(
        "plan.cache_hit_rate",
        plan_total > 0 ? ps.cache_hits / plan_total : 0.0);
  }

  // --- 8. Parallel subplan compilation: thread scaling ------------------
  // The repeated-query workload again, but compile-bound: every pass gets a
  // fresh substrate so the wide conjunctions below are genuinely recompiled,
  // and the planner's parallelizable-children annotation lets the engine
  // fan the independent conjuncts out to the thread pool. Reported at 1, 2
  // and 4 threads; num_threads = 1 is the exact serial path.
  {
    Database db = RandomUnaryDb(41, reporter.smoke() ? 40 : 200, 1, 10);
    const FormulaPtr battery[] = {
        Q("exists x in adom. (member(x, '" + HardPattern(7) +
          "') & member(x, '(0|1)(0|1)*0(0|1)(0|1)(0|1)') & "
          "member(x, '(00|01|10)*(0|1)?') & like(x, '0%1'))"),
        Q("exists x in adom. (member(x, '(0|1)*0(0|1)(0|1)(0|1)(0|1)') & "
          "member(x, '" + HardPattern(6) +
          "') & member(x, '(0|1)*11(0|1)*') & member(x, '(00|11)*(0|1)?'))"),
    };
    obs::ScopedEnable enable(true);
    int passes = reporter.smoke() ? 2 : 4;
    double seconds[3] = {0, 0, 0};
    const int thread_counts[3] = {1, 2, 4};
    std::vector<std::vector<int>> answers;
    for (int c = 0; c < 3; ++c) {
      std::vector<int> config_answers;
      seconds[c] = TimeSeconds(
          [&] {
            config_answers.clear();
            AutomatonStore store(true);
            auto cache = std::make_shared<AtomCache>(db.alphabet(), &store);
            AutomataEvaluator engine(&db, cache);
            engine.set_parallel_options(ParallelOptions{thread_counts[c]});
            for (const FormulaPtr& f : battery) {
              Result<bool> v = engine.EvaluateSentence(f);
              config_answers.push_back(v.ok() ? static_cast<int>(*v) : -1);
            }
          },
          passes);
      answers.push_back(std::move(config_answers));
    }
    bool agree = answers[1] == answers[0] && answers[2] == answers[0];
    double speedup = seconds[2] > 0 ? seconds[0] / seconds[2] : 0.0;
    std::printf(
        "  parallel compile: 1T %.4fs, 2T %.4fs, 4T %.4fs (%.2fx at 4T); "
        "answers agree: %s\n",
        seconds[0], seconds[1], seconds[2], speedup, agree ? "yes" : "NO");
    reporter.AddScalar("workload.threads1_seconds", seconds[0]);
    reporter.AddScalar("workload.threads2_seconds", seconds[1]);
    reporter.AddScalar("workload.threads4_seconds", seconds[2]);
    reporter.AddScalar("workload.parallel_speedup", speedup);
    reporter.AddScalar("workload.parallel_answers_agree", agree ? 1.0 : 0.0);
    reporter.AddScalar(
        "pool.tasks", static_cast<double>(obs::MetricsRegistry::Global().Get(
                          obs::kPoolTasks)));
    reporter.AddScalar(
        "pool.steals_or_waits",
        static_cast<double>(
            obs::MetricsRegistry::Global().Get(obs::kPoolStealsOrWaits)));
  }

  // --- 9. Class-compression footprint -----------------------------------
  // Every Dfa constructed above logged the bytes of its condensed
  // transition table next to the dense letter-indexed bytes it replaces
  // (and its symbol-equivalence class count). Surface the run totals so
  // the baseline JSON records how much of the dense table the class
  // partition eliminated across a realistic mixed workload.
  {
    int64_t classes =
        obs::MetricsRegistry::Global().Get(obs::kDfaClassesTotal);
    int64_t cond =
        obs::MetricsRegistry::Global().Get(obs::kDfaTableBytesCondensed);
    int64_t dense =
        obs::MetricsRegistry::Global().Get(obs::kDfaTableBytesDenseEquiv);
    std::printf(
        "  class compression: %lld classes total; table bytes %lld vs %lld "
        "dense-equivalent (%.1fx)\n",
        static_cast<long long>(classes), static_cast<long long>(cond),
        static_cast<long long>(dense),
        cond > 0 ? static_cast<double>(dense) / cond : 0.0);
    reporter.AddScalar("dfa.classes_total", static_cast<double>(classes));
    reporter.AddScalar("dfa.table_bytes_condensed",
                       static_cast<double>(cond));
    reporter.AddScalar("dfa.table_bytes_dense_equiv",
                       static_cast<double>(dense));
    reporter.AddScalar(
        "dfa.table_bytes_reduction",
        cond > 0 ? static_cast<double>(dense) / cond : 0.0);
  }

  Row("(with --json the metrics block also carries the process-wide");
  Row(" store.* / atom_cache.* counter deltas for this run)");
  return 0;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::Run(argc, argv); }
