// Lazy on-the-fly products vs eager materialization (src/lazy, ROADMAP
// item 3): the early-exit query modes against the classic
// compile-then-enumerate pipeline.
//
//   1. ExistsWitness: time-to-first-answer and states created, lazy BFS vs
//      full product compilation + shortlex enumeration of one tuple
//      (lazy.state_reduction_witness).
//   2. TopK at k = 1/10/100: answers must equal the eager shortlex prefix
//      tuple-for-tuple; states created scale with k, not with the product
//      (lazy.state_reduction_topk10).
//   3. Contains: random probe tuples through the single-path walk vs the
//      materialized automaton.
//   4. Similarity workload: a bounded-edit-distance atom (~k, sparse
//      Levenshtein automata) driving both pipelines.
//   5. Store-id invariance: lazy traffic interns nothing — recompiling the
//      materialized answer after every lazy mode yields the same canonical
//      DfaRef id (lazy.store_ids_agree).
//
// Every lazy answer is cross-checked against the eager pipeline; one
// lazy.answers_agree scalar gates the whole file (check.sh asserts it).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "bench/bench_util.h"
#include "eval/automata_eval.h"
#include "lazy/lazy.h"
#include "logic/parser.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::RandomUnaryDb;
using bench::Row;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(r);
}

int64_t ExploredStates() {
  return obs::MetricsRegistry::Global().Get(obs::kDfaProductStatesExplored);
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One isolated arm: a fresh store + cache + evaluator, so neither arm's
// computed-table entries subsidize the other.
struct Arm {
  explicit Arm(const Database* db)
      : store(true),
        cache(std::make_shared<AtomCache>(db->alphabet(), &store)),
        eval(db, cache) {}
  AutomatonStore store;
  std::shared_ptr<AtomCache> cache;
  AutomataEvaluator eval;
};

int main_impl(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "LZ", "lazy products and early exits");
  obs::SetEnabled(true);
  const uint64_t seed = 20260809;
  reporter.set_seed(seed);
  const int db_size = reporter.smoke() ? 140 : 400;
  const int max_len = reporter.smoke() ? 10 : 12;
  Database db = RandomUnaryDb(seed, db_size, 6, max_len);

  bool answers_agree = true;
  bool store_ids_agree = true;

  // -------------------------------------------------------------------
  Header("LZ-1", "ExistsWitness: first answer, lazy BFS vs full product");
  FormulaPtr fw = Q("R(x) & x <= y & member(y, '0(0|1)*')");

  Arm eager_arm(&db);
  int64_t explored_before = ExploredStates();
  int64_t t0 = NowNs();
  Result<TrackAutomaton> rel = eager_arm.eval.Compile(fw);
  if (!rel.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 rel.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<std::string>> eager_first =
      rel->EnumerateTuples(rel->NumStates(), 1);
  int64_t eager_ns = NowNs() - t0;
  int64_t eager_states = ExploredStates() - explored_before;

  Arm lazy_arm(&db);
  t0 = NowNs();
  Result<lazy::LazyProduct> product = lazy_arm.eval.CompileLazy(fw);
  if (!product.ok()) {
    std::fprintf(stderr, "lazy compile failed: %s\n",
                 product.status().ToString().c_str());
    return 1;
  }
  Result<std::optional<std::vector<std::string>>> witness =
      product->ShortestWitness();
  int64_t lazy_ns = NowNs() - t0;
  if (!witness.ok()) {
    std::fprintf(stderr, "witness failed: %s\n",
                 witness.status().ToString().c_str());
    return 1;
  }
  int64_t lazy_states = product->states_created();
  answers_agree &= witness->has_value() == !eager_first.empty();
  if (witness->has_value() && !eager_first.empty()) {
    // Shortest by convolution length; both sides expand ascending letters,
    // so the tuples are identical.
    answers_agree &= **witness == eager_first[0];
  }
  double reduction_witness =
      lazy_states > 0 ? static_cast<double>(eager_states) / lazy_states : 0;
  Row("eager: " + std::to_string(eager_ns / 1000) + "us, " +
      std::to_string(eager_states) + " product states explored");
  Row("lazy:  " + std::to_string(lazy_ns / 1000) + "us, " +
      std::to_string(lazy_states) + " states created (reduction " +
      std::to_string(reduction_witness) + "x)");
  reporter.AddScalar("lazy.first_answer_eager_ns",
                     static_cast<double>(eager_ns));
  reporter.AddScalar("lazy.first_answer_lazy_ns",
                     static_cast<double>(lazy_ns));
  reporter.AddScalar("lazy.states_eager_witness",
                     static_cast<double>(eager_states));
  reporter.AddScalar("lazy.states_lazy_witness",
                     static_cast<double>(lazy_states));
  reporter.AddScalar("lazy.state_reduction_witness", reduction_witness);

  // -------------------------------------------------------------------
  Header("LZ-2", "TopK: states created scale with k, answers shortlex-equal");
  const int topk_len = 10;
  std::vector<double> ks, lazy_topk_states, lazy_topk_ns;
  double reduction_topk10 = 0;
  for (size_t k : {size_t{1}, size_t{10}, size_t{100}}) {
    Arm arm(&db);
    t0 = NowNs();
    Result<lazy::LazyProduct> p = arm.eval.CompileLazy(fw);
    if (!p.ok()) return 1;
    Result<std::vector<std::vector<std::string>>> got = p->TopK(k, topk_len);
    int64_t ns = NowNs() - t0;
    if (!got.ok()) {
      std::fprintf(stderr, "topk failed: %s\n",
                   got.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<std::string>> want =
        rel->EnumerateTuples(topk_len, k);
    answers_agree &= *got == want;
    ks.push_back(static_cast<double>(k));
    lazy_topk_states.push_back(static_cast<double>(p->states_created()));
    lazy_topk_ns.push_back(static_cast<double>(ns));
    if (k == 10 && p->states_created() > 0) {
      reduction_topk10 =
          static_cast<double>(eager_states) / p->states_created();
    }
    Row("k=" + std::to_string(k) + ": " +
        std::to_string(p->states_created()) + " states, " +
        std::to_string(ns / 1000) + "us, " + std::to_string(got->size()) +
        " answers");
  }
  reporter.AddSeries("lazy.topk_states_created", ks, lazy_topk_states);
  reporter.AddSeries("lazy.topk_first_answer_ns", ks, lazy_topk_ns);
  reporter.AddScalar("lazy.state_reduction_topk10", reduction_topk10);

  // -------------------------------------------------------------------
  Header("LZ-3", "Contains: single-path walk vs materialized membership");
  {
    Arm arm(&db);
    Result<lazy::LazyProduct> p = arm.eval.CompileLazy(fw);
    if (!p.ok()) return 1;
    Rng rng(seed + 1);
    int checked = 0;
    for (int i = 0; i < 200; ++i) {
      std::vector<std::string> tuple = {rng.NextString("01", 0, 8),
                                       rng.NextString("01", 0, 8)};
      Result<bool> eager = rel->Contains(tuple);
      Result<bool> walked = p->Contains(tuple);
      if (!eager.ok() || !walked.ok()) return 1;
      answers_agree &= *eager == *walked;
      ++checked;
    }
    Row(std::to_string(checked) + " probe tuples, states created: " +
        std::to_string(p->states_created()));
    reporter.AddScalar("lazy.contains_states",
                       static_cast<double>(p->states_created()));
  }

  // -------------------------------------------------------------------
  Header("LZ-4", "similarity workload: ~2 neighborhood through both paths");
  {
    // Anchor the similarity atom on a word actually in the database so the
    // answer set is never trivially empty.
    const Relation* r = db.Find("R");
    std::string word = r->tuples().front()[0];
    FormulaPtr fsim = Q("R(x) & x ~2 '" + word + "'");

    Arm eager_sim(&db);
    explored_before = ExploredStates();
    t0 = NowNs();
    Result<TrackAutomaton> rel_sim = eager_sim.eval.Compile(fsim);
    if (!rel_sim.ok()) return 1;
    std::vector<std::vector<std::string>> eager_top =
        rel_sim->EnumerateTuples(max_len + 2, 10);
    int64_t eager_sim_ns = NowNs() - t0;
    int64_t eager_sim_states = ExploredStates() - explored_before;

    Arm lazy_sim(&db);
    t0 = NowNs();
    Result<lazy::LazyProduct> p = lazy_sim.eval.CompileLazy(fsim);
    if (!p.ok()) return 1;
    Result<std::vector<std::vector<std::string>>> lazy_top =
        p->TopK(10, max_len + 2);
    int64_t lazy_sim_ns = NowNs() - t0;
    if (!lazy_top.ok()) return 1;
    answers_agree &= *lazy_top == eager_top;
    Row("word '" + word + "': eager " + std::to_string(eager_sim_ns / 1000) +
        "us/" + std::to_string(eager_sim_states) + " states, lazy " +
        std::to_string(lazy_sim_ns / 1000) + "us/" +
        std::to_string(p->states_created()) + " states, " +
        std::to_string(lazy_top->size()) + " answers");
    reporter.AddScalar("lazy.levenshtein_eager_ns",
                       static_cast<double>(eager_sim_ns));
    reporter.AddScalar("lazy.levenshtein_lazy_ns",
                       static_cast<double>(lazy_sim_ns));
    reporter.AddScalar("lazy.levenshtein_states_lazy",
                       static_cast<double>(p->states_created()));
  }

  // -------------------------------------------------------------------
  Header("LZ-5", "store-id invariance: lazy traffic interns nothing");
  {
    // One shared arm: materialize, run every lazy mode, re-materialize.
    Arm arm(&db);
    Result<TrackAutomaton> before = arm.eval.Compile(fw);
    if (!before.ok()) return 1;
    Result<lazy::LazyProduct> p = arm.eval.CompileLazy(fw);
    if (!p.ok()) return 1;
    if (!p->Contains({"0", "01"}).ok()) return 1;
    if (!p->ShortestWitness().ok()) return 1;
    if (!p->TopK(10, topk_len).ok()) return 1;
    Result<TrackAutomaton> after = arm.eval.Compile(fw);
    if (!after.ok()) return 1;
    store_ids_agree = before->dfa_ref().id() == after->dfa_ref().id();
    Row(std::string("canonical id stable: ") +
        (store_ids_agree ? "yes" : "NO"));
  }

  reporter.AddScalar("lazy.answers_agree", answers_agree ? 1 : 0);
  reporter.AddScalar("lazy.store_ids_agree", store_ids_agree ? 1 : 0);
  std::printf("\nlazy.answers_agree=%d lazy.store_ids_agree=%d\n",
              answers_agree ? 1 : 0, store_ids_agree ? 1 : 0);
  return answers_agree && store_ids_agree ? 0 : 1;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::main_impl(argc, argv); }
