// Figure 2 — the paper's summary table of results. Each cell is re-derived
// by running the corresponding machinery, not copied:
//
//   language   | collapse | data complexity | safe syntax | algebra | state-safety | CQ safety
//   RC(S)      |   yes    |      AC⁰        |     yes     |  RA(S)  |  decidable   | decidable
//   RC(S_left) |   yes    |      AC⁰        |     yes     | RA(S_l) |  decidable   | decidable
//   RC(S_reg)  |   yes    |      NC¹        |     yes     | RA(S_r) |  decidable   | decidable
//   RC(S_len)  |   yes    |      PH         |     yes     | RA(S_n) |  decidable   | decidable
//   RC_concat  |    —     |  all computable |     none    |   none  | undecidable  | undecidable
//
// "Collapse" is certified by engine agreement (natural-semantics automata
// engine vs restricted-quantifier enumeration); complexity cells by measured
// scaling exponents; safe syntax by Theorem 3 coincidence; algebra by
// Theorem 4/8 round trips; safety cells by running the deciders.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"
#include "safety/query_safety.h"
#include "safety/range_restriction.h"
#include "safety/safe_translation.h"

namespace strq {
namespace {

using bench::Header;
using bench::LogLogSlope;
using bench::RandomUnaryDb;
using bench::Row;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

// Collapse cell: natural vs restricted evaluation agree on a battery.
std::string CollapseCell(const std::vector<std::string>& battery) {
  Database db = RandomUnaryDb(7, 12, 1, 5);
  AutomataEvaluator engine_a(&db);
  RestrictedEvaluator engine_b(&db);
  int agree = 0;
  for (const std::string& q : battery) {
    Result<bool> a = engine_a.EvaluateSentence(Q(q));
    Result<bool> b = engine_b.EvaluateSentence(Q(q));
    if (a.ok() && b.ok() && *a == *b) ++agree;
  }
  return "collapse " + std::to_string(agree) + "/" +
         std::to_string(battery.size());
}

// Data-complexity cell: slope of eval time vs database size for a fixed
// query (polynomial degree estimate; AC⁰/NC¹ membership itself is a circuit
// statement — the measurable shadow is low-degree polynomial scaling).
std::string ComplexityCell(const std::string& query) {
  std::vector<double> ns;
  std::vector<double> ts;
  for (int n : {40, 80, 160, 320}) {
    Database db = RandomUnaryDb(11, n, 1, 12);
    RestrictedEvaluator engine(&db);
    FormulaPtr f = Q(query);
    double t = TimeSeconds([&] { (void)engine.EvaluateSentence(f); }, 3);
    ns.push_back(n);
    ts.push_back(t);
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "poly degree ≈ %.2f", LogLogSlope(ns, ts));
  return buf;
}

// Safe-syntax cell: Theorem 3 coincidence on a safe-query battery.
std::string SafeSyntaxCell(StructureId s,
                           const std::vector<std::string>& battery) {
  Database db = RandomUnaryDb(13, 8, 1, 4);
  int ok = 0;
  for (const std::string& q : battery) {
    FormulaPtr f = Q(q);
    Result<RangeRestrictionCheck> check =
        CheckRangeRestriction(f, s, db, EffectiveK(f));
    if (check.ok() && check->phi_safe_on_db && check->coincides) ++ok;
  }
  return "γ-coincide " + std::to_string(ok) + "/" +
         std::to_string(battery.size());
}

// Algebra cell: Theorem 4/8 round trip on the same battery.
std::string AlgebraCell(StructureId s,
                        const std::vector<std::string>& battery) {
  Database db = RandomUnaryDb(17, 6, 1, 3);
  std::map<std::string, int> schema = {{"R", 1}};
  AutomataEvaluator engine(&db);
  int ok = 0;
  for (const std::string& q : battery) {
    FormulaPtr f = Q(q);
    Result<Relation> exact = engine.Evaluate(f);
    Result<RaPtr> plan = TranslateToAlgebra(f, s, schema, db.alphabet(), 3);
    if (!exact.ok() || !plan.ok()) continue;
    AlgebraEvaluator::Options options;
    options.max_tuples = 30000000;
    AlgebraEvaluator algebra(&db, options);
    Result<Relation> out = algebra.Evaluate(*plan);
    if (out.ok() && *out == *exact) ++ok;
  }
  return "RA agree " + std::to_string(ok) + "/" +
         std::to_string(battery.size());
}

// State-safety cell: Proposition 7 decisions on one safe + one unsafe query.
std::string StateSafetyCell(const std::string& safe_q,
                            const std::string& unsafe_q) {
  Database db = RandomUnaryDb(19, 8, 1, 4);
  Result<bool> s = StateSafe(Q(safe_q), db);
  Result<bool> u = StateSafe(Q(unsafe_q), db);
  bool ok = s.ok() && *s && u.ok() && !*u;
  return ok ? "decidable ✓" : "FAILED";
}

void TameRow(const char* name, StructureId s,
             const std::vector<std::string>& collapse_battery,
             const std::string& complexity_query,
             const std::vector<std::string>& safe_battery,
             const std::string& safe_q, const std::string& unsafe_q,
             const std::string& cq_query, bool cq_expected_safe) {
  std::printf("%-11s| %-14s | %-20s | %-16s | %-14s | %-12s |",
              name, CollapseCell(collapse_battery).c_str(),
              ComplexityCell(complexity_query).c_str(),
              SafeSyntaxCell(s, safe_battery).c_str(),
              AlgebraCell(s, safe_battery).c_str(),
              StateSafetyCell(safe_q, unsafe_q).c_str());
  Result<bool> cq = QuerySafe(Q(cq_query), Alphabet::Binary());
  std::printf(" CQ %s\n",
              cq.ok() && *cq == cq_expected_safe ? "decidable ✓" : "FAILED");
}

int Run() {
  Header("F2", "Figure 2 — summary of results, each cell re-derived");
  std::printf(
      "language   | collapse       | data complexity      | safe syntax   "
      "   | algebra        | state-safety | CQ safety\n");

  TameRow("RC(S)", StructureId::kS,
          {"exists x in adom. last[1](x)",
           "forall x in adom. exists y pre adom. y <= x",
           "exists x pre adom. like(x, '1%')"},
          "exists x in adom. exists y pre adom. y < x & last[0](y)",
          {"exists y. R(y) & x <= y", "R(x) & last[1](x)",
           "exists y. R(y) & step(x, y)"},
          "exists y. R(y) & x <= y", "exists y. R(y) & y <= x",
          "exists y. R(y) & x <= y", true);

  TameRow("RC(S_left)", StructureId::kSLeft,
          {"exists x in adom. trim[0](prepend[0](x)) = x",
           "forall x in adom. exists y pre adom. prepend[1](y) = x | y <= x"},
          "exists x in adom. exists y pre adom. prepend[1](y) = x",
          {"exists y. R(y) & prepend[1](y) = x",
           "exists y. R(y) & trim[1](y) = x"},
          "exists y. R(y) & prepend[1](y) = x",
          "exists y. R(y) & y <= trim[1](x)",
          "exists y. R(y) & prepend[1](y) = x", true);

  TameRow("RC(S_reg)", StructureId::kSReg,
          {"exists x in adom. member(x, '(00|11)*')",
           "exists x in adom. exists y pre adom. suffixin(y, x, '(10)*')"},
          "exists x in adom. exists y pre adom. suffixin(y, x, '1*')",
          {"exists y. R(y) & suffixin(x, y, '(11)*')",
           "R(x) & member(x, '(0|1)(0|1)')"},
          "exists y. R(y) & suffixin(x, y, '1*')",
          "member(x, '(01)*')",
          "member(x, '(01)*')", false);

  TameRow("RC(S_len)", StructureId::kSLen,
          {"exists x len adom. !adom(x) & last[1](x)",
           "forall x in adom. exists y len adom. eqlen(x, y)"},
          "exists x in adom. exists y len adom. eqlen(x, y) & last[1](y)",
          {"exists y. R(y) & eqlen(x, y)",
           "exists y. R(y) & leqlen(x, y) & member(x, '1*')"},
          "exists y. R(y) & eqlen(x, y)", "exists y. R(y) & leqlen(y, x)",
          "exists y. R(y) & eqlen(x, y)", true);

  // RC_concat: every tame tool refuses, as Corollary 1 demands.
  {
    Database db = RandomUnaryDb(23, 4, 1, 3);
    Result<bool> state = StateSafe(Q("exists w. R(w) & concat(w, w) = x"), db);
    Result<std::vector<std::string>> gamma =
        GammaCandidates(StructureId::kConcat, 2, db);
    std::printf(
        "%-11s| %-14s | %-20s | %-16s | %-14s | %-12s | CQ %s\n", "RC_concat",
        "n/a", "all computable",
        gamma.ok() ? "FAILED" : "none (Cor. 1)",
        "none (Cor. 1)",
        (!state.ok() && state.status().code() == StatusCode::kUnsupported)
            ? "undecidable"
            : "FAILED",
        "undecidable");
  }
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
