// EXT — the Conclusion's proposed extension, benchmarked: RC(S_ins) adds
// insert_a(p, x) (insertion at a prefix position). The bench shows that the
// extension inherits the tame pipeline: exact evaluation, decidable
// state-safety, a working γ-family and algebra translation — and reports
// its costs next to RC(S_left)'s (which it subsumes).

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "safety/range_restriction.h"
#include "safety/safe_translation.h"

namespace strq {
namespace {

using bench::Header;
using bench::RandomUnaryDb;
using bench::Row;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

int Run() {
  Header("EXT", "RC(S_ins) — insertion at a prefix (Conclusion)");

  Database db = RandomUnaryDb(321, 8, 1, 4);
  AutomataEvaluator engine(&db);

  // Defining identities, proved over the full infinite domain.
  for (const char* law : {
           "forall x. insert[1]('', x) = prepend[1](x)",
           "forall x. insert[0](x, x) = append[0](x)",
           "forall p. forall x. p <= x -> eqlen(insert[1](p, x), "
           "append[1](x))",
       }) {
    Result<bool> v = engine.EvaluateSentence(Q(law));
    std::printf("  law %-62s %s\n", law,
                v.ok() && *v ? "PROVED" : "FAILED");
  }

  // All one-symbol insertions into stored strings: evaluation + safety.
  FormulaPtr all_insertions =
      Q("exists x. exists p. R(x) & p <= x & insert[1](p, x) = y");
  Result<Relation> out = engine.Evaluate(all_insertions);
  Result<bool> safe = engine.IsSafeOnDatabase(all_insertions);
  double t_eval =
      TimeSeconds([&] { (void)engine.Evaluate(all_insertions); }, 3);
  std::printf(
      "\n  all insertions of '1' into R: %zu strings, safe=%s, %.4fs\n",
      out.ok() ? out->size() : 0,
      safe.ok() && *safe ? "yes" : "no", t_eval);

  // γ-family sizes: the S_ins closure vs the S_left closure at equal reach.
  std::printf("\n  γ_k candidate-set sizes (reach k):\n");
  std::printf("  k | RA(S_left) | RA(S_ins)\n");
  for (int k : {1, 2, 3}) {
    Result<std::vector<std::string>> left =
        GammaCandidates(StructureId::kSLeft, k, db, 50000000);
    Result<std::vector<std::string>> ins =
        GammaCandidates(StructureId::kSInsert, k, db, 50000000);
    std::printf("  %d | %10zu | %9zu\n", k, left.ok() ? left->size() : 0,
                ins.ok() ? ins->size() : 0);
  }
  Row("insertion reaches more strings per step than head-only operations,");
  Row("so its γ-family grows faster — the cost of the richer signature.");

  // Theorem-4-style round trip in RA(S_ins).
  std::map<std::string, int> schema = {{"R", 1}};
  FormulaPtr q = Q("exists x. R(x) & insert[1]('', x) = y");
  Result<RaPtr> plan =
      TranslateToAlgebra(q, StructureId::kSInsert, schema, db.alphabet(), 2);
  if (plan.ok()) {
    AlgebraEvaluator::Options options;
    options.max_tuples = 30000000;
    AlgebraEvaluator algebra(&db, options);
    Result<Relation> via_plan = algebra.Evaluate(*plan);
    Result<Relation> exact = engine.Evaluate(q);
    std::printf(
        "\n  RA(S_ins) translation round trip: %s\n",
        (via_plan.ok() && exact.ok() && *via_plan == *exact) ? "MATCHES"
                                                             : "failed");
  } else {
    std::printf("\n  translation: %s\n", plan.status().ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
