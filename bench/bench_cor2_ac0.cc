// Corollary 2 — RC(S) has AC⁰ data complexity; parity and connectivity are
// not expressible. Measurable shadows:
//   * fixed RC(S) queries evaluate in low-degree polynomial time as the
//     database grows (series + fitted degree);
//   * the EF-game solver certifies that parity needs unboundedly many
//     quantifier-rank levels (the classical inexpressibility argument used
//     with Corollary 3's collapse to RC(<)).

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/restricted_eval.h"
#include "games/ef_game.h"
#include "logic/parser.h"

namespace strq {
namespace {

using bench::Header;
using bench::LogLogSlope;
using bench::RandomUnaryDb;
using bench::Row;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

int Run() {
  Header("C2", "Corollary 2 — RC(S) data complexity and inexpressibility");

  // Fixed prefix-restricted RC(S) queries (the collapse normal form whose
  // enumeration gives the AC⁰/PTIME bound), over growing databases.
  struct QueryCase {
    const char* name;
    const char* text;
  };
  const QueryCase queries[] = {
      {"exists-last", "exists x in adom. last[1](x)"},
      {"pairs", "exists x in adom. exists y in adom. x < y & last[0](x)"},
      {"prefix-scan",
       "forall x in adom. exists y pre adom. y <= x & !(y = x) | x = ''"},
  };
  for (const QueryCase& q : queries) {
    std::printf("\n  query %-12s:  n ->", q.name);
    std::vector<double> ns;
    std::vector<double> ts;
    for (int n : {50, 100, 200, 400, 800}) {
      Database db = RandomUnaryDb(31, n, 1, 14);
      RestrictedEvaluator engine(&db);
      FormulaPtr f = Q(q.text);
      double t = TimeSeconds([&] { (void)engine.EvaluateSentence(f); }, 3);
      std::printf(" %d:%.4fs", n, t);
      ns.push_back(n);
      ts.push_back(t);
    }
    std::printf("\n  fitted polynomial degree: %.2f (paper: constant-depth "
                "circuits, poly size)\n",
                LogLogSlope(ns, ts));
  }

  // Parity is not FO-expressible: duplicator survives k rounds on pure sets
  // of sizes m vs m+1 once m >= k — so no fixed-rank sentence counts parity.
  std::printf("\n  parity inexpressibility (EF games on pure sets):\n");
  for (int k = 1; k <= 4; ++k) {
    FiniteStructure even(2 * k);
    FiniteStructure odd(2 * k + 1);
    Result<bool> dup = DuplicatorWins(even, odd, k);
    std::printf(
        "   rank %d: duplicator wins on |A|=%d vs |B|=%d (opposite parity): "
        "%s\n",
        k, 2 * k, 2 * k + 1,
        dup.ok() && *dup ? "yes -> rank-k FO cannot define parity" : "NO");
  }

  // Connectivity: the classical corollary via orders — linear orders of
  // sizes 2^k-1 and 2^k are k-round indistinguishable.
  std::printf("\n  order-indistinguishability thresholds:\n");
  for (int k = 2; k <= 3; ++k) {
    int m = (1 << k) - 1;
    FiniteStructure a = FiniteStructure::LinearOrder(m);
    FiniteStructure b = FiniteStructure::LinearOrder(m + 1);
    Result<bool> dup = DuplicatorWins(a, b, k);
    std::printf("   rank %d: orders %d vs %d indistinguishable: %s\n", k, m,
                m + 1, dup.ok() && *dup ? "yes" : "NO");
  }
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
