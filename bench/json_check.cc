// Smoke check for the machine-readable bench output: runs a bench binary
// with --smoke --json=<tmp> and validates that the emitted file parses and
// carries every key of the strq.bench.v1 schema. Wired into ctest so a
// bench refactor cannot silently break the JSON contract.
//
// Usage: json_check <bench-binary> [<output-path>] [<scalar-prefix>...]
//
// Every <scalar-prefix> argument is a required scalar namespace: the check
// fails unless the emitted `scalars` object has at least one key with that
// prefix (e.g. `plan.` ensures the planner counters reach the bench JSON).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "json_check: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Fail("usage: json_check <bench-binary> [<out-path>]");
  std::string out_path = argc > 2 ? argv[2] : "json_check_out.json";

  std::string command =
      std::string("\"") + argv[1] + "\" --smoke --json=" + out_path;
  int rc = std::system(command.c_str());
  if (rc != 0) return Fail("bench exited with status " + std::to_string(rc));

  std::ifstream in(out_path);
  if (!in) return Fail("bench did not write " + out_path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  strq::Result<strq::obs::JsonValue> parsed =
      strq::obs::ParseJson(buffer.str());
  if (!parsed.ok()) {
    return Fail("output is not valid JSON: " + parsed.status().ToString());
  }
  const strq::obs::JsonValue& root = *parsed;
  if (!root.is_object()) return Fail("top level is not an object");
  for (const char* key : {"schema", "id", "title", "smoke", "meta", "series",
                          "scalars", "metrics", "histograms", "memory"}) {
    if (root.Find(key) == nullptr) {
      return Fail(std::string("missing required key: ") + key);
    }
  }
  const strq::obs::JsonValue* schema = root.Find("schema");
  if (!schema->is_string() || schema->AsString() != "strq.bench.v1") {
    return Fail("schema key is not \"strq.bench.v1\"");
  }
  const strq::obs::JsonValue* smoke = root.Find("smoke");
  if (!smoke->is_bool() || !smoke->AsBool()) {
    return Fail("smoke flag not reflected in output");
  }
  const strq::obs::JsonValue* meta = root.Find("meta");
  if (!meta->is_object()) return Fail("meta is not an object");
  for (const char* key : {"harness_version", "seed", "threads",
                          "product_kernel", "class_kernel"}) {
    if (meta->Find(key) == nullptr) {
      return Fail(std::string("meta missing required key: ") + key);
    }
  }
  const strq::obs::JsonValue* hists = root.Find("histograms");
  if (!hists->is_object()) return Fail("histograms is not an object");
  for (const auto& [name, h] : hists->members()) {
    if (!h.is_object()) return Fail("histogram entry is not an object: " + name);
    for (const char* key : {"count", "min", "max", "mean", "p50", "p90",
                            "p99"}) {
      if (h.Find(key) == nullptr) {
        return Fail("histogram " + name + " missing key: " + key);
      }
    }
  }
  const strq::obs::JsonValue* memory = root.Find("memory");
  if (!memory->is_object()) return Fail("memory is not an object");
  for (const char* key : {"store.bytes", "atom_cache.bytes",
                          "plan.cache_bytes"}) {
    if (memory->Find(key) == nullptr || !memory->Find(key)->is_number()) {
      return Fail(std::string("memory missing numeric gauge: ") + key);
    }
  }
  const strq::obs::JsonValue* series = root.Find("series");
  if (!series->is_array()) return Fail("series is not an array");
  for (size_t i = 0; i < series->size(); ++i) {
    const strq::obs::JsonValue& one = series->At(i);
    for (const char* key : {"name", "xs", "ys", "loglog_slope"}) {
      if (one.Find(key) == nullptr) {
        return Fail("series entry missing key: " + std::string(key));
      }
    }
    if (one.Find("xs")->size() != one.Find("ys")->size()) {
      return Fail("series entry has mismatched xs/ys lengths");
    }
  }
  const strq::obs::JsonValue* scalars = root.Find("scalars");
  if (!scalars->is_object()) return Fail("scalars is not an object");
  for (int i = 3; i < argc; ++i) {
    const std::string prefix = argv[i];
    bool found = false;
    for (const auto& [key, value] : scalars->members()) {
      if (key.rfind(prefix, 0) == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Fail("scalars has no key with required prefix: " + prefix);
    }
  }
  std::printf("json_check: %s OK (%zu series)\n", out_path.c_str(),
              series->size());
  return 0;
}
