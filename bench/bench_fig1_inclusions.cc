// Figure 1 — the inclusion diagram of the five calculi:
//
//            RC_concat
//                |
//             RC(S_len)
//             /       \
//       RC(S_left)  RC(S_reg)
//             \       /
//               RC(S)
//
// Every edge and non-edge is re-established by machine: inclusions by the
// signature system plus semantic agreement, separations by the definable-
// subset characterizations (star-free for S/S_left, regular for S_reg/S_len,
// checked with the aperiodicity tester) and by the engine-level behaviour of
// concatenation.

#include <cstdio>

#include "automata/starfree.h"
#include "bench/bench_util.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/signature.h"

namespace strq {
namespace {

using bench::Header;
using bench::Row;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) {
    std::printf("bench bug: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(r);
}

const char* Verdict(bool ok) { return ok ? "CONFIRMED" : "FAILED"; }

// Is the unary query's answer set (over the empty database) star-free?
bool AnswerStarFree(const std::string& query) {
  Database empty(Alphabet::Binary());
  AutomataEvaluator engine(&empty);
  Result<TrackAutomaton> rel = engine.Compile(Q(query));
  if (!rel.ok()) return false;
  // The relation automaton over one track of the convolution alphabet (with
  // a pad digit that never occurs on canonical unary words) recognizes the
  // answer language directly.
  Result<bool> sf = IsStarFree(rel->dfa());
  return sf.ok() && *sf;
}

int Run() {
  Header("F1", "Figure 1 — inclusions and separations between the calculi");

  // --- Inclusions (signature level + spot semantic agreement) -----------
  struct Edge {
    StructureId lo;
    StructureId hi;
  };
  for (const Edge& e : {Edge{StructureId::kS, StructureId::kSLeft},
                        Edge{StructureId::kS, StructureId::kSReg},
                        Edge{StructureId::kSLeft, StructureId::kSLen},
                        Edge{StructureId::kSReg, StructureId::kSLen},
                        Edge{StructureId::kSLen, StructureId::kConcat}}) {
    bool inc = StructureIncludes(e.hi, e.lo);
    Row(std::string("RC(") + StructureName(e.lo) + ") ⊆ RC(" +
        StructureName(e.hi) + ")   [signature]            " + Verdict(inc));
  }

  // --- S ⊊ S_reg: a non-star-free definable set --------------------------
  bool s_answers_star_free =
      AnswerStarFree("member(x, '0*1')") &&
      AnswerStarFree("like(x, '0%1')") &&
      AnswerStarFree("exists y. x <= y & y = '0110' & last[0](x)");
  bool sreg_non_star_free = !AnswerStarFree("member(x, '(00)*')");
  Row(std::string("RC(S) unary answers are star-free          ") +
      Verdict(s_answers_star_free));
  Row(std::string("RC(S_reg) defines non-star-free ((00)*)    ") +
      Verdict(sreg_non_star_free));
  Row(std::string("⇒ RC(S) ⊊ RC(S_reg)                        ") +
      Verdict(s_answers_star_free && sreg_non_star_free));

  // --- S ⊊ S_left: f_a exists only above S (signature + semantics) -------
  Status prepend_in_s = CheckInLanguage(Q("prepend[1](x) = y"),
                                        StructureId::kS, Alphabet::Binary());
  Row(std::string("prepend (f_a) rejected in RC(S)            ") +
      Verdict(prepend_in_s.code() == StatusCode::kNotInLanguage));
  // f_a is genuinely usable in S_left: compile and check one value.
  {
    Database empty(Alphabet::Binary());
    AutomataEvaluator engine(&empty);
    Result<Relation> out = engine.Evaluate(Q("prepend[1]('01') = x"));
    bool ok = out.ok() && out->size() == 1 && out->tuples()[0][0] == "101";
    Row(std::string("f_1('01') = '101' computed in RC(S_left)   ") +
        Verdict(ok));
  }

  // --- S_left vs S_reg incomparability ------------------------------------
  // S_left ⊄ S_reg: the paper proves the graph of f_a is not definable in
  // S_reg (game argument). Machine-visible shadow: the signature gate.
  Status prepend_in_sreg = CheckInLanguage(
      Q("prepend[1](x) = y"), StructureId::kSReg, Alphabet::Binary());
  Row(std::string("prepend (f_a) rejected in RC(S_reg)        ") +
      Verdict(prepend_in_sreg.code() == StatusCode::kNotInLanguage));
  // S_reg ⊄ S_left: every S_left-definable subset of Σ* is star-free [8];
  // check on an S_left query battery, vs the non-star-free S_reg set above.
  bool sleft_star_free =
      AnswerStarFree("exists y. prepend[1](y) = x & last[0](x)") &&
      AnswerStarFree("exists y. trim[0](x) = y & y = '11'");
  Row(std::string("RC(S_left) unary answers are star-free     ") +
      Verdict(sleft_star_free));
  Row(std::string("⇒ RC(S_left) and RC(S_reg) incomparable    ") +
      Verdict(sleft_star_free && sreg_non_star_free));

  // --- (S_left ∪ S_reg) ⊊ S_len ------------------------------------------
  Status eqlen_below = CheckInLanguage(Q("eqlen(x, y)"), StructureId::kSReg,
                                       Alphabet::Binary());
  Status eqlen_left = CheckInLanguage(Q("eqlen(x, y)"), StructureId::kSLeft,
                                      Alphabet::Binary());
  Row(std::string("el (equal length) rejected below RC(S_len) ") +
      Verdict(eqlen_below.code() == StatusCode::kNotInLanguage &&
              eqlen_left.code() == StatusCode::kNotInLanguage));
  {
    // And S_len really computes with it — el over Σ*, no database.
    Database empty(Alphabet::Binary());
    AutomataEvaluator engine(&empty);
    Result<bool> v = engine.EvaluateSentence(
        Q("forall x. exists y. eqlen(x, y) & member(y, '1*')"));
    Row(std::string("S_len sentence decided (∀x ∃y el ∧ y∈1*)   ") +
        Verdict(v.ok() && *v));
  }

  // --- S_len ⊊ RC_concat ---------------------------------------------------
  {
    Database empty(Alphabet::Binary());
    AutomataEvaluator engine(&empty);
    Result<bool> v = engine.EvaluateSentence(
        Q("exists x. concat(x, x) = ''"));
    Row(std::string("concatenation breaks the automatic engine ") +
        Verdict(!v.ok() && v.status().code() == StatusCode::kUnsupported));
    Status gate = CheckInLanguage(Q("concat(x, y) = z"), StructureId::kSLen,
                                  Alphabet::Binary());
    Row(std::string("concat rejected in RC(S_len)               ") +
        Verdict(gate.code() == StatusCode::kNotInLanguage));
  }
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
