// Proposition 5 — over width-bounded databases, RC(S_len) expresses all of
// MSO, including NP-complete problems such as 3-colorability.
//
// The encoding (width 1): vertex i is the string 0^i; an MSO set variable
// becomes a first-order string variable c whose i-th bit marks membership
// of vertex i — bit i is read with prefixes and equal-length comparison:
//     bit(c, v) ≡ ∃p (p ≼ c ∧ el(p, v) ∧ L_1(p)).
// Two set variables give four colors; excluding one leaves three.
//
// The bench solves random instances through the RC(S_len) query (exact
// automata engine) and cross-checks a brute-force 3^n baseline, reporting
// agreement and times — NP-hardness living inside a "first-order" language.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/automata_eval.h"

namespace strq {
namespace {

using bench::Header;
using bench::TimeSeconds;

// bit(c, v): the |v|-th symbol of c is 1.
FormulaPtr Bit(const std::string& c, const std::string& v) {
  return FExists(
      "p", FAndAll({FPred(PredKind::kPrefix, {TVar("p"), TVar(c)}),
                    FPred(PredKind::kEqLen, {TVar("p"), TVar(v)}),
                    FLast('1', TVar("p"))}));
}

FormulaPtr SameColor(const std::string& u, const std::string& v) {
  return FAnd(FIff(Bit("c1", u), Bit("c1", v)),
              FIff(Bit("c2", u), Bit("c2", v)));
}

// ∃c1 ∃c2: no vertex colored (1,1); adjacent vertices differ.
FormulaPtr ThreeColorable() {
  FormulaPtr not_fourth = FForall(
      "v", FImplies(FRelation("V", {TVar("v")}),
                    FNot(FAnd(Bit("c1", "v"), Bit("c2", "v")))));
  FormulaPtr proper = FForall(
      "u", FForall("v", FImplies(FRelation("E", {TVar("u"), TVar("v")}),
                                 FNot(SameColor("u", "v")))));
  return FExists("c1", FExists("c2", FAnd(not_fourth, proper)));
}

// Graph as a width-1 string database: vertex i -> 0^i (i >= 1).
Database GraphDb(int n, const std::vector<std::pair<int, int>>& edges) {
  Database db(Alphabet::Binary());
  std::vector<Tuple> vertices;
  auto vstr = [](int i) { return std::string(static_cast<size_t>(i), '0'); };
  for (int i = 1; i <= n; ++i) vertices.push_back({vstr(i)});
  std::vector<Tuple> edge_tuples;
  for (const auto& [u, v] : edges) {
    edge_tuples.push_back({vstr(u), vstr(v)});
    edge_tuples.push_back({vstr(v), vstr(u)});
  }
  Status s1 = db.AddRelation("V", 1, std::move(vertices));
  Status s2 = db.AddRelation("E", 2, std::move(edge_tuples));
  (void)s1;
  (void)s2;
  return db;
}

bool BruteForce3Col(int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<int> color(n + 1, 0);
  // Odometer over 3^n colorings.
  while (true) {
    bool proper = true;
    for (const auto& [u, v] : edges) {
      if (color[u] == color[v]) {
        proper = false;
        break;
      }
    }
    if (proper) return true;
    int i = 1;
    while (i <= n && ++color[i] == 3) color[i++] = 0;
    if (i > n) return false;
  }
}

std::vector<std::pair<int, int>> RandomGraph(Rng& rng, int n, double p) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 1; u <= n; ++u) {
    for (int v = u + 1; v <= n; ++v) {
      if (rng.NextBelow(100) < static_cast<uint64_t>(p * 100)) {
        edges.push_back({u, v});
      }
    }
  }
  return edges;
}

int Run() {
  Header("P5", "Proposition 5 — 3-colorability in RC(S_len) (width-1 dbs)");

  FormulaPtr query = ThreeColorable();

  // Sanity anchors: K3 is 3-colorable, K4 is not.
  {
    Database k3 = GraphDb(3, {{1, 2}, {1, 3}, {2, 3}});
    Database k4 = GraphDb(4, {{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4},
                              {3, 4}});
    AutomataEvaluator e3(&k3);
    AutomataEvaluator e4(&k4);
    Result<bool> v3 = e3.EvaluateSentence(query);
    Result<bool> v4 = e4.EvaluateSentence(query);
    std::printf("  K3 3-colorable: %s (expected yes)\n",
                v3.ok() ? (*v3 ? "yes" : "no") : v3.status().ToString().c_str());
    std::printf("  K4 3-colorable: %s (expected no)\n",
                v4.ok() ? (*v4 ? "yes" : "no") : v4.status().ToString().c_str());
  }

  std::printf("\n  n | edges | RC(S_len) | brute | agree | t_query (s) | "
              "t_brute (s)\n");
  Rng rng(2026);
  for (int n : {3, 4, 5, 6, 7}) {
    std::vector<std::pair<int, int>> edges = RandomGraph(rng, n, 0.6);
    Database db = GraphDb(n, edges);
    AutomataEvaluator engine(&db);
    Result<bool> via_query = engine.EvaluateSentence(query);
    bool via_brute = BruteForce3Col(n, edges);
    double tq =
        TimeSeconds([&] { (void)engine.EvaluateSentence(query); });
    double tb = TimeSeconds([&] { (void)BruteForce3Col(n, edges); });
    std::printf("  %d | %5zu | %9s | %5s | %5s | %11.4f | %10.6f\n", n,
                edges.size(),
                via_query.ok() ? (*via_query ? "yes" : "no") : "ERR",
                via_brute ? "yes" : "no",
                via_query.ok() && *via_query == via_brute ? "yes" : "NO",
                tq, tb);
  }
  std::printf(
      "\n  the RC(S_len) route is far slower — as it must be: the query\n"
      "  is FIXED and the hardness lives in data complexity (Prop. 5).\n");
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
