// Theorem 3 / Corollary 5 (and Theorem 7 / Corollary 9 for S_left, S_reg) —
// range-restricted queries = safe queries, with effective syntax. For a
// battery of queries per structure the bench reports: the state-safety
// verdict, whether the range-restricted query (γ_k, φ) coincides with the
// exact answer on safe instances, the size of the γ_k candidate set, and
// timing.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "logic/parser.h"
#include "safety/range_restriction.h"

namespace strq {
namespace {

using bench::Header;
using bench::RandomUnaryDb;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

struct Case {
  StructureId structure;
  const char* query;
  bool expect_safe;  // on the bench database
};

int Run() {
  Header("T3", "Theorem 3/7 — range restriction captures safe queries");

  Database db = RandomUnaryDb(61, 8, 1, 4);

  const std::vector<Case> battery = {
      {StructureId::kS, "exists y. R(y) & x <= y", true},
      {StructureId::kS, "R(x) & last[1](x)", true},
      {StructureId::kS, "exists y. R(y) & step(y, x)", true},
      {StructureId::kS, "exists y. R(y) & append[0](y) = x", true},
      {StructureId::kS, "exists y. R(y) & lcp(x, y) = x", true},
      {StructureId::kS, "exists y. R(y) & y <= x", false},
      {StructureId::kS, "!R(x)", false},
      {StructureId::kSLeft, "exists y. R(y) & prepend[0](y) = x", true},
      {StructureId::kSLeft, "exists y. R(y) & trim[0](y) = x", true},
      {StructureId::kSReg, "exists y. R(y) & suffixin(x, y, '(01)*')", true},
      {StructureId::kSReg, "member(x, '(01)*')", false},
      {StructureId::kSLen, "exists y. R(y) & eqlen(x, y)", true},
      {StructureId::kSLen, "exists y. R(y) & leqlen(x, y) & last[1](x)",
       true},
      {StructureId::kSLen, "exists y. R(y) & leqlen(y, x)", false},
  };

  std::printf(
      "  struct  | safe? | expect | coincide | |γ_k| | |ans| | t (s) | "
      "query\n");
  for (const Case& c : battery) {
    FormulaPtr f = Q(c.query);
    int k = EffectiveK(f);
    Result<std::vector<std::string>> gamma =
        GammaCandidates(c.structure, k, db);
    size_t gamma_size = gamma.ok() ? gamma->size() : 0;
    Result<RangeRestrictionCheck> check = InternalError("unset");
    double t = TimeSeconds(
        [&] { check = CheckRangeRestriction(f, c.structure, db, k); });
    if (!check.ok()) {
      std::printf("  %-7s | (%s) %s\n", StructureName(c.structure),
                  check.status().ToString().c_str(), c.query);
      continue;
    }
    std::printf("  %-7s | %-5s | %-6s | %-8s | %5zu | %5zu | %.3f | %s\n",
                StructureName(c.structure),
                check->phi_safe_on_db ? "yes" : "no",
                c.expect_safe ? "yes" : "no",
                check->phi_safe_on_db
                    ? (check->coincides ? "yes" : "NO!")
                    : "n/a",
                gamma_size, check->restricted_size, t, c.query);
  }
  std::printf(
      "\n  every safe query's exact answer equals its (γ_k, φ) restriction —\n"
      "  the executable content of 'safe = range-restricted' (Cor. 5/9).\n");
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
