// Ablations of the design choices DESIGN.md calls out:
//   1. plan-node memoization in the algebra evaluator (safe-translation
//      plans share the γ-universe subtree heavily);
//   2. formula simplification before compilation;
//   3. eager minimization inside the track-automaton pipeline (measured
//      indirectly: answer-automaton sizes stay small because every op
//      minimizes — reported as state counts along a compilation);
//   4. the hash-consed AutomatonStore + shared AtomCache: the same query
//      battery evaluated with the substrate fully on (one warm cache) vs
//      fully off (non-caching store, fresh cache per evaluation);
//   5. the cost-based planner: intermediate automaton states with planning
//      off, per rule in isolation (miniscoping, reordering), and all on;
//   6. the product kernels: the retained eager (allocate |A|x|B|) kernel vs
//      the reachable-only worklist kernel vs reachable + parallel subplan
//      compilation, scored by wall clock and by the explored/allocated
//      state ratio (dfa.product_states_explored / _allocated — below 1.0
//      means the worklist skipped unreachable product states);
//   7. character-class alphabet compression: the dense letter-indexed
//      kernels vs the condensed class-indexed ones on an arity-4
//      multi-track workload, scored by transition computations
//      (dfa.product_transitions_computed), by condensed-vs-dense table
//      bytes, and by canonical intern ids (which must not depend on the
//      kernel);
//   8. incremental maintenance under an update stream: the same sequence
//      of tuple-delta commits replayed against a server with the src/incr
//      index on (tries and answer automata patched across revisions) vs
//      off (full recompile from every new snapshot), scored by updates/sec
//      and gated on per-step answer counts, canonical store ids and
//      safety verdicts being identical streams.

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <memory>
#include <optional>

#include "automata/dfa.h"
#include "automata/ops.h"
#include "automata/regex.h"
#include "automata/store.h"
#include "bench/bench_util.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/simplify.h"
#include "mta/atom_cache.h"
#include "mta/track_automaton.h"
#include "obs/trace.h"
#include "plan/planner.h"
#include "relational/snapshot.h"
#include "safety/safe_translation.h"
#include "serve/server.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::RandomUnaryDb;
using bench::Row;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

int Run(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "AB",
                         "ablations — memoization, simplification, "
                         "minimization, automaton store");
  Header("AB", "ablations — memoization, simplification, minimization, store");

  Database db = RandomUnaryDb(123, 8, 1, 4);
  std::map<std::string, int> schema = {{"R", 1}};

  // --- 1. Plan memoization --------------------------------------------
  // An RA(S_left) plan: the left-closure universe is expensive and the
  // translation references it from several atoms — the memoization target.
  FormulaPtr query = Q("exists y. R(y) & prepend[1](y) = x & !(x = '')");
  Result<RaPtr> plan = TranslateToAlgebra(query, StructureId::kSLeft, schema,
                                          db.alphabet(), 3);
  if (!plan.ok()) {
    std::printf("  translation failed: %s\n",
                plan.status().ToString().c_str());
    return 1;
  }
  AlgebraEvaluator::Options with_memo;
  with_memo.max_tuples = 30000000;
  AlgebraEvaluator::Options without_memo = with_memo;
  without_memo.enable_memo = false;
  AlgebraEvaluator memo_eval(&db, with_memo);
  AlgebraEvaluator nomemo_eval(&db, without_memo);
  double t_memo = TimeSeconds([&] { (void)memo_eval.Evaluate(*plan); }, 3);
  double t_nomemo =
      TimeSeconds([&] { (void)nomemo_eval.Evaluate(*plan); }, 3);
  std::printf(
      "  [1] plan memoization: with %.4fs, without %.4fs (%.1fx)\n", t_memo,
      t_nomemo, t_nomemo / t_memo);

  // --- 2. Simplification before compilation ----------------------------
  // A query with foldable clutter of the kind machine-generated queries
  // accumulate.
  FormulaPtr noisy = Q(
      "exists x. (R(x) & ('0' = '0' | last[1](x))) & "
      "(true -> (x <= x & !(!(append[1]('0') = '01')))) & "
      "(exists z. z = lcp('010', '011') & z <= x)");
  FormulaPtr simplified = Simplify(noisy);
  AutomataEvaluator engine(&db);
  double t_noisy =
      TimeSeconds([&] { (void)engine.EvaluateSentence(noisy); }, 5);
  double t_simplified =
      TimeSeconds([&] { (void)engine.EvaluateSentence(simplified); }, 5);
  std::printf(
      "  [2] simplification: size %d -> %d; compile+eval %.4fs -> %.4fs\n",
      FormulaSize(noisy), FormulaSize(simplified), t_noisy, t_simplified);
  Result<bool> a = engine.EvaluateSentence(noisy);
  Result<bool> b = engine.EvaluateSentence(simplified);
  std::printf("      answers agree: %s\n",
              (a.ok() && b.ok() && *a == *b) ? "yes" : "NO");

  // --- 3. Minimization keeps answer automata small ----------------------
  // Compile a 3-variable query and report the final automaton size; the
  // per-operation Moore minimization inside TrackAutomaton is what keeps
  // this in the tens of states rather than the product of the parts.
  FormulaPtr wide = Q(
      "exists y. exists z. R(y) & R(z) & lcp(y, z) = x & "
      "lexleq(x, y) & leqlen(x, z)");
  Result<TrackAutomaton> rel = engine.Compile(wide);
  if (rel.ok()) {
    std::printf(
        "  [3] 3-variable query compiles to %d states (per-op minimization"
        " on)\n",
        rel->NumStates());
  }
  Row("(the minimization OFF variant is structural — every op calls");
  Row(" Minimized() in TrackAutomaton::Create — so its ablation is the");
  Row(" state-count evidence above rather than a runtime switch)");
  if (rel.ok()) {
    reporter.AddScalar("minimization.final_states",
                       static_cast<double>(rel->NumStates()));
  }
  reporter.AddScalar("memo.with_seconds", t_memo);
  reporter.AddScalar("memo.without_seconds", t_nomemo);
  reporter.AddScalar("simplify.noisy_seconds", t_noisy);
  reporter.AddScalar("simplify.simplified_seconds", t_simplified);

  // --- 4. Hash-consed store on/off --------------------------------------
  // Store ON: one AutomatonStore + AtomCache shared across every
  // evaluation, so atoms/patterns/tries compile once and the computed
  // table absorbs repeated products. Store OFF: a disabled store and a
  // fresh cache per evaluation — the pre-substrate behavior, everything
  // rebuilt from scratch each time.
  {
    Database sdb = RandomUnaryDb(77, 16, 1, 6);
    const FormulaPtr battery[] = {
        Q("exists x in adom. last[1](x) & like(x, '0%')"),
        Q("forall x in adom. member(x, '(0|1)*')"),
        Q("forall x in adom. forall y in adom. lexleq(lcp(x, y), x)"),
        Q("exists x in adom. R(x) & like(x, '%1')"),
    };
    int reps = reporter.smoke() ? 2 : 5;
    AutomatonStore store_on(true);
    auto cache_on = std::make_shared<AtomCache>(sdb.alphabet(), &store_on);
    std::vector<int> on_answers;
    std::vector<int> off_answers;
    double t_on = TimeSeconds(
        [&] {
          AutomataEvaluator engine(&sdb, cache_on);
          on_answers.clear();
          for (const FormulaPtr& f : battery) {
            Result<bool> v = engine.EvaluateSentence(f);
            on_answers.push_back(v.ok() ? static_cast<int>(*v) : -1);
          }
        },
        reps);
    double t_off = TimeSeconds(
        [&] {
          AutomatonStore store_off(false);
          auto cache_off =
              std::make_shared<AtomCache>(sdb.alphabet(), &store_off);
          AutomataEvaluator engine(&sdb, cache_off);
          off_answers.clear();
          for (const FormulaPtr& f : battery) {
            Result<bool> v = engine.EvaluateSentence(f);
            off_answers.push_back(v.ok() ? static_cast<int>(*v) : -1);
          }
        },
        reps);
    AutomatonStore::Stats st = store_on.stats();
    double unique_total =
        static_cast<double>(st.unique_hits + st.unique_misses);
    double op_total = static_cast<double>(st.op_hits + st.op_misses);
    std::printf(
        "  [4] automaton store: on %.4fs, off %.4fs (%.1fx); answers agree: "
        "%s\n",
        t_on, t_off, t_off / t_on, on_answers == off_answers ? "yes" : "NO");
    std::printf(
        "      store: unique %lld/%lld hits (%.0f%%), ops %lld/%lld hits "
        "(%.0f%%)\n",
        static_cast<long long>(st.unique_hits),
        static_cast<long long>(st.unique_hits + st.unique_misses),
        unique_total > 0 ? 100.0 * st.unique_hits / unique_total : 0.0,
        static_cast<long long>(st.op_hits),
        static_cast<long long>(st.op_hits + st.op_misses),
        op_total > 0 ? 100.0 * st.op_hits / op_total : 0.0);
    reporter.AddScalar("store.on_seconds", t_on);
    reporter.AddScalar("store.off_seconds", t_off);
    reporter.AddScalar("store.speedup", t_on > 0 ? t_off / t_on : 0.0);
    reporter.AddScalar("store.unique_hits",
                       static_cast<double>(st.unique_hits));
    reporter.AddScalar("store.unique_misses",
                       static_cast<double>(st.unique_misses));
    reporter.AddScalar("store.op_hits", static_cast<double>(st.op_hits));
    reporter.AddScalar("store.op_misses", static_cast<double>(st.op_misses));
    reporter.AddScalar(
        "store.unique_hit_rate",
        unique_total > 0 ? st.unique_hits / unique_total : 0.0);
    reporter.AddScalar("store.op_hit_rate",
                       op_total > 0 ? st.op_hits / op_total : 0.0);
    reporter.AddScalar("store.answers_agree",
                       on_answers == off_answers ? 1.0 : 0.0);
  }

  // --- 5. Cost-based planner on/off/per-rule -----------------------------
  // The same workloads compiled with the planner fully off, with single
  // rules isolated (miniscoping alone, reordering alone), and with every
  // rule on. The measured quantity is mta.intermediate_states — the states
  // of every intermediate product/complement/projection an evaluation
  // builds — which is exactly what the rewrites exist to shrink.
  {
    Database pdb = RandomUnaryDb(77, 16, 1, 6);
    const FormulaPtr workload[] = {
        // Reordering: two large pattern automata and one tiny equality; the
        // greedy order folds the equality in first so the big product never
        // happens at full width.
        Q("member(x, '(0|1)*1(0|1)(0|1)(0|1)') & "
          "member(x, '(0|1)(0|1)*0(0|1)(0|1)') & x = '0110' & R(x)"),
        // Miniscoping: independent quantifier blocks compiled as one
        // two-track product unless the exists are pushed apart.
        Q("exists x in adom. exists y in adom. (last[1](x) & like(y, '1%'))"),
        // Negation pushdown + miniscoping: ∀∀ over a disjunction whose
        // disjuncts use one variable each.
        Q("forall x in adom. forall y in adom. "
          "(last[1](x) | last[0](y) | like(x, '0%'))"),
    };
    struct Config {
      const char* name;
      plan::PlannerOptions opts;
    };
    plan::PlannerOptions off;
    off.enable = false;
    plan::PlannerOptions mini_only;
    mini_only.enable_fold = false;
    mini_only.enable_negation_pushdown = false;
    mini_only.enable_prune = false;
    mini_only.enable_reorder = false;
    plan::PlannerOptions reorder_only;
    reorder_only.enable_fold = false;
    reorder_only.enable_negation_pushdown = false;
    reorder_only.enable_miniscope = false;
    reorder_only.enable_prune = false;
    const Config configs[] = {
        {"off", off},
        {"miniscope", mini_only},
        {"reorder", reorder_only},
        {"all", plan::PlannerOptions()},
    };
    obs::ScopedEnable enable(true);
    std::map<std::string, std::vector<int64_t>> per_query_states;
    std::vector<std::vector<int>> answers;
    int64_t rules_fired_all = 0;
    for (const Config& config : configs) {
      // Fresh substrate per config so computed-table hits don't leak work
      // (or its absence) between configurations.
      AutomatonStore store(true);
      auto cache = std::make_shared<AtomCache>(pdb.alphabet(), &store);
      auto planner = std::make_shared<plan::Planner>(config.opts);
      AutomataEvaluator engine(&pdb, cache, planner);
      std::vector<int> config_answers;
      std::vector<int64_t>& states = per_query_states[config.name];
      for (const FormulaPtr& f : workload) {
        std::map<std::string, int64_t> before =
            obs::MetricsRegistry::Global().Snapshot();
        int answer = -1;
        if (FreeVars(f).empty()) {
          Result<bool> v = engine.EvaluateSentence(f);
          if (v.ok()) answer = static_cast<int>(*v);
        } else {
          Result<Relation> v = engine.Evaluate(f);
          if (v.ok()) answer = static_cast<int>(v->size());
        }
        config_answers.push_back(answer);
        std::map<std::string, int64_t> delta = obs::MetricsDelta(
            before, obs::MetricsRegistry::Global().Snapshot());
        states.push_back(delta[obs::kMtaIntermediateStates]);
      }
      answers.push_back(std::move(config_answers));
      if (std::string(config.name) == "all") {
        rules_fired_all = planner->stats().rules_fired;
      }
    }
    bool agree = true;
    for (const auto& a : answers) agree = agree && a == answers[0];
    std::printf("  [5] planner (mta.intermediate_states per workload):\n");
    int64_t off_total = 0;
    int64_t all_total = 0;
    double best_reduction = 0.0;
    for (size_t w = 0; w < std::size(workload); ++w) {
      int64_t off_states = per_query_states["off"][w];
      int64_t all_states = per_query_states["all"][w];
      off_total += off_states;
      all_total += all_states;
      double reduction =
          off_states > 0
              ? 1.0 - static_cast<double>(all_states) / off_states
              : 0.0;
      best_reduction = std::max(best_reduction, reduction);
      std::printf(
          "      w%zu: off %lld, miniscope %lld, reorder %lld, all %lld "
          "(%.0f%% reduction)\n",
          w + 1, static_cast<long long>(off_states),
          static_cast<long long>(per_query_states["miniscope"][w]),
          static_cast<long long>(per_query_states["reorder"][w]),
          static_cast<long long>(all_states), 100.0 * reduction);
      reporter.AddScalar("plan.w" + std::to_string(w + 1) + ".reduction",
                         reduction);
    }
    std::printf(
        "      total: off %lld -> all %lld; %lld rule(s) fired; answers "
        "agree: %s\n",
        static_cast<long long>(off_total), static_cast<long long>(all_total),
        static_cast<long long>(rules_fired_all), agree ? "yes" : "NO");
    reporter.AddScalar("plan.off_intermediate_states",
                       static_cast<double>(off_total));
    reporter.AddScalar("plan.all_intermediate_states",
                       static_cast<double>(all_total));
    reporter.AddScalar(
        "plan.total_reduction",
        off_total > 0 ? 1.0 - static_cast<double>(all_total) / off_total
                      : 0.0);
    reporter.AddScalar("plan.best_workload_reduction", best_reduction);
    reporter.AddScalar("plan.rules_fired", static_cast<double>(rules_fired_all));
    reporter.AddScalar("plan.answers_agree", agree ? 1.0 : 0.0);
  }

  // --- 6. Product kernels: eager vs reachable vs reachable+parallel ------
  // Three workloads whose conjunctions build real products. Each config
  // gets a fresh substrate (no computed-table leakage); the explored and
  // allocated counters come from the metrics delta of each workload. The
  // eager kernel materializes the full |A|x|B| space, so its ratio is 1 by
  // construction; the worklist kernel's ratio is the fraction of the
  // product space that is actually reachable.
  {
    Database kdb = RandomUnaryDb(77, 16, 1, 6);
    const FormulaPtr workload[] = {
        // Anchored prefixes + length counters: their pairwise products are
        // diagonal-sparse (a state at prefix depth i can only meet counter
        // states at the same depth), the reachable-only kernel's best case.
        Q("member(x, '010(0|1)*') & "
          "member(x, '(0|1)(0|1)(0|1)(0|1)(0|1)*0(0|1)*') & "
          "member(x, '01(0|1)*1') & R(x)"),
        Q("exists x in adom. (like(x, '0%1') & member(x, '(0|1)*01(0|1)*') & "
          "member(x, '(00|01|10|11)*'))"),
        Q("forall x in adom. forall y in adom. "
          "(lexleq(lcp(x, y), x) | member(y, '(0|1)*11(0|1)*'))"),
    };
    struct KernelConfig {
      const char* name;
      ProductKernel kernel;
      int threads;
    };
    // Explicit 4 threads (not 0 = auto) so the pool path runs even on
    // single-core CI boxes, where auto degrades to serial by design.
    const KernelConfig configs[] = {
        {"eager", ProductKernel::kEager, 1},
        {"reachable", ProductKernel::kReachable, 1},
        {"reachable+parallel", ProductKernel::kReachable, 4},
    };
    obs::ScopedEnable enable(true);
    int reps = reporter.smoke() ? 2 : 5;
    std::vector<std::vector<int>> answers;
    std::printf("  [6] product kernels (explored/allocated per workload):\n");
    for (const KernelConfig& config : configs) {
      ScopedProductKernel kernel(config.kernel);
      std::vector<int> config_answers;
      double total_seconds = 0;
      std::string ratios;
      for (size_t w = 0; w < std::size(workload); ++w) {
        std::map<std::string, int64_t> before =
            obs::MetricsRegistry::Global().Snapshot();
        int answer = -1;
        double t = TimeSeconds(
            [&] {
              // Fresh substrate per rep: the kernels must do their work
              // every time rather than serve the computed table.
              AutomatonStore store(true);
              auto cache = std::make_shared<AtomCache>(kdb.alphabet(), &store);
              AutomataEvaluator engine(&kdb, cache);
              engine.set_parallel_options(ParallelOptions{config.threads});
              if (FreeVars(workload[w]).empty()) {
                Result<bool> v = engine.EvaluateSentence(workload[w]);
                answer = v.ok() ? static_cast<int>(*v) : -1;
              } else {
                Result<Relation> v = engine.Evaluate(workload[w]);
                answer = v.ok() ? static_cast<int>(v->size()) : -1;
              }
            },
            reps);
        total_seconds += t;
        config_answers.push_back(answer);
        std::map<std::string, int64_t> delta = obs::MetricsDelta(
            before, obs::MetricsRegistry::Global().Snapshot());
        int64_t explored = delta[obs::kDfaProductStatesExplored];
        int64_t allocated = delta[obs::kDfaProductStatesAllocated];
        double ratio =
            allocated > 0 ? static_cast<double>(explored) / allocated : 1.0;
        ratios += (w > 0 ? " " : "") + std::to_string(ratio).substr(0, 4);
        if (std::string(config.name) == "reachable") {
          std::string wn = ".w" + std::to_string(w + 1);
          reporter.AddScalar("dfa.product_states_explored" + wn,
                             static_cast<double>(explored));
          reporter.AddScalar("dfa.product_states_allocated" + wn,
                             static_cast<double>(allocated));
          reporter.AddScalar("dfa.product_states_ratio" + wn, ratio);
        }
      }
      answers.push_back(std::move(config_answers));
      std::printf("      %-18s %.4fs total, ratios: %s\n", config.name,
                  total_seconds, ratios.c_str());
      std::string prefix = std::string(config.name) == "eager"
                               ? "kernel.eager"
                           : std::string(config.name) == "reachable"
                               ? "kernel.reachable"
                               : "kernel.parallel";
      reporter.AddScalar(prefix + "_seconds", total_seconds);
    }
    bool agree = true;
    for (const auto& a : answers) agree = agree && a == answers[0];
    std::printf("      answers agree: %s\n", agree ? "yes" : "NO");
    reporter.AddScalar("kernel.answers_agree", agree ? 1.0 : 0.0);
    // pool.* flows from the parallel config; surface it as scalars so the
    // json_check gate can assert the thread pool actually ran.
    reporter.AddScalar(
        "pool.tasks", static_cast<double>(obs::MetricsRegistry::Global().Get(
                          obs::kPoolTasks)));
    reporter.AddScalar(
        "pool.steals_or_waits",
        static_cast<double>(
            obs::MetricsRegistry::Global().Get(obs::kPoolStealsOrWaits)));
  }

  // --- 7. Character-class alphabet compression ---------------------------
  // An arity-4 multi-track pipeline (2401 convolution letters over a
  // six-letter Σ): lcp/leqlen/lexleq/prefix atoms aligned across four
  // tracks, intersected pairwise and then projected twice. Storage is always canonically
  // condensed under BOTH kernel modes — that is what keeps intern ids
  // mode-independent — so the kernel switch only changes how the operations
  // iterate: per letter (dense) or per symbol-equivalence class (condensed).
  // Scored by the transition computations the products perform, by the
  // bytes of the condensed tables vs their dense letter-indexed equivalents,
  // and by interning both finals into one shared store to confirm the
  // canonical ids agree.
  {
    // Over Σ = {0..5} the arity-4 convolution alphabet has 7^4 = 2401
    // letters, but the comparison atoms below (lcp, lexleq, leqlen, prefix)
    // only distinguish letters by digit-equality/order/pad patterns, so
    // their class counts — and those of their joint-refinement products —
    // are essentially |Σ|-independent. This is the regime the class
    // partition is built for: the dense letter-indexed representation pays
    // for 2401 columns per state, the condensed one for a few dozen.
    Result<Alphabet> six = Alphabet::Create("012345");
    if (!six.ok()) return 1;
    auto build = [&](const AutomatonStore& store)
        -> Result<TrackAutomaton> {
      AtomCache cache(*six, &store);
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton lcp, cache.Lcp(0, 1, 2));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton leq, cache.LeqLen(0, 3));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton lex, cache.LexLeq(1, 3));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton pre, cache.Prefix(2, 3));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton r1,
                            TrackAutomaton::Intersect(lcp, leq));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton r2,
                            TrackAutomaton::Intersect(lex, pre));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton r,
                            TrackAutomaton::Intersect(r1, r2));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton p, r.Project(3));
      return p.Project(1);
    };
    struct ClassConfig {
      const char* name;
      ClassKernel kernel;
    };
    const ClassConfig configs[] = {
        {"dense", ClassKernel::kDense},
        {"condensed", ClassKernel::kCondensed},
    };
    obs::ScopedEnable enable(true);
    int reps = reporter.smoke() ? 1 : 3;
    AutomatonStore id_store(true);
    std::vector<uint64_t> ids;
    std::vector<uint64_t> counts;
    double seconds[2] = {0, 0};
    int64_t transitions[2] = {0, 0};
    int64_t bytes_cond = 0;
    int64_t bytes_dense = 0;
    int final_classes = 0;
    int final_letters = 0;
    std::printf(
        "  [7] class compression (arity-4 convolution, 2401 letters):\n");
    for (int c = 0; c < 2; ++c) {
      ScopedClassKernel kernel(configs[c].kernel);
      std::map<std::string, int64_t> before =
          obs::MetricsRegistry::Global().Snapshot();
      std::optional<TrackAutomaton> final_rel;
      seconds[c] = TimeSeconds(
          [&] {
            // Fresh substrate per rep so the kernels genuinely recompute
            // instead of serving the computed table.
            AutomatonStore store(true);
            Result<TrackAutomaton> r = build(store);
            if (r.ok()) {
              final_rel.emplace(*std::move(r));
            } else {
              final_rel.reset();
            }
          },
          reps);
      std::map<std::string, int64_t> delta = obs::MetricsDelta(
          before, obs::MetricsRegistry::Global().Snapshot());
      transitions[c] = delta[obs::kDfaProductTransitions];
      if (std::string(configs[c].name) == "condensed") {
        bytes_cond = delta[obs::kDfaTableBytesCondensed];
        bytes_dense = delta[obs::kDfaTableBytesDenseEquiv];
      }
      if (final_rel.has_value()) {
        counts.push_back(final_rel->CountUpToLength(6));
        // The final automaton outlives its per-rep store via the shared
        // DfaRef; re-interning into the common id_store yields the
        // canonical identity this config computed.
        ids.push_back(id_store.Intern(final_rel->dfa()).id());
        if (std::string(configs[c].name) == "condensed") {
          final_classes = final_rel->NumClasses();
          final_letters = final_rel->conv().num_letters();
        }
      } else {
        counts.push_back(0);
        ids.push_back(0);
      }
      std::printf("      %-9s %.4fs, %lld product transition computations\n",
                  configs[c].name, seconds[c],
                  static_cast<long long>(transitions[c]));
    }
    bool answers_agree = counts.size() == 2 && counts[0] == counts[1];
    bool ids_agree =
        ids.size() == 2 && ids[0] != 0 && ids[0] == ids[1];
    double bytes_reduction =
        bytes_cond > 0 ? static_cast<double>(bytes_dense) / bytes_cond : 0.0;
    double work_reduction =
        transitions[1] > 0
            ? static_cast<double>(transitions[0]) / transitions[1]
            : 0.0;
    std::printf(
        "      table bytes: %lld condensed vs %lld dense-equivalent "
        "(%.1fx); final %d classes / %d letters\n",
        static_cast<long long>(bytes_cond),
        static_cast<long long>(bytes_dense), bytes_reduction, final_classes,
        final_letters);
    std::printf(
        "      product work: %.1fx fewer transition computations; answers "
        "agree: %s; store ids agree: %s\n",
        work_reduction, answers_agree ? "yes" : "NO",
        ids_agree ? "yes" : "NO");
    reporter.AddScalar("classes.dense_seconds", seconds[0]);
    reporter.AddScalar("classes.condensed_seconds", seconds[1]);
    reporter.AddScalar("dfa.product_transitions_dense",
                       static_cast<double>(transitions[0]));
    reporter.AddScalar("dfa.product_transitions_condensed",
                       static_cast<double>(transitions[1]));
    reporter.AddScalar("classes.product_work_reduction", work_reduction);
    reporter.AddScalar("dfa.table_bytes_condensed",
                       static_cast<double>(bytes_cond));
    reporter.AddScalar("dfa.table_bytes_dense_equiv",
                       static_cast<double>(bytes_dense));
    reporter.AddScalar("classes.table_bytes_reduction", bytes_reduction);
    reporter.AddScalar("dfa.classes_final",
                       static_cast<double>(final_classes));
    reporter.AddScalar("classes.answers_agree", answers_agree ? 1.0 : 0.0);
    reporter.AddScalar("classes.store_ids_agree", ids_agree ? 1.0 : 0.0);
  }

  // --- 8. Incremental maintenance under an update stream -----------------
  // Precompute one stream of tuple-delta batches (mostly inserts, with a
  // mixed insert/delete batch every fourth step — the append-heavy shape
  // update streams actually have), then replay it twice: once against a
  // server whose IncrementalIndex patches tries and answer automata across
  // revisions, once against a server that recompiles everything from each
  // new snapshot. The incremental arm runs FIRST, so the recompile baseline
  // inherits the warmer shared automaton store — any bias is against the
  // patching arm.
  //
  // The TIMED stream is append-only — the workload incremental maintenance
  // exists for (log/stream ingestion): every query in the battery patches
  // on every step. An UNTIMED mixed epilogue then replays insert+delete
  // batches through both arms: the bare atom patches deletes too, the
  // linear-positive queries fall back to recompilation over patched tries
  // — either way the per-step answer counts, canonical intern ids and
  // finiteness verdicts must be identical streams across arms (the epilogue
  // feeds the same agreement gates). Patching is only an optimization if
  // nobody can tell.
  {
    const uint64_t kSeed = 20260809;
    const int kInitial = reporter.smoke() ? 1000 : 1600;
    const int kSteps = reporter.smoke() ? 20 : 48;
    const int kMixSteps = reporter.smoke() ? 5 : 10;  // untimed epilogue
    const int kOpsPerStep = 6;
    Rng rng(kSeed);
    std::vector<std::string> universe = rng.DistinctStrings(
        "01", 3, 12, kInitial + (kSteps + kMixSteps) * kOpsPerStep + 8);
    std::vector<Tuple> initial;
    initial.reserve(kInitial);
    for (int i = 0; i < kInitial; ++i) initial.push_back({universe[i]});
    // `model` mirrors the relation contents so every generated op is
    // effective (inserts draw fresh strings, deletes hit present ones) and
    // the two arms replay byte-identical batches.
    std::vector<std::string> model(universe.begin(),
                                   universe.begin() + kInitial);
    size_t pool_next = static_cast<size_t>(kInitial);
    std::vector<std::vector<TupleDelta>> batches;      // timed, append-only
    std::vector<std::vector<TupleDelta>> mix_batches;  // untimed, mixed
    int total_ops = 0;
    for (int s = 0; s < kSteps + kMixSteps; ++s) {
      bool timed = s < kSteps;
      std::vector<TupleDelta> batch;
      for (int k = 0; k < kOpsPerStep; ++k) {
        bool do_insert = timed || rng.NextBelow(10) < 5;
        if (do_insert && pool_next < universe.size()) {
          const std::string& str = universe[pool_next++];
          model.push_back(str);
          batch.push_back(TupleDelta{"R", {str}, true});
        } else {
          size_t victim = rng.NextBelow(model.size());
          batch.push_back(TupleDelta{"R", {model[victim]}, false});
          model[victim] = model.back();
          model.pop_back();
        }
      }
      if (timed) {
        total_ops += static_cast<int>(batch.size());
        batches.push_back(std::move(batch));
      } else {
        mix_batches.push_back(std::move(batch));
      }
    }

    // The battery: a bare atom (patchable under inserts AND deletes) and
    // two linear-positive queries whose from-scratch compilation is
    // product-heavy (prefix closure with a letter filter; a lexleq x
    // leqlen double product) — exactly the shape where patching the small
    // delta and union-ing into the old answer beats recompiling.
    FormulaPtr q_bare = Q("R(x)");
    FormulaPtr q_lin = Q("exists y. R(y) & x <= y & last[1](x)");
    FormulaPtr q_lin2 = Q("exists y. R(y) & lexleq(x, y) & leqlen(x, y)");
    // Canonical identities from one neutral store: equal id <=> equal
    // language, no matter which arm (or which per-server cache) compiled
    // the automaton.
    AutomatonStore id_store(true);

    struct ArmResult {
      double seconds = 0;
      bool ok = true;
      std::vector<uint64_t> counts;
      std::vector<uint64_t> ids;
      std::vector<int> safe;
      incr::Stats incr_stats;
    };
    auto run_arm = [&](bool incremental) {
      ArmResult out;
      Database start(Alphabet::Binary());
      if (!start.AddRelation("R", 1, initial).ok()) {
        out.ok = false;
        return out;
      }
      serve::ServerOptions opts;
      opts.enable_incremental = incremental;
      serve::QueryServer server(std::move(start), opts);
      std::unique_ptr<serve::Session> session = server.OpenSession();
      // Answer automata are stashed as cheap shared handles during the
      // timed replay and fingerprinted afterwards — verification work is
      // identical across arms and not part of what's being measured.
      std::vector<TrackAutomaton> compiled;
      compiled.reserve((batches.size() + mix_batches.size()) * 3);
      auto record = [&](const FormulaPtr& f) {
        Result<TrackAutomaton> r = session->Compile(f);
        if (!r.ok()) {
          out.ok = false;
          return;
        }
        compiled.push_back(*std::move(r));
      };
      auto replay_step = [&](const std::vector<TupleDelta>& batch) {
        if (!server.CommitDeltas(batch).ok()) {
          out.ok = false;
          return;
        }
        session->Refresh();
        record(q_bare);
        record(q_lin);
        record(q_lin2);
      };
      out.seconds = TimeSeconds([&] {
        for (const std::vector<TupleDelta>& batch : batches) {
          replay_step(batch);
          if (!out.ok) return;
        }
      });
      // Untimed mixed epilogue: same commits, same battery, same
      // fingerprint stream — delete patching (and the recompile fallback
      // for non-delete-patchable answers) gets the identical-stream check
      // without muddying the append-throughput number.
      for (const std::vector<TupleDelta>& batch : mix_batches) {
        replay_step(batch);
        if (!out.ok) break;
      }
      for (const TrackAutomaton& a : compiled) {
        out.counts.push_back(a.CountUpToLength(14));
        out.ids.push_back(id_store.Intern(a.dfa()).id());
        out.safe.push_back(a.IsFinite() ? 1 : 0);
      }
      if (server.incremental() != nullptr) {
        out.incr_stats = server.incremental()->stats();
      }
      return out;
    };

    std::printf("  [8] incremental maintenance under an update stream:\n");
    ArmResult patched = run_arm(true);
    ArmResult recompiled = run_arm(false);
    bool both_ok = patched.ok && recompiled.ok;
    bool answers_agree = both_ok && !patched.counts.empty() &&
                         patched.counts == recompiled.counts;
    bool ids_agree =
        both_ok && !patched.ids.empty() && patched.ids == recompiled.ids;
    bool safe_agree = both_ok && patched.safe == recompiled.safe;
    double ups_incr =
        patched.seconds > 0 ? total_ops / patched.seconds : 0.0;
    double ups_full =
        recompiled.seconds > 0 ? total_ops / recompiled.seconds : 0.0;
    double speedup =
        patched.seconds > 0 ? recompiled.seconds / patched.seconds : 0.0;
    std::printf(
        "      %d timed append commits / %d effective ops, 3 queries per "
        "step; +%d untimed mixed commits (correctness only)\n",
        kSteps, total_ops, kMixSteps);
    std::printf(
        "      incremental %.4fs (%.0f updates/sec), full recompile %.4fs "
        "(%.0f updates/sec): %.1fx\n",
        patched.seconds, ups_incr, recompiled.seconds, ups_full, speedup);
    std::printf(
        "      index: %lld trie/answer patch(es) (%lld answer-level), "
        "%lld recompile(s), %lld compaction(s), %lld unchanged hit(s)\n",
        static_cast<long long>(patched.incr_stats.patches),
        static_cast<long long>(patched.incr_stats.answer_patches),
        static_cast<long long>(patched.incr_stats.recompiles),
        static_cast<long long>(patched.incr_stats.compactions),
        static_cast<long long>(patched.incr_stats.unchanged_hits));
    std::printf(
        "      answers agree: %s; store ids agree: %s; safety verdicts "
        "agree: %s\n",
        answers_agree ? "yes" : "NO", ids_agree ? "yes" : "NO",
        safe_agree ? "yes" : "NO");
    reporter.AddScalar("incr.updates_per_sec_incr", ups_incr);
    reporter.AddScalar("incr.updates_per_sec_full", ups_full);
    reporter.AddScalar("incr.update_speedup", speedup);
    reporter.AddScalar("incr.patches",
                       static_cast<double>(patched.incr_stats.patches));
    reporter.AddScalar(
        "incr.answer_patches",
        static_cast<double>(patched.incr_stats.answer_patches));
    reporter.AddScalar("incr.recompiles",
                       static_cast<double>(patched.incr_stats.recompiles));
    reporter.AddScalar(
        "incr.compactions",
        static_cast<double>(patched.incr_stats.compactions));
    reporter.AddScalar("incr.answers_agree", answers_agree ? 1.0 : 0.0);
    reporter.AddScalar("incr.store_ids_agree", ids_agree ? 1.0 : 0.0);
    reporter.AddScalar("incr.safe_agree", safe_agree ? 1.0 : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::Run(argc, argv); }
