// Ablations of the design choices DESIGN.md calls out:
//   1. plan-node memoization in the algebra evaluator (safe-translation
//      plans share the γ-universe subtree heavily);
//   2. formula simplification before compilation;
//   3. eager minimization inside the track-automaton pipeline (measured
//      indirectly: answer-automaton sizes stay small because every op
//      minimizes — reported as state counts along a compilation).

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/simplify.h"
#include "safety/safe_translation.h"

namespace strq {
namespace {

using bench::Header;
using bench::RandomUnaryDb;
using bench::Row;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

int Run() {
  Header("AB", "ablations — memoization, simplification, minimization");

  Database db = RandomUnaryDb(123, 8, 1, 4);
  std::map<std::string, int> schema = {{"R", 1}};

  // --- 1. Plan memoization --------------------------------------------
  // An RA(S_left) plan: the left-closure universe is expensive and the
  // translation references it from several atoms — the memoization target.
  FormulaPtr query = Q("exists y. R(y) & prepend[1](y) = x & !(x = '')");
  Result<RaPtr> plan = TranslateToAlgebra(query, StructureId::kSLeft, schema,
                                          db.alphabet(), 3);
  if (!plan.ok()) {
    std::printf("  translation failed: %s\n",
                plan.status().ToString().c_str());
    return 1;
  }
  AlgebraEvaluator::Options with_memo;
  with_memo.max_tuples = 30000000;
  AlgebraEvaluator::Options without_memo = with_memo;
  without_memo.enable_memo = false;
  AlgebraEvaluator memo_eval(&db, with_memo);
  AlgebraEvaluator nomemo_eval(&db, without_memo);
  double t_memo = TimeSeconds([&] { (void)memo_eval.Evaluate(*plan); }, 3);
  double t_nomemo =
      TimeSeconds([&] { (void)nomemo_eval.Evaluate(*plan); }, 3);
  std::printf(
      "  [1] plan memoization: with %.4fs, without %.4fs (%.1fx)\n", t_memo,
      t_nomemo, t_nomemo / t_memo);

  // --- 2. Simplification before compilation ----------------------------
  // A query with foldable clutter of the kind machine-generated queries
  // accumulate.
  FormulaPtr noisy = Q(
      "exists x. (R(x) & ('0' = '0' | last[1](x))) & "
      "(true -> (x <= x & !(!(append[1]('0') = '01')))) & "
      "(exists z. z = lcp('010', '011') & z <= x)");
  FormulaPtr simplified = Simplify(noisy);
  AutomataEvaluator engine(&db);
  double t_noisy =
      TimeSeconds([&] { (void)engine.EvaluateSentence(noisy); }, 5);
  double t_simplified =
      TimeSeconds([&] { (void)engine.EvaluateSentence(simplified); }, 5);
  std::printf(
      "  [2] simplification: size %d -> %d; compile+eval %.4fs -> %.4fs\n",
      FormulaSize(noisy), FormulaSize(simplified), t_noisy, t_simplified);
  Result<bool> a = engine.EvaluateSentence(noisy);
  Result<bool> b = engine.EvaluateSentence(simplified);
  std::printf("      answers agree: %s\n",
              (a.ok() && b.ok() && *a == *b) ? "yes" : "NO");

  // --- 3. Minimization keeps answer automata small ----------------------
  // Compile a 3-variable query and report the final automaton size; the
  // per-operation Moore minimization inside TrackAutomaton is what keeps
  // this in the tens of states rather than the product of the parts.
  FormulaPtr wide = Q(
      "exists y. exists z. R(y) & R(z) & lcp(y, z) = x & "
      "lexleq(x, y) & leqlen(x, z)");
  Result<TrackAutomaton> rel = engine.Compile(wide);
  if (rel.ok()) {
    std::printf(
        "  [3] 3-variable query compiles to %d states (per-op minimization"
        " on)\n",
        rel->NumStates());
  }
  Row("(the minimization OFF variant is structural — every op calls");
  Row(" Minimized() in TrackAutomaton::Create — so its ablation is the");
  Row(" state-count evidence above rather than a runtime switch)");
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
