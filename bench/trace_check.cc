// Smoke check for the Chrome trace-event exporter: runs a traced EXPLAIN
// ANALYZE (with a multi-thread ParallelOptions so worker spans land in the
// flight recorder too), exports the recorder's snapshot as a Chrome trace
// document, and validates the emitted JSON the way json_check validates
// strq.bench.v1 — parse it back with the bundled parser and require the
// trace-event contract, so a refactor of the exporter cannot silently
// produce files Perfetto rejects.
//
// Usage: trace_check [<output-path>]

#include <cstdio>
#include <string>

#include "eval/explain.h"
#include "logic/parser.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "trace_check: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using strq::obs::JsonValue;
  std::string out_path = argc > 1 ? argv[1] : "trace_check_out.json";

  strq::Database db(strq::Alphabet::Binary());
  std::vector<strq::Tuple> r;
  for (const std::string& s : {"0", "1", "01", "10", "010", "101", "0110"}) {
    r.push_back({s});
  }
  if (!db.AddRelation("R", 1, std::move(r)).ok()) {
    return Fail("fixture AddRelation failed");
  }

  strq::Result<strq::FormulaPtr> f = strq::ParseFormula(
      "R(x) & (last[0](x) | last[1](x)) & !(x = '1') & x <= '1001'");
  if (!f.ok()) return Fail("fixture query does not parse");

  strq::obs::ScopedEnable enable(true);
  strq::obs::FlightRecorder& flight = strq::obs::FlightRecorder::Global();
  flight.set_armed(true);
  flight.Clear();
  strq::Result<strq::ExplainAnalyzeResult> explained = strq::ExplainAnalyze(
      &db, *f, 1000000, nullptr, nullptr, strq::ParallelOptions{4});
  if (!explained.ok()) {
    return Fail("ExplainAnalyze failed: " + explained.status().ToString());
  }
  std::vector<strq::obs::SpanRecord> spans = flight.Snapshot();
  if (spans.empty()) {
    return Fail("flight recorder captured no spans from a traced explain");
  }

  JsonValue doc = strq::obs::ChromeTrace(spans);
  std::string text = doc.Dump(2);
  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) return Fail("cannot write " + out_path);
  std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  std::fclose(file);

  // Validate the round trip through the parser, not the in-memory object:
  // what matters is the file a human loads into Perfetto.
  strq::Result<JsonValue> parsed = strq::obs::ParseJson(text);
  if (!parsed.ok()) {
    return Fail("exported trace is not valid JSON: " +
                parsed.status().ToString());
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) return Fail("top level is not an object");
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail("missing traceEvents array");
  }
  if (events->size() != spans.size()) {
    return Fail("traceEvents count does not match exported span count");
  }
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& ev = events->At(i);
    if (!ev.is_object()) return Fail("trace event is not an object");
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      if (ev.Find(key) == nullptr) {
        return Fail(std::string("trace event missing key: ") + key);
      }
    }
    const JsonValue* ph = ev.Find("ph");
    if (!ph->is_string() || ph->AsString() != "X") {
      return Fail("trace event ph is not \"X\" (complete event)");
    }
    if (!ev.Find("ts")->is_number() || !ev.Find("dur")->is_number() ||
        !ev.Find("tid")->is_number()) {
      return Fail("trace event ts/dur/tid are not numeric");
    }
    const JsonValue* args = ev.Find("args");
    if (args == nullptr || !args->is_object() ||
        args->Find("span_id") == nullptr) {
      return Fail("trace event args missing span_id");
    }
  }
  std::printf("trace_check: %s OK (%zu events)\n", out_path.c_str(),
              events->size());
  return 0;
}
