// Proposition 1 / Corollary 1 — RC_concat is computationally complete, so
// it has no exact evaluator, no effective safe syntax, and undecidable
// state-safety. The measurable shadow: bounded-universe evaluation is the
// only generic device, its cost explodes with the bound, and its answers
// are never certified (they keep changing as the bound grows), while the
// tame calculi evaluate exactly and terminate.

#include <cstdio>

#include "bench/bench_util.h"
#include "concat/concat_eval.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "safety/range_restriction.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::Row;
using bench::TimeSeconds;

int Run(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "P1",
                         "Proposition 1 — concatenation breaks everything");
  Header("P1", "Proposition 1 — concatenation breaks everything");

  Database db(Alphabet::Binary());
  Status s = db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}});
  if (!s.ok()) return 1;

  // The square query x = w·w, w ∈ R: needs concatenation.
  FormulaPtr square = SquareOfRelationQuery("R");

  // 1. The exact engine refuses (concatenation is not automatic).
  AutomataEvaluator exact(&db);
  Result<Relation> refused = exact.Evaluate(square);
  Row(std::string("automata engine on x = w·w: ") +
      refused.status().ToString());

  // 2. No safe syntax: the Γ family does not exist for concat.
  Result<std::vector<std::string>> gamma =
      GammaCandidates(StructureId::kConcat, 2, db);
  Row(std::string("γ_k family for RC_concat:   ") +
      gamma.status().ToString());

  // 3. Bounded evaluation: answers and cost as the bound grows.
  ConcatEvaluator bounded(&db);
  std::printf("\n  bound |   time (s) | answers (bounded semantics)\n");
  const int max_bound = reporter.smoke() ? 6 : 12;
  std::vector<double> bounds, times;
  for (int bound = 2; bound <= max_bound; bound += 2) {
    Result<Relation> out = bounded.EvaluateBounded(square, bound);
    double t = TimeSeconds(
        [&] { (void)bounded.EvaluateBounded(square, bound); }, 1);
    std::printf("  %5d | %10.4f | %zu\n", bound, t,
                out.ok() ? out->size() : 0);
    bounds.push_back(bound);
    times.push_back(t);
  }
  reporter.AddSeries("bounded_evaluation", bounds, times);
  Row("answers stabilize only because R is finite here; for queries with");
  Row("universal quantifiers bounded verdicts flip with the bound and");
  Row("certify nothing (Proposition 1 / Corollary 1).");

  // 4. A universally quantified concat sentence: the bounded verdict
  // depends on the bound, so no finite bound certifies anything.
  // ∀x ∃w (x = w·w) is vacuously true at bound 0 and false from bound 1 on.
  Result<FormulaPtr> univ = ParseFormula(
      "forall x. exists w. concat(w, w) = x");
  if (univ.ok()) {
    for (int bound : {0, 1, 2, 3}) {
      Result<bool> v = bounded.EvaluateSentenceBounded(*univ, bound);
      std::printf("  '∀x ∃w x = w·w' at bound %d: %s\n", bound,
                  v.ok() ? (*v ? "true" : "false")
                         : v.status().ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::Run(argc, argv); }
