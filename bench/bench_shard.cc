// The sharded coordinator under measurement (src/shard): hash-partitioned
// relations, per-shard compilation, regular-language merge.
//
//   1. Agreement: a fixed battery of open queries, sentences, and safety
//      checks served at 1/2/4/8 shards — answers, EnumerateTuples order,
//      canonical merge-store ids, verdicts, and truth values must all be
//      byte-identical to the unsharded arm (sh.answers_agree,
//      sh.order_agree, sh.ids_agree, sh.safety_agree).
//   2. Compile throughput: a decision-heavy workload of DISTINCT true-dense
//      existential sentences and infinite safety probes, cold-compiled at
//      each shard count. Each shard holds ~1/N of R, and the serial
//      deciders stop at the first shard that settles the question, so the
//      sharded arms do a fraction of the unsharded automaton work — the
//      speedup does NOT depend on extra cores. Gate scalar:
//      sh.compile_speedup_4x (floor 2x, asserted by check.sh tier-2g).
//   3. Serving latency: the materializing path (per-shard compile + interned
//      union merge) per shard count, p50/p99.
//   4. Update stream: identical tuple-delta commits fan through every arm's
//      CommitDeltas; per-commit probe answers must agree across shard
//      counts (sh.update_agree) and commit+refresh throughput is reported.
//
// Exit code gates the SEMANTIC invariants only (agreement scalars); the
// wall-clock speedup floor is asserted by scripts/check.sh on the regular
// build, where timing is meaningful (same policy as the tier-2e incr gate).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "bench/bench_util.h"
#include "logic/parser.h"
#include "relational/database.h"
#include "serve/server.h"
#include "shard/sharded_db.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::RandomUnaryDb;
using bench::Row;

constexpr int kShardCounts[] = {1, 2, 4, 8};

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(r);
}

std::unique_ptr<serve::QueryServer> MakeServer(const Database& db,
                                               int num_shards) {
  serve::ServerOptions options;
  options.num_shards = num_shards;
  return std::make_unique<serve::QueryServer>(db, options);
}

double Percentile(std::vector<int64_t> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * (values.size() - 1));
  return static_cast<double>(values[idx]);
}

// The decision workload: `count` structurally DISTINCT formulas (a fresh
// literal per formula defeats every plan/atom/op memo, so each arm compiles
// cold) built from prefixes of strings actually in R — the existential
// sentences are true-dense, so the serial decider usually stops at shard 0.
// `salt` makes successive repetitions cold as well.
struct DecisionWorkload {
  std::vector<FormulaPtr> sentences;  // exists x. R(x) & 'p' <= x | x = junk
  std::vector<FormulaPtr> unsafe;     // R(x) | 'junk' <= x  (always infinite)
};

DecisionWorkload MakeDecisionWorkload(const Database& db, int count,
                                      uint64_t salt) {
  DecisionWorkload w;
  Rng rng(salt * 2654435761 + 97);
  const std::vector<Tuple>& tuples = db.Find("R")->tuples();
  for (int i = 0; i < count; ++i) {
    const std::string& s = tuples[i % tuples.size()][0];
    std::string prefix = s.substr(0, 1 + (i % 3));
    std::string junk = rng.NextString("01", 10, 14);
    w.sentences.push_back(
        Q("exists x. R(x) & ('" + prefix + "' <= x | x = '" + junk + "')"));
    w.unsafe.push_back(Q("R(x) | '" + rng.NextString("01", 10, 14) +
                         "' <= x"));
  }
  return w;
}

int Run(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "SH",
                         "sharded coordinator — hash partition, per-shard "
                         "compilation, regular-language merge");
  Header("SH", "sharded coordinator — partition, per-shard compile, merge");
  const bool smoke = reporter.smoke();
  reporter.set_seed(20260809);

  // Long strings keep the random set SPARSE in Σ*, so the minimal DFA of a
  // shard's fraction of R is proportionally smaller — dense short-string
  // sets minimize sublinearly and would flatten the per-shard advantage.
  const int kDbSize = smoke ? 256 : 512;
  const int kMaxLen = 24;
  Database fixture = RandomUnaryDb(20260809, kDbSize, 16, kMaxLen);

  // --- 1. Agreement across shard counts --------------------------------
  // The hard invariant: a shard count is a deployment knob, not a
  // semantics knob. Arm 0 (one shard, never routed through the
  // coordinator) is the oracle for answers, enumeration order, canonical
  // ids, safety verdicts, and sentence truth.
  Header("SH1", "shard-count invariance on a fixed battery");
  const std::vector<FormulaPtr> open_queries = {
      Q("R(x)"),
      Q("R(x) & '0' <= x"),
      Q("R(x) & last[1](x)"),
      Q("R(x) | x <= '0101'"),
      Q("exists y. R(y) & x <= y & last[1](x)"),
      Q("!R(x) & x <= '010'"),     // fallback: negative occurrence
      Q("R(x) & R(x)"),            // fallback: relations on both sides
  };
  const std::vector<FormulaPtr> sentences = {
      Q("exists x. R(x)"),
      Q("exists x. R(x) & last[0](x)"),
      Q("exists x. R(x) & x = '0'"),  // almost surely false
      Q("forall x in adom. member(x, '(0|1)*')"),
  };
  bool answers_agree = true;
  bool order_agree = true;
  bool ids_agree = true;
  bool safety_agree = true;
  std::vector<std::vector<Tuple>> want_answers;
  std::vector<std::vector<std::vector<std::string>>> want_order;
  std::vector<uint64_t> want_ids;
  std::vector<bool> want_safe;
  std::vector<bool> want_truth;
  for (int n : kShardCounts) {
    std::unique_ptr<serve::QueryServer> server = MakeServer(fixture, n);
    std::unique_ptr<serve::Session> session = server->OpenSession();
    size_t qi = 0;
    for (const FormulaPtr& f : open_queries) {
      Result<Relation> rel = session->Query(f);
      Result<TrackAutomaton> compiled = session->Compile(f);
      Result<bool> safe = session->IsSafe(f);
      if (!rel.ok() || !compiled.ok() || !safe.ok()) {
        std::fprintf(stderr, "battery query failed at %d shards: %s\n", n,
                     rel.status().ToString().c_str());
        return 1;
      }
      std::vector<std::vector<std::string>> order =
          compiled->EnumerateTuples(kMaxLen, 32);
      if (n == 1) {
        want_answers.push_back(rel->tuples());
        want_order.push_back(order);
        want_ids.push_back(compiled->dfa_ref().id());
        want_safe.push_back(*safe);
      } else {
        answers_agree &= rel->tuples() == want_answers[qi];
        order_agree &= order == want_order[qi];
        ids_agree &= compiled->dfa_ref().id() == want_ids[qi];
        safety_agree &= *safe == want_safe[qi];
      }
      ++qi;
    }
    size_t si = 0;
    for (const FormulaPtr& f : sentences) {
      Result<bool> truth = session->QuerySentence(f);
      if (!truth.ok()) {
        std::fprintf(stderr, "battery sentence failed at %d shards\n", n);
        return 1;
      }
      if (n == 1) {
        want_truth.push_back(*truth);
      } else {
        answers_agree &= *truth == want_truth[si];
      }
      ++si;
    }
  }
  Row(std::string("answers ") + (answers_agree ? "agree" : "DISAGREE") +
      ", order " + (order_agree ? "agree" : "DISAGREE") + ", ids " +
      (ids_agree ? "agree" : "DISAGREE") + ", safety " +
      (safety_agree ? "agree" : "DISAGREE") + " across 1/2/4/8 shards");
  reporter.AddScalar("sh.answers_agree", answers_agree ? 1 : 0);
  reporter.AddScalar("sh.order_agree", order_agree ? 1 : 0);
  reporter.AddScalar("sh.ids_agree", ids_agree ? 1 : 0);
  reporter.AddScalar("sh.safety_agree", safety_agree ? 1 : 0);

  // --- 2. Compile throughput: early-exit work reduction ----------------
  // Fresh server and fresh (never-seen) formulas per repetition, so every
  // arm pays full compilation cost; best-of-reps guards against scheduler
  // noise. The sharded arms win by doing LESS automaton work per decided
  // question, not by using more threads.
  Header("SH2", "decider throughput at 1/2/4/8 shards (cold compiles)");
  const int kQueries = smoke ? 24 : 48;
  const int kReps = smoke ? 3 : 5;
  std::vector<double> shard_xs;
  std::vector<double> qps_series;
  double qps_at_1 = 0;
  double qps_at_4 = 0;
  uint64_t salt = 1;
  for (int n : kShardCounts) {
    double best = -1;
    for (int rep = 0; rep < kReps; ++rep) {
      DecisionWorkload w = MakeDecisionWorkload(fixture, kQueries, salt++);
      std::unique_ptr<serve::QueryServer> server = MakeServer(fixture, n);
      std::unique_ptr<serve::Session> session = server->OpenSession();
      auto t0 = std::chrono::steady_clock::now();
      for (const FormulaPtr& f : w.sentences) {
        Result<bool> truth = session->QuerySentence(f);
        if (!truth.ok() || !*truth) {
          std::fprintf(stderr, "throughput sentence not true at %d shards\n",
                       n);
          return 1;
        }
      }
      for (const FormulaPtr& f : w.unsafe) {
        Result<bool> safe = session->IsSafe(f);
        if (!safe.ok() || *safe) {
          std::fprintf(stderr, "throughput probe not infinite at %d shards\n",
                       n);
          return 1;
        }
      }
      auto t1 = std::chrono::steady_clock::now();
      double wall = std::chrono::duration<double>(t1 - t0).count();
      double qps = static_cast<double>(2 * kQueries) / wall;
      best = std::max(best, qps);
    }
    shard_xs.push_back(n);
    qps_series.push_back(best);
    if (n == 1) qps_at_1 = best;
    if (n == 4) qps_at_4 = best;
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "%d shard(s): %9.0f decided queries/s", n, best);
    Row(buffer);
    reporter.AddScalar("sh.compile_qps_" + std::to_string(n) + "s", best);
  }
  reporter.AddSeries("sh.compile_qps_vs_shards", shard_xs, qps_series);
  double speedup = qps_at_1 > 0 ? qps_at_4 / qps_at_1 : 0;
  char speedup_row[96];
  std::snprintf(speedup_row, sizeof(speedup_row),
                "4-shard speedup over unsharded: %.2fx (floor 2x)", speedup);
  Row(speedup_row);
  reporter.AddScalar("sh.compile_speedup_4x", speedup);

  // --- 3. Serving latency: the materializing merge path ----------------
  // Open distributable queries force per-shard compilation plus the
  // interned-union merge; p50/p99 per shard count shows what the merge
  // costs when early exit cannot help.
  Header("SH3", "materializing latency per shard count");
  const int kLatencyReps = smoke ? 4 : 12;
  for (int n : kShardCounts) {
    std::unique_ptr<serve::QueryServer> server = MakeServer(fixture, n);
    std::unique_ptr<serve::Session> session = server->OpenSession();
    std::vector<int64_t> lat;
    for (int rep = 0; rep < kLatencyReps; ++rep) {
      for (const FormulaPtr& f : open_queries) {
        auto t0 = std::chrono::steady_clock::now();
        Result<Relation> rel = session->Query(f);
        auto t1 = std::chrono::steady_clock::now();
        if (!rel.ok()) {
          std::fprintf(stderr, "latency query failed at %d shards\n", n);
          return 1;
        }
        lat.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
      }
    }
    double p50 = Percentile(lat, 0.5);
    double p99 = Percentile(lat, 0.99);
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "%d shard(s): p50 %9.0fns, p99 %9.0fns", n, p50, p99);
    Row(buffer);
    reporter.AddScalar("sh.latency_p50_ns_" + std::to_string(n) + "s", p50);
    reporter.AddScalar("sh.latency_p99_ns_" + std::to_string(n) + "s", p99);
  }

  // --- 4. Update stream through the partition --------------------------
  // The same commit stream against every arm; each commit is followed by a
  // refresh and a probe answer, compared tuple-for-tuple to the unsharded
  // arm's. Also times commit+refresh+probe throughput at each count.
  Header("SH4", "identical update stream at 1/2/4/8 shards");
  const int kCommits = smoke ? 16 : 64;
  bool update_agree = true;
  FormulaPtr probe = Q("R(x) & last[1](x)");
  std::vector<std::vector<Tuple>> stream_want;
  for (int n : kShardCounts) {
    std::unique_ptr<serve::QueryServer> server = MakeServer(fixture, n);
    std::unique_ptr<serve::Session> session = server->OpenSession();
    Rng rng(4242);  // same stream for every arm
    auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < kCommits; ++k) {
      std::vector<TupleDelta> ops;
      ops.push_back({"R", {rng.NextString("01", 4, kMaxLen)}, true});
      if (k % 3 == 2) {
        ops.push_back({"R", {rng.NextString("01", 4, kMaxLen)}, false});
      }
      Result<CommitDelta> c = server->CommitDeltas(ops);
      if (!c.ok()) {
        std::fprintf(stderr, "commit failed at %d shards: %s\n", n,
                     c.status().ToString().c_str());
        return 1;
      }
      session->Refresh();
      Result<Relation> rel = session->Query(probe);
      if (!rel.ok()) {
        std::fprintf(stderr, "probe failed at %d shards\n", n);
        return 1;
      }
      if (n == 1) {
        stream_want.push_back(rel->tuples());
      } else {
        update_agree &= rel->tuples() == stream_want[k];
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "%d shard(s): %8.0f commit+probe/s", n, kCommits / wall);
    Row(buffer);
    reporter.AddScalar("sh.update_qps_" + std::to_string(n) + "s",
                       kCommits / wall);
  }
  Row(std::string("per-commit probe answers ") +
      (update_agree ? "agree" : "DISAGREE") + " across shard counts");
  reporter.AddScalar("sh.update_agree", update_agree ? 1 : 0);

  const bool all_ok = answers_agree && order_agree && ids_agree &&
                      safety_agree && update_agree;
  Row(all_ok ? "SHARD GATES: all semantic invariants green"
             : "SHARD GATES: FAILURES above");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::Run(argc, argv); }
