// The serving layer under load (src/serve): concurrent sessions over MVCC
// snapshots, per-request budgets, in-flight plan dedup, admission control.
//
//   1. Serial baseline: a fixed query mix through one session — the
//      reference answers every concurrent section is checked against.
//   2. Client scaling: the same mix from 1/4/16 concurrent sessions against
//      one warm server; p50/p99 request latency and QPS per client count,
//      with every client's answers compared tuple-for-tuple to the serial
//      reference (serve.answers_agree).
//   3. In-flight dedup: structurally identical expensive queries launched
//      simultaneously against a cold server collapse to one compilation
//      (serve.inflight_dedup_hits > 0).
//   4. Mixed read/write: writer threads stream commits while reader
//      sessions evaluate against pinned snapshots; each answer must equal a
//      serial re-evaluation of the SAME pinned snapshot
//      (serve.mvcc_agree), and dead-revision cache entries are reclaimed
//      after the churn (serve.snapshots_reclaimed).
//   5. Budget isolation: a tiny per-session product-state budget turns an
//      answerable query into RESOURCE_EXHAUSTED, and clearing the budget
//      immediately re-answers it correctly — the shared store must never
//      serve a truncated memo to an unbudgeted caller
//      (serve.budget_isolation_ok); a 1ns deadline fails DEADLINE_EXCEEDED.
//   6. Admission control: max_concurrent=1, max_queued=0 under concurrent
//      slow requests produces fast-fail rejects (serve.admission_rejects).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "bench/bench_util.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "relational/database.h"
#include "serve/server.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::RandomUnaryDb;
using bench::Row;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(r);
}

// The serving query mix: open queries (answers compared tuple-for-tuple)
// and sentences, all against R/1.
std::vector<FormulaPtr> QueryMix() {
  std::vector<FormulaPtr> mix;
  mix.push_back(Q("exists y. R(y) & x <= y & last[1](x)"));
  mix.push_back(Q("exists y. R(y) & prepend[1](y) = x & !(x = '')"));
  mix.push_back(Q("R(x) & like(x, '%1')"));
  mix.push_back(Q("exists x. R(x) & like(x, '%1%')"));
  mix.push_back(Q("forall x in adom. member(x, '(0|1)*')"));
  return mix;
}

// One request per mix entry; open queries return their tuple list, sentences
// a one-tuple marker — so "answers agree" is a single vector comparison.
std::vector<std::vector<Tuple>> RunMix(serve::Session& session,
                                       const std::vector<FormulaPtr>& mix,
                                       std::vector<int64_t>* latencies_ns,
                                       Status* first_error) {
  std::vector<std::vector<Tuple>> answers;
  for (const FormulaPtr& f : mix) {
    auto start = std::chrono::steady_clock::now();
    if (FreeVars(f).empty()) {
      Result<bool> v = session.QuerySentence(f);
      if (!v.ok()) {
        if (first_error->ok()) *first_error = v.status();
        answers.push_back({{"<error>"}});
      } else {
        answers.push_back({{*v ? "true" : "false"}});
      }
    } else {
      Result<Relation> rel = session.Query(f);
      if (!rel.ok()) {
        if (first_error->ok()) *first_error = rel.status();
        answers.push_back({{"<error>"}});
      } else {
        answers.push_back(rel->tuples());
      }
    }
    auto end = std::chrono::steady_clock::now();
    if (latencies_ns != nullptr) {
      latencies_ns->push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count());
    }
  }
  return answers;
}

double Percentile(std::vector<int64_t> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * (values.size() - 1));
  return static_cast<double>(values[idx]);
}

// A pattern whose determinization is exponential in `n` — an expensive
// compilation that holds the engine long enough for dedup/admission races.
std::string HardPattern(int n) {
  std::string p = "(0|1)*0";
  for (int i = 0; i < n; ++i) p += "(0|1)";
  return p;
}

int Run(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "SRV",
                         "query serving — concurrent sessions over MVCC "
                         "snapshots, budgets, in-flight dedup");
  Header("SRV", "query serving — sessions, snapshots, budgets, dedup");
  const bool smoke = reporter.smoke();
  reporter.set_seed(20260809);

  const int kDbSize = smoke ? 6 : 24;
  const int kReps = smoke ? 3 : 20;
  Database fixture = RandomUnaryDb(20260809, kDbSize, 1, smoke ? 4 : 6);
  const std::vector<FormulaPtr> mix = QueryMix();

  // --- 1. Serial baseline ---------------------------------------------
  serve::QueryServer server(fixture);
  std::unique_ptr<serve::Session> serial = server.OpenSession();
  Status err = Status::Ok();
  // Warm pass (fills atom cache / plan cache), then the measured pass.
  RunMix(*serial, mix, nullptr, &err);
  std::vector<int64_t> serial_ns;
  const std::vector<std::vector<Tuple>> reference =
      RunMix(*serial, mix, &serial_ns, &err);
  if (!err.ok()) {
    Row("serial baseline failed: " + err.ToString());
    return 1;
  }
  Row("serial baseline: " + std::to_string(mix.size()) + " queries, p50 " +
      std::to_string(static_cast<int64_t>(Percentile(serial_ns, 0.5))) +
      "ns");

  // --- 2. Client scaling ----------------------------------------------
  // One warm server, C concurrent sessions each running the mix kReps
  // times. Sessions never block on each other (no writer is active), so
  // QPS should scale until the memoization stack's stripes saturate.
  std::vector<double> client_counts;
  std::vector<double> qps_series;
  std::vector<double> p50_series;
  std::vector<double> p99_series;
  std::atomic<int64_t> mismatches{0};
  for (int clients : {1, 4, 16}) {
    std::vector<std::vector<int64_t>> lat(clients);
    std::vector<Status> errors(clients, Status::Ok());
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::unique_ptr<serve::Session> session = server.OpenSession();
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        for (int r = 0; r < kReps; ++r) {
          std::vector<std::vector<Tuple>> answers =
              RunMix(*session, mix, &lat[c], &errors[c]);
          if (answers != reference) mismatches.fetch_add(1);
        }
      });
    }
    while (ready.load() < clients) std::this_thread::yield();
    t0 = std::chrono::steady_clock::now();
    go.store(true);
    for (std::thread& t : threads) t.join();
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();
    std::vector<int64_t> all;
    for (const auto& per_client : lat) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    for (const Status& s : errors) {
      if (!s.ok()) {
        Row("client scaling failed: " + s.ToString());
        return 1;
      }
    }
    double qps = static_cast<double>(all.size()) / wall;
    double p50 = Percentile(all, 0.5);
    double p99 = Percentile(all, 0.99);
    client_counts.push_back(clients);
    qps_series.push_back(qps);
    p50_series.push_back(p50);
    p99_series.push_back(p99);
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%2d client(s): %8.0f req/s, p50 %8.0fns, p99 %8.0fns",
                  clients, qps, p50, p99);
    Row(buffer);
    reporter.AddScalar(
        "serve.qps_" + std::to_string(clients) + "c", qps);
    reporter.AddScalar(
        "serve.latency_p50_ns_" + std::to_string(clients) + "c", p50);
    reporter.AddScalar(
        "serve.latency_p99_ns_" + std::to_string(clients) + "c", p99);
  }
  reporter.AddSeries("serve.qps_vs_clients", client_counts, qps_series);
  reporter.AddSeries("serve.latency_p99_vs_clients", client_counts,
                     p99_series);
  const bool answers_agree = mismatches.load() == 0;
  Row(answers_agree
          ? "all concurrent answers identical to serial baseline"
          : "ANSWER MISMATCH: " + std::to_string(mismatches.load()));
  reporter.AddScalar("serve.answers_agree", answers_agree ? 1 : 0);
  serve::QueryServer::Stats scaling = server.stats();
  reporter.AddScalar("serve.sessions",
                     static_cast<double>(scaling.sessions));
  reporter.AddScalar("serve.requests",
                     static_cast<double>(scaling.requests));

  // --- 3. In-flight dedup ---------------------------------------------
  // A cold server per round: C threads fire the SAME expensive query at
  // once; with no warm cache the stragglers must find the leader's
  // compilation in flight. Racy by nature, so retry rounds until observed.
  int64_t dedup_hits = 0;
  int dedup_rounds = 0;
  const int kDedupClients = 8;
  const std::string hard = HardPattern(smoke ? 8 : 11);
  for (int round = 0; round < 50 && dedup_hits == 0; ++round) {
    ++dedup_rounds;
    serve::QueryServer cold(fixture);
    FormulaPtr f = Q("R(x) & member(x, '" + hard + "')");
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int c = 0; c < kDedupClients; ++c) {
      threads.emplace_back([&] {
        std::unique_ptr<serve::Session> session = cold.OpenSession();
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        Result<TrackAutomaton> compiled = session->Compile(f);
        if (!compiled.ok()) std::abort();
      });
    }
    while (ready.load() < kDedupClients) std::this_thread::yield();
    go.store(true);
    for (std::thread& t : threads) t.join();
    dedup_hits = cold.stats().inflight_dedup_hits;
  }
  Row("in-flight dedup: " + std::to_string(dedup_hits) + " hit(s) in round " +
      std::to_string(dedup_rounds));
  reporter.AddScalar("serve.inflight_dedup_hits",
                     static_cast<double>(dedup_hits));
  reporter.AddScalar("serve.dedup_rounds",
                     static_cast<double>(dedup_rounds));

  // --- 4. Mixed read/write over MVCC snapshots ------------------------
  // Writers stream commits; each reader pins a snapshot, runs the mix, and
  // the answers are checked against a fresh SERIAL evaluator bound to the
  // same pinned database object. Snapshot isolation means the concurrent
  // writer churn cannot show through.
  serve::QueryServer versioned(fixture);
  const int kWriters = 2;
  const int kReaders = smoke ? 3 : 6;
  const int kCommits = smoke ? 8 : 40;
  std::atomic<bool> stop_writers{false};
  std::atomic<int64_t> mvcc_mismatches{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int k = 0; k < kCommits && !stop_writers.load(); ++k) {
        std::string fresh = "1" + std::to_string(w) + "0" +
                            std::to_string(k) + "1";
        for (char& c : fresh) {
          if (c >= '2') c = '0' + ((c - '0') % 2);
        }
        Status s = versioned.versioned_db().Update([&](Database& db) {
          const Relation* rel = db.Find("R");
          std::vector<Tuple> tuples = rel->tuples();
          if (k % 3 == 2 && !tuples.empty()) {
            tuples.pop_back();  // a delete, so revisions genuinely differ
          }
          tuples.push_back({fresh});
          return db.AddRelation("R", 1, std::move(tuples));
        });
        if (!s.ok()) std::abort();
        versioned.ReclaimDeadSnapshots();
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int pass = 0; pass < (smoke ? 3 : 8); ++pass) {
        std::unique_ptr<serve::Session> session = versioned.OpenSession();
        Status reader_err = Status::Ok();
        std::vector<std::vector<Tuple>> served =
            RunMix(*session, mix, nullptr, &reader_err);
        if (!reader_err.ok()) std::abort();
        // Serial re-evaluation of the SAME pinned snapshot, through a
        // private evaluator (fresh cache stack): the ground truth.
        const Database& pinned = session->snapshot().db();
        AutomataEvaluator ground_truth(&pinned);
        size_t i = 0;
        for (const FormulaPtr& f : mix) {
          if (FreeVars(f).empty()) {
            Result<bool> v = ground_truth.EvaluateSentence(f);
            if (!v.ok() ||
                served[i] != std::vector<Tuple>{{*v ? "true" : "false"}}) {
              mvcc_mismatches.fetch_add(1);
            }
          } else {
            Result<Relation> rel = ground_truth.Evaluate(f);
            if (!rel.ok() || served[i] != rel->tuples()) {
              mvcc_mismatches.fetch_add(1);
            }
          }
          ++i;
        }
        session->Refresh();
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop_writers.store(true);
  for (std::thread& t : writers) t.join();
  size_t reclaimed = versioned.ReclaimDeadSnapshots();
  const bool mvcc_agree = mvcc_mismatches.load() == 0;
  Row(mvcc_agree ? "mixed read/write: every pinned answer matches serial "
                   "re-evaluation of its snapshot"
                 : "MVCC MISMATCH: " + std::to_string(mvcc_mismatches.load()));
  Row("dead-revision cache entries reclaimed after churn: " +
      std::to_string(versioned.stats().entries_reclaimed));
  reporter.AddScalar("serve.mvcc_agree", mvcc_agree ? 1 : 0);
  reporter.AddScalar(
      "serve.snapshots_reclaimed",
      static_cast<double>(versioned.stats().entries_reclaimed));
  // Snapshot lifecycle after churn: how many distinct revisions are still
  // pinned by live sessions, and how many trie/domain cache entries the
  // shared AtomCache dropped for dead ones.
  reporter.AddScalar("serve.live_pins",
                     static_cast<double>(versioned.stats().live_pins));
  reporter.AddScalar(
      "atom_cache.evictions",
      static_cast<double>(versioned.atom_cache()->stats().evictions));
  (void)reclaimed;

  // --- 5. Budget isolation --------------------------------------------
  // Four properties of per-request budgets against the shared store:
  //  (a) a COLD query under a tiny product-state budget fails
  //      RESOURCE_EXHAUSTED — the kernels enforce the per-request ceiling;
  //  (b) a 1ns deadline fails DEADLINE_EXCEEDED;
  //  (c) the same query unbudgeted then succeeds with the right answer —
  //      the store memoizes exhaustion separately from results, so the
  //      starved attempt never poisons the canonical entry;
  //  (d) a query whose FULL result is already memoized is served even to a
  //      strangled session: budgets bound work, not answers (the store
  //      checks its canonical table before the budget).
  serve::QueryServer budget_server(fixture);
  std::unique_ptr<serve::Session> strangled = budget_server.OpenSession();
  // Cold: this pattern shape appears nowhere else in the process, so the
  // process-wide AutomatonStore has no memoized result to serve.
  std::string cold_pattern = "(0|1)*1";
  for (int i = 0; i < (smoke ? 8 : 11); ++i) cold_pattern += "(0|1)";
  FormulaPtr cold_query = Q("R(x) & member(x, '" + cold_pattern + "')");
  serve::SessionBudget tiny;
  tiny.max_product_states = 2;
  strangled->set_budget(tiny);
  Result<Relation> starved = strangled->Query(cold_query);
  const bool starved_ok =
      !starved.ok() &&
      starved.status().code() == StatusCode::kResourceExhausted;
  serve::SessionBudget instant;
  instant.timeout = std::chrono::nanoseconds(1);
  strangled->set_budget(instant);
  Result<Relation> expired = strangled->Query(cold_query);
  const bool expired_ok =
      !expired.ok() &&
      expired.status().code() == StatusCode::kDeadlineExceeded;
  strangled->set_budget(serve::SessionBudget{});
  Result<Relation> unbudgeted = strangled->Query(cold_query);
  AutomataEvaluator ground_truth(&fixture);
  Result<Relation> want = ground_truth.Evaluate(cold_query);
  const bool recovered = unbudgeted.ok() && want.ok() &&
                         unbudgeted->tuples() == want->tuples();
  // Warm: the first mix query's full result has been in the store since
  // section 1; the strangled session still gets it.
  strangled->set_budget(tiny);
  Result<Relation> warm = strangled->Query(mix[0]);
  const bool warm_served = warm.ok() && warm->tuples() == reference[0];
  const bool isolation_ok =
      starved_ok && expired_ok && recovered && warm_served;
  Row(std::string("budget isolation: cold+tiny-state ") +
      (starved_ok ? "rejected" : "NOT REJECTED") + ", 1ns deadline " +
      (expired_ok ? "rejected" : "NOT REJECTED") + ", unbudgeted retry " +
      (recovered ? "correct" : "WRONG") + ", warm memo under budget " +
      (warm_served ? "served" : "NOT SERVED"));
  reporter.AddScalar("serve.budget_isolation_ok", isolation_ok ? 1 : 0);
  reporter.AddScalar(
      "serve.budget_rejects",
      static_cast<double>(budget_server.stats().budget_rejects));

  // --- 6. Admission control -------------------------------------------
  // One evaluation slot, no queue: concurrent slow compilations must
  // produce fast-fail rejects. Racy, so retry rounds until observed.
  int64_t admission_rejects = 0;
  int admission_rounds = 0;
  for (int round = 0; round < 50 && admission_rejects == 0; ++round) {
    ++admission_rounds;
    serve::ServerOptions strict;
    strict.max_concurrent = 1;
    strict.max_queued = 0;
    serve::QueryServer gated(fixture, strict);
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int c = 0; c < 6; ++c) {
      threads.emplace_back([&, c] {
        std::unique_ptr<serve::Session> session = gated.OpenSession();
        // Distinct patterns per client: no dedup, every request wants the
        // single slot at once.
        FormulaPtr f = Q("R(x) & member(x, '" +
                         HardPattern((smoke ? 7 : 9) + (c % 3)) + "')");
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        (void)session->Query(f);
      });
    }
    while (ready.load() < 6) std::this_thread::yield();
    go.store(true);
    for (std::thread& t : threads) t.join();
    admission_rejects = gated.stats().admission_rejects;
  }
  Row("admission control: " + std::to_string(admission_rejects) +
      " fast-fail reject(s) in round " + std::to_string(admission_rounds));
  reporter.AddScalar("serve.admission_rejects",
                     static_cast<double>(admission_rejects));

  const bool all_ok = answers_agree && mvcc_agree && isolation_ok &&
                      dedup_hits > 0 && admission_rejects > 0;
  Row(all_ok ? "SERVING GATES: all green"
             : "SERVING GATES: FAILURES above");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::Run(argc, argv); }
