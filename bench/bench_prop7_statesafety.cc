// Proposition 7 / Corollary 8 — state-safety (is φ(D) finite?) is decidable
// for all four tame calculi. Measured: decision latency of the
// answer-automaton finiteness check as the database grows, for a safe and
// an unsafe query in each calculus; plus the contrast that the same
// question for RC_concat is refused (undecidable, Corollary 1).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "logic/parser.h"
#include "safety/query_safety.h"

namespace strq {
namespace {

using bench::Header;
using bench::LogLogSlope;
using bench::RandomUnaryDb;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

struct Case {
  const char* calculus;
  const char* query;
  bool expect_safe;
};

int Run() {
  Header("P7", "Proposition 7 — state-safety decision latency");

  const std::vector<Case> battery = {
      {"S", "exists y. R(y) & x <= y", true},
      {"S", "exists y. R(y) & y <= x", false},
      {"S_left", "exists y. R(y) & prepend[1](y) = x", true},
      {"S_left", "exists y. R(y) & y <= trim[1](x)", false},
      {"S_reg", "exists y. R(y) & suffixin(x, y, '1*')", true},
      {"S_reg", "exists y. R(y) & suffixin(y, x, '1*')", false},
      {"S_len", "exists y. R(y) & eqlen(x, y)", true},
      {"S_len", "exists y. R(y) & leqlen(y, x)", false},
  };

  std::printf("  calc   | verdict | expect |       t(s) by db size n\n");
  for (const Case& c : battery) {
    FormulaPtr f = Q(c.query);
    std::printf("  %-6s | ", c.calculus);
    std::vector<double> ns;
    std::vector<double> ts;
    bool verdict = false;
    bool ok = true;
    std::string series;
    for (int n : {20, 40, 80, 160}) {
      Database db = RandomUnaryDb(81, n, 1, 8);
      Result<bool> safe = InternalError("unset");
      double t = TimeSeconds([&] { safe = StateSafe(f, db); });
      if (!safe.ok()) {
        ok = false;
        break;
      }
      verdict = *safe;
      char buf[48];
      std::snprintf(buf, sizeof buf, " %d:%.4f", n, t);
      series += buf;
      ns.push_back(n);
      ts.push_back(t);
    }
    if (!ok) {
      std::printf("ERROR on %s\n", c.query);
      continue;
    }
    std::printf("%-7s | %-6s |%s  (degree %.2f)\n",
                verdict ? "safe" : "unsafe", c.expect_safe ? "safe" : "unsafe",
                series.c_str(), LogLogSlope(ns, ts));
  }

  // RC_concat contrast.
  Database db = RandomUnaryDb(83, 10, 1, 4);
  Result<bool> refused =
      StateSafe(Q("exists w. R(w) & concat(w, w) = x"), db);
  std::printf("\n  RC_concat state-safety: %s (Corollary 1: undecidable)\n",
              refused.status().ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
