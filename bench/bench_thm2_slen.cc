// Theorem 2 / Corollary 4 — RC(S_len) is captured by length-restricted
// quantification, and its data complexity lies in PH (can be exponential in
// the longest database string for the enumeration strategy).
//
// Measured:
//   * engine agreement (length-restricted enumeration ≡ exact automata
//     semantics) on an S_len battery — the Theorem 2 collapse;
//   * the cost wall: enumeration cost grows as |Σ|^maxlen while the
//     automata engine stays polynomial on the same inputs (its cost moves
//     with automaton sizes, not candidate counts).

#include <cstdio>
#include <iterator>
#include <string>

#include "bench/bench_util.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

using bench::BenchReporter;
using bench::Header;
using bench::Row;
using bench::TimeSeconds;

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  if (!r.ok()) std::exit(1);
  return *std::move(r);
}

Database ChainDb(int max_len) {
  // Width-1 database: the chain ε, 0, 00, ..., 0^max_len.
  Database db(Alphabet::Binary());
  std::vector<Tuple> tuples;
  std::string s;
  for (int i = 0; i <= max_len; ++i) {
    tuples.push_back({s});
    s += '0';
  }
  Status status = db.AddRelation("R", 1, std::move(tuples));
  (void)status;
  return db;
}

int Run(int argc, char** argv) {
  BenchReporter reporter(argc, argv, "T2",
                         "Theorem 2 — length-restricted collapse and the "
                         "PH wall");
  Header("T2", "Theorem 2 — length-restricted collapse and the PH wall");

  const std::string battery[] = {
      "exists x len adom. !adom(x) & last[1](x)",
      "forall x in adom. exists y len adom. eqlen(x, y) & member(y, '1*')",
      "exists x len adom. exists y len adom. eqlen(x, y) & !(x = y) & "
      "last[1](x) & last[1](y)",
  };

  std::printf("  engine agreement (Theorem 2 collapse):\n");
  {
    Database db = ChainDb(6);
    AutomataEvaluator engine_a(&db);
    RestrictedEvaluator engine_b(&db);
    int agreed = 0;
    for (const std::string& q : battery) {
      Result<bool> a = engine_a.EvaluateSentence(Q(q));
      Result<bool> b = engine_b.EvaluateSentence(Q(q));
      bool agree = a.ok() && b.ok() && *a == *b;
      agreed += agree;
      std::printf("   agree=%s  %s\n", agree ? "yes" : "NO ", q.c_str());
    }
    reporter.AddScalar("agreement", agreed);
    reporter.AddScalar("battery_size", std::size(battery));
  }

  std::printf(
      "\n  cost vs longest database string (query: two distinct equal-length"
      "\n  strings ending in 1, outside adom):\n");
  std::printf("  maxlen | enumeration (s) | automata (s) | candidates\n");
  FormulaPtr probe = Q(
      "exists x len adom. exists y len adom. eqlen(x, y) & !(x = y) & "
      "last[1](x) & last[1](y) & !adom(x) & !adom(y)");
  std::vector<int> lens = {4, 8, 12, 16};
  if (reporter.smoke()) lens = {4, 8};
  std::vector<double> xs, enum_ts, auto_ts;
  for (int len : lens) {
    Database db = ChainDb(len);
    RestrictedEvaluator engine_b(&db);
    AutomataEvaluator engine_a(&db);
    double tb = TimeSeconds([&] { (void)engine_b.EvaluateSentence(probe); });
    double ta = TimeSeconds([&] { (void)engine_a.EvaluateSentence(probe); });
    std::printf("  %6d | %15.4f | %12.4f | ~2^%d\n", len, tb, ta, len + 1);
    xs.push_back(len);
    enum_ts.push_back(tb);
    auto_ts.push_back(ta);
  }
  reporter.AddSeries("enumeration", xs, enum_ts);
  reporter.AddSeries("automata", xs, auto_ts);
  Row("enumeration cost doubles with each extra symbol (the Theorem 2");
  Row("bound is tight in this sense); the automata engine's exactness");
  Row("does not rescue worst-case complexity — Proposition 5 plants");
  Row("NP-complete problems inside RC(S_len) (see bench_prop5_3col).");
  return 0;
}

}  // namespace
}  // namespace strq

int main(int argc, char** argv) { return strq::Run(argc, argv); }
