// Section 4 — LIKE, SIMILAR, and lexicographic ordering as string-structure
// operations. google-benchmark microbenches:
//   * LIKE matching throughput: compiled DFA vs the reference backtracking
//     matcher (the DFA path is the scalable one the algebra σ uses);
//   * SIMILAR (regular-expression) compilation and matching;
//   * the LIKE -> star-free pipeline (compile + aperiodicity certificate);
//   * lexicographic comparisons through the ≤_lex atom vs direct compare.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <iterator>
#include <map>

#include "automata/like.h"
#include "automata/regex.h"
#include "automata/starfree.h"
#include "base/rng.h"
#include "base/string_ops.h"
#include "eval/automata_eval.h"
#include "mta/atoms.h"
#include "obs/trace.h"

namespace strq {
namespace {

const char* kPatterns[] = {"a%", "%abc%", "a_b%c", "%a%b%c%", "ab_%_ba"};

std::vector<std::string> Workload(int count, int len) {
  Rng rng(97);
  std::vector<std::string> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(rng.NextString("abc", len, len));
  return out;
}

void BM_LikeCompiledMatcher(benchmark::State& state) {
  // The compile-once hot path: raw-character DFA walk, no allocation.
  Alphabet alphabet = Alphabet::Abc();
  const char* pattern = kPatterns[state.range(0)];
  Result<LikeMatcher> matcher = LikeMatcher::Create(pattern, alphabet);
  if (!matcher.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  std::vector<std::string> texts = Workload(256, 32);
  for (auto _ : state) {
    int hits = 0;
    for (const std::string& t : texts) hits += matcher->Matches(t);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * texts.size());
}
BENCHMARK(BM_LikeCompiledMatcher)->DenseRange(0, 4);

void BM_LikeDfaWithEncoding(benchmark::State& state) {
  // Baseline showing the cost of the allocating encode-then-run path.
  Alphabet alphabet = Alphabet::Abc();
  const char* pattern = kPatterns[state.range(0)];
  Result<Dfa> dfa = CompileLike(pattern, alphabet);
  if (!dfa.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  std::vector<std::string> texts = Workload(256, 32);
  for (auto _ : state) {
    int hits = 0;
    for (const std::string& t : texts) {
      hits += dfa->AcceptsString(alphabet, t);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * texts.size());
}
BENCHMARK(BM_LikeDfaWithEncoding)->DenseRange(0, 4);

void BM_LikeReferenceBacktracker(benchmark::State& state) {
  const char* pattern = kPatterns[state.range(0)];
  std::vector<std::string> texts = Workload(256, 32);
  for (auto _ : state) {
    int hits = 0;
    for (const std::string& t : texts) hits += LikeMatch(t, pattern);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * texts.size());
}
BENCHMARK(BM_LikeReferenceBacktracker)->DenseRange(0, 4);

void BM_LikeCompileAndCertifyStarFree(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Abc();
  const char* pattern = kPatterns[state.range(0)];
  for (auto _ : state) {
    Result<Dfa> dfa = CompileLike(pattern, alphabet);
    if (!dfa.ok()) {
      state.SkipWithError("compile failed");
      return;
    }
    Result<bool> sf = IsStarFree(*dfa);
    if (!sf.ok() || !*sf) {
      state.SkipWithError("LIKE pattern not star-free?!");
      return;
    }
    benchmark::DoNotOptimize(*sf);
  }
}
BENCHMARK(BM_LikeCompileAndCertifyStarFree)->DenseRange(0, 4);

void BM_SimilarCompile(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Abc();
  for (auto _ : state) {
    Result<Dfa> dfa = CompileSimilar("(ab|ba)%c_((a|b)(a|b))%", alphabet);
    if (!dfa.ok()) {
      state.SkipWithError("compile failed");
      return;
    }
    benchmark::DoNotOptimize(dfa->num_states());
  }
}
BENCHMARK(BM_SimilarCompile);

void BM_SimilarMatch(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Abc();
  Result<Dfa> dfa = CompileSimilar("(ab|ba)%c_((a|b)(a|b))%", alphabet);
  if (!dfa.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  std::vector<std::string> texts = Workload(256, 40);
  for (auto _ : state) {
    int hits = 0;
    for (const std::string& t : texts) hits += dfa->AcceptsString(alphabet, t);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * texts.size());
}
BENCHMARK(BM_SimilarMatch);

void BM_LexLeqAtomMembership(benchmark::State& state) {
  Alphabet alphabet = Alphabet::Abc();
  Result<TrackAutomaton> atom = LexLeqAtom(alphabet, 0, 1);
  if (!atom.ok()) {
    state.SkipWithError("atom failed");
    return;
  }
  std::vector<std::string> texts = Workload(128, 24);
  for (auto _ : state) {
    int hits = 0;
    for (size_t i = 0; i + 1 < texts.size(); ++i) {
      Result<bool> in = atom->Contains({texts[i], texts[i + 1]});
      hits += in.ok() && *in;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LexLeqAtomMembership);

void BM_LexLeqDirect(benchmark::State& state) {
  std::vector<std::string> texts = Workload(128, 24);
  for (auto _ : state) {
    int hits = 0;
    for (size_t i = 0; i + 1 < texts.size(); ++i) {
      hits += LexLeq(texts[i], texts[i + 1], "abc");
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LexLeqDirect);

void BM_PatternCacheCompiledPattern(benchmark::State& state) {
  // The evaluator-level memoized path the algebra σ and repeated query
  // compiles go through: every iteration past the first is pure cache hits.
  Database db(Alphabet::Abc());
  AutomataEvaluator engine(&db);
  for (auto _ : state) {
    int states = 0;
    for (const char* pattern : kPatterns) {
      Result<Dfa> dfa =
          engine.CompiledPattern(pattern, PatternSyntax::kLikePattern);
      if (!dfa.ok()) {
        state.SkipWithError("compile failed");
        return;
      }
      states += dfa->num_states();
    }
    benchmark::DoNotOptimize(states);
  }
  state.SetItemsProcessed(state.iterations() * std::size(kPatterns));
}
BENCHMARK(BM_PatternCacheCompiledPattern);

}  // namespace
}  // namespace strq

int main(int argc, char** argv) {
  // Counters only move while tracing is on; the per-iteration cost is one
  // registry bump, invisible next to pattern compilation itself.
  strq::obs::SetEnabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::map<std::string, int64_t> metrics =
      strq::obs::MetricsRegistry::Global().Snapshot();
  int64_t hits = metrics[strq::obs::kPatternCacheHits];
  int64_t misses = metrics[strq::obs::kPatternCacheMisses];
  std::printf(
      "\npattern cache: %lld hit(s), %lld miss(es) (%.1f%% hit rate)\n",
      static_cast<long long>(hits), static_cast<long long>(misses),
      hits + misses == 0 ? 0.0 : 100.0 * hits / (hits + misses));
  return 0;
}
