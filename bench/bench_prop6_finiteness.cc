// Proposition 6 — finiteness is NOT definable in RC(S). The paper's proof:
// for every rank k there are K, m such that the database of all strings of
// length ≤ K is k-round EF-indistinguishable from one containing the
// infinite family (0^m 1^m)*·w. Here the game argument is machine-checked
// on finite cuts: the two structures (universe = U-strings and their
// prefixes; relations U, ≼, L_0, L_1) are fed to the EF solver and the
// duplicator's rank-k win is verified.
//
// Contrast cell: over S_len finiteness IS definable (Section 6.1) — the
// sentence Φ^safe evaluates correctly on stored relations.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "base/string_ops.h"
#include "bench/bench_util.h"
#include "eval/automata_eval.h"
#include "games/ef_game.h"
#include "safety/range_restriction.h"

namespace strq {
namespace {

using bench::Header;
using bench::Row;
using bench::TimeSeconds;

// Encodes a unary string database as a finite S-structure cut: universe =
// prefix-closure of U; relations: U, ≼ (prefix), L_0, L_1. With K ≥ 2m the
// cut set (0^m 1^m)^j·w (|w| ≤ K) is itself prefix-closed, so both boards
// have U = universe and differ only in shape — the honest finite shadow of
// the paper's game on Σ*.
FiniteStructure Encode(const Database& db) {
  const Relation* u = db.Find("U");
  std::vector<std::string> universe;
  for (const Tuple& t : u->tuples()) universe.push_back(t[0]);
  universe = PrefixClosure(universe);
  FiniteStructure s(static_cast<int>(universe.size()));
  auto id = [&](const std::string& w) {
    return static_cast<int>(
        std::lower_bound(universe.begin(), universe.end(), w) -
        universe.begin());
  };
  std::set<std::vector<int>> u_rel;
  std::set<std::vector<int>> prefix_rel;
  std::set<std::vector<int>> l0;
  std::set<std::vector<int>> l1;
  for (const std::string& a : universe) {
    if (u->Contains({a})) u_rel.insert({id(a)});
    if (!a.empty() && a.back() == '0') l0.insert({id(a)});
    if (!a.empty() && a.back() == '1') l1.insert({id(a)});
    for (const std::string& b : universe) {
      if (IsPrefix(a, b)) prefix_rel.insert({id(a), id(b)});
    }
  }
  Status s1 = s.AddRelation("U", 1, std::move(u_rel));
  Status s2 = s.AddRelation("prefix", 2, std::move(prefix_rel));
  Status s3 = s.AddRelation("L0", 1, std::move(l0));
  Status s4 = s.AddRelation("L1", 1, std::move(l1));
  (void)s1;
  (void)s2;
  (void)s3;
  (void)s4;
  return s;
}

int Run() {
  Header("P6", "Proposition 6 — finiteness is not definable in RC(S)");

  std::printf(
      "  rank k | ball K | pattern m | |A|/|B| | duplicator wins | t (s)\n");
  struct Config {
    int k, ball, m, reps;
  };
  for (const Config& c : {Config{1, 2, 1, 1}, Config{1, 2, 1, 2},
                          Config{2, 4, 2, 1}}) {
    Database fin = Prop6FiniteDatabase(c.ball);
    Database cut = Prop6InfiniteFamilyCut(c.m, c.ball, c.reps);
    FiniteStructure a = Encode(fin);
    FiniteStructure b = Encode(cut);
    Result<bool> dup = InternalError("unset");
    double t = TimeSeconds([&] { dup = DuplicatorWins(a, b, c.k); });
    std::printf("  %6d | %6d | %9d | %3d/%3d | %15s | %.3f\n", c.k, c.ball,
                c.m, a.universe_size(), b.universe_size(),
                dup.ok() ? (*dup ? "yes" : "no") : "ERR", t);
  }
  Row("duplicator wins at each rank for suitable (K, m): the finite ball");
  Row("and the cut of the infinite (0^m 1^m)*-family cannot be told apart");
  Row("by rank-k sentences over (U, ≼, L_a) — the engine-checked core of");
  Row("the Proposition 6 argument (full statement needs the infinite set).");

  // Contrast: finiteness of a stored relation IS definable over S_len.
  std::printf("\n  S_len contrast (Section 6.1, Φ^safe as a real sentence):\n");
  for (int ball : {1, 2, 3}) {
    Database fin = Prop6FiniteDatabase(ball);
    AutomataEvaluator engine(&fin);
    Result<bool> v = engine.EvaluateSentence(FinitenessSentenceSLen("U"));
    std::printf("   ball K=%d: Φ^safe(U) = %s (U stored finite -> true)\n",
                ball, v.ok() ? (*v ? "true" : "false") : "ERR");
  }
  return 0;
}

}  // namespace
}  // namespace strq

int main() { return strq::Run(); }
