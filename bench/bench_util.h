#ifndef STRQ_BENCH_BENCH_UTIL_H_
#define STRQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "automata/ops.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace strq {
namespace bench {

// Wall-clock seconds of a callable, averaged over `reps` runs.
inline double TimeSeconds(const std::function<void()>& fn, int reps = 1) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() / reps;
}

// Least-squares slope of log(y) against log(x): the empirical polynomial
// degree of a scaling series. Points with non-positive values are skipped.
inline double LogLogSlope(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) continue;
    double lx = std::log(xs[i]);
    double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

// A unary database R ⊆ Σ* with `size` distinct random strings of length in
// [min_len, max_len].
inline Database RandomUnaryDb(uint64_t seed, int size, int min_len,
                              int max_len) {
  Database db(Alphabet::Binary());
  Rng rng(seed);
  std::vector<Tuple> tuples;
  for (const std::string& s :
       rng.DistinctStrings("01", min_len, max_len, size)) {
    tuples.push_back({s});
  }
  Status status = db.AddRelation("R", 1, std::move(tuples));
  if (!status.ok()) {
    // A bench running against a malformed fixture measures nothing; fail
    // loudly instead of timing queries over an empty relation.
    std::fprintf(stderr, "RandomUnaryDb: AddRelation failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return db;
}

// Section header in the bench output.
inline void Header(const char* id, const char* title) {
  std::printf("\n==== %s: %s ====\n", id, title);
}

inline void Row(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

// Machine-readable bench output (schema "strq.bench.v1").
//
// Construct one per bench main() from argv. Flags understood:
//   --smoke        shrink the workload (benches consult smoke() for sizes)
//   --json[=path]  write BENCH_<id>.json (or `path`) on Finish()
// When JSON output is requested, obs tracing is force-enabled so the emitted
// file also carries the metric counters the run moved (automaton sizes,
// cache hits, ...). Text output to stdout is unchanged either way.
class BenchReporter {
 public:
  BenchReporter(int argc, char** argv, const char* id, const char* title)
      : id_(id), title_(title) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--smoke") == 0) {
        smoke_ = true;
      } else if (std::strcmp(arg, "--json") == 0) {
        json_ = true;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        json_ = true;
        path_ = arg + 7;
      }
    }
    if (path_.empty()) path_ = std::string("BENCH_") + id_ + ".json";
    if (json_) {
      obs::SetEnabled(true);
      metrics_before_ = obs::MetricsRegistry::Global().Snapshot();
    }
  }

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;
  ~BenchReporter() { Finish(); }

  bool smoke() const { return smoke_; }
  bool json() const { return json_; }

  // Records a scaling series; the log-log slope is computed and stored
  // alongside so downstream tooling never refits it.
  void AddSeries(const std::string& name, std::vector<double> xs,
                 std::vector<double> ys) {
    series_.push_back(Series{name, std::move(xs), std::move(ys)});
  }

  void AddScalar(const std::string& name, double value) {
    scalars_.emplace_back(name, value);
  }

  // The workload seed recorded in the meta block (benches that randomize
  // call this with the seed they actually used; 0 = fixed workload).
  void set_seed(uint64_t seed) { seed_ = seed; }

  // Writes the JSON file if --json was given. Idempotent; also called by
  // the destructor so benches that return early still emit.
  void Finish() {
    if (!json_ || finished_) return;
    finished_ = true;
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("schema", obs::JsonValue::Str("strq.bench.v1"));
    out.Set("id", obs::JsonValue::Str(id_));
    out.Set("title", obs::JsonValue::Str(title_));
    out.Set("smoke", obs::JsonValue::Bool(smoke_));
    // Provenance: enough to reproduce the run — harness revision, workload
    // seed, effective thread count, and which kernel variants were active.
    // json_check requires this block (and each of its keys) for bench.v1.
    obs::JsonValue meta = obs::JsonValue::Object();
    meta.Set("harness_version", obs::JsonValue::Int(2));
    meta.Set("seed", obs::JsonValue::Int(static_cast<int64_t>(seed_)));
    meta.Set("threads",
             obs::JsonValue::Int(ParallelOptions{}.EffectiveThreads()));
    meta.Set("product_kernel",
             obs::JsonValue::Str(GetProductKernel() == ProductKernel::kEager
                                     ? "eager"
                                     : "reachable"));
    meta.Set("class_kernel",
             obs::JsonValue::Str(GetClassKernel() == ClassKernel::kDense
                                     ? "dense"
                                     : "condensed"));
    out.Set("meta", std::move(meta));
    obs::JsonValue series = obs::JsonValue::Array();
    for (const Series& s : series_) {
      obs::JsonValue one = obs::JsonValue::Object();
      one.Set("name", obs::JsonValue::Str(s.name));
      obs::JsonValue xs = obs::JsonValue::Array();
      for (double x : s.xs) xs.Append(obs::JsonValue::Number(x));
      obs::JsonValue ys = obs::JsonValue::Array();
      for (double y : s.ys) ys.Append(obs::JsonValue::Number(y));
      one.Set("xs", std::move(xs));
      one.Set("ys", std::move(ys));
      one.Set("loglog_slope", obs::JsonValue::Number(LogLogSlope(s.xs, s.ys)));
      series.Append(std::move(one));
    }
    out.Set("series", std::move(series));
    obs::JsonValue scalars = obs::JsonValue::Object();
    for (const auto& [name, value] : scalars_) {
      scalars.Set(name, obs::JsonValue::Number(value));
    }
    out.Set("scalars", std::move(scalars));
    out.Set("metrics",
            obs::MetricsToJson(obs::MetricsDelta(
                metrics_before_, obs::MetricsRegistry::Global().Snapshot())));
    // Latency distributions the run produced (p50/p90/p99 summaries) and the
    // bytes currently retained by the memoization structures.
    out.Set("histograms",
            obs::HistogramsToJson(obs::MetricsRegistry::Global()
                                      .HistSnapshot()));
    out.Set("memory", obs::MetricsToJson(obs::MemSnapshot()));
    std::string text = out.Dump(2);
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "BenchReporter: cannot write %s\n", path_.c_str());
      std::abort();
    }
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("  [json written to %s]\n", path_.c_str());
  }

 private:
  struct Series {
    std::string name;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  std::string id_;
  std::string title_;
  std::string path_;
  bool smoke_ = false;
  bool json_ = false;
  bool finished_ = false;
  uint64_t seed_ = 0;
  std::vector<Series> series_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::map<std::string, int64_t> metrics_before_;
};

}  // namespace bench
}  // namespace strq

#endif  // STRQ_BENCH_BENCH_UTIL_H_
