#ifndef STRQ_BENCH_BENCH_UTIL_H_
#define STRQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "relational/database.h"

namespace strq {
namespace bench {

// Wall-clock seconds of a callable, averaged over `reps` runs.
inline double TimeSeconds(const std::function<void()>& fn, int reps = 1) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() / reps;
}

// Least-squares slope of log(y) against log(x): the empirical polynomial
// degree of a scaling series. Points with non-positive values are skipped.
inline double LogLogSlope(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) continue;
    double lx = std::log(xs[i]);
    double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

// A unary database R ⊆ Σ* with `size` distinct random strings of length in
// [min_len, max_len].
inline Database RandomUnaryDb(uint64_t seed, int size, int min_len,
                              int max_len) {
  Database db(Alphabet::Binary());
  Rng rng(seed);
  std::vector<Tuple> tuples;
  for (const std::string& s :
       rng.DistinctStrings("01", min_len, max_len, size)) {
    tuples.push_back({s});
  }
  Status status = db.AddRelation("R", 1, std::move(tuples));
  (void)status;
  return db;
}

// Section header in the bench output.
inline void Header(const char* id, const char* title) {
  std::printf("\n==== %s: %s ====\n", id, title);
}

inline void Row(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace bench
}  // namespace strq

#endif  // STRQ_BENCH_BENCH_UTIL_H_
