// Shard-count invariance differential fuzz: random formulas served through
// QueryServers at 1/2/4/8 shards over the same initial database must agree
// on answers, EnumerateTuples order, IsSafe verdicts, sentence truth, and
// the canonical merge-store id of the compiled answer. Every arm's merge
// stack interns into the process-wide default AutomatonStore, so equal
// languages MUST yield equal dfa_ref().id() — byte-identity, not just
// set-equality. A second battery streams identical tuple deltas through
// CommitDeltas on every arm and re-verifies after each Refresh.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "logic/ast.h"
#include "relational/snapshot.h"
#include "serve/server.h"
#include "shard/coordinator.h"

namespace strq {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};

// Biased toward ∪-distributive shapes (positive relation atoms, unranged
// quantifiers) so the coordinator path gets real coverage, while still
// emitting negations, adom, ranged quantifiers, and two-sided conjunctions
// to exercise the merge-stack fallback on the same battery.
class ShardFormulaFuzzer {
 public:
  explicit ShardFormulaFuzzer(uint64_t seed) : rng_(seed) {}

  FormulaPtr Open(int depth, std::vector<std::string> free_vars) {
    return Gen(depth, free_vars);
  }

 private:
  TermPtr RandomTerm(const std::vector<std::string>& scope, int depth) {
    if (depth <= 0 || scope.empty() || rng_.NextBelow(3) == 0) {
      if (scope.empty() || rng_.NextBelow(4) == 0) {
        return TConst(rng_.NextString("01", 0, 2));
      }
      return TVar(scope[rng_.NextBelow(scope.size())]);
    }
    return rng_.NextBool()
               ? TAppend(RandomLetter(), RandomTerm(scope, depth - 1))
               : TPrepend(RandomLetter(), RandomTerm(scope, depth - 1));
  }

  char RandomLetter() { return rng_.NextBool() ? '0' : '1'; }

  FormulaPtr Atom(const std::vector<std::string>& scope) {
    TermPtr t1 = RandomTerm(scope, 1);
    TermPtr t2 = RandomTerm(scope, 1);
    switch (rng_.NextBelow(8)) {
      case 0:
        return FPred(PredKind::kEq, {t1, t2});
      case 1:
        return FPred(PredKind::kPrefix, {t1, t2});
      case 2:
        return FLast(RandomLetter(), t1);
      case 3:
        return FPred(PredKind::kLexLeq, {t1, t2});
      case 4:
        return FRelation("S", {t1, t2});
      case 5:
        // Rare: the active-domain predicate forces the fallback path.
        return rng_.NextBelow(4) == 0 ? FPred(PredKind::kAdom, {t1})
                                      : FRelation("R", {t1});
      default:
        return FRelation("R", {t1});
    }
  }

  FormulaPtr Quantified(int depth, std::vector<std::string>& scope) {
    std::string var = "v" + std::to_string(scope.size());
    // Mostly unranged (distributable); occasionally adom-ranged (fallback).
    QuantRange range =
        rng_.NextBelow(4) == 0 ? QuantRange::kAdom : QuantRange::kAll;
    scope.push_back(var);
    FormulaPtr body = Gen(depth - 1, scope);
    scope.pop_back();
    return rng_.NextBelow(4) == 0 ? FForall(var, body, range)
                                  : FExists(var, body, range);
  }

  FormulaPtr Gen(int depth, std::vector<std::string>& scope) {
    if (depth <= 0 || rng_.NextBelow(3) == 0) return Atom(scope);
    switch (rng_.NextBelow(8)) {
      case 0:
        return FNot(Gen(depth - 1, scope));
      case 1:
        return FImplies(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 2:
      case 3:
        return FAnd(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 4:
      case 5:
        return FOr(Gen(depth - 1, scope), Gen(depth - 1, scope));
      default:
        return Quantified(depth, scope);
    }
  }

  Rng rng_;
};

Database FuzzDb(uint64_t seed) {
  Database db(Alphabet::Binary());
  Rng rng(seed);
  std::vector<Tuple> r;
  for (const std::string& s : rng.DistinctStrings("01", 0, 4, 9)) {
    r.push_back({s});
  }
  Status status = db.AddRelation("R", 1, std::move(r));
  EXPECT_TRUE(status.ok());
  std::vector<Tuple> s2;
  for (const std::string& s : rng.DistinctStrings("01", 1, 3, 4)) {
    s2.push_back({s, rng.NextString("01", 0, 3)});
  }
  status = db.AddRelation("S", 2, std::move(s2));
  EXPECT_TRUE(status.ok());
  return db;
}

FormulaPtr ExistentialClosure(FormulaPtr f) {
  for (const std::string& v : FreeVars(f)) f = FExists(v, std::move(f));
  return f;
}

// One arm per shard count, each serving its own copy of the same database.
struct Arms {
  std::vector<std::unique_ptr<serve::QueryServer>> servers;
  std::vector<std::unique_ptr<serve::Session>> sessions;

  explicit Arms(const Database& db) {
    for (int n : kShardCounts) {
      serve::ServerOptions options;
      options.num_shards = n;
      servers.push_back(std::make_unique<serve::QueryServer>(db, options));
      sessions.push_back(servers.back()->OpenSession());
    }
  }

  void CommitEverywhere(const std::vector<TupleDelta>& ops) {
    for (size_t a = 0; a < servers.size(); ++a) {
      Result<CommitDelta> c = servers[a]->CommitDeltas(ops);
      ASSERT_TRUE(c.ok()) << "arm " << kShardCounts[a] << ": " << c.status();
      sessions[a]->Refresh();
    }
  }

  // The full agreement battery for one formula. Arm 0 (1 shard — never
  // routed through the coordinator) is the oracle.
  void CheckAgreement(const FormulaPtr& f) {
    const std::string text = ToString(f);
    Result<Relation> oracle = sessions[0]->Query(f);
    Result<TrackAutomaton> oracle_rel = sessions[0]->Compile(f);
    Result<bool> oracle_safe = sessions[0]->IsSafe(f);
    EXPECT_NE(oracle.status().code(), StatusCode::kInternal) << text;
    for (size_t a = 1; a < sessions.size(); ++a) {
      SCOPED_TRACE(text + " @ " + std::to_string(kShardCounts[a]) +
                   " shards");
      Result<Relation> got = sessions[a]->Query(f);
      ASSERT_EQ(oracle.ok(), got.ok())
          << oracle.status() << " vs " << got.status();
      if (oracle.ok()) {
        EXPECT_EQ(oracle->tuples(), got->tuples());
      } else {
        EXPECT_EQ(oracle.status().code(), got.status().code());
      }

      Result<TrackAutomaton> rel = sessions[a]->Compile(f);
      ASSERT_EQ(oracle_rel.ok(), rel.ok());
      if (oracle_rel.ok()) {
        // Canonical-id byte-identity: both interned in the default store.
        EXPECT_EQ(oracle_rel->dfa_ref().id(), rel->dfa_ref().id());
        EXPECT_EQ(oracle_rel->EnumerateTuples(6, 8),
                  rel->EnumerateTuples(6, 8));
      }

      Result<bool> safe = sessions[a]->IsSafe(f);
      ASSERT_EQ(oracle_safe.ok(), safe.ok());
      if (oracle_safe.ok()) {
        EXPECT_EQ(*oracle_safe, *safe);
      }
    }

    FormulaPtr sentence = ExistentialClosure(f);
    Result<bool> oracle_truth = sessions[0]->QuerySentence(sentence);
    for (size_t a = 1; a < sessions.size(); ++a) {
      SCOPED_TRACE("closure of " + text + " @ " +
                   std::to_string(kShardCounts[a]) + " shards");
      Result<bool> truth = sessions[a]->QuerySentence(sentence);
      ASSERT_EQ(oracle_truth.ok(), truth.ok())
          << oracle_truth.status() << " vs " << truth.status();
      if (oracle_truth.ok()) {
        EXPECT_EQ(*oracle_truth, *truth);
      }
    }
  }
};

class ShardInvarianceFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardInvarianceFuzzTest, ArmsAgreeOnRandomFormulas) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ShardFormulaFuzzer fuzzer(seed * 9973 + 13);
  Arms arms(FuzzDb(seed * 104729 + 19));
  for (int i = 0; i < 25; ++i) {
    FormulaPtr f = fuzzer.Open(3, {"x", "y"});
    arms.CheckAgreement(f);
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardInvarianceFuzzTest,
                         ::testing::Range(1, 9));

// Update-stream arm: identical tuple deltas (inserts and deletes, plus one
// opaque whole-relation commit) stream through every arm's CommitDeltas;
// after each refresh the battery must still agree.
class ShardUpdateStreamFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardUpdateStreamFuzzTest, ArmsAgreeUnderIdenticalUpdateStreams) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ShardFormulaFuzzer fuzzer(seed * 6151 + 3);
  Rng rng(seed * 2654435761 + 7);
  Database db = FuzzDb(seed * 15485863 + 23);
  Arms arms(db);
  // Mirror of R's tuple set so deletes can target live tuples.
  std::vector<std::string> live;
  for (const Tuple& t : db.Find("R")->tuples()) live.push_back(t[0]);

  for (int round = 0; round < 6; ++round) {
    std::vector<TupleDelta> ops;
    for (int k = 0; k < 3; ++k) {
      if (!live.empty() && rng.NextBelow(3) == 0) {
        size_t victim = rng.NextBelow(live.size());
        ops.push_back({"R", {live[victim]}, false});
        live.erase(live.begin() + victim);
      } else {
        std::string s = rng.NextString("01", 0, 5);
        if (std::find(live.begin(), live.end(), s) == live.end()) {
          ops.push_back({"R", {s}, true});
          live.push_back(s);
        }
      }
    }
    if (ops.empty()) continue;
    arms.CommitEverywhere(ops);
    if (HasFatalFailure()) return;
    for (int i = 0; i < 4; ++i) {
      arms.CheckAgreement(fuzzer.Open(2, {"x", "y"}));
      if (HasFatalFailure()) return;
    }
  }

  // Opaque commit (whole-relation replacement) forces a reseed everywhere;
  // the arms must come back in agreement.
  for (size_t a = 0; a < arms.servers.size(); ++a) {
    Status s = arms.servers[a]->versioned_db().AddRelation(
        "T", 1, {{"0"}, {"10"}, {"110"}});
    ASSERT_TRUE(s.ok()) << s;
    arms.sessions[a]->Refresh();
  }
  arms.CheckAgreement(FRelation("T", {TVar("x")}));
  arms.CheckAgreement(FOr(FRelation("T", {TVar("x")}),
                          FRelation("R", {TVar("x")})));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardUpdateStreamFuzzTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace strq
