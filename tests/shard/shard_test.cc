// Unit coverage for src/shard: the ∪-distributability analysis, the
// deterministic hash partition, commit fan-out vs opaque reseed, coherent
// cross-shard snapshots, and the sharded QueryServer's invariance against
// the unsharded stack on fixed queries.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "logic/ast.h"
#include "logic/parser.h"
#include "obs/trace.h"
#include "relational/snapshot.h"
#include "serve/server.h"
#include "shard/coordinator.h"
#include "shard/sharded_db.h"

namespace strq {
namespace {

using shard::Coordinator;
using shard::ShardedDatabase;
using shard::ShardOptions;

FormulaPtr Parse(const std::string& text) {
  Result<FormulaPtr> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << ": " << f.status();
  return *f;
}

Database TestDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1,
                             {{"0"}, {"1"}, {"00"}, {"01"}, {"10"}, {"11"},
                              {"010"}, {"111"}})
                  .ok());
  EXPECT_TRUE(db.AddRelation("S", 2, {{"0", "1"}, {"10", "01"}}).ok());
  return db;
}

TEST(DistributableTest, AcceptsPositiveUnionDistributiveShapes) {
  EXPECT_TRUE(Coordinator::Distributable(Parse("R(x)")));
  EXPECT_TRUE(Coordinator::Distributable(Parse("exists x. R(x)")));
  EXPECT_TRUE(Coordinator::Distributable(Parse("R(x) & x <= '01'")));
  EXPECT_TRUE(Coordinator::Distributable(Parse("x <= '01' & R(x)")));
  EXPECT_TRUE(Coordinator::Distributable(Parse("R(x) | S(x, y)")));
  EXPECT_TRUE(Coordinator::Distributable(Parse("R(x) | x <= '0'")));
  EXPECT_TRUE(
      Coordinator::Distributable(Parse("exists y. (S(x, y) & x = y)")));
  // A negation is fine as long as it closes over no relation.
  EXPECT_TRUE(Coordinator::Distributable(Parse("R(x) & !(x = '0')")));
}

TEST(DistributableTest, RejectsNonDistributiveShapes) {
  // No relation mention: correct per-shard, but pure waste — merge stack.
  EXPECT_FALSE(Coordinator::Distributable(Parse("x <= '01'")));
  // Negative relation occurrence: ⋃¬Rᵢ ≠ ¬⋃Rᵢ.
  EXPECT_FALSE(Coordinator::Distributable(Parse("!R(x)")));
  EXPECT_FALSE(Coordinator::Distributable(Parse("R(x) -> R(y)")));
  EXPECT_FALSE(Coordinator::Distributable(Parse("R(x) <-> R(y)")));
  // Conjunction with relations on BOTH sides misses cross-shard pairs.
  EXPECT_FALSE(Coordinator::Distributable(Parse("R(x) & S(x, y)")));
  EXPECT_FALSE(Coordinator::Distributable(Parse("R(x) & R(y)")));
  // The active domain of a shard is not the database's.
  EXPECT_FALSE(Coordinator::Distributable(Parse("adom(x)")));
  EXPECT_FALSE(Coordinator::Distributable(Parse("R(x) & adom(y)")));
  EXPECT_FALSE(
      Coordinator::Distributable(Parse("exists y in adom. (R(x) & x = y)")));
  // Forall over a relation is a negative occurrence.
  EXPECT_FALSE(Coordinator::Distributable(Parse("forall x. R(x)")));
}

TEST(OwnerShardTest, DeterministicAndClamped) {
  Tuple t{"0110", "1"};
  for (int n : {1, 2, 4, 8}) {
    int owner = ShardedDatabase::OwnerShard(t, 0, n);
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, n);
    // Same tuple, same track, same shard — every time.
    EXPECT_EQ(owner, ShardedDatabase::OwnerShard(t, 0, n));
  }
  EXPECT_EQ(ShardedDatabase::OwnerShard(t, 0, 1), 0);
  // A track past the arity clamps to the last track instead of faulting.
  EXPECT_EQ(ShardedDatabase::OwnerShard(t, 7, 4),
            ShardedDatabase::OwnerShard(t, 1, 4));
  EXPECT_EQ(ShardedDatabase::OwnerShard(Tuple{}, 0, 4),
            ShardedDatabase::OwnerShard(Tuple{}, 0, 4));
}

TEST(ShardedDatabaseTest, PartitionIsDisjointAndComplete) {
  VersionedDatabase merge(TestDb());
  ShardOptions options;
  options.num_shards = 4;
  ShardedDatabase sharded(&merge, options);
  ASSERT_EQ(sharded.num_shards(), 4);

  ShardedDatabase::SnapshotVector v = sharded.Snapshots();
  ASSERT_EQ(v.shards.size(), 4u);
  EXPECT_EQ(v.merge.revision(), merge.head_revision());
  for (const auto& [name, rel] : v.merge.db().relations()) {
    size_t total = 0;
    for (int i = 0; i < 4; ++i) {
      const Relation* part = v.shards[i].db().Find(name);
      ASSERT_NE(part, nullptr) << "shard " << i << " missing " << name;
      EXPECT_EQ(part->arity(), rel.arity());
      total += part->tuples().size();
      for (const Tuple& t : part->tuples()) {
        EXPECT_EQ(sharded.Owner(t), i) << name << " tuple on wrong shard";
      }
    }
    EXPECT_EQ(total, rel.tuples().size()) << name << " lost/duplicated tuples";
  }
}

TEST(ShardedDatabaseTest, TupleCommitsFanOnlyToOwners) {
  VersionedDatabase merge(TestDb());
  ShardOptions options;
  options.num_shards = 4;
  ShardedDatabase sharded(&merge, options);
  merge.SetCommitHook(
      [&](const CommitDelta& delta) { sharded.OnMergeCommit(delta); });

  Tuple fresh{"0101010"};
  int owner = sharded.Owner(fresh);
  std::vector<int64_t> before;
  for (int i = 0; i < 4; ++i) {
    before.push_back(sharded.stack(i).db->head_revision());
  }
  ASSERT_TRUE(merge.ApplyDeltas({{"R", fresh, true}}).ok());
  for (int i = 0; i < 4; ++i) {
    int64_t after = sharded.stack(i).db->head_revision();
    if (i == owner) {
      EXPECT_NE(after, before[i]) << "owner shard did not commit";
    } else {
      EXPECT_EQ(after, before[i]) << "non-owner shard churned";
    }
  }
  ShardedDatabase::SnapshotVector v = sharded.Snapshots();
  const Relation* part = v.shards[owner].db().Find("R");
  ASSERT_NE(part, nullptr);
  EXPECT_TRUE(std::count(part->tuples().begin(), part->tuples().end(), fresh));
  merge.SetCommitHook(nullptr);
}

TEST(ShardedDatabaseTest, OpaqueCommitsReseedEveryShard) {
  VersionedDatabase merge(TestDb());
  ShardOptions options;
  options.num_shards = 2;
  ShardedDatabase sharded(&merge, options);
  merge.SetCommitHook(
      [&](const CommitDelta& delta) { sharded.OnMergeCommit(delta); });

  ASSERT_TRUE(merge.AddRelation("T", 1, {{"0"}, {"1"}, {"01"}}).ok());
  ShardedDatabase::SnapshotVector v = sharded.Snapshots();
  size_t total = 0;
  for (int i = 0; i < 2; ++i) {
    const Relation* part = v.shards[i].db().Find("T");
    ASSERT_NE(part, nullptr) << "new relation missing from shard " << i;
    total += part->tuples().size();
  }
  EXPECT_EQ(total, 3u);
  std::vector<ShardedDatabase::ShardStats> stats = sharded.stats();
  for (const auto& s : stats) EXPECT_EQ(s.reseeds, 1);
  merge.SetCommitHook(nullptr);
}

// The serving path: a 4-shard server must agree with the unsharded one on
// answers, enumeration order, safety verdicts, sentence truth, and the
// canonical id of the compiled answer (both merge stacks intern into the
// process-wide default store, so equal languages mean equal ids).
TEST(ShardedServerTest, AgreesWithUnshardedOnFixedQueries) {
  serve::ServerOptions sharded_options;
  sharded_options.num_shards = 4;
  serve::QueryServer plain(TestDb());
  serve::QueryServer sharded(TestDb(), sharded_options);
  ASSERT_NE(sharded.sharded(), nullptr);
  ASSERT_EQ(sharded.sharded()->num_shards(), 4);
  EXPECT_EQ(plain.sharded(), nullptr);

  auto s1 = plain.OpenSession();
  auto s4 = sharded.OpenSession();
  const std::vector<std::string> queries = {
      "R(x)",
      "R(x) & '0' <= x",
      "R(x) | x <= '0'",
      "exists y. (S(x, y) & x <= y)",
      "!R(x)",             // not distributable: merge-stack fallback
      "R(x) & S(x, y)",    // both-sides And: fallback
      "R(x) & adom(y)",    // adom: fallback
  };
  for (const std::string& text : queries) {
    FormulaPtr f = Parse(text);
    Result<Relation> a = s1->Query(f);
    Result<Relation> b = s4->Query(f);
    ASSERT_EQ(a.ok(), b.ok()) << text << ": " << a.status() << " vs "
                              << b.status();
    if (a.ok()) {
      EXPECT_EQ(a->tuples(), b->tuples()) << text;
    } else {
      EXPECT_EQ(a.status().code(), b.status().code()) << text;
    }
    Result<bool> safe_a = s1->IsSafe(f);
    Result<bool> safe_b = s4->IsSafe(f);
    ASSERT_TRUE(safe_a.ok() && safe_b.ok()) << text;
    EXPECT_EQ(*safe_a, *safe_b) << text;
    Result<TrackAutomaton> rel_a = s1->Compile(f);
    Result<TrackAutomaton> rel_b = s4->Compile(f);
    ASSERT_TRUE(rel_a.ok() && rel_b.ok()) << text;
    EXPECT_EQ(rel_a->dfa_ref().id(), rel_b->dfa_ref().id()) << text;
    EXPECT_EQ(rel_a->EnumerateTuples(6, 16), rel_b->EnumerateTuples(6, 16))
        << text;
  }
  for (const char* text :
       {"exists x. R(x)", "exists x. (R(x) & '11' <= x)",
        "exists x. (R(x) & x = '1010')", "forall x. R(x)"}) {
    FormulaPtr f = Parse(text);
    Result<bool> a = s1->QuerySentence(f);
    Result<bool> b = s4->QuerySentence(f);
    ASSERT_TRUE(a.ok() && b.ok()) << text;
    EXPECT_EQ(*a, *b) << text;
  }
}

// Commits through the sharded server: the session's cross-shard snapshot
// vector stays coherent, answers track the head after Refresh, and shard
// stats reflect the fan-out.
TEST(ShardedServerTest, CommitsFanOutAndSessionsRefreshCoherently) {
  serve::ServerOptions options;
  options.num_shards = 4;
  serve::QueryServer server(TestDb(), options);
  auto session = server.OpenSession();
  FormulaPtr f = Parse("R(x)");

  Result<Relation> before = session->Query(f);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(server.CommitDeltas({{"R", {"000111"}, true}}).ok());
  // Pinned view: unchanged until Refresh.
  Result<Relation> pinned = session->Query(f);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(before->tuples(), pinned->tuples());

  session->Refresh();
  ASSERT_EQ(session->shard_snapshots().size(), 4u);
  Result<Relation> after = session->Query(f);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->tuples().size(), before->tuples().size() + 1);

  int64_t commits = 0;
  for (const auto& s : server.sharded()->stats()) commits += s.commits;
  EXPECT_EQ(commits, 1);
}

// Serial decider early exit: a true-everywhere sentence stops at shard 0 and
// the skipped shards are counted.
TEST(ShardedServerTest, SentenceShortCircuitCountsSkippedShards) {
  obs::ScopedEnable tracing(true);
  serve::ServerOptions options;
  options.num_shards = 4;
  serve::QueryServer server(TestDb(), options);
  auto session = server.OpenSession();
  int64_t before = obs::MetricsRegistry::Global().Get(obs::kShardEarlyExits);
  // Every shard holds some R tuple, so shard 0 already proves the sentence.
  Result<bool> truth = session->QuerySentence(Parse("exists x. R(x)"));
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(*truth);
  int64_t after = obs::MetricsRegistry::Global().Get(obs::kShardEarlyExits);
  EXPECT_EQ(after - before, 3);
}

// Many sessions read and refresh while a writer streams tuple commits: the
// snapshot vectors handed out must always be coherent (merge cardinality ==
// sum of shard cardinalities for every relation). Exercises the sync path
// under tsan.
TEST(ShardedServerTest, ConcurrentCommitsKeepSnapshotVectorsCoherent) {
  serve::ServerOptions options;
  options.num_shards = 4;
  serve::QueryServer server(TestDb(), options);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 40; ++i) {
      std::string s;
      for (int b = 0; b < 6; ++b) s.push_back((i >> b) & 1 ? '1' : '0');
      ASSERT_TRUE(server.CommitDeltas({{"R", {s}, true}}).ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      auto session = server.OpenSession();
      while (!stop.load()) {
        session->Refresh();
        const Database& merge = session->snapshot().db();
        const std::vector<DbSnapshot>& shards = session->shard_snapshots();
        ASSERT_EQ(shards.size(), 4u);
        for (const auto& [name, rel] : merge.relations()) {
          size_t total = 0;
          for (const DbSnapshot& snap : shards) {
            const Relation* part = snap.db().Find(name);
            ASSERT_NE(part, nullptr);
            total += part->tuples().size();
          }
          ASSERT_EQ(total, rel.tuples().size()) << name;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
}

}  // namespace
}  // namespace strq
