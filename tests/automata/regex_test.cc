#include "automata/regex.h"

#include <gtest/gtest.h>

#include "base/string_ops.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();
const Alphabet kAbc = Alphabet::Abc();

bool Matches(const std::string& pattern, const std::string& text,
             const Alphabet& alphabet) {
  Result<Dfa> dfa = CompileRegex(pattern, alphabet);
  EXPECT_TRUE(dfa.ok()) << pattern << ": " << dfa.status();
  return dfa->AcceptsString(alphabet, text);
}

TEST(RegexTest, Literals) {
  EXPECT_TRUE(Matches("01", "01", kBin));
  EXPECT_FALSE(Matches("01", "0", kBin));
  EXPECT_FALSE(Matches("01", "011", kBin));
  EXPECT_TRUE(Matches("", "", kBin));
  EXPECT_FALSE(Matches("", "0", kBin));
}

TEST(RegexTest, UnionConcatStar) {
  EXPECT_TRUE(Matches("(0|1)*", "", kBin));
  EXPECT_TRUE(Matches("(0|1)*", "0101", kBin));
  EXPECT_TRUE(Matches("0*1", "1", kBin));
  EXPECT_TRUE(Matches("0*1", "0001", kBin));
  EXPECT_FALSE(Matches("0*1", "0010", kBin));
  EXPECT_TRUE(Matches("a|bc", "a", kAbc));
  EXPECT_TRUE(Matches("a|bc", "bc", kAbc));
  EXPECT_FALSE(Matches("a|bc", "b", kAbc));
}

TEST(RegexTest, PlusOptional) {
  EXPECT_FALSE(Matches("0+", "", kBin));
  EXPECT_TRUE(Matches("0+", "000", kBin));
  EXPECT_TRUE(Matches("01?", "0", kBin));
  EXPECT_TRUE(Matches("01?", "01", kBin));
  EXPECT_FALSE(Matches("01?", "011", kBin));
}

TEST(RegexTest, AnyChar) {
  EXPECT_TRUE(Matches(".", "a", kAbc));
  EXPECT_TRUE(Matches(".", "c", kAbc));
  EXPECT_FALSE(Matches(".", "", kAbc));
  EXPECT_TRUE(Matches("a.c", "abc", kAbc));
  EXPECT_TRUE(Matches("a.c", "aac", kAbc));
}

TEST(RegexTest, CharClass) {
  EXPECT_TRUE(Matches("[ab]", "a", kAbc));
  EXPECT_TRUE(Matches("[ab]", "b", kAbc));
  EXPECT_FALSE(Matches("[ab]", "c", kAbc));
  EXPECT_TRUE(Matches("[^ab]", "c", kAbc));
  EXPECT_FALSE(Matches("[^ab]", "a", kAbc));
  EXPECT_TRUE(Matches("[a-c]*", "abccba", kAbc));
}

TEST(RegexTest, Escapes) {
  // Escaped metacharacters are literals; '+' is not in the alphabet so a
  // pattern using it should fail to compile, but escaping works on symbols.
  EXPECT_TRUE(Matches("\\a", "a", kAbc));
  Result<Dfa> bad = CompileRegex("\\+", kAbc);
  EXPECT_FALSE(bad.ok());  // '+' not in alphabet
}

TEST(RegexTest, ParseErrors) {
  EXPECT_FALSE(ParseRegex("(01").ok());
  EXPECT_FALSE(ParseRegex("01)").ok());
  EXPECT_FALSE(ParseRegex("*01").ok());
  EXPECT_FALSE(ParseRegex("[ab").ok());
  EXPECT_FALSE(ParseRegex("a\\").ok());
  EXPECT_TRUE(ParseRegex("()").ok());
}

TEST(RegexTest, RegexToStringRoundTrips) {
  for (const std::string& pattern :
       {"(0|1)*", "0*1", "0+1?", "(01|10)*", "."}) {
    Result<RegexPtr> rx = ParseRegex(pattern);
    ASSERT_TRUE(rx.ok()) << pattern;
    std::string printed = RegexToString(*rx);
    Result<Dfa> d1 = CompileRegex(pattern, kBin);
    Result<Dfa> d2 = CompileRegex(printed, kBin);
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE(d2.ok()) << printed;
    for (const std::string& s : AllStringsUpToLength("01", 5)) {
      EXPECT_EQ(d1->AcceptsString(kBin, s), d2->AcceptsString(kBin, s))
          << pattern << " vs " << printed << " on " << s;
    }
  }
}

TEST(RegexTest, SimilarWildcards) {
  // SQL SIMILAR: '%' = any string, '_' = any char, regex operators live.
  Result<Dfa> d = CompileSimilar("%11%", kBin);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->AcceptsString(kBin, "011"));
  EXPECT_TRUE(d->AcceptsString(kBin, "1101"));
  EXPECT_FALSE(d->AcceptsString(kBin, "0101"));

  Result<Dfa> alt = CompileSimilar("0_|1%", kBin);
  ASSERT_TRUE(alt.ok());
  EXPECT_TRUE(alt->AcceptsString(kBin, "00"));
  EXPECT_TRUE(alt->AcceptsString(kBin, "01"));
  EXPECT_TRUE(alt->AcceptsString(kBin, "1"));
  EXPECT_TRUE(alt->AcceptsString(kBin, "1111"));
  EXPECT_FALSE(alt->AcceptsString(kBin, "0"));
}

TEST(RegexTest, ClassicModeTreatsPercentAsLiteral) {
  // '%' is not in the alphabet, so classic compilation fails — confirming it
  // is treated as a literal rather than a wildcard.
  EXPECT_FALSE(CompileRegex("%1", kBin).ok());
  EXPECT_TRUE(CompileSimilar("%1", kBin).ok());
}

TEST(RegexTest, RxStringBuilder) {
  RegexPtr rx = RxString("abc");
  Result<Nfa> nfa = RegexToNfa(rx, kAbc);
  ASSERT_TRUE(nfa.ok());
  Result<std::vector<Symbol>> w = kAbc.Encode("abc");
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(nfa->Accepts(*w));
  Result<std::vector<Symbol>> w2 = kAbc.Encode("ab");
  ASSERT_TRUE(w2.ok());
  EXPECT_FALSE(nfa->Accepts(*w2));
}

// Differential test: random regex-ish patterns vs brute-force matching via
// enumeration is covered in ops_test; here check a curated battery against
// hand-computed membership.
struct RegexCase {
  const char* pattern;
  const char* text;
  bool expected;
};

class RegexBatteryTest : public ::testing::TestWithParam<RegexCase> {};

TEST_P(RegexBatteryTest, Matches) {
  const RegexCase& c = GetParam();
  EXPECT_EQ(Matches(c.pattern, c.text, kBin), c.expected)
      << c.pattern << " on " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Battery, RegexBatteryTest,
    ::testing::Values(
        RegexCase{"(00)*", "0000", true}, RegexCase{"(00)*", "000", false},
        RegexCase{"(0|1)(0|1)", "10", true},
        RegexCase{"((0|1)(0|1))*", "1010", true},
        RegexCase{"((0|1)(0|1))*", "101", false},
        RegexCase{"1*01*01*", "010", true},
        RegexCase{"1*01*01*", "0110", true},
        RegexCase{"1*01*01*", "011", false},
        RegexCase{"0*(10+)*1?", "00101", true},
        RegexCase{"0*(10+)*1?", "0011", false},
        RegexCase{"0*(10+)*1?", "0100101", true},
        RegexCase{"(01|10)+", "0110", true},
        RegexCase{"(01|10)+", "0", false}));

}  // namespace
}  // namespace strq
