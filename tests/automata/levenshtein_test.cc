#include "automata/levenshtein.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/alphabet.h"

namespace strq {
namespace {

// All binary strings of length <= max_len, in generation order.
std::vector<std::string> AllStrings(int max_len) {
  std::vector<std::string> out = {""};
  size_t lo = 0;
  for (int len = 1; len <= max_len; ++len) {
    size_t hi = out.size();
    for (size_t i = lo; i < hi; ++i) {
      out.push_back(out[i] + "0");
      out.push_back(out[i] + "1");
    }
    lo = hi;
  }
  return out;
}

TEST(WithinEditDistanceTest, KnownDistances) {
  EXPECT_TRUE(WithinEditDistance("", "", 0));
  EXPECT_TRUE(WithinEditDistance("01", "01", 0));
  EXPECT_FALSE(WithinEditDistance("01", "10", 0));
  EXPECT_TRUE(WithinEditDistance("01", "10", 2));   // two substitutions
  EXPECT_TRUE(WithinEditDistance("01", "1", 1));    // one deletion
  EXPECT_TRUE(WithinEditDistance("01", "011", 1));  // one insertion
  EXPECT_FALSE(WithinEditDistance("0000", "1111", 3));
  EXPECT_TRUE(WithinEditDistance("0000", "1111", 4));
  // Distance is symmetric.
  EXPECT_EQ(WithinEditDistance("0101", "11", 2),
            WithinEditDistance("11", "0101", 2));
}

TEST(WithinEditDistanceTest, BandedCutoffIsExact) {
  // The band only prunes: verdicts at budget k agree with the classic full
  // DP (spot-checked against budget k+1 monotonicity).
  for (const char* a : {"", "0", "01", "0110", "111000"}) {
    for (const char* b : {"", "1", "10", "0110", "000111"}) {
      for (int k = 0; k <= 4; ++k) {
        if (WithinEditDistance(a, b, k)) {
          EXPECT_TRUE(WithinEditDistance(a, b, k + 1))
              << a << " ~" << k << " " << b;
        }
      }
    }
  }
}

TEST(LevenshteinDfaTest, AgreesWithDynamicProgram) {
  Alphabet alphabet = Alphabet::Binary();
  const std::vector<std::string> universe = AllStrings(6);
  for (const std::string& word : {std::string("0101"), std::string("11"),
                                  std::string("")}) {
    for (int k = 0; k <= 2; ++k) {
      Result<Dfa> dfa = LevenshteinDfa(alphabet, word, k);
      ASSERT_TRUE(dfa.ok()) << dfa.status();
      for (const std::string& v : universe) {
        EXPECT_EQ(dfa->AcceptsString(alphabet, v),
                  WithinEditDistance(v, word, k))
            << "word=" << word << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(LevenshteinDfaTest, NeighborhoodIsFinite) {
  // Bounded-edit-distance languages are finite (hence star-free, hence
  // inside fragment S): the DFA must reject everything long enough.
  Alphabet alphabet = Alphabet::Binary();
  Result<Dfa> dfa = LevenshteinDfa(alphabet, "010", 1);
  ASSERT_TRUE(dfa.ok()) << dfa.status();
  for (const std::string& v : AllStrings(7)) {
    if (v.size() >= 5) {
      EXPECT_FALSE(dfa->AcceptsString(alphabet, v)) << v;
    }
  }
}

TEST(LevenshteinDfaTest, ZeroBudgetIsExactMatch) {
  Alphabet alphabet = Alphabet::Binary();
  Result<Dfa> dfa = LevenshteinDfa(alphabet, "0110", 0);
  ASSERT_TRUE(dfa.ok()) << dfa.status();
  for (const std::string& v : AllStrings(5)) {
    EXPECT_EQ(dfa->AcceptsString(alphabet, v), v == "0110") << v;
  }
}

TEST(SparseLevenshteinTest, StatesStaySparse) {
  // The antichain representation never holds more than word_size+1
  // positions regardless of how many NFA states a subset construction
  // would track.
  Alphabet alphabet = Alphabet::Binary();
  std::vector<Symbol> word;
  for (char c : std::string("010101")) {
    word.push_back(*alphabet.SymbolOf(c));
  }
  SparseLevenshtein nfa(word, 2);
  SparseLevenshtein::State state = nfa.Start();
  for (int step = 0; step < 10; ++step) {
    state = nfa.Step(state, static_cast<Symbol>(step % 2));
    EXPECT_LE(state.size(), static_cast<size_t>(nfa.word_size() + 1));
  }
}

}  // namespace
}  // namespace strq
