#include "automata/dfa.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "base/rng.h"
#include "base/string_ops.h"

namespace strq {
namespace {

// DFA over {0,1} accepting strings with an even number of 1s.
Dfa EvenOnes() {
  Result<Dfa> d = Dfa::Create(2, 0, {{0, 1}, {1, 0}}, {true, false});
  return *std::move(d);
}

std::vector<Symbol> Enc(const std::string& s) {
  Result<std::vector<Symbol>> r = Alphabet::Binary().Encode(s);
  return *std::move(r);
}

TEST(DfaTest, CreateValidation) {
  EXPECT_FALSE(Dfa::Create(2, 0, {}, {}).ok());                   // no states
  EXPECT_FALSE(Dfa::Create(0, 0, {{}}, {true}).ok());             // no symbols
  EXPECT_FALSE(Dfa::Create(2, 5, {{0, 0}}, {true}).ok());         // bad start
  EXPECT_FALSE(Dfa::Create(2, 0, {{0}}, {true}).ok());            // short row
  EXPECT_FALSE(Dfa::Create(2, 0, {{0, 7}}, {true}).ok());         // bad target
  EXPECT_FALSE(Dfa::Create(2, 0, {{0, 0}}, {true, false}).ok());  // acc size
  EXPECT_TRUE(Dfa::Create(2, 0, {{0, 0}}, {true}).ok());
}

TEST(DfaTest, AcceptsRuns) {
  Dfa d = EvenOnes();
  EXPECT_TRUE(d.Accepts(Enc("")));
  EXPECT_TRUE(d.Accepts(Enc("11")));
  EXPECT_TRUE(d.Accepts(Enc("0110")));
  EXPECT_FALSE(d.Accepts(Enc("1")));
  EXPECT_FALSE(d.Accepts(Enc("0111")));
}

TEST(DfaTest, AcceptsString) {
  Dfa d = EvenOnes();
  EXPECT_TRUE(d.AcceptsString(Alphabet::Binary(), "0110"));
  EXPECT_FALSE(d.AcceptsString(Alphabet::Binary(), "1"));
  // Foreign characters never match.
  EXPECT_FALSE(d.AcceptsString(Alphabet::Binary(), "012"));
}

TEST(DfaTest, EmptyAndUniversal) {
  EXPECT_TRUE(Dfa::EmptyLanguage(2).IsEmpty());
  EXPECT_FALSE(Dfa::EmptyLanguage(2).IsUniversal());
  EXPECT_TRUE(Dfa::AllStrings(2).IsUniversal());
  EXPECT_FALSE(Dfa::AllStrings(2).IsEmpty());
  EXPECT_FALSE(EvenOnes().IsEmpty());
  EXPECT_FALSE(EvenOnes().IsUniversal());
}

TEST(DfaTest, SingleString) {
  Dfa d = Dfa::SingleString(2, Enc("101"));
  EXPECT_TRUE(d.Accepts(Enc("101")));
  EXPECT_FALSE(d.Accepts(Enc("10")));
  EXPECT_FALSE(d.Accepts(Enc("1011")));
  EXPECT_FALSE(d.Accepts(Enc("")));
  EXPECT_TRUE(d.IsFinite());
  EXPECT_EQ(d.CountUpToLength(5), 1u);
}

TEST(DfaTest, SingleEmptyString) {
  Dfa d = Dfa::SingleString(2, {});
  EXPECT_TRUE(d.Accepts({}));
  EXPECT_FALSE(d.Accepts(Enc("0")));
  EXPECT_TRUE(d.IsFinite());
}

TEST(DfaTest, Finiteness) {
  EXPECT_TRUE(Dfa::EmptyLanguage(2).IsFinite());
  EXPECT_FALSE(Dfa::AllStrings(2).IsFinite());
  EXPECT_FALSE(EvenOnes().IsFinite());
}

TEST(DfaTest, FinitenessIgnoresUselessCycles) {
  // State 1 is a cycle but unreachable-from-start accepting path only via
  // state 2 (no cycle). Language = {"1"}.
  // 0 --1--> 2(acc), 0 --0--> 1, 1 --*--> 1 (cycle, not co-reachable),
  // 2 --*--> 3 sink.
  Result<Dfa> d = Dfa::Create(
      2, 0, {{1, 2}, {1, 1}, {3, 3}, {3, 3}}, {false, false, true, false});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsFinite());
  EXPECT_EQ(d->CountUpToLength(4), 1u);
}

TEST(DfaTest, CountLength) {
  Dfa d = EvenOnes();
  // Strings of length 2 with even # of 1s: 00, 11 -> 2.
  EXPECT_EQ(d.CountLength(2), 2u);
  // Length 3: 000, 011, 101, 110 -> 4.
  EXPECT_EQ(d.CountLength(3), 4u);
  EXPECT_EQ(d.CountLength(0), 1u);  // ε
  EXPECT_EQ(Dfa::AllStrings(2).CountUpToLength(3), 1u + 2 + 4 + 8);
}

TEST(DfaTest, EnumerateShortlex) {
  Dfa d = EvenOnes();
  std::vector<std::vector<Symbol>> words = d.Enumerate(2, 100);
  // Even number of 1s, length <= 2, in shortlex: ε, 0, 00, 11.
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], Enc(""));
  EXPECT_EQ(words[1], Enc("0"));
  EXPECT_EQ(words[2], Enc("00"));
  EXPECT_EQ(words[3], Enc("11"));
}

TEST(DfaTest, EnumerateRespectsCountLimit) {
  std::vector<std::vector<Symbol>> words = Dfa::AllStrings(2).Enumerate(10, 5);
  EXPECT_EQ(words.size(), 5u);
}

TEST(DfaTest, ShortestAccepted) {
  Dfa d = Dfa::SingleString(2, Enc("110"));
  auto w = d.ShortestAccepted();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, Enc("110"));
  EXPECT_FALSE(Dfa::EmptyLanguage(2).ShortestAccepted().has_value());
}

TEST(DfaTest, MaxAcceptedLength) {
  EXPECT_EQ(Dfa::SingleString(2, Enc("110")).MaxAcceptedLength(),
            std::optional<int>(3));
  EXPECT_EQ(Dfa::EmptyLanguage(2).MaxAcceptedLength(), std::optional<int>(-1));
  EXPECT_FALSE(Dfa::AllStrings(2).MaxAcceptedLength().has_value());
}

TEST(DfaTest, Complement) {
  Dfa d = EvenOnes().Complemented();
  EXPECT_FALSE(d.Accepts(Enc("")));
  EXPECT_TRUE(d.Accepts(Enc("1")));
  EXPECT_TRUE(d.Accepts(Enc("100")));
}

TEST(DfaTest, MinimizePreservesLanguage) {
  // Build a redundant automaton for "ends with 1": several duplicate states.
  Result<Dfa> big = Dfa::Create(
      2, 0,
      {{1, 2}, {1, 2}, {3, 4}, {1, 2}, {3, 4}},
      {false, false, true, false, true});
  ASSERT_TRUE(big.ok());
  Dfa min = big->Minimized();
  EXPECT_LE(min.num_states(), 2);
  for (const std::string& s : AllStringsUpToLength("01", 6)) {
    EXPECT_EQ(min.AcceptsString(Alphabet::Binary(), s),
              big->AcceptsString(Alphabet::Binary(), s))
        << s;
  }
}

TEST(DfaTest, MinimizeDropsUnreachable) {
  // State 2 unreachable.
  Result<Dfa> d =
      Dfa::Create(2, 0, {{0, 1}, {1, 0}, {2, 2}}, {true, false, true});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Minimized().num_states(), 2);
}

class DfaLengthCountTest : public ::testing::TestWithParam<int> {};

TEST_P(DfaLengthCountTest, EvenOnesCountMatchesBruteForce) {
  int n = GetParam();
  Dfa d = EvenOnes();
  uint64_t brute = 0;
  for (const std::string& s : AllStringsOfLength("01", n)) {
    size_t ones = 0;
    for (char c : s) ones += c == '1';
    if (ones % 2 == 0) ++brute;
  }
  EXPECT_EQ(d.CountLength(n), brute);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DfaLengthCountTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Hopcroft vs Moore differential minimization
// ---------------------------------------------------------------------------

// Random complete DFA with the given shape. Acceptance probability is kept
// away from 0/1 so both all-rejecting and richly-partitioned automata occur
// across the corpus (the seeds also cover the degenerate cases directly).
Dfa RandomDfa(Rng& rng, int alphabet_size, int num_states) {
  std::vector<int> next(static_cast<size_t>(num_states) * alphabet_size);
  for (int& t : next) t = rng.NextInt(0, num_states - 1);
  std::vector<bool> accepting(num_states);
  for (int q = 0; q < num_states; ++q) accepting[q] = rng.NextInt(0, 3) == 0;
  Result<Dfa> d = Dfa::CreateFlat(alphabet_size, num_states,
                                  rng.NextInt(0, num_states - 1),
                                  std::move(next), std::move(accepting));
  return *std::move(d);
}

TEST(DfaMinimizeDifferentialTest, HopcroftMatchesMooreOnRandomCorpus) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    int alphabet_size = rng.NextInt(1, 3);
    int num_states = rng.NextInt(1, 24);
    Dfa d = RandomDfa(rng, alphabet_size, num_states);
    Dfa fast = d.Minimized();
    Dfa slow = d.MinimizedMoore();
    // Both produce the canonical numbering, so the results must be
    // bit-identical — not merely equivalent.
    ASSERT_TRUE(fast.StructurallyEqual(slow))
        << "trial " << trial << ": Hopcroft " << fast.num_states()
        << " states vs Moore " << slow.num_states();
    ASSERT_EQ(fast.StructuralHash(), slow.StructuralHash());
    // And the minimized automaton accepts the same language.
    Result<bool> same = Equivalent(d, fast);
    ASSERT_TRUE(same.ok());
    ASSERT_TRUE(*same) << "trial " << trial;
  }
}

TEST(DfaMinimizeDifferentialTest, MinimizationIsIdempotent) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Dfa d = RandomDfa(rng, 2, rng.NextInt(1, 16));
    Dfa once = d.Minimized();
    Dfa twice = once.Minimized();
    ASSERT_TRUE(once.StructurallyEqual(twice)) << "trial " << trial;
  }
}

TEST(DfaMinimizeDifferentialTest, DegenerateLanguages) {
  for (int k = 1; k <= 3; ++k) {
    Dfa empty = Dfa::EmptyLanguage(k);
    Dfa all = Dfa::AllStrings(k);
    EXPECT_TRUE(empty.Minimized().StructurallyEqual(empty.MinimizedMoore()));
    EXPECT_TRUE(all.Minimized().StructurallyEqual(all.MinimizedMoore()));
    EXPECT_EQ(empty.Minimized().num_states(), 1);
    EXPECT_EQ(all.Minimized().num_states(), 1);
  }
}

TEST(DfaClassTest, KnownPartition) {
  // Over {0,1,2,3}: letters 0 and 2 share a column, letters 1 and 3 share a
  // column, the two columns differ. Coarsest partition: {0,2} and {1,3}.
  Result<Dfa> d = Dfa::Create(4, 0, {{0, 1, 0, 1}, {1, 0, 1, 0}},
                              {true, false});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_classes(), 2);
  EXPECT_EQ(d->LetterClass(0), 0);
  EXPECT_EQ(d->LetterClass(1), 1);
  EXPECT_EQ(d->LetterClass(2), 0);
  EXPECT_EQ(d->LetterClass(3), 1);
  // Representatives are the smallest member letters, increasing by class id.
  EXPECT_EQ(d->ClassRep(0), 0);
  EXPECT_EQ(d->ClassRep(1), 1);
  EXPECT_EQ(d->NextByClass(0, 0), 0);
  EXPECT_EQ(d->NextByClass(0, 1), 1);
  // Dense-equivalent semantics are preserved through the condensed table.
  EXPECT_EQ(d->NumTransitions(), 8);
  // Exact byte accounting: condensed table (2x2) + letter map (4) + reps (2).
  EXPECT_EQ(d->TableBytesCondensed(),
            static_cast<int64_t>(8 * sizeof(int) + 2 * sizeof(Symbol)));
  EXPECT_EQ(d->TableBytesDenseEquiv(),
            static_cast<int64_t>(8 * sizeof(int)));
}

TEST(DfaClassTest, TableBytesShrinkOnceStatesAmortizeTheLetterMap) {
  // 12 states over 6 letters that collapse into 2 classes: condensed table
  // 12x2 + map 6 + reps 2 beats the dense 12x6 comfortably.
  int n = 12;
  std::vector<int> next(static_cast<size_t>(n) * 6);
  for (int q = 0; q < n; ++q) {
    for (int s = 0; s < 6; ++s) {
      next[static_cast<size_t>(q) * 6 + s] =
          (s % 2 == 0) ? (q + 1) % n : q;
    }
  }
  std::vector<bool> accepting(n, false);
  accepting[0] = true;
  Result<Dfa> d = Dfa::CreateFlat(6, n, 0, std::move(next),
                                  std::move(accepting));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_classes(), 2);
  EXPECT_LT(d->TableBytesCondensed(), d->TableBytesDenseEquiv());
  EXPECT_EQ(d->TableBytesDenseEquiv(),
            static_cast<int64_t>(n) * 6 * sizeof(int));
}

TEST(DfaClassTest, AllLettersEquivalentCollapseToOneClass) {
  Dfa all = Dfa::AllStrings(5);
  EXPECT_EQ(all.num_classes(), 1);
  Dfa none = Dfa::EmptyLanguage(5);
  EXPECT_EQ(none.num_classes(), 1);
  // Counting still weights by class multiplicity: 5^2 strings of length 2.
  EXPECT_EQ(all.CountLength(2), 25u);
  EXPECT_EQ(none.CountLength(2), 0u);
}

// CreateCondensed accepts any *valid* hint partition — not necessarily
// coarsest, not necessarily canonically numbered — and must coarsen and
// renumber to the same canonical condensed form the dense constructor
// computes. The class count is therefore invariant under renumbering of the
// hint.
TEST(DfaClassTest, CreateCondensedCoarsensAndRenumbersCanonically) {
  // Dense reference: the KnownPartition automaton.
  Result<Dfa> dense = Dfa::Create(4, 0, {{0, 1, 0, 1}, {1, 0, 1, 0}},
                                  {true, false});
  ASSERT_TRUE(dense.ok());
  // Hint A: identity (valid, maximally fine, scrambles nothing).
  Result<Dfa> fine = Dfa::CreateCondensed(
      4, 2, 0, {0, 1, 2, 3}, 4, {0, 1, 0, 1, 1, 0, 1, 0}, {true, false});
  ASSERT_TRUE(fine.ok());
  // Hint B: the coarsest partition but with inverted class numbering
  // ({1,3} first); the constructor must renumber by first letter occurrence.
  Result<Dfa> inverted = Dfa::CreateCondensed(4, 2, 0, {1, 0, 1, 0}, 2,
                                              {1, 0, 0, 1}, {true, false});
  ASSERT_TRUE(inverted.ok());
  // Hint C: numbering with a gap (classes 0 and 2 of 3; class 1 has no
  // letters and must be dropped — its column still needs in-range targets).
  Result<Dfa> gappy = Dfa::CreateCondensed(4, 2, 0, {0, 2, 0, 2}, 3,
                                           {0, 0, 1, 1, 0, 0}, {true, false});
  ASSERT_TRUE(gappy.ok());
  for (const Dfa* d : {&*fine, &*inverted, &*gappy}) {
    EXPECT_EQ(d->num_classes(), 2);
    EXPECT_TRUE(d->StructurallyEqual(*dense));
    EXPECT_EQ(d->StructuralHash(), dense->StructuralHash());
  }
}

TEST(DfaClassTest, CreateCondensedValidation) {
  // Letter map entry out of the hint range.
  EXPECT_FALSE(
      Dfa::CreateCondensed(2, 1, 0, {0, 5}, 2, {0, 0}, {true}).ok());
  // Condensed row width must be num_hint_classes.
  EXPECT_FALSE(
      Dfa::CreateCondensed(2, 1, 0, {0, 1}, 2, {0}, {true}).ok());
  // Target out of range.
  EXPECT_FALSE(
      Dfa::CreateCondensed(2, 1, 0, {0, 1}, 2, {0, 7}, {true}).ok());
  EXPECT_TRUE(
      Dfa::CreateCondensed(2, 1, 0, {0, 1}, 2, {0, 0}, {true}).ok());
}

// The partition every constructor computes must be exactly the coarsest one:
// Next agrees with NextByClass through the letter map, and any two distinct
// classes are distinguished by some state.
TEST(DfaClassTest, PartitionIsCoarsestOnRandomCorpus) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    // Duplicate columns by construction: k letters drawn from kb <= k
    // distinct base columns, so nontrivial classes are guaranteed.
    int n = rng.NextInt(1, 10);
    int kb = rng.NextInt(1, 3);
    int k = rng.NextInt(kb, 6);
    std::vector<std::vector<int>> base(kb, std::vector<int>(n));
    for (auto& col : base) {
      for (int& t : col) t = rng.NextInt(0, n - 1);
    }
    std::vector<int> next(static_cast<size_t>(n) * k);
    for (int s = 0; s < k; ++s) {
      const std::vector<int>& col = base[rng.NextInt(0, kb - 1)];
      for (int q = 0; q < n; ++q) next[static_cast<size_t>(q) * k + s] = col[q];
    }
    std::vector<bool> accepting(n);
    for (int q = 0; q < n; ++q) accepting[q] = rng.NextBool();
    Result<Dfa> d = Dfa::CreateFlat(k, n, rng.NextInt(0, n - 1),
                                    std::move(next), std::move(accepting));
    ASSERT_TRUE(d.ok());
    ASSERT_LE(d->num_classes(), kb);
    int prev_rep = -1;
    for (int c = 0; c < d->num_classes(); ++c) {
      EXPECT_GT(d->ClassRep(c), prev_rep);
      prev_rep = d->ClassRep(c);
      EXPECT_EQ(d->LetterClass(d->ClassRep(c)), c);
    }
    for (int q = 0; q < d->num_states(); ++q) {
      for (int s = 0; s < k; ++s) {
        Symbol sym = static_cast<Symbol>(s);
        ASSERT_EQ(d->Next(q, sym), d->NextByClass(q, d->LetterClass(sym)));
        ASSERT_EQ(d->Next(q, sym), d->Next(q, d->ClassRep(d->LetterClass(sym))));
      }
    }
    // Coarsest: distinct classes differ somewhere.
    for (int c1 = 0; c1 < d->num_classes(); ++c1) {
      for (int c2 = c1 + 1; c2 < d->num_classes(); ++c2) {
        bool differ = false;
        for (int q = 0; q < d->num_states() && !differ; ++q) {
          differ = d->NextByClass(q, c1) != d->NextByClass(q, c2);
        }
        EXPECT_TRUE(differ) << "classes " << c1 << " and " << c2
                            << " not distinguished at trial " << trial;
      }
    }
  }
}

// Minimization under the dense letter-indexed kernel and the condensed
// class-indexed kernel must produce bit-identical canonical automata.
TEST(DfaClassTest, MinimizeDifferentialCondensedVsDense) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    Dfa d = RandomDfa(rng, rng.NextInt(1, 4), rng.NextInt(1, 20));
    Dfa condensed = [&] {
      ScopedClassKernel kernel(ClassKernel::kCondensed);
      return d.Minimized();
    }();
    Dfa dense = [&] {
      ScopedClassKernel kernel(ClassKernel::kDense);
      return d.Minimized();
    }();
    ASSERT_TRUE(condensed.StructurallyEqual(dense)) << "trial " << trial;
    ASSERT_EQ(condensed.StructuralHash(), dense.StructuralHash());
    EXPECT_EQ(condensed.num_classes(), dense.num_classes());
  }
}

TEST(DfaMinimizeDifferentialTest, EquivalentDfasMinimizeIdentically) {
  // Two structurally different automata for the same language must collapse
  // to the same canonical representative (the property interning rests on).
  Dfa even = EvenOnes();
  // Redundant duplicate-state variant of EvenOnes.
  Result<Dfa> redundant = Dfa::Create(
      2, 0, {{2, 1}, {1, 0}, {0, 3}, {3, 2}}, {true, false, true, false});
  ASSERT_TRUE(redundant.ok());
  Result<bool> eq = Equivalent(even, *redundant);
  ASSERT_TRUE(eq.ok());
  ASSERT_TRUE(*eq);
  EXPECT_TRUE(even.Minimized().StructurallyEqual(redundant->Minimized()));
}

}  // namespace
}  // namespace strq
