#include "automata/dfa.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "base/rng.h"
#include "base/string_ops.h"

namespace strq {
namespace {

// DFA over {0,1} accepting strings with an even number of 1s.
Dfa EvenOnes() {
  Result<Dfa> d = Dfa::Create(2, 0, {{0, 1}, {1, 0}}, {true, false});
  return *std::move(d);
}

std::vector<Symbol> Enc(const std::string& s) {
  Result<std::vector<Symbol>> r = Alphabet::Binary().Encode(s);
  return *std::move(r);
}

TEST(DfaTest, CreateValidation) {
  EXPECT_FALSE(Dfa::Create(2, 0, {}, {}).ok());                   // no states
  EXPECT_FALSE(Dfa::Create(0, 0, {{}}, {true}).ok());             // no symbols
  EXPECT_FALSE(Dfa::Create(2, 5, {{0, 0}}, {true}).ok());         // bad start
  EXPECT_FALSE(Dfa::Create(2, 0, {{0}}, {true}).ok());            // short row
  EXPECT_FALSE(Dfa::Create(2, 0, {{0, 7}}, {true}).ok());         // bad target
  EXPECT_FALSE(Dfa::Create(2, 0, {{0, 0}}, {true, false}).ok());  // acc size
  EXPECT_TRUE(Dfa::Create(2, 0, {{0, 0}}, {true}).ok());
}

TEST(DfaTest, AcceptsRuns) {
  Dfa d = EvenOnes();
  EXPECT_TRUE(d.Accepts(Enc("")));
  EXPECT_TRUE(d.Accepts(Enc("11")));
  EXPECT_TRUE(d.Accepts(Enc("0110")));
  EXPECT_FALSE(d.Accepts(Enc("1")));
  EXPECT_FALSE(d.Accepts(Enc("0111")));
}

TEST(DfaTest, AcceptsString) {
  Dfa d = EvenOnes();
  EXPECT_TRUE(d.AcceptsString(Alphabet::Binary(), "0110"));
  EXPECT_FALSE(d.AcceptsString(Alphabet::Binary(), "1"));
  // Foreign characters never match.
  EXPECT_FALSE(d.AcceptsString(Alphabet::Binary(), "012"));
}

TEST(DfaTest, EmptyAndUniversal) {
  EXPECT_TRUE(Dfa::EmptyLanguage(2).IsEmpty());
  EXPECT_FALSE(Dfa::EmptyLanguage(2).IsUniversal());
  EXPECT_TRUE(Dfa::AllStrings(2).IsUniversal());
  EXPECT_FALSE(Dfa::AllStrings(2).IsEmpty());
  EXPECT_FALSE(EvenOnes().IsEmpty());
  EXPECT_FALSE(EvenOnes().IsUniversal());
}

TEST(DfaTest, SingleString) {
  Dfa d = Dfa::SingleString(2, Enc("101"));
  EXPECT_TRUE(d.Accepts(Enc("101")));
  EXPECT_FALSE(d.Accepts(Enc("10")));
  EXPECT_FALSE(d.Accepts(Enc("1011")));
  EXPECT_FALSE(d.Accepts(Enc("")));
  EXPECT_TRUE(d.IsFinite());
  EXPECT_EQ(d.CountUpToLength(5), 1u);
}

TEST(DfaTest, SingleEmptyString) {
  Dfa d = Dfa::SingleString(2, {});
  EXPECT_TRUE(d.Accepts({}));
  EXPECT_FALSE(d.Accepts(Enc("0")));
  EXPECT_TRUE(d.IsFinite());
}

TEST(DfaTest, Finiteness) {
  EXPECT_TRUE(Dfa::EmptyLanguage(2).IsFinite());
  EXPECT_FALSE(Dfa::AllStrings(2).IsFinite());
  EXPECT_FALSE(EvenOnes().IsFinite());
}

TEST(DfaTest, FinitenessIgnoresUselessCycles) {
  // State 1 is a cycle but unreachable-from-start accepting path only via
  // state 2 (no cycle). Language = {"1"}.
  // 0 --1--> 2(acc), 0 --0--> 1, 1 --*--> 1 (cycle, not co-reachable),
  // 2 --*--> 3 sink.
  Result<Dfa> d = Dfa::Create(
      2, 0, {{1, 2}, {1, 1}, {3, 3}, {3, 3}}, {false, false, true, false});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsFinite());
  EXPECT_EQ(d->CountUpToLength(4), 1u);
}

TEST(DfaTest, CountLength) {
  Dfa d = EvenOnes();
  // Strings of length 2 with even # of 1s: 00, 11 -> 2.
  EXPECT_EQ(d.CountLength(2), 2u);
  // Length 3: 000, 011, 101, 110 -> 4.
  EXPECT_EQ(d.CountLength(3), 4u);
  EXPECT_EQ(d.CountLength(0), 1u);  // ε
  EXPECT_EQ(Dfa::AllStrings(2).CountUpToLength(3), 1u + 2 + 4 + 8);
}

TEST(DfaTest, EnumerateShortlex) {
  Dfa d = EvenOnes();
  std::vector<std::vector<Symbol>> words = d.Enumerate(2, 100);
  // Even number of 1s, length <= 2, in shortlex: ε, 0, 00, 11.
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], Enc(""));
  EXPECT_EQ(words[1], Enc("0"));
  EXPECT_EQ(words[2], Enc("00"));
  EXPECT_EQ(words[3], Enc("11"));
}

TEST(DfaTest, EnumerateRespectsCountLimit) {
  std::vector<std::vector<Symbol>> words = Dfa::AllStrings(2).Enumerate(10, 5);
  EXPECT_EQ(words.size(), 5u);
}

TEST(DfaTest, ShortestAccepted) {
  Dfa d = Dfa::SingleString(2, Enc("110"));
  auto w = d.ShortestAccepted();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, Enc("110"));
  EXPECT_FALSE(Dfa::EmptyLanguage(2).ShortestAccepted().has_value());
}

TEST(DfaTest, MaxAcceptedLength) {
  EXPECT_EQ(Dfa::SingleString(2, Enc("110")).MaxAcceptedLength(),
            std::optional<int>(3));
  EXPECT_EQ(Dfa::EmptyLanguage(2).MaxAcceptedLength(), std::optional<int>(-1));
  EXPECT_FALSE(Dfa::AllStrings(2).MaxAcceptedLength().has_value());
}

TEST(DfaTest, Complement) {
  Dfa d = EvenOnes().Complemented();
  EXPECT_FALSE(d.Accepts(Enc("")));
  EXPECT_TRUE(d.Accepts(Enc("1")));
  EXPECT_TRUE(d.Accepts(Enc("100")));
}

TEST(DfaTest, MinimizePreservesLanguage) {
  // Build a redundant automaton for "ends with 1": several duplicate states.
  Result<Dfa> big = Dfa::Create(
      2, 0,
      {{1, 2}, {1, 2}, {3, 4}, {1, 2}, {3, 4}},
      {false, false, true, false, true});
  ASSERT_TRUE(big.ok());
  Dfa min = big->Minimized();
  EXPECT_LE(min.num_states(), 2);
  for (const std::string& s : AllStringsUpToLength("01", 6)) {
    EXPECT_EQ(min.AcceptsString(Alphabet::Binary(), s),
              big->AcceptsString(Alphabet::Binary(), s))
        << s;
  }
}

TEST(DfaTest, MinimizeDropsUnreachable) {
  // State 2 unreachable.
  Result<Dfa> d =
      Dfa::Create(2, 0, {{0, 1}, {1, 0}, {2, 2}}, {true, false, true});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Minimized().num_states(), 2);
}

class DfaLengthCountTest : public ::testing::TestWithParam<int> {};

TEST_P(DfaLengthCountTest, EvenOnesCountMatchesBruteForce) {
  int n = GetParam();
  Dfa d = EvenOnes();
  uint64_t brute = 0;
  for (const std::string& s : AllStringsOfLength("01", n)) {
    size_t ones = 0;
    for (char c : s) ones += c == '1';
    if (ones % 2 == 0) ++brute;
  }
  EXPECT_EQ(d.CountLength(n), brute);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DfaLengthCountTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Hopcroft vs Moore differential minimization
// ---------------------------------------------------------------------------

// Random complete DFA with the given shape. Acceptance probability is kept
// away from 0/1 so both all-rejecting and richly-partitioned automata occur
// across the corpus (the seeds also cover the degenerate cases directly).
Dfa RandomDfa(Rng& rng, int alphabet_size, int num_states) {
  std::vector<int> next(static_cast<size_t>(num_states) * alphabet_size);
  for (int& t : next) t = rng.NextInt(0, num_states - 1);
  std::vector<bool> accepting(num_states);
  for (int q = 0; q < num_states; ++q) accepting[q] = rng.NextInt(0, 3) == 0;
  Result<Dfa> d = Dfa::CreateFlat(alphabet_size, num_states,
                                  rng.NextInt(0, num_states - 1),
                                  std::move(next), std::move(accepting));
  return *std::move(d);
}

TEST(DfaMinimizeDifferentialTest, HopcroftMatchesMooreOnRandomCorpus) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    int alphabet_size = rng.NextInt(1, 3);
    int num_states = rng.NextInt(1, 24);
    Dfa d = RandomDfa(rng, alphabet_size, num_states);
    Dfa fast = d.Minimized();
    Dfa slow = d.MinimizedMoore();
    // Both produce the canonical numbering, so the results must be
    // bit-identical — not merely equivalent.
    ASSERT_TRUE(fast.StructurallyEqual(slow))
        << "trial " << trial << ": Hopcroft " << fast.num_states()
        << " states vs Moore " << slow.num_states();
    ASSERT_EQ(fast.StructuralHash(), slow.StructuralHash());
    // And the minimized automaton accepts the same language.
    Result<bool> same = Equivalent(d, fast);
    ASSERT_TRUE(same.ok());
    ASSERT_TRUE(*same) << "trial " << trial;
  }
}

TEST(DfaMinimizeDifferentialTest, MinimizationIsIdempotent) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Dfa d = RandomDfa(rng, 2, rng.NextInt(1, 16));
    Dfa once = d.Minimized();
    Dfa twice = once.Minimized();
    ASSERT_TRUE(once.StructurallyEqual(twice)) << "trial " << trial;
  }
}

TEST(DfaMinimizeDifferentialTest, DegenerateLanguages) {
  for (int k = 1; k <= 3; ++k) {
    Dfa empty = Dfa::EmptyLanguage(k);
    Dfa all = Dfa::AllStrings(k);
    EXPECT_TRUE(empty.Minimized().StructurallyEqual(empty.MinimizedMoore()));
    EXPECT_TRUE(all.Minimized().StructurallyEqual(all.MinimizedMoore()));
    EXPECT_EQ(empty.Minimized().num_states(), 1);
    EXPECT_EQ(all.Minimized().num_states(), 1);
  }
}

TEST(DfaMinimizeDifferentialTest, EquivalentDfasMinimizeIdentically) {
  // Two structurally different automata for the same language must collapse
  // to the same canonical representative (the property interning rests on).
  Dfa even = EvenOnes();
  // Redundant duplicate-state variant of EvenOnes.
  Result<Dfa> redundant = Dfa::Create(
      2, 0, {{2, 1}, {1, 0}, {0, 3}, {3, 2}}, {true, false, true, false});
  ASSERT_TRUE(redundant.ok());
  Result<bool> eq = Equivalent(even, *redundant);
  ASSERT_TRUE(eq.ok());
  ASSERT_TRUE(*eq);
  EXPECT_TRUE(even.Minimized().StructurallyEqual(redundant->Minimized()));
}

}  // namespace
}  // namespace strq
