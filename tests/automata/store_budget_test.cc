// Budgeted binary ops and stripe-level concurrency of the AutomatonStore:
// the per-request state budget must bound the product kernel, exhausted
// verdicts must be memoized separately from real results, and canonical
// intern ids must not depend on how many threads race the store.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "automata/ops.h"
#include "automata/regex.h"
#include "automata/store.h"
#include "base/alphabet.h"
#include "base/budget.h"
#include "gtest/gtest.h"

namespace strq {
namespace {

Dfa Regex(const std::string& pattern) {
  Result<Dfa> d = CompileRegex(pattern, Alphabet::Binary());
  EXPECT_TRUE(d.ok()) << pattern << ": " << d.status().ToString();
  return *d;
}

// A pattern whose minimal DFA needs > 2^n states ((0|1)*0 then n fillers).
std::string HardPattern(int n) {
  std::string p = "(0|1)*0";
  for (int i = 0; i < n; ++i) p += "(0|1)";
  return p;
}

TEST(StoreBudgetTest, ExplicitMaxStatesBoundsTheProduct) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex(HardPattern(6)));
  DfaRef b = store.Intern(Regex("(0|1)*1(0|1)(0|1)(0|1)(0|1)(0|1)"));
  Result<DfaRef> starved = store.Intersect(a, b, /*max_states=*/2);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
  // The full product still works afterwards: exhaustion never lands in the
  // canonical computed table.
  Result<DfaRef> full = store.Intersect(a, b);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_GT((*full)->num_states(), 2);
}

TEST(StoreBudgetTest, InstalledRequestBudgetAppliesAtDefaultArgument) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex(HardPattern(6)));
  DfaRef b = store.Intern(Regex("(0|1)(0|1)(0|1)(0|1)(0|1)(0|1)(0|1)*"));
  RequestBudget budget;
  budget.max_product_states = 2;
  {
    ScopedRequestBudget scope(&budget);
    Result<DfaRef> starved = store.Intersect(a, b);
    ASSERT_FALSE(starved.ok());
    EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
  }
  // Budget uninstalled: the same call succeeds.
  EXPECT_TRUE(store.Intersect(a, b).ok());
}

TEST(StoreBudgetTest, ExhaustedVerdictIsMemoizedPerBudget) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex(HardPattern(6)));
  DfaRef b = store.Intern(Regex("(0|1)*1"));
  ASSERT_FALSE(store.Intersect(a, b, 2).ok());
  int64_t misses_after_first = store.stats().op_misses;
  // Same doomed budget again: served off the exhausted memo, not re-run.
  ASSERT_FALSE(store.Intersect(a, b, 2).ok());
  AutomatonStore::Stats stats = store.stats();
  EXPECT_EQ(stats.op_misses, misses_after_first);
  EXPECT_GE(stats.exhausted_hits, 1);
  // A DIFFERENT budget is a different key: big enough now, it succeeds and
  // the success lands in the canonical table for everyone.
  Result<DfaRef> full = store.Intersect(a, b, 1 << 20);
  ASSERT_TRUE(full.ok());
  Result<DfaRef> unbudgeted = store.Intersect(a, b);
  ASSERT_TRUE(unbudgeted.ok());
  EXPECT_EQ(full->id(), unbudgeted->id());
}

TEST(StoreBudgetTest, MemoizedFullResultIsServedToBudgetedCallers) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex(HardPattern(5)));
  DfaRef b = store.Intern(Regex("(0|1)*1"));
  Result<DfaRef> full = store.Intersect(a, b);
  ASSERT_TRUE(full.ok());
  // The canonical result exists, so even a strangled request gets it: the
  // budget bounds work, not answers.
  Result<DfaRef> tiny = store.Intersect(a, b, 2);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->id(), full->id());
}

TEST(StoreBudgetTest, CommutativeNormalizationSharesExhaustedMemo) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex(HardPattern(6)));
  DfaRef b = store.Intern(Regex("(0|1)*1"));
  ASSERT_FALSE(store.Intersect(a, b, 2).ok());
  int64_t misses = store.stats().op_misses;
  ASSERT_FALSE(store.Intersect(b, a, 2).ok());  // swapped operands
  EXPECT_EQ(store.stats().op_misses, misses);
}

// The acceptance invariant for concurrent serving: canonical ids are a
// function of the language only, no matter how many threads race to intern
// and combine. Run the same workload through a fresh store at several
// thread counts and require (a) all threads agree on every id, and (b) the
// language→id mapping is injective, and (c) the unique table holds exactly
// the same number of entries at every thread count (no duplicate interning
// slipped through a race).
TEST(StoreBudgetTest, CanonicalIdsIndependentOfThreadCount) {
  const std::vector<std::string> patterns = {
      "(0|1)*0", "(0|1)*1", "0*",  "1*",  "(01)*",   "(10)*",
      "0(0|1)*", "1(0|1)*", "00*", "11*", "(0|1)(0|1)*"};
  std::vector<size_t> unique_sizes;
  for (int threads : {1, 4, 8}) {
    AutomatonStore store;
    // ids[i][j]: id of Intersect(patterns[i], patterns[j]) — 0 if empty-
    // product op failed (it cannot here; products are tiny).
    std::vector<std::vector<uint64_t>> ids(
        patterns.size(), std::vector<uint64_t>(patterns.size(), 0));
    std::atomic<int> disagreements{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (size_t i = 0; i < patterns.size(); ++i) {
          for (size_t j = 0; j < patterns.size(); ++j) {
            DfaRef a = store.Intern(Regex(patterns[i]));
            DfaRef b = store.Intern(Regex(patterns[j]));
            Result<DfaRef> prod = store.Intersect(a, b);
            if (!prod.ok()) {
              disagreements.fetch_add(1);
              continue;
            }
            // First writer records; later threads must agree.
            uint64_t expected = 0;
            uint64_t* slot = &ids[i][j];
            if (!__atomic_compare_exchange_n(slot, &expected, prod->id(),
                                             false, __ATOMIC_SEQ_CST,
                                             __ATOMIC_SEQ_CST) &&
                expected != prod->id()) {
              disagreements.fetch_add(1);
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(disagreements.load(), 0) << "threads=" << threads;
    unique_sizes.push_back(store.unique_size());
  }
  // Same workload, same language set: the unique table must end up the same
  // size whether built serially or raced by 8 threads.
  EXPECT_EQ(unique_sizes[0], unique_sizes[1]);
  EXPECT_EQ(unique_sizes[0], unique_sizes[2]);
}

}  // namespace
}  // namespace strq
