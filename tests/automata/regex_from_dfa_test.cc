#include "automata/regex_from_dfa.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "base/rng.h"
#include "base/string_ops.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();

// Round-trip: regex -> DFA -> regex -> DFA must preserve the language.
void CheckRoundTrip(const std::string& pattern) {
  Result<Dfa> dfa = CompileRegex(pattern, kBin);
  ASSERT_TRUE(dfa.ok()) << pattern;
  Result<RegexPtr> back = RegexFromDfa(*dfa, kBin);
  ASSERT_TRUE(back.ok()) << pattern;
  Result<Dfa> dfa2 = CompileRegex(RegexToString(*back), kBin);
  ASSERT_TRUE(dfa2.ok()) << pattern << " -> " << RegexToString(*back);
  Result<bool> eq = Equivalent(*dfa, *dfa2);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq) << pattern << " round-tripped to "
                   << RegexToString(*back);
}

class RoundTripBattery : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripBattery, PreservesLanguage) { CheckRoundTrip(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Patterns, RoundTripBattery,
    ::testing::Values("(0|1)*", "0*1", "(00)*", "1(0|1)*0", "(01|10)+",
                      "0*(10+)*1?", "()", "0", "(0|1)(0|1)(0|1)",
                      "1*01*01*"));

TEST(RegexFromDfaTest, EmptyLanguage) {
  Result<RegexPtr> rx = RegexFromDfa(Dfa::EmptyLanguage(2), kBin);
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ((*rx)->kind, RegexKind::kEmptySet);
}

TEST(RegexFromDfaTest, AllStrings) {
  Result<std::string> described = DescribeLanguage(Dfa::AllStrings(2), kBin);
  ASSERT_TRUE(described.ok());
  Result<Dfa> back = CompileRegex(*described, kBin);
  ASSERT_TRUE(back.ok()) << *described;
  EXPECT_TRUE(back->IsUniversal()) << *described;
}

TEST(RegexFromDfaTest, RandomDfasRoundTrip) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    int n = rng.NextInt(1, 5);
    std::vector<std::vector<int>> next(n, std::vector<int>(2));
    std::vector<bool> accepting(n);
    for (int q = 0; q < n; ++q) {
      next[q][0] = rng.NextInt(0, n - 1);
      next[q][1] = rng.NextInt(0, n - 1);
      accepting[q] = rng.NextBool();
    }
    Result<Dfa> dfa = Dfa::Create(2, 0, next, accepting);
    ASSERT_TRUE(dfa.ok());
    Result<RegexPtr> rx = RegexFromDfa(*dfa, kBin);
    ASSERT_TRUE(rx.ok());
    Result<Dfa> back = CompileRegex(RegexToString(*rx), kBin);
    ASSERT_TRUE(back.ok()) << RegexToString(*rx);
    Result<bool> eq = Equivalent(*dfa, *back);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << "trial " << trial << ": " << RegexToString(*rx);
  }
}

TEST(RegexFromDfaTest, DescribesInfiniteAnswerSets) {
  // The headline use: an unsafe query's infinite answers, described exactly.
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"01"}}).ok());
  AutomataEvaluator engine(&db);
  Result<FormulaPtr> q = ParseFormula("exists y. R(y) & y <= x");
  ASSERT_TRUE(q.ok());
  Result<TrackAutomaton> rel = engine.Compile(*q);
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->IsFinite());
  Result<Dfa> lang = rel->UnaryLanguage();
  ASSERT_TRUE(lang.ok());
  Result<std::string> described = DescribeLanguage(*lang, kBin);
  ASSERT_TRUE(described.ok());
  // The answer set is 01(0|1)*; check the description compiles to it.
  Result<Dfa> expected = CompileRegex("01(0|1)*", kBin);
  Result<Dfa> actual = CompileRegex(*described, kBin);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok()) << *described;
  Result<bool> eq = Equivalent(*expected, *actual);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq) << "described as: " << *described;
}

TEST(RegexFromDfaTest, UnaryLanguageRequiresArityOne) {
  Database db(Alphabet::Binary());
  AutomataEvaluator engine(&db);
  Result<FormulaPtr> q = ParseFormula("x <= y");
  ASSERT_TRUE(q.ok());
  Result<TrackAutomaton> rel = engine.Compile(*q);
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->UnaryLanguage().ok());
}

TEST(RegexFromDfaTest, UnaryLanguageMatchesMembership) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}}).ok());
  AutomataEvaluator engine(&db);
  Result<FormulaPtr> q = ParseFormula("exists y. R(y) & x <= y & last[0](x)");
  ASSERT_TRUE(q.ok());
  Result<TrackAutomaton> rel = engine.Compile(*q);
  ASSERT_TRUE(rel.ok());
  Result<Dfa> lang = rel->UnaryLanguage();
  ASSERT_TRUE(lang.ok());
  for (const std::string& s : AllStringsUpToLength("01", 4)) {
    Result<bool> in = rel->Contains({s});
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(lang->AcceptsString(kBin, s), *in) << s;
  }
}

}  // namespace
}  // namespace strq
