#include "automata/store.h"

#include <vector>

#include "automata/ops.h"
#include "automata/regex.h"
#include "base/alphabet.h"
#include "base/rng.h"
#include "gtest/gtest.h"

namespace strq {
namespace {

Dfa Regex(const std::string& pattern) {
  Result<Dfa> d = CompileRegex(pattern, Alphabet::Binary());
  EXPECT_TRUE(d.ok()) << pattern << ": " << d.status().ToString();
  return *d;
}

TEST(AutomatonStoreTest, InterningSameLanguageYieldsSameIdAndObject) {
  AutomatonStore store;
  // Two structurally different automata for the same language (0|1)*0.
  DfaRef a = store.Intern(Regex("(0|1)*0"));
  DfaRef b = store.Intern(Regex("((0|1)*0|(0|1)*0)"));
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(&*a, &*b);  // literally the same object
  EXPECT_EQ(store.unique_size(), 1u);
  AutomatonStore::Stats stats = store.stats();
  EXPECT_EQ(stats.unique_hits, 1);
  EXPECT_EQ(stats.unique_misses, 1);
}

TEST(AutomatonStoreTest, DifferentLanguagesGetDifferentIds) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex("0*"));
  DfaRef b = store.Intern(Regex("1*"));
  DfaRef c = store.Intern(Regex("(0|1)*"));
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), c.id());
  EXPECT_NE(b.id(), c.id());
  EXPECT_EQ(store.unique_size(), 3u);
}

TEST(AutomatonStoreTest, IdsAreProcessUniqueAcrossStores) {
  AutomatonStore s1;
  AutomatonStore s2;
  DfaRef a = s1.Intern(Regex("0*"));
  DfaRef b = s2.Intern(Regex("0*"));
  // Same language, but separate stores must not alias intern ids: computed
  // keys built from one store's ids would otherwise collide with the other's.
  EXPECT_NE(a.id(), b.id());
}

TEST(AutomatonStoreTest, StructuralHashAgreesOnEqualStructures) {
  Dfa a = Regex("(0|1)*01").Minimized();
  Dfa b = Regex("(0|1)*01").Minimized();
  EXPECT_TRUE(a.StructurallyEqual(b));
  EXPECT_EQ(a.StructuralHash(), b.StructuralHash());
  Dfa c = Regex("(0|1)*10").Minimized();
  EXPECT_FALSE(a.StructurallyEqual(c));
}

TEST(AutomatonStoreTest, HashCollisionsAreResolvedByFullComparison) {
  // Force many small automata through one store; even if two hashed alike,
  // the store must keep them distinct (validated via language spot checks).
  AutomatonStore store;
  Rng rng(7);
  std::vector<DfaRef> refs;
  std::vector<Dfa> originals;
  for (int i = 0; i < 40; ++i) {
    std::vector<Symbol> w;
    int len = rng.NextInt(0, 6);
    for (int j = 0; j < len; ++j) {
      w.push_back(static_cast<Symbol>(rng.NextInt(0, 1)));
    }
    Dfa d = Dfa::SingleString(2, w);
    originals.push_back(d);
    refs.push_back(store.Intern(d));
  }
  for (size_t i = 0; i < refs.size(); ++i) {
    for (size_t j = 0; j < refs.size(); ++j) {
      Result<bool> eq = Equivalent(originals[i], originals[j]);
      ASSERT_TRUE(eq.ok());
      EXPECT_EQ(refs[i].id() == refs[j].id(), *eq)
          << "intern identity must coincide with language equality";
    }
  }
}

TEST(AutomatonStoreTest, BinaryOpsAreMemoized) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex("(0|1)*0"));
  DfaRef b = store.Intern(Regex("0(0|1)*"));

  Result<DfaRef> first = store.Intersect(a, b);
  ASSERT_TRUE(first.ok());
  int64_t misses_after_first = store.stats().op_misses;

  Result<DfaRef> second = store.Intersect(a, b);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->id(), second->id());
  EXPECT_EQ(store.stats().op_misses, misses_after_first);
  EXPECT_GE(store.stats().op_hits, 1);
}

TEST(AutomatonStoreTest, CommutativeOpsShareOneEntry) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex("(0|1)*0"));
  DfaRef b = store.Intern(Regex("0(0|1)*"));
  Result<DfaRef> ab = store.Union(a, b);
  ASSERT_TRUE(ab.ok());
  int64_t misses = store.stats().op_misses;
  Result<DfaRef> ba = store.Union(b, a);  // swapped operand order
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(ab->id(), ba->id());
  EXPECT_EQ(store.stats().op_misses, misses) << "swap must hit the same key";
}

TEST(AutomatonStoreTest, ComplementIsAMemoizedInvolution) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex("(0|1)*11"));
  DfaRef not_a = store.Complemented(a);
  EXPECT_NE(a.id(), not_a.id());
  int64_t misses = store.stats().op_misses;
  // The reverse entry was primed: complementing back is a pure hit.
  DfaRef back = store.Complemented(not_a);
  EXPECT_EQ(back.id(), a.id());
  EXPECT_EQ(store.stats().op_misses, misses);
}

TEST(AutomatonStoreTest, GenericLookupMemoizeRoundTrip) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex("0*1"));
  OpKey key{AutomatonStore::kOpProject, a.id(), 0, {3, 1}};
  EXPECT_FALSE(store.Lookup(key).has_value());
  store.Memoize(key, a);
  std::optional<DfaRef> hit = store.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id(), a.id());
  // A key differing only in params is distinct.
  OpKey other{AutomatonStore::kOpProject, a.id(), 0, {3, 2}};
  EXPECT_FALSE(store.Lookup(other).has_value());
}

TEST(AutomatonStoreTest, MemoizedResultsSurviveUnrelatedActivity) {
  // Invalidation-freedom: interned handles are immutable and ids are never
  // reused, so entries stay correct no matter what is interned later.
  AutomatonStore store;
  DfaRef a = store.Intern(Regex("(0|1)*0"));
  DfaRef b = store.Intern(Regex("1(0|1)*"));
  Result<DfaRef> inter = store.Intersect(a, b);
  ASSERT_TRUE(inter.ok());
  uint64_t expected = inter->id();
  for (int i = 0; i < 10; ++i) {
    std::vector<Symbol> w(static_cast<size_t>(i), 1);
    store.Intern(Dfa::SingleString(2, w));
  }
  Result<DfaRef> again = store.Intersect(a, b);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->id(), expected);
  // Correctness spot check: 1(0|1)*0 ∩ membership.
  EXPECT_TRUE((*again)->AcceptsString(Alphabet::Binary(), "10"));
  EXPECT_FALSE((*again)->AcceptsString(Alphabet::Binary(), "01"));
}

TEST(AutomatonStoreTest, HandedOutRefsStayValidAfterClear) {
  AutomatonStore store;
  DfaRef a = store.Intern(Regex("(0|1)*0"));
  store.Clear();
  EXPECT_EQ(store.unique_size(), 0u);
  EXPECT_TRUE(a->AcceptsString(Alphabet::Binary(), "10"));
  // Re-interning after Clear issues a fresh id (never reuses a's).
  DfaRef b = store.Intern(Regex("(0|1)*0"));
  EXPECT_NE(a.id(), b.id());
}

TEST(AutomatonStoreTest, DisabledStoreIsCorrectButRemembersNothing) {
  AutomatonStore off(false);
  AutomatonStore on(true);
  DfaRef a_off = off.Intern(Regex("(0|1)*0"));
  DfaRef b_off = off.Intern(Regex("(0|1)*0"));
  EXPECT_NE(a_off.id(), b_off.id()) << "disabled store never dedups";
  EXPECT_EQ(off.unique_size(), 0u);
  EXPECT_EQ(off.stats().unique_hits, 0);

  // Same operation, both stores: identical language out.
  DfaRef c_off = off.Intern(Regex("0(0|1)*"));
  Result<DfaRef> inter_off = off.Intersect(a_off, c_off);
  ASSERT_TRUE(inter_off.ok());
  DfaRef a_on = on.Intern(Regex("(0|1)*0"));
  DfaRef c_on = on.Intern(Regex("0(0|1)*"));
  Result<DfaRef> inter_on = on.Intersect(a_on, c_on);
  ASSERT_TRUE(inter_on.ok());
  Result<bool> eq = Equivalent(**inter_off, **inter_on);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  EXPECT_EQ(off.computed_size(), 0u);
  EXPECT_EQ(off.stats().op_hits, 0);
}

TEST(AutomatonStoreTest, DefaultStoreIsSharedAndCaching) {
  const AutomatonStore& d1 = AutomatonStore::Default();
  const AutomatonStore& d2 = AutomatonStore::Default();
  EXPECT_EQ(&d1, &d2);
  EXPECT_TRUE(d1.caching_enabled());
  DfaRef a = d1.Intern(Regex("(0|1)*01110"));
  DfaRef b = d2.Intern(Regex("(0|1)*01110"));
  EXPECT_EQ(a.id(), b.id());
}

}  // namespace
}  // namespace strq
