#include "automata/ops.h"

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "base/string_ops.h"

namespace strq {
namespace {

Dfa Compile(const std::string& pattern) {
  Result<Dfa> r = CompileRegex(pattern, Alphabet::Binary());
  EXPECT_TRUE(r.ok()) << r.status();
  return *std::move(r);
}

const Alphabet kBin = Alphabet::Binary();

TEST(OpsTest, DeterminizeMatchesNfa) {
  Result<RegexPtr> rx = ParseRegex("(0|1)*11(0|1)*");
  ASSERT_TRUE(rx.ok());
  Result<Nfa> nfa = RegexToNfa(*rx, kBin);
  ASSERT_TRUE(nfa.ok());
  Result<Dfa> dfa = Determinize(*nfa);
  ASSERT_TRUE(dfa.ok());
  for (const std::string& s : AllStringsUpToLength("01", 7)) {
    Result<std::vector<Symbol>> w = kBin.Encode(s);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(nfa->Accepts(*w), dfa->Accepts(*w)) << s;
  }
}

TEST(OpsTest, DeterminizeBudget) {
  // (0|1)*1(0|1){n} needs ~2^n DFA states; a tiny budget must trip.
  Result<RegexPtr> rx = ParseRegex("(0|1)*1(0|1)(0|1)(0|1)(0|1)(0|1)(0|1)");
  ASSERT_TRUE(rx.ok());
  Result<Nfa> nfa = RegexToNfa(*rx, kBin);
  ASSERT_TRUE(nfa.ok());
  Result<Dfa> dfa = Determinize(*nfa, /*max_states=*/16);
  ASSERT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), StatusCode::kResourceExhausted);
}

TEST(OpsTest, IntersectUnionDifference) {
  Dfa starts1 = Compile("1(0|1)*");
  Dfa ends0 = Compile("(0|1)*0");
  Result<Dfa> both = Intersect(starts1, ends0);
  Result<Dfa> either = Union(starts1, ends0);
  Result<Dfa> only_starts = Difference(starts1, ends0);
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(either.ok());
  ASSERT_TRUE(only_starts.ok());
  for (const std::string& s : AllStringsUpToLength("01", 6)) {
    bool a = starts1.AcceptsString(kBin, s);
    bool b = ends0.AcceptsString(kBin, s);
    EXPECT_EQ(both->AcceptsString(kBin, s), a && b) << s;
    EXPECT_EQ(either->AcceptsString(kBin, s), a || b) << s;
    EXPECT_EQ(only_starts->AcceptsString(kBin, s), a && !b) << s;
  }
}

TEST(OpsTest, ProductRejectsAlphabetMismatch) {
  EXPECT_FALSE(Intersect(Dfa::AllStrings(2), Dfa::AllStrings(3)).ok());
}

TEST(OpsTest, Equivalence) {
  // Two different expressions for "contains 11".
  Dfa a = Compile("(0|1)*11(0|1)*");
  Dfa b = Compile("0*(10*)*110*(0|1)*");
  Result<bool> eq = Equivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  Result<bool> differs = Equivalent(a, Compile("(0|1)*"));
  ASSERT_TRUE(differs.ok());
  EXPECT_FALSE(*differs);
}

TEST(OpsTest, SubsetCheck) {
  Dfa contains11 = Compile("(0|1)*11(0|1)*");
  Dfa all = Dfa::AllStrings(2);
  Result<bool> sub = Subset(contains11, all);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(*sub);
  Result<bool> sup = Subset(all, contains11);
  ASSERT_TRUE(sup.ok());
  EXPECT_FALSE(*sup);
}

TEST(OpsTest, ReverseLanguage) {
  Dfa starts1 = Compile("1(0|1)*");
  Result<Dfa> rev = Reverse(starts1);
  ASSERT_TRUE(rev.ok());
  // Reverse of "starts with 1" is "ends with 1".
  Dfa ends1 = Compile("(0|1)*1");
  Result<bool> eq = Equivalent(*rev, ends1);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OpsTest, LeftQuotient) {
  Dfa lang = Compile("10(0|1)*");
  Dfa quot = LeftQuotient(lang, 1);  // 1^{-1}L = 0(0|1)*
  Dfa expect = Compile("0(0|1)*");
  Result<bool> eq = Equivalent(quot, expect);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OpsTest, PrependLetter) {
  Dfa lang = Compile("0(0|1)*");
  Result<Dfa> pre = PrependLetter(lang, 1);
  ASSERT_TRUE(pre.ok());
  Dfa expect = Compile("10(0|1)*");
  Result<bool> eq = Equivalent(*pre, expect);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OpsTest, PrefixClosureLang) {
  Dfa lang = Compile("110");
  Dfa closed = PrefixClosureLang(lang);
  EXPECT_TRUE(closed.AcceptsString(kBin, ""));
  EXPECT_TRUE(closed.AcceptsString(kBin, "1"));
  EXPECT_TRUE(closed.AcceptsString(kBin, "11"));
  EXPECT_TRUE(closed.AcceptsString(kBin, "110"));
  EXPECT_FALSE(closed.AcceptsString(kBin, "0"));
  EXPECT_FALSE(closed.AcceptsString(kBin, "1100"));
}

TEST(OpsTest, DeMorganOnLanguages) {
  Dfa a = Compile("1(0|1)*");
  Dfa b = Compile("(0|1)*0");
  Result<Dfa> lhs = Intersect(a, b);
  ASSERT_TRUE(lhs.ok());
  Result<Dfa> rhs_u = Union(a.Complemented(), b.Complemented());
  ASSERT_TRUE(rhs_u.ok());
  Result<bool> eq = Equivalent(lhs->Complemented(), *rhs_u);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

}  // namespace
}  // namespace strq
