#include "automata/ops.h"

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "automata/store.h"
#include "base/rng.h"
#include "base/string_ops.h"
#include "obs/trace.h"

namespace strq {
namespace {

Dfa Compile(const std::string& pattern) {
  Result<Dfa> r = CompileRegex(pattern, Alphabet::Binary());
  EXPECT_TRUE(r.ok()) << r.status();
  return *std::move(r);
}

const Alphabet kBin = Alphabet::Binary();

TEST(OpsTest, DeterminizeMatchesNfa) {
  Result<RegexPtr> rx = ParseRegex("(0|1)*11(0|1)*");
  ASSERT_TRUE(rx.ok());
  Result<Nfa> nfa = RegexToNfa(*rx, kBin);
  ASSERT_TRUE(nfa.ok());
  Result<Dfa> dfa = Determinize(*nfa);
  ASSERT_TRUE(dfa.ok());
  for (const std::string& s : AllStringsUpToLength("01", 7)) {
    Result<std::vector<Symbol>> w = kBin.Encode(s);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(nfa->Accepts(*w), dfa->Accepts(*w)) << s;
  }
}

TEST(OpsTest, DeterminizeBudget) {
  // (0|1)*1(0|1){n} needs ~2^n DFA states; a tiny budget must trip.
  Result<RegexPtr> rx = ParseRegex("(0|1)*1(0|1)(0|1)(0|1)(0|1)(0|1)(0|1)");
  ASSERT_TRUE(rx.ok());
  Result<Nfa> nfa = RegexToNfa(*rx, kBin);
  ASSERT_TRUE(nfa.ok());
  Result<Dfa> dfa = Determinize(*nfa, /*max_states=*/16);
  ASSERT_FALSE(dfa.ok());
  EXPECT_EQ(dfa.status().code(), StatusCode::kResourceExhausted);
}

TEST(OpsTest, IntersectUnionDifference) {
  Dfa starts1 = Compile("1(0|1)*");
  Dfa ends0 = Compile("(0|1)*0");
  Result<Dfa> both = Intersect(starts1, ends0);
  Result<Dfa> either = Union(starts1, ends0);
  Result<Dfa> only_starts = Difference(starts1, ends0);
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(either.ok());
  ASSERT_TRUE(only_starts.ok());
  for (const std::string& s : AllStringsUpToLength("01", 6)) {
    bool a = starts1.AcceptsString(kBin, s);
    bool b = ends0.AcceptsString(kBin, s);
    EXPECT_EQ(both->AcceptsString(kBin, s), a && b) << s;
    EXPECT_EQ(either->AcceptsString(kBin, s), a || b) << s;
    EXPECT_EQ(only_starts->AcceptsString(kBin, s), a && !b) << s;
  }
}

TEST(OpsTest, ProductRejectsAlphabetMismatch) {
  EXPECT_FALSE(Intersect(Dfa::AllStrings(2), Dfa::AllStrings(3)).ok());
}

TEST(OpsTest, Equivalence) {
  // Two different expressions for "contains 11".
  Dfa a = Compile("(0|1)*11(0|1)*");
  Dfa b = Compile("0*(10*)*110*(0|1)*");
  Result<bool> eq = Equivalent(a, b);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  Result<bool> differs = Equivalent(a, Compile("(0|1)*"));
  ASSERT_TRUE(differs.ok());
  EXPECT_FALSE(*differs);
}

TEST(OpsTest, SubsetCheck) {
  Dfa contains11 = Compile("(0|1)*11(0|1)*");
  Dfa all = Dfa::AllStrings(2);
  Result<bool> sub = Subset(contains11, all);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(*sub);
  Result<bool> sup = Subset(all, contains11);
  ASSERT_TRUE(sup.ok());
  EXPECT_FALSE(*sup);
}

TEST(OpsTest, ReverseLanguage) {
  Dfa starts1 = Compile("1(0|1)*");
  Result<Dfa> rev = Reverse(starts1);
  ASSERT_TRUE(rev.ok());
  // Reverse of "starts with 1" is "ends with 1".
  Dfa ends1 = Compile("(0|1)*1");
  Result<bool> eq = Equivalent(*rev, ends1);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OpsTest, LeftQuotient) {
  Dfa lang = Compile("10(0|1)*");
  Dfa quot = LeftQuotient(lang, 1);  // 1^{-1}L = 0(0|1)*
  Dfa expect = Compile("0(0|1)*");
  Result<bool> eq = Equivalent(quot, expect);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OpsTest, PrependLetter) {
  Dfa lang = Compile("0(0|1)*");
  Result<Dfa> pre = PrependLetter(lang, 1);
  ASSERT_TRUE(pre.ok());
  Dfa expect = Compile("10(0|1)*");
  Result<bool> eq = Equivalent(*pre, expect);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OpsTest, PrefixClosureLang) {
  Dfa lang = Compile("110");
  Dfa closed = PrefixClosureLang(lang);
  EXPECT_TRUE(closed.AcceptsString(kBin, ""));
  EXPECT_TRUE(closed.AcceptsString(kBin, "1"));
  EXPECT_TRUE(closed.AcceptsString(kBin, "11"));
  EXPECT_TRUE(closed.AcceptsString(kBin, "110"));
  EXPECT_FALSE(closed.AcceptsString(kBin, "0"));
  EXPECT_FALSE(closed.AcceptsString(kBin, "1100"));
}

// Chain DFA for "length >= n": states 0..n, saturating at the accepting
// state n. Its products have tiny reachable cores (the diagonal) but huge
// eager state spaces, which is exactly the regime the reachable-only kernel
// targets.
Dfa MinLengthDfa(int n) {
  std::vector<std::vector<int>> next;
  std::vector<bool> accepting;
  for (int i = 0; i <= n; ++i) {
    int to = std::min(i + 1, n);
    next.push_back({to, to});
    accepting.push_back(i == n);
  }
  Result<Dfa> dfa = Dfa::Create(2, 0, next, accepting);
  EXPECT_TRUE(dfa.ok()) << dfa.status();
  return *std::move(dfa);
}

TEST(OpsTest, EagerProductOverflowBoundaryIsAnError) {
  // 50001 * 50001 overflows 32-bit int; the eager kernel must report the
  // budget violation via 64-bit arithmetic instead of wrapping (the wrapped
  // value was negative, which used to slip past the guard and then feed a
  // negative size downstream).
  Dfa a = MinLengthDfa(50000);
  Dfa b = MinLengthDfa(50000);
  ScopedProductKernel eager(ProductKernel::kEager);
  Result<Dfa> prod = Intersect(a, b);
  ASSERT_FALSE(prod.ok());
  EXPECT_EQ(prod.status().code(), StatusCode::kResourceExhausted);
}

TEST(OpsTest, ReachableKernelSucceedsWhereEagerExhausts) {
  // Same operands as the overflow test: the reachable core is just the
  // diagonal (~50001 pairs), far under the default budget.
  Dfa a = MinLengthDfa(50000);
  Dfa b = MinLengthDfa(49999);
  ScopedProductKernel reachable(ProductKernel::kReachable);
  Result<Dfa> prod = Intersect(a, b);
  ASSERT_TRUE(prod.ok()) << prod.status();
  EXPECT_LE(prod->num_states(), 50002);
  std::string at(50000, '0');
  std::string below(49999, '1');
  EXPECT_TRUE(prod->AcceptsString(kBin, at));
  EXPECT_FALSE(prod->AcceptsString(kBin, below));
}

TEST(OpsTest, ReachableKernelRespectsExplicitBudget) {
  Dfa a = MinLengthDfa(100);
  Dfa b = MinLengthDfa(100);
  ScopedProductKernel reachable(ProductKernel::kReachable);
  Result<Dfa> prod = Intersect(a, b, /*max_states=*/16);
  ASSERT_FALSE(prod.ok());
  EXPECT_EQ(prod.status().code(), StatusCode::kResourceExhausted);
}

TEST(OpsTest, IntersectionEmptyDecisionAndEarlyExit) {
  Dfa starts0 = Compile("0(0|1)*");
  Dfa starts1 = Compile("1(0|1)*");
  Result<bool> disjoint = IntersectionEmpty(starts0, starts1);
  ASSERT_TRUE(disjoint.ok());
  EXPECT_TRUE(*disjoint);

  // Overlapping languages: the decision must come from an early exit, not
  // from exhausting the product space.
  Dfa ends0 = Compile("(0|1)*0");
  obs::ScopedEnable tracing(true);
  int64_t exits_before =
      obs::MetricsRegistry::Global().Get(obs::kDfaEarlyExits);
  Result<bool> overlap = IntersectionEmpty(starts0, ends0);
  ASSERT_TRUE(overlap.ok());
  EXPECT_FALSE(*overlap);
  EXPECT_GT(obs::MetricsRegistry::Global().Get(obs::kDfaEarlyExits),
            exits_before);
}

// Random DFA over the binary alphabet: arbitrary transition table and
// accepting set. Products of these exercise kernel corners (unreachable
// regions, dead states, sinks) far beyond the curated cases.
Dfa RandomDfa(Rng& rng) {
  int n = 2 + static_cast<int>(rng.NextBelow(7));
  std::vector<std::vector<int>> next;
  std::vector<bool> accepting;
  for (int i = 0; i < n; ++i) {
    next.push_back({static_cast<int>(rng.NextBelow(n)),
                    static_cast<int>(rng.NextBelow(n))});
    accepting.push_back(rng.NextBool());
  }
  Result<Dfa> dfa = Dfa::Create(2, 0, next, accepting);
  EXPECT_TRUE(dfa.ok()) << dfa.status();
  return *std::move(dfa);
}

// Differential fuzz (kernel equivalence): the reachable-only worklist kernel
// and the retained eager kernel must build language-identical products, and
// the early-exit deciders must agree with the materialize-then-test answers.
TEST(OpsTest, DifferentialFuzzReachableVsEagerKernels) {
  Rng rng(20260806);
  for (int iter = 0; iter < 200; ++iter) {
    Dfa a = RandomDfa(rng);
    Dfa b = RandomDfa(rng);
    ScopedProductKernel reachable(ProductKernel::kReachable);
    Result<Dfa> ri = Intersect(a, b);
    Result<Dfa> ru = Union(a, b);
    Result<Dfa> rd = Difference(a, b);
    Result<bool> rempty = IntersectionEmpty(a, b);
    ASSERT_TRUE(ri.ok() && ru.ok() && rd.ok() && rempty.ok());
    {
      ScopedProductKernel eager(ProductKernel::kEager);
      Result<Dfa> ei = Intersect(a, b);
      Result<Dfa> eu = Union(a, b);
      Result<Dfa> ed = Difference(a, b);
      ASSERT_TRUE(ei.ok() && eu.ok() && ed.ok());
      for (const std::string& s : AllStringsUpToLength("01", 6)) {
        EXPECT_EQ(ri->AcceptsString(kBin, s), ei->AcceptsString(kBin, s))
            << "intersect at iter " << iter << " on " << s;
        EXPECT_EQ(ru->AcceptsString(kBin, s), eu->AcceptsString(kBin, s))
            << "union at iter " << iter << " on " << s;
        EXPECT_EQ(rd->AcceptsString(kBin, s), ed->AcceptsString(kBin, s))
            << "difference at iter " << iter << " on " << s;
      }
      EXPECT_EQ(*rempty, ei->IsEmpty()) << "emptiness at iter " << iter;
    }
    // The reachable product never materializes more states than eager.
    EXPECT_LE(ri->num_states(),
              static_cast<int64_t>(a.num_states()) * b.num_states());
  }
}

// Differential fuzz (store-id equality): the raw product of each kernel,
// interned into one hash-consing store, must land on the same canonical id.
// Interning canonically minimizes, so ids collide iff the two kernels built
// language-identical automata — the strongest equality check available.
// (Interning directly, rather than through store.Intersect, bypasses the
// computed table so both kernels genuinely run.)
TEST(OpsTest, KernelsProduceIdenticalCanonicalStoreIds) {
  Rng rng(987654321);
  AutomatonStore store(true);
  for (int iter = 0; iter < 100; ++iter) {
    Dfa a = RandomDfa(rng);
    Dfa b = RandomDfa(rng);
    Result<Dfa> pr = InternalError("op not run");
    Result<Dfa> pe = InternalError("op not run");
    {
      ScopedProductKernel reachable(ProductKernel::kReachable);
      pr = (iter % 3 == 0)   ? Intersect(a, b)
           : (iter % 3 == 1) ? Union(a, b)
                             : Difference(a, b);
    }
    {
      ScopedProductKernel eager(ProductKernel::kEager);
      pe = (iter % 3 == 0)   ? Intersect(a, b)
           : (iter % 3 == 1) ? Union(a, b)
                             : Difference(a, b);
    }
    ASSERT_TRUE(pr.ok() && pe.ok());
    EXPECT_EQ(store.Intern(*pr).id(), store.Intern(*pe).id()) << iter;
  }
}

// Random DFA over a richer alphabet whose letters are drawn from a small
// pool of base columns, so duplicated columns — and hence nontrivial symbol
// classes — are guaranteed and the condensed kernels get real work.
Dfa RandomClassyDfa(Rng& rng, int* alphabet_size) {
  int n = 1 + static_cast<int>(rng.NextBelow(8));
  int kb = 1 + static_cast<int>(rng.NextBelow(3));
  int k = kb + static_cast<int>(rng.NextBelow(5));
  *alphabet_size = k;
  std::vector<std::vector<int>> base(kb, std::vector<int>(n));
  for (auto& col : base) {
    for (int& t : col) t = static_cast<int>(rng.NextBelow(n));
  }
  std::vector<int> next(static_cast<size_t>(n) * k);
  for (int s = 0; s < k; ++s) {
    const std::vector<int>& col = base[rng.NextBelow(kb)];
    for (int q = 0; q < n; ++q) next[static_cast<size_t>(q) * k + s] = col[q];
  }
  std::vector<bool> accepting(n);
  for (int q = 0; q < n; ++q) accepting[q] = rng.NextBool();
  Result<Dfa> dfa = Dfa::CreateFlat(k, n, static_cast<int>(rng.NextBelow(n)),
                                    std::move(next), std::move(accepting));
  EXPECT_TRUE(dfa.ok()) << dfa.status();
  return *std::move(dfa);
}

// Differential fuzz (class-kernel equivalence): the condensed joint-
// refinement kernels and the dense letter-indexed kernels must build
// *bit-identical* automata — storage is canonically condensed either way, so
// this is structural equality, not merely language equality — and interning
// both results into one hash-consing store must land on the same canonical
// id. Covers products (intersect/union/difference), the emptiness early
// exit, and minimization, on alphabets with duplicated columns.
TEST(OpsTest, DifferentialFuzzCondensedVsDenseClassKernels) {
  Rng rng(20260807);
  AutomatonStore store(true);
  for (int iter = 0; iter < 200; ++iter) {
    int k = 0;
    Dfa a = RandomClassyDfa(rng, &k);
    int kb = 0;
    Dfa b = RandomClassyDfa(rng, &kb);
    // Products need matching alphabets; rebuild b over a's alphabet by
    // cycling its letter map.
    {
      std::vector<int> next(static_cast<size_t>(b.num_states()) * k);
      std::vector<bool> accepting(b.num_states());
      for (int q = 0; q < b.num_states(); ++q) {
        accepting[q] = b.IsAccepting(q);
        for (int s = 0; s < k; ++s) {
          next[static_cast<size_t>(q) * k + s] =
              b.Next(q, static_cast<Symbol>(s % b.alphabet_size()));
        }
      }
      Result<Dfa> rb = Dfa::CreateFlat(k, b.num_states(), b.start(),
                                       std::move(next), std::move(accepting));
      ASSERT_TRUE(rb.ok());
      b = *std::move(rb);
    }
    Result<Dfa> ci = InternalError("op not run");
    Result<Dfa> cu = InternalError("op not run");
    Result<Dfa> cd = InternalError("op not run");
    Result<bool> cempty = InternalError("op not run");
    Dfa cmin = Dfa::EmptyLanguage(1);
    {
      ScopedClassKernel kernel(ClassKernel::kCondensed);
      ci = Intersect(a, b);
      cu = Union(a, b);
      cd = Difference(a, b);
      cempty = IntersectionEmpty(a, b);
      cmin = a.Minimized();
    }
    ScopedClassKernel kernel(ClassKernel::kDense);
    Result<Dfa> di = Intersect(a, b);
    Result<Dfa> du = Union(a, b);
    Result<Dfa> dd = Difference(a, b);
    Result<bool> dempty = IntersectionEmpty(a, b);
    Dfa dmin = a.Minimized();
    ASSERT_TRUE(ci.ok() && cu.ok() && cd.ok() && cempty.ok());
    ASSERT_TRUE(di.ok() && du.ok() && dd.ok() && dempty.ok());
    ASSERT_TRUE(ci->StructurallyEqual(*di)) << "intersect at iter " << iter;
    ASSERT_TRUE(cu->StructurallyEqual(*du)) << "union at iter " << iter;
    ASSERT_TRUE(cd->StructurallyEqual(*dd)) << "difference at iter " << iter;
    ASSERT_TRUE(cmin.StructurallyEqual(dmin)) << "minimize at iter " << iter;
    EXPECT_EQ(*cempty, *dempty) << "emptiness at iter " << iter;
    EXPECT_EQ(store.Intern(*ci).id(), store.Intern(*di).id()) << iter;
    EXPECT_EQ(store.Intern(*cu).id(), store.Intern(*du).id()) << iter;
    EXPECT_EQ(store.Intern(cmin).id(), store.Intern(dmin).id()) << iter;
  }
}

TEST(OpsTest, DeMorganOnLanguages) {
  Dfa a = Compile("1(0|1)*");
  Dfa b = Compile("(0|1)*0");
  Result<Dfa> lhs = Intersect(a, b);
  ASSERT_TRUE(lhs.ok());
  Result<Dfa> rhs_u = Union(a.Complemented(), b.Complemented());
  ASSERT_TRUE(rhs_u.ok());
  Result<bool> eq = Equivalent(lhs->Complemented(), *rhs_u);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

}  // namespace
}  // namespace strq
