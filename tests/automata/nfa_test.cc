#include "automata/nfa.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

std::vector<Symbol> Enc(const std::string& s) {
  Result<std::vector<Symbol>> r = Alphabet::Binary().Encode(s);
  return *std::move(r);
}

// NFA for "contains 11 as a substring".
Nfa Contains11() {
  Nfa n(2);
  int q0 = n.AddState();
  int q1 = n.AddState();
  int q2 = n.AddState();
  n.SetStart(q0);
  n.SetAccepting(q2);
  n.AddTransition(q0, 0, q0);
  n.AddTransition(q0, 1, q0);
  n.AddTransition(q0, 1, q1);
  n.AddTransition(q1, 1, q2);
  n.AddTransition(q2, 0, q2);
  n.AddTransition(q2, 1, q2);
  return n;
}

TEST(NfaTest, BasicAcceptance) {
  Nfa n = Contains11();
  EXPECT_TRUE(n.Accepts(Enc("011")));
  EXPECT_TRUE(n.Accepts(Enc("110")));
  EXPECT_TRUE(n.Accepts(Enc("0110")));
  EXPECT_FALSE(n.Accepts(Enc("0101")));
  EXPECT_FALSE(n.Accepts(Enc("")));
}

TEST(NfaTest, EpsilonClosure) {
  Nfa n(2);
  int a = n.AddState();
  int b = n.AddState();
  int c = n.AddState();
  int d = n.AddState();
  n.AddEpsilon(a, b);
  n.AddEpsilon(b, c);
  // d not linked.
  std::vector<int> closure = n.EpsilonClosure({a});
  EXPECT_EQ(closure, (std::vector<int>{a, b, c}));
  closure = n.EpsilonClosure({d});
  EXPECT_EQ(closure, (std::vector<int>{d}));
}

TEST(NfaTest, EpsilonClosureHandlesCycles) {
  Nfa n(2);
  int a = n.AddState();
  int b = n.AddState();
  n.AddEpsilon(a, b);
  n.AddEpsilon(b, a);
  std::vector<int> closure = n.EpsilonClosure({a});
  EXPECT_EQ(closure, (std::vector<int>{a, b}));
}

TEST(NfaTest, EpsilonReachAcceptance) {
  Nfa n(2);
  int a = n.AddState();
  int b = n.AddState();
  n.SetStart(a);
  n.AddEpsilon(a, b);
  n.SetAccepting(b);
  EXPECT_TRUE(n.Accepts({}));
}

TEST(NfaTest, EmptyNfaRejects) {
  Nfa n(2);
  EXPECT_FALSE(n.Accepts({}));
}

}  // namespace
}  // namespace strq
