#include "automata/starfree.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/regex.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();
const Alphabet kAbc = Alphabet::Abc();

bool StarFree(const std::string& pattern, const Alphabet& alphabet) {
  Result<Dfa> d = CompileRegex(pattern, alphabet);
  EXPECT_TRUE(d.ok()) << pattern << ": " << d.status();
  Result<bool> r = IsStarFree(*d);
  EXPECT_TRUE(r.ok()) << pattern << ": " << r.status();
  return *r;
}

TEST(StarFreeTest, ClassicStarFreeLanguages) {
  // Σ* = complement of ∅: star-free despite the Kleene star in its syntax.
  EXPECT_TRUE(StarFree("(0|1)*", kBin));
  // "contains 11" and its complement are star-free.
  EXPECT_TRUE(StarFree("(0|1)*11(0|1)*", kBin));
  // a*b* over {a,b,c} is star-free.
  EXPECT_TRUE(StarFree("a*b*", kAbc));
  // Finite languages are star-free.
  EXPECT_TRUE(StarFree("011|10", kBin));
  EXPECT_TRUE(StarFree("", kBin));
}

TEST(StarFreeTest, ClassicNonStarFreeLanguages) {
  // (00)* — "even length over a one-letter fragment" — is the canonical
  // non-star-free language (needs a modular counter).
  EXPECT_FALSE(StarFree("(00)*", kBin));
  // Even number of total symbols.
  EXPECT_FALSE(StarFree("((0|1)(0|1))*", kBin));
  // (aa)* embedded in a larger alphabet.
  EXPECT_FALSE(StarFree("(aa)*", kAbc));
}

TEST(StarFreeTest, ParityOfOnesIsNotStarFree) {
  // Even number of 1s: aperiodicity fails on the 1-transformation.
  EXPECT_FALSE(StarFree("0*(10*10*)*", kBin));
}

TEST(StarFreeTest, EmptyAndUniversalAreStarFree) {
  Result<bool> empty = IsStarFree(Dfa::EmptyLanguage(2));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(*empty);
  Result<bool> all = IsStarFree(Dfa::AllStrings(2));
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(*all);
}

TEST(StarFreeTest, SyntacticMonoidSizes) {
  // Σ*: the minimal DFA has one state; the monoid is trivial.
  Result<int> trivial = SyntacticMonoidSize(Dfa::AllStrings(2));
  ASSERT_TRUE(trivial.ok());
  EXPECT_EQ(*trivial, 1);
  // (00)*: minimal DFA has a 2-cycle plus sink; monoid is bigger.
  Result<Dfa> d = CompileRegex("(00)*", kBin);
  ASSERT_TRUE(d.ok());
  Result<int> size = SyntacticMonoidSize(*d);
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 1);
}

TEST(StarFreeTest, BudgetIsEnforced) {
  // A language whose monoid exceeds a 2-element budget.
  Result<Dfa> d = CompileRegex("(0|1)*11(0|1)*", kBin);
  ASSERT_TRUE(d.ok());
  Result<bool> r = IsStarFree(*d, /*max_monoid_size=*/2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(StarFreeTest, UnionOfStarFreeIsStarFree) {
  // Star-free languages are closed under boolean operations; spot-check the
  // checker's consistency with that closure.
  Result<Dfa> a = CompileRegex("1(0|1)*", kBin);
  Result<Dfa> b = CompileRegex("(0|1)*0", kBin);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<Dfa> u = Union(*a, *b);
  ASSERT_TRUE(u.ok());
  Result<bool> r = IsStarFree(*u);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

}  // namespace
}  // namespace strq
