#include "automata/like.h"

#include <gtest/gtest.h>

#include "automata/starfree.h"
#include "base/rng.h"
#include "base/string_ops.h"

namespace strq {
namespace {

const Alphabet kAbc = Alphabet::Abc();

TEST(LikeTest, BasicPatterns) {
  Result<Dfa> d = CompileLike("a%", kAbc);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->AcceptsString(kAbc, "a"));
  EXPECT_TRUE(d->AcceptsString(kAbc, "abc"));
  EXPECT_FALSE(d->AcceptsString(kAbc, "ba"));
  EXPECT_FALSE(d->AcceptsString(kAbc, ""));
}

TEST(LikeTest, UnderscoreIsExactlyOne) {
  Result<Dfa> d = CompileLike("a_c", kAbc);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->AcceptsString(kAbc, "abc"));
  EXPECT_TRUE(d->AcceptsString(kAbc, "aac"));
  EXPECT_FALSE(d->AcceptsString(kAbc, "ac"));
  EXPECT_FALSE(d->AcceptsString(kAbc, "abbc"));
}

TEST(LikeTest, EscapeClause) {
  // With escape '\\', "\\%" is a literal percent — but '%' is not in the
  // alphabet, so compilation must fail (proving it went the literal path).
  EXPECT_FALSE(CompileLike("\\%", kAbc, '\\').ok());
  // Escaping an ordinary character is the character itself.
  Result<Dfa> d = CompileLike("\\a%", kAbc, '\\');
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->AcceptsString(kAbc, "abc"));
  EXPECT_FALSE(d->AcceptsString(kAbc, "bc"));
}

TEST(LikeTest, DanglingEscapeRejected) {
  EXPECT_FALSE(CompileLike("a\\", kAbc, '\\').ok());
  EXPECT_FALSE(LikeToRegex("a\\", '\\').ok());
}

TEST(LikeTest, EmptyPattern) {
  Result<Dfa> d = CompileLike("", kAbc);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->AcceptsString(kAbc, ""));
  EXPECT_FALSE(d->AcceptsString(kAbc, "a"));
}

// Property: compiled LIKE DFAs agree with the reference matcher on all
// strings up to length 5 for a battery of random patterns.
TEST(LikeTest, AgreesWithReferenceMatcher) {
  Rng rng(2001);
  const std::string pattern_chars = "abc%_";
  std::vector<std::string> texts = AllStringsUpToLength("abc", 5);
  for (int trial = 0; trial < 60; ++trial) {
    std::string pattern = rng.NextString(pattern_chars, 0, 5);
    Result<Dfa> d = CompileLike(pattern, kAbc);
    ASSERT_TRUE(d.ok()) << pattern;
    for (const std::string& text : texts) {
      EXPECT_EQ(d->AcceptsString(kAbc, text), LikeMatch(text, pattern))
          << "pattern " << pattern << " text " << text;
    }
  }
}

// Section 4 of the paper: LIKE patterns define star-free languages only
// (which is why LIKE is expressible over S). Machine-check on a battery.
TEST(LikeTest, LikeLanguagesAreStarFree) {
  Rng rng(2002);
  const std::string pattern_chars = "abc%_";
  for (int trial = 0; trial < 40; ++trial) {
    std::string pattern = rng.NextString(pattern_chars, 0, 6);
    Result<Dfa> d = CompileLike(pattern, kAbc);
    ASSERT_TRUE(d.ok()) << pattern;
    Result<bool> star_free = IsStarFree(*d);
    ASSERT_TRUE(star_free.ok()) << pattern;
    EXPECT_TRUE(*star_free) << pattern;
  }
}

}  // namespace
}  // namespace strq

namespace strq {
namespace {

TEST(LikeMatcherTest, MatchesAgreeWithReference) {
  Rng rng(4242);
  const Alphabet alphabet = Alphabet::Abc();
  for (int trial = 0; trial < 40; ++trial) {
    std::string pattern = rng.NextString("abc%_", 0, 5);
    Result<LikeMatcher> matcher = LikeMatcher::Create(pattern, alphabet);
    ASSERT_TRUE(matcher.ok()) << pattern;
    for (const std::string& text : AllStringsUpToLength("abc", 4)) {
      EXPECT_EQ(matcher->Matches(text), LikeMatch(text, pattern))
          << "pattern " << pattern << " text " << text;
    }
  }
}

TEST(LikeMatcherTest, ForeignCharactersNeverMatch) {
  Result<LikeMatcher> matcher =
      LikeMatcher::Create("%", Alphabet::Abc());
  ASSERT_TRUE(matcher.ok());
  EXPECT_TRUE(matcher->Matches("abc"));
  EXPECT_FALSE(matcher->Matches("abz"));
  EXPECT_FALSE(matcher->Matches("\xff"));
}

}  // namespace
}  // namespace strq
