// Early-exit query modes through the serving layer: Session::Contains /
// ExistsWitness / TopK must agree with filtering the materialized Query()
// answer, respect per-session budgets (counted as budget_rejects), and
// leave canonical store ids untouched no matter which modes ran first.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "logic/parser.h"
#include "serve/server.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database ServeDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1,
                             {{""},
                              {"0"},
                              {"01"},
                              {"010"},
                              {"0101"},
                              {"11"},
                              {"110"}})
                  .ok());
  return db;
}

TEST(QueryModesTest, ModesAgreeWithMaterializedQuery) {
  serve::QueryServer server(ServeDb());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x) & member(x, '0(0|1)*')");

  Result<Relation> full = session->Query(f);
  ASSERT_TRUE(full.ok()) << full.status();
  std::vector<Tuple> answers = full->tuples();
  std::sort(answers.begin(), answers.end());

  // Contains == membership in the full answer.
  for (const std::string& s : {"", "0", "01", "010", "0101", "11", "110"}) {
    Result<bool> has = session->Contains(f, {s});
    ASSERT_TRUE(has.ok()) << has.status();
    EXPECT_EQ(*has, std::binary_search(answers.begin(), answers.end(),
                                       Tuple{s}))
        << s;
  }

  // ExistsWitness: some member of the answer set.
  Result<std::optional<std::vector<std::string>>> witness =
      session->ExistsWitness(f);
  ASSERT_TRUE(witness.ok()) << witness.status();
  ASSERT_TRUE(witness->has_value());
  EXPECT_TRUE(std::binary_search(answers.begin(), answers.end(), **witness));

  // TopK(k): k answers, every one a member; k >= |answers| returns all.
  Result<std::vector<std::vector<std::string>>> top3 = session->TopK(f, 3);
  ASSERT_TRUE(top3.ok()) << top3.status();
  EXPECT_EQ(top3->size(), 3u);
  for (const auto& t : *top3) {
    EXPECT_TRUE(std::binary_search(answers.begin(), answers.end(), t));
  }
  Result<std::vector<std::vector<std::string>>> all = session->TopK(f, 100);
  ASSERT_TRUE(all.ok()) << all.status();
  std::vector<Tuple> sorted_all = *all;
  std::sort(sorted_all.begin(), sorted_all.end());
  EXPECT_EQ(sorted_all, answers);
}

TEST(QueryModesTest, EmptyAnswerSet) {
  serve::QueryServer server(ServeDb());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x) & member(x, '111111')");
  Result<std::optional<std::vector<std::string>>> witness =
      session->ExistsWitness(f);
  ASSERT_TRUE(witness.ok()) << witness.status();
  EXPECT_FALSE(witness->has_value());
  Result<std::vector<std::vector<std::string>>> top = session->TopK(f, 5);
  ASSERT_TRUE(top.ok()) << top.status();
  EXPECT_TRUE(top->empty());
}

TEST(QueryModesTest, SessionBudgetAppliesToLazyModes) {
  serve::QueryServer server(ServeDb());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  serve::SessionBudget budget;
  budget.timeout = std::chrono::nanoseconds(1);
  session->set_budget(budget);
  FormulaPtr f = Q("member(x, '0(0|1)*') & member(y, '(0|1)*1') & x <= y");
  Result<std::vector<std::vector<std::string>>> top = session->TopK(f, 50);
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server.stats().budget_rejects, 1);

  // Clearing the budget restores service.
  session->set_budget(serve::SessionBudget{});
  Result<std::vector<std::vector<std::string>>> ok = session->TopK(f, 5, 6);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->size(), 5u);
}

TEST(QueryModesTest, LazyModesDoNotPerturbStoreIds) {
  serve::QueryServer server(ServeDb());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x) & member(x, '0(0|1)*')");

  // Compile materialized first: this interns the canonical answer automaton.
  Result<TrackAutomaton> before = session->Compile(f);
  ASSERT_TRUE(before.ok()) << before.status();
  uint64_t id_before = before->dfa_ref().id();

  // Run every lazy mode (plus a second session doing the same).
  std::unique_ptr<serve::Session> other = server.OpenSession();
  for (serve::Session* s : {session.get(), other.get()}) {
    ASSERT_TRUE(s->Contains(f, {"01"}).ok());
    ASSERT_TRUE(s->ExistsWitness(f).ok());
    ASSERT_TRUE(s->TopK(f, 4).ok());
  }

  // Recompiling yields the same interned automaton: lazy traffic created no
  // store entries that change canonical identity.
  Result<TrackAutomaton> after = session->Compile(f);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->dfa_ref().id(), id_before);
}

TEST(QueryModesTest, ModesSeeThePinnedSnapshot) {
  serve::QueryServer server(ServeDb());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x) & member(x, '1111')");
  Result<bool> before = session->Contains(f, {"1111"});
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_FALSE(*before);

  // A commit after the pin is invisible until Refresh().
  ASSERT_TRUE(server.CommitDeltas({{"R", {"1111"}, true}}).ok());
  Result<bool> pinned = session->Contains(f, {"1111"});
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  EXPECT_FALSE(*pinned);

  session->Refresh();
  Result<bool> fresh = session->Contains(f, {"1111"});
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_TRUE(*fresh);
  Result<std::optional<std::vector<std::string>>> witness =
      session->ExistsWitness(f);
  ASSERT_TRUE(witness.ok()) << witness.status();
  ASSERT_TRUE(witness->has_value());
  EXPECT_EQ(**witness, std::vector<std::string>{"1111"});
}

}  // namespace
}  // namespace strq
