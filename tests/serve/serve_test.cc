// The serving layer end to end: MVCC snapshot isolation under concurrent
// writers, session budgets, single-flight dedup, admission control, and
// snapshot-keyed cache reclamation. The concurrency tests here are the
// tier-2 tsan targets — every cross-thread interaction of the serving
// stack (pin table, striped store, atom-cache single-flight, admission
// queue) gets exercised under race detection.

#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "serve/inflight.h"
#include "gtest/gtest.h"

namespace strq {
namespace serve {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return *std::move(r);
}

Database Fixture() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}, {"1011"}}).ok());
  return db;
}

TEST(SessionTest, QueryMatchesDirectEvaluation) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> session = server.OpenSession();
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  Result<Relation> served = session->Query(f);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  Database direct_db = Fixture();
  AutomataEvaluator direct(&direct_db);
  Result<Relation> want = direct.Evaluate(f);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(served->tuples(), want->tuples());
}

TEST(SessionTest, SentenceAndSafety) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> session = server.OpenSession();
  Result<bool> yes = session->QuerySentence(Q("exists x. R(x) & like(x, '%1%')"));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  // Free variables in a "sentence" are an input error, not a crash.
  Result<bool> bad = session->QuerySentence(Q("R(x)"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  Result<bool> safe = session->IsSafe(Q("exists y. R(y) & x <= y"));
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(*safe);  // prefixes of a finite set: finite
  Result<bool> unsafe = session->IsSafe(Q("exists y. R(y) & y <= x"));
  ASSERT_TRUE(unsafe.ok());
  EXPECT_FALSE(*unsafe);  // extensions of a finite set: infinite
}

TEST(SessionTest, SnapshotIsolationAndReadYourWrites) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x)");
  Result<Relation> before = session->Query(f);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 4u);
  // A commit lands; the pinned session must NOT see it...
  ASSERT_TRUE(server.versioned_db()
                  .AddRelation("R", 1,
                               {{"0"}, {"01"}, {"110"}, {"1011"}, {"111"}})
                  .ok());
  Result<Relation> pinned = session->Query(f);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->size(), 4u);
  // ...until it refreshes.
  session->Refresh();
  Result<Relation> fresh = session->Query(f);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->size(), 5u);
}

// Satellite acceptance: N writer threads streaming inserts/deletes while M
// reader sessions run a fixed query mix against pinned snapshots — every
// served answer must equal a serial evaluation of the SAME pinned snapshot
// by a private evaluator.
TEST(ServeConcurrencyTest, ReadersMatchSerialEvaluationOfPinnedSnapshots) {
  QueryServer server(Fixture());
  std::vector<FormulaPtr> mix;
  mix.push_back(Q("exists y. R(y) & x <= y & last[1](x)"));
  mix.push_back(Q("R(x) & like(x, '%1')"));
  mix.push_back(Q("exists y. R(y) & prepend[1](y) = x & !(x = '')"));
  const int kWriters = 2;
  const int kCommitsPerWriter = 20;
  const int kReaders = 3;
  const int kPassesPerReader = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int k = 0; k < kCommitsPerWriter && !stop.load(); ++k) {
        Status s = server.versioned_db().Update([&](Database& db) {
          std::vector<Tuple> tuples = db.Find("R")->tuples();
          if (k % 3 == 2 && tuples.size() > 1) tuples.pop_back();
          std::string fresh(static_cast<size_t>(k + 2), w ? '1' : '0');
          tuples.push_back({fresh});
          return db.AddRelation("R", 1, std::move(tuples));
        });
        if (!s.ok()) mismatches.fetch_add(1000);
        server.ReclaimDeadSnapshots();
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int pass = 0; pass < kPassesPerReader; ++pass) {
        std::unique_ptr<Session> session = server.OpenSession();
        // Ground truth: a private evaluator (own cache stack) bound to the
        // same pinned Database object.
        const Database& pinned = session->snapshot().db();
        AutomataEvaluator serial(&pinned);
        for (const FormulaPtr& f : mix) {
          Result<Relation> served = session->Query(f);
          Result<Relation> want = serial.Evaluate(f);
          if (!served.ok() || !want.ok() ||
              served->tuples() != want->tuples()) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop = true;
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeBudgetTest, TinyStateBudgetRejectsColdQueryThenRecovers) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> session = server.OpenSession();
  // A pattern unique to this test so the process-wide store cannot already
  // hold the full result (memoized answers are deliberately served even to
  // budgeted callers).
  std::string pattern = "(0|1)*00";
  for (int i = 0; i < 8; ++i) pattern += "(0|1)";
  FormulaPtr f = Q("R(x) & member(x, '" + pattern + "')");
  SessionBudget tiny;
  tiny.max_product_states = 2;
  session->set_budget(tiny);
  Result<Relation> starved = session->Query(f);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(server.stats().budget_rejects, 1);
  // Clearing the budget must fully recover — the starved attempt's verdict
  // is keyed by its budget and never poisons the canonical tables.
  session->set_budget(SessionBudget{});
  Result<Relation> ok = session->Query(f);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  Database direct_db = Fixture();
  AutomataEvaluator direct(&direct_db);
  Result<Relation> want = direct.Evaluate(f);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(ok->tuples(), want->tuples());
}

TEST(ServeBudgetTest, ExpiredDeadlineRejectsBeforeWork) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> session = server.OpenSession();
  SessionBudget instant;
  instant.timeout = std::chrono::nanoseconds(1);
  session->set_budget(instant);
  Result<Relation> expired = session->Query(Q("R(x)"));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ServeBudgetTest, TupleCapSurfacesAsResourceExhausted) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> session = server.OpenSession();
  SessionBudget cap;
  cap.max_answer_tuples = 1;
  session->set_budget(cap);
  // R has 4 tuples; a 1-tuple budget cannot materialize the answer.
  Result<Relation> r = session->Query(Q("R(x)"));
  EXPECT_FALSE(r.ok());
}

TEST(SingleFlightTest, WaitersShareTheLeadersValue) {
  SingleFlight<int, int> sf;
  std::atomic<int> computes{0};
  std::atomic<bool> release{false};
  // The leader blocks inside compute until a waiter is provably waiting, so
  // the dedup interleaving is deterministic, not a race we hope for.
  std::thread leader([&] {
    sf.Do(7, [&] {
      computes.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      return 42;
    });
  });
  while (sf.inflight_size() == 0) std::this_thread::yield();
  std::thread waiter([&] {
    auto outcome = sf.Do(7, [&] {
      computes.fetch_add(1);
      return -1;  // must never run
    });
    EXPECT_FALSE(outcome.leader);
    EXPECT_EQ(*outcome.value, 42);
  });
  while (sf.total_waits() == 0) std::this_thread::yield();
  release = true;
  leader.join();
  waiter.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(sf.total_waits(), 1);
  EXPECT_EQ(sf.inflight_size(), 0u);
  // The entry retired with the leader: a later call computes afresh.
  auto again = sf.Do(7, [&] {
    computes.fetch_add(1);
    return 43;
  });
  EXPECT_TRUE(again.leader);
  EXPECT_EQ(*again.value, 43);
  EXPECT_EQ(computes.load(), 2);
}

TEST(SingleFlightTest, DistinctKeysNeverCollapse) {
  SingleFlight<int, int> sf;
  auto a = sf.Do(1, [] { return 10; });
  auto b = sf.Do(2, [] { return 20; });
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  EXPECT_EQ(*a.value, 10);
  EXPECT_EQ(*b.value, 20);
  EXPECT_EQ(sf.total_waits(), 0);
}

TEST(ServeDedupTest, ConcurrentIdenticalCompilesCollapse) {
  // Racy by nature (threads must overlap inside one compilation), so retry
  // rounds against cold servers until a dedup hit is observed.
  std::string pattern = "(0|1)*0";
  for (int i = 0; i < 9; ++i) pattern += "(0|1)";
  int64_t hits = 0;
  for (int round = 0; round < 50 && hits == 0; ++round) {
    QueryServer server(Fixture());
    FormulaPtr f = Q("R(x) & member(x, '" + pattern + "')");
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int c = 0; c < 8; ++c) {
      threads.emplace_back([&] {
        std::unique_ptr<Session> session = server.OpenSession();
        while (!go.load()) std::this_thread::yield();
        Result<TrackAutomaton> compiled = session->Compile(f);
        EXPECT_TRUE(compiled.ok());
      });
    }
    go = true;
    for (std::thread& t : threads) t.join();
    hits = server.stats().inflight_dedup_hits;
  }
  EXPECT_GT(hits, 0);
}

TEST(ServeAdmissionTest, SaturatedNoQueueServerRejectsFast) {
  std::string pattern = "(0|1)*1";
  for (int i = 0; i < 9; ++i) pattern += "(0|1)";
  int64_t rejects = 0;
  for (int round = 0; round < 50 && rejects == 0; ++round) {
    ServerOptions strict;
    strict.max_concurrent = 1;
    strict.max_queued = 0;
    QueryServer server(Fixture(), strict);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int c = 0; c < 6; ++c) {
      threads.emplace_back([&, c] {
        std::unique_ptr<Session> session = server.OpenSession();
        // Distinct patterns: no dedup, everyone wants the one slot.
        FormulaPtr f = Q("R(x) & member(x, '" + pattern +
                         std::string(static_cast<size_t>(c % 3) + 1, '1') +
                         "')");
        while (!go.load()) std::this_thread::yield();
        Result<Relation> r = session->Query(f);
        if (!r.ok()) {
          EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
        }
      });
    }
    go = true;
    for (std::thread& t : threads) t.join();
    rejects = server.stats().admission_rejects;
  }
  EXPECT_GT(rejects, 0);
}

TEST(ServeReclaimTest, DeadRevisionEntriesEvictedLiveOnesRetained) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> session = server.OpenSession();
  // Compile against the pinned revision: table-trie entries keyed on it
  // land in the shared atom cache.
  ASSERT_TRUE(session->Query(Q("R(x)")).ok());
  // While the session pins the revision, nothing may be reclaimed even
  // after a commit supersedes it.
  ASSERT_TRUE(server.versioned_db()
                  .AddRelation("R", 1, {{"0"}, {"1"}})
                  .ok());
  EXPECT_EQ(server.ReclaimDeadSnapshots(), 0u);
  Result<Relation> still = session->Query(Q("R(x)"));
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->size(), 4u);
  // Refresh drops the pin; the dead revision's entries become reclaimable.
  session->Refresh();
  ASSERT_TRUE(session->Query(Q("R(x)")).ok());  // warm the new revision
  EXPECT_GT(server.ReclaimDeadSnapshots(), 0u);
  // Reclamation must not have touched live entries: answers unchanged.
  Result<Relation> after = session->Query(Q("R(x)"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 2u);
  EXPECT_GE(server.stats().entries_reclaimed, 1);
}

TEST(ServeStatsTest, CountersMoveWithTraffic) {
  QueryServer server(Fixture());
  std::unique_ptr<Session> a = server.OpenSession();
  std::unique_ptr<Session> b = server.OpenSession();
  ASSERT_TRUE(a->Query(Q("R(x)")).ok());
  ASSERT_TRUE(b->QuerySentence(Q("exists x. R(x)")).ok());
  QueryServer::Stats stats = server.stats();
  EXPECT_EQ(stats.sessions, 2);
  EXPECT_EQ(stats.requests, 2);
}

}  // namespace
}  // namespace serve
}  // namespace strq
