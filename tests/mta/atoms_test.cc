#include "mta/atoms.h"

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "base/string_ops.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();
const Alphabet kAbc = Alphabet::Abc();

// Exhaustive property check of a binary atom against a reference predicate,
// over all string pairs up to the given length.
void CheckBinary(const TrackAutomaton& atom,
                 const std::function<bool(const std::string&,
                                          const std::string&)>& reference,
                 const std::string& alphabet, int max_len) {
  std::vector<std::string> strings = AllStringsUpToLength(alphabet, max_len);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      Result<bool> in = atom.Contains({x, y});
      ASSERT_TRUE(in.ok());
      EXPECT_EQ(*in, reference(x, y)) << "(" << x << ", " << y << ")";
    }
  }
}

void CheckUnary(const TrackAutomaton& atom,
                const std::function<bool(const std::string&)>& reference,
                const std::string& alphabet, int max_len) {
  for (const std::string& x : AllStringsUpToLength(alphabet, max_len)) {
    Result<bool> in = atom.Contains({x});
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(*in, reference(x)) << x;
  }
}

TEST(AtomsTest, Equal) {
  Result<TrackAutomaton> atom = EqualAtom(kBin, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, [](const std::string& x, const std::string& y) {
    return x == y;
  }, "01", 4);
}

TEST(AtomsTest, Prefix) {
  Result<TrackAutomaton> atom = PrefixAtom(kBin, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, IsPrefix, "01", 4);
}

TEST(AtomsTest, PrefixAbc) {
  Result<TrackAutomaton> atom = PrefixAtom(kAbc, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, IsPrefix, "abc", 3);
}

TEST(AtomsTest, StrictPrefix) {
  Result<TrackAutomaton> atom = StrictPrefixAtom(kBin, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, IsStrictPrefix, "01", 4);
}

TEST(AtomsTest, OneStep) {
  Result<TrackAutomaton> atom = OneStepAtom(kBin, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, IsOneStepExtension, "01", 4);
}

TEST(AtomsTest, LastSymbol) {
  for (char a : {'0', '1'}) {
    Result<TrackAutomaton> atom = LastSymbolAtom(kBin, a, 0);
    ASSERT_TRUE(atom.ok());
    CheckUnary(*atom, [a](const std::string& x) {
      return LastSymbolIs(x, a);
    }, "01", 5);
  }
}

TEST(AtomsTest, AppendGraph) {
  for (char a : {'a', 'b', 'c'}) {
    Result<TrackAutomaton> atom = AppendGraphAtom(kAbc, a, 0, 1);
    ASSERT_TRUE(atom.ok());
    CheckBinary(*atom, [a](const std::string& x, const std::string& y) {
      return y == AppendLast(x, a);
    }, "abc", 3);
  }
}

TEST(AtomsTest, PrependGraph) {
  for (char a : {'a', 'b', 'c'}) {
    Result<TrackAutomaton> atom = PrependGraphAtom(kAbc, a, 0, 1);
    ASSERT_TRUE(atom.ok());
    CheckBinary(*atom, [a](const std::string& x, const std::string& y) {
      return y == PrependFirst(x, a);
    }, "abc", 3);
  }
}

TEST(AtomsTest, PrependGraphBinary) {
  Result<TrackAutomaton> atom = PrependGraphAtom(kBin, '1', 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, [](const std::string& x, const std::string& y) {
    return y == PrependFirst(x, '1');
  }, "01", 4);
}

TEST(AtomsTest, TrimLeadingGraph) {
  for (char a : {'0', '1'}) {
    Result<TrackAutomaton> atom = TrimLeadingGraphAtom(kBin, a, 0, 1);
    ASSERT_TRUE(atom.ok());
    CheckBinary(*atom, [a](const std::string& x, const std::string& y) {
      return y == TrimLeading(x, a);
    }, "01", 4);
  }
}

TEST(AtomsTest, Const) {
  Result<TrackAutomaton> atom = ConstAtom(kBin, "011", 0);
  ASSERT_TRUE(atom.ok());
  CheckUnary(*atom, [](const std::string& x) { return x == "011"; }, "01", 4);
  EXPECT_TRUE(atom->IsFinite());
}

TEST(AtomsTest, ConstEmptyString) {
  Result<TrackAutomaton> atom = ConstAtom(kBin, "", 0);
  ASSERT_TRUE(atom.ok());
  CheckUnary(*atom, [](const std::string& x) { return x.empty(); }, "01", 3);
}

TEST(AtomsTest, EqLen) {
  Result<TrackAutomaton> atom = EqLenAtom(kBin, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, EqualLength, "01", 4);
}

TEST(AtomsTest, LeqLen) {
  Result<TrackAutomaton> atom = LeqLenAtom(kBin, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, [](const std::string& x, const std::string& y) {
    return x.size() <= y.size();
  }, "01", 4);
}

TEST(AtomsTest, LexLeq) {
  Result<TrackAutomaton> atom = LexLeqAtom(kBin, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, [](const std::string& x, const std::string& y) {
    return LexLeq(x, y, "01");
  }, "01", 4);
}

TEST(AtomsTest, LexLeqAbc) {
  Result<TrackAutomaton> atom = LexLeqAtom(kAbc, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, [](const std::string& x, const std::string& y) {
    return LexLeq(x, y, "abc");
  }, "abc", 3);
}

TEST(AtomsTest, Lcp) {
  Result<TrackAutomaton> atom = LcpAtom(kBin, 0, 1, 2);
  ASSERT_TRUE(atom.ok());
  std::vector<std::string> strings = AllStringsUpToLength("01", 3);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      for (const std::string& z : strings) {
        Result<bool> in = atom->Contains({x, y, z});
        ASSERT_TRUE(in.ok());
        EXPECT_EQ(*in, z == LongestCommonPrefix(x, y))
            << x << "," << y << "," << z;
      }
    }
  }
}

TEST(AtomsTest, Member) {
  Result<Dfa> lang = CompileRegex("(0|1)*11", kBin);
  ASSERT_TRUE(lang.ok());
  Result<TrackAutomaton> atom = MemberAtom(kBin, *lang, 0);
  ASSERT_TRUE(atom.ok());
  CheckUnary(*atom, [](const std::string& x) {
    return x.size() >= 2 && x.substr(x.size() - 2) == "11";
  }, "01", 5);
}

TEST(AtomsTest, SuffixIn) {
  // P_L(x, y) with L = 1* : x ≼ y and y − x ∈ 1*.
  Result<Dfa> ones = CompileRegex("1*", kBin);
  ASSERT_TRUE(ones.ok());
  Result<TrackAutomaton> atom = SuffixInAtom(kBin, *ones, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, [](const std::string& x, const std::string& y) {
    if (!IsPrefix(x, y)) return false;
    std::string suffix = RelativeSuffix(y, x);
    return suffix.find('0') == std::string::npos;
  }, "01", 4);
}

TEST(AtomsTest, SuffixInEpsilonNotInLanguage) {
  // L = 1+ (ε ∉ L): P_L(x, x) must be false.
  Result<Dfa> ones = CompileRegex("1+", kBin);
  ASSERT_TRUE(ones.ok());
  Result<TrackAutomaton> atom = SuffixInAtom(kBin, *ones, 0, 1);
  ASSERT_TRUE(atom.ok());
  CheckBinary(*atom, [](const std::string& x, const std::string& y) {
    if (!IsStrictPrefix(x, y)) return false;
    std::string suffix = RelativeSuffix(y, x);
    return suffix.find('0') == std::string::npos;
  }, "01", 4);
}

TEST(AtomsTest, RepeatedVariablesRejected) {
  EXPECT_FALSE(EqualAtom(kBin, 0, 0).ok());
  EXPECT_FALSE(PrefixAtom(kBin, 2, 2).ok());
  EXPECT_FALSE(LcpAtom(kBin, 0, 1, 1).ok());
}

TEST(AtomsTest, VariableOrderDoesNotMatter) {
  // Atom with var_x > var_y must mean the same relation, with tracks sorted.
  Result<TrackAutomaton> atom = PrefixAtom(kBin, 5, 2);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->vars(), (std::vector<VarId>{2, 5}));
  // Tuple order is by sorted vars: ({y-value for var 2}, {x-value for 5}).
  // prefix(x=var5, y=var2): y-track is var2 which sorts first.
  std::vector<std::string> strings = AllStringsUpToLength("01", 3);
  for (const std::string& v2 : strings) {
    for (const std::string& v5 : strings) {
      Result<bool> in = atom->Contains({v2, v5});
      ASSERT_TRUE(in.ok());
      EXPECT_EQ(*in, IsPrefix(v5, v2)) << v2 << "," << v5;
    }
  }
}

// The separation behind Figure 1: the graph of f_a is not star-free-
// definable track-wise... but as a *relation* its convolution language is
// regular; what matters for the engines is only that the atoms agree with
// the reference ops, checked above. Here: compositional sanity, e.g.
// l_a ∘ f_b commute as relations.
TEST(AtomsTest, AppendPrependCommute) {
  // y = f_b(x), z = l_a(y)  vs  w = l_a(x), z' = f_b(w): a·x·b both ways.
  Result<TrackAutomaton> fb = PrependGraphAtom(kBin, '1', 0, 1);   // y=1·x
  Result<TrackAutomaton> la = AppendGraphAtom(kBin, '0', 1, 2);    // z=y·0
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(la.ok());
  Result<TrackAutomaton> path1 = TrackAutomaton::Intersect(*fb, *la);
  ASSERT_TRUE(path1.ok());
  Result<TrackAutomaton> rel1 = path1->Project(1);  // (x, z): z = 1·x·0
  ASSERT_TRUE(rel1.ok());

  Result<TrackAutomaton> la2 = AppendGraphAtom(kBin, '0', 0, 1);   // w=x·0
  Result<TrackAutomaton> fb2 = PrependGraphAtom(kBin, '1', 1, 2);  // z=1·w
  ASSERT_TRUE(la2.ok());
  ASSERT_TRUE(fb2.ok());
  Result<TrackAutomaton> path2 = TrackAutomaton::Intersect(*la2, *fb2);
  ASSERT_TRUE(path2.ok());
  Result<TrackAutomaton> rel2 = path2->Project(1);
  ASSERT_TRUE(rel2.ok());

  for (const std::string& x : AllStringsUpToLength("01", 3)) {
    std::string z = "1" + x + "0";
    Result<bool> in1 = rel1->Contains({x, z});
    Result<bool> in2 = rel2->Contains({x, z});
    ASSERT_TRUE(in1.ok());
    ASSERT_TRUE(in2.ok());
    EXPECT_TRUE(*in1) << x;
    EXPECT_TRUE(*in2) << x;
    // And a wrong z is in neither.
    std::string bad = "0" + x + "0";
    Result<bool> b1 = rel1->Contains({x, bad});
    Result<bool> b2 = rel2->Contains({x, bad});
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    EXPECT_FALSE(*b1);
    EXPECT_FALSE(*b2);
  }
}

}  // namespace
}  // namespace strq
