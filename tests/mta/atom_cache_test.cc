#include "mta/atom_cache.h"

#include <gtest/gtest.h>

#include "base/alphabet.h"
#include "mta/atoms.h"

namespace strq {
namespace {

TEST(AtomCacheTest, AtomIsCompiledOnceAndRenamedPerOccurrence) {
  AtomCache cache(Alphabet::Binary());
  Result<TrackAutomaton> a = cache.Prefix(0, 1);
  ASSERT_TRUE(a.ok());
  Result<TrackAutomaton> b = cache.Prefix(3, 7);
  ASSERT_TRUE(b.ok());
  Result<TrackAutomaton> c = cache.Prefix(1, 0);  // reversed roles
  ASSERT_TRUE(c.ok());
  AtomCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 2);

  EXPECT_EQ(a->vars(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(b->vars(), (std::vector<VarId>{3, 7}));
  // Semantics follow the variable tags, not the call order.
  EXPECT_EQ(*a->Contains({"0", "01"}), true);    // 0 ≼ 01
  EXPECT_EQ(*b->Contains({"0", "01"}), true);
  EXPECT_EQ(*c->Contains({"01", "0"}), true);    // track 0 holds y now
  EXPECT_EQ(*c->Contains({"0", "01"}), false);
}

TEST(AtomCacheTest, CachedAtomsMatchDirectBuilders) {
  Alphabet ab = Alphabet::Binary();
  AtomCache cache(ab);
  struct Case {
    Result<TrackAutomaton> cached;
    Result<TrackAutomaton> direct;
  };
  Case cases[] = {
      {cache.Equal(0, 1), EqualAtom(ab, 0, 1)},
      {cache.StrictPrefix(0, 1), StrictPrefixAtom(ab, 0, 1)},
      {cache.OneStep(0, 1), OneStepAtom(ab, 0, 1)},
      {cache.LastSymbol('1', 0), LastSymbolAtom(ab, '1', 0)},
      {cache.AppendGraph('0', 0, 1), AppendGraphAtom(ab, '0', 0, 1)},
      {cache.PrependGraph('1', 0, 1), PrependGraphAtom(ab, '1', 0, 1)},
      {cache.TrimLeadingGraph('0', 0, 1), TrimLeadingGraphAtom(ab, '0', 0, 1)},
      {cache.InsertGraph('1', 0, 1, 2), InsertGraphAtom(ab, '1', 0, 1, 2)},
      {cache.Const("010", 0), ConstAtom(ab, "010", 0)},
      {cache.EqLen(0, 1), EqLenAtom(ab, 0, 1)},
      {cache.LeqLen(0, 1), LeqLenAtom(ab, 0, 1)},
      {cache.LexLeq(0, 1), LexLeqAtom(ab, 0, 1)},
      {cache.Lcp(0, 1, 2), LcpAtom(ab, 0, 1, 2)},
      {cache.MaxLen(2, 0), MaxLenAtom(ab, 2, 0)},
  };
  for (size_t i = 0; i < sizeof(cases) / sizeof(cases[0]); ++i) {
    ASSERT_TRUE(cases[i].cached.ok()) << "case " << i;
    ASSERT_TRUE(cases[i].direct.ok()) << "case " << i;
    // Same canonical minimal DFA: structural equality is language equality.
    EXPECT_TRUE(
        cases[i].cached->dfa().StructurallyEqual(cases[i].direct->dfa()))
        << "case " << i;
    EXPECT_EQ(cases[i].cached->vars(), cases[i].direct->vars()) << "case " << i;
  }
}

TEST(AtomCacheTest, PatternsAreMemoizedPerSyntax) {
  AtomCache cache(Alphabet::Binary());
  Result<DfaRef> a = cache.CompiledPattern("0%1", PatternSyntax::kLikePattern);
  ASSERT_TRUE(a.ok());
  Result<DfaRef> b = cache.CompiledPattern("0%1", PatternSyntax::kLikePattern);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->id(), b->id());
  AtomCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.pattern_misses, 1);
  EXPECT_EQ(stats.pattern_hits, 1);
  // Same text under a different syntax is a distinct entry.
  Result<DfaRef> c = cache.CompiledPattern("0|1", PatternSyntax::kRegex);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(cache.stats().pattern_misses, 2);
}

TEST(AtomCacheTest, MemberIsKeyedOnLanguageIdentity) {
  AtomCache cache(Alphabet::Binary());
  // Two different pattern texts denoting the SAME language intern to one
  // DfaRef, so their Member atoms share a single cache entry.
  Result<DfaRef> a = cache.CompiledPattern("(0|1)*1", PatternSyntax::kRegex);
  Result<DfaRef> b = cache.CompiledPattern("(1|0)*1", PatternSyntax::kRegex);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->id(), b->id());
  int64_t misses_before = cache.stats().misses;
  Result<TrackAutomaton> ma = cache.Member(*a, 0);
  ASSERT_TRUE(ma.ok());
  Result<TrackAutomaton> mb = cache.Member(*b, 4);
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  EXPECT_EQ(*ma->Contains({"01"}), true);
  EXPECT_EQ(*mb->Contains({"01"}), true);
  EXPECT_EQ(*mb->Contains({"10"}), false);
  EXPECT_EQ(mb->vars(), (std::vector<VarId>{4}));

  Result<TrackAutomaton> s = cache.SuffixIn(*a, 0, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s->Contains({"0", "01"}), true);   // 01 − 0 = 1 ∈ (0|1)*1
  EXPECT_EQ(*s->Contains({"0", "00"}), false);
}

TEST(AtomCacheTest, TableTrieInvokesSupplierOncePerKey) {
  AtomCache cache(Alphabet::Binary());
  int calls = 0;
  auto supplier = [&calls]() {
    ++calls;
    return std::vector<std::vector<std::string>>{{"0", "01"}, {"1", "10"}};
  };
  Result<TrackAutomaton> a = cache.TableTrie("rel:R:1", {0, 1}, supplier);
  ASSERT_TRUE(a.ok());
  Result<TrackAutomaton> b = cache.TableTrie("rel:R:1", {5, 2}, supplier);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(calls, 1) << "cache hit must not re-materialize the tuples";
  EXPECT_EQ(*a->Contains({"0", "01"}), true);
  EXPECT_EQ(*a->Contains({"01", "0"}), false);
  // vars {5,2}: column 0 goes to var 5, column 1 to var 2; tracks re-sort.
  EXPECT_EQ(b->vars(), (std::vector<VarId>{2, 5}));
  EXPECT_EQ(*b->Contains({"01", "0"}), true);  // (var2, var5) = (01, 0)
  // A different key re-runs the supplier even with identical vars.
  Result<TrackAutomaton> c = cache.TableTrie("rel:R:2", {0, 1}, supplier);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(calls, 2);
}

TEST(AtomCacheTest, UsesTheProvidedStore) {
  AutomatonStore store;
  AtomCache cache(Alphabet::Binary(), &store);
  EXPECT_EQ(&cache.store(), &store);
  size_t before = store.unique_size();
  Result<TrackAutomaton> a = cache.Prefix(0, 1);
  ASSERT_TRUE(a.ok());
  EXPECT_GT(store.unique_size(), before) << "atom interned into this store";
  EXPECT_EQ(&a->store(), &store);
}

TEST(AtomCacheTest, DisabledStoreCacheStillAnswersCorrectly) {
  AutomatonStore off(false);
  AtomCache cache(Alphabet::Binary(), &off);
  Result<TrackAutomaton> a = cache.Equal(0, 1);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a->Contains({"01", "01"}), true);
  EXPECT_EQ(*a->Contains({"01", "10"}), false);
  // The atom-level cache still works even though the store remembers nothing.
  Result<TrackAutomaton> b = cache.Equal(0, 1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.stats().hits, 1);
}

}  // namespace
}  // namespace strq
