#include "mta/conv.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();

TEST(ConvTest, CreateSizes) {
  Result<ConvAlphabet> c2 = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->num_letters(), 9);  // (2+1)^2
  EXPECT_EQ(c2->pad(), 2);

  Result<ConvAlphabet> c0 = ConvAlphabet::Create(2, 0);
  ASSERT_TRUE(c0.ok());
  EXPECT_EQ(c0->num_letters(), 1);

  // 3^11 = 177147 exceeds the 16-bit letter space.
  EXPECT_FALSE(ConvAlphabet::Create(2, 11).ok());
  EXPECT_FALSE(ConvAlphabet::Create(0, 1).ok());
  EXPECT_FALSE(ConvAlphabet::Create(2, -1).ok());
}

TEST(ConvTest, EncodeDecodeRoundTrip) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(3, 3);
  ASSERT_TRUE(c.ok());
  for (int letter = 0; letter < c->num_letters(); ++letter) {
    std::vector<int> digits = c->Decode(static_cast<Symbol>(letter));
    EXPECT_EQ(c->Encode(digits), letter);
    for (int t = 0; t < 3; ++t) {
      EXPECT_EQ(c->DigitAt(static_cast<Symbol>(letter), t), digits[t]);
    }
  }
}

TEST(ConvTest, WithDigit) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(c.ok());
  Symbol letter = c->Encode({0, 1});
  Symbol updated = c->WithDigit(letter, 0, 2);
  EXPECT_EQ(c->Decode(updated), (std::vector<int>{2, 1}));
}

TEST(ConvTest, IsAllPad) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsAllPad(c->Encode({2, 2})));
  EXPECT_FALSE(c->IsAllPad(c->Encode({0, 2})));
  EXPECT_FALSE(c->IsAllPad(c->Encode({0, 0})));
}

TEST(ConvTest, ConvolveEqualLengths) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(c.ok());
  Result<std::vector<Symbol>> word = c->ConvolveStrings(kBin, {"01", "10"});
  ASSERT_TRUE(word.ok());
  ASSERT_EQ(word->size(), 2u);
  EXPECT_EQ(c->Decode((*word)[0]), (std::vector<int>{0, 1}));
  EXPECT_EQ(c->Decode((*word)[1]), (std::vector<int>{1, 0}));
}

TEST(ConvTest, ConvolvePadsShorterTracks) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(c.ok());
  Result<std::vector<Symbol>> word = c->ConvolveStrings(kBin, {"0", "111"});
  ASSERT_TRUE(word.ok());
  ASSERT_EQ(word->size(), 3u);
  EXPECT_EQ(c->Decode((*word)[1]), (std::vector<int>{2, 1}));  // pad on x
  EXPECT_EQ(c->Decode((*word)[2]), (std::vector<int>{2, 1}));
}

TEST(ConvTest, DeconvolveRoundTrip) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 3);
  ASSERT_TRUE(c.ok());
  std::vector<std::string> tuple = {"01", "", "1101"};
  Result<std::vector<Symbol>> word = c->ConvolveStrings(kBin, tuple);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(c->DeconvolveStrings(kBin, *word), tuple);
}

TEST(ConvTest, EmptyTupleConvolvesToEmptyWord) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(c.ok());
  Result<std::vector<Symbol>> word = c->ConvolveStrings(kBin, {"", ""});
  ASSERT_TRUE(word.ok());
  EXPECT_TRUE(word->empty());
}

TEST(ConvTest, ArityMismatchRejected) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->ConvolveStrings(kBin, {"0"}).ok());
}

TEST(ConvTest, TrackStrides) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 3);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->TrackStride(0), 1);
  EXPECT_EQ(c->TrackStride(1), 3);
  EXPECT_EQ(c->TrackStride(2), 9);
  // Defined one past the last track: the total letter count, so kernels can
  // split a letter around any track boundary arithmetically.
  EXPECT_EQ(c->TrackStride(3), c->num_letters());
}

// The digit-extraction power tables must stay exact at the very edge of the
// 16-bit Symbol space. 3^10 = 59049 is the largest binary-alphabet
// convolution that still fits; every letter must round-trip through
// Encode/Decode and agree with the table-driven DigitAt/WithDigit.
TEST(ConvTest, EncodeDecodeRoundTripAtSymbolBoundary) {
  Result<ConvAlphabet> c = ConvAlphabet::Create(2, 10);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->num_letters(), 59049);
  // Exhaustive on the extremes, strided through the middle.
  std::vector<int> letters;
  for (int l = 0; l < 100; ++l) letters.push_back(l);
  for (int l = c->num_letters() - 100; l < c->num_letters(); ++l) {
    letters.push_back(l);
  }
  for (int l = 0; l < c->num_letters(); l += 97) letters.push_back(l);
  for (int l : letters) {
    Symbol s = static_cast<Symbol>(l);
    std::vector<int> digits = c->Decode(s);
    ASSERT_EQ(c->Encode(digits), s);
    for (int t = 0; t < c->arity(); ++t) {
      ASSERT_EQ(c->DigitAt(s, t), digits[t]) << "letter " << l << " track "
                                             << t;
      for (int d = 0; d <= c->pad(); ++d) {
        Symbol replaced = c->WithDigit(s, t, d);
        ASSERT_EQ(c->DigitAt(replaced, t), d);
        // Other tracks untouched.
        for (int u = 0; u < c->arity(); ++u) {
          if (u != t) ASSERT_EQ(c->DigitAt(replaced, u), digits[u]);
        }
      }
    }
  }
  EXPECT_TRUE(c->IsAllPad(static_cast<Symbol>(c->num_letters() - 1)));
  EXPECT_FALSE(c->IsAllPad(static_cast<Symbol>(c->num_letters() - 2)));
}

}  // namespace
}  // namespace strq
