#include "mta/track_automaton.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "base/string_ops.h"
#include "mta/atoms.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();

TEST(TrackAutomatonTest, FullAndEmptyRelations) {
  Result<TrackAutomaton> full = TrackAutomaton::FullRelation(kBin, {0, 1});
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->IsEmpty());
  EXPECT_FALSE(full->IsFinite());
  Result<bool> in = full->Contains({"01", "1"});
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(*in);

  Result<TrackAutomaton> empty = TrackAutomaton::EmptyRelation(kBin, {0, 1});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->IsEmpty());
  EXPECT_TRUE(empty->IsFinite());
}

TEST(TrackAutomatonTest, TruthRelations) {
  Result<TrackAutomaton> t = TrackAutomaton::Truth(kBin, true);
  Result<TrackAutomaton> f = TrackAutomaton::Truth(kBin, false);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(f.ok());
  Result<bool> tv = t->TruthValue();
  Result<bool> fv = f->TruthValue();
  ASSERT_TRUE(tv.ok());
  ASSERT_TRUE(fv.ok());
  EXPECT_TRUE(*tv);
  EXPECT_FALSE(*fv);
}

TEST(TrackAutomatonTest, VarsMustBeSorted) {
  EXPECT_FALSE(TrackAutomaton::FullRelation(kBin, {1, 0}).ok());
  EXPECT_FALSE(TrackAutomaton::FullRelation(kBin, {0, 0}).ok());
}

TEST(TrackAutomatonTest, FromTuplesMembership) {
  std::vector<std::vector<std::string>> tuples = {
      {"0", "11"}, {"", "1"}, {"01", "01"}};
  Result<TrackAutomaton> rel = TrackAutomaton::FromTuples(kBin, {3, 7},
                                                          tuples);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->IsFinite());
  for (const auto& t : tuples) {
    Result<bool> in = rel->Contains(t);
    ASSERT_TRUE(in.ok());
    EXPECT_TRUE(*in);
  }
  Result<bool> out = rel->Contains({"0", "1"});
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(*out);
}

TEST(TrackAutomatonTest, FromTuplesAllTuplesRoundTrip) {
  std::vector<std::vector<std::string>> tuples = {
      {"0", "11"}, {"", "1"}, {"01", "01"}, {"1", ""}};
  Result<TrackAutomaton> rel =
      TrackAutomaton::FromTuples(kBin, {0, 1}, tuples);
  ASSERT_TRUE(rel.ok());
  Result<std::vector<std::vector<std::string>>> all = rel->AllTuples();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), tuples.size());
  for (const auto& t : tuples) {
    EXPECT_NE(std::find(all->begin(), all->end(), t), all->end());
  }
}

TEST(TrackAutomatonTest, AllTuplesRejectsInfinite) {
  Result<TrackAutomaton> full = TrackAutomaton::FullRelation(kBin, {0});
  ASSERT_TRUE(full.ok());
  Result<std::vector<std::vector<std::string>>> all = full->AllTuples();
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kUnsafe);
}

TEST(TrackAutomatonTest, IntersectAlignsVariables) {
  // prefix(0,1) ∧ prefix(1,2) ⊨ prefix(0,2) (transitivity, checked on
  // tuples).
  Result<TrackAutomaton> p01 = PrefixAtom(kBin, 0, 1);
  Result<TrackAutomaton> p12 = PrefixAtom(kBin, 1, 2);
  ASSERT_TRUE(p01.ok());
  ASSERT_TRUE(p12.ok());
  Result<TrackAutomaton> both = TrackAutomaton::Intersect(*p01, *p12);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->vars(), (std::vector<VarId>{0, 1, 2}));
  std::vector<std::string> strings = AllStringsUpToLength("01", 3);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      for (const std::string& z : strings) {
        Result<bool> in = both->Contains({x, y, z});
        ASSERT_TRUE(in.ok());
        EXPECT_EQ(*in, IsPrefix(x, y) && IsPrefix(y, z))
            << x << "," << y << "," << z;
      }
    }
  }
}

TEST(TrackAutomatonTest, UnionAlignsVariables) {
  Result<TrackAutomaton> p01 = PrefixAtom(kBin, 0, 1);
  Result<TrackAutomaton> p10 = PrefixAtom(kBin, 1, 0);
  ASSERT_TRUE(p01.ok());
  ASSERT_TRUE(p10.ok());
  Result<TrackAutomaton> comparable = TrackAutomaton::Union(*p01, *p10);
  ASSERT_TRUE(comparable.ok());
  std::vector<std::string> strings = AllStringsUpToLength("01", 4);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      Result<bool> in = comparable->Contains({x, y});
      ASSERT_TRUE(in.ok());
      EXPECT_EQ(*in, IsPrefix(x, y) || IsPrefix(y, x)) << x << "," << y;
    }
  }
}

TEST(TrackAutomatonTest, ComplementIsRelativeToAllTuples) {
  Result<TrackAutomaton> eq = EqualAtom(kBin, 0, 1);
  ASSERT_TRUE(eq.ok());
  Result<TrackAutomaton> neq = eq->Complemented();
  ASSERT_TRUE(neq.ok());
  std::vector<std::string> strings = AllStringsUpToLength("01", 4);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      Result<bool> in = neq->Contains({x, y});
      ASSERT_TRUE(in.ok());
      EXPECT_EQ(*in, x != y) << x << "," << y;
    }
  }
}

TEST(TrackAutomatonTest, DoubleComplementIsIdentity) {
  Result<TrackAutomaton> p = PrefixAtom(kBin, 0, 1);
  ASSERT_TRUE(p.ok());
  Result<TrackAutomaton> c1 = p->Complemented();
  ASSERT_TRUE(c1.ok());
  Result<TrackAutomaton> c2 = c1->Complemented();
  ASSERT_TRUE(c2.ok());
  std::vector<std::string> strings = AllStringsUpToLength("01", 4);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      Result<bool> a = p->Contains({x, y});
      Result<bool> b = c2->Contains({x, y});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b) << x << "," << y;
    }
  }
}

TEST(TrackAutomatonTest, ProjectExistential) {
  // ∃y (x ≺ y ∧ L_1(y)): true for every x (extend x with 1).
  Result<TrackAutomaton> sp = StrictPrefixAtom(kBin, 0, 1);
  Result<TrackAutomaton> l1 = LastSymbolAtom(kBin, '1', 1);
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(l1.ok());
  Result<TrackAutomaton> conj = TrackAutomaton::Intersect(*sp, *l1);
  ASSERT_TRUE(conj.ok());
  Result<TrackAutomaton> exists = conj->Project(1);
  ASSERT_TRUE(exists.ok());
  EXPECT_EQ(exists->vars(), (std::vector<VarId>{0}));
  for (const std::string& x : AllStringsUpToLength("01", 4)) {
    Result<bool> in = exists->Contains({x});
    ASSERT_TRUE(in.ok());
    EXPECT_TRUE(*in) << x;
  }
}

TEST(TrackAutomatonTest, ProjectToSentence) {
  // ∃x (x = "01"): a true sentence.
  Result<TrackAutomaton> c = ConstAtom(kBin, "01", 0);
  ASSERT_TRUE(c.ok());
  Result<TrackAutomaton> sentence = c->Project(0);
  ASSERT_TRUE(sentence.ok());
  EXPECT_EQ(sentence->arity(), 0);
  Result<bool> v = sentence->TruthValue();
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);

  // ∃x (x = "01" ∧ x = "10"): false.
  Result<TrackAutomaton> c2 = ConstAtom(kBin, "10", 0);
  ASSERT_TRUE(c2.ok());
  Result<TrackAutomaton> conj = TrackAutomaton::Intersect(*c, *c2);
  ASSERT_TRUE(conj.ok());
  Result<TrackAutomaton> s2 = conj->Project(0);
  ASSERT_TRUE(s2.ok());
  Result<bool> v2 = s2->TruthValue();
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(*v2);
}

TEST(TrackAutomatonTest, ProjectLongerTrack) {
  // ∃y (y = x·1): projecting away a track that is longer than the rest.
  Result<TrackAutomaton> app = AppendGraphAtom(kBin, '1', 0, 1);
  ASSERT_TRUE(app.ok());
  Result<TrackAutomaton> exists = app->Project(1);
  ASSERT_TRUE(exists.ok());
  for (const std::string& x : AllStringsUpToLength("01", 4)) {
    Result<bool> in = exists->Contains({x});
    ASSERT_TRUE(in.ok());
    EXPECT_TRUE(*in) << x;  // every x has an extension x·1
  }
}

TEST(TrackAutomatonTest, ProjectMissingVarRejected) {
  Result<TrackAutomaton> p = PrefixAtom(kBin, 0, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->Project(5).ok());
}

TEST(TrackAutomatonTest, RenameSwapsTracks) {
  // prefix(x0, x1) renamed {0->1, 1->0} is prefix(x1, x0): "second is a
  // prefix of first".
  Result<TrackAutomaton> p = PrefixAtom(kBin, 0, 1);
  ASSERT_TRUE(p.ok());
  Result<TrackAutomaton> swapped = p->Renamed({{0, 1}, {1, 0}});
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->vars(), (std::vector<VarId>{0, 1}));
  std::vector<std::string> strings = AllStringsUpToLength("01", 4);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      Result<bool> in = swapped->Contains({x, y});
      ASSERT_TRUE(in.ok());
      EXPECT_EQ(*in, IsPrefix(y, x)) << x << "," << y;
    }
  }
}

TEST(TrackAutomatonTest, RenameRejectsCollisions) {
  Result<TrackAutomaton> p = PrefixAtom(kBin, 0, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->Renamed({{0, 1}}).ok());  // both tracks named 1
}

TEST(TrackAutomatonTest, CylindrifiedAddsFreeTrack) {
  Result<TrackAutomaton> eq = EqualAtom(kBin, 0, 2);
  ASSERT_TRUE(eq.ok());
  Result<TrackAutomaton> cyl = eq->Cylindrified({0, 1, 2});
  ASSERT_TRUE(cyl.ok());
  std::vector<std::string> strings = AllStringsUpToLength("01", 3);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      for (const std::string& z : strings) {
        Result<bool> in = cyl->Contains({x, y, z});
        ASSERT_TRUE(in.ok());
        EXPECT_EQ(*in, x == z) << x << "," << y << "," << z;
      }
    }
  }
}

TEST(TrackAutomatonTest, CylindrifiedRequiresSuperset) {
  Result<TrackAutomaton> eq = EqualAtom(kBin, 0, 2);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq->Cylindrified({0, 1}).ok());
}

TEST(TrackAutomatonTest, CountUpToLength) {
  // Equal pairs with |x| <= 2 over {0,1}: ε, 0, 1, 00, 01, 10, 11 -> 7.
  Result<TrackAutomaton> eq = EqualAtom(kBin, 0, 1);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->CountUpToLength(2), 7u);
}

TEST(TrackAutomatonTest, EnumerateTuplesDecodes) {
  Result<TrackAutomaton> one = OneStepAtom(kBin, 0, 1);
  ASSERT_TRUE(one.ok());
  std::vector<std::vector<std::string>> tuples = one->EnumerateTuples(2, 100);
  // Pairs (x, x·b) with |x·b| <= 2: x ∈ {ε,0,1}, b ∈ {0,1} -> 6 tuples.
  EXPECT_EQ(tuples.size(), 6u);
  for (const auto& t : tuples) {
    ASSERT_EQ(t.size(), 2u);
    EXPECT_TRUE(IsOneStepExtension(t[0], t[1])) << t[0] << "," << t[1];
  }
}

// The class-aware ValidConvolutions construction (one class per pad-mask)
// must agree bit-for-bit with the dense letter loop at every arity, and its
// partition can never be finer than the 2^arity pad-masks.
TEST(TrackAutomatonClassTest, ValidConvolutionsKernelsAgree) {
  for (int arity = 0; arity <= 4; ++arity) {
    Result<ConvAlphabet> conv = ConvAlphabet::Create(2, arity);
    ASSERT_TRUE(conv.ok());
    Result<Dfa> condensed = InternalError("not run");
    {
      ScopedClassKernel kernel(ClassKernel::kCondensed);
      condensed = TrackAutomaton::ValidConvolutions(*conv);
    }
    Result<Dfa> dense = InternalError("not run");
    {
      ScopedClassKernel kernel(ClassKernel::kDense);
      dense = TrackAutomaton::ValidConvolutions(*conv);
    }
    ASSERT_TRUE(condensed.ok());
    ASSERT_TRUE(dense.ok());
    EXPECT_TRUE(condensed->StructurallyEqual(*dense)) << "arity " << arity;
    EXPECT_EQ(condensed->StructuralHash(), dense->StructuralHash());
    EXPECT_LE(condensed->num_classes(), 1 << arity);
  }
}

// Differential fuzz over the first-order pipeline: random finite relations
// are intersected (which cylindrifies internally), explicitly cylindrified
// and projected back, projected, and renamed — once under the condensed
// class-indexed kernels, once under the dense letter-indexed ones, each
// against its own store so no memoized result can leak across modes. The
// canonically-minimized results must be bit-identical, land on the same
// canonical id in a shared store, and enumerate the same tuples.
TEST(TrackAutomatonClassTest, FirstOrderOpsCondensedVsDenseFuzz) {
  Rng rng(20260808);
  AutomatonStore id_store(true);
  for (int iter = 0; iter < 200; ++iter) {
    const VarId pool[] = {0, 2, 4};
    int arity1 = rng.NextInt(1, 3);
    int arity2 = rng.NextInt(1, 3);
    std::vector<VarId> vars1(pool, pool + arity1);
    // Overlapping but not identical variable sets exercise alignment.
    std::vector<VarId> vars2(pool + (3 - arity2), pool + 3);
    auto random_tuples = [&](int arity) {
      std::vector<std::vector<std::string>> tuples(rng.NextInt(1, 5));
      for (auto& tuple : tuples) {
        for (int t = 0; t < arity; ++t) {
          tuple.push_back(rng.NextString("01", 0, 3));
        }
      }
      return tuples;
    };
    std::vector<std::vector<std::string>> tuples1 = random_tuples(arity1);
    std::vector<std::vector<std::string>> tuples2 = random_tuples(arity2);
    std::vector<VarId> joint;
    std::set_union(vars1.begin(), vars1.end(), vars2.begin(), vars2.end(),
                   std::back_inserter(joint));
    VarId project_var = joint[static_cast<size_t>(rng.NextInt(
        0, static_cast<int>(joint.size()) - 1))];
    AutomatonStore cstore(true);
    AutomatonStore dstore(true);
    auto run = [&](ClassKernel mode,
                   const AutomatonStore& store) -> Result<TrackAutomaton> {
      ScopedClassKernel kernel(mode);
      STRQ_ASSIGN_OR_RETURN(
          TrackAutomaton r1,
          TrackAutomaton::FromTuples(store, kBin, vars1, tuples1));
      STRQ_ASSIGN_OR_RETURN(
          TrackAutomaton r2,
          TrackAutomaton::FromTuples(store, kBin, vars2, tuples2));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton both,
                            TrackAutomaton::Intersect(r1, r2));
      // Round trip through an added unconstrained track.
      std::vector<VarId> up = joint;
      up.push_back(9);
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton cyl, both.Cylindrified(up));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton back, cyl.Project(9));
      STRQ_ASSIGN_OR_RETURN(TrackAutomaton proj, back.Project(project_var));
      // Reverse the remaining variable order: a genuine track permutation
      // (a single remaining variable degenerates to the label-only path).
      std::map<VarId, VarId> renaming;
      for (size_t i = 0; i < proj.vars().size(); ++i) {
        renaming[proj.vars()[i]] =
            proj.vars()[proj.vars().size() - 1 - i];
      }
      return proj.Renamed(renaming);
    };
    Result<TrackAutomaton> c = run(ClassKernel::kCondensed, cstore);
    Result<TrackAutomaton> d = run(ClassKernel::kDense, dstore);
    ASSERT_TRUE(c.ok()) << iter << ": " << c.status();
    ASSERT_TRUE(d.ok()) << iter << ": " << d.status();
    ASSERT_EQ(c->vars(), d->vars()) << iter;
    ASSERT_TRUE(c->dfa().StructurallyEqual(d->dfa())) << "iter " << iter;
    ASSERT_EQ(c->dfa().StructuralHash(), d->dfa().StructuralHash());
    EXPECT_EQ(c->NumClasses(), d->NumClasses());
    EXPECT_EQ(id_store.Intern(c->dfa()).id(), id_store.Intern(d->dfa()).id())
        << iter;
    Result<std::vector<std::vector<std::string>>> ct = c->AllTuples();
    Result<std::vector<std::vector<std::string>>> dt = d->AllTuples();
    ASSERT_TRUE(ct.ok() && dt.ok()) << iter;
    EXPECT_EQ(*ct, *dt) << iter;
  }
}

TEST(TrackAutomatonTest, ValidConvolutionsRejectJunk) {
  Result<ConvAlphabet> conv = ConvAlphabet::Create(2, 2);
  ASSERT_TRUE(conv.ok());
  Result<Dfa> valid = TrackAutomaton::ValidConvolutions(*conv);
  ASSERT_TRUE(valid.ok());
  // Canonical word: (0,1)(2,1) — x="0", y="11".
  Symbol c01 = conv->Encode({0, 1});
  Symbol cp1 = conv->Encode({2, 1});
  Symbol cpp = conv->Encode({2, 2});
  Symbol c00 = conv->Encode({0, 0});
  EXPECT_TRUE(valid->Accepts({c01, cp1}));
  EXPECT_TRUE(valid->Accepts({}));
  // Pad then non-pad on track 0: invalid.
  EXPECT_FALSE(valid->Accepts({cp1, c01}));
  // All-pad column: invalid.
  EXPECT_FALSE(valid->Accepts({c00, cpp}));
}

}  // namespace
}  // namespace strq
