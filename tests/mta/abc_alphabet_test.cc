// Cross-alphabet coverage: the mta pipeline exercised over the 3-letter
// alphabet (base ≠ 2 shakes out digit-coding bugs) and at arity 4 (letter
// space 4^4 = 256, past the 8-bit boundary).

#include <gtest/gtest.h>

#include "base/string_ops.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "mta/atoms.h"

namespace strq {
namespace {

const Alphabet kAbc = Alphabet::Abc();

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

TEST(AbcAlphabetTest, AtomsOverThreeLetters) {
  Result<TrackAutomaton> lex = LexLeqAtom(kAbc, 0, 1);
  Result<TrackAutomaton> trim = TrimLeadingGraphAtom(kAbc, 'b', 0, 1);
  Result<TrackAutomaton> ins = InsertGraphAtom(kAbc, 'c', 0, 1, 2);
  ASSERT_TRUE(lex.ok());
  ASSERT_TRUE(trim.ok());
  ASSERT_TRUE(ins.ok());
  std::vector<std::string> strings = AllStringsUpToLength("abc", 2);
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      Result<bool> l = lex->Contains({x, y});
      ASSERT_TRUE(l.ok());
      EXPECT_EQ(*l, LexLeq(x, y, "abc")) << x << "," << y;
      Result<bool> t = trim->Contains({x, y});
      ASSERT_TRUE(t.ok());
      EXPECT_EQ(*t, y == TrimLeading(x, 'b')) << x << "," << y;
      for (const std::string& z : strings) {
        Result<bool> i = ins->Contains({x, y, z});
        ASSERT_TRUE(i.ok());
        EXPECT_EQ(*i, z == InsertAfterPrefix(x, y, 'c'))
            << x << "," << y << "," << z;
      }
    }
  }
}

TEST(AbcAlphabetTest, ArityFourPipeline) {
  // 4 tracks over abc: conv alphabet has 4^4 = 256 letters — beyond the
  // 8-bit boundary that Symbol = uint16_t exists for.
  Result<TrackAutomaton> p01 = PrefixAtom(kAbc, 0, 1);
  Result<TrackAutomaton> p12 = PrefixAtom(kAbc, 1, 2);
  Result<TrackAutomaton> p23 = PrefixAtom(kAbc, 2, 3);
  ASSERT_TRUE(p01.ok());
  ASSERT_TRUE(p12.ok());
  ASSERT_TRUE(p23.ok());
  Result<TrackAutomaton> chain = TrackAutomaton::Intersect(*p01, *p12);
  ASSERT_TRUE(chain.ok());
  chain = TrackAutomaton::Intersect(*chain, *p23);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->arity(), 4);
  Result<bool> in = chain->Contains({"a", "ab", "abc", "abca"});
  ASSERT_TRUE(in.ok());
  EXPECT_TRUE(*in);
  Result<bool> out = chain->Contains({"a", "ab", "ba", "bac"});
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(*out);
  // Project the middle tracks away: x ≼⁺ w (prefix via two hops) — which is
  // just x ≼ w.
  Result<TrackAutomaton> proj = chain->Project(1);
  ASSERT_TRUE(proj.ok());
  proj = proj->Project(2);
  ASSERT_TRUE(proj.ok());
  for (const std::string& x : AllStringsUpToLength("abc", 2)) {
    for (const std::string& w : AllStringsUpToLength("abc", 3)) {
      Result<bool> v = proj->Contains({x, w});
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, IsPrefix(x, w)) << x << "," << w;
    }
  }
}

TEST(AbcAlphabetTest, EndToEndQueries) {
  Database db(kAbc);
  ASSERT_TRUE(db.AddRelation("Words", 1,
                             {{"abc"}, {"cab"}, {"bca"}, {"aa"}}).ok());
  AutomataEvaluator engine(&db);
  // Words whose trim-b... whose 'a'-trimmed remainder ends in 'a'.
  Result<Relation> out =
      engine.Evaluate(Q("Words(x) & last[a](trim[a](x))"));
  ASSERT_TRUE(out.ok()) << out.status();
  // trim[a]("abc")="bc"; trim[a]("cab")=""; trim[a]("bca")="";
  // trim[a]("aa")="a" -> last[a] ✓. Only "aa".
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{"aa"}));

  // Lexicographic maximum via the abc order.
  Result<Relation> max = engine.Evaluate(
      Q("Words(x) & forall y. Words(y) -> lexleq(y, x)"));
  ASSERT_TRUE(max.ok());
  ASSERT_EQ(max->size(), 1u);
  EXPECT_EQ(max->tuples()[0], (Tuple{"cab"}));

  // Natural quantification over the 3-letter Σ*.
  Result<bool> v = engine.EvaluateSentence(
      Q("forall x. exists y. x < y & last[c](y)"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(AbcAlphabetTest, CountingConsistency) {
  // CountUpToLength must agree with enumeration for a nontrivial relation.
  Result<TrackAutomaton> eq = EqLenAtom(kAbc, 0, 1);
  ASSERT_TRUE(eq.ok());
  uint64_t counted = eq->CountUpToLength(2);
  size_t enumerated = eq->EnumerateTuples(2, 100000).size();
  EXPECT_EQ(counted, enumerated);
  // Equal-length pairs with both |x|,|y| <= 2 over 3 letters:
  // 1 (ε,ε) + 9 + 81 = 91.
  EXPECT_EQ(counted, 91u);
}

TEST(AbcAlphabetTest, ArityLimitIsGraceful) {
  // 4^8 = 65536 letters exceeds the 16-bit Symbol space: clean error.
  std::vector<VarId> vars;
  for (int i = 0; i < 8; ++i) vars.push_back(i);
  Result<TrackAutomaton> r = TrackAutomaton::FullRelation(kAbc, vars);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace strq
