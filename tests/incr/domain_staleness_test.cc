// DomainProvider staleness: the incremental index only answers for the
// revision it currently maintains. A session pinned to an older snapshot
// must get the nullopt/null fallback — and the candidate set it then
// rebuilds locally from its pinned database must be byte-identical to what
// the provider served when that revision WAS the head.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "eval/restricted_eval.h"
#include "incr/incr.h"
#include "logic/parser.h"
#include "relational/domain_trie.h"
#include "serve/server.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

// Fresh rebuild of adom(D): the sorted, deduplicated set of strings in any
// relation — exactly what the provider's flat accessor must serve.
std::vector<std::string> ScanActiveDomain(const Database& db) {
  std::set<std::string> dom;
  for (const auto& [name, rel] : db.relations()) {
    (void)name;
    for (const Tuple& t : rel.tuples()) {
      for (const std::string& s : t) dom.insert(s);
    }
  }
  return std::vector<std::string>(dom.begin(), dom.end());
}

TEST(DomainStalenessTest, PinnedSnapshotFallsBackToIdenticalRebuild) {
  Database initial(Alphabet::Binary());
  ASSERT_TRUE(initial.AddRelation("R", 1, {{"0"}, {"01"}, {"11"}}).ok());
  serve::QueryServer server(std::move(initial));
  ASSERT_NE(server.incremental(), nullptr);

  // Seed the index with a first commit, then pin a session at that head.
  Result<CommitDelta> seed =
      server.CommitDeltas({{"R", {"010"}, true}, {"R", {"110"}, true}});
  ASSERT_TRUE(seed.ok()) << seed.status();
  std::unique_ptr<serve::Session> session = server.OpenSession();
  int64_t pinned_rev = session->revision();
  EXPECT_EQ(pinned_rev, seed->to_revision);
  const std::shared_ptr<incr::IncrementalIndex>& provider =
      server.incremental();

  // At head, the provider serves the pinned revision: flat views and tries,
  // all agreeing with a fresh rebuild from the pinned database.
  std::vector<std::string> rebuilt =
      ScanActiveDomain(session->snapshot().db());
  std::optional<std::vector<std::string>> served =
      provider->ActiveDomainAt(pinned_rev);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, rebuilt);
  std::shared_ptr<const DomainTrie> served_trie =
      provider->AdomTrieAt(pinned_rev);
  ASSERT_NE(served_trie, nullptr);
  EXPECT_EQ(served_trie->Matching({}, nullptr), rebuilt);
  std::optional<std::vector<std::string>> served_prefixes =
      provider->PrefixClosureAt(pinned_rev);
  ASSERT_TRUE(served_prefixes.has_value());
  std::shared_ptr<const DomainTrie> served_prefix_trie =
      provider->PrefixTrieAt(pinned_rev);
  ASSERT_NE(served_prefix_trie, nullptr);
  EXPECT_EQ(served_prefix_trie->Matching({}, nullptr), *served_prefixes);

  // Move the head: the domain gains one string and loses another.
  Result<CommitDelta> advance =
      server.CommitDeltas({{"R", {"0111"}, true}, {"R", {"11"}, false}});
  ASSERT_TRUE(advance.ok()) << advance.status();

  // The provider is now stale for the pinned revision and must say so on
  // every accessor rather than serve the head's (different) domain.
  EXPECT_FALSE(provider->ActiveDomainAt(pinned_rev).has_value());
  EXPECT_FALSE(provider->PrefixClosureAt(pinned_rev).has_value());
  EXPECT_EQ(provider->AdomTrieAt(pinned_rev), nullptr);
  EXPECT_EQ(provider->PrefixTrieAt(pinned_rev), nullptr);

  // The pinned snapshot is immutable, so the local rebuild the fallback
  // triggers produces byte-identical candidates to what the provider served
  // before the head moved.
  EXPECT_EQ(ScanActiveDomain(session->snapshot().db()), *served);
  Result<std::shared_ptr<const DomainTrie>> local = DomainTrie::Build(
      server.alphabet(), ScanActiveDomain(session->snapshot().db()));
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_EQ((*local)->Matching({}, nullptr),
            served_trie->Matching({}, nullptr));

  // And the head itself is served correctly.
  std::optional<std::vector<std::string>> head_dom =
      provider->ActiveDomainAt(advance->to_revision);
  ASSERT_TRUE(head_dom.has_value());
  DbSnapshot head = server.versioned_db().Snapshot();
  EXPECT_EQ(*head_dom, ScanActiveDomain(head.db()));
  EXPECT_NE(*head_dom, *served);
}

TEST(DomainStalenessTest, StaleProviderDoesNotChangeAnswers) {
  Database initial(Alphabet::Binary());
  ASSERT_TRUE(initial.AddRelation("R", 1, {{"0"}, {"01"}, {"010"}}).ok());
  serve::QueryServer server(std::move(initial));
  ASSERT_TRUE(server.CommitDeltas({{"R", {"0110"}, true}}).ok());
  std::unique_ptr<serve::Session> session = server.OpenSession();

  // Make the session's revision stale.
  ASSERT_TRUE(server.CommitDeltas({{"R", {"1111"}, true}}).ok());

  // Engine B against the pinned snapshot, with and without the (now stale)
  // provider: the fallback rebuild must leave every answer unchanged —
  // including the trie-guided pruned scan.
  RestrictedEvaluator with_provider(&session->snapshot().db());
  with_provider.set_domain_provider(server.incremental());
  RestrictedEvaluator without_provider(&session->snapshot().db());
  for (const char* text :
       {"exists x in adom. (R(x) & x ~1 '01')",
        "exists x in adom. (member(x, '0(0|1)*') & R(x))",
        "forall x in adom. (R(x) -> member(x, '0(0|1)*'))",
        "exists x pre adom. x ~0 '1111'"}) {
    FormulaPtr f = Q(text);
    Result<bool> a = with_provider.EvaluateSentence(f);
    Result<bool> b = without_provider.EvaluateSentence(f);
    ASSERT_TRUE(a.ok()) << text << ": " << a.status();
    ASSERT_TRUE(b.ok()) << text << ": " << b.status();
    EXPECT_EQ(*a, *b) << text;
  }
  // The pinned snapshot predates "1111", so its domain cannot contain it.
  Result<bool> unseen =
      with_provider.EvaluateSentence(Q("exists x in adom. x ~0 '1111'"));
  ASSERT_TRUE(unseen.ok()) << unseen.status();
  EXPECT_FALSE(*unseen);
}

}  // namespace
}  // namespace strq
