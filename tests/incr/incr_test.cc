// The incremental-maintenance subsystem (src/incr): delta-absorbing table
// tries, refcounted domain maintenance, (base ∪ delta ∖ retract) answer
// automata, and the patch-vs-recompile arbitration. The load-bearing
// invariant everywhere: a patched automaton is indistinguishable from a
// fresh recompile — same answers, same canonical store id, same safety
// verdict.

#include "incr/incr.h"

#include <memory>
#include <string>
#include <vector>

#include "automata/store.h"
#include "base/string_ops.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"
#include "plan/planner.h"
#include "serve/server.h"
#include "gtest/gtest.h"

namespace strq {
namespace incr {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return *std::move(r);
}

Database Fixture() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}, {"1011"}}).ok());
  return db;
}

// Contents of the server's head snapshot rebuilt as a standalone database,
// for the fresh-recompile reference evaluator.
Database HeadCopy(serve::QueryServer& server) {
  DbSnapshot snap = server.versioned_db().Snapshot();
  Database copy(snap.db().alphabet());
  for (const auto& [name, rel] : snap.db().relations()) {
    EXPECT_TRUE(copy.AddRelation(name, rel.arity(), rel.tuples()).ok());
  }
  return copy;
}

// Compare a served compile against a fresh private recompile of the same
// contents: equal tuples AND equal canonical identity in a neutral store.
void ExpectMatchesFreshRecompile(serve::Session& session,
                                 serve::QueryServer& server,
                                 const FormulaPtr& f) {
  Result<TrackAutomaton> served = session.Compile(f);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  Database fresh_db = HeadCopy(server);
  AutomataEvaluator fresh(&fresh_db);
  Result<TrackAutomaton> want = fresh.Compile(f);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  AutomatonStore neutral(true);
  EXPECT_EQ(neutral.Intern(served->dfa()).id(), neutral.Intern(want->dfa()).id());
  EXPECT_EQ(served->IsFinite(), want->IsFinite());
}

TEST(IncrTrieTest, PatchedTrieMatchesRebuildAcrossCommits) {
  serve::QueryServer server(Fixture());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x)");
  ASSERT_TRUE(session->Compile(f).ok());  // seed the base at revision 0
  ASSERT_TRUE(server
                  .CommitDeltas({TupleDelta{"R", {"111"}, true},
                                 TupleDelta{"R", {"0"}, false}})
                  .ok());
  session->Refresh();
  ExpectMatchesFreshRecompile(*session, server, f);
  Result<Relation> rows = session->Query(f);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 4 - 1 + 1
  EXPECT_GT(server.incremental()->stats().patches, 0);
}

TEST(IncrTrieTest, EmptyNetWindowReusesOldAutomaton) {
  serve::QueryServer server(Fixture());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x)");
  ASSERT_TRUE(session->Compile(f).ok());
  // Insert then delete the same tuple: two commits whose net effect on R
  // is empty. The replay window folds to nothing and the old automaton is
  // re-anchored, not patched.
  ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {"111"}, true}}).ok());
  ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {"111"}, false}}).ok());
  session->Refresh();
  ExpectMatchesFreshRecompile(*session, server, f);
  EXPECT_GT(server.incremental()->stats().unchanged_hits, 0);
}

TEST(IncrTrieTest, OpaqueCommitFallsBackToRecompile) {
  serve::QueryServer server(Fixture());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x)");
  ASSERT_TRUE(session->Compile(f).ok());
  // AddRelation through the versioned database is an opaque commit — no
  // tuple-level explanation, so the delta chain is not replayable.
  ASSERT_TRUE(server.versioned_db()
                  .AddRelation("R", 1, {{"00"}, {"10"}})
                  .ok());
  session->Refresh();
  ExpectMatchesFreshRecompile(*session, server, f);
  Result<Relation> rows = session->Query(f);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_GT(server.incremental()->stats().recompiles, 0);
}

TEST(IncrTrieTest, WideDeltaRecompilesInsteadOfPatching) {
  serve::ServerOptions opts;
  opts.incremental.max_patch_ops = 2;  // any real batch exceeds this
  serve::QueryServer server(Fixture(), opts);
  const std::shared_ptr<IncrementalIndex>& index = server.incremental();
  // Drive the trie layer directly (the answer layer would splice the bare
  // atom and never ask for the trie).
  DbSnapshot before = server.versioned_db().Snapshot();
  ASSERT_TRUE(index->RelationTrie(before.db(), "R", {0}).ok());  // seed base
  int64_t recompiles_before = index->stats().recompiles;
  int64_t patches_before = index->stats().patches;
  ASSERT_TRUE(server
                  .CommitDeltas({TupleDelta{"R", {"111"}, true},
                                 TupleDelta{"R", {"1100"}, true},
                                 TupleDelta{"R", {"0011"}, true}})
                  .ok());
  DbSnapshot after = server.versioned_db().Snapshot();
  Result<TrackAutomaton> trie = index->RelationTrie(after.db(), "R", {0});
  ASSERT_TRUE(trie.ok()) << trie.status().ToString();
  // 3 ops > max_patch_ops: rebuilt from tuples, not patched...
  EXPECT_GT(index->stats().recompiles, recompiles_before);
  EXPECT_EQ(index->stats().patches, patches_before);
  // ...and the rebuild serves exactly the relation's tuples.
  Result<std::vector<std::vector<std::string>>> rows = trie->AllTuples(100);
  ASSERT_TRUE(rows.ok());
  Result<Relation> got = Relation::Create(1, *rows);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->tuples(), after.db().Find("R")->tuples());
}

TEST(IncrAnswerTest, LinearPositiveInsertOnlyDeltaPatchesAnswer) {
  serve::QueryServer server(Fixture());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  // Single positive R occurrence on a ∪-distributive path, adom-free:
  // Q[R ∪ δ] = Q[R] ∪ Q[δ], so an insert-only commit patches the answer
  // with a delta compile instead of recompiling.
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  ASSERT_TRUE(session->Compile(f).ok());
  ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {"1111"}, true},
                                   TupleDelta{"R", {"1010"}, true}})
                  .ok());
  session->Refresh();
  int64_t answer_patches_before = server.incremental()->stats().answer_patches;
  ExpectMatchesFreshRecompile(*session, server, f);
  EXPECT_GT(server.incremental()->stats().answer_patches,
            answer_patches_before);
}

TEST(IncrAnswerTest, BareAtomPatchesDeletesToo) {
  serve::QueryServer server(Fixture());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x)");
  ASSERT_TRUE(session->Compile(f).ok());
  int64_t before = server.incremental()->stats().answer_patches;
  ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {"01"}, false},
                                   TupleDelta{"R", {"110"}, false},
                                   TupleDelta{"R", {"111"}, true}})
                  .ok());
  session->Refresh();
  ExpectMatchesFreshRecompile(*session, server, f);
  EXPECT_GT(server.incremental()->stats().answer_patches, before);
  Result<Relation> rows = session->Query(f);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(IncrAnswerTest, NonLinearAndAdomQueriesStayCorrectViaRecompile) {
  serve::QueryServer server(Fixture());
  std::unique_ptr<serve::Session> session = server.OpenSession();
  // Two R occurrences: not delta-patchable; negated R: not positive; an
  // adom-quantified sentence: not adom-free. All must fall back and still
  // be indistinguishable from a fresh recompile.
  std::vector<FormulaPtr> battery;
  battery.push_back(Q("exists y. R(y) & R(x) & x <= y"));
  battery.push_back(Q("!R(x) & x <= '111'"));
  battery.push_back(Q("exists y in adom. x <= y & last[1](x)"));
  for (const FormulaPtr& f : battery) ASSERT_TRUE(session->Compile(f).ok());
  ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {"1111"}, true},
                                   TupleDelta{"R", {"0"}, false}})
                  .ok());
  session->Refresh();
  for (const FormulaPtr& f : battery) {
    ExpectMatchesFreshRecompile(*session, server, f);
  }
}

TEST(IncrDomainTest, RefcountedDomainsMatchRecomputation) {
  serve::QueryServer server(Fixture());
  ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {"01"}, false},
                                   TupleDelta{"R", {"100"}, true}})
                  .ok());
  DbSnapshot head = server.versioned_db().Snapshot();
  const std::shared_ptr<IncrementalIndex>& index = server.incremental();
  std::optional<std::vector<std::string>> adom =
      index->ActiveDomainAt(head.revision());
  ASSERT_TRUE(adom.has_value());
  EXPECT_EQ(*adom, head.db().ActiveDomain());
  std::optional<std::vector<std::string>> closure =
      index->PrefixClosureAt(head.revision());
  ASSERT_TRUE(closure.has_value());
  EXPECT_EQ(*closure, PrefixClosure(head.db().ActiveDomain()));
  // A revision the index is not synced to must decline rather than guess.
  EXPECT_FALSE(index->ActiveDomainAt(head.revision() + 17).has_value());
}

TEST(IncrDomainTest, EngineBProviderAgreesWithDefaultRecomputation) {
  serve::QueryServer server(Fixture());
  ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {"111"}, true}}).ok());
  DbSnapshot head = server.versioned_db().Snapshot();
  std::vector<FormulaPtr> sentences;
  sentences.push_back(Q("exists x in adom. last[1](x)"));
  sentences.push_back(Q("forall x in adom. member(x, '(0|1)*')"));
  sentences.push_back(Q("exists x pre adom. !R(x) & last[1](x)"));
  RestrictedEvaluator with_provider(&head.db());
  with_provider.set_domain_provider(server.incremental());
  RestrictedEvaluator without(&head.db());
  for (const FormulaPtr& f : sentences) {
    Result<bool> a = with_provider.EvaluateSentence(f);
    Result<bool> b = without.EvaluateSentence(f);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(*a, *b);
  }
}

TEST(IncrPlannerTest, AdvisePatchUsesRecordedActuals) {
  plan::Planner planner;
  FormulaPtr f = Q("exists y. R(y) & x <= y");
  AutomatonStore::Stats cold{};  // op_hits = op_misses = 0
  // No recorded actual: only narrow deltas patch.
  EXPECT_TRUE(planner.AdvisePatch(f, 4, cold));
  EXPECT_FALSE(planner.AdvisePatch(f, 64, cold));
  EXPECT_FALSE(planner.AdvisePatch(f, 0, cold));
  // A recorded actual compile cost moves the threshold: patching is
  // advised exactly while the modeled patch cost stays under it.
  Database db = Fixture();
  planner.RecordActual(f, &db, 10000);
  EXPECT_TRUE(planner.AdvisePatch(f, 64, cold));
  ASSERT_TRUE(planner.LastActualFor(f).has_value());
  EXPECT_EQ(*planner.LastActualFor(f), 10000);
}

TEST(IncrStatsTest, CompactionReanchorsAfterManySmallCommits) {
  serve::ServerOptions opts;
  opts.incremental.compact_ratio = 0.01;  // any delta triggers a fold
  serve::QueryServer server(Fixture(), opts);
  std::unique_ptr<serve::Session> session = server.OpenSession();
  FormulaPtr f = Q("R(x)");
  ASSERT_TRUE(session->Compile(f).ok());
  for (int k = 0; k < 4; ++k) {
    std::string s = "10" + std::string(static_cast<size_t>(k + 1), '1');
    ASSERT_TRUE(server.CommitDeltas({TupleDelta{"R", {s}, true}}).ok());
    session->Refresh();
    ExpectMatchesFreshRecompile(*session, server, f);
  }
  EXPECT_GT(server.incremental()->stats().compactions, 0);
}

}  // namespace
}  // namespace incr
}  // namespace strq
