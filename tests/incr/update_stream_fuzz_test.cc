// Update-stream differential fuzz (satellite acceptance): a random
// insert/delete stream committed through the serving stack with the
// incremental index ON, cross-checked at EVERY step against a fresh
// recompile of the same contents by a private evaluator — equal answer
// languages (canonical ids in a neutral store), equal IsSafe verdicts, and
// for Engine B equal truth values with and without the index as the
// candidate-set provider. Concurrent pinned readers run against old
// snapshots throughout, so the tier-2 TSan pass exercises the commit hook,
// the dom refcounts, the answer map and the trie single-flight under
// contention while this test asserts their results.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/store.h"
#include "base/rng.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "incr/incr.h"
#include "logic/parser.h"
#include "serve/server.h"
#include "gtest/gtest.h"

namespace strq {
namespace incr {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return *std::move(r);
}

// The query battery spans every maintenance path: bare atom (patches
// inserts and deletes), linear-positive (patches insert-only windows),
// double occurrence / negation / adom quantification (recompile fallbacks,
// over patched tries).
std::vector<FormulaPtr> Battery() {
  std::vector<FormulaPtr> battery;
  battery.push_back(Q("R(x)"));
  battery.push_back(Q("exists y. R(y) & x <= y & last[1](x)"));
  battery.push_back(Q("exists y. R(y) & !(x = y) & x <= y"));
  battery.push_back(Q("exists y. R(y) & R(x) & x <= y"));
  battery.push_back(Q("!R(x) & x <= '111'"));
  battery.push_back(Q("exists y in adom. x <= y & last[1](x)"));
  return battery;
}

TEST(UpdateStreamFuzzTest, IncrementalServingIsIndistinguishableFromRecompile) {
  const uint64_t kSeed = 20260809;
  const int kSteps = 24;
  const int kMaxOpsPerStep = 4;

  Rng rng(kSeed);
  std::vector<std::string> universe = rng.DistinctStrings("01", 1, 6, 160);
  size_t pool_next = 0;
  std::vector<std::string> model;
  std::vector<Tuple> initial;
  for (int i = 0; i < 12; ++i) {
    model.push_back(universe[pool_next]);
    initial.push_back({universe[pool_next++]});
  }
  Database start(Alphabet::Binary());
  ASSERT_TRUE(start.AddRelation("R", 1, initial).ok());

  serve::QueryServer server(std::move(start));
  std::unique_ptr<serve::Session> session = server.OpenSession();
  std::vector<FormulaPtr> battery = Battery();
  std::vector<FormulaPtr> b_sentences;
  b_sentences.push_back(Q("exists x in adom. last[1](x)"));
  b_sentences.push_back(Q("forall x in adom. member(x, '(0|1)*')"));
  b_sentences.push_back(Q("exists x pre adom. !R(x)"));

  // Pinned readers: sessions opened at the INITIAL revision keep serving
  // the initial answer for the whole stream, no matter what commits land.
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  FormulaPtr bare = Q("R(x)");
  const size_t initial_size = initial.size();
  std::vector<std::unique_ptr<serve::Session>> pinned_sessions;
  for (int t = 0; t < 2; ++t) {
    // Pin on the main thread, BEFORE any commit, so the sessions really
    // hold the initial revision whatever the thread-start interleaving.
    pinned_sessions.push_back(server.OpenSession());
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      serve::Session* pinned = pinned_sessions[static_cast<size_t>(t)].get();
      while (!stop.load(std::memory_order_relaxed)) {
        Result<Relation> rows = pinned->Query(bare);
        if (!rows.ok() || rows->size() != initial_size) {
          reader_failures.fetch_add(1);
          return;
        }
        std::this_thread::yield();
      }
    });
  }

  AutomatonStore neutral(true);
  for (int s = 0; s < kSteps; ++s) {
    // One batch of effective ops: inserts draw unused strings, deletes hit
    // members of the mirror `model`, so the commit can never be a no-op.
    std::vector<TupleDelta> batch;
    int ops = 1 + static_cast<int>(rng.NextBelow(kMaxOpsPerStep));
    for (int k = 0; k < ops; ++k) {
      bool do_insert = model.empty() || rng.NextBelow(10) < 6;
      if (do_insert && pool_next < universe.size()) {
        const std::string& str = universe[pool_next++];
        model.push_back(str);
        batch.push_back(TupleDelta{"R", {str}, true});
      } else {
        size_t victim = rng.NextBelow(model.size());
        batch.push_back(TupleDelta{"R", {model[victim]}, false});
        model[victim] = model.back();
        model.pop_back();
      }
    }
    // Occasionally route the SAME net change through an opaque commit to
    // fuzz the resync path (delta chain broken, domain refcounts reseeded).
    bool opaque = (s % 7) == 5;
    if (opaque) {
      Status st = server.versioned_db().Update([&](Database& db) {
        std::vector<Tuple> tuples;
        for (const std::string& str : model) tuples.push_back({str});
        return db.AddRelation("R", 1, std::move(tuples));
      });
      ASSERT_TRUE(st.ok()) << st.ToString();
    } else {
      Result<CommitDelta> c = server.CommitDeltas(batch);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
      EXPECT_FALSE(c->opaque);
      EXPECT_EQ(c->ops.size(), batch.size());
    }
    session->Refresh();

    // Fresh-recompile reference over identical contents.
    Database fresh_db(Alphabet::Binary());
    std::vector<Tuple> tuples;
    for (const std::string& str : model) tuples.push_back({str});
    ASSERT_TRUE(fresh_db.AddRelation("R", 1, std::move(tuples)).ok());
    AutomataEvaluator fresh(&fresh_db);

    for (const FormulaPtr& f : battery) {
      Result<TrackAutomaton> served = session->Compile(f);
      Result<TrackAutomaton> want = fresh.Compile(f);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      EXPECT_EQ(neutral.Intern(served->dfa()).id(),
                neutral.Intern(want->dfa()).id())
          << "step " << s << ": answer language diverged";
      EXPECT_EQ(served->IsFinite(), want->IsFinite())
          << "step " << s << ": IsSafe verdict diverged";
    }

    // Engine B: the index as DomainProvider vs default recomputation.
    DbSnapshot head = server.versioned_db().Snapshot();
    RestrictedEvaluator with_provider(&head.db());
    with_provider.set_domain_provider(server.incremental());
    RestrictedEvaluator plain(&fresh_db);
    for (const FormulaPtr& f : b_sentences) {
      Result<bool> a = with_provider.EvaluateSentence(f);
      Result<bool> b = plain.EvaluateSentence(f);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(*a, *b) << "step " << s << ": Engine B diverged";
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);

  // The stream must actually have exercised the maintenance paths, not
  // fallen back to recompiling everything.
  Stats stats = server.incremental()->stats();
  EXPECT_GT(stats.patches, 0);
  EXPECT_GT(stats.answer_patches, 0);
  EXPECT_GT(stats.recompiles, 0);  // opaque commits + non-patchable plans
}

}  // namespace
}  // namespace incr
}  // namespace strq
