// Differential fuzzing for the lazy on-the-fly product: random open
// formulas evaluated through the early-exit modes must agree with the
// materialized pipeline on BOTH engines, and an injected deadline or state
// budget may abort a request but never change a delivered answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/rng.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "lazy/lazy.h"
#include "logic/ast.h"
#include "logic/parser.h"

namespace strq {
namespace {

// Mirrors the Engine A/B fuzzer in tests/eval/fuzz_test.cc, restricted to
// the atom set both the lazy skeleton decomposition and Engine B accept.
class FormulaFuzzer {
 public:
  explicit FormulaFuzzer(uint64_t seed) : rng_(seed) {}

  FormulaPtr Open(int depth, std::vector<std::string> free_vars) {
    return Gen(depth, free_vars);
  }

 private:
  TermPtr RandomTerm(const std::vector<std::string>& scope, int depth) {
    if (depth <= 0 || scope.empty() || rng_.NextBelow(3) == 0) {
      if (scope.empty() || rng_.NextBelow(4) == 0) {
        return TConst(rng_.NextString("01", 0, 2));
      }
      return TVar(scope[rng_.NextBelow(scope.size())]);
    }
    switch (rng_.NextBelow(3)) {
      case 0:
        return TAppend(RandomLetter(), RandomTerm(scope, depth - 1));
      case 1:
        return TPrepend(RandomLetter(), RandomTerm(scope, depth - 1));
      default:
        return TTrim(RandomLetter(), RandomTerm(scope, depth - 1));
    }
  }

  char RandomLetter() { return rng_.NextBool() ? '0' : '1'; }

  FormulaPtr Atom(const std::vector<std::string>& scope) {
    TermPtr t1 = RandomTerm(scope, 1);
    TermPtr t2 = RandomTerm(scope, 1);
    switch (rng_.NextBelow(7)) {
      case 0:
        return FPred(PredKind::kEq, {t1, t2});
      case 1:
        return FPred(PredKind::kPrefix, {t1, t2});
      case 2:
        return FPred(PredKind::kStrictPrefix, {t1, t2});
      case 3:
        return FLast(RandomLetter(), t1);
      case 4:
        return FPred(PredKind::kLexLeq, {t1, t2});
      case 5:
        return FNear(t1, rng_.NextString("01", 1, 3),
                     static_cast<int>(rng_.NextBelow(2)) + 1);
      default:
        return rng_.NextBool() ? FRelation("R", {t1})
                               : FPred(PredKind::kAdom, {t1});
    }
  }

  FormulaPtr Quantified(int depth, std::vector<std::string>& scope) {
    std::string var = "v" + std::to_string(scope.size());
    QuantRange range =
        rng_.NextBool() ? QuantRange::kAdom : QuantRange::kPrefixDom;
    scope.push_back(var);
    FormulaPtr body = Gen(depth - 1, scope);
    scope.pop_back();
    return rng_.NextBool() ? FExists(var, body, range)
                           : FForall(var, body, range);
  }

  FormulaPtr Gen(int depth, std::vector<std::string>& scope) {
    if (depth <= 0 || rng_.NextBelow(3) == 0) return Atom(scope);
    switch (rng_.NextBelow(6)) {
      case 0:
        return FNot(Gen(depth - 1, scope));
      case 1:
        return FAnd(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 2:
        return FOr(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 3:
        return FImplies(Gen(depth - 1, scope), Gen(depth - 1, scope));
      default:
        return Quantified(depth, scope);
    }
  }

  Rng rng_;
};

Database FuzzDb(uint64_t seed) {
  Database db(Alphabet::Binary());
  Rng rng(seed);
  std::vector<Tuple> tuples;
  for (const std::string& s : rng.DistinctStrings("01", 0, 3, 5)) {
    tuples.push_back({s});
  }
  Status status = db.AddRelation("R", 1, std::move(tuples));
  (void)status;
  return db;
}

int ConvLength(const std::vector<std::string>& tuple) {
  size_t len = 0;
  for (const std::string& s : tuple) len = std::max(len, s.size());
  return static_cast<int>(len);
}

bool IsBudgetError(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kResourceExhausted;
}

// 200 random open formulas: the lazy product's three modes vs the
// materialized TrackAutomaton, exact agreement required.
class LazyDifferentialFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(LazyDifferentialFuzzTest, LazyModesAgreeWithMaterialized) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  FormulaFuzzer fuzzer(seed * 7529 + 3);
  Database db = FuzzDb(seed * 104729 + 17);
  AutomataEvaluator eval(&db);
  Rng probe_rng(seed * 31 + 5);
  for (int i = 0; i < 25; ++i) {
    FormulaPtr f = fuzzer.Open(3, {"x", "y"});
    if (FreeVars(f).empty()) continue;
    Result<TrackAutomaton> rel = eval.Compile(f);
    Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
    // The eager side may exhaust the default product-state ceiling on
    // formulas the lazy side handles fine; only hard errors are bugs.
    if (!rel.ok() || !lazy.ok()) {
      EXPECT_NE(rel.status().code(), StatusCode::kInternal) << ToString(f);
      EXPECT_NE(lazy.status().code(), StatusCode::kInternal) << ToString(f);
      continue;
    }

    // Contains on random probe tuples.
    for (int p = 0; p < 4; ++p) {
      std::vector<std::string> tuple;
      for (int c = 0; c < rel->arity(); ++c) {
        tuple.push_back(probe_rng.NextString("01", 0, 4));
      }
      Result<bool> eager = rel->Contains(tuple);
      Result<bool> on_the_fly = lazy->Contains(tuple);
      ASSERT_TRUE(eager.ok() && on_the_fly.ok()) << ToString(f);
      EXPECT_EQ(*eager, *on_the_fly) << ToString(f);
    }

    // Shortest witness: nonempty iff the relation is nonempty, the witness
    // is a member, and its convolution length matches the shortlex-first
    // answer's.
    std::vector<std::vector<std::string>> first =
        rel->EnumerateTuples(rel->NumStates(), 1);
    Result<std::optional<std::vector<std::string>>> witness =
        lazy->ShortestWitness();
    ASSERT_TRUE(witness.ok()) << ToString(f) << ": " << witness.status();
    EXPECT_EQ(witness->has_value(), !first.empty()) << ToString(f);
    if (witness->has_value() && !first.empty()) {
      Result<bool> member = rel->Contains(**witness);
      ASSERT_TRUE(member.ok());
      EXPECT_TRUE(*member) << ToString(f) << " witness not in answer set";
      EXPECT_EQ(ConvLength(**witness), ConvLength(first[0]))
          << ToString(f) << " witness is not shortest";
    }

    // TopK: exact shortlex prefix agreement under a shared length cap.
    std::vector<std::vector<std::string>> eager = rel->EnumerateTuples(6, 8);
    Result<std::vector<std::vector<std::string>>> top = lazy->TopK(8, 6);
    ASSERT_TRUE(top.ok()) << ToString(f) << ": " << top.status();
    EXPECT_EQ(eager, *top) << ToString(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyDifferentialFuzzTest,
                         ::testing::Range(1, 9));

// Engine B: the candidate-restricted early-exit modes vs full restricted
// evaluation over the same candidate universe.
class RestrictedModesFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RestrictedModesFuzzTest, EarlyExitModesAgreeWithFullEvaluation) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  FormulaFuzzer fuzzer(seed * 6491 + 7);
  Database db = FuzzDb(seed * 15485863 + 29);
  RestrictedEvaluator engine_b(&db);
  std::vector<std::string> candidates = engine_b.PrefixDomCandidates();
  for (int i = 0; i < 20; ++i) {
    FormulaPtr f = fuzzer.Open(2, {"x", "y"});
    if (FreeVars(f).empty()) continue;
    Result<Relation> full = engine_b.EvaluateOnCandidates(f, candidates);
    Result<std::optional<Tuple>> witness =
        engine_b.ExistsWitnessOnCandidates(f, candidates);
    Result<std::vector<Tuple>> top =
        engine_b.TopKOnCandidates(f, candidates, 5);
    ASSERT_EQ(full.ok(), witness.ok()) << ToString(f);
    ASSERT_EQ(full.ok(), top.ok()) << ToString(f);
    if (!full.ok()) continue;
    std::set<Tuple> answers(full->tuples().begin(), full->tuples().end());
    EXPECT_EQ(witness->has_value(), !answers.empty()) << ToString(f);
    if (witness->has_value()) {
      EXPECT_TRUE(answers.count(**witness))
          << ToString(f) << " witness not in full answer set";
    }
    EXPECT_EQ(top->size(), std::min<size_t>(5, answers.size())) << ToString(f);
    for (const Tuple& t : *top) {
      EXPECT_TRUE(answers.count(t))
          << ToString(f) << " top-k tuple not in full answer set";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RestrictedModesFuzzTest,
                         ::testing::Range(1, 6));

// Budget injection: a deadline or state ceiling may abort a lazy request,
// but whenever the budgeted run RETURNS an answer it must be the oracle's
// answer — a partial/truncated result leaking through as success is the bug
// class this battery exists to catch.
class LazyBudgetFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(LazyBudgetFuzzTest, BudgetAbortsNeverCorruptAnswers) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  FormulaFuzzer fuzzer(seed * 3307 + 11);
  Database db = FuzzDb(seed * 28657 + 41);
  AutomataEvaluator eval(&db);
  Rng budget_rng(seed * 131 + 1);
  for (int i = 0; i < 20; ++i) {
    FormulaPtr f = fuzzer.Open(3, {"x", "y"});
    if (FreeVars(f).empty()) continue;
    Result<TrackAutomaton> rel = eval.Compile(f);
    Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
    if (!rel.ok() || !lazy.ok()) continue;
    std::vector<std::vector<std::string>> oracle = rel->EnumerateTuples(6, 5);

    // Tight random deadline (0–20µs): some runs expire mid-traversal.
    {
      RequestBudget budget = RequestBudget::WithTimeout(
          std::chrono::nanoseconds(budget_rng.NextBelow(20000)));
      ScopedRequestBudget scope(&budget);
      Result<std::vector<std::vector<std::string>>> top = lazy->TopK(5, 6);
      if (top.ok()) {
        EXPECT_EQ(oracle, *top)
            << ToString(f) << " deadline run returned a wrong answer";
      } else {
        EXPECT_TRUE(IsBudgetError(top.status()))
            << ToString(f) << ": " << top.status();
      }
    }

    // Tiny product-state ceiling: aborts are RESOURCE_EXHAUSTED, successes
    // (small products fitting the ceiling) are exact.
    {
      RequestBudget budget;
      budget.max_product_states =
          static_cast<int>(budget_rng.NextBelow(30)) + 1;
      ScopedRequestBudget scope(&budget);
      Result<std::optional<std::vector<std::string>>> witness =
          lazy->ShortestWitness();
      if (witness.ok()) {
        std::vector<std::vector<std::string>> first =
            rel->EnumerateTuples(rel->NumStates(), 1);
        EXPECT_EQ(witness->has_value(), !first.empty()) << ToString(f);
        if (witness->has_value()) {
          Result<bool> member = rel->Contains(**witness);
          ASSERT_TRUE(member.ok());
          EXPECT_TRUE(*member)
              << ToString(f) << " budget run returned a non-answer witness";
        }
      } else {
        EXPECT_TRUE(IsBudgetError(witness.status()))
            << ToString(f) << ": " << witness.status();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyBudgetFuzzTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace strq
