// Unit tests for the lazy on-the-fly product (src/lazy) through the Engine A
// surface: CompileLazy plus the three early-exit query modes. The eager
// Compile() pipeline is the oracle throughout — both paths must produce
// identical answers, with the lazy side creating strictly fewer joint states
// on early-exit workloads.

#include "lazy/lazy.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "base/budget.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "obs/trace.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database SmallDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1,
                             {{""},
                              {"0"},
                              {"01"},
                              {"010"},
                              {"0101"},
                              {"11"},
                              {"110"}})
                  .ok());
  return db;
}

TEST(LazyProductTest, ContainsAgreesWithMaterialized) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q("R(x) & x <= y & member(y, '01(01)*')");
  Result<TrackAutomaton> rel = eval.Compile(f);
  ASSERT_TRUE(rel.ok()) << rel.status();
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  const std::vector<std::vector<std::string>> probes = {
      {"", ""},       {"", "01"},      {"0", "01"},    {"01", "01"},
      {"01", "0101"}, {"010", "0101"}, {"11", "0101"}, {"110", "110"},
  };
  for (const auto& t : probes) {
    Result<bool> eager = rel->Contains(t);
    ASSERT_TRUE(eager.ok()) << eager.status();
    Result<bool> on_the_fly = lazy->Contains(t);
    ASSERT_TRUE(on_the_fly.ok()) << on_the_fly.status();
    EXPECT_EQ(*eager, *on_the_fly) << "(" << t[0] << "," << t[1] << ")";
  }
}

TEST(LazyProductTest, ShortestWitnessMatchesFirstEnumerated) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q("R(x) & member(x, '0(0|1)*0')");
  Result<TrackAutomaton> rel = eval.Compile(f);
  ASSERT_TRUE(rel.ok()) << rel.status();
  std::vector<std::vector<std::string>> first =
      rel->EnumerateTuples(rel->NumStates(), 1);
  ASSERT_FALSE(first.empty());
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  Result<std::optional<std::vector<std::string>>> witness =
      lazy->ShortestWitness();
  ASSERT_TRUE(witness.ok()) << witness.status();
  ASSERT_TRUE(witness->has_value());
  // Both sides search in ascending-letter order over canonical convolutions,
  // so the BFS witness is exactly the shortlex-first tuple.
  EXPECT_EQ(**witness, first[0]);
}

TEST(LazyProductTest, ShortestWitnessEmptyAnswer) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q("R(x) & member(x, '111111')");
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  Result<std::optional<std::vector<std::string>>> witness =
      lazy->ShortestWitness();
  ASSERT_TRUE(witness.ok()) << witness.status();
  EXPECT_FALSE(witness->has_value());
}

TEST(LazyProductTest, TopKMatchesEnumerateTuplesPrefix) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  // Infinite answer set (y ranges over a regular language), so the lazy and
  // materialized enumerations must agree under the same length cap.
  FormulaPtr f = Q("R(x) & member(y, '0*1*') & x <= y");
  Result<TrackAutomaton> rel = eval.Compile(f);
  ASSERT_TRUE(rel.ok()) << rel.status();
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  for (size_t k : {size_t{1}, size_t{3}, size_t{10}, size_t{25}}) {
    std::vector<std::vector<std::string>> eager = rel->EnumerateTuples(8, k);
    Result<std::vector<std::vector<std::string>>> on_the_fly =
        lazy->TopK(k, 8);
    ASSERT_TRUE(on_the_fly.ok()) << on_the_fly.status();
    EXPECT_EQ(eager, *on_the_fly) << "k=" << k;
  }
}

TEST(LazyProductTest, EarlyExitCreatesFewerStatesThanMaterialization) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  // The second disjunct alone needs ~2^5 minimized states ("fifth letter
  // from the end is 0"), but the first disjunct accepts ε — so the BFS
  // finds a witness in the start state while even the MINIMIZED eager
  // product stays large. (The eager pipeline explores still more transient
  // states before minimization.)
  FormulaPtr f =
      Q("x = '' | member(x, '(0|1)*0(0|1)(0|1)(0|1)(0|1)')");
  Result<TrackAutomaton> rel = eval.Compile(f);
  ASSERT_TRUE(rel.ok()) << rel.status();
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  Result<std::optional<std::vector<std::string>>> witness =
      lazy->ShortestWitness();
  ASSERT_TRUE(witness.ok()) << witness.status();
  ASSERT_TRUE(witness->has_value());
  EXPECT_EQ(**witness, std::vector<std::string>{""});
  EXPECT_GT(rel->NumStates(), 30);
  EXPECT_LT(lazy->states_created(), 5)
      << "witness search materialized more states than the early exit needs";
}

TEST(LazyProductTest, StateCacheIsReusedAcrossQueries) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q("R(x) & member(x, '0(0|1)*')");
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  Result<std::optional<std::vector<std::string>>> w1 =
      lazy->ShortestWitness();
  ASSERT_TRUE(w1.ok()) << w1.status();
  int64_t after_first = lazy->states_created();
  Result<std::optional<std::vector<std::string>>> w2 =
      lazy->ShortestWitness();
  ASSERT_TRUE(w2.ok()) << w2.status();
  EXPECT_EQ(*w1, *w2);
  // The second identical query walks only cached states.
  EXPECT_EQ(lazy->states_created(), after_first);
}

TEST(LazyProductTest, DeadlineInterruptsStateCreation) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q("member(x, '0(0|1)*') & member(y, '(0|1)*1') & x <= y");
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  RequestBudget budget =
      RequestBudget::WithTimeout(std::chrono::nanoseconds(-1));
  ScopedRequestBudget scope(&budget);
  Result<std::optional<std::vector<std::string>>> witness =
      lazy->ShortestWitness();
  ASSERT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(LazyProductTest, ProductStateBudgetIsEnforced) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q("member(x, '0(0|1)*') & member(y, '(0|1)*1') & x <= y");
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  RequestBudget budget;
  budget.max_product_states = 2;
  ScopedRequestBudget scope(&budget);
  Result<std::vector<std::vector<std::string>>> answers = lazy->TopK(100, 8);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST(LazyProductTest, LazyCountersMove) {
  obs::ScopedEnable tracing(true);
  obs::MetricsRegistry::Global().Reset();
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  // A cyclic language: distinct exploration paths converge on the same
  // joint signature, which is exactly what the cache-hit counter counts;
  // stopping at k answers of an infinite set is an early exit.
  FormulaPtr f = Q("member(x, '0*1*')");
  Result<lazy::LazyProduct> lazy = eval.CompileLazy(f);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  Result<std::vector<std::vector<std::string>>> top = lazy->TopK(5, 5);
  ASSERT_TRUE(top.ok()) << top.status();
  EXPECT_EQ(top->size(), 5u);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  EXPECT_GT(metrics.Get(obs::kLazyStatesCreated), 0);
  EXPECT_GT(metrics.Get(obs::kLazyEarlyExits), 0);
  EXPECT_GT(metrics.Get(obs::kLazyCacheHits), 0);
}

TEST(EvaluatorModesTest, SentencesDegenerateToTruth) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr truthy = Q("exists x in adom. R(x)");
  FormulaPtr falsy = Q("exists x in adom. (R(x) & member(x, '111111'))");
  Result<bool> holds = eval.Contains(truthy, {});
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
  Result<std::optional<std::vector<std::string>>> w1 =
      eval.ExistsWitness(truthy);
  ASSERT_TRUE(w1.ok()) << w1.status();
  ASSERT_TRUE(w1->has_value());
  EXPECT_TRUE((*w1)->empty());
  Result<std::optional<std::vector<std::string>>> w2 =
      eval.ExistsWitness(falsy);
  ASSERT_TRUE(w2.ok()) << w2.status();
  EXPECT_FALSE(w2->has_value());
  Result<std::vector<std::vector<std::string>>> top = eval.TopK(truthy, 5);
  ASSERT_TRUE(top.ok()) << top.status();
  ASSERT_EQ(top->size(), 1u);
  EXPECT_TRUE((*top)[0].empty());
}

TEST(EvaluatorModesTest, CompileLazyRejectsSentences) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  Result<lazy::LazyProduct> lazy =
      eval.CompileLazy(Q("exists x in adom. R(x)"));
  ASSERT_FALSE(lazy.ok());
  EXPECT_EQ(lazy.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvaluatorModesTest, AdviseLazyMaterializesSmallAnswers) {
  // After a full compile records a small actual size, the planner advises
  // materializing — and both routes still agree.
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q("R(x) & member(x, '01(0|1)*')");
  Result<TrackAutomaton> rel = eval.Compile(f);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_FALSE(eval.planner()->AdviseLazy(f, 1e9));
  Result<bool> has = eval.Contains(f, {"01"});
  ASSERT_TRUE(has.ok()) << has.status();
  EXPECT_TRUE(*has);
  Result<std::vector<std::vector<std::string>>> top = eval.TopK(f, 10);
  ASSERT_TRUE(top.ok()) << top.status();
  std::vector<std::vector<std::string>> eager = rel->EnumerateTuples(64, 10);
  EXPECT_EQ(*top, eager);
}

TEST(EvaluatorModesTest, SimilarityAtomThroughLazyModes) {
  Database db = SmallDb();
  AutomataEvaluator eval(&db);
  // Strings within edit distance 1 of "010" that are in R.
  FormulaPtr f = Q("R(x) & x ~1 '010'");
  Result<TrackAutomaton> rel = eval.Compile(f);
  ASSERT_TRUE(rel.ok()) << rel.status();
  Result<std::vector<std::vector<std::string>>> top = eval.TopK(f, 100);
  ASSERT_TRUE(top.ok()) << top.status();
  std::vector<std::vector<std::string>> eager = rel->EnumerateTuples(64, 100);
  EXPECT_EQ(*top, eager);
  // "010" itself, plus one-edit neighbors present in R: "01", "0101"... at
  // minimum the word itself must be an answer.
  Result<bool> self = eval.Contains(f, {"010"});
  ASSERT_TRUE(self.ok()) << self.status();
  EXPECT_TRUE(*self);
}

}  // namespace
}  // namespace strq
