#include "relational/width.h"

#include <gtest/gtest.h>

#include "eval/automata_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

TEST(WidthTest, EmptyDatabaseHasWidthZero) {
  Database db(Alphabet::Binary());
  EXPECT_EQ(AdomWidth(db), 0);
}

TEST(WidthTest, AntichainHasWidthOne) {
  Database db(Alphabet::Binary());
  // Pairwise prefix-incomparable strings.
  ASSERT_TRUE(db.AddRelation("R", 1, {{"00"}, {"01"}, {"10"}}).ok());
  EXPECT_EQ(AdomWidth(db), 1);
}

TEST(WidthTest, ChainHasFullWidth) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}, {"00"}, {"000"}, {"1"}}).ok());
  // Chain 0 ≺ 00 ≺ 000 has size 3; "1" is incomparable with it.
  EXPECT_EQ(AdomWidth(db), 3);
}

TEST(WidthTest, MixedRelations) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}}).ok());
  ASSERT_TRUE(db.AddRelation("S", 2, {{"01", "011"}}).ok());
  // 0 ≺ 01 ≺ 011.
  EXPECT_EQ(AdomWidth(db), 3);
}

TEST(WidthTest, MakeWidthOneProducesChain) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"00"}, {"01"}, {"10"}}).ok());
  ASSERT_TRUE(db.AddRelation("E", 2, {{"00", "01"}, {"01", "10"}}).ok());
  Result<WidthOneResult> w1 = MakeWidthOne(db);
  ASSERT_TRUE(w1.ok());
  // All strings are now 0^i: a single chain.
  EXPECT_EQ(AdomWidth(w1->database),
            static_cast<int>(db.ActiveDomain().size()));
  // Relation cardinalities preserved (the map is injective).
  EXPECT_EQ(w1->database.Find("R")->size(), 3u);
  EXPECT_EQ(w1->database.Find("E")->size(), 2u);
}

TEST(WidthTest, WidthOnePreservesSCIsomorphism) {
  // A query using only SC-relations (no string structure) must agree on the
  // original and the width-1 copy — the paper's isomorphism remark.
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("E", 2, {{"00", "01"}, {"01", "10"}}).ok());
  Result<WidthOneResult> w1 = MakeWidthOne(db);
  ASSERT_TRUE(w1.ok());
  Result<FormulaPtr> q = ParseFormula(
      "exists x in adom. exists y in adom. exists z in adom. "
      "E(x, y) & E(y, z)");
  ASSERT_TRUE(q.ok());
  AutomataEvaluator original(&db);
  AutomataEvaluator transformed(&w1->database);
  Result<bool> a = original.EvaluateSentence(*q);
  Result<bool> b = transformed.EvaluateSentence(*q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(*a);
}

TEST(WidthTest, MappingIsReturned) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"11"}, {"0"}}).ok());
  Result<WidthOneResult> w1 = MakeWidthOne(db);
  ASSERT_TRUE(w1.ok());
  // Sorted adom: "0", "11" -> 0^1, 0^2.
  EXPECT_EQ(w1->mapping.at("0"), "0");
  EXPECT_EQ(w1->mapping.at("11"), "00");
}

TEST(WidthTest, NeedsZeroInAlphabet) {
  Result<Alphabet> ab = Alphabet::Create("ab");
  ASSERT_TRUE(ab.ok());
  Database db(*ab);
  ASSERT_TRUE(db.AddRelation("R", 1, {{"a"}}).ok());
  EXPECT_FALSE(MakeWidthOne(db).ok());
}

}  // namespace
}  // namespace strq
