#include "relational/database.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

TEST(RelationTest, CreateSortsAndDedups) {
  Result<Relation> r = Relation::Create(
      2, {{"b", "a"}, {"a", "b"}, {"b", "a"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->tuples()[0], (Tuple{"a", "b"}));
  EXPECT_EQ(r->tuples()[1], (Tuple{"b", "a"}));
}

TEST(RelationTest, ArityValidation) {
  EXPECT_FALSE(Relation::Create(2, {{"a"}}).ok());
  EXPECT_FALSE(Relation::Create(-1, {}).ok());
  EXPECT_TRUE(Relation::Create(0, {{}}).ok());  // nullary "true"
}

TEST(RelationTest, Contains) {
  Result<Relation> r = Relation::Create(1, {{"a"}, {"ab"}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains({"a"}));
  EXPECT_TRUE(r->Contains({"ab"}));
  EXPECT_FALSE(r->Contains({"b"}));
}

TEST(RelationTest, ActiveDomain) {
  Result<Relation> r = Relation::Create(2, {{"a", "b"}, {"b", "c"}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ActiveDomain(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DatabaseTest, AddAndFind) {
  Database db(Alphabet::Abc());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"a"}, {"bc"}}).ok());
  const Relation* r = db.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(db.Find("S"), nullptr);
}

TEST(DatabaseTest, ReplacingRelation) {
  Database db(Alphabet::Abc());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"a"}}).ok());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"b"}, {"c"}}).ok());
  EXPECT_EQ(db.Find("R")->size(), 2u);
}

TEST(DatabaseTest, AlphabetEnforced) {
  Database db(Alphabet::Binary());
  EXPECT_FALSE(db.AddRelation("R", 1, {{"abc"}}).ok());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0101"}}).ok());
}

TEST(DatabaseTest, ActiveDomainAcrossRelations) {
  Database db(Alphabet::Abc());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"a"}, {"ab"}}).ok());
  ASSERT_TRUE(db.AddRelation("S", 2, {{"ab", "c"}}).ok());
  EXPECT_EQ(db.ActiveDomain(), (std::vector<std::string>{"a", "ab", "c"}));
  EXPECT_EQ(db.MaxAdomLength(), 2u);
}

TEST(DatabaseTest, EmptyDatabase) {
  Database db(Alphabet::Abc());
  EXPECT_TRUE(db.ActiveDomain().empty());
  EXPECT_EQ(db.MaxAdomLength(), 0u);
}

}  // namespace
}  // namespace strq
