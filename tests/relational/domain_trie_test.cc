#include "relational/domain_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "base/alphabet.h"
#include "mta/atom_cache.h"

namespace strq {
namespace {

std::shared_ptr<const DomainTrie> MustBuild(
    const std::vector<std::string>& sorted) {
  Result<std::shared_ptr<const DomainTrie>> trie =
      DomainTrie::Build(Alphabet::Binary(), sorted);
  EXPECT_TRUE(trie.ok()) << trie.status();
  return *trie;
}

TEST(DomainTrieTest, BuildValidatesInput) {
  Alphabet alphabet = Alphabet::Binary();
  EXPECT_TRUE(DomainTrie::Build(alphabet, {}).ok());
  EXPECT_TRUE(DomainTrie::Build(alphabet, {"", "0", "01"}).ok());
  // Unsorted.
  EXPECT_FALSE(DomainTrie::Build(alphabet, {"1", "0"}).ok());
  // Duplicate.
  EXPECT_FALSE(DomainTrie::Build(alphabet, {"0", "0"}).ok());
  // Foreign character.
  EXPECT_FALSE(DomainTrie::Build(alphabet, {"0", "2"}).ok());
}

TEST(DomainTrieTest, ContainsExactlyStoredStrings) {
  std::vector<std::string> stored = {"", "0", "00", "010", "1", "110"};
  std::shared_ptr<const DomainTrie> trie = MustBuild(stored);
  EXPECT_EQ(trie->size(), static_cast<int64_t>(stored.size()));
  for (const std::string& s : stored) {
    EXPECT_TRUE(trie->Contains(s)) << s;
  }
  for (const std::string& s : {"01", "11", "0101", "2", "10"}) {
    EXPECT_FALSE(trie->Contains(s)) << s;
  }
}

TEST(DomainTrieTest, NoGuardsYieldsAllStringsSorted) {
  std::vector<std::string> stored = {"", "0", "01", "010", "11"};
  std::shared_ptr<const DomainTrie> trie = MustBuild(stored);
  EXPECT_EQ(trie->Matching({}, nullptr), stored);
}

TEST(DomainTrieTest, SingleGuardMatchesBruteForceFilter) {
  Alphabet alphabet = Alphabet::Binary();
  std::vector<std::string> stored = {"",    "0",   "00",  "001", "01",
                                     "010", "011", "1",   "10",  "110"};
  std::shared_ptr<const DomainTrie> trie = MustBuild(stored);
  AtomCache cache(alphabet);
  Result<DfaRef> guard =
      cache.CompiledPattern("0(0|1)*", PatternSyntax::kRegex);
  ASSERT_TRUE(guard.ok()) << guard.status();
  std::vector<std::string> expected;
  for (const std::string& s : stored) {
    if ((*guard)->AcceptsString(alphabet, s)) expected.push_back(s);
  }
  DomainTrie::MatchStats stats;
  std::vector<std::string> got = trie->Matching({&**guard}, &stats);
  EXPECT_EQ(got, expected);
  EXPECT_GT(stats.nodes_visited, 0);
  // The 1-rooted subtree is dead in the guard and must be cut, skipping its
  // three stored strings without visiting them.
  EXPECT_GT(stats.subtrees_pruned, 0);
  EXPECT_EQ(stats.strings_pruned, 3);
}

TEST(DomainTrieTest, MultipleGuardsIntersect) {
  Alphabet alphabet = Alphabet::Binary();
  std::vector<std::string> stored = {"",    "0",   "00",  "001", "01",
                                     "010", "011", "1",   "10",  "110"};
  std::shared_ptr<const DomainTrie> trie = MustBuild(stored);
  AtomCache cache(alphabet);
  Result<DfaRef> starts0 =
      cache.CompiledPattern("0(0|1)*", PatternSyntax::kRegex);
  ASSERT_TRUE(starts0.ok()) << starts0.status();
  Result<DfaRef> ends1 =
      cache.CompiledPattern("(0|1)*1", PatternSyntax::kRegex);
  ASSERT_TRUE(ends1.ok()) << ends1.status();
  std::vector<std::string> expected;
  for (const std::string& s : stored) {
    if ((*starts0)->AcceptsString(alphabet, s) &&
        (*ends1)->AcceptsString(alphabet, s)) {
      expected.push_back(s);
    }
  }
  EXPECT_EQ(trie->Matching({&**starts0, &**ends1}, nullptr), expected);
  EXPECT_EQ(expected, (std::vector<std::string>{"001", "01", "011"}));
}

TEST(DomainTrieTest, LevenshteinGuardPrunesNeighborhoodScan) {
  // The similarity workload's shape: a ~k guard over the domain trie must
  // return exactly the strings within distance k, pruning everything else.
  Alphabet alphabet = Alphabet::Binary();
  std::vector<std::string> stored;
  for (int v = 0; v < 32; ++v) {
    std::string s;
    for (int b = 4; b >= 0; --b) s += ((v >> b) & 1) ? '1' : '0';
    stored.push_back(s);
  }
  std::sort(stored.begin(), stored.end());
  std::shared_ptr<const DomainTrie> trie = MustBuild(stored);
  AtomCache cache(alphabet);
  Result<DfaRef> near = cache.CompiledNear("01010", 1);
  ASSERT_TRUE(near.ok()) << near.status();
  DomainTrie::MatchStats stats;
  std::vector<std::string> got = trie->Matching({&**near}, &stats);
  // 01010 itself plus its five 1-substitution neighbors (insert/delete
  // neighbors have length 4 or 6 and are not stored).
  EXPECT_EQ(got.size(), 6u);
  EXPECT_TRUE(std::find(got.begin(), got.end(), "01010") != got.end());
  EXPECT_GT(stats.strings_pruned, 0);
}

TEST(DomainTrieTest, DeadGuardPrunesEverythingAtRoot) {
  Alphabet alphabet = Alphabet::Binary();
  std::shared_ptr<const DomainTrie> trie =
      MustBuild({"0", "00", "01", "1"});
  AtomCache cache(alphabet);
  // No stored string is 6 long; the guard's live set excludes every node
  // reachable from the root within the trie's depth.
  Result<DfaRef> deep = cache.CompiledPattern("000000", PatternSyntax::kRegex);
  ASSERT_TRUE(deep.ok()) << deep.status();
  DomainTrie::MatchStats stats;
  EXPECT_TRUE(trie->Matching({&**deep}, &stats).empty());
}

}  // namespace
}  // namespace strq
