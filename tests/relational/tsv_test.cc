#include "relational/tsv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();

TEST(TsvTest, ReadBasicRelation) {
  std::istringstream in("0\t01\n110\t1\n");
  Result<Relation> rel = ReadTsvRelation(in, kBin);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->arity(), 2);
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_TRUE(rel->Contains({"0", "01"}));
  EXPECT_TRUE(rel->Contains({"110", "1"}));
}

TEST(TsvTest, EmptyFieldsAreEpsilon) {
  std::istringstream in("\t01\n0\t\n");
  Result<Relation> rel = ReadTsvRelation(in, kBin);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel->Contains({"", "01"}));
  EXPECT_TRUE(rel->Contains({"0", ""}));
}

TEST(TsvTest, CommentsBlanksAndCrlf) {
  std::istringstream in("# header comment\n\n01\r\n# mid\n10\n");
  Result<Relation> rel = ReadTsvRelation(in, kBin);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->arity(), 1);
  EXPECT_EQ(rel->size(), 2u);
}

TEST(TsvTest, RejectsRaggedRows) {
  std::istringstream in("0\t1\n0\n");
  Result<Relation> rel = ReadTsvRelation(in, kBin);
  ASSERT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find("line 2"), std::string::npos);
}

TEST(TsvTest, RejectsForeignCharacters) {
  std::istringstream in("0\n2\n");
  Result<Relation> rel = ReadTsvRelation(in, kBin);
  ASSERT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find("line 2"), std::string::npos);
}

TEST(TsvTest, RejectsEmptyInput) {
  std::istringstream in("# only comments\n");
  EXPECT_FALSE(ReadTsvRelation(in, kBin).ok());
}

TEST(TsvTest, WriteRoundTrip) {
  Result<Relation> rel =
      Relation::Create(2, {{"0", ""}, {"01", "110"}, {"", "1"}});
  ASSERT_TRUE(rel.ok());
  std::ostringstream out;
  WriteTsvRelation(*rel, out);
  std::istringstream in(out.str());
  Result<Relation> back = ReadTsvRelation(in, kBin);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == *rel);
}

TEST(TsvTest, FileLoadAndSave) {
  std::string path = ::testing::TempDir() + "/strq_tsv_test.tsv";
  {
    std::ofstream out(path);
    out << "0\t01\n110\t1\n";
  }
  Database db(kBin);
  ASSERT_TRUE(LoadTsvRelation(db, "S", path).ok());
  ASSERT_NE(db.Find("S"), nullptr);
  EXPECT_EQ(db.Find("S")->size(), 2u);

  std::string out_path = ::testing::TempDir() + "/strq_tsv_out.tsv";
  ASSERT_TRUE(SaveTsvRelation(db, "S", out_path).ok());
  Database db2(kBin);
  ASSERT_TRUE(LoadTsvRelation(db2, "S", out_path).ok());
  EXPECT_TRUE(*db.Find("S") == *db2.Find("S"));
  std::remove(path.c_str());
  std::remove(out_path.c_str());
}

TEST(TsvTest, LoadMissingFile) {
  Database db(kBin);
  EXPECT_FALSE(LoadTsvRelation(db, "S", "/nonexistent/nope.tsv").ok());
  EXPECT_FALSE(SaveTsvRelation(db, "Missing", "/tmp/x.tsv").ok());
}

}  // namespace
}  // namespace strq
