#include "relational/snapshot.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace strq {
namespace {

TEST(DbSnapshotTest, SnapshotIsImmutableAcrossCommits) {
  VersionedDatabase db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}}).ok());
  DbSnapshot before = db.Snapshot();
  int64_t rev_before = before.revision();
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}, {"1"}}).ok());
  // The pinned view still shows the old contents and revision.
  EXPECT_EQ(before.db().Find("R")->size(), 1u);
  EXPECT_EQ(before.revision(), rev_before);
  // A fresh snapshot sees the commit, at a strictly newer revision.
  DbSnapshot after = db.Snapshot();
  EXPECT_EQ(after.db().Find("R")->size(), 2u);
  EXPECT_GT(after.revision(), rev_before);
}

TEST(DbSnapshotTest, PinsKeepRevisionsLiveUntilLastCopyDies) {
  VersionedDatabase db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}}).ok());
  int64_t old_rev;
  {
    DbSnapshot pin = db.Snapshot();
    DbSnapshot copy = pin;  // second pin on the same revision
    old_rev = pin.revision();
    ASSERT_TRUE(db.AddRelation("R", 1, {{"1"}}).ok());
    EXPECT_TRUE(db.IsLive(old_rev));
    EXPECT_EQ(db.pinned_revisions(), 1u);
    // Dropping one copy is not enough; the revision stays pinned.
    copy = DbSnapshot();
    EXPECT_TRUE(db.IsLive(old_rev));
  }
  EXPECT_FALSE(db.IsLive(old_rev));
  EXPECT_EQ(db.pinned_revisions(), 0u);
  // The head is always live, pinned or not.
  EXPECT_TRUE(db.IsLive(db.head_revision()));
}

TEST(DbSnapshotTest, LiveRevisionsListsHeadAndPins) {
  VersionedDatabase db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}}).ok());
  DbSnapshot pin = db.Snapshot();
  ASSERT_TRUE(db.AddRelation("R", 1, {{"1"}}).ok());
  std::vector<int64_t> live = db.LiveRevisions();
  EXPECT_EQ(live.size(), 2u);
  EXPECT_NE(std::find(live.begin(), live.end(), pin.revision()), live.end());
  EXPECT_NE(std::find(live.begin(), live.end(), db.head_revision()),
            live.end());
}

TEST(DbSnapshotTest, SnapshotOutlivesVersionedDatabase) {
  DbSnapshot survivor;
  {
    VersionedDatabase db(Alphabet::Binary());
    ASSERT_TRUE(db.AddRelation("R", 1, {{"01"}}).ok());
    survivor = db.Snapshot();
  }
  // The pin token's unpin runs against a table the snapshot co-owns; no
  // dangling reference, and the payload stays readable.
  EXPECT_EQ(survivor.db().Find("R")->size(), 1u);
  survivor = DbSnapshot();  // the unpin itself must also be safe
}

TEST(DbSnapshotTest, FailedUpdatePublishesNothing) {
  VersionedDatabase db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}}).ok());
  int64_t rev = db.head_revision();
  Status s = db.Update([](Database& d) {
    // Mutate, then fail: the mutation must be discarded with the copy.
    (void)d.AddRelation("S", 1, {{"1"}});
    return InvalidArgumentError("abort this commit");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(db.head_revision(), rev);
  EXPECT_EQ(db.Snapshot().db().Find("S"), nullptr);
}

TEST(DbSnapshotTest, RevisionsNeverRepeatAcrossCommits) {
  VersionedDatabase db(Alphabet::Binary());
  std::vector<int64_t> seen;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.AddRelation("R", 1, {{i % 2 ? "1" : "0"}}).ok());
    seen.push_back(db.head_revision());
  }
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1]);
  }
}

TEST(DbSnapshotTest, ConcurrentReadersAndWritersSeeConsistentStates) {
  VersionedDatabase db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}}).ok());
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (int k = 2; k < 60; ++k) {
      std::vector<Tuple> tuples;
      for (int j = 0; j < k; ++j) {
        tuples.push_back({std::string(static_cast<size_t>(j) + 1, '0')});
      }
      ASSERT_TRUE(db.AddRelation("R", 1, std::move(tuples)).ok());
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        DbSnapshot snap = db.Snapshot();
        // Within one snapshot, repeated reads are identical (no torn view).
        size_t first = snap.db().Find("R")->size();
        for (int probe = 0; probe < 3; ++probe) {
          if (snap.db().Find("R")->size() != first) torn.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(db.Snapshot().db().Find("R")->size(), 59u);
}

}  // namespace
}  // namespace strq
