#include "logic/parser.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

FormulaPtr MustParse(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

TEST(ParserTest, Atoms) {
  EXPECT_EQ(MustParse("x = y")->pred, PredKind::kEq);
  EXPECT_EQ(MustParse("x <= y")->pred, PredKind::kPrefix);
  EXPECT_EQ(MustParse("x < y")->pred, PredKind::kStrictPrefix);
  EXPECT_EQ(MustParse("step(x, y)")->pred, PredKind::kOneStep);
  EXPECT_EQ(MustParse("eqlen(x, y)")->pred, PredKind::kEqLen);
  EXPECT_EQ(MustParse("leqlen(x, y)")->pred, PredKind::kLeqLen);
  EXPECT_EQ(MustParse("lexleq(x, y)")->pred, PredKind::kLexLeq);
  EXPECT_EQ(MustParse("adom(x)")->pred, PredKind::kAdom);
}

TEST(ParserTest, LastPredicate) {
  FormulaPtr f = MustParse("last[a](x)");
  EXPECT_EQ(f->pred, PredKind::kLast);
  EXPECT_EQ(f->letter, 'a');
}

TEST(ParserTest, PatternPredicates) {
  FormulaPtr like = MustParse("like(x, 'ab%')");
  EXPECT_EQ(like->pred, PredKind::kLike);
  EXPECT_EQ(like->pattern, "ab%");
  EXPECT_EQ(like->syntax, PatternSyntax::kLikePattern);

  FormulaPtr member = MustParse("member(x, '(0|1)*')");
  EXPECT_EQ(member->pred, PredKind::kMember);
  EXPECT_EQ(member->syntax, PatternSyntax::kRegex);

  FormulaPtr similar = MustParse("member(x, '%11%', similar)");
  EXPECT_EQ(similar->syntax, PatternSyntax::kSimilar);

  FormulaPtr sfx = MustParse("suffixin(x, y, '1*')");
  EXPECT_EQ(sfx->pred, PredKind::kSuffixIn);
  EXPECT_EQ(sfx->args.size(), 2u);
}

TEST(ParserTest, LiteralEscapes) {
  FormulaPtr f = MustParse("x = 'a\\'b'");
  EXPECT_EQ(f->args[1]->text, "a'b");
  FormulaPtr empty = MustParse("x = ''");
  EXPECT_EQ(empty->args[1]->text, "");
}

TEST(ParserTest, Terms) {
  FormulaPtr f = MustParse("append[a](x) = prepend[b](y)");
  EXPECT_EQ(f->args[0]->kind, TermKind::kAppend);
  EXPECT_EQ(f->args[0]->letter, 'a');
  EXPECT_EQ(f->args[1]->kind, TermKind::kPrepend);

  FormulaPtr g = MustParse("trim[a](x) = lcp(y, z)");
  EXPECT_EQ(g->args[0]->kind, TermKind::kTrim);
  EXPECT_EQ(g->args[1]->kind, TermKind::kLcp);

  FormulaPtr h = MustParse("concat(x, y) = z");
  EXPECT_EQ(h->args[0]->kind, TermKind::kConcat);
}

TEST(ParserTest, RelationAtoms) {
  FormulaPtr f = MustParse("Employee(x, 'smith')");
  EXPECT_EQ(f->kind, FormulaKind::kRelation);
  EXPECT_EQ(f->relation, "Employee");
  EXPECT_EQ(f->args.size(), 2u);
  // Nullary relation atoms parse too.
  FormulaPtr g = MustParse("Flag()");
  EXPECT_EQ(g->args.size(), 0u);
}

TEST(ParserTest, ConnectivePrecedence) {
  // & binds tighter than |, which binds tighter than ->.
  FormulaPtr f = MustParse("x = y & y = z | x = z -> x = x");
  EXPECT_EQ(f->kind, FormulaKind::kImplies);
  EXPECT_EQ(f->left->kind, FormulaKind::kOr);
  EXPECT_EQ(f->left->left->kind, FormulaKind::kAnd);
}

TEST(ParserTest, ImplicationRightAssociative) {
  FormulaPtr f = MustParse("x = x -> y = y -> z = z");
  EXPECT_EQ(f->kind, FormulaKind::kImplies);
  EXPECT_EQ(f->right->kind, FormulaKind::kImplies);
}

TEST(ParserTest, QuantifierScopesRight) {
  FormulaPtr f = MustParse("exists x. R(x) & x = y");
  EXPECT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_EQ(f->left->kind, FormulaKind::kAnd);
}

TEST(ParserTest, QuantifierRanges) {
  EXPECT_EQ(MustParse("exists x. true")->range, QuantRange::kAll);
  EXPECT_EQ(MustParse("exists x in adom. true")->range, QuantRange::kAdom);
  EXPECT_EQ(MustParse("exists x pre adom. true")->range,
            QuantRange::kPrefixDom);
  EXPECT_EQ(MustParse("forall x len adom. true")->range, QuantRange::kLenDom);
}

TEST(ParserTest, PaperExampleQuery) {
  // The Section 2 example: a string in R ending with "10".
  FormulaPtr f = MustParse(
      "exists x. R(x) & last[b](x) & "
      "(exists y. step(y, x) & last[a](y) & !(exists z. step(y,z) & "
      "step(z,x)))");
  EXPECT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_TRUE(FreeVars(f).empty());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("x =").ok());
  EXPECT_FALSE(ParseFormula("exists . true").ok());
  EXPECT_FALSE(ParseFormula("exists x true").ok());
  EXPECT_FALSE(ParseFormula("x = y &").ok());
  EXPECT_FALSE(ParseFormula("(x = y").ok());
  EXPECT_FALSE(ParseFormula("last[ab](x)").ok());
  EXPECT_FALSE(ParseFormula("step(x)").ok());
  EXPECT_FALSE(ParseFormula("x = 'unterminated").ok());
  EXPECT_FALSE(ParseFormula("member(x)").ok());
  EXPECT_FALSE(ParseFormula("x - y").ok());
  EXPECT_FALSE(ParseFormula("").ok());
}

TEST(ParserTest, ParseTermStandalone) {
  Result<TermPtr> t = ParseTerm("lcp(append[a](x), 'ab')");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->kind, TermKind::kLcp);
  EXPECT_EQ((*t)->arg0->kind, TermKind::kAppend);
  EXPECT_EQ((*t)->arg1->kind, TermKind::kConst);
}

// Round-trip: ToString output re-parses to a formula with identical
// rendering (fixed point after one round).
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrint) {
  FormulaPtr f = MustParse(GetParam());
  std::string printed = ToString(f);
  FormulaPtr g = MustParse(printed);
  EXPECT_EQ(printed, ToString(g)) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Battery, RoundTripTest,
    ::testing::Values(
        "x = y", "x <= y & y < z", "exists x. R(x) & last[a](x)",
        "forall x in adom. exists y pre adom. x <= y",
        "like(x, 'a%_b')", "member(x, '(0|1)*11', regex)",
        "suffixin(x, y, '1*', regex)", "!(x = y) | x < z",
        "append[a](x) = prepend[b](trim[c](y))",
        "lcp(x, y) = '' -> eqlen(x, y)",
        "exists x len adom. member(x, '%', similar)",
        "x = 'it\\'s'"));

}  // namespace
}  // namespace strq
