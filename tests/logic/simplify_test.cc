#include "logic/simplify.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

std::string S(const std::string& input) { return ToString(Simplify(Q(input))); }

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(S("'ab' = 'ab'"), "true");
  EXPECT_EQ(S("'a' = 'b'"), "false");
  EXPECT_EQ(S("'a' <= 'ab'"), "true");
  EXPECT_EQ(S("'ab' < 'ab'"), "false");
  EXPECT_EQ(S("step('a', 'ab')"), "true");
  EXPECT_EQ(S("last[b]('ab')"), "true");
  EXPECT_EQ(S("eqlen('ab', 'cd')"), "true");
  EXPECT_EQ(S("leqlen('abc', 'ab')"), "false");
}

TEST(SimplifyTest, GroundTermFolding) {
  EXPECT_EQ(S("append[b]('a') = 'ab'"), "true");
  EXPECT_EQ(S("prepend[b]('a') = 'ba'"), "true");
  EXPECT_EQ(S("trim[a]('ab') = 'b'"), "true");
  EXPECT_EQ(S("lcp('abc', 'abd') = 'ab'"), "true");
  EXPECT_EQ(S("insert[c]('a', 'ab') = 'acb'"), "true");
  EXPECT_EQ(S("concat('a', 'b') = 'ab'"), "true");
  // Partial folding inside atoms with variables.
  EXPECT_EQ(S("x = append[b]('a')"), "x = 'ab'");
}

TEST(SimplifyTest, ConnectiveLaws) {
  EXPECT_EQ(S("x = y & 'a' = 'a'"), "x = y");
  EXPECT_EQ(S("x = y & 'a' = 'b'"), "false");
  EXPECT_EQ(S("x = y | 'a' = 'a'"), "true");
  EXPECT_EQ(S("x = y | 'a' = 'b'"), "x = y");
  EXPECT_EQ(S("!('a' = 'a')"), "false");
  EXPECT_EQ(S("!(!(x = y))"), "x = y");
  EXPECT_EQ(S("'a' = 'b' -> x = y"), "true");
  EXPECT_EQ(S("'a' = 'a' -> x = y"), "x = y");
  EXPECT_EQ(S("x = y -> 'a' = 'b'"), "!(x = y)");
  EXPECT_EQ(S("x = y <-> 'a' = 'a'"), "x = y");
  EXPECT_EQ(S("x = y & x = y"), "x = y");
  EXPECT_EQ(S("x = y -> x = y"), "true");
}

TEST(SimplifyTest, QuantifierLaws) {
  // Plain quantifiers over Σ* with constant/unused bodies collapse.
  EXPECT_EQ(S("exists x. 'a' = 'a'"), "true");
  EXPECT_EQ(S("forall x. 'a' = 'b'"), "false");
  EXPECT_EQ(S("exists x. y = y"), "y = y");
  // Restricted ranges with database-dependent emptiness survive.
  EXPECT_NE(S("exists x in adom. 'a' = 'a'"), "true");
  EXPECT_NE(S("exists x pre adom. 'a' = 'a'"), "true");
  // The length range always contains ε, so it may collapse.
  EXPECT_EQ(S("exists x len adom. 'a' = 'a'"), "true");
}

TEST(SimplifyTest, LeavesDatabaseAtomsAlone) {
  EXPECT_EQ(S("R('ab')"), "R('ab')");
  EXPECT_EQ(S("adom('ab')"), "adom('ab')");
  EXPECT_EQ(S("like('ab', 'a%')"), "like('ab', 'a%')");
}

// Differential check: simplification preserves truth on random sentences
// (both engines, random databases).
TEST(SimplifyTest, PreservesSemanticsOnBatteries) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  AutomataEvaluator engine(&db);
  const std::vector<std::string> battery = {
      "exists x. R(x) & ('0' = '0' | last[1](x)) & append[1]('0') = '01'",
      "forall x in adom. (R(x) & true) -> (x <= x & !false)",
      "exists x. (x = append[1]('1') | '0' = '1') & R(trim[1](x))",
      "exists x in adom. exists y in adom. !(!(x <= y)) & lcp('01','00') = '0'",
  };
  for (const std::string& q : battery) {
    FormulaPtr original = Q(q);
    FormulaPtr simplified = Simplify(original);
    Result<bool> a = engine.EvaluateSentence(original);
    Result<bool> b = engine.EvaluateSentence(simplified);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status();
    ASSERT_TRUE(b.ok()) << ToString(simplified) << ": " << b.status();
    EXPECT_EQ(*a, *b) << q << "  simplified to  " << ToString(simplified);
    EXPECT_LE(FormulaSize(simplified), FormulaSize(original)) << q;
  }
}

TEST(SimplifyTest, IdempotentOnItsOutput) {
  for (const std::string& q : {
           "exists x. R(x) & ('a' = 'a' | last[1](x))",
           "forall x. !(!(x = x))",
           "x = y & (true -> y = x)",
       }) {
    FormulaPtr once = Simplify(Q(q));
    FormulaPtr twice = Simplify(once);
    EXPECT_EQ(ToString(once), ToString(twice)) << q;
  }
}

}  // namespace
}  // namespace strq
