#include "logic/signature.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();

FormulaPtr MustParse(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

TEST(SignatureTest, InclusionDiagram) {
  // Figure 1 of the paper.
  EXPECT_TRUE(StructureIncludes(StructureId::kSLeft, StructureId::kS));
  EXPECT_TRUE(StructureIncludes(StructureId::kSReg, StructureId::kS));
  EXPECT_TRUE(StructureIncludes(StructureId::kSLen, StructureId::kSLeft));
  EXPECT_TRUE(StructureIncludes(StructureId::kSLen, StructureId::kSReg));
  EXPECT_TRUE(StructureIncludes(StructureId::kConcat, StructureId::kSLen));
  // S_left and S_reg are incomparable.
  EXPECT_FALSE(StructureIncludes(StructureId::kSLeft, StructureId::kSReg));
  EXPECT_FALSE(StructureIncludes(StructureId::kSReg, StructureId::kSLeft));
  EXPECT_FALSE(StructureIncludes(StructureId::kS, StructureId::kSLen));
}

TEST(SignatureTest, BasicSFormulas) {
  FormulaPtr f = MustParse("exists y. x <= y & last[0](y)");
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kS, kBin).ok());
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSLen, kBin).ok());
}

TEST(SignatureTest, LexLeqAndLcpInS) {
  // Both are definable over S (Section 4 / quantifier elimination set).
  EXPECT_TRUE(CheckInLanguage(MustParse("lexleq(x, y)"), StructureId::kS,
                              kBin)
                  .ok());
  EXPECT_TRUE(CheckInLanguage(MustParse("lcp(x, y) = z"), StructureId::kS,
                              kBin)
                  .ok());
}

TEST(SignatureTest, EqLenNeedsSLen) {
  FormulaPtr f = MustParse("eqlen(x, y)");
  Status s = CheckInLanguage(f, StructureId::kS, kBin);
  EXPECT_EQ(s.code(), StatusCode::kNotInLanguage);
  EXPECT_EQ(CheckInLanguage(f, StructureId::kSReg, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_EQ(CheckInLanguage(f, StructureId::kSLeft, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSLen, kBin).ok());
}

TEST(SignatureTest, PrependNeedsSLeft) {
  FormulaPtr f = MustParse("prepend[0](x) = y");
  EXPECT_EQ(CheckInLanguage(f, StructureId::kS, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_EQ(CheckInLanguage(f, StructureId::kSReg, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSLeft, kBin).ok());
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSLen, kBin).ok());
}

TEST(SignatureTest, TrimNeedsSLeft) {
  FormulaPtr f = MustParse("trim[1](x) = y");
  EXPECT_EQ(CheckInLanguage(f, StructureId::kS, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSLeft, kBin).ok());
}

TEST(SignatureTest, StarFreePatternsAllowedInS) {
  // LIKE patterns are star-free, always in S (Section 4).
  EXPECT_TRUE(CheckInLanguage(MustParse("like(x, '0%1')"), StructureId::kS,
                              kBin)
                  .ok());
  // Star-free regex allowed in S.
  EXPECT_TRUE(CheckInLanguage(MustParse("member(x, '0*1')"), StructureId::kS,
                              kBin)
                  .ok());
  EXPECT_TRUE(CheckInLanguage(MustParse("suffixin(x, y, '1*')"),
                              StructureId::kS, kBin)
                  .ok());
}

TEST(SignatureTest, NonStarFreePatternsNeedSReg) {
  // (00)* is the canonical non-star-free language.
  FormulaPtr f = MustParse("member(x, '(00)*')");
  EXPECT_EQ(CheckInLanguage(f, StructureId::kS, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_EQ(CheckInLanguage(f, StructureId::kSLeft, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSReg, kBin).ok());
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSLen, kBin).ok());
}

TEST(SignatureTest, ConcatOnlyInConcat) {
  FormulaPtr f = MustParse("concat(x, y) = z");
  for (StructureId s : {StructureId::kS, StructureId::kSLeft,
                        StructureId::kSReg, StructureId::kSLen}) {
    EXPECT_EQ(CheckInLanguage(f, s, kBin).code(), StatusCode::kNotInLanguage)
        << StructureName(s);
  }
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kConcat, kBin).ok());
}

TEST(SignatureTest, LenDomQuantifierNeedsSLen) {
  FormulaPtr f = MustParse("exists x len adom. x = x");
  EXPECT_EQ(CheckInLanguage(f, StructureId::kS, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSLen, kBin).ok());
  // Prefix-restricted quantification is fine everywhere.
  EXPECT_TRUE(CheckInLanguage(MustParse("exists x pre adom. x = x"),
                              StructureId::kS, kBin)
                  .ok());
}

TEST(SignatureTest, AlphabetMismatchRejected) {
  EXPECT_FALSE(CheckInLanguage(MustParse("x = 'ab'"), StructureId::kS, kBin)
                   .ok());
  EXPECT_FALSE(
      CheckInLanguage(MustParse("last[z](x)"), StructureId::kS, kBin).ok());
  EXPECT_FALSE(CheckInLanguage(MustParse("append[q](x) = y"), StructureId::kS,
                               kBin)
                   .ok());
}

TEST(SignatureTest, MinimalStructure) {
  EXPECT_EQ(*MinimalStructure(MustParse("x <= y"), kBin), StructureId::kS);
  EXPECT_EQ(*MinimalStructure(MustParse("prepend[0](x) = y"), kBin),
            StructureId::kSLeft);
  EXPECT_EQ(*MinimalStructure(MustParse("member(x, '(00)*')"), kBin),
            StructureId::kSReg);
  EXPECT_EQ(*MinimalStructure(MustParse("eqlen(x, y)"), kBin),
            StructureId::kSLen);
  EXPECT_EQ(*MinimalStructure(MustParse("concat(x, x) = y"), kBin),
            StructureId::kConcat);
  // f_a together with a non-star-free pattern needs S_len (Figure 1: S_left
  // and S_reg are incomparable and their join is below S_len).
  EXPECT_EQ(*MinimalStructure(
                MustParse("prepend[0](x) = y & member(x, '(00)*')"), kBin),
            StructureId::kSLen);
}

}  // namespace
}  // namespace strq
