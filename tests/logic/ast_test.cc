#include "logic/ast.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

TEST(AstTest, FreeVarsOfAtoms) {
  FormulaPtr f = FPred(PredKind::kPrefix, {TVar("x"), TVar("y")});
  EXPECT_EQ(FreeVars(f), (std::set<std::string>{"x", "y"}));

  FormulaPtr g = FPred(PredKind::kEq, {TVar("x"), TConst("ab")});
  EXPECT_EQ(FreeVars(g), (std::set<std::string>{"x"}));
}

TEST(AstTest, FreeVarsUnderQuantifier) {
  FormulaPtr f = FExists(
      "y", FPred(PredKind::kPrefix, {TVar("x"), TVar("y")}));
  EXPECT_EQ(FreeVars(f), (std::set<std::string>{"x"}));
}

TEST(AstTest, FreeVarsShadowing) {
  // exists x. (P(x) & exists x. Q(x)) — no free variables.
  FormulaPtr inner = FExists("x", FRelation("Q", {TVar("x")}));
  FormulaPtr f = FExists("x", FAnd(FRelation("P", {TVar("x")}), inner));
  EXPECT_TRUE(FreeVars(f).empty());
}

TEST(AstTest, FreeVarsInCompositeTerms) {
  FormulaPtr f = FPred(PredKind::kEq,
                       {TAppend('a', TVar("u")), TLcp(TVar("v"), TVar("w"))});
  EXPECT_EQ(FreeVars(f), (std::set<std::string>{"u", "v", "w"}));
}

TEST(AstTest, QuantifierRank) {
  FormulaPtr atom = FPred(PredKind::kEq, {TVar("x"), TVar("y")});
  EXPECT_EQ(QuantifierRank(atom), 0);
  FormulaPtr one = FExists("x", atom);
  EXPECT_EQ(QuantifierRank(one), 1);
  FormulaPtr nested = FForall("y", one);
  EXPECT_EQ(QuantifierRank(nested), 2);
  // Rank of a conjunction is the max of the sides.
  EXPECT_EQ(QuantifierRank(FAnd(nested, one)), 2);
}

TEST(AstTest, MentionsDatabase) {
  EXPECT_TRUE(MentionsDatabase(FRelation("R", {TVar("x")})));
  EXPECT_TRUE(MentionsDatabase(FPred(PredKind::kAdom, {TVar("x")})));
  EXPECT_FALSE(
      MentionsDatabase(FPred(PredKind::kEq, {TVar("x"), TVar("y")})));
  // Restricted quantifier ranges refer to the active domain.
  EXPECT_TRUE(MentionsDatabase(
      FExists("x", FTrue(), QuantRange::kPrefixDom)));
  EXPECT_FALSE(MentionsDatabase(FExists("x", FTrue())));
}

TEST(AstTest, AndAllOrAll) {
  EXPECT_EQ(FAndAll({})->kind, FormulaKind::kTrue);
  EXPECT_EQ(FOrAll({})->kind, FormulaKind::kFalse);
  FormulaPtr a = FPred(PredKind::kEq, {TVar("x"), TVar("y")});
  EXPECT_EQ(FAndAll({a})->kind, FormulaKind::kPred);
  EXPECT_EQ(FAndAll({a, a})->kind, FormulaKind::kAnd);
  EXPECT_EQ(FOrAll({a, a, a})->kind, FormulaKind::kOr);
}

TEST(AstTest, FormulaSizeCountsTerms) {
  FormulaPtr atom = FPred(PredKind::kEq, {TVar("x"), TVar("y")});
  EXPECT_EQ(FormulaSize(atom), 3);  // pred + 2 var terms
  EXPECT_GT(FormulaSize(FExists("x", FAnd(atom, atom))), FormulaSize(atom));
}

TEST(AstTest, ToStringReadable) {
  FormulaPtr f = FExists(
      "y", FAnd(FRelation("R", {TVar("y")}),
                FPred(PredKind::kPrefix, {TVar("x"), TVar("y")})));
  std::string s = ToString(f);
  EXPECT_NE(s.find("exists y"), std::string::npos);
  EXPECT_NE(s.find("R(y)"), std::string::npos);
  EXPECT_NE(s.find("x <= y"), std::string::npos);
}

TEST(AstTest, ToStringEscapesLiterals) {
  FormulaPtr f = FPred(PredKind::kEq, {TVar("x"), TConst("a'b")});
  EXPECT_NE(ToString(f).find("\\'"), std::string::npos);
}

TEST(AstTest, ToStringRestrictedQuantifiers) {
  EXPECT_NE(ToString(FExists("x", FTrue(), QuantRange::kAdom))
                .find("exists x in adom"),
            std::string::npos);
  EXPECT_NE(ToString(FExists("x", FTrue(), QuantRange::kPrefixDom))
                .find("exists x pre adom"),
            std::string::npos);
  EXPECT_NE(ToString(FForall("x", FTrue(), QuantRange::kLenDom))
                .find("forall x len adom"),
            std::string::npos);
}

}  // namespace
}  // namespace strq
