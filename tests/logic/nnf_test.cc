#include <gtest/gtest.h>

#include "base/rng.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/simplify.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

TEST(NnfTest, PushesNegationsToAtoms) {
  FormulaPtr f = Q("!(x = y & (x <= z | !step(y, z)))");
  FormulaPtr nnf = ToNegationNormalForm(f);
  EXPECT_TRUE(IsNegationNormalForm(nnf)) << ToString(nnf);
  // De Morgan applied: top is an OR.
  EXPECT_EQ(nnf->kind, FormulaKind::kOr);
}

TEST(NnfTest, DualizesQuantifiers) {
  FormulaPtr f = Q("!(exists x. forall y. x <= y)");
  FormulaPtr nnf = ToNegationNormalForm(f);
  EXPECT_TRUE(IsNegationNormalForm(nnf));
  EXPECT_EQ(nnf->kind, FormulaKind::kForall);
  EXPECT_EQ(nnf->left->kind, FormulaKind::kExists);
  EXPECT_EQ(nnf->left->left->kind, FormulaKind::kNot);
}

TEST(NnfTest, PreservesQuantifierRanges) {
  FormulaPtr f = Q("!(exists x pre adom. last[1](x))");
  FormulaPtr nnf = ToNegationNormalForm(f);
  EXPECT_EQ(nnf->kind, FormulaKind::kForall);
  EXPECT_EQ(nnf->range, QuantRange::kPrefixDom);
}

TEST(NnfTest, ExpandsImplicationAndIff) {
  EXPECT_TRUE(IsNegationNormalForm(
      ToNegationNormalForm(Q("x = y -> (y = z <-> x = z)"))));
  EXPECT_FALSE(IsNegationNormalForm(Q("x = y -> y = x")));
  EXPECT_FALSE(IsNegationNormalForm(Q("x = y <-> y = x")));
}

TEST(NnfTest, RemovesDoubleNegation) {
  FormulaPtr nnf = ToNegationNormalForm(Q("!(!(x = y))"));
  EXPECT_EQ(nnf->kind, FormulaKind::kPred);
}

TEST(NnfTest, ConstantsNegate) {
  EXPECT_EQ(ToNegationNormalForm(Q("!true"))->kind, FormulaKind::kFalse);
  EXPECT_EQ(ToNegationNormalForm(Q("!false"))->kind, FormulaKind::kTrue);
}

TEST(NnfTest, IsNnfRejectsInnerNegations) {
  EXPECT_FALSE(IsNegationNormalForm(Q("!(x = y & y = z)")));
  EXPECT_TRUE(IsNegationNormalForm(Q("!(x = y) | !(y = z)")));
  EXPECT_FALSE(IsNegationNormalForm(Q("exists x. !(x = x & x = x)")));
}

// Semantic preservation on curated sentences, via the exact engine.
TEST(NnfTest, PreservesSemantics) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  AutomataEvaluator engine(&db);
  const std::vector<std::string> battery = {
      "!(exists x. R(x) & last[1](x))",
      "forall x. R(x) -> !(exists y. R(y) & y < x)",
      "!(forall x in adom. last[0](x) <-> !last[1](x))",
      "exists x. !(R(x) -> (last[0](x) | last[1](x)))",
  };
  for (const std::string& q : battery) {
    FormulaPtr f = Q(q);
    FormulaPtr nnf = ToNegationNormalForm(f);
    EXPECT_TRUE(IsNegationNormalForm(nnf)) << q;
    Result<bool> a = engine.EvaluateSentence(f);
    Result<bool> b = engine.EvaluateSentence(nnf);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status();
    ASSERT_TRUE(b.ok()) << ToString(nnf) << ": " << b.status();
    EXPECT_EQ(*a, *b) << q << "  vs NNF  " << ToString(nnf);
  }
}

TEST(NnfTest, IdempotentAndComposesWithSimplify) {
  FormulaPtr f = Q("!(x = y -> (true & !(y = z)))");
  FormulaPtr once = ToNegationNormalForm(f);
  EXPECT_EQ(ToString(once), ToString(ToNegationNormalForm(once)));
  // Simplify after NNF keeps the NNF invariant (it never introduces -> or
  // nested negation).
  EXPECT_TRUE(IsNegationNormalForm(Simplify(once)));
}

}  // namespace
}  // namespace strq
