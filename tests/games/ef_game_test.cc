#include "games/ef_game.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

TEST(EfGameTest, IdenticalStructuresDuplicatorWins) {
  FiniteStructure a = FiniteStructure::LinearOrder(4);
  for (int k = 0; k <= 3; ++k) {
    Result<bool> w = DuplicatorWins(a, a, k);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE(*w) << k;
  }
}

TEST(EfGameTest, SignatureMismatchRejected) {
  FiniteStructure a = FiniteStructure::LinearOrder(2);
  FiniteStructure b(2);
  EXPECT_FALSE(DuplicatorWins(a, b, 1).ok());
}

TEST(EfGameTest, SmallOrdersDistinguishable) {
  // Orders of size 2 and 3 differ at quantifier rank 2 ("there is an
  // element strictly between two others" needs 3 points... size: rank-2
  // distinguishes |A|=2 from |A|=3 via "there are 3 distinct elements"?
  // That needs rank 3; but with < the middle element is rank-2: ∃x∃y x<y ∧
  // ∃z (x<z<y)... rank 3. Empirically: rank at which they split.
  FiniteStructure two = FiniteStructure::LinearOrder(2);
  FiniteStructure three = FiniteStructure::LinearOrder(3);
  Result<bool> r1 = DuplicatorWins(two, three, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);  // rank 1 cannot count to 3
  Result<bool> r2 = DuplicatorWins(two, three, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);  // rank 2 separates: ∃x∃y (x<y ∧ ∃-free mid check)
}

TEST(EfGameTest, ClassicLinearOrderThreshold) {
  // The classical EF fact: duplicator wins the k-round game on linear
  // orders of sizes m, n whenever m, n >= 2^k - 1. For k = 2: sizes >= 3.
  FiniteStructure three = FiniteStructure::LinearOrder(3);
  FiniteStructure four = FiniteStructure::LinearOrder(4);
  Result<bool> w = DuplicatorWins(three, four, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(*w);
  // But rank 3 separates 3 from 4.
  Result<bool> l = DuplicatorWins(three, four, 3);
  ASSERT_TRUE(l.ok());
  EXPECT_FALSE(*l);
  // k = 3: sizes >= 7 indistinguishable.
  FiniteStructure seven = FiniteStructure::LinearOrder(7);
  FiniteStructure eight = FiniteStructure::LinearOrder(8);
  Result<bool> big = DuplicatorWins(seven, eight, 3);
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(*big);
}

// Corollary 2/3 demonstration: parity of a unary predicate is not
// FO-definable — even/odd sets of the same large size class are
// indistinguishable at low rank.
TEST(EfGameTest, ParityNotExpressible) {
  // Structures: pure sets (equality only) of sizes 4 and 5 — no relations.
  FiniteStructure four(4);
  FiniteStructure five(5);
  // Equality-only structures of size >= k are k-round indistinguishable.
  Result<bool> w = DuplicatorWins(four, five, 3);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(*w);
  // Rank 5 can count to 5.
  Result<bool> l = DuplicatorWins(four, five, 5);
  ASSERT_TRUE(l.ok());
  EXPECT_FALSE(*l);
}

TEST(EfGameTest, PinnedElementsRespected) {
  FiniteStructure four = FiniteStructure::LinearOrder(4);
  // Pin the minimum in A against the maximum in B: distinguishable in one
  // round (find something below the pinned element).
  Result<bool> w = DuplicatorWinsFrom(four, four, {0}, {3}, 1);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(*w);
  // Pin corresponding elements: duplicator fine.
  Result<bool> same = DuplicatorWinsFrom(four, four, {1}, {1}, 2);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
}

TEST(EfGameTest, PinnedTupleLengthMismatch) {
  FiniteStructure a = FiniteStructure::LinearOrder(2);
  EXPECT_FALSE(DuplicatorWinsFrom(a, a, {0}, {}, 1).ok());
}

TEST(EfGameTest, UnaryPredicateStructures) {
  // Two element sets with a unary predicate P of different sizes: P of
  // size 1 vs size 2 split at rank 2.
  FiniteStructure a(3);
  ASSERT_TRUE(a.AddRelation("P", 1, {{0}}).ok());
  FiniteStructure b(3);
  ASSERT_TRUE(b.AddRelation("P", 1, {{0}, {1}}).ok());
  Result<bool> r1 = DuplicatorWins(a, b, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  Result<bool> r2 = DuplicatorWins(a, b, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

}  // namespace
}  // namespace strq

namespace strq {
namespace {

TEST(EfGameTest, PrefixStructuresFromStrings) {
  // The Prop-6-style encoding on tiny string sets: two prefix-closed string
  // structures that differ only beyond rank-k reach.
  auto build = [](const std::vector<std::string>& strings) {
    FiniteStructure s(static_cast<int>(strings.size()));
    std::set<std::vector<int>> prefix_rel;
    std::set<std::vector<int>> l1;
    for (size_t i = 0; i < strings.size(); ++i) {
      if (!strings[i].empty() && strings[i].back() == '1') {
        l1.insert({static_cast<int>(i)});
      }
      for (size_t j = 0; j < strings.size(); ++j) {
        if (strings[j].compare(0, strings[i].size(), strings[i]) == 0) {
          prefix_rel.insert({static_cast<int>(i), static_cast<int>(j)});
        }
      }
    }
    EXPECT_TRUE(s.AddRelation("prefix", 2, std::move(prefix_rel)).ok());
    EXPECT_TRUE(s.AddRelation("L1", 1, std::move(l1)).ok());
    return s;
  };
  // Chains ε ≺ 0 ≺ 00 vs ε ≺ 0 ≺ 00 ≺ 000: distinguishable at some rank,
  // not at rank 1 (both have top/bottom/middle 1-types).
  FiniteStructure three = build({"", "0", "00"});
  FiniteStructure four = build({"", "0", "00", "000"});
  Result<bool> r1 = DuplicatorWins(three, four, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  Result<bool> r3 = DuplicatorWins(three, four, 3);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(*r3);  // rank 3 counts a 4-chain
}

TEST(EfGameTest, ZeroRoundsIsPartialIso) {
  FiniteStructure a = FiniteStructure::LinearOrder(3);
  Result<bool> w = DuplicatorWins(a, a, 0);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(*w);
  // Pinned non-isomorphic boards lose at 0 rounds.
  Result<bool> l = DuplicatorWinsFrom(a, a, {0, 1}, {1, 0}, 0);
  ASSERT_TRUE(l.ok());
  EXPECT_FALSE(*l);
}

}  // namespace
}  // namespace strq
