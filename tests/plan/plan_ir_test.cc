#include "plan/plan_ir.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace strq {
namespace plan {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *std::move(f);
}

TEST(PlanIrTest, LowerFlattensBinaryChainsToNary) {
  PlanStore store;
  const PlanNode* n = Lower(store, Q("R(x) & S(x) & T(x) & last[1](x)"));
  ASSERT_EQ(n->kind, NodeKind::kAnd);
  EXPECT_EQ(n->children.size(), 4u);
  for (const PlanNode* c : n->children) {
    EXPECT_EQ(c->kind, NodeKind::kLeaf);
  }
}

TEST(PlanIrTest, LowerExpandsImpliesAndIff) {
  PlanStore store;
  const PlanNode* imp = Lower(store, Q("R(x) -> S(x)"));
  // ¬a ∨ b: an Or whose children are a negated leaf and a leaf.
  ASSERT_EQ(imp->kind, NodeKind::kOr);
  ASSERT_EQ(imp->children.size(), 2u);

  const PlanNode* iff = Lower(store, Q("R(x) <-> S(x)"));
  ASSERT_EQ(iff->kind, NodeKind::kAnd);
  EXPECT_EQ(iff->children.size(), 2u);
  for (const PlanNode* c : iff->children) {
    EXPECT_EQ(c->kind, NodeKind::kOr);
  }
}

TEST(PlanIrTest, HashConsingMakesEqualityPointerEquality) {
  PlanStore store;
  const PlanNode* a = Lower(store, Q("R(x) & last[1](x)"));
  int64_t hits_before = store.shared_hits();
  const PlanNode* b = Lower(store, Q("R(x) & last[1](x)"));
  EXPECT_EQ(a, b);
  // Re-lowering the same formula only produced shared hits, no new nodes.
  EXPECT_GT(store.shared_hits(), hits_before);
}

TEST(PlanIrTest, SharedSubplansAreOneNode) {
  PlanStore store;
  // The two R(x) atoms (and hence the leaves) intern to the same node.
  const PlanNode* n = Lower(store, Q("(R(x) & last[1](x)) | (R(x) & last[0](x))"));
  ASSERT_EQ(n->kind, NodeKind::kOr);
  ASSERT_EQ(n->children.size(), 2u);
  EXPECT_EQ(n->children[0]->children[0], n->children[1]->children[0]);
}

TEST(PlanIrTest, ConnectiveEdgeCases) {
  PlanStore store;
  const PlanNode* leaf = Lower(store, Q("R(x)"));
  // Singleton collapses to the child; empty And/Or are the units.
  EXPECT_EQ(store.And({leaf}), leaf);
  EXPECT_EQ(store.Or({leaf}), leaf);
  EXPECT_EQ(store.And({}), store.True());
  EXPECT_EQ(store.Or({}), store.False());
  // Nested same-kind children are flattened on construction.
  const PlanNode* a = Lower(store, Q("S(x)"));
  const PlanNode* nested = store.And({store.And({leaf, a}), store.True()});
  ASSERT_EQ(nested->kind, NodeKind::kAnd);
  EXPECT_EQ(nested->children.size(), 3u);
}

TEST(PlanIrTest, FreeVarsArePropagated) {
  PlanStore store;
  const PlanNode* n = Lower(store, Q("exists y. R(y) & x <= y"));
  ASSERT_EQ(n->kind, NodeKind::kQuant);
  EXPECT_EQ(n->free_vars, std::set<std::string>{"x"});
  EXPECT_TRUE(n->children[0]->free_vars.count("y"));
}

TEST(PlanIrTest, RenderRoundTripsTheFormula) {
  PlanStore store;
  FormulaPtr f = Q("exists y in adom. (R(y) & x <= y) | !last[1](x)");
  FormulaPtr back = Render(Lower(store, f));
  // Lower/Render normalizes associativity but preserves structure: parse the
  // rendering again and the plans are identical (hash-consed to one node).
  EXPECT_EQ(Lower(store, back), Lower(store, f));
}

TEST(PlanIrTest, RenderFoldsInChildOrder) {
  PlanStore store;
  const PlanNode* a = Lower(store, Q("R(x)"));
  const PlanNode* b = Lower(store, Q("S(x)"));
  const PlanNode* c = Lower(store, Q("T(x)"));
  FormulaPtr f = Render(store.And({c, a, b}));
  // Left fold: ((T & R) & S).
  ASSERT_EQ(f->kind, FormulaKind::kAnd);
  EXPECT_EQ(f->right->kind, FormulaKind::kRelation);
  EXPECT_EQ(f->right->relation, "S");
  ASSERT_EQ(f->left->kind, FormulaKind::kAnd);
  EXPECT_EQ(f->left->left->relation, "T");
  EXPECT_EQ(f->left->right->relation, "R");
}

TEST(PlanIrTest, PrettyShowsTreeAndFreeVars) {
  PlanStore store;
  const PlanNode* n = Lower(store, Q("exists y. R(y) & x <= y"));
  std::string pretty = Pretty(n);
  EXPECT_NE(pretty.find("exists y"), std::string::npos);
  EXPECT_NE(pretty.find("and"), std::string::npos);
  EXPECT_NE(pretty.find("fv={x}"), std::string::npos);
}

}  // namespace
}  // namespace plan
}  // namespace strq
