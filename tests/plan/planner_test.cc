#include "plan/planner.h"

#include <gtest/gtest.h>

#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "logic/simplify.h"
#include "obs/trace.h"

namespace strq {
namespace plan {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *std::move(f);
}

Database SmallDb() {
  Database db(Alphabet::Binary());
  Status s = db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}});
  EXPECT_TRUE(s.ok());
  return db;
}

TEST(PlannerTest, DisabledPlannerReturnsTheInputUntouched) {
  Database db = SmallDb();
  PlannerOptions off;
  off.enable = false;
  Planner planner(off);
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  PlannedQuery out = planner.Plan(f, &db, nullptr);
  EXPECT_EQ(out.formula, f);
  EXPECT_EQ(out.rules_fired, 0);
  EXPECT_FALSE(out.cache_hit);
}

TEST(PlannerTest, PlanRewritesAndAnnotates) {
  Database db = SmallDb();
  Planner planner;
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  PlannedQuery out = planner.Plan(f, &db, nullptr);
  EXPECT_GT(out.rules_fired, 0);
  EXPECT_GT(out.estimated_states, 0.0);
  EXPECT_FALSE(out.pretty.empty());
  // Miniscoping moved the quantifier off the root.
  EXPECT_EQ(out.formula->kind, FormulaKind::kAnd);
}

TEST(PlannerTest, PlanCacheHitsOnRepeatAndRespectsRevision) {
  Database db = SmallDb();
  Planner planner;
  FormulaPtr f = Q("exists y. R(y) & x <= y");
  PlannedQuery first = planner.Plan(f, &db, nullptr);
  EXPECT_FALSE(first.cache_hit);
  // Structurally equal but distinct AST: still a hit.
  PlannedQuery second = planner.Plan(Q("exists y. R(y) & x <= y"), &db, nullptr);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(ToString(second.formula), ToString(first.formula));
  EXPECT_EQ(planner.stats().cache_hits, 1);
  EXPECT_EQ(planner.stats().cache_misses, 1);

  // Mutating the database bumps its revision; stale plans don't resurface.
  ASSERT_TRUE(db.AddRelation("S", 1, {{"1"}}).ok());
  PlannedQuery third = planner.Plan(f, &db, nullptr);
  EXPECT_FALSE(third.cache_hit);
}

TEST(PlannerTest, CacheCanBeDisabled) {
  Database db = SmallDb();
  PlannerOptions opts;
  opts.enable_cache = false;
  Planner planner(opts);
  FormulaPtr f = Q("exists y. R(y) & x <= y");
  planner.Plan(f, &db, nullptr);
  PlannedQuery second = planner.Plan(f, &db, nullptr);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(planner.stats().cache_hits, 0);
}

TEST(PlannerTest, PerRuleTogglesIsolateEachRule) {
  Database db = SmallDb();
  FormulaPtr needs_miniscope = Q("exists y. R(y) & last[1](x)");
  FormulaPtr needs_nnf = Q("!(R(x) & last[1](x))");

  PlannerOptions only_fold;
  only_fold.enable_negation_pushdown = false;
  only_fold.enable_miniscope = false;
  only_fold.enable_prune = false;
  only_fold.enable_reorder = false;
  Planner fold_planner(only_fold);
  // Nothing for fold to do here; the formula survives unchanged.
  PlannedQuery out = fold_planner.Plan(needs_miniscope, &db, nullptr);
  EXPECT_EQ(out.formula->kind, FormulaKind::kExists);

  PlannerOptions mini = only_fold;
  mini.enable_miniscope = true;
  mini.enable_prune = true;  // drops the now-unused exists over Σ*
  Planner mini_planner(mini);
  out = mini_planner.Plan(needs_miniscope, &db, nullptr);
  EXPECT_EQ(out.formula->kind, FormulaKind::kAnd);

  Planner no_nnf(only_fold);
  out = no_nnf.Plan(needs_nnf, &db, nullptr);
  EXPECT_EQ(out.formula->kind, FormulaKind::kNot);
  PlannerOptions nnf = only_fold;
  nnf.enable_negation_pushdown = true;
  Planner with_nnf(nnf);
  out = with_nnf.Plan(needs_nnf, &db, nullptr);
  EXPECT_EQ(out.formula->kind, FormulaKind::kOr);
}

TEST(PlannerTest, FoldRuleAgreesWithStandaloneSimplify) {
  // Satellite of the planner work: logic/Simplify is the planner's fold
  // rule. A formula that Simplify collapses outright must come back from
  // the planner in the same collapsed form.
  Database db = SmallDb();
  Planner planner;
  FormulaPtr f = Q("R(x) & true & (last[1](x) | false) & R(x)");
  PlannedQuery out = planner.Plan(f, &db, nullptr);
  FormulaPtr simplified = Simplify(f);
  // The planner may rewrite further, but never re-introduces the folded
  // constants.
  EXPECT_EQ(ToString(out.formula).find("true"), std::string::npos);
  EXPECT_EQ(ToString(out.formula).find("false"), std::string::npos);
  EXPECT_EQ(ToString(simplified).find("true"), std::string::npos);
}

TEST(PlannerTest, RecordActualFeedsBackIntoTheCacheEntry) {
  Database db = SmallDb();
  Planner planner;
  FormulaPtr f = Q("R(x) & last[1](x)");
  planner.Plan(f, &db, nullptr);
  EXPECT_FALSE(planner.ActualFor(f, &db).has_value());
  planner.RecordActual(f, &db, 17);
  ASSERT_TRUE(planner.ActualFor(f, &db).has_value());
  EXPECT_EQ(*planner.ActualFor(f, &db), 17);
}

TEST(PlannerTest, PlanCountersReachTheMetricsRegistry) {
  Database db = SmallDb();
  obs::ScopedEnable enable(true);
  std::map<std::string, int64_t> before =
      obs::MetricsRegistry::Global().Snapshot();
  Planner planner;
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  planner.Plan(f, &db, nullptr);
  planner.Plan(f, &db, nullptr);
  std::map<std::string, int64_t> delta =
      obs::MetricsDelta(before, obs::MetricsRegistry::Global().Snapshot());
  EXPECT_EQ(delta[obs::kPlanCacheMisses], 1);
  EXPECT_EQ(delta[obs::kPlanCacheHits], 1);
  EXPECT_GT(delta[obs::kPlanRulesFired], 0);
  EXPECT_GT(delta[obs::kPlanEstimatedStates], 0);
}

TEST(PlannerTest, SharedPlannerServesAllEngines) {
  Database db = SmallDb();
  auto planner = std::make_shared<Planner>();
  AutomataEvaluator a(&db, nullptr, planner);
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  ASSERT_TRUE(a.Evaluate(f).ok());
  EXPECT_GT(planner->stats().cache_misses, 0);
  int64_t hits_before = planner->stats().cache_hits;
  // A second engine sharing the planner reuses the plan.
  AutomataEvaluator b(&db, nullptr, planner);
  ASSERT_TRUE(b.Evaluate(f).ok());
  EXPECT_GT(planner->stats().cache_hits, hits_before);
}

TEST(PlannerTest, PlannedAndUnplannedAnswersAgree) {
  Database db = SmallDb();
  PlannerOptions off;
  off.enable = false;
  for (const char* text :
       {"exists y. R(y) & x <= y & last[1](x)",
        "!(R(x) & last[1](x)) & x <= '110'",
        "exists y in adom. exists z in adom. (R(y) & R(z) & x <= y & x <= z)",
        "forall y in adom. (last[1](y) | x <= y)"}) {
    FormulaPtr f = Q(text);
    AutomataEvaluator planned(&db);
    AutomataEvaluator unplanned(&db, nullptr, std::make_shared<Planner>(off));
    Result<Relation> pa = planned.Evaluate(f);
    Result<Relation> ua = unplanned.Evaluate(f);
    ASSERT_TRUE(pa.ok()) << text << ": " << pa.status().ToString();
    ASSERT_TRUE(ua.ok()) << text << ": " << ua.status().ToString();
    EXPECT_EQ(*pa, *ua) << text;
  }
}

}  // namespace
}  // namespace plan
}  // namespace strq
