#include "plan/rules.h"

#include <gtest/gtest.h>

#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"
#include "plan/planner.h"

namespace strq {
namespace plan {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *std::move(f);
}

Database SmallDb() {
  Database db(Alphabet::Binary());
  Status s = db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}});
  EXPECT_TRUE(s.ok());
  s = db.AddRelation("S", 1, {{"01"}, {"1"}});
  EXPECT_TRUE(s.ok());
  return db;
}

// PruneDead grew an optional AtomCache parameter (the conjunction-emptiness
// probe); this adapter restores the plain two-argument rule signature.
const PlanNode* PruneDeadRule(RewriteContext& ctx, const PlanNode* n) {
  return PruneDead(ctx, n);
}

// Applies one rule to the lowered formula and renders the result back.
FormulaPtr Apply(const FormulaPtr& f,
                 const PlanNode* (*rule)(RewriteContext&, const PlanNode*),
                 int64_t* fired = nullptr) {
  PlanStore store;
  RewriteContext ctx{&store};
  const PlanNode* out = rule(ctx, Lower(store, f));
  if (fired != nullptr) *fired = ctx.fired;
  return Render(out);
}

// Both formulas produce tuple-identical answers on `db` with planning OFF —
// the ground truth the rewrites must preserve.
void ExpectSameAnswer(const Database& db, const FormulaPtr& a,
                      const FormulaPtr& b) {
  PlannerOptions off;
  off.enable = false;
  AutomataEvaluator engine(&db, nullptr, std::make_shared<Planner>(off));
  Result<Relation> ra = engine.Evaluate(a);
  Result<Relation> rb = engine.Evaluate(b);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(*ra, *rb) << "original: " << ToString(a)
                      << "\nrewritten: " << ToString(b);
}

// ---- Negation pushdown ---------------------------------------------------

TEST(RulesTest, PushNegationsAppliesDeMorgan) {
  Database db = SmallDb();
  FormulaPtr f = Q("!(R(x) & S(x)) & x <= '01'");
  int64_t fired = 0;
  FormulaPtr g = Apply(f, PushNegations, &fired);
  EXPECT_GT(fired, 0);
  // The negation moved inside: no kNot directly over an kAnd remains.
  EXPECT_NE(ToString(g).find("!(R(x))"), std::string::npos);
  ExpectSameAnswer(db, f, g);
}

TEST(RulesTest, PushNegationsDualizesQuantifiersOverEveryRange) {
  Database db = SmallDb();
  for (const char* range : {"", " in adom", " pre adom", " len adom"}) {
    FormulaPtr f =
        Q("x <= '110' & !(forall y" + std::string(range) + ". (x <= y | last[1](y)))");
    int64_t fired = 0;
    FormulaPtr g = Apply(f, PushNegations, &fired);
    EXPECT_GT(fired, 0) << range;
    EXPECT_NE(ToString(g).find("exists y"), std::string::npos) << range;
    ExpectSameAnswer(db, f, g);
  }
}

TEST(RulesTest, PushNegationsEliminatesDoubleNegation) {
  FormulaPtr g = Apply(Q("!!R(x)"), PushNegations);
  EXPECT_EQ(ToString(g), ToString(Q("R(x)")));
}

// ---- Miniscoping ---------------------------------------------------------

TEST(RulesTest, MiniscopeExtractsIndependentConjuncts) {
  Database db = SmallDb();
  // y is only constrained by R(y) & x <= y; last[1](x) leaves the scope.
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  int64_t fired = 0;
  FormulaPtr g = Apply(f, Miniscope, &fired);
  EXPECT_GT(fired, 0);
  // The quantifier is no longer outermost.
  EXPECT_EQ(g->kind, FormulaKind::kAnd);
  ExpectSameAnswer(db, f, g);
}

TEST(RulesTest, MiniscopeExtractionIsSoundOnTheEmptyDatabase) {
  // ∃y∈adom (R(y) ∧ ψ(x)) must stay false on an empty database even after
  // ψ is extracted: the rewrite is ψ ∧ ∃y∈adom R(y), not ∃-elimination.
  Database empty(Alphabet::Binary());
  ASSERT_TRUE(empty.AddRelation("R", 1, {}).ok());
  FormulaPtr f = Q("exists y in adom. (R(y) & x <= '01')");
  FormulaPtr g = Apply(f, Miniscope);
  PlannerOptions off;
  off.enable = false;
  AutomataEvaluator engine(&empty, nullptr, std::make_shared<Planner>(off));
  Result<Relation> out = engine.Evaluate(g);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}

TEST(RulesTest, MiniscopeGatesParameterizedRanges) {
  // pre-adom ranges are parameterized by the body's free variables:
  // extracting last[0](z) would shrink the parameter set {z} to {} and
  // change the candidate prefixes, so the rewrite must NOT fire.
  FormulaPtr f = Q("exists y pre adom. (last[1](y) & last[0](z))");
  int64_t fired = 0;
  FormulaPtr g = Apply(f, Miniscope, &fired);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(g->kind, FormulaKind::kExists);

  // The same shape over the parameter-free adom range does fire.
  FormulaPtr h = Q("exists y in adom. (last[1](y) & last[0](z))");
  FormulaPtr h2 = Apply(h, Miniscope, &fired);
  EXPECT_GT(fired, 0);
  EXPECT_EQ(h2->kind, FormulaKind::kAnd);

  // And so does an extraction that PRESERVES the parameter set: z stays
  // free in the remaining body, so the range is unchanged.
  FormulaPtr k = Q("exists y pre adom. (z <= y & last[0](z) & last[1](y))");
  int64_t fired_k = 0;
  FormulaPtr k2 = Apply(k, Miniscope, &fired_k);
  EXPECT_GT(fired_k, 0);
  EXPECT_EQ(k2->kind, FormulaKind::kAnd);
}

TEST(RulesTest, MiniscopeRestrictedRangesAgreeWithEnumeration) {
  // Engine B computes pre/len-adom candidate sets from the parameter values
  // directly, so it is the sharpest check that miniscoping preserved the
  // ranges: planner-on and planner-off enumeration must agree per tuple.
  Database db = SmallDb();
  for (const char* text :
       {"exists y pre adom. (y <= x & last[1](x))",
        "exists y len adom. (y <= x & R(y) & last[0](x))",
        "forall y in adom. (y <= x | last[1](y) | last[0](x))"}) {
    FormulaPtr f = Q(text);
    PlannerOptions off;
    off.enable = false;
    RestrictedEvaluator planned(&db);
    RestrictedEvaluator unplanned(&db);
    unplanned.set_planner(std::make_shared<Planner>(off));
    std::vector<std::string> candidates = planned.PrefixDomCandidates();
    Result<Relation> a = planned.EvaluateOnCandidates(f, candidates);
    Result<Relation> b = unplanned.EvaluateOnCandidates(f, candidates);
    ASSERT_TRUE(a.ok()) << text << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << text << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << text;
  }
}

TEST(RulesTest, MiniscopeDistributesForallOverAnd) {
  Database db = SmallDb();
  FormulaPtr f = Q("forall y. ((x <= y | last[1](y)) & last[0](x))");
  int64_t fired = 0;
  FormulaPtr g = Apply(f, Miniscope, &fired);
  EXPECT_GT(fired, 0);
  EXPECT_EQ(g->kind, FormulaKind::kAnd);
  ExpectSameAnswer(db, f, g);
}

// ---- Dead-plan pruning ---------------------------------------------------

TEST(RulesTest, PruneDeadEliminatesUnitsAndDuplicates) {
  int64_t fired = 0;
  FormulaPtr g = Apply(Q("R(x) & R(x) & true"), PruneDeadRule, &fired);
  EXPECT_GE(fired, 2);
  EXPECT_EQ(ToString(g), ToString(Q("R(x)")));

  FormulaPtr h = Apply(Q("R(x) & false"), PruneDeadRule);
  EXPECT_EQ(h->kind, FormulaKind::kFalse);
}

TEST(RulesTest, PruneDeadDropsUnusedQuantifierOverNonEmptyRanges) {
  int64_t fired = 0;
  FormulaPtr g = Apply(Q("exists y. R(x)"), PruneDeadRule, &fired);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ToString(g), ToString(Q("R(x)")));

  // len-adom always contains ε, so the drop is sound there too.
  FormulaPtr h = Apply(Q("forall y len adom. R(x)"), PruneDeadRule, &fired);
  EXPECT_EQ(ToString(h), ToString(Q("R(x)")));
}

TEST(RulesTest, PruneDeadKeepsQuantifiersOverPossiblyEmptyRanges) {
  // adom (and a parameterless prefix range) can be empty: ∃y∈adom ⊤ is
  // FALSE on the empty database, so the quantifier must survive.
  int64_t fired = 0;
  FormulaPtr g = Apply(Q("exists y in adom. last[1](x)"), PruneDeadRule, &fired);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(g->kind, FormulaKind::kExists);

  // A PARAMETERLESS prefix range can be empty too (prefixes of an empty
  // adom with no parameter values), so it survives as well; with a
  // parameter in the body the range contains ε and the drop is sound.
  FormulaPtr h = Apply(Q("exists y pre adom. last[1]('1')"), PruneDeadRule, &fired);
  EXPECT_EQ(h->kind, FormulaKind::kExists);
  FormulaPtr k = Apply(Q("exists y pre adom. last[1](x)"), PruneDeadRule, &fired);
  EXPECT_NE(k->kind, FormulaKind::kExists);
}

TEST(RulesTest, EmptyAdomStaysFalseThroughTheFullPlanner) {
  // End-to-end guard for the same soundness obligation: the default planner
  // (all rules on) must not turn ∃x∈adom (x = x) into true.
  Database empty(Alphabet::Binary());
  ASSERT_TRUE(empty.AddRelation("R", 1, {}).ok());
  AutomataEvaluator engine(&empty);
  Result<bool> v = engine.EvaluateSentence(Q("exists x in adom. x = x"));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(*v);
}

// ---- Cost-based reordering -----------------------------------------------

TEST(RulesTest, ReorderPutsCheapConjunctsFirst) {
  Database db = SmallDb();
  // The equality atom is far cheaper than the two member() automata; the
  // greedy order must move it ahead so the first product is tiny.
  FormulaPtr f =
      Q("member(x, '(0|1)*1(0|1)(0|1)(0|1)') & "
        "member(x, '(0|1)(0|1)*0(0|1)(0|1)') & x = '0110'");
  PlanStore store;
  RewriteContext ctx{&store};
  CostModel cost(&db, nullptr);
  const PlanNode* n = Reorder(ctx, Lower(store, f), cost);
  EXPECT_GT(ctx.fired, 0);
  ASSERT_EQ(n->kind, NodeKind::kAnd);
  ASSERT_EQ(n->children.size(), 3u);
  EXPECT_EQ(n->children[0]->leaf->kind, FormulaKind::kPred);
  EXPECT_EQ(n->children[0]->leaf->pred, PredKind::kEq);
  ExpectSameAnswer(db, f, Render(n));
}

TEST(RulesTest, ReorderLeavesBinaryProductsAlone) {
  Database db = SmallDb();
  FormulaPtr f = Q("member(x, '(0|1)*1') & x = '0110'");
  PlanStore store;
  RewriteContext ctx{&store};
  CostModel cost(&db, nullptr);
  const PlanNode* before = Lower(store, f);
  const PlanNode* after = Reorder(ctx, before, cost);
  EXPECT_EQ(ctx.fired, 0);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace plan
}  // namespace strq
