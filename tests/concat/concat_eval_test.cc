#include "concat/concat_eval.h"

#include <gtest/gtest.h>

#include "eval/automata_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}}).ok());
  return db;
}

TEST(ConcatEvalTest, BoundedSentence) {
  Database db = BinaryDb();
  ConcatEvaluator eval(&db);
  // ∃x: x = '01'·'01' — needs bound >= 4 to find the witness.
  FormulaPtr f = Q("exists x. concat('01', '01') = x");
  Result<bool> low = eval.EvaluateSentenceBounded(f, 2);
  ASSERT_TRUE(low.ok());
  EXPECT_FALSE(*low);
  Result<bool> high = eval.EvaluateSentenceBounded(f, 4);
  ASSERT_TRUE(high.ok());
  EXPECT_TRUE(*high);
}

TEST(ConcatEvalTest, FindWitnessBound) {
  Database db = BinaryDb();
  ConcatEvaluator eval(&db);
  FormulaPtr f = Q("exists x. concat('01', '01') = x");
  Result<std::optional<int>> bound = eval.FindWitnessBound(f, 6);
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(bound->has_value());
  EXPECT_EQ(**bound, 4);

  // No witness ever (x = x·0 is unsatisfiable): search exhausts max_bound.
  FormulaPtr g = Q("exists x. concat(x, '0') = x");
  Result<std::optional<int>> none = eval.FindWitnessBound(g, 4);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(ConcatEvalTest, SquareQuery) {
  Database db = BinaryDb();
  ConcatEvaluator eval(&db);
  FormulaPtr f = SquareOfRelationQuery("R");
  // Squares of {0, 01}: {00, 0101}; components bounded by 4.
  Result<Relation> out = eval.EvaluateBounded(f, 4);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->size(), 2u);
  EXPECT_TRUE(out->Contains({"00"}));
  EXPECT_TRUE(out->Contains({"0101"}));
  // With a too-small bound the answer is silently truncated — the
  // fundamental deficiency of bounded semantics (Proposition 1).
  Result<Relation> truncated = eval.EvaluateBounded(f, 2);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->size(), 1u);
}

TEST(ConcatEvalTest, ExactEngineRefusesConcat) {
  // The contrast that motivates the paper's program: concatenation breaks
  // the automatic-structure pipeline.
  Database db = BinaryDb();
  AutomataEvaluator exact(&db);
  Result<Relation> out = exact.Evaluate(SquareOfRelationQuery("R"));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
}

TEST(ConcatEvalTest, BoundedUniversalIsNotCertification) {
  Database db = BinaryDb();
  ConcatEvaluator eval(&db);
  // ∀x: |x| <= 3 — "true" at bound 3, false at bound 4: bounded universal
  // answers depend on the bound, illustrating why they certify nothing.
  FormulaPtr f = Q("forall x. leqlen(x, '111')");
  Result<bool> low = eval.EvaluateSentenceBounded(f, 3);
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(*low);
  Result<bool> high = eval.EvaluateSentenceBounded(f, 4);
  ASSERT_TRUE(high.ok());
  EXPECT_FALSE(*high);
}

}  // namespace
}  // namespace strq

namespace strq {
namespace {

TEST(ConcatEvalTest, CommutingStringsArePowers) {
  // x·y = y·x with x,y non-empty and x ≠ y: the classical witnesses are
  // powers of a common word, e.g. x = 0, y = 00. Bounded search finds them,
  // demonstrating RC_concat's expressiveness beyond the tame calculi.
  Database db(Alphabet::Binary());
  ConcatEvaluator eval(&db);
  Result<FormulaPtr> f = ParseFormula(
      "exists x. exists y. concat(x, y) = concat(y, x) & !(x = y) & "
      "!(x = '') & !(y = '')");
  ASSERT_TRUE(f.ok());
  Result<std::optional<int>> bound = eval.FindWitnessBound(*f, 4);
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(bound->has_value());
  EXPECT_EQ(**bound, 2);  // x = "0", y = "00"
}

TEST(ConcatEvalTest, BoundedAnswersGrowMonotonically) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0"}, {"1"}}).ok());
  ConcatEvaluator eval(&db);
  FormulaPtr f = SquareOfRelationQuery("R");
  size_t previous = 0;
  for (int bound = 0; bound <= 3; ++bound) {
    Result<Relation> out = eval.EvaluateBounded(f, bound);
    ASSERT_TRUE(out.ok()) << bound;
    EXPECT_GE(out->size(), previous) << bound;
    previous = out->size();
  }
  EXPECT_EQ(previous, 2u);  // {00, 11}
}

}  // namespace
}  // namespace strq
