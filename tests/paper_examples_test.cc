// The formulas that appear verbatim in the paper, transcribed into the
// concrete syntax and machine-checked against their stated meanings. This
// suite is the fidelity anchor: if the engines drift from the paper's
// semantics, these break first.

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "base/string_ops.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "mta/atoms.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

// Section 2: "∃x R(x) ∧ L_0(x) ∧ ∃y (y < x ∧ L_1(y) ∧ ¬∃z y < z < x)" —
// tests if there is a string in R ending with 10.
TEST(PaperExamplesTest, Section2EndsWithOneZero) {
  FormulaPtr query = Q(
      "exists x. R(x) & last[0](x) & "
      "exists y. y < x & last[1](y) & !(exists z. y < z & z < x)");
  struct Case {
    std::vector<Tuple> tuples;
    bool expected;
  };
  for (const Case& c : std::initializer_list<Case>{
           {{{"10"}}, true},
           {{{"0110"}}, true},
           {{{"0"}, {"01"}, {"100"}}, false},
           {{{"1"}, {"11"}}, false},
           {{}, false},
           {{{"110"}, {"0"}}, true}}) {
    Database db(Alphabet::Binary());
    ASSERT_TRUE(db.AddRelation("R", 1, c.tuples).ok());
    AutomataEvaluator engine(&db);
    Result<bool> v = engine.EvaluateSentence(query);
    ASSERT_TRUE(v.ok());
    // Cross-check against the direct "ends with 10" test.
    bool direct = false;
    for (const Tuple& t : c.tuples) {
      direct = direct || (t[0].size() >= 2 &&
                          t[0].substr(t[0].size() - 2) == "10");
    }
    EXPECT_EQ(direct, c.expected);
    EXPECT_EQ(*v, c.expected);
  }
}

// Section 4: the lexicographic ordering defined from ≼ and l_a —
// "x ≼ y ∨ ∃z (z < x ∧ z < y ∧ ⋁_{i<j} l_{a_i}(z) ≼ x ∧ l_{a_j}(z) ≼ y)".
// (The paper's z ranges over common prefixes; z = x∩y at the divergence
// point. Over Σ = {0, 1}, the single i<j disjunct is (z·0 ≼ x ∧ z·1 ≼ y).)
TEST(PaperExamplesTest, Section4LexicographicDefinition) {
  Database db(Alphabet::Binary());
  AutomataEvaluator engine(&db);
  FormulaPtr defined = Q(
      "x <= y | (exists z. z < x & z < y & "
      "append[0](z) <= x & append[1](z) <= y)");
  FormulaPtr builtin = Q("lexleq(x, y)");
  Result<TrackAutomaton> a = engine.Compile(defined);
  Result<TrackAutomaton> b = engine.Compile(builtin);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->vars(), b->vars());
  Result<bool> eq = Equivalent(a->dfa(), b->dfa());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq) << "the Section 4 definition diverges from ≤_lex";
}

// Section 4: "the graph of f_a is definable over S_len" — the definition
// uses |y| = |x| + 1, a first symbol check, and symbol-wise transport via
// equal-length prefixes. Transcribed with our primitives:
//   y = f_a(x)  ⟺  |y| = |x|+1 ∧ (∃w ≼ y: |w|=1 ∧ L_a(w)) ∧
//                  ∀z ≼ x ∃v ≼ y (|v| = |z|+1 ∧ ⋀_b L_b(z) ↔ L_b(v·?)) ...
// We use the cleaner equivalent: every non-empty prefix v of y with |v| =
// |z|+1 for z ≼ x ends with the symbol z's extension... The faithful check:
// equivalence with the PrependGraphAtom relation itself.
TEST(PaperExamplesTest, Section4PrependDefinableOverSLen) {
  Database db(Alphabet::Binary());
  AutomataEvaluator engine(&db);
  // |y| = |x|+1 ∧ first(y) = a ∧ ∀ z ≺ x, the (|z|+2)-prefix of y ends with
  // the same symbol as the (|z|+1)-prefix of x — i.e. y transports x's
  // symbols shifted by one. All in S_len (el, prefixes, last-symbol).
  FormulaPtr defined = Q(
      "eqlen(append[0](x), y) & "
      "(exists w. w <= y & eqlen(w, '0') & last[1](w)) & "
      "(forall z. forall u. (z < x & step(z, u) & u <= x) -> "
      "(exists v. exists t. v <= y & eqlen(v, u) & step(v, t) & t <= y & "
      "((last[0](u) & last[0](t)) | (last[1](u) & last[1](t)))))");
  FormulaPtr builtin = Q("prepend[1](x) = y");
  Result<TrackAutomaton> a = engine.Compile(defined);
  Result<TrackAutomaton> b = engine.Compile(builtin);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->vars(), b->vars());
  Result<bool> eq = Equivalent(a->dfa(), b->dfa());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq)
      << "the S_len definition of f_1's graph diverges from the atom";
}

// Section 2: "x < y expresses that y extends x by exactly one symbol" —
// step is definable from ≺ alone.
TEST(PaperExamplesTest, OneStepDefinableFromStrictPrefix) {
  Database db(Alphabet::Binary());
  AutomataEvaluator engine(&db);
  FormulaPtr defined = Q("x < y & !(exists z. x < z & z < y)");
  FormulaPtr builtin = Q("step(x, y)");
  Result<TrackAutomaton> a = engine.Compile(defined);
  Result<TrackAutomaton> b = engine.Compile(builtin);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<bool> eq = Equivalent(a->dfa(), b->dfa());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

// Section 5.2: "|x| < |y| expressible by ∃z (z < y ∧ el(z, x))".
TEST(PaperExamplesTest, StrictShorterDefinition) {
  Database db(Alphabet::Binary());
  AutomataEvaluator engine(&db);
  FormulaPtr defined = Q("exists z. z < y & eqlen(z, x)");
  FormulaPtr builtin = Q("leqlen(x, y) & !eqlen(x, y)");
  Result<TrackAutomaton> a = engine.Compile(defined);
  Result<TrackAutomaton> b = engine.Compile(builtin);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<bool> eq = Equivalent(a->dfa(), b->dfa());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

// Section 6.1: "finiteness is easily definable in RC(S_len) by
// ∃y ∀x (U(x) → ∃z ≼ y el(z, x))" — the paper's own Φ^safe, verbatim.
TEST(PaperExamplesTest, Section6FinitenessSentenceVerbatim) {
  FormulaPtr phi_safe = Q(
      "exists y. forall x. U(x) -> (exists z. z <= y & eqlen(z, x))");
  // True on every stored (finite) relation, regardless of contents.
  for (const std::vector<Tuple>& tuples :
       std::initializer_list<std::vector<Tuple>>{
           {}, {{""}}, {{"0"}, {"111111"}}, {{"01"}, {"10"}, {"1"}}}) {
    Database db(Alphabet::Binary());
    ASSERT_TRUE(db.AddRelation("U", 1, tuples).ok());
    AutomataEvaluator engine(&db);
    Result<bool> v = engine.EvaluateSentence(phi_safe);
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_TRUE(*v);
  }
}

// Section 2: "prefix(C)" and "d(s, C)" — the reference helpers match the
// paper's definitions on the running examples.
TEST(PaperExamplesTest, Section2SetOperations) {
  // d(s, C) = |s| − |s ∩ C| with s ∩ C the longest of the s ∩ c.
  EXPECT_EQ(DistanceToSet("0011", {"00", "01"}), 2);   // s ∩ C = "00"
  EXPECT_EQ(DistanceToSet("0011", {"0011"}), 0);
  EXPECT_EQ(DistanceToSet("111", {"00", "01"}), 3);    // s ∩ C = ε
  std::vector<std::string> closure = PrefixClosure({"01"});
  EXPECT_EQ(closure, (std::vector<std::string>{"", "0", "01"}));
}

// Section 3: over a ONE-symbol alphabet ⟨Σ*, ·⟩ is essentially ⟨ℕ, +⟩ and
// stays tame; the engine-level shadow: with |Σ| = 1 the equal-length
// predicate collapses to equality, exactly as Section 5.2 notes.
TEST(PaperExamplesTest, OneSymbolAlphabetElIsEquality) {
  Result<Alphabet> unary = Alphabet::Create("a");
  ASSERT_TRUE(unary.ok());
  Database db(*unary);
  AutomataEvaluator engine(&db);
  Result<bool> v = engine.EvaluateSentence(
      Q("forall x. forall y. eqlen(x, y) <-> x = y"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

}  // namespace
}  // namespace strq
