#include "base/budget.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "base/thread_pool.h"
#include "gtest/gtest.h"

namespace strq {
namespace {

TEST(RequestBudgetTest, NoBudgetInstalledMeansLibraryDefaults) {
  EXPECT_EQ(CurrentRequestBudget(), nullptr);
  EXPECT_TRUE(CheckDeadline().ok());
  EXPECT_EQ(CurrentMaxProductStates(1234), 1234);
  EXPECT_EQ(CurrentMaxAnswerTuples(99), 99u);
}

TEST(RequestBudgetTest, ScopedInstallAndRestore) {
  RequestBudget budget;
  budget.max_product_states = 7;
  {
    ScopedRequestBudget scope(&budget);
    EXPECT_EQ(CurrentRequestBudget(), &budget);
    EXPECT_EQ(CurrentMaxProductStates(1234), 7);
  }
  EXPECT_EQ(CurrentRequestBudget(), nullptr);
  EXPECT_EQ(CurrentMaxProductStates(1234), 1234);
}

TEST(RequestBudgetTest, ScopesNest) {
  RequestBudget outer;
  outer.max_product_states = 7;
  RequestBudget inner;
  inner.max_product_states = 3;
  ScopedRequestBudget outer_scope(&outer);
  {
    ScopedRequestBudget inner_scope(&inner);
    EXPECT_EQ(CurrentMaxProductStates(0), 3);
  }
  EXPECT_EQ(CurrentMaxProductStates(0), 7);
}

TEST(RequestBudgetTest, DeadlineExpiresAndReportsDeadlineExceeded) {
  RequestBudget budget = RequestBudget::WithTimeout(std::chrono::nanoseconds(1));
  ScopedRequestBudget scope(&budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Status s = CheckDeadline();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(RequestBudgetTest, GenerousDeadlinePasses) {
  RequestBudget budget = RequestBudget::WithTimeout(std::chrono::hours(1));
  ScopedRequestBudget scope(&budget);
  EXPECT_TRUE(CheckDeadline().ok());
  EXPECT_FALSE(budget.Expired());
}

TEST(RequestBudgetTest, AnswerTupleCapOnlyShrinks) {
  RequestBudget budget;
  budget.max_answer_tuples = 10;
  ScopedRequestBudget scope(&budget);
  // A session cap below the caller's limit wins; above it, the caller's
  // limit stands (a budget must never RAISE a library bound).
  EXPECT_EQ(CurrentMaxAnswerTuples(100), 10u);
  EXPECT_EQ(CurrentMaxAnswerTuples(5), 5u);
}

TEST(RequestBudgetTest, ThreadPoolPropagatesBudgetToWorkers) {
  RequestBudget budget;
  budget.max_product_states = 42;
  ScopedRequestBudget scope(&budget);
  ThreadPool pool(2);
  std::atomic<int> seen_submit{0};
  pool.Submit([&] { seen_submit = CurrentMaxProductStates(0); });
  pool.WaitIdle();
  EXPECT_EQ(seen_submit.load(), 42);
  // ParallelFor runs iterations on workers AND the calling thread; every
  // iteration must observe the caller's budget.
  std::atomic<int> wrong{0};
  ThreadPool::ParallelFor(4, 16, [&](int) {
    if (CurrentMaxProductStates(0) != 42) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
}

TEST(RequestBudgetTest, WorkerBudgetDoesNotLeakPastTheTask) {
  ThreadPool pool(1);
  RequestBudget budget;
  budget.max_product_states = 42;
  {
    ScopedRequestBudget scope(&budget);
    pool.Submit([] {});
    pool.WaitIdle();
  }
  // The same worker thread, with no budget installed at submit time, must
  // see no stale budget from the previous task.
  std::atomic<int> seen{-1};
  pool.Submit([&] { seen = CurrentMaxProductStates(0); });
  pool.WaitIdle();
  EXPECT_EQ(seen.load(), 0);
}

}  // namespace
}  // namespace strq
