#include "base/rng.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, NextIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    int v = rng.NextInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextStringRespectsAlphabetAndLength) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.NextString("ab", 2, 5);
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), 5u);
    for (char c : s) EXPECT_TRUE(c == 'a' || c == 'b');
  }
}

TEST(RngTest, DistinctStringsAreDistinct) {
  Rng rng(13);
  std::vector<std::string> ss = rng.DistinctStrings("abc", 0, 6, 50);
  for (size_t i = 0; i < ss.size(); ++i) {
    for (size_t j = i + 1; j < ss.size(); ++j) EXPECT_NE(ss[i], ss[j]);
  }
  EXPECT_GE(ss.size(), 40u);  // plenty of room in the space
}

TEST(RngTest, DistinctStringsSmallSpace) {
  Rng rng(17);
  // Only 3 strings of length <= 1 over "a": ε excluded? No: ε, "a" -> 2.
  std::vector<std::string> ss = rng.DistinctStrings("a", 0, 1, 10);
  EXPECT_LE(ss.size(), 2u);
}

}  // namespace
}  // namespace strq
