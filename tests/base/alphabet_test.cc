#include "base/alphabet.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

TEST(AlphabetTest, CreateAndLookup) {
  Result<Alphabet> r = Alphabet::Create("abc");
  ASSERT_TRUE(r.ok());
  const Alphabet& a = *r;
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.CharOf(0), 'a');
  EXPECT_EQ(a.CharOf(2), 'c');
  ASSERT_TRUE(a.SymbolOf('b').ok());
  EXPECT_EQ(*a.SymbolOf('b'), 1);
  EXPECT_FALSE(a.SymbolOf('z').ok());
  EXPECT_TRUE(a.Contains('a'));
  EXPECT_FALSE(a.Contains('z'));
}

TEST(AlphabetTest, RejectsEmptyAndDuplicates) {
  EXPECT_FALSE(Alphabet::Create("").ok());
  EXPECT_FALSE(Alphabet::Create("aa").ok());
  EXPECT_FALSE(Alphabet::Create("aba").ok());
}

TEST(AlphabetTest, EncodeDecodeRoundTrip) {
  Alphabet a = Alphabet::Binary();
  Result<std::vector<Symbol>> enc = a.Encode("0110");
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->size(), 4u);
  EXPECT_EQ(a.Decode(*enc), "0110");
}

TEST(AlphabetTest, EncodeRejectsForeignChars) {
  Alphabet a = Alphabet::Binary();
  EXPECT_FALSE(a.Encode("012").ok());
}

TEST(AlphabetTest, BuiltinAlphabets) {
  EXPECT_EQ(Alphabet::Binary().size(), 2);
  EXPECT_EQ(Alphabet::Abc().size(), 3);
  EXPECT_EQ(Alphabet::Binary(), Alphabet::Binary());
  EXPECT_FALSE(Alphabet::Binary() == Alphabet::Abc());
}

TEST(AlphabetTest, EmptyStringEncodes) {
  Alphabet a = Alphabet::Abc();
  Result<std::vector<Symbol>> enc = a.Encode("");
  ASSERT_TRUE(enc.ok());
  EXPECT_TRUE(enc->empty());
  EXPECT_EQ(a.Decode({}), "");
}

}  // namespace
}  // namespace strq
