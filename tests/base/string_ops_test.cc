#include "base/string_ops.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

TEST(StringOpsTest, Prefix) {
  EXPECT_TRUE(IsPrefix("", ""));
  EXPECT_TRUE(IsPrefix("", "a"));
  EXPECT_TRUE(IsPrefix("ab", "ab"));
  EXPECT_TRUE(IsPrefix("ab", "abc"));
  EXPECT_FALSE(IsPrefix("b", "ab"));
  EXPECT_FALSE(IsPrefix("abc", "ab"));
}

TEST(StringOpsTest, StrictPrefix) {
  EXPECT_FALSE(IsStrictPrefix("", ""));
  EXPECT_TRUE(IsStrictPrefix("", "a"));
  EXPECT_FALSE(IsStrictPrefix("ab", "ab"));
  EXPECT_TRUE(IsStrictPrefix("ab", "abc"));
}

TEST(StringOpsTest, OneStepExtension) {
  EXPECT_TRUE(IsOneStepExtension("", "a"));
  EXPECT_TRUE(IsOneStepExtension("ab", "abc"));
  EXPECT_FALSE(IsOneStepExtension("ab", "abcd"));
  EXPECT_FALSE(IsOneStepExtension("ab", "ab"));
  EXPECT_FALSE(IsOneStepExtension("ab", "ba"));
}

TEST(StringOpsTest, LastSymbol) {
  EXPECT_FALSE(LastSymbolIs("", 'a'));
  EXPECT_TRUE(LastSymbolIs("ba", 'a'));
  EXPECT_FALSE(LastSymbolIs("ab", 'a'));
}

TEST(StringOpsTest, AppendPrepend) {
  EXPECT_EQ(AppendLast("ab", 'c'), "abc");
  EXPECT_EQ(PrependFirst("ab", 'c'), "cab");
  EXPECT_EQ(AppendLast("", 'a'), "a");
  EXPECT_EQ(PrependFirst("", 'a'), "a");
}

TEST(StringOpsTest, RelativeSuffix) {
  // x − y: if x = y·z then z else ε (Section 2).
  EXPECT_EQ(RelativeSuffix("abc", "ab"), "c");
  EXPECT_EQ(RelativeSuffix("abc", "abc"), "");
  EXPECT_EQ(RelativeSuffix("abc", "b"), "");
  EXPECT_EQ(RelativeSuffix("abc", ""), "abc");
  EXPECT_EQ(RelativeSuffix("", "a"), "");
}

TEST(StringOpsTest, TrimLeading) {
  // TRIM_a(s) = s' if s = a·s', else ε (Section 7).
  EXPECT_EQ(TrimLeading("abc", 'a'), "bc");
  EXPECT_EQ(TrimLeading("bc", 'a'), "");
  EXPECT_EQ(TrimLeading("", 'a'), "");
  EXPECT_EQ(TrimLeading("a", 'a'), "");
  EXPECT_EQ(TrimLeading("aa", 'a'), "a");
}

TEST(StringOpsTest, LongestCommonPrefix) {
  EXPECT_EQ(LongestCommonPrefix("abc", "abd"), "ab");
  EXPECT_EQ(LongestCommonPrefix("abc", "abc"), "abc");
  EXPECT_EQ(LongestCommonPrefix("abc", "x"), "");
  EXPECT_EQ(LongestCommonPrefix("", "abc"), "");
  EXPECT_EQ(LongestCommonPrefix("ab", "abc"), "ab");
}

TEST(StringOpsTest, EqualLength) {
  EXPECT_TRUE(EqualLength("", ""));
  EXPECT_TRUE(EqualLength("ab", "cd"));
  EXPECT_FALSE(EqualLength("a", "ab"));
}

TEST(StringOpsTest, LexLeq) {
  const std::string order = "ab";
  EXPECT_TRUE(LexLeq("", "", order));
  EXPECT_TRUE(LexLeq("", "a", order));
  EXPECT_TRUE(LexLeq("a", "ab", order));   // prefix
  EXPECT_TRUE(LexLeq("ab", "b", order));   // a < b at position 0
  EXPECT_FALSE(LexLeq("b", "ab", order));
  EXPECT_TRUE(LexLeq("ab", "ab", order));  // reflexive
  EXPECT_FALSE(LexLeq("ab", "a", order));  // extension is larger
}

TEST(StringOpsTest, LexLeqRespectsCustomOrder) {
  // With order "ba", b < a.
  EXPECT_TRUE(LexLeq("b", "a", "ba"));
  EXPECT_FALSE(LexLeq("a", "b", "ba"));
}

TEST(StringOpsTest, LikeMatchBasics) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "help"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
}

TEST(StringOpsTest, LikeMatchPercentBacktracking) {
  EXPECT_TRUE(LikeMatch("aXbXc", "%X%X%"));
  EXPECT_FALSE(LikeMatch("aXbc", "%X%X%"));
  EXPECT_TRUE(LikeMatch("abab", "%ab"));
  EXPECT_TRUE(LikeMatch("abab", "a%b"));
}

TEST(StringOpsTest, PrefixClosure) {
  std::vector<std::string> cl = PrefixClosure({"ab", "b"});
  // ε, "a", "ab", "b" — sorted.
  ASSERT_EQ(cl.size(), 4u);
  EXPECT_EQ(cl[0], "");
  EXPECT_EQ(cl[1], "a");
  EXPECT_EQ(cl[2], "ab");
  EXPECT_EQ(cl[3], "b");
}

TEST(StringOpsTest, AllStringsOfLength) {
  std::vector<std::string> s2 = AllStringsOfLength("01", 2);
  ASSERT_EQ(s2.size(), 4u);
  EXPECT_EQ(s2[0], "00");
  EXPECT_EQ(s2[3], "11");
  EXPECT_EQ(AllStringsOfLength("01", 0), std::vector<std::string>{""});
}

TEST(StringOpsTest, AllStringsUpToLength) {
  // 1 + 2 + 4 = 7 binary strings of length <= 2.
  EXPECT_EQ(AllStringsUpToLength("01", 2).size(), 7u);
}

TEST(StringOpsTest, DistanceToSet) {
  // d(s, C) = |s| − |s ∩ C| (Section 6).
  EXPECT_EQ(DistanceToSet("abc", {"ab"}), 1);
  EXPECT_EQ(DistanceToSet("abc", {"abc"}), 0);
  EXPECT_EQ(DistanceToSet("abc", {"x", "a"}), 2);
  EXPECT_EQ(DistanceToSet("abc", {}), 3);
  EXPECT_EQ(DistanceToSet("", {"abc"}), 0);
}

}  // namespace
}  // namespace strq
