#include "base/status.h"

#include <gtest/gtest.h>

namespace strq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad pattern");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad pattern");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad pattern");
}

TEST(StatusTest, AllErrorConstructorsSetCodes) {
  EXPECT_EQ(NotInLanguageError("x").code(), StatusCode::kNotInLanguage);
  EXPECT_EQ(UnsafeError("x").code(), StatusCode::kUnsafe);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnsupportedError("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == UnsafeError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = UnsafeError("infinite output");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsafe);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = *std::move(r);
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  STRQ_ASSIGN_OR_RETURN(int h, Half(x));
  STRQ_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> bad = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status NeedsPositive(int x) {
  if (x <= 0) return InvalidArgumentError("non-positive");
  return Status::Ok();
}

Status CheckBoth(int x, int y) {
  STRQ_RETURN_IF_ERROR(NeedsPositive(x));
  STRQ_RETURN_IF_ERROR(NeedsPositive(y));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
}

}  // namespace
}  // namespace strq
