// Tests for the Conclusion's proposed extension: insert_a(p, x) — insertion
// at the position named by a prefix — wired through the whole stack (atom,
// parser, signature, both engines, safety machinery, algebra operator).

#include <gtest/gtest.h>

#include "base/string_ops.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"
#include "logic/signature.h"
#include "mta/atoms.h"
#include "safety/range_restriction.h"
#include "safety/safe_translation.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  return db;
}

TEST(InsertTest, ReferenceSemantics) {
  EXPECT_EQ(InsertAfterPrefix("0", "01", '1'), "011");
  EXPECT_EQ(InsertAfterPrefix("", "01", '1'), "101");   // = f_1
  EXPECT_EQ(InsertAfterPrefix("01", "01", '1'), "011"); // = l_1
  EXPECT_EQ(InsertAfterPrefix("", "", '0'), "0");
  EXPECT_EQ(InsertAfterPrefix("1", "01", '0'), "");     // p not a prefix
  EXPECT_EQ(InsertAfterPrefix("010", "01", '0'), "");   // p longer than x
}

// Exhaustive atom property check: the InsertGraphAtom relation agrees with
// the reference on every (p, x, y) triple up to length 3.
TEST(InsertTest, AtomMatchesReferenceExhaustively) {
  for (char a : {'0', '1'}) {
    Result<TrackAutomaton> atom = InsertGraphAtom(kBin, a, 0, 1, 2);
    ASSERT_TRUE(atom.ok()) << atom.status();
    std::vector<std::string> strings = AllStringsUpToLength("01", 3);
    for (const std::string& p : strings) {
      for (const std::string& x : strings) {
        for (const std::string& y : strings) {
          Result<bool> in = atom->Contains({p, x, y});
          ASSERT_TRUE(in.ok());
          EXPECT_EQ(*in, y == InsertAfterPrefix(p, x, a))
              << "insert_" << a << "(" << p << ", " << x << ") vs " << y;
        }
      }
    }
  }
}

TEST(InsertTest, ParserRoundTrip) {
  FormulaPtr f = Q("insert[1](p, x) = y");
  EXPECT_EQ(f->args[0]->kind, TermKind::kInsert);
  EXPECT_EQ(f->args[0]->letter, '1');
  std::string printed = ToString(f);
  FormulaPtr g = Q(printed);
  EXPECT_EQ(printed, ToString(g));
  EXPECT_FALSE(ParseFormula("insert[1](x) = y").ok());  // needs two args
}

TEST(InsertTest, SignatureGating) {
  FormulaPtr f = Q("insert[1](p, x) = y");
  EXPECT_EQ(CheckInLanguage(f, StructureId::kS, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_EQ(CheckInLanguage(f, StructureId::kSLeft, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_EQ(CheckInLanguage(f, StructureId::kSReg, kBin).code(),
            StatusCode::kNotInLanguage);
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kSInsert, kBin).ok());
  EXPECT_TRUE(CheckInLanguage(f, StructureId::kConcat, kBin).ok());
  EXPECT_EQ(*MinimalStructure(f, kBin), StructureId::kSInsert);
  // S_ins extends S_left: prepend/trim stay available.
  EXPECT_TRUE(CheckInLanguage(Q("prepend[1](x) = y"), StructureId::kSInsert,
                              kBin)
                  .ok());
  // But not el.
  EXPECT_EQ(CheckInLanguage(Q("eqlen(x, y)"), StructureId::kSInsert, kBin)
                .code(),
            StatusCode::kNotInLanguage);
}

TEST(InsertTest, FaIsInsertAtEpsilon) {
  // ∀x: insert_a(ε, x) = f_a(x) — the reason S_left ⊆ S_ins.
  Database db = BinaryDb();
  AutomataEvaluator engine(&db);
  Result<bool> v = engine.EvaluateSentence(
      Q("forall x. insert[1]('', x) = prepend[1](x)"));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(*v);
}

TEST(InsertTest, LaIsInsertAtSelf) {
  // ∀x: insert_a(x, x) = l_a(x) = x·a.
  Database db = BinaryDb();
  AutomataEvaluator engine(&db);
  Result<bool> v = engine.EvaluateSentence(
      Q("forall x. insert[0](x, x) = append[0](x)"));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(*v);
}

TEST(InsertTest, EnginesAgree) {
  Database db = BinaryDb();
  AutomataEvaluator engine_a(&db);
  RestrictedEvaluator engine_b(&db);
  for (const char* q : {
           "exists x in adom. exists p pre adom. p <= x & "
           "insert[1](p, x) = prepend[1](x)",
           "forall x in adom. exists p pre adom. !(insert[0](p, x) = '')",
           "exists x in adom. insert[1]('', x) = '1110'",
       }) {
    Result<bool> a = engine_a.EvaluateSentence(Q(q));
    Result<bool> b = engine_b.EvaluateSentence(Q(q));
    ASSERT_TRUE(a.ok()) << q << ": " << a.status();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status();
    EXPECT_EQ(*a, *b) << q;
  }
}

TEST(InsertTest, QueryEvaluation) {
  // All single-insertions of '1' into stored strings.
  Database db = BinaryDb();
  AutomataEvaluator engine(&db);
  Result<Relation> out = engine.Evaluate(
      Q("exists x. exists p. R(x) & p <= x & insert[1](p, x) = y"));
  ASSERT_TRUE(out.ok()) << out.status();
  // "0" -> {10, 01}; "01" -> {101, 011, 011} = {101, 011};
  // "110" -> {1110, 1110, 1110, 1101} = {1110, 1101}. Union size 6.
  EXPECT_EQ(out->size(), 6u);
  EXPECT_TRUE(out->Contains({"10"}));
  EXPECT_TRUE(out->Contains({"1101"}));
}

TEST(InsertTest, StateSafetyStillDecidable) {
  // The extension keeps the automatic-structure pipeline intact.
  Database db = BinaryDb();
  AutomataEvaluator engine(&db);
  Result<bool> safe = engine.IsSafeOnDatabase(
      Q("exists x. exists p. R(x) & p <= x & insert[1](p, x) = y"));
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(*safe);
  Result<bool> unsafe = engine.IsSafeOnDatabase(
      Q("exists x. R(x) & insert[1](y, y) = x | x <= insert[0](y, y)"));
  ASSERT_TRUE(unsafe.ok());
  // x ≼ insert_0(y,y) = y·0... holds for cofinitely many y? For each y it
  // holds when x ≼ y0 — y ranges over Σ*, so infinitely many y qualify.
  EXPECT_FALSE(*unsafe);
}

TEST(InsertTest, RangeRestrictionCoincides) {
  Database db = BinaryDb();
  FormulaPtr f = Q("exists x. R(x) & insert[1]('', x) = y");
  Result<RangeRestrictionCheck> check = CheckRangeRestriction(
      f, StructureId::kSInsert, db, /*k=*/3);
  ASSERT_TRUE(check.ok()) << check.status();
  EXPECT_TRUE(check->phi_safe_on_db);
  EXPECT_TRUE(check->coincides);
}

TEST(InsertTest, AlgebraOperatorAndTranslation) {
  Database db = BinaryDb();
  std::map<std::string, int> schema = {{"R", 1}};
  // Direct operator: insert '1' after prefix (column 1) of subject (col 0).
  AlgebraEvaluator eval(&db);
  Result<Relation> out =
      eval.Evaluate(RaInsert(1, 0, '1', RaPrefix(0, RaScan("R"))));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Contains({"01", "0", "011"}));
  // Operator is gated to RA(S_ins).
  RaPtr plan = RaInsert(1, 0, '1', RaPrefix(0, RaScan("R")));
  EXPECT_FALSE(
      ValidateAlgebra(plan, StructureId::kSLeft, schema, db.alphabet()).ok());
  EXPECT_TRUE(
      ValidateAlgebra(plan, StructureId::kSInsert, schema, db.alphabet())
          .ok());

  // Full Theorem-4-style round trip in RA(S_ins).
  FormulaPtr f = Q("exists x. R(x) & insert[1]('', x) = y");
  AutomataEvaluator engine(&db);
  Result<Relation> exact = engine.Evaluate(f);
  ASSERT_TRUE(exact.ok());
  Result<RaPtr> translated = TranslateToAlgebra(f, StructureId::kSInsert,
                                                schema, db.alphabet(), 2);
  ASSERT_TRUE(translated.ok()) << translated.status();
  AlgebraEvaluator::Options options;
  options.max_tuples = 30000000;
  AlgebraEvaluator algebra(&db, options);
  Result<Relation> via_plan = algebra.Evaluate(*translated);
  ASSERT_TRUE(via_plan.ok()) << via_plan.status();
  EXPECT_TRUE(*via_plan == *exact);
}

}  // namespace
}  // namespace strq
