#include "eval/restricted_eval.h"

#include <gtest/gtest.h>

#include "eval/automata_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  EXPECT_TRUE(db.AddRelation("S", 2, {{"0", "01"}, {"01", "0"}}).ok());
  return db;
}

TEST(RestrictedEvalTest, HoldsWithAssignment) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  Result<bool> v = eval.Holds(Q("R(x) & last[1](x)"), {{"x", "01"}});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Result<bool> w = eval.Holds(Q("R(x) & last[1](x)"), {{"x", "110"}});
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(*w);
}

TEST(RestrictedEvalTest, AdomQuantifier) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  Result<bool> v = eval.EvaluateSentence(
      Q("exists x in adom. R(x) & last[0](x)"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Result<bool> w = eval.EvaluateSentence(
      Q("forall x in adom. R(x)"));
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(*w);  // adom = R-strings here
}

TEST(RestrictedEvalTest, PrefixDomQuantifier) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  // Prefix of an adom string that is not itself in adom: "1" for example.
  Result<bool> v = eval.EvaluateSentence(
      Q("exists x pre adom. !R(x) & last[1](x)"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(RestrictedEvalTest, PrefixDomIncludesParameters) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  // With x = "111111" (outside adom prefixes), ∃y ≼ dom: step(y,...)?
  // The candidate set must include prefixes of the parameter x.
  Result<bool> v = eval.Holds(Q("exists y pre adom. step(y, x)"),
                              {{"x", "111111"}});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);  // y = "11111" is a prefix of the parameter
}

TEST(RestrictedEvalTest, LenDomQuantifier) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  // ∃|x| ≤ adom with |x| = 3 and not in adom: e.g. "111".
  Result<bool> v = eval.EvaluateSentence(
      Q("exists x len adom. eqlen(x, '111') & !adom(x)"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(RestrictedEvalTest, PlainQuantifierRejected) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  Result<bool> v = eval.EvaluateSentence(Q("exists x. x = x"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnsupported);
}

TEST(RestrictedEvalTest, PlainQuantifierBoundedModeEnumerates) {
  Database db = BinaryDb();
  RestrictedEvaluator::Options options;
  options.all_quantifier_bound = 4;
  RestrictedEvaluator eval(&db, options);
  Result<bool> v = eval.EvaluateSentence(Q("exists x. last[1](x) & !adom(x)"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(RestrictedEvalTest, ConcatTermsEvaluate) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  Result<bool> v = eval.Holds(Q("concat(x, y) = '0110'"),
                              {{"x", "01"}, {"y", "10"}});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(RestrictedEvalTest, EvaluateOnCandidates) {
  Database db = BinaryDb();
  RestrictedEvaluator eval(&db);
  // Range-restricted semantics: candidates = prefix(adom).
  Result<Relation> out = eval.EvaluateOnCandidates(
      Q("last[1](x)"), eval.PrefixDomCandidates());
  ASSERT_TRUE(out.ok());
  // Prefixes of {0,01,110} ending in 1: 01, 1, 11.
  EXPECT_EQ(out->size(), 3u);
}

TEST(RestrictedEvalTest, LenDomCandidatesBudget) {
  Database db(Alphabet::Binary());
  // A long string makes Σ^{≤len} explode past a small budget.
  ASSERT_TRUE(db.AddRelation("R", 1, {{"0101010101010101010101"}}).ok());
  RestrictedEvaluator::Options options;
  options.max_len_candidates = 1000;
  RestrictedEvaluator eval(&db, options);
  Result<std::vector<std::string>> c = eval.LenDomCandidates();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

// === The collapse theorems as cross-engine property tests ===
//
// Theorem 1 / Proposition 2 (RC(S)), Theorem 6 (S_left, S_reg): on
// restricted-quantifier formulas, engine A's natural semantics and engine
// B's enumeration agree. Theorem 2: same for length-restricted formulas
// over S_len.
class CollapseAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CollapseAgreementTest, EnginesAgree) {
  Database db = BinaryDb();
  AutomataEvaluator engine_a(&db);
  RestrictedEvaluator engine_b(&db);
  FormulaPtr f = Q(GetParam());
  Result<bool> a = engine_a.EvaluateSentence(f);
  Result<bool> b = engine_b.EvaluateSentence(f);
  ASSERT_TRUE(a.ok()) << GetParam() << ": " << a.status();
  ASSERT_TRUE(b.ok()) << GetParam() << ": " << b.status();
  EXPECT_EQ(*a, *b) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Battery, CollapseAgreementTest,
    ::testing::Values(
        // RC(S) with prefix-restricted quantification.
        "exists x pre adom. last[1](x)",
        "exists x pre adom. !R(x) & last[0](x)",
        "forall x in adom. exists y pre adom. y <= x",
        "exists x in adom. exists y pre adom. y < x & last[1](y)",
        "forall x in adom. forall y in adom. lexleq(lcp(x,y), x)",
        "exists x pre adom. like(x, '1%0')",
        "exists x in adom. suffixin(x, x, '')",
        // RC(S_left).
        "exists x in adom. exists y pre adom. prepend[1](y) = x",
        "forall x in adom. trim[0](prepend[0](x)) = x",
        // RC(S_reg).
        "exists x in adom. member(x, '(00|11|01|10)*')",
        "exists x in adom. exists y pre adom. suffixin(y, x, '(10)*')",
        // RC(S_len) with length-restricted quantification.
        "exists x len adom. !adom(x) & eqlen(x, '110')",
        "forall x in adom. exists y len adom. eqlen(x, y) & !(x = y)",
        "exists x len adom. forall y in adom. leqlen(y, x) -> lexleq(lcp(x,y), x)"));

// Engine A must agree with engine B on open formulas too, when engine A's
// answers are filtered to the same candidate set.
TEST(CollapseAgreementTest, OpenFormulaAgreement) {
  Database db = BinaryDb();
  AutomataEvaluator engine_a(&db);
  RestrictedEvaluator engine_b(&db);
  const std::vector<std::string> queries = {
      "last[1](x) & exists y in adom. x <= y",
      "exists y in adom. step(x, y)",
      "R(x) | exists y in adom. prepend[1](x) = y",
  };
  std::vector<std::string> candidates = engine_b.PrefixDomCandidates();
  for (const std::string& qs : queries) {
    FormulaPtr f = Q(qs);
    Result<Relation> b_out = engine_b.EvaluateOnCandidates(f, candidates);
    ASSERT_TRUE(b_out.ok()) << qs;
    Result<TrackAutomaton> a_rel = engine_a.Compile(f);
    ASSERT_TRUE(a_rel.ok()) << qs;
    for (const std::string& c : candidates) {
      Result<bool> in = a_rel->Contains({c});
      ASSERT_TRUE(in.ok());
      EXPECT_EQ(*in, b_out->Contains({c})) << qs << " on '" << c << "'";
    }
  }
}

}  // namespace
}  // namespace strq
