#include "eval/algebra_eval.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  EXPECT_TRUE(db.AddRelation("S", 2, {{"0", "01"}, {"01", "0"}}).ok());
  return db;
}

TEST(AlgebraEvalTest, ScanAndEpsilon) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  Result<Relation> r = eval.Evaluate(RaScan("R"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  Result<Relation> eps = eval.Evaluate(RaEpsilon());
  ASSERT_TRUE(eps.ok());
  ASSERT_EQ(eps->size(), 1u);
  EXPECT_EQ(eps->tuples()[0], (Tuple{""}));
  EXPECT_FALSE(eval.Evaluate(RaScan("Nope")).ok());
}

TEST(AlgebraEvalTest, SelectWithInterpretedCondition) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  // σ_{last[1](c0)}(R) = {"01"}.
  Result<Relation> r =
      eval.Evaluate(RaSelect(Q("last[1](c0)"), RaScan("R")));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->tuples()[0], (Tuple{"01"}));
}

TEST(AlgebraEvalTest, SelectConditionMayQuantifyOverSigmaStar) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  // σ with a natural quantifier in the condition: strings with a strict
  // extension in 1* ... every string 1^k only. c0 ∈ 1*: via ∃y (c0 ≼ y ∧ y
  // ∈ 1*) — true iff c0 ∈ 1*.
  Result<Relation> r = eval.Evaluate(
      RaSelect(Q("exists y. c0 <= y & member(y, '1*')"), RaScan("R")));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 0u);  // none of 0, 01, 110 is all-1s
}

TEST(AlgebraEvalTest, SelectRejectsDatabaseConditions) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  EXPECT_FALSE(eval.Evaluate(RaSelect(Q("R(c0)"), RaScan("R"))).ok());
  EXPECT_FALSE(eval.Evaluate(RaSelect(Q("adom(c0)"), RaScan("R"))).ok());
}

TEST(AlgebraEvalTest, SelectRejectsBadColumnVars) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  EXPECT_FALSE(eval.Evaluate(RaSelect(Q("last[1](x)"), RaScan("R"))).ok());
  EXPECT_FALSE(eval.Evaluate(RaSelect(Q("last[1](c5)"), RaScan("R"))).ok());
}

TEST(AlgebraEvalTest, ProjectReorderDuplicate) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  Result<Relation> r = eval.Evaluate(RaProject({1, 0, 1}, RaScan("S")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->arity(), 3);
  EXPECT_TRUE(r->Contains({"01", "0", "01"}));
  EXPECT_TRUE(r->Contains({"0", "01", "0"}));
}

TEST(AlgebraEvalTest, ProductUnionDifference) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  Result<Relation> prod = eval.Evaluate(RaProduct(RaScan("R"), RaScan("R")));
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod->size(), 9u);
  Result<Relation> uni = eval.Evaluate(
      RaUnion(RaScan("R"), RaProject({0}, RaScan("S"))));
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->size(), 3u);  // {0,01,110} ∪ {0,01}
  Result<Relation> diff = eval.Evaluate(
      RaDifference(RaScan("R"), RaProject({0}, RaScan("S"))));
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 1u);
  EXPECT_EQ(diff->tuples()[0], (Tuple{"110"}));
}

TEST(AlgebraEvalTest, ArityMismatchRejected) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  EXPECT_FALSE(eval.Evaluate(RaUnion(RaScan("R"), RaScan("S"))).ok());
  EXPECT_FALSE(eval.Evaluate(RaDifference(RaScan("S"), RaScan("R"))).ok());
}

TEST(AlgebraEvalTest, PrefixOperator) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  // prefix_0(R): pairs (s, p) with p ≼ s.
  Result<Relation> r = eval.Evaluate(RaPrefix(0, RaScan("R")));
  ASSERT_TRUE(r.ok());
  // |prefixes|: "0"->2, "01"->3, "110"->4 = 9 pairs.
  EXPECT_EQ(r->size(), 9u);
  EXPECT_TRUE(r->Contains({"110", "11"}));
  EXPECT_TRUE(r->Contains({"0", ""}));
  EXPECT_FALSE(r->Contains({"0", "1"}));
}

TEST(AlgebraEvalTest, AddAndTrimOperators) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  Result<Relation> add = eval.Evaluate(RaAddRight(0, '1', RaScan("R")));
  ASSERT_TRUE(add.ok());
  EXPECT_TRUE(add->Contains({"0", "01"}));
  EXPECT_TRUE(add->Contains({"110", "1101"}));

  Result<Relation> addl = eval.Evaluate(RaAddLeft(0, '1', RaScan("R")));
  ASSERT_TRUE(addl.ok());
  EXPECT_TRUE(addl->Contains({"0", "10"}));
  EXPECT_TRUE(addl->Contains({"110", "1110"}));

  Result<Relation> trim = eval.Evaluate(RaTrimLeft(0, '1', RaScan("R")));
  ASSERT_TRUE(trim.ok());
  EXPECT_TRUE(trim->Contains({"110", "10"}));
  EXPECT_TRUE(trim->Contains({"0", ""}));  // head is not '1' -> ε
}

TEST(AlgebraEvalTest, DownOperator) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  Result<Relation> down = eval.Evaluate(RaDown(0, RaScan("R")));
  ASSERT_TRUE(down.ok());
  // For "0": 3 strings of length <=1; "01": 7; "110": 15 -> 25 tuples.
  EXPECT_EQ(down->size(), 25u);
  EXPECT_TRUE(down->Contains({"110", "111"}));
}

TEST(AlgebraEvalTest, DownBudgetEnforced) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("Long", 1, {{"010101010101010101010101"}}).ok());
  AlgebraEvaluator::Options options;
  options.max_tuples = 1000;
  AlgebraEvaluator eval(&db, options);
  Result<Relation> down = eval.Evaluate(RaDown(0, RaScan("Long")));
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), StatusCode::kResourceExhausted);
}

TEST(AlgebraEvalTest, ValidatorStructureGates) {
  Database db = BinaryDb();
  std::map<std::string, int> schema = {{"R", 1}, {"S", 2}};
  const Alphabet& alphabet = db.alphabet();
  // ↓ only in RA(S_len).
  RaPtr down = RaDown(0, RaScan("R"));
  EXPECT_FALSE(ValidateAlgebra(down, StructureId::kS, schema, alphabet).ok());
  EXPECT_FALSE(
      ValidateAlgebra(down, StructureId::kSReg, schema, alphabet).ok());
  EXPECT_TRUE(
      ValidateAlgebra(down, StructureId::kSLen, schema, alphabet).ok());
  // add-left only in RA(S_left) and above.
  RaPtr addl = RaAddLeft(0, '1', RaScan("R"));
  EXPECT_FALSE(ValidateAlgebra(addl, StructureId::kS, schema, alphabet).ok());
  EXPECT_TRUE(
      ValidateAlgebra(addl, StructureId::kSLeft, schema, alphabet).ok());
  // σ condition language is gated per structure.
  RaPtr sel = RaSelect(Q("eqlen(c0, c0)"), RaScan("R"));
  EXPECT_FALSE(ValidateAlgebra(sel, StructureId::kS, schema, alphabet).ok());
  EXPECT_TRUE(
      ValidateAlgebra(sel, StructureId::kSLen, schema, alphabet).ok());
}

TEST(AlgebraEvalTest, ComposedPlan) {
  Database db = BinaryDb();
  AlgebraEvaluator eval(&db);
  // All prefixes of R-strings that end in 1:
  // π_1(σ_{last[1](c1)}(prefix_0(R))).
  RaPtr plan = RaProject(
      {1}, RaSelect(Q("last[1](c1)"), RaPrefix(0, RaScan("R"))));
  Result<Relation> out = eval.Evaluate(plan);
  ASSERT_TRUE(out.ok()) << out.status();
  // Prefixes ending in 1: "01", "1", "11".
  EXPECT_EQ(out->size(), 3u);
  EXPECT_TRUE(out->Contains({"1"}));
  EXPECT_TRUE(out->Contains({"11"}));
  EXPECT_TRUE(out->Contains({"01"}));
}

TEST(AlgebraEvalTest, RaToStringSmoke) {
  RaPtr plan = RaProject(
      {1}, RaSelect(Q("last[1](c1)"), RaPrefix(0, RaScan("R"))));
  std::string s = RaToString(plan);
  EXPECT_NE(s.find("project"), std::string::npos);
  EXPECT_NE(s.find("select"), std::string::npos);
  EXPECT_NE(s.find("prefix"), std::string::npos);
  EXPECT_NE(s.find("R"), std::string::npos);
}

}  // namespace
}  // namespace strq
