// The capability that distinguishes engine A from every enumeration-based
// evaluator: TRUE natural semantics — quantifiers range over all of Σ*, and
// answers may lie arbitrarily far from the active domain. These tests pin
// down behaviours no collapse-based engine can check directly.

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/regex_from_dfa.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database SmallDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}}).ok());
  return db;
}

TEST(NaturalSemanticsTest, WitnessesFarOutsideAdom) {
  Database db = SmallDb();
  AutomataEvaluator engine(&db);
  // ∃x: x extends '01' by at least 5 symbols and ends in 1 — the witness is
  // far outside the active domain (max adom length 2).
  Result<bool> v = engine.EvaluateSentence(Q(
      "exists a. exists b. exists c. exists d. exists e. exists x. "
      "'01' < a & a < b & b < c & c < d & d < e & e < x & last[1](x)"));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(*v);
}

TEST(NaturalSemanticsTest, UniversalOverAllStrings) {
  Database db = SmallDb();
  AutomataEvaluator engine(&db);
  // Every string is lexicographically between ε and its own 1-extension —
  // a ∀ over Σ* no finite enumeration can verify.
  Result<bool> v = engine.EvaluateSentence(
      Q("forall x. lexleq('', x) & lexleq(x, append[1](x))"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  // ... and a near-miss is refuted (x ≤lex 0·x fails for x starting with 1).
  Result<bool> w = engine.EvaluateSentence(
      Q("forall x. lexleq(x, prepend[0](x))"));
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(*w);
}

TEST(NaturalSemanticsTest, AnswerSetsBeyondAnyBound) {
  Database db = SmallDb();
  AutomataEvaluator engine(&db);
  // Strings whose every prefix ending in 1 is immediately followed by 0 —
  // an infinite, adom-independent answer set. Engine A compiles it exactly.
  Result<TrackAutomaton> rel = engine.Compile(Q(
      "forall p. forall q. (p <= x & step(p, q) & q <= x & last[1](p)) -> "
      "last[0](q)"));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_FALSE(rel->IsFinite());
  // Spot-check deep members/non-members.
  Result<bool> in = rel->Contains({"0101010101010101"});
  Result<bool> out = rel->Contains({"0110"});
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(*in);
  EXPECT_FALSE(*out);
  // The language is "no 11 factor": verify against the classic automaton.
  Result<Dfa> lang = rel->UnaryLanguage();
  ASSERT_TRUE(lang.ok());
  Result<Dfa> no11 = CompileRegex("(0|10)*1?", Alphabet::Binary());
  ASSERT_TRUE(no11.ok());
  Result<bool> eq = Equivalent(*lang, *no11);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(NaturalSemanticsTest, MixedAdomAndNaturalQuantifiers) {
  Database db = SmallDb();
  AutomataEvaluator engine(&db);
  // For every stored string there exist infinitely many equal-length-plus-k
  // extensions; check one mixed-mode sentence with witnesses outside adom.
  Result<bool> v = engine.EvaluateSentence(Q(
      "forall r in adom. exists x. r < x & !adom(x) & last[1](x) & "
      "exists y. x < y & !adom(y) & last[0](y)"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(NaturalSemanticsTest, EmptyDatabaseStillDecides) {
  // Pure Th(S_len) decisions with no data at all.
  Database db(Alphabet::Binary());
  AutomataEvaluator engine(&db);
  Result<bool> v = engine.EvaluateSentence(Q(
      "forall x. exists y. eqlen(x, y) & member(y, '0*')"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Result<bool> w = engine.EvaluateSentence(Q(
      "exists x. forall y. leqlen(y, x)"));
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(*w);  // no longest string
  // On the empty database, adom-restricted claims are vacuous/false.
  Result<bool> adom_empty =
      engine.EvaluateSentence(Q("exists x in adom. x = x"));
  ASSERT_TRUE(adom_empty.ok());
  EXPECT_FALSE(*adom_empty);
  Result<bool> vacuous =
      engine.EvaluateSentence(Q("forall x in adom. false"));
  ASSERT_TRUE(vacuous.ok());
  EXPECT_TRUE(*vacuous);
}

TEST(NaturalSemanticsTest, SafetyBoundaryIsExact) {
  Database db = SmallDb();
  AutomataEvaluator engine(&db);
  // Finite: equal length to adom strings plus one.
  Result<bool> fin = engine.IsSafeOnDatabase(
      Q("exists r. R(r) & eqlen(x, append[0](r))"));
  ASSERT_TRUE(fin.ok());
  EXPECT_TRUE(*fin);
  // Infinite: at least the length.
  Result<bool> inf = engine.IsSafeOnDatabase(
      Q("exists r. R(r) & leqlen(append[0](r), x)"));
  ASSERT_TRUE(inf.ok());
  EXPECT_FALSE(*inf);
}

TEST(NaturalSemanticsTest, DeepCompositionOfFunctionTerms) {
  Database db = SmallDb();
  AutomataEvaluator engine(&db);
  // A 5-deep term pipeline: trim(prepend(insert(append(x)))) chains.
  Result<Relation> out = engine.Evaluate(Q(
      "R(x) & trim[1](prepend[1](insert[0](x, append[1](x)))) = y"));
  ASSERT_TRUE(out.ok()) << out.status();
  // For x = "0":  append -> "01"; insert_0 at p="0" -> "001";
  // prepend[1] -> "1001"; trim[1] -> "001".
  // For x = "01": append -> "011"; insert_0 at p="01" -> "0101"? No:
  // insert_0("01", "011") = "01" + 0 + "1" = "0101"; prepend -> "10101";
  // trim[1] -> "0101".
  EXPECT_TRUE(out->Contains({"0", "001"}));
  EXPECT_TRUE(out->Contains({"01", "0101"}));
  EXPECT_EQ(out->size(), 2u);
}

}  // namespace
}  // namespace strq
