// Theory-level laws of the string structures, decided over the FULL
// infinite domain Σ* by the automata engine — no database, no bounds. Each
// test is a small theorem of Th(S_len) (or a reduct) that the engine proves
// or refutes exactly; several correspond to facts the paper uses silently
// (≼ is a partial order with ∩ as meet, ≤_lex is a total order compatible
// with ≼, the string functions interact as stated in Section 2).

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

Database EmptyDb() { return Database(Alphabet::Binary()); }

// Decides a sentence over ⟨Σ*⟩ with the exact engine.
bool Theorem(const std::string& sentence) {
  Database db = EmptyDb();
  AutomataEvaluator engine(&db);
  Result<FormulaPtr> f = ParseFormula(sentence);
  EXPECT_TRUE(f.ok()) << sentence << ": " << f.status();
  if (!f.ok()) return false;
  Result<bool> v = engine.EvaluateSentence(*f);
  EXPECT_TRUE(v.ok()) << sentence << ": " << v.status();
  return v.ok() && *v;
}

TEST(LawsTest, PrefixIsAPartialOrder) {
  EXPECT_TRUE(Theorem("forall x. x <= x"));
  EXPECT_TRUE(Theorem("forall x. forall y. x <= y & y <= x -> x = y"));
  EXPECT_TRUE(
      Theorem("forall x. forall y. forall z. x <= y & y <= z -> x <= z"));
  // ... and not total.
  EXPECT_FALSE(Theorem("forall x. forall y. x <= y | y <= x"));
  // ε is the least element.
  EXPECT_TRUE(Theorem("forall x. '' <= x"));
}

TEST(LawsTest, LcpIsTheMeet) {
  // z ≼ x ∧ z ≼ y ⟺ z ≼ x∩y: the longest common prefix is the greatest
  // lower bound in the prefix order.
  EXPECT_TRUE(Theorem(
      "forall x. forall y. forall z. "
      "(z <= x & z <= y) <-> z <= lcp(x, y)"));
  EXPECT_TRUE(Theorem("forall x. forall y. lcp(x, y) = lcp(y, x)"));
  EXPECT_TRUE(Theorem("forall x. lcp(x, x) = x"));
  EXPECT_TRUE(Theorem(
      "forall x. forall y. forall z. lcp(lcp(x, y), z) = lcp(x, lcp(y, z))"));
}

TEST(LawsTest, LexLeqIsATotalOrderExtendingPrefix) {
  EXPECT_TRUE(Theorem("forall x. lexleq(x, x)"));
  EXPECT_TRUE(Theorem(
      "forall x. forall y. lexleq(x, y) & lexleq(y, x) -> x = y"));
  EXPECT_TRUE(Theorem(
      "forall x. forall y. forall z. "
      "lexleq(x, y) & lexleq(y, z) -> lexleq(x, z)"));
  EXPECT_TRUE(Theorem("forall x. forall y. lexleq(x, y) | lexleq(y, x)"));
  // Compatible with the prefix order (Section 4's definition).
  EXPECT_TRUE(Theorem("forall x. forall y. x <= y -> lexleq(x, y)"));
}

TEST(LawsTest, Section2FunctionIdentities) {
  // trim_a(f_a(x)) = x and f_a never produces ε.
  EXPECT_TRUE(Theorem("forall x. trim[1](prepend[1](x)) = x"));
  EXPECT_TRUE(Theorem("forall x. !(prepend[0](x) = '')"));
  // step relates x to l_a(x).
  EXPECT_TRUE(Theorem("forall x. step(x, append[0](x))"));
  EXPECT_TRUE(Theorem("forall x. last[0](append[0](x))"));
  // l_a and f_a commute (both sides are a·x·b for a ≠ positions).
  EXPECT_TRUE(Theorem(
      "forall x. append[1](prepend[0](x)) = prepend[0](append[1](x))"));
  // trim on a non-matching head yields ε.
  EXPECT_TRUE(Theorem("forall x. trim[0](prepend[1](x)) = ''"));
}

TEST(LawsTest, EqualLengthLaws) {
  EXPECT_TRUE(Theorem("forall x. eqlen(x, x)"));
  EXPECT_TRUE(Theorem(
      "forall x. forall y. eqlen(x, y) -> eqlen(append[0](x), append[1](y))"));
  EXPECT_TRUE(Theorem(
      "forall x. forall y. eqlen(x, y) & x <= y -> x = y"));
  EXPECT_TRUE(Theorem("forall x. forall y. leqlen(lcp(x, y), x)"));
  // Strings of equal length are prefix-comparable only when equal —
  // the width-1 trick behind Proposition 5's encoding.
  EXPECT_TRUE(Theorem(
      "forall x. forall y. eqlen(x, y) -> (x <= y <-> x = y)"));
}

TEST(LawsTest, InsertLaws) {
  // The extension operation's defining identities.
  EXPECT_TRUE(Theorem("forall x. insert[1]('', x) = prepend[1](x)"));
  EXPECT_TRUE(Theorem("forall x. insert[1](x, x) = append[1](x)"));
  EXPECT_TRUE(Theorem(
      "forall p. forall x. p <= x -> p <= insert[0](p, x)"));
  EXPECT_TRUE(Theorem(
      "forall p. forall x. p <= x -> !(insert[0](p, x) = x)"));
  // Inserting never shrinks: |insert| = |x|+1 when applicable.
  EXPECT_TRUE(Theorem(
      "forall p. forall x. p <= x -> "
      "eqlen(insert[1](p, x), append[1](x))"));
}

TEST(LawsTest, SuffixInLaws) {
  // P_L chains: P_{1*}(x, y) ∧ P_{1*}(y, z) → P_{1*}(x, z) (1* is closed
  // under concatenation).
  EXPECT_TRUE(Theorem(
      "forall x. forall y. forall z. "
      "suffixin(x, y, '1*') & suffixin(y, z, '1*') -> suffixin(x, z, '1*')"));
  // P_{Σ*}(x, y) is exactly x ≼ y.
  EXPECT_TRUE(Theorem(
      "forall x. forall y. suffixin(x, y, '(0|1)*') <-> x <= y"));
  // Membership via P_L(ε, x) — the paper's reduction.
  EXPECT_TRUE(Theorem(
      "forall x. suffixin('', x, '0*1') <-> member(x, '0*1')"));
}

TEST(LawsTest, ClassicalEquivalences) {
  Database db = EmptyDb();
  AutomataEvaluator engine(&db);
  // Pairs of open formulas that must compile to the same answer language.
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"!(x <= y | last[1](x))", "!(x <= y) & !last[1](x)"},   // De Morgan
      {"forall z. z <= x -> z <= y", "x <= y"},                // ≼ via lower sets
      {"exists z. step(x, z) & z <= y", "x < y"},              // one-step vs strict...
      {"x < y", "x <= y & !(x = y)"},
      {"lexleq(x, y) & lexleq(y, x)", "x = y"},
  };
  for (const auto& [lhs, rhs] : pairs) {
    Result<FormulaPtr> f = ParseFormula(lhs);
    Result<FormulaPtr> g = ParseFormula(rhs);
    ASSERT_TRUE(f.ok() && g.ok()) << lhs << " / " << rhs;
    Result<TrackAutomaton> a = engine.Compile(*f);
    Result<TrackAutomaton> b = engine.Compile(*g);
    ASSERT_TRUE(a.ok()) << lhs << ": " << a.status();
    ASSERT_TRUE(b.ok()) << rhs << ": " << b.status();
    ASSERT_EQ(a->vars(), b->vars()) << lhs << " / " << rhs;
    Result<bool> eq = Equivalent(a->dfa(), b->dfa());
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << lhs << "  ≢  " << rhs;
  }
}

TEST(LawsTest, QuantifierLaws) {
  EXPECT_TRUE(Theorem(
      "(forall x. last[1](append[1](x))) <-> !(exists x. "
      "!last[1](append[1](x)))"));
  // Quantifier swap on a symmetric matrix.
  EXPECT_TRUE(Theorem(
      "(exists x. exists y. eqlen(x, y) & !(x = y)) <-> "
      "(exists y. exists x. eqlen(x, y) & !(x = y))"));
}

TEST(LawsTest, NonTheoremsAreRefuted) {
  EXPECT_FALSE(Theorem("forall x. last[1](x)"));
  EXPECT_FALSE(Theorem("forall x. forall y. lcp(x, y) = x"));
  EXPECT_FALSE(Theorem("forall x. trim[1](x) = x"));
  EXPECT_FALSE(Theorem("forall p. forall x. p <= insert[0](p, x)"));
  EXPECT_FALSE(Theorem("exists x. x < x"));
}

}  // namespace
}  // namespace strq
