#include "eval/automata_eval.h"

#include <gtest/gtest.h>

#include "base/string_ops.h"
#include "logic/parser.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  // R = {0, 01, 110}; S = {(0, 01), (01, 0)}.
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  EXPECT_TRUE(db.AddRelation("S", 2, {{"0", "01"}, {"01", "0"}}).ok());
  return db;
}

TEST(AutomataEvalTest, SentenceOverRelation) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // Is there a string in R ending in 0?
  Result<bool> v = eval.EvaluateSentence(Q("exists x. R(x) & last[0](x)"));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(*v);
  // Is there a string in R ending in 1 of length exactly 1? "01","110" end
  // in 1 and 0... only "01" ends in 1. Its strict prefix "0" is in R.
  Result<bool> v2 = eval.EvaluateSentence(
      Q("exists x. exists y. R(x) & R(y) & x < y & last[1](y)"));
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v2);
  Result<bool> v3 = eval.EvaluateSentence(
      Q("forall x. R(x) -> last[0](x)"));
  ASSERT_TRUE(v3.ok());
  EXPECT_FALSE(*v3);
}

TEST(AutomataEvalTest, PaperSection2Example) {
  // "Is there a string in R ending with 10": the Section 2 example, spelled
  // with natural quantifiers. R contains 110, so yes.
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  FormulaPtr f = Q(
      "exists x. R(x) & last[0](x) & "
      "exists y. y < x & last[1](y) & !(exists z. y < z & z < x)");
  Result<bool> v = eval.EvaluateSentence(f);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(*v);

  // And no string in R ends with 11.
  FormulaPtr g = Q(
      "exists x. R(x) & last[1](x) & "
      "exists y. y < x & last[1](y) & !(exists z. y < z & z < x)");
  Result<bool> w = eval.EvaluateSentence(g);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(*w);
}

TEST(AutomataEvalTest, OpenQuerySafeOutput) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // Strict prefixes of R-strings that are in R: "0" ≺ "01".
  Result<Relation> out = eval.Evaluate(Q("R(x) & exists y. R(y) & x < y"));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{"0"}));
}

TEST(AutomataEvalTest, NaturalQuantifierBeyondActiveDomain) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // ∃y: y = x·1 ∧ y ∈ R — i.e. x is an R-string minus trailing 1. Natural
  // semantics needed: for x="0" the witness "01" is in adom here, but for
  // the negation test below witnesses are NOT in the active domain.
  Result<Relation> out = eval.Evaluate(Q("exists y. R(y) & append[1](x) = y"));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{"0"}));

  // True natural-quantifier sentence with witnesses outside adom: every
  // string has a proper extension ending in 1 (witness never in R for long
  // x). The restricted evaluator cannot even express this; engine A decides
  // it exactly.
  Result<bool> v = eval.EvaluateSentence(
      Q("forall x. exists y. x < y & last[1](y)"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(AutomataEvalTest, UnsafeQueryDetected) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // All extensions of R-strings: infinite (classic unsafe query).
  FormulaPtr f = Q("exists y. R(y) & y <= x");
  Result<bool> safe = eval.IsSafeOnDatabase(f);
  ASSERT_TRUE(safe.ok());
  EXPECT_FALSE(*safe);
  Result<Relation> out = eval.Evaluate(f);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsafe);
}

TEST(AutomataEvalTest, SafeQueryEvaluates) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // All prefixes of R-strings: finite.
  FormulaPtr f = Q("exists y. R(y) & x <= y");
  Result<bool> safe = eval.IsSafeOnDatabase(f);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(*safe);
  Result<Relation> out = eval.Evaluate(f);
  ASSERT_TRUE(out.ok());
  // prefix closure of {0, 01, 110}: ε,0,01,1,11,110 -> 6 strings.
  EXPECT_EQ(out->size(), 6u);
}

TEST(AutomataEvalTest, NegationIsRelativeToAllStrings) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // ¬R(x) is infinite (all strings except three).
  Result<bool> safe = eval.IsSafeOnDatabase(Q("!R(x)"));
  ASSERT_TRUE(safe.ok());
  EXPECT_FALSE(*safe);
  // But ¬R(x) ∧ x ≼ '01' is finite: prefixes of 01 not in R = {ε, 1}? No:
  // prefixes of 01: ε, 0, 01; minus R = {ε}.
  Result<Relation> out = eval.Evaluate(Q("!R(x) & x <= '01'"));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{""}));
}

TEST(AutomataEvalTest, CompositeTerms) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // y = 1·(x·0) for x = "01": y = "1010".
  Result<Relation> out =
      eval.Evaluate(Q("x = '01' & prepend[1](append[0](x)) = y"));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{"01", "1010"}));
}

TEST(AutomataEvalTest, TrimSemantiics) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // trim[1]('110') = '10', trim[1]('01') = ''.
  Result<bool> v1 = eval.EvaluateSentence(Q("trim[1]('110') = '10'"));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(*v1);
  Result<bool> v2 = eval.EvaluateSentence(Q("trim[1]('01') = ''"));
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(*v2);
}

TEST(AutomataEvalTest, LcpTerm) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  Result<bool> v = eval.EvaluateSentence(Q("lcp('0110', '010') = '01'"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  // lcp(x, x) = x (repeated-variable handling).
  Result<bool> refl = eval.EvaluateSentence(Q("forall x. lcp(x, x) = x"));
  ASSERT_TRUE(refl.ok());
  EXPECT_TRUE(*refl);
}

TEST(AutomataEvalTest, RepeatedVariableAtoms) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  Result<bool> v = eval.EvaluateSentence(Q("forall x. x <= x"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Result<bool> w = eval.EvaluateSentence(Q("exists x. x < x"));
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(*w);
}

TEST(AutomataEvalTest, PatternPredicates) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  Result<Relation> like = eval.Evaluate(Q("R(x) & like(x, '%1')"));
  ASSERT_TRUE(like.ok());
  ASSERT_EQ(like->size(), 1u);
  EXPECT_EQ(like->tuples()[0], (Tuple{"01"}));

  Result<Relation> member = eval.Evaluate(Q("R(x) & member(x, '1*0')"));
  ASSERT_TRUE(member.ok());
  // 1*0 matches "0" and "110".
  EXPECT_EQ(member->size(), 2u);

  Result<Relation> similar = eval.Evaluate(Q("R(x) & member(x, '%11%', similar)"));
  ASSERT_TRUE(similar.ok());
  ASSERT_EQ(similar->size(), 1u);
  EXPECT_EQ(similar->tuples()[0], (Tuple{"110"}));
}

TEST(AutomataEvalTest, SuffixInPredicate) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // P_L(x, '110') with L = 1*: x ≼ 110, 110 − x ∈ 1* — x ∈ {110, 11? no:
  // suffixes: x=110 -> ε ∈ 1* ✓; x=11 -> "0" ∉ 1*; x=1 -> "10" ∉; x=ε ->
  // "110" ∉. So exactly {"110"}.
  Result<Relation> out = eval.Evaluate(Q("suffixin(x, '110', '1*')"));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{"110"}));
}

TEST(AutomataEvalTest, AdomPredicate) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  Result<Relation> out = eval.Evaluate(Q("adom(x) & last[1](x)"));
  ASSERT_TRUE(out.ok());
  // adom = {0, 01, 110}; ending in 1: {01}.
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{"01"}));
}

TEST(AutomataEvalTest, RestrictedQuantifierDesugaring) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // ∃x∈adom: trivially true here.
  Result<bool> v = eval.EvaluateSentence(Q("exists x in adom. x = x"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  // The ∃y ≼ dom range includes prefixes of the *parameters* (the free
  // variables of the body, here x), so y = x is always witnessed and the
  // unbounded query is infinite — exactly the paper's semantics.
  FormulaPtr leaky = Q("exists y pre adom. y = x & last[1](x)");
  Result<bool> safe = eval.IsSafeOnDatabase(leaky);
  ASSERT_TRUE(safe.ok());
  EXPECT_FALSE(*safe);
  // Bounding x makes it finite: prefixes of "110" ending in 1: {1, 11}.
  Result<Relation> out = eval.Evaluate(
      Q("exists y pre adom. y = x & last[1](x) & x <= '110'"));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->size(), 2u);
  // Same through a length-restricted quantifier.
  Result<Relation> len = eval.Evaluate(
      Q("exists y len adom. y = x & last[1](x) & x <= '110'"));
  ASSERT_TRUE(len.ok()) << len.status();
  EXPECT_EQ(len->size(), 2u);
  // Without parameters the pre-adom range is the adom prefix closure:
  // prefixes of {0,01,110} ending in 1 but not in adom: "1", "11".
  Result<bool> pre = eval.EvaluateSentence(
      Q("exists x pre adom. last[1](x) & !adom(x)"));
  ASSERT_TRUE(pre.ok());
  EXPECT_TRUE(*pre);
}

TEST(AutomataEvalTest, LexicographicOrder) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // Minimum of R in lexicographic order is "0".
  Result<Relation> out = eval.Evaluate(
      Q("R(x) & forall y. R(y) -> lexleq(x, y)"));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], (Tuple{"0"}));
}

TEST(AutomataEvalTest, EqLenQueries) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // Pairs in S of equal length: none ((0,01) and (01,0) differ).
  Result<bool> v = eval.EvaluateSentence(
      Q("exists x. exists y. S(x, y) & eqlen(x, y)"));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(*v);
  // The equal-length strings of length of "01" form an infinite? No: finite
  // set {00,01,10,11}: safe.
  Result<Relation> out = eval.Evaluate(Q("eqlen(x, '01')"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);
}

TEST(AutomataEvalTest, SentenceRejectsFreeVars) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  EXPECT_FALSE(eval.EvaluateSentence(Q("R(x)")).ok());
}

TEST(AutomataEvalTest, ConcatRejected) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  Result<bool> v = eval.EvaluateSentence(Q("exists x. concat(x, x) = x"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnsupported);
}

TEST(AutomataEvalTest, UnknownRelationRejected) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  EXPECT_FALSE(eval.EvaluateSentence(Q("exists x. Nope(x)")).ok());
}

TEST(AutomataEvalTest, UnusedQuantifiedVariable) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  Result<bool> v = eval.EvaluateSentence(Q("exists x. '0' <= '01'"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Result<bool> w = eval.EvaluateSentence(Q("forall x. '0' <= '01'"));
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(*w);
}

TEST(AutomataEvalTest, VariableShadowing) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  // exists x (R(x) & exists x (S-pair with first component x)) — inner x
  // shadows outer; the sentence is satisfiable.
  Result<bool> v = eval.EvaluateSentence(
      Q("exists x. R(x) & exists x. S(x, '01')"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

// Differential property test: engine A agrees with brute-force enumeration
// of the natural semantics restricted to a window large enough to contain
// all answers for these safe queries.
TEST(AutomataEvalTest, AgreesWithBruteForceOnSafeQueries) {
  Database db = BinaryDb();
  AutomataEvaluator eval(&db);
  const std::vector<std::string> queries = {
      "exists y. R(y) & x <= y",
      "R(x) & like(x, '%0')",
      "exists y. R(y) & step(x, y)",
      "adom(x) & !last[1](x)",
      "exists y. S(x, y)",
      "exists y. S(y, x) & x < y",
  };
  for (const std::string& qs : queries) {
    FormulaPtr f = Q(qs);
    Result<Relation> out = eval.Evaluate(f);
    ASSERT_TRUE(out.ok()) << qs << ": " << out.status();
    // Brute force over all strings up to length 4 using a fresh automata
    // check per point (Contains on the compiled relation): instead verify
    // every reported tuple satisfies membership and every window string not
    // reported does not.
    Result<TrackAutomaton> rel = eval.Compile(f);
    ASSERT_TRUE(rel.ok());
    for (const std::string& s : AllStringsUpToLength("01", 4)) {
      Result<bool> in = rel->Contains({s});
      ASSERT_TRUE(in.ok());
      bool reported = out->Contains({s});
      EXPECT_EQ(*in, reported) << qs << " on " << s;
    }
  }
}

}  // namespace
}  // namespace strq
