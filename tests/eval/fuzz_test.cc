// Differential fuzzing: randomly generated restricted-quantifier sentences
// evaluated by both engines (exact automata semantics vs direct
// enumeration). Any disagreement is a bug in one of the two independent
// implementations — this is the collapse theorems (1, 2, 6) leveraged as a
// test oracle over a much larger query space than the curated batteries.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/ast.h"
#include "logic/parser.h"
#include "logic/signature.h"
#include "plan/planner.h"

namespace strq {
namespace {

// Random formula generator over a scope of bound variables. All quantifiers
// use restricted ranges so engine B can evaluate; atoms cover the S_len
// signature (which subsumes all the tame calculi).
class FormulaFuzzer {
 public:
  FormulaFuzzer(uint64_t seed, bool allow_len) : rng_(seed),
                                                 allow_len_(allow_len) {}

  FormulaPtr Sentence(int depth) {
    std::vector<std::string> scope;
    // Top level: a quantifier so the sentence is closed.
    return Quantified(depth, scope);
  }

  // Open formula over the given free variables (each may or may not occur).
  FormulaPtr Open(int depth, std::vector<std::string> free_vars) {
    return Gen(depth, free_vars);
  }

 private:
  TermPtr RandomTerm(const std::vector<std::string>& scope, int depth) {
    if (depth <= 0 || scope.empty() || rng_.NextBelow(3) == 0) {
      if (scope.empty() || rng_.NextBelow(4) == 0) {
        return TConst(rng_.NextString("01", 0, 2));
      }
      return TVar(scope[rng_.NextBelow(scope.size())]);
    }
    switch (rng_.NextBelow(5)) {
      case 0:
        return TAppend(RandomLetter(), RandomTerm(scope, depth - 1));
      case 1:
        return TPrepend(RandomLetter(), RandomTerm(scope, depth - 1));
      case 2:
        return TTrim(RandomLetter(), RandomTerm(scope, depth - 1));
      case 3:
        return TInsert(RandomLetter(), RandomTerm(scope, depth - 1),
                       RandomTerm(scope, depth - 1));
      default:
        return TLcp(RandomTerm(scope, depth - 1),
                    RandomTerm(scope, depth - 1));
    }
  }

  char RandomLetter() { return rng_.NextBool() ? '0' : '1'; }

  FormulaPtr Atom(const std::vector<std::string>& scope) {
    TermPtr t1 = RandomTerm(scope, 1);
    TermPtr t2 = RandomTerm(scope, 1);
    switch (rng_.NextBelow(allow_len_ ? 9 : 7)) {
      case 0:
        return FPred(PredKind::kEq, {t1, t2});
      case 1:
        return FPred(PredKind::kPrefix, {t1, t2});
      case 2:
        return FPred(PredKind::kStrictPrefix, {t1, t2});
      case 3:
        return FPred(PredKind::kOneStep, {t1, t2});
      case 4:
        return FLast(RandomLetter(), t1);
      case 5:
        return FPred(PredKind::kLexLeq, {t1, t2});
      case 6:
        return rng_.NextBool() ? FRelation("R", {t1})
                               : FPred(PredKind::kAdom, {t1});
      case 7:
        return FPred(PredKind::kEqLen, {t1, t2});
      default:
        return FPred(PredKind::kLeqLen, {t1, t2});
    }
  }

  FormulaPtr Quantified(int depth, std::vector<std::string>& scope) {
    std::string var = "v" + std::to_string(scope.size());
    // kLenDom ranges explode engine B; keep them rare and only when
    // requested.
    QuantRange range = QuantRange::kAdom;
    uint64_t pick = rng_.NextBelow(allow_len_ ? 5 : 4);
    if (pick >= 2 && pick < 4) range = QuantRange::kPrefixDom;
    if (pick == 4) range = QuantRange::kLenDom;
    scope.push_back(var);
    FormulaPtr body = Gen(depth - 1, scope);
    scope.pop_back();
    return rng_.NextBool() ? FExists(var, body, range)
                           : FForall(var, body, range);
  }

  FormulaPtr Gen(int depth, std::vector<std::string>& scope) {
    if (depth <= 0 || rng_.NextBelow(3) == 0) return Atom(scope);
    switch (rng_.NextBelow(6)) {
      case 0:
        return FNot(Gen(depth - 1, scope));
      case 1:
        return FAnd(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 2:
        return FOr(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 3:
        return FImplies(Gen(depth - 1, scope), Gen(depth - 1, scope));
      default:
        return Quantified(depth, scope);
    }
  }

  Rng rng_;
  bool allow_len_;
};

Database FuzzDb(uint64_t seed) {
  Database db(Alphabet::Binary());
  Rng rng(seed);
  std::vector<Tuple> tuples;
  for (const std::string& s : rng.DistinctStrings("01", 0, 3, 5)) {
    tuples.push_back({s});
  }
  Status status = db.AddRelation("R", 1, std::move(tuples));
  (void)status;
  return db;
}

class FuzzAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzAgreementTest, EnginesAgreeOnRandomSentences) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  FormulaFuzzer fuzzer(seed * 7919 + 1, /*allow_len=*/GetParam() % 3 == 0);
  Database db = FuzzDb(seed * 104729 + 3);
  AutomataEvaluator engine_a(&db);
  RestrictedEvaluator engine_b(&db);
  for (int i = 0; i < 25; ++i) {
    FormulaPtr f = fuzzer.Sentence(3);
    Result<bool> a = engine_a.EvaluateSentence(f);
    Result<bool> b = engine_b.EvaluateSentence(f);
    // Budget errors are acceptable (skip); disagreement is not.
    if (!a.ok() || !b.ok()) {
      EXPECT_NE(a.status().code(), StatusCode::kInternal) << ToString(f);
      EXPECT_NE(b.status().code(), StatusCode::kInternal) << ToString(f);
      continue;
    }
    EXPECT_EQ(*a, *b) << "engines disagree on: " << ToString(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAgreementTest,
                         ::testing::Range(1, 13));

// Store-substrate differential fuzz: the same random sentences evaluated
// with hash-consing fully on (shared warm cache), fully off (non-caching
// AutomatonStore), and with a per-sentence cold cache must produce identical
// truth values. This is the "the store is an optimization, never a
// semantics" invariant — memoization keyed on intern identity may only ever
// return what recomputation would.
class StoreAblationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(StoreAblationFuzzTest, StoreOnOffAgreeOnRandomSentences) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  FormulaFuzzer fuzzer(seed * 6121 + 5, /*allow_len=*/GetParam() % 2 == 0);
  Database db = FuzzDb(seed * 31337 + 11);

  AutomatonStore store_off(false);
  auto cache_off = std::make_shared<AtomCache>(db.alphabet(), &store_off);
  AutomatonStore store_on(true);
  auto cache_on = std::make_shared<AtomCache>(db.alphabet(), &store_on);

  AutomataEvaluator engine_off(&db, cache_off);
  AutomataEvaluator engine_warm(&db, cache_on);  // warms up across sentences
  for (int i = 0; i < 25; ++i) {
    FormulaPtr f = fuzzer.Sentence(3);
    Result<bool> off = engine_off.EvaluateSentence(f);
    Result<bool> warm = engine_warm.EvaluateSentence(f);
    // Cold: fresh store + cache per sentence, nothing shared.
    AutomatonStore store_cold(true);
    auto cache_cold = std::make_shared<AtomCache>(db.alphabet(), &store_cold);
    AutomataEvaluator engine_cold(&db, cache_cold);
    Result<bool> cold = engine_cold.EvaluateSentence(f);
    ASSERT_EQ(off.ok(), warm.ok()) << ToString(f);
    ASSERT_EQ(off.ok(), cold.ok()) << ToString(f);
    if (!off.ok()) continue;
    EXPECT_EQ(*off, *warm) << "store on/off disagree on: " << ToString(f);
    EXPECT_EQ(*off, *cold) << "cold/off disagree on: " << ToString(f);
  }
  // Sanity: the warm cache actually exercised the memoization paths.
  EXPECT_GT(store_on.stats().op_hits, 0);
  EXPECT_EQ(store_off.stats().op_hits, 0);
  EXPECT_EQ(store_off.stats().unique_hits, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreAblationFuzzTest, ::testing::Range(1, 7));

// Planner differential fuzz: every random formula evaluated with the
// default planner (all rewrite rules on) and with planning disabled must
// produce the same answer — truth values for sentences, tuple-for-tuple
// relations for open formulas — on BOTH engines. The planner rules carry
// range-soundness gates (see src/plan/rules.h); this is the broad-spectrum
// check that no gate is missing.
std::shared_ptr<plan::Planner> DisabledPlanner() {
  plan::PlannerOptions off;
  off.enable = false;
  return std::make_shared<plan::Planner>(off);
}

class PlannerDifferentialFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PlannerDifferentialFuzzTest, PlannedAndUnplannedSentencesAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  FormulaFuzzer fuzzer(seed * 4241 + 9, /*allow_len=*/GetParam() % 3 == 0);
  Database db = FuzzDb(seed * 15485863 + 7);

  AutomataEvaluator a_planned(&db);
  AutomataEvaluator a_unplanned(&db, nullptr, DisabledPlanner());
  RestrictedEvaluator b_planned(&db);
  RestrictedEvaluator b_unplanned(&db);
  b_unplanned.set_planner(DisabledPlanner());
  for (int i = 0; i < 25; ++i) {
    FormulaPtr f = fuzzer.Sentence(3);
    Result<bool> ap = a_planned.EvaluateSentence(f);
    Result<bool> au = a_unplanned.EvaluateSentence(f);
    ASSERT_EQ(ap.ok(), au.ok()) << ToString(f);
    if (ap.ok()) {
      EXPECT_EQ(*ap, *au) << "engine A planned/unplanned disagree on: "
                          << ToString(f);
    }
    Result<bool> bp = b_planned.EvaluateSentence(f);
    Result<bool> bu = b_unplanned.EvaluateSentence(f);
    ASSERT_EQ(bp.ok(), bu.ok()) << ToString(f);
    if (bp.ok()) {
      EXPECT_EQ(*bp, *bu) << "engine B planned/unplanned disagree on: "
                          << ToString(f);
    }
  }
}

TEST_P(PlannerDifferentialFuzzTest, PlannedAndUnplannedOpenFormulasAgree) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  FormulaFuzzer fuzzer(seed * 9973 + 1, /*allow_len=*/false);
  Database db = FuzzDb(seed * 28657 + 13);

  AutomataEvaluator a_planned(&db);
  AutomataEvaluator a_unplanned(&db, nullptr, DisabledPlanner());
  RestrictedEvaluator b_planned(&db);
  RestrictedEvaluator b_unplanned(&db);
  b_unplanned.set_planner(DisabledPlanner());
  std::vector<std::string> candidates = b_planned.PrefixDomCandidates();
  for (int i = 0; i < 20; ++i) {
    FormulaPtr f = fuzzer.Open(3, {"x", "y"});
    // Engine A: full answer relations (skip database-unsafe formulas — both
    // sides must agree the query is unsafe, since planning preserves the
    // answer set and hence its finiteness).
    Result<Relation> ap = a_planned.Evaluate(f);
    Result<Relation> au = a_unplanned.Evaluate(f);
    ASSERT_EQ(ap.ok(), au.ok()) << ToString(f);
    if (ap.ok()) {
      EXPECT_EQ(*ap, *au) << "engine A planned/unplanned answers differ on: "
                          << ToString(f);
    }
    // Engine B: restricted semantics over the same candidate sets.
    Result<Relation> bp = b_planned.EvaluateOnCandidates(f, candidates);
    Result<Relation> bu = b_unplanned.EvaluateOnCandidates(f, candidates);
    ASSERT_EQ(bp.ok(), bu.ok()) << ToString(f);
    if (bp.ok()) {
      EXPECT_EQ(*bp, *bu) << "engine B planned/unplanned answers differ on: "
                          << ToString(f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDifferentialFuzzTest,
                         ::testing::Range(1, 11));

// Round-trip fuzz: every generated sentence must re-parse from its printed
// form to a formula with the same print and the same truth value.
TEST(FuzzRoundTripTest, PrintParseEvaluate) {
  FormulaFuzzer fuzzer(424243, /*allow_len=*/true);
  Database db = FuzzDb(99);
  AutomataEvaluator engine(&db);
  for (int i = 0; i < 40; ++i) {
    FormulaPtr f = fuzzer.Sentence(3);
    std::string printed = ToString(f);
    Result<FormulaPtr> reparsed = ParseFormula(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
    EXPECT_EQ(printed, ToString(*reparsed));
    Result<bool> v1 = engine.EvaluateSentence(f);
    Result<bool> v2 = engine.EvaluateSentence(*reparsed);
    if (v1.ok() && v2.ok()) EXPECT_EQ(*v1, *v2) << printed;
  }
}

}  // namespace
}  // namespace strq
