// The `~k` bounded-edit-distance similarity atom: parsing, printing, both
// engines agreeing, and the trie-guided candidate pruning it unlocks in
// Engine B's quantifier scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automata/levenshtein.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/ast.h"
#include "logic/parser.h"
#include "obs/trace.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database SimDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1,
                             {{"0"},
                              {"01"},
                              {"010"},
                              {"0110"},
                              {"1"},
                              {"11"},
                              {"1010"}})
                  .ok());
  return db;
}

TEST(SimilarityParseTest, ParsesNearAtom) {
  Result<FormulaPtr> f = ParseFormula("x ~2 '01'");
  ASSERT_TRUE(f.ok()) << f.status();
  ASSERT_EQ((*f)->kind, FormulaKind::kPred);
  EXPECT_EQ((*f)->pred, PredKind::kNear);
  EXPECT_EQ((*f)->pattern, "01");
  EXPECT_EQ((*f)->distance, 2);
}

TEST(SimilarityParseTest, PrintParseRoundTrip) {
  for (const char* text :
       {"x ~1 '01'", "x ~0 ''", "append[1](x) ~2 '010'",
        "exists v0 in adom. (R(v0) & v0 ~1 '01')"}) {
    Result<FormulaPtr> f = ParseFormula(text);
    ASSERT_TRUE(f.ok()) << text << ": " << f.status();
    std::string printed = ToString(*f);
    Result<FormulaPtr> reparsed = ParseFormula(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
    EXPECT_EQ(printed, ToString(*reparsed)) << text;
  }
}

TEST(SimilarityParseTest, RejectsMalformedNear) {
  // Budget digits are part of the token; a bare '~' cannot lex.
  EXPECT_FALSE(ParseFormula("x ~ '01'").ok());
  // The right-hand side must be a literal word.
  EXPECT_FALSE(ParseFormula("x ~1 y").ok());
  // Absurd budgets are rejected before they reach the automaton builder.
  EXPECT_FALSE(ParseFormula("x ~99999 '01'").ok());
}

TEST(SimilarityEvalTest, AnswersMatchBruteForce) {
  Database db = SimDb();
  AutomataEvaluator eval(&db);
  const Relation* r = db.Find("R");
  ASSERT_NE(r, nullptr);
  for (int k = 0; k <= 2; ++k) {
    FormulaPtr f = Q("R(x) & x ~" + std::to_string(k) + " '010'");
    Result<Relation> out = eval.Evaluate(f);
    ASSERT_TRUE(out.ok()) << out.status();
    std::vector<Tuple> expected;
    for (const Tuple& t : r->tuples()) {
      if (WithinEditDistance(t[0], "010", k)) expected.push_back(t);
    }
    std::sort(expected.begin(), expected.end());
    std::vector<Tuple> got = out->tuples();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "k=" << k;
  }
}

TEST(SimilarityEvalTest, EnginesAgreeOnSentences) {
  Database db = SimDb();
  AutomataEvaluator engine_a(&db);
  RestrictedEvaluator engine_b(&db);
  for (const char* text :
       {"exists x in adom. (R(x) & x ~1 '01')",
        "forall x in adom. (R(x) -> x ~2 '010')",
        "exists x in adom. (R(x) & x ~0 '11')",
        "exists x pre adom. x ~1 '111'",
        "forall x in adom. (x ~4 '01' | x ~1 '1010')"}) {
    FormulaPtr f = Q(text);
    Result<bool> a = engine_a.EvaluateSentence(f);
    Result<bool> b = engine_b.EvaluateSentence(f);
    ASSERT_TRUE(a.ok()) << text << ": " << a.status();
    ASSERT_TRUE(b.ok()) << text << ": " << b.status();
    EXPECT_EQ(*a, *b) << "engines disagree on: " << text;
  }
}

TEST(SimilarityEvalTest, NearGuardPrunesCandidateScan) {
  // A selective ~k guard on the quantified variable lets Engine B's
  // DFA-guided trie scan skip most of the active domain; the enumerated +
  // pruned counters must add up to the full candidate count, and the
  // answer must match the unpruned semantics.
  obs::ScopedEnable tracing(true);
  obs::MetricsRegistry::Global().Reset();
  Database db = SimDb();
  RestrictedEvaluator engine_b(&db);
  FormulaPtr f = Q("exists x in adom. (x ~0 '010' & R(x))");
  Result<bool> pruned = engine_b.EvaluateSentence(f);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_TRUE(*pruned);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  int64_t enumerated = metrics.Get(obs::kRestrictedCandidates);
  int64_t skipped = metrics.Get(obs::kRestrictedCandidatesPruned);
  EXPECT_GT(skipped, 0);
  // adom(R) has 7 strings; the guard admits exactly one of them.
  EXPECT_EQ(enumerated + skipped, 7);

  // Same sentence where the guard admits nothing.
  FormulaPtr g = Q("exists x in adom. (x ~0 '00000' & R(x))");
  Result<bool> none = engine_b.EvaluateSentence(g);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_FALSE(*none);
}

}  // namespace
}  // namespace strq
