// Determinism under parallelism: every parallel path added with the thread
// pool (subplan compilation in engine A, candidate-space partitioning in
// engine B, the parallel sigma scan in the algebra engine, and the
// per-disjunct safety decisions) must produce byte-identical results to the
// serial run — same answers, same tuple order, and, for engine A, the same
// canonical store ids. The store interns by language, so id equality is the
// sharpest available check that the parallel compilation built the very
// same automaton.

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "eval/restricted_eval.h"
#include "logic/parser.h"
#include "safety/query_safety.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *std::move(f);
}

Database WideDb() {
  Database db(Alphabet::Binary());
  std::vector<Tuple> r, s;
  for (const std::string& a : {"0", "1", "00", "01", "10", "11", "010",
                               "101", "0110", "1001"}) {
    r.push_back({a});
  }
  for (const std::string& a : {"01", "10", "110", "011", "0101"}) {
    s.push_back({a});
  }
  EXPECT_TRUE(db.AddRelation("R", 1, std::move(r)).ok());
  EXPECT_TRUE(db.AddRelation("S", 1, std::move(s)).ok());
  return db;
}

// Wide conjunctions/disjunctions so the planner emits parallelizable folds
// with several independent children.
const char* kQueries[] = {
    "R(x) & x <= '0110' & last[0](x) & !S(x)",
    "(R(x) & last[0](x)) | (S(x) & last[1](x)) | x = '010'",
    "exists y in adom. (R(y) & y <= x & R(x) & last[0](x))",
    "R(x) & (last[0](x) | last[1](x)) & !(x = '1') & x <= '1001'",
};

TEST(ParallelEvalTest, AutomataEngineAnswersAndStoreIdsMatchSerial) {
  Database db = WideDb();
  // One shared store: language-identical compilations intern to the same id
  // no matter which evaluator (or worker thread) got there first.
  AutomatonStore store(true);
  auto cache = std::make_shared<AtomCache>(db.alphabet(), &store);

  for (const char* text : kQueries) {
    FormulaPtr f = Q(text);
    // Parallel first so its compilation populates the store cold; the
    // serial run then must intern the very same canonical automaton.
    AutomataEvaluator par(&db, cache);
    par.set_parallel_options(ParallelOptions{4});
    AutomataEvaluator ser(&db, cache);
    ser.set_parallel_options(ParallelOptions{1});

    Result<TrackAutomaton> cp = par.Compile(f);
    Result<TrackAutomaton> cs = ser.Compile(f);
    ASSERT_TRUE(cp.ok()) << text << ": " << cp.status().ToString();
    ASSERT_TRUE(cs.ok()) << text << ": " << cs.status().ToString();
    EXPECT_EQ(cp->dfa_ref().id(), cs->dfa_ref().id()) << text;

    Result<Relation> ap = par.Evaluate(f);
    Result<Relation> as = ser.Evaluate(f);
    ASSERT_TRUE(ap.ok()) << text;
    ASSERT_TRUE(as.ok()) << text;
    EXPECT_EQ(*ap, *as) << text;
  }
}

TEST(ParallelEvalTest, RestrictedEngineTupleOrderMatchesSerial) {
  Database db = WideDb();
  for (const char* text :
       {"R(x) & last[0](x)", "y <= x & R(x)", "x <= y & S(y) & last[1](x)"}) {
    FormulaPtr f = Q(text);
    RestrictedEvaluator par(&db);
    par.set_parallel_options(ParallelOptions{4});
    RestrictedEvaluator ser(&db);
    ser.set_parallel_options(ParallelOptions{1});
    std::vector<std::string> candidates = ser.PrefixDomCandidates();
    Result<Relation> rp = par.EvaluateOnCandidates(f, candidates);
    Result<Relation> rs = ser.EvaluateOnCandidates(f, candidates);
    ASSERT_TRUE(rp.ok()) << text << ": " << rp.status().ToString();
    ASSERT_TRUE(rs.ok()) << text;
    // Relation equality is tuple-for-tuple including order: the parallel
    // partitions must concatenate back into the serial enumeration order.
    EXPECT_EQ(rp->tuples(), rs->tuples()) << text;
  }
}

TEST(ParallelEvalTest, AlgebraSigmaScanMatchesSerial) {
  // Enough tuples to clear the parallel-scan threshold (n >= 64).
  Database db(Alphabet::Binary());
  std::vector<Tuple> tuples;
  for (int i = 0; i < 200; ++i) {
    std::string s;
    for (int b = 0; b < 8; ++b) s.push_back(((i >> b) & 1) ? '1' : '0');
    tuples.push_back({s});
  }
  ASSERT_TRUE(db.AddRelation("T", 1, std::move(tuples)).ok());

  RaPtr scan = RaScan("T");
  RaPtr select = RaSelect(Q("last[1](c0) & !(c0 <= '00000000')"), scan);
  AlgebraEvaluator par(&db);
  par.set_parallel_options(ParallelOptions{4});
  AlgebraEvaluator ser(&db);
  ser.set_parallel_options(ParallelOptions{1});
  Result<Relation> rp = par.Evaluate(select);
  Result<Relation> rs = ser.Evaluate(select);
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rp->tuples(), rs->tuples());
  EXPECT_GT(rs->size(), 0u);
}

TEST(ParallelEvalTest, UnionOfCQsSafetyMatchesSerial) {
  Alphabet bin = Alphabet::Binary();
  std::vector<ConjunctiveQuery> cqs;
  for (const char* text :
       {"exists y. R(y) & x <= y",            // safe: x below a db value
        "exists y. R(y) & y <= x",            // unsafe: x unbounded above
        "exists y. R(y) & x = y"}) {          // safe: x equals a db value
    Result<ConjunctiveQuery> cq = ExtractConjunctiveQuery(Q(text));
    ASSERT_TRUE(cq.ok()) << text << ": " << cq.status().ToString();
    cqs.push_back(*std::move(cq));
  }
  Result<bool> par = UnionOfCQsSafe(cqs, bin, nullptr, ParallelOptions{4});
  Result<bool> ser = UnionOfCQsSafe(cqs, bin, nullptr, ParallelOptions{1});
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ASSERT_TRUE(ser.ok());
  EXPECT_EQ(*par, *ser);
  EXPECT_FALSE(*par);  // the middle disjunct is unsafe

  // All-safe union: both modes agree on the positive answer too.
  cqs.erase(cqs.begin() + 1);
  Result<bool> par2 = UnionOfCQsSafe(cqs, bin, nullptr, ParallelOptions{4});
  Result<bool> ser2 = UnionOfCQsSafe(cqs, bin, nullptr, ParallelOptions{1});
  ASSERT_TRUE(par2.ok() && ser2.ok());
  EXPECT_TRUE(*par2);
  EXPECT_EQ(*par2, *ser2);
}

}  // namespace
}  // namespace strq
