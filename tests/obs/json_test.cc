#include "obs/json.h"

#include <gtest/gtest.h>

namespace strq {
namespace obs {
namespace {

TEST(JsonValueTest, ScalarsDump) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Int(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Number(1.5).Dump(), "1.5");
  // Integral doubles print without a fractional tail.
  EXPECT_EQ(JsonValue::Number(3.0).Dump(), "3");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, StringEscaping) {
  EXPECT_EQ(JsonValue::Str("a\"b\\c").Dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(JsonValue::Str("line\nbreak\ttab").Dump(),
            "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(JsonValue::Str(std::string("nul\x01")).Dump(), "\"nul\\u0001\"");
}

TEST(JsonValueTest, ObjectPreservesInsertionOrderAndSetOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("z", JsonValue::Int(1));
  obj.Set("a", JsonValue::Int(2));
  obj.Set("z", JsonValue::Int(3));
  EXPECT_EQ(obj.Dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->AsNumber(), 2);
  EXPECT_EQ(obj.Find("nope"), nullptr);
}

TEST(JsonValueTest, PrettyDumpIndents) {
  JsonValue obj = JsonValue::Object();
  JsonValue xs = JsonValue::Array();
  xs.Append(JsonValue::Int(1));
  xs.Append(JsonValue::Int(2));
  obj.Set("xs", std::move(xs));
  EXPECT_EQ(obj.Dump(2), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonParseTest, RoundTripsTheBenchSchema) {
  JsonValue out = JsonValue::Object();
  out.Set("schema", JsonValue::Str("strq.bench.v1"));
  out.Set("smoke", JsonValue::Bool(true));
  JsonValue series = JsonValue::Array();
  JsonValue one = JsonValue::Object();
  one.Set("name", JsonValue::Str("single-scan"));
  JsonValue ys = JsonValue::Array();
  ys.Append(JsonValue::Number(0.0012));
  ys.Append(JsonValue::Number(0.0031));
  one.Set("ys", std::move(ys));
  series.Append(std::move(one));
  out.Set("series", std::move(series));

  for (int indent : {-1, 2}) {
    Result<JsonValue> back = ParseJson(out.Dump(indent));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->Dump(), out.Dump());
  }
}

TEST(JsonParseTest, ParsesEscapesAndUnicode) {
  Result<JsonValue> v = ParseJson("\"a\\n\\\"\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\n\"A\xc3\xa9");
}

TEST(JsonParseTest, ParsesNumbers) {
  Result<JsonValue> v = ParseJson("[-0.5, 1e3, 2.5E-2, 10]");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 4u);
  EXPECT_DOUBLE_EQ(v->At(0).AsNumber(), -0.5);
  EXPECT_DOUBLE_EQ(v->At(1).AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(v->At(2).AsNumber(), 0.025);
  EXPECT_DOUBLE_EQ(v->At(3).AsNumber(), 10.0);
}

TEST(JsonParseTest, Int64RoundTripsAboveDoublePrecision) {
  // Span ids and byte counters are int64; a double mantissa holds only 53
  // bits, so values above 2^53 must round-trip through the distinct integer
  // kind, not through doubles.
  const int64_t values[] = {
      (int64_t{1} << 53) + 1,        // first value a double cannot represent
      int64_t{9007199254740993},     // same, spelled out
      INT64_MAX,                     // 9223372036854775807
      INT64_MAX - 1,
      -(int64_t{1} << 53) - 1,
      INT64_MIN + 1,
  };
  for (int64_t v : values) {
    JsonValue j = JsonValue::Int(v);
    std::string text = j.Dump();
    Result<JsonValue> back = ParseJson(text);
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_TRUE(back->is_int()) << text;
    EXPECT_EQ(back->AsInt64(), v) << text;
    EXPECT_EQ(back->Dump(), text);
  }
  // The same values survive nested in the document forms we emit.
  JsonValue obj = JsonValue::Object();
  obj.Set("span_id", JsonValue::Int(INT64_MAX));
  Result<JsonValue> back = ParseJson(obj.Dump(2));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Find("span_id")->AsInt64(), INT64_MAX);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
}

TEST(TraceToJsonTest, SerializesTheTreeShape) {
  TraceNode root;
  root.name = "explain";
  root.seconds = 0.5;
  auto child = std::make_unique<TraceNode>();
  child->name = "compile.exists";
  child->detail = "∃y. R(y)";
  child->attrs.emplace_back("states", 7);
  root.children.push_back(std::move(child));

  JsonValue json = TraceToJson(root);
  EXPECT_EQ(json.Find("name")->AsString(), "explain");
  // Empty detail/attrs are omitted at the root...
  EXPECT_EQ(json.Find("detail"), nullptr);
  EXPECT_EQ(json.Find("attrs"), nullptr);
  // ...and present on the child that has them.
  ASSERT_NE(json.Find("children"), nullptr);
  const JsonValue& c = json.Find("children")->At(0);
  EXPECT_EQ(c.Find("detail")->AsString(), "∃y. R(y)");
  EXPECT_EQ(c.Find("attrs")->Find("states")->AsNumber(), 7);
  // The serialized form survives its own parser.
  Result<JsonValue> back = ParseJson(json.Dump(2));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Dump(), json.Dump());
}

TEST(MetricsToJsonTest, KeepsAllEntries) {
  JsonValue json =
      MetricsToJson({{"dfa.minimizations", 4}, {"mta.intersections", 2}});
  EXPECT_EQ(json.size(), 2u);
  EXPECT_EQ(json.Find("dfa.minimizations")->AsNumber(), 4);
}

}  // namespace
}  // namespace obs
}  // namespace strq
