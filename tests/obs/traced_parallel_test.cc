// Thread-determinism of traced runs: tracing no longer forces the engines
// serial, so a traced run at 1, 2 and 4 threads must produce identical
// answers, identical canonical store ids, and the same span-tree shape
// modulo child order (parallel folds submit children in planner order, but
// completion order — and hence sibling order in the assembled tree — may
// differ). Plus the acceptance check: a 4-thread EXPLAIN ANALYZE emits spans
// from at least two distinct threads while matching the serial answers.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "eval/automata_eval.h"
#include "eval/explain.h"
#include "logic/parser.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *std::move(f);
}

Database WideDb() {
  Database db(Alphabet::Binary());
  std::vector<Tuple> r, s;
  for (const char* a : {"0", "1", "00", "01", "10", "11", "010",
                        "101", "0110", "1001"}) {
    r.push_back({a});
  }
  for (const char* a : {"01", "10", "110", "011", "0101"}) {
    s.push_back({a});
  }
  EXPECT_TRUE(db.AddRelation("R", 1, std::move(r)).ok());
  EXPECT_TRUE(db.AddRelation("S", 1, std::move(s)).ok());
  return db;
}

// Canonical shape of a span tree: name + detail per node, children sorted
// recursively, so trees differing only in sibling order (and in timing,
// thread tags or attrs) compare equal.
std::string Signature(const obs::TraceNode& node) {
  std::vector<std::string> kids;
  kids.reserve(node.children.size());
  for (const auto& child : node.children) kids.push_back(Signature(*child));
  std::sort(kids.begin(), kids.end());
  std::string out = "(";
  out += node.name;
  if (!node.detail.empty()) {
    out += ' ';
    out += node.detail;
  }
  for (const std::string& kid : kids) out += kid;
  out += ')';
  return out;
}

class TracedParallelTest : public ::testing::Test {
 protected:
  TracedParallelTest()
      : restore_enabled_(obs::Enabled()),
        restore_armed_(obs::FlightRecorder::Global().armed()) {
    obs::SetEnabled(true);
    obs::FlightRecorder::Global().set_armed(false);
  }
  ~TracedParallelTest() override {
    obs::FlightRecorder::Global().set_armed(restore_armed_);
    obs::SetEnabled(restore_enabled_);
  }

 private:
  bool restore_enabled_;
  bool restore_armed_;
};

TEST_F(TracedParallelTest, AnswersIdsAndSpanShapeAgreeAcrossThreadCounts) {
  Database db = WideDb();
  // One shared store across every run: language-identical compilations
  // intern to the same canonical id regardless of thread count.
  AutomatonStore store(true);
  auto cache = std::make_shared<AtomCache>(db.alphabet(), &store);

  const char* queries[] = {
      "R(x) & x <= '0110' & last[0](x) & !S(x)",
      "(R(x) & last[0](x)) | (S(x) & last[1](x)) | x = '010'",
      "R(x) & (last[0](x) | last[1](x)) & !(x = '1') & x <= '1001'",
  };
  for (const char* text : queries) {
    FormulaPtr f = Q(text);
    // Warm the shared substrate once (no session: spans go nowhere), so the
    // three traced runs below hit identical cache state and produce
    // comparable span trees.
    {
      AutomataEvaluator warm(&db, cache);
      warm.set_parallel_options(ParallelOptions{1});
      ASSERT_TRUE(warm.Compile(f).ok()) << text;
      ASSERT_TRUE(warm.Evaluate(f).ok()) << text;
    }

    struct Run {
      uint64_t store_id;
      Relation answer = Relation::Empty(0);
      std::string shape;
    };
    std::vector<Run> runs;
    for (int threads : {1, 2, 4}) {
      obs::TraceSession session("run");
      AutomataEvaluator eval(&db, cache);
      eval.set_parallel_options(ParallelOptions{threads});
      Result<TrackAutomaton> compiled = eval.Compile(f);
      ASSERT_TRUE(compiled.ok()) << text << " @" << threads << " threads";
      Result<Relation> answer = eval.Evaluate(f);
      ASSERT_TRUE(answer.ok()) << text << " @" << threads << " threads";
      std::unique_ptr<obs::TraceNode> tree = session.Take();
      ASSERT_NE(tree, nullptr);
      EXPECT_GT(tree->TreeSize(), 1) << "traced run collected no spans";
      runs.push_back(
          Run{compiled->dfa_ref().id(), *answer, Signature(*tree)});
    }
    for (size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].store_id, runs[0].store_id) << text;
      EXPECT_EQ(runs[i].answer, runs[0].answer) << text;
      EXPECT_EQ(runs[i].shape, runs[0].shape) << text;
    }
  }
}

TEST_F(TracedParallelTest, ParallelExplainEmitsSpansFromMultipleThreads) {
  Database db = WideDb();
  FormulaPtr f = Q("R(x) & (last[0](x) | last[1](x)) & !(x = '1') & "
                   "x <= '1001'");

  Result<ExplainAnalyzeResult> serial = ExplainAnalyze(&db, f);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_NE(serial->trace, nullptr);
  EXPECT_EQ(serial->trace->DistinctThreads(), 1);

  // The pool's worker races the submitting thread for fold children; on a
  // loaded single-core host the caller can occasionally drain the whole
  // fold first, so retry until a run actually lands spans on two threads.
  bool multi_threaded = false;
  for (int attempt = 0; attempt < 50 && !multi_threaded; ++attempt) {
    Result<ExplainAnalyzeResult> par = ExplainAnalyze(
        &db, f, 1000000, nullptr, nullptr, ParallelOptions{4});
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    // Parallel profile or not, the answer must match the serial run.
    EXPECT_TRUE(par->finite);
    EXPECT_EQ(par->answer, serial->answer);
    EXPECT_EQ(par->answer_states, serial->answer_states);
    ASSERT_NE(par->trace, nullptr);
    if (par->trace->DistinctThreads() >= 2) multi_threaded = true;
  }
  EXPECT_TRUE(multi_threaded)
      << "no 4-thread EXPLAIN ANALYZE emitted spans from >= 2 threads";
}

TEST_F(TracedParallelTest, ParallelExplainReportsHistogramsAndMemory) {
  Database db = WideDb();
  FormulaPtr f = Q("R(x) & last[0](x)");
  Result<ExplainAnalyzeResult> r = ExplainAnalyze(
      &db, f, 1000000, nullptr, nullptr, ParallelOptions{2});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The per-phase and end-to-end histograms saw this very call.
  ASSERT_EQ(r->histograms.count(obs::kHistQueryLatencyNs), 1u);
  EXPECT_GE(r->histograms.at(obs::kHistQueryLatencyNs).count, 1);
  ASSERT_EQ(r->histograms.count(obs::kHistCompileNs), 1u);
  EXPECT_GE(r->histograms.at(obs::kHistCompileNs).count, 1);
  // All three retained-memory gauges are reported.
  EXPECT_EQ(r->memory.count(obs::kGaugeStoreBytes), 1u);
  EXPECT_EQ(r->memory.count(obs::kGaugeAtomCacheBytes), 1u);
  EXPECT_EQ(r->memory.count(obs::kGaugePlanCacheBytes), 1u);
}

}  // namespace
}  // namespace strq
