#include "obs/trace.h"

#include <thread>

#include <gtest/gtest.h>

namespace strq {
namespace obs {
namespace {

// Every test restores the tracing flag so the suite is order-independent.
class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : restore_(Enabled()) { SetEnabled(true); }
  ~TraceTest() override { SetEnabled(restore_); }

 private:
  bool restore_;
};

TEST_F(TraceTest, SpansNestInExecutionOrder) {
  TraceSession session("root");
  {
    Span outer("outer");
    ASSERT_TRUE(outer.active());
    {
      Span a("a");
      ASSERT_TRUE(a.active());
    }
    { Span b("b"); }
  }
  { Span sibling("sibling"); }

  const TraceNode& root = session.root();
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 2u);
  const TraceNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "a");
  EXPECT_EQ(outer.children[1]->name, "b");
  EXPECT_EQ(root.children[1]->name, "sibling");
  EXPECT_EQ(root.TreeSize(), 5);
}

TEST_F(TraceTest, SpanRecordsTimeDetailAndAttrs) {
  TraceSession session;
  {
    Span span("work");
    span.set_detail("the query");
    span.Attr("states", 7);
    span.Attr("states", 9);  // last write wins in FindAttr
    span.Attr("arity", 2);
  }
  const TraceNode& node = *session.root().children[0];
  EXPECT_EQ(node.detail, "the query");
  EXPECT_GE(node.seconds, 0.0);
  ASSERT_EQ(node.attrs.size(), 3u);
  const int64_t* states = node.FindAttr("states");
  ASSERT_NE(states, nullptr);
  EXPECT_EQ(*states, 9);
  EXPECT_EQ(node.FindAttr("missing"), nullptr);
}

TEST_F(TraceTest, SpanIsInertWithoutSession) {
  Span span("orphan");
  EXPECT_FALSE(span.active());
  span.Attr("ignored", 1);  // must not crash
}

TEST_F(TraceTest, SpanIsInertWhenDisabled) {
  SetEnabled(false);
  TraceSession session;
  {
    Span span("off");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(session.root().children.empty());
}

TEST_F(TraceTest, SessionsDoNotNest) {
  TraceSession outer("outer");
  {
    TraceSession inner("inner");
    Span span("child");
    EXPECT_TRUE(span.active());
  }
  // The span attached to the outer session; the inner one collected nothing.
  ASSERT_EQ(outer.root().children.size(), 1u);
  EXPECT_EQ(outer.root().children[0]->name, "child");
}

TEST_F(TraceTest, TakeDetachesTheTree) {
  TraceSession session("detach");
  { Span span("before"); }
  std::unique_ptr<TraceNode> tree = session.Take();
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->children.size(), 1u);
  // After Take the session is inert: no crash, nothing collected.
  { Span span("after"); }
}

TEST_F(TraceTest, SessionsAreThreadLocal) {
  TraceSession session("main-thread");
  bool other_thread_active = true;
  std::thread t([&] {
    Span span("elsewhere");
    other_thread_active = span.active();
  });
  t.join();
  EXPECT_FALSE(other_thread_active);
  EXPECT_TRUE(session.root().children.empty());
}

TEST_F(TraceTest, ScopedEnableRestores) {
  SetEnabled(false);
  {
    ScopedEnable enable(true);
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
}

TEST_F(TraceTest, CountersMoveOnlyWhenEnabled) {
  MetricsRegistry::Global().Reset();
  Count("test.counter", 2);
  Count("test.counter");
  EXPECT_EQ(MetricsRegistry::Global().Get("test.counter"), 3);

  SetEnabled(false);
  Count("test.counter", 100);
  EXPECT_EQ(MetricsRegistry::Global().Get("test.counter"), 3);
}

TEST_F(TraceTest, MetricsDeltaDropsZeroEntries) {
  std::map<std::string, int64_t> before = {{"a", 1}, {"b", 5}};
  std::map<std::string, int64_t> after = {{"a", 4}, {"b", 5}, {"c", 2}};
  std::map<std::string, int64_t> delta = MetricsDelta(before, after);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta["a"], 3);
  EXPECT_EQ(delta["c"], 2);
  EXPECT_EQ(delta.count("b"), 0u);
}

TEST_F(TraceTest, PrettyTraceShowsNamesAttrsAndIndentation) {
  TraceSession session("root");
  {
    Span outer("compile.and");
    outer.Attr("states", 12);
    { Span inner("mta.intersect"); }
  }
  std::string text = PrettyTrace(session.root());
  EXPECT_NE(text.find("compile.and"), std::string::npos);
  EXPECT_NE(text.find("states=12"), std::string::npos);
  EXPECT_NE(text.find("mta.intersect"), std::string::npos);
  // The child is indented strictly deeper than its parent.
  size_t outer_col = text.find("compile.and");
  size_t inner_line = text.rfind('\n', text.find("mta.intersect"));
  size_t inner_col = text.find("mta.intersect") - (inner_line + 1);
  size_t outer_line = text.rfind('\n', outer_col);
  EXPECT_GT(inner_col, outer_col - (outer_line + 1));
}

}  // namespace
}  // namespace obs
}  // namespace strq
