#include "obs/trace.h"

#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "obs/flight.h"

namespace strq {
namespace obs {
namespace {

// Every test restores the tracing flag and the flight recorder's armed state
// so the suite is order-independent. The flight recorder is disarmed because
// an armed recorder keeps spans live even without a session — the inertness
// tests below isolate the session path.
class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : restore_enabled_(Enabled()),
        restore_armed_(FlightRecorder::Global().armed()) {
    SetEnabled(true);
    FlightRecorder::Global().set_armed(false);
  }
  ~TraceTest() override {
    FlightRecorder::Global().set_armed(restore_armed_);
    SetEnabled(restore_enabled_);
  }

 private:
  bool restore_enabled_;
  bool restore_armed_;
};

TEST_F(TraceTest, SpansNestInExecutionOrder) {
  TraceSession session("root");
  {
    Span outer("outer");
    ASSERT_TRUE(outer.active());
    {
      Span a("a");
      ASSERT_TRUE(a.active());
    }
    { Span b("b"); }
  }
  { Span sibling("sibling"); }

  const TraceNode& root = session.root();
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 2u);
  const TraceNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "a");
  EXPECT_EQ(outer.children[1]->name, "b");
  EXPECT_EQ(root.children[1]->name, "sibling");
  EXPECT_EQ(root.TreeSize(), 5);
}

TEST_F(TraceTest, SpanRecordsTimeDetailAndAttrs) {
  TraceSession session;
  {
    Span span("work");
    span.set_detail("the query");
    span.Attr("states", 7);
    span.Attr("states", 9);  // last write wins in FindAttr
    span.Attr("arity", 2);
  }
  const TraceNode& node = *session.root().children[0];
  EXPECT_EQ(node.detail, "the query");
  EXPECT_GE(node.seconds, 0.0);
  ASSERT_EQ(node.attrs.size(), 3u);
  const int64_t* states = node.FindAttr("states");
  ASSERT_NE(states, nullptr);
  EXPECT_EQ(*states, 9);
  EXPECT_EQ(node.FindAttr("missing"), nullptr);
}

TEST_F(TraceTest, SpanIsInertWithoutSession) {
  Span span("orphan");
  EXPECT_FALSE(span.active());
  span.Attr("ignored", 1);  // must not crash
}

TEST_F(TraceTest, SpanIsInertWhenDisabled) {
  SetEnabled(false);
  TraceSession session;
  {
    Span span("off");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(session.root().children.empty());
}

TEST_F(TraceTest, SessionsDoNotNest) {
  TraceSession outer("outer");
  {
    TraceSession inner("inner");
    Span span("child");
    EXPECT_TRUE(span.active());
  }
  // The span attached to the outer session; the inner one collected nothing.
  ASSERT_EQ(outer.root().children.size(), 1u);
  EXPECT_EQ(outer.root().children[0]->name, "child");
}

TEST_F(TraceTest, TakeDetachesTheTree) {
  TraceSession session("detach");
  { Span span("before"); }
  std::unique_ptr<TraceNode> tree = session.Take();
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->children.size(), 1u);
  // After Take the session is inert: no crash, nothing collected.
  { Span span("after"); }
}

TEST_F(TraceTest, UnrelatedThreadsDoNotFeedTheSession) {
  TraceSession session("main-thread");
  bool other_thread_active = true;
  std::thread t([&] {
    // No propagated TraceContext: this thread is not part of the session.
    Span span("elsewhere");
    other_thread_active = span.active();
  });
  t.join();
  EXPECT_FALSE(other_thread_active);
  EXPECT_TRUE(session.root().children.empty());
}

TEST_F(TraceTest, ScopedTraceContextPropagatesAcrossThreads) {
  TraceSession session("root");
  {
    Span parent("parent");
    TraceContext ctx = CurrentTraceContext();
    std::thread t([ctx] {
      ScopedTraceContext scope(ctx);
      Span span("remote");
      EXPECT_TRUE(span.active());
    });
    t.join();
  }
  const TraceNode& root = session.root();
  ASSERT_EQ(root.children.size(), 1u);
  ASSERT_EQ(root.children[0]->children.size(), 1u);
  const TraceNode& remote = *root.children[0]->children[0];
  EXPECT_EQ(remote.name, "remote");
  EXPECT_NE(remote.thread, root.thread);
  EXPECT_GE(root.DistinctThreads(), 2);
}

TEST_F(TraceTest, StaleContextIsInertAfterSessionEnds) {
  TraceContext stale;
  {
    TraceSession session("root");
    Span parent("parent");
    stale = CurrentTraceContext();
  }
  // The generation died with the session; a leaked context must not
  // resurrect it (or dereference the dead session).
  ScopedTraceContext scope(stale);
  Span span("late");
  EXPECT_FALSE(span.active());
}

TEST_F(TraceTest, SubmittedTasksStitchUnderTheSubmittingSpan) {
  TraceSession session("root");
  ThreadPool pool(2);
  {
    Span parent("parent");
    for (int i = 0; i < 4; ++i) {
      pool.Submit([i] {
        Span task("task");
        task.Attr("i", i);
      });
    }
    pool.WaitIdle();
  }
  const TraceNode& root = session.root();
  ASSERT_EQ(root.children.size(), 1u);
  const TraceNode& parent = *root.children[0];
  ASSERT_EQ(parent.children.size(), 4u);
  std::set<int64_t> seen;
  for (const auto& child : parent.children) {
    EXPECT_EQ(child->name, "task");
    const int64_t* i = child->FindAttr("i");
    ASSERT_NE(i, nullptr);
    seen.insert(*i);
    // Dedicated pool workers are never the submitting thread.
    EXPECT_NE(child->thread, root.thread);
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_GE(root.DistinctThreads(), 2);
}

TEST_F(TraceTest, ParallelForSpansJoinTheCallersTree) {
  TraceSession session("root");
  {
    Span region("parallel-region");
    ThreadPool::ParallelFor(4, 8, [](int i) {
      Span iter("iter");
      iter.Attr("i", i);
    });
  }
  const TraceNode& root = session.root();
  ASSERT_EQ(root.children.size(), 1u);
  const TraceNode& region = *root.children[0];
  ASSERT_EQ(region.children.size(), 8u);
  std::set<int64_t> seen;
  for (const auto& child : region.children) {
    EXPECT_EQ(child->name, "iter");
    const int64_t* i = child->FindAttr("i");
    ASSERT_NE(i, nullptr);
    seen.insert(*i);
  }
  // Every iteration landed exactly once, wherever it ran.
  EXPECT_EQ(seen.size(), 8u);
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreadsAllLand) {
  TraceSession session("root");
  constexpr int kIterations = 200;
  {
    Span fanout("fanout");
    ThreadPool::ParallelFor(4, kIterations, [](int i) {
      Span unit("unit");
      unit.Attr("i", i);
      { Span nested("nested"); }
    });
  }
  const TraceNode& root = session.root();
  ASSERT_EQ(root.children.size(), 1u);
  const TraceNode& fanout = *root.children[0];
  ASSERT_EQ(fanout.children.size(), static_cast<size_t>(kIterations));
  EXPECT_EQ(root.TreeSize(), 2 + 2 * kIterations);
  std::set<int64_t> seen;
  for (const auto& child : fanout.children) {
    EXPECT_EQ(child->name, "unit");
    ASSERT_EQ(child->children.size(), 1u);
    EXPECT_EQ(child->children[0]->name, "nested");
    // The same-thread nested span stitched under its own unit, not another
    // thread's.
    EXPECT_EQ(child->children[0]->thread, child->thread);
    const int64_t* i = child->FindAttr("i");
    ASSERT_NE(i, nullptr);
    seen.insert(*i);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kIterations));
}

TEST_F(TraceTest, ScopedEnableRestores) {
  SetEnabled(false);
  {
    ScopedEnable enable(true);
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
}

TEST_F(TraceTest, CountersMoveOnlyWhenEnabled) {
  MetricsRegistry::Global().Reset();
  Count("test.counter", 2);
  Count("test.counter");
  EXPECT_EQ(MetricsRegistry::Global().Get("test.counter"), 3);

  SetEnabled(false);
  Count("test.counter", 100);
  EXPECT_EQ(MetricsRegistry::Global().Get("test.counter"), 3);
}

TEST_F(TraceTest, MetricsDeltaDropsZeroEntries) {
  std::map<std::string, int64_t> before = {{"a", 1}, {"b", 5}};
  std::map<std::string, int64_t> after = {{"a", 4}, {"b", 5}, {"c", 2}};
  std::map<std::string, int64_t> delta = MetricsDelta(before, after);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta["a"], 3);
  EXPECT_EQ(delta["c"], 2);
  EXPECT_EQ(delta.count("b"), 0u);
}

TEST_F(TraceTest, MemGaugesMoveEvenWhenDisabled) {
  SetEnabled(false);
  int64_t before = MemBytes(MemCategory::kStore);
  MemAdd(MemCategory::kStore, 128);
  EXPECT_EQ(MemBytes(MemCategory::kStore), before + 128);
  MemAdd(MemCategory::kStore, -128);
  EXPECT_EQ(MemBytes(MemCategory::kStore), before);

  std::map<std::string, int64_t> snapshot = MemSnapshot();
  EXPECT_EQ(snapshot.count(kGaugeStoreBytes), 1u);
  EXPECT_EQ(snapshot.count(kGaugeAtomCacheBytes), 1u);
  EXPECT_EQ(snapshot.count(kGaugePlanCacheBytes), 1u);
}

TEST_F(TraceTest, PrettyTraceShowsNamesAttrsAndIndentation) {
  TraceSession session("root");
  {
    Span outer("compile.and");
    outer.Attr("states", 12);
    { Span inner("mta.intersect"); }
  }
  std::string text = PrettyTrace(session.root());
  EXPECT_NE(text.find("compile.and"), std::string::npos);
  EXPECT_NE(text.find("states=12"), std::string::npos);
  EXPECT_NE(text.find("mta.intersect"), std::string::npos);
  // The child is indented strictly deeper than its parent.
  size_t outer_col = text.find("compile.and");
  size_t inner_line = text.rfind('\n', text.find("mta.intersect"));
  size_t inner_col = text.find("mta.intersect") - (inner_line + 1);
  size_t outer_line = text.rfind('\n', outer_col);
  EXPECT_GT(inner_col, outer_col - (outer_line + 1));
}

TEST_F(TraceTest, PrettyTraceTagsSpansFromOtherThreads) {
  TraceSession session("root");
  ThreadPool pool(1);
  {
    Span parent("parent");
    pool.Submit([] { Span task("pooled-work"); });
    pool.WaitIdle();
  }
  std::string text = PrettyTrace(session.root());
  EXPECT_NE(text.find("pooled-work"), std::string::npos);
  // The worker's span is rendered with its @tN thread tag; same-thread spans
  // are not.
  EXPECT_NE(text.find("@t"), std::string::npos);
  size_t parent_line_end = text.find('\n', text.find("parent"));
  EXPECT_EQ(text.substr(0, parent_line_end).find("@t"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace strq
