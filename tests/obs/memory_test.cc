// Conservation tests for the byte-level memory accounting: every structure
// that charges the process-wide obs gauges (AutomatonStore, AtomCache, the
// planner's plan cache) must return its gauge to the pre-existing baseline
// on Clear()/destruction, and deduplication must never double-count.

#include <cstdint>

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "automata/store.h"
#include "base/alphabet.h"
#include "logic/parser.h"
#include "mta/atom_cache.h"
#include "obs/trace.h"
#include "plan/planner.h"

namespace strq {
namespace {

Dfa Regex(const std::string& pattern) {
  Result<Dfa> d = CompileRegex(pattern, Alphabet::Binary());
  EXPECT_TRUE(d.ok()) << pattern << ": " << d.status().ToString();
  return *d;
}

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return *std::move(r);
}

TEST(MemoryAccountingTest, StoreBytesGrowOnInternAndClearToBaseline) {
  const int64_t baseline = obs::MemBytes(obs::MemCategory::kStore);
  {
    AutomatonStore store;
    EXPECT_EQ(store.stats().bytes, 0);

    DfaRef a = store.Intern(Regex("(0|1)*0"));
    const int64_t after_first = store.stats().bytes;
    EXPECT_GT(after_first, 0);
    // The local gauge is mirrored 1:1 into the process-wide gauge.
    EXPECT_EQ(obs::MemBytes(obs::MemCategory::kStore), baseline + after_first);

    // Dedup never double-counts: a structurally different automaton for the
    // SAME language is a unique-table hit and adds nothing.
    DfaRef b = store.Intern(Regex("((0|1)*0|(0|1)*0)"));
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(store.stats().bytes, after_first);

    // A genuinely new language grows the gauge.
    store.Intern(Regex("1*"));
    EXPECT_GT(store.stats().bytes, after_first);

    store.Clear();
    EXPECT_EQ(store.stats().bytes, 0);
    EXPECT_EQ(obs::MemBytes(obs::MemCategory::kStore), baseline);

    // The store stays usable after Clear; the destructor conserves too.
    store.Intern(Regex("0*"));
    EXPECT_GT(store.stats().bytes, 0);
  }
  EXPECT_EQ(obs::MemBytes(obs::MemCategory::kStore), baseline);
}

TEST(MemoryAccountingTest, StoreComputedTableChargesOncePerOperation) {
  const int64_t baseline = obs::MemBytes(obs::MemCategory::kStore);
  {
    AutomatonStore store;
    DfaRef a = store.Intern(Regex("(0|1)*0"));
    DfaRef b = store.Intern(Regex("0(0|1)*"));
    const int64_t after_intern = store.stats().bytes;

    ASSERT_TRUE(store.Intersect(a, b).ok());
    const int64_t after_op = store.stats().bytes;
    EXPECT_GT(after_op, after_intern);

    // A computed-table hit (same operation again) adds nothing.
    ASSERT_TRUE(store.Intersect(a, b).ok());
    EXPECT_EQ(store.stats().bytes, after_op);
    // Commutative key normalization: the swapped operands hit too.
    ASSERT_TRUE(store.Intersect(b, a).ok());
    EXPECT_EQ(store.stats().bytes, after_op);
  }
  EXPECT_EQ(obs::MemBytes(obs::MemCategory::kStore), baseline);
}

TEST(MemoryAccountingTest, AtomCacheBytesConserveAndNeverCountDfasTwice) {
  const int64_t store_baseline = obs::MemBytes(obs::MemCategory::kStore);
  const int64_t atom_baseline = obs::MemBytes(obs::MemCategory::kAtomCache);
  // Atom construction also interns helper automata into the process-wide
  // default store, which outlives this test — its growth is legitimate
  // retention, tracked separately from the local store's contribution.
  const int64_t default_before = AutomatonStore::Default().stats().bytes;
  {
    AutomatonStore store;
    AtomCache cache(Alphabet::Binary(), &store);
    EXPECT_EQ(cache.stats().bytes, 0);

    ASSERT_TRUE(cache.Equal(0, 1).ok());
    const int64_t after_atom = cache.stats().bytes;
    EXPECT_GT(after_atom, 0);
    EXPECT_EQ(obs::MemBytes(obs::MemCategory::kAtomCache),
              atom_baseline + after_atom);
    // The automaton payload is charged to the STORE gauge, not the cache's:
    // the cache only accounts its own bookkeeping, so the sum never counts
    // a DFA twice.
    EXPECT_GT(store.stats().bytes, 0);

    // Atom-level dedup: the same atom again — and a renamed occurrence of
    // the same canonical atom — add no cache bookkeeping.
    ASSERT_TRUE(cache.Equal(0, 1).ok());
    EXPECT_EQ(cache.stats().bytes, after_atom);
    ASSERT_TRUE(cache.Equal(2, 5).ok());
    EXPECT_EQ(cache.stats().bytes, after_atom);

    // Patterns are charged on first compile only.
    ASSERT_TRUE(cache.CompiledPattern("0%", PatternSyntax::kLikePattern).ok());
    const int64_t after_pattern = cache.stats().bytes;
    EXPECT_GT(after_pattern, after_atom);
    ASSERT_TRUE(cache.CompiledPattern("0%", PatternSyntax::kLikePattern).ok());
    EXPECT_EQ(cache.stats().bytes, after_pattern);
  }
  // Both destructors returned their gauges to the pre-existing baselines;
  // what remains in the store gauge is exactly the default store's growth.
  EXPECT_EQ(obs::MemBytes(obs::MemCategory::kAtomCache), atom_baseline);
  EXPECT_EQ(obs::MemBytes(obs::MemCategory::kStore),
            store_baseline +
                (AutomatonStore::Default().stats().bytes - default_before));
}

TEST(MemoryAccountingTest, PlanCacheBytesConserveAcrossClearAndDestruction) {
  const int64_t baseline = obs::MemBytes(obs::MemCategory::kPlanCache);
  FormulaPtr f = Q("exists x. (x = '01' | x <= '1')");
  {
    plan::Planner planner;
    EXPECT_EQ(planner.stats().bytes, 0);

    planner.Plan(f, nullptr, nullptr);
    const int64_t after = planner.stats().bytes;
    EXPECT_GT(after, 0);
    EXPECT_EQ(obs::MemBytes(obs::MemCategory::kPlanCache), baseline + after);

    // A cache hit adds nothing.
    planner.Plan(f, nullptr, nullptr);
    EXPECT_GE(planner.stats().cache_hits, 1);
    EXPECT_EQ(planner.stats().bytes, after);

    planner.ClearCache();
    EXPECT_EQ(planner.stats().bytes, 0);
    EXPECT_EQ(obs::MemBytes(obs::MemCategory::kPlanCache), baseline);

    // Repopulate so the destructor path is exercised with a live entry.
    planner.Plan(f, nullptr, nullptr);
    EXPECT_GT(planner.stats().bytes, 0);
  }
  EXPECT_EQ(obs::MemBytes(obs::MemCategory::kPlanCache), baseline);
}

TEST(MemoryAccountingTest, MemSnapshotReflectsLiveStructures) {
  std::map<std::string, int64_t> before = obs::MemSnapshot();
  AutomatonStore store;
  store.Intern(Regex("(0|1)*01"));
  std::map<std::string, int64_t> after = obs::MemSnapshot();
  EXPECT_GT(after[obs::kGaugeStoreBytes], before[obs::kGaugeStoreBytes]);
  EXPECT_EQ(after[obs::kGaugeAtomCacheBytes], before[obs::kGaugeAtomCacheBytes]);
  EXPECT_EQ(after[obs::kGaugePlanCacheBytes], before[obs::kGaugePlanCacheBytes]);
}

}  // namespace
}  // namespace strq
