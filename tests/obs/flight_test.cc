#include "obs/flight.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace strq {
namespace obs {
namespace {

SpanRecord MakeSpan(uint64_t id, const char* name = "span") {
  SpanRecord rec;
  rec.id = id;
  rec.thread = internal::ThreadTag();
  rec.name = name;
  rec.start_ns = static_cast<int64_t>(id) * 1000;
  rec.dur_ns = 500;
  return rec;
}

// The recorder under test is the process-wide singleton, so every test
// clears it first and restores the armed flag it found.
class FlightTest : public ::testing::Test {
 protected:
  FlightTest()
      : restore_enabled_(Enabled()),
        restore_armed_(FlightRecorder::Global().armed()) {
    FlightRecorder::Global().set_armed(false);
    FlightRecorder::Global().Clear();
  }
  ~FlightTest() override {
    FlightRecorder::Global().Clear();
    FlightRecorder::Global().set_armed(restore_armed_);
    SetEnabled(restore_enabled_);
  }

 private:
  bool restore_enabled_;
  bool restore_armed_;
};

TEST_F(FlightTest, RetainsRecordsUpToCapacity) {
  FlightRecorder& flight = FlightRecorder::Global();
  for (uint64_t i = 1; i <= 64; ++i) flight.Record(MakeSpan(i));
  EXPECT_EQ(flight.size(), 64u);
  std::vector<SpanRecord> spans = flight.Snapshot();
  ASSERT_EQ(spans.size(), 64u);
  EXPECT_EQ(spans.front().id, 1u);
  EXPECT_EQ(spans.back().id, 64u);
}

TEST_F(FlightTest, WraparoundKeepsTheNewestSpans) {
  FlightRecorder& flight = FlightRecorder::Global();
  // All records from one thread land in one shard, so overflowing the total
  // capacity guarantees that shard wrapped several times over.
  const uint64_t n = static_cast<uint64_t>(flight.capacity()) * 2 + 100;
  for (uint64_t i = 1; i <= n; ++i) flight.Record(MakeSpan(i));
  EXPECT_LE(flight.size(), flight.capacity());
  EXPECT_GT(flight.size(), 0u);
  std::vector<SpanRecord> spans = flight.Snapshot();
  ASSERT_FALSE(spans.empty());
  // The newest record always survives; everything retained is from the
  // tail of the stream (ring overwrites oldest-first).
  EXPECT_EQ(spans.back().id, n);
  EXPECT_GT(spans.front().id, n - flight.capacity());
}

TEST_F(FlightTest, SnapshotIsSortedBySpanId) {
  FlightRecorder& flight = FlightRecorder::Global();
  for (uint64_t id : {5, 3, 9, 1, 7}) flight.Record(MakeSpan(id));
  std::vector<SpanRecord> spans = flight.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
}

TEST_F(FlightTest, ClearDropsRetainedButKeepsTotalRecorded) {
  FlightRecorder& flight = FlightRecorder::Global();
  uint64_t total_before = flight.total_recorded();
  for (uint64_t i = 1; i <= 10; ++i) flight.Record(MakeSpan(i));
  EXPECT_EQ(flight.total_recorded(), total_before + 10);
  flight.Clear();
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_TRUE(flight.Snapshot().empty());
  // total_recorded is the monotonic lifetime counter, not the ring size.
  EXPECT_EQ(flight.total_recorded(), total_before + 10);
  // The ring is usable again after Clear.
  flight.Record(MakeSpan(99));
  EXPECT_EQ(flight.size(), 1u);
}

TEST_F(FlightTest, ArmedSpansLandWithoutASession) {
  ScopedEnable enable(true);
  FlightRecorder& flight = FlightRecorder::Global();
  flight.set_armed(true);
  {
    Span span("flight-only");
    EXPECT_TRUE(span.active());
  }
  std::vector<SpanRecord> spans = flight.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "flight-only");

  // Disarmed: spans without a session go nowhere and cost nothing.
  flight.set_armed(false);
  flight.Clear();
  {
    Span span("dropped");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(flight.size(), 0u);
}

TEST_F(FlightTest, SessionAndFlightBothReceiveTheSameSpan) {
  ScopedEnable enable(true);
  FlightRecorder& flight = FlightRecorder::Global();
  flight.set_armed(true);
  TraceSession session("root");
  { Span span("shared"); }
  std::vector<SpanRecord> spans = flight.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "shared");
  ASSERT_EQ(session.root().children.size(), 1u);
  EXPECT_EQ(session.root().children[0]->name, "shared");
}

TEST_F(FlightTest, ShardedWritersUnderConcurrency) {
  // The tsan stress: pooled writers record concurrently (hitting different
  // shard locks) while the caller interleaves snapshots. Run under the tsan
  // preset this is the data-race gate for the sharded ring.
  FlightRecorder& flight = FlightRecorder::Global();
  uint64_t total_before = flight.total_recorded();
  constexpr int kSpans = 2000;
  std::atomic<int> snapshots{0};
  ThreadPool::ParallelFor(4, kSpans, [&flight, &snapshots](int i) {
    SpanRecord rec = MakeSpan(
        internal::g_next_span_id.fetch_add(1, std::memory_order_relaxed));
    rec.attrs.emplace_back("i", i);
    flight.Record(std::move(rec));
    if (i % 256 == 0) {
      (void)flight.Snapshot();
      (void)flight.size();
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(flight.total_recorded(), total_before + kSpans);
  EXPECT_LE(flight.size(), flight.capacity());
  EXPECT_GT(snapshots.load(), 0);
  // Ids stay unique and sorted across shards after the melee.
  std::vector<SpanRecord> spans = flight.Snapshot();
  std::set<uint64_t> ids;
  for (const SpanRecord& span : spans) ids.insert(span.id);
  EXPECT_EQ(ids.size(), spans.size());
}

TEST_F(FlightTest, ChromeTraceEmitsCompleteEvents) {
  SpanRecord a = MakeSpan(10, "compile");
  a.parent = 1;
  a.detail = "R(x) & S(x)";
  a.attrs.emplace_back("states", 42);
  SpanRecord b = MakeSpan(11, "enumerate");
  b.parent = 10;

  JsonValue doc = ChromeTrace({a, b});
  ASSERT_TRUE(doc.is_object());
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->AsString(), "ms");
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2u);

  const JsonValue& e = events->At(0);
  EXPECT_EQ(e.Find("name")->AsString(), "compile");
  EXPECT_EQ(e.Find("cat")->AsString(), "strq");
  EXPECT_EQ(e.Find("ph")->AsString(), "X");
  // ts/dur are microseconds derived from the nanosecond record.
  EXPECT_DOUBLE_EQ(e.Find("ts")->AsNumber(), a.start_ns / 1e3);
  EXPECT_DOUBLE_EQ(e.Find("dur")->AsNumber(), a.dur_ns / 1e3);
  EXPECT_EQ(e.Find("pid")->AsInt64(), 1);
  EXPECT_EQ(e.Find("tid")->AsInt64(), static_cast<int64_t>(a.thread));
  const JsonValue* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("span_id")->AsInt64(), 10);
  EXPECT_EQ(args->Find("parent_id")->AsInt64(), 1);
  EXPECT_EQ(args->Find("detail")->AsString(), "R(x) & S(x)");
  EXPECT_EQ(args->Find("states")->AsInt64(), 42);

  // The document round-trips through the bundled parser (what trace_check
  // validates end to end on a real traced run).
  Result<JsonValue> reparsed = ParseJson(doc.Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Find("traceEvents")->size(), 2u);
}

TEST_F(FlightTest, PrettyFlightShowsIdThreadAndName) {
  SpanRecord rec = MakeSpan(123, "mta.intersect");
  rec.detail = "left*right";
  std::string text = PrettyFlight({rec});
  EXPECT_NE(text.find("#123"), std::string::npos);
  EXPECT_NE(text.find("mta.intersect"), std::string::npos);
  EXPECT_NE(text.find("left*right"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace strq
