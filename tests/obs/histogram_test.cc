#include "obs/histogram.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace strq {
namespace obs {
namespace {

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(HistogramTest, SmallValuesGetExactUnitBuckets) {
  // Values below 16 each get their own bucket: no two collide, and the
  // bucket bounds are the value itself.
  for (int64_t v = 0; v < 16; ++v) {
    int index = Histogram::BucketIndex(v);
    int64_t lower = 0, upper = 0;
    Histogram::BucketBounds(index, &lower, &upper);
    EXPECT_EQ(lower, v);
    EXPECT_EQ(upper, v);
    if (v > 0) {
      EXPECT_NE(index, Histogram::BucketIndex(v - 1));
    }
  }
}

TEST(HistogramTest, BucketBoundsContainTheValue) {
  const int64_t values[] = {16,
                            17,
                            31,
                            32,
                            100,
                            1000,
                            65536,
                            (int64_t{1} << 20) + 7,
                            (int64_t{1} << 40) + 12345,
                            (int64_t{1} << 62)};
  for (int64_t v : values) {
    int index = Histogram::BucketIndex(v);
    int64_t lower = 0, upper = 0;
    Histogram::BucketBounds(index, &lower, &upper);
    EXPECT_LE(lower, v) << "value " << v;
    EXPECT_GE(upper, v) << "value " << v;
    // Log-linear design bound: 16 sub-buckets per octave keeps the relative
    // bucket width (and hence the quantile error) under 1/16 + rounding.
    EXPECT_LE(upper - lower, lower / 8 + 1) << "value " << v;
  }
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  int last = -1;
  for (int64_t v = 0; v < 4096; ++v) {
    int index = Histogram::BucketIndex(v);
    EXPECT_GE(index, last) << "value " << v;
    last = index;
  }
}

TEST(HistogramTest, TracksCountMinMaxMean) {
  Histogram h;
  h.Observe(4);
  h.Observe(1);
  h.Observe(3);
  h.Observe(2);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 4);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(HistogramTest, QuantilesExactOnSmallValues) {
  // 100 samples of each value 1..10: unit buckets make quantiles exact.
  Histogram h;
  for (int64_t v = 1; v <= 10; ++v) {
    for (int i = 0; i < 100; ++i) h.Observe(v);
  }
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.9), 9.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.0), 1.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 0.0);
}

TEST(HistogramTest, QuantilesOnUniformDistributionWithinErrorBound) {
  Histogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Observe(v);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 10000);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 10000);
  EXPECT_NEAR(s.mean, 5000.5, 1.0);
  // The log-linear layout bounds relative error by ~1/16; allow 10%.
  EXPECT_NEAR(s.p50, 5000.0, 500.0);
  EXPECT_NEAR(s.p90, 9000.0, 900.0);
  EXPECT_NEAR(s.p99, 9900.0, 990.0);
}

TEST(HistogramTest, QuantilesClampedToObservedRange) {
  Histogram h;
  h.Observe(1000);
  h.Observe(1000000);
  EXPECT_GE(h.Quantile(0.0), 1000.0);
  EXPECT_LE(h.Quantile(1.0), 1000000.0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Observe(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(i);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
  // Usable again after Reset.
  h.Observe(7);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.max(), 7);
}

TEST(HistogramTest, SnapshotMatchesAccessors) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40, 50}) h.Observe(v);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, h.count());
  EXPECT_EQ(s.min, h.min());
  EXPECT_EQ(s.max, h.max());
  EXPECT_DOUBLE_EQ(s.mean, h.mean());
  EXPECT_DOUBLE_EQ(s.p50, h.Quantile(0.5));
  EXPECT_DOUBLE_EQ(s.p90, h.Quantile(0.9));
  EXPECT_DOUBLE_EQ(s.p99, h.Quantile(0.99));
}

}  // namespace
}  // namespace obs
}  // namespace strq
