#include "eval/explain.h"

#include <gtest/gtest.h>

#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "obs/json.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& text) {
  Result<FormulaPtr> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *std::move(f);
}

Database SmallDb() {
  Database db(Alphabet::Binary());
  Status s = db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}});
  EXPECT_TRUE(s.ok());
  return db;
}

// Walks the tree looking for a node with the given name.
const obs::TraceNode* FindNode(const obs::TraceNode& node,
                               const std::string& name) {
  if (node.name == name) return &node;
  for (const auto& child : node.children) {
    if (const obs::TraceNode* hit = FindNode(*child, name)) return hit;
  }
  return nullptr;
}

TEST(ExplainAnalyzeTest, AnswerMatchesEvaluate) {
  Database db = SmallDb();
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");

  AutomataEvaluator engine(&db);
  Result<Relation> direct = engine.Evaluate(Q("exists y. R(y) & x <= y & last[1](x)"));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  Result<ExplainAnalyzeResult> explained = ExplainAnalyze(&db, f);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_TRUE(explained->finite);
  EXPECT_EQ(explained->answer.size(), direct->size());
  for (const Tuple& t : direct->tuples()) {
    EXPECT_TRUE(explained->answer.Contains(t));
  }
  EXPECT_EQ(explained->columns, std::vector<std::string>{"x"});
  EXPECT_GT(explained->answer_states, 0);
  EXPECT_GT(explained->answer_transitions, 0);
  EXPECT_GE(explained->seconds, 0.0);
}

TEST(ExplainAnalyzeTest, SpanTreeReflectsTheFormula) {
  Database db = SmallDb();
  // With planning disabled the compile tree mirrors the raw AST: two
  // quantifiers show as NESTED exists spans with an automaton size on every
  // node, and the enumeration span at the end.
  plan::PlannerOptions off;
  off.enable = false;
  Result<ExplainAnalyzeResult> out = ExplainAnalyze(
      &db,
      Q("exists y. exists z. R(y) & R(z) & x <= y & x <= z & "
        "last[1](x)"),
      1000000, nullptr, std::make_shared<plan::Planner>(off));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_NE(out->trace, nullptr);
  EXPECT_EQ(out->trace->name, "explain");

  const obs::TraceNode* outer = FindNode(*out->trace, "compile.exists");
  ASSERT_NE(outer, nullptr);
  // The inner exists is a descendant of the outer one.
  const obs::TraceNode* inner = nullptr;
  for (const auto& child : outer->children) {
    if (const obs::TraceNode* hit = FindNode(*child, "compile.exists")) {
      inner = hit;
      break;
    }
  }
  EXPECT_NE(inner, nullptr);
  ASSERT_NE(outer->FindAttr("states"), nullptr);
  EXPECT_GT(*outer->FindAttr("states"), 0);
  EXPECT_NE(FindNode(*out->trace, "compile.and"), nullptr);
  EXPECT_NE(FindNode(*out->trace, "compile.relation"), nullptr);
  EXPECT_NE(FindNode(*out->trace, "eval.enumerate"), nullptr);
  // The underlying automaton ops were traced too.
  EXPECT_NE(FindNode(*out->trace, "mta.intersect"), nullptr);
  EXPECT_NE(FindNode(*out->trace, "mta.project"), nullptr);
  // Compilation + enumeration is more than a handful of spans.
  EXPECT_GT(out->trace->TreeSize(), 10);
}

TEST(ExplainAnalyzeTest, PlannerReshapesTheSpanTree) {
  Database db = SmallDb();
  // Same query with the default planner: miniscoping pushes each exists
  // into the conjuncts that bind its variable, so the two quantifier spans
  // become SIBLINGS under the top-level conjunction, and the plan phase is
  // reported next to the trace.
  FormulaPtr f = Q(
      "exists y. exists z. R(y) & R(z) & x <= y & x <= z & last[1](x)");
  Result<ExplainAnalyzeResult> out = ExplainAnalyze(&db, f);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_NE(out->trace, nullptr);

  // Plan phase fields are populated and the "plan" span is in the trace.
  EXPECT_NE(FindNode(*out->trace, "plan"), nullptr);
  EXPECT_GT(out->plan_estimated_states, 0.0);
  EXPECT_GT(out->plan_rules_fired, 0);
  EXPECT_FALSE(out->plan_pretty.empty());
  EXPECT_NE(out->planned_formula.find("exists"), std::string::npos);

  // Both exists compile, but neither nests inside the other.
  const obs::TraceNode* outer = FindNode(*out->trace, "compile.exists");
  ASSERT_NE(outer, nullptr);
  const obs::TraceNode* inner = nullptr;
  for (const auto& child : outer->children) {
    if (const obs::TraceNode* hit = FindNode(*child, "compile.exists")) {
      inner = hit;
      break;
    }
  }
  EXPECT_EQ(inner, nullptr);

  // Planning must not change the answer.
  plan::PlannerOptions off;
  off.enable = false;
  Result<ExplainAnalyzeResult> unplanned = ExplainAnalyze(
      &db, f, 1000000, nullptr, std::make_shared<plan::Planner>(off));
  ASSERT_TRUE(unplanned.ok());
  EXPECT_EQ(out->answer, unplanned->answer);
}

TEST(ExplainAnalyzeTest, UnsafeQueryStillTraces) {
  Database db = SmallDb();
  // "all strings ending in 1" is infinite: Evaluate fails, EXPLAIN reports.
  FormulaPtr f = Q("last[1](x)");
  AutomataEvaluator engine(&db);
  EXPECT_FALSE(engine.Evaluate(f).ok());

  Result<ExplainAnalyzeResult> out = ExplainAnalyze(&db, f);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->finite);
  EXPECT_EQ(out->answer.size(), 0u);
  EXPECT_GT(out->answer_states, 0);
  ASSERT_NE(out->trace, nullptr);
  EXPECT_NE(FindNode(*out->trace, "compile.pred"), nullptr);
  std::string pretty = out->Pretty();
  EXPECT_NE(pretty.find("INFINITE"), std::string::npos);
}

TEST(ExplainAnalyzeTest, MetricsMoveAndFlagIsRestored) {
  ASSERT_FALSE(obs::Enabled()) << "test env unexpectedly sets STRQ_OBS";
  Database db = SmallDb();
  Result<ExplainAnalyzeResult> out =
      ExplainAnalyze(&db, Q("exists y. R(y) & x <= y & last[1](x)"));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(obs::Enabled());  // ScopedEnable restored the flag
  EXPECT_GT(out->metrics.size(), 0u);
  EXPECT_GT(out->metrics[obs::kMtaIntersections], 0);
  EXPECT_GT(out->metrics[obs::kMtaProjections], 0);
  EXPECT_GT(out->metrics[obs::kEvalTuplesEnumerated], 0);
}

TEST(ExplainAnalyzeTest, PrettyShowsHeaderTreeAndMetrics) {
  Database db = SmallDb();
  Result<ExplainAnalyzeResult> out =
      ExplainAnalyze(&db, Q("exists y. R(y) & x <= y & last[1](x)"));
  ASSERT_TRUE(out.ok());
  std::string pretty = out->Pretty();
  EXPECT_NE(pretty.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(pretty.find("compile.exists"), std::string::npos);
  EXPECT_NE(pretty.find("metrics:"), std::string::npos);
  EXPECT_NE(pretty.find("mta.intersections"), std::string::npos);
}

TEST(ExplainAnalyzeTest, JsonHasTheV1Shape) {
  Database db = SmallDb();
  Result<ExplainAnalyzeResult> out =
      ExplainAnalyze(&db, Q("exists y. R(y) & x <= y & last[1](x)"));
  ASSERT_TRUE(out.ok());
  obs::JsonValue json = out->ToJson();
  EXPECT_EQ(json.Find("schema")->AsString(), "strq.explain.v1");
  ASSERT_NE(json.Find("answer"), nullptr);
  EXPECT_TRUE(json.Find("answer")->Find("finite")->AsBool());
  EXPECT_GT(json.Find("answer")->Find("states")->AsNumber(), 0);
  ASSERT_NE(json.Find("trace"), nullptr);
  EXPECT_EQ(json.Find("trace")->Find("name")->AsString(), "explain");
  ASSERT_NE(json.Find("metrics"), nullptr);
  // It round-trips through the bundled parser.
  Result<obs::JsonValue> back = obs::ParseJson(json.Dump(2));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Dump(), json.Dump());
}

}  // namespace
}  // namespace strq
