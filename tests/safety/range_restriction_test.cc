#include "safety/range_restriction.h"

#include <gtest/gtest.h>

#include "eval/automata_eval.h"
#include "logic/parser.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  return db;
}

TEST(RangeRestrictionTest, EffectiveKGrowsWithFormula) {
  int k1 = EffectiveK(Q("R(x)"));
  int k2 = EffectiveK(Q("exists y. R(y) & append[1](append[1](x)) = y"));
  EXPECT_GT(k2, k1);
  EXPECT_GT(k1, 0);
}

TEST(RangeRestrictionTest, GammaCandidatesS) {
  Database db = BinaryDb();
  Result<std::vector<std::string>> c =
      GammaCandidates(StructureId::kS, 1, db);
  ASSERT_TRUE(c.ok());
  // Contains prefix(adom) and one-symbol extensions of adom strings.
  auto has = [&](const std::string& s) {
    return std::find(c->begin(), c->end(), s) != c->end();
  };
  EXPECT_TRUE(has(""));
  EXPECT_TRUE(has("11"));      // prefix of 110
  EXPECT_TRUE(has("1101"));    // 110 + 1
  EXPECT_TRUE(has("011"));     // 01 + 1
  EXPECT_TRUE(has("111"));     // prefix "11" + 1 (distance 1, Lemma 1)
  EXPECT_FALSE(has("11011"));  // distance 2 from prefix(adom)
  EXPECT_FALSE(has("1111"));   // distance 2
}

TEST(RangeRestrictionTest, GammaIsTheLemma1DistanceBall) {
  // Regression for a real bug: γ_k must be {s : d(s, prefix(D)) ≤ k}, i.e.
  // prefixes extended by ≤ k symbols — not extensions of full adom strings.
  Database db = BinaryDb();
  FormulaPtr f = *ParseFormula("!R(x) & member(x, '1|11|111')");
  Result<RangeRestrictionCheck> check =
      CheckRangeRestriction(f, StructureId::kS, db, EffectiveK(f));
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->phi_safe_on_db);
  EXPECT_TRUE(check->coincides)
      << "restricted " << check->restricted_size << " vs exact "
      << check->exact_size;
}

TEST(RangeRestrictionTest, GammaCandidatesSLenIsLengthBall) {
  Database db = BinaryDb();
  Result<std::vector<std::string>> c =
      GammaCandidates(StructureId::kSLen, 1, db);
  ASSERT_TRUE(c.ok());
  // All strings of length <= 3 + 1 = 4: 31 strings.
  EXPECT_EQ(c->size(), 31u);
}

TEST(RangeRestrictionTest, GammaCandidatesSLeftClosesLeftOps) {
  Database db = BinaryDb();
  Result<std::vector<std::string>> c =
      GammaCandidates(StructureId::kSLeft, 1, db);
  ASSERT_TRUE(c.ok());
  auto has = [&](const std::string& s) {
    return std::find(c->begin(), c->end(), s) != c->end();
  };
  EXPECT_TRUE(has("1110"));  // 1·110
  EXPECT_TRUE(has("10"));    // 110 with head removed
}

TEST(RangeRestrictionTest, GammaBudget) {
  Database db = BinaryDb();
  Result<std::vector<std::string>> c =
      GammaCandidates(StructureId::kSLen, 30, db, /*budget=*/1000);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST(RangeRestrictionTest, ConcatHasNoGamma) {
  Database db = BinaryDb();
  EXPECT_FALSE(GammaCandidates(StructureId::kConcat, 1, db).ok());
}

// Theorem 3: on safe queries, the range-restricted query coincides with the
// exact answer.
class Theorem3Test
    : public ::testing::TestWithParam<std::pair<const char*, StructureId>> {};

TEST_P(Theorem3Test, RangeRestrictionCoincidesOnSafeQueries) {
  Database db = BinaryDb();
  auto [query, structure] = GetParam();
  FormulaPtr f = Q(query);
  int k = EffectiveK(f);
  Result<RangeRestrictionCheck> check =
      CheckRangeRestriction(f, structure, db, k);
  ASSERT_TRUE(check.ok()) << query << ": " << check.status();
  EXPECT_TRUE(check->phi_safe_on_db) << query;
  EXPECT_TRUE(check->coincides)
      << query << ": restricted " << check->restricted_size << " vs exact "
      << check->exact_size;
}

INSTANTIATE_TEST_SUITE_P(
    Battery, Theorem3Test,
    ::testing::Values(
        std::make_pair("exists y. R(y) & x <= y", StructureId::kS),
        std::make_pair("R(x) & last[1](x)", StructureId::kS),
        std::make_pair("exists y. R(y) & step(y, x)", StructureId::kS),
        std::make_pair("exists y. R(y) & append[1](y) = x", StructureId::kS),
        std::make_pair("exists y. R(y) & lcp(x, y) = x", StructureId::kS),
        std::make_pair("exists y. R(y) & prepend[1](y) = x",
                       StructureId::kSLeft),
        std::make_pair("exists y. R(y) & trim[1](y) = x",
                       StructureId::kSLeft),
        std::make_pair("exists y. R(y) & suffixin(x, y, '(11)*')",
                       StructureId::kSReg),
        std::make_pair("exists y. R(y) & eqlen(x, y)", StructureId::kSLen),
        std::make_pair("exists y. R(y) & leqlen(x, y) & member(x, '(01)*')",
                       StructureId::kSLen)));

TEST(RangeRestrictionTest, UnsafeQueryReportedUnsafe) {
  Database db = BinaryDb();
  FormulaPtr f = Q("exists y. R(y) & y <= x");  // all extensions: infinite
  Result<RangeRestrictionCheck> check =
      CheckRangeRestriction(f, StructureId::kS, db, EffectiveK(f));
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(check->phi_safe_on_db);
  // The range-restricted variant is still finite (that is its point).
  EXPECT_GT(check->restricted_size, 0u);
}

TEST(RangeRestrictionTest, FinitenessSentenceSLen) {
  // Φ^safe from Section 6.1, specialized to the unary relation U: true on
  // every (finite) database relation — demonstrating that over S_len the
  // finiteness test of a *stored* set is definable.
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("U", 1, {{"0"}, {"111"}}).ok());
  AutomataEvaluator engine(&db);
  Result<bool> v = engine.EvaluateSentence(FinitenessSentenceSLen("U"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST(RangeRestrictionTest, Prop6DatabaseFamilies) {
  Database fin = Prop6FiniteDatabase(2);
  EXPECT_EQ(fin.Find("U")->size(), 7u);  // ε,0,1,00,01,10,11
  Database cut = Prop6InfiniteFamilyCut(1, 1, 2);
  // (01)^j · w for j=0,1,2, |w| <= 1: 3*3 = 9, minus duplicates.
  EXPECT_GT(cut.Find("U")->size(), 6u);
  // Every string in the cut is a prefix-sequence of the block pattern.
  for (const Tuple& t : cut.Find("U")->tuples()) {
    EXPECT_LE(t[0].size(), 5u);
  }
}

}  // namespace
}  // namespace strq
