#include "safety/safe_translation.h"

#include <gtest/gtest.h>

#include "eval/algebra_eval.h"
#include "eval/automata_eval.h"
#include "logic/parser.h"
#include "safety/range_restriction.h"

namespace strq {
namespace {

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  EXPECT_TRUE(db.AddRelation("S", 2, {{"0", "01"}, {"01", "0"}}).ok());
  return db;
}

std::map<std::string, int> Schema() { return {{"R", 1}, {"S", 2}}; }

TEST(SafeTranslationTest, AdomExprComputesActiveDomain) {
  Database db = BinaryDb();
  Result<RaPtr> adom = AdomExpr(Schema());
  ASSERT_TRUE(adom.ok());
  AlgebraEvaluator eval(&db);
  Result<Relation> out = eval.Evaluate(*adom);
  ASSERT_TRUE(out.ok());
  std::vector<std::string> flat;
  for (const Tuple& t : out->tuples()) flat.push_back(t[0]);
  EXPECT_EQ(flat, db.ActiveDomain());
}

TEST(SafeTranslationTest, AdomExprEmptySchema) {
  Database db(Alphabet::Binary());
  Result<RaPtr> adom = AdomExpr({});
  ASSERT_TRUE(adom.ok());
  AlgebraEvaluator eval(&db);
  Result<Relation> out = eval.Evaluate(*adom);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}

TEST(SafeTranslationTest, UniverseExprCoversGamma) {
  Database db = BinaryDb();
  for (StructureId s : {StructureId::kS, StructureId::kSLeft,
                        StructureId::kSReg, StructureId::kSLen}) {
    Result<RaPtr> universe = UniverseExpr(s, 2, Schema(), db.alphabet());
    ASSERT_TRUE(universe.ok()) << StructureName(s);
    AlgebraEvaluator eval(&db);
    Result<Relation> out = eval.Evaluate(*universe);
    ASSERT_TRUE(out.ok()) << StructureName(s) << ": " << out.status();
    Result<std::vector<std::string>> gamma = GammaCandidates(s, 2, db);
    ASSERT_TRUE(gamma.ok()) << StructureName(s);
    for (const std::string& g : *gamma) {
      EXPECT_TRUE(out->Contains({g}))
          << StructureName(s) << " universe missing '" << g << "'";
    }
  }
}

TEST(SafeTranslationTest, ValidatedAgainstOwnAlgebra) {
  // The translated plan must type-check as an RA(structure) plan
  // (Theorems 4/8: the translation lands inside the algebra).
  Database db = BinaryDb();
  struct Case {
    const char* query;
    StructureId structure;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"exists y. R(y) & x <= y", StructureId::kS},
           {"exists y. R(y) & prepend[1](y) = x", StructureId::kSLeft},
           {"exists y. R(y) & suffixin(x, y, '(00)*')", StructureId::kSReg},
           {"exists y. R(y) & eqlen(x, y)", StructureId::kSLen}}) {
    Result<RaPtr> plan = TranslateToAlgebra(Q(c.query), c.structure, Schema(),
                                            db.alphabet(), 2);
    ASSERT_TRUE(plan.ok()) << c.query << ": " << plan.status();
    EXPECT_TRUE(
        ValidateAlgebra(*plan, c.structure, Schema(), db.alphabet()).ok())
        << c.query;
  }
}

TEST(SafeTranslationTest, RejectsOutOfLanguageQueries) {
  Database db = BinaryDb();
  // eqlen is not in S.
  EXPECT_FALSE(TranslateToAlgebra(Q("exists y. R(y) & eqlen(x, y)"),
                                  StructureId::kS, Schema(), db.alphabet())
                   .ok());
}

// Theorems 4 and 8, empirically: for safe queries the translated algebra
// plan computes exactly the calculus answer (checked against engine A).
struct TranslationCase {
  const char* query;
  StructureId structure;
  int k;  // reach; -1 = EffectiveK
};

class TheoremT4T8Test : public ::testing::TestWithParam<TranslationCase> {};

TEST_P(TheoremT4T8Test, TranslationMatchesCalculus) {
  const TranslationCase& c = GetParam();
  Database db = BinaryDb();
  FormulaPtr f = Q(c.query);
  AutomataEvaluator engine(&db);
  Result<Relation> exact = engine.Evaluate(f);
  ASSERT_TRUE(exact.ok()) << c.query << ": " << exact.status();

  Result<RaPtr> plan = TranslateToAlgebra(f, c.structure, Schema(),
                                          db.alphabet(), c.k);
  ASSERT_TRUE(plan.ok()) << c.query << ": " << plan.status();
  AlgebraEvaluator::Options options;
  options.max_tuples = 20000000;
  AlgebraEvaluator algebra(&db, options);
  Result<Relation> translated = algebra.Evaluate(*plan);
  ASSERT_TRUE(translated.ok()) << c.query << ": " << translated.status();
  EXPECT_TRUE(*exact == *translated)
      << c.query << ": exact " << exact->size() << " tuples vs plan "
      << translated->size();
}

INSTANTIATE_TEST_SUITE_P(
    Battery, TheoremT4T8Test,
    ::testing::Values(
        // RA(S).
        TranslationCase{"R(x) & last[1](x)", StructureId::kS, 1},
        TranslationCase{"exists y. R(y) & x <= y", StructureId::kS, 1},
        TranslationCase{"exists y. R(y) & step(x, y)", StructureId::kS, 1},
        TranslationCase{"exists y. R(y) & append[1](y) = x", StructureId::kS,
                        2},
        TranslationCase{"exists y. S(x, y)", StructureId::kS, 1},
        TranslationCase{"exists y. S(y, x) & last[1](y)", StructureId::kS, 1},
        TranslationCase{"R(x) & !(exists y. S(x, y))", StructureId::kS, 1},
        TranslationCase{"adom(x) & like(x, '%1%')", StructureId::kS, 1},
        TranslationCase{"exists y. R(y) & lcp(x, y) = x & last[0](x)",
                        StructureId::kS, 1},
        // Restricted quantifier ranges.
        TranslationCase{"exists y in adom. step(x, y)", StructureId::kS, 1},
        TranslationCase{"R(x) & forall y in adom. lexleq(x, y)",
                        StructureId::kS, 1},
        // RA(S_left).
        TranslationCase{"exists y. R(y) & prepend[1](y) = x",
                        StructureId::kSLeft, 2},
        TranslationCase{"exists y. R(y) & trim[1](y) = x",
                        StructureId::kSLeft, 2},
        // RA(S_reg).
        TranslationCase{"exists y. R(y) & suffixin(x, y, '(10)*')",
                        StructureId::kSReg, 1},
        TranslationCase{"R(x) & member(x, '(0|1)(0|1)(0|1)')",
                        StructureId::kSReg, 1},
        // RA(S_len).
        TranslationCase{"exists y. R(y) & eqlen(x, y) & last[1](x)",
                        StructureId::kSLen, 1},
        TranslationCase{"exists y in adom. eqlen(x, y) & member(x, '1*')",
                        StructureId::kSLen, 1}));

TEST(SafeTranslationTest, BooleanQueryTranslation) {
  Database db = BinaryDb();
  FormulaPtr f = Q("exists x. R(x) & last[1](x)");
  Result<RaPtr> plan =
      TranslateToAlgebra(f, StructureId::kS, Schema(), db.alphabet(), 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  AlgebraEvaluator algebra(&db);
  Result<Relation> out = algebra.Evaluate(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->arity(), 0);
  EXPECT_EQ(out->size(), 1u);  // nullary "true"

  FormulaPtr g = Q("exists x. R(x) & last[1](x) & last[0](x)");
  Result<RaPtr> plan2 =
      TranslateToAlgebra(g, StructureId::kS, Schema(), db.alphabet(), 1);
  ASSERT_TRUE(plan2.ok());
  Result<Relation> out2 = algebra.Evaluate(*plan2);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->size(), 0u);  // nullary "false"
}

}  // namespace
}  // namespace strq

namespace strq {
namespace {

TEST(SafeTranslationTest, TwoVariableOutputs) {
  Database db = BinaryDb();
  AutomataEvaluator engine(&db);
  // Binary outputs: pairs (x, y) with both columns constrained.
  for (const char* query : {
           "S(x, y) & last[1](y)",
           "exists z. R(z) & x <= z & step(x, y)",
           "R(x) & R(y) & lexleq(x, y) & !(x = y)",
       }) {
    Result<FormulaPtr> f = ParseFormula(query);
    ASSERT_TRUE(f.ok());
    Result<Relation> exact = engine.Evaluate(*f);
    ASSERT_TRUE(exact.ok()) << query << ": " << exact.status();
    Result<RaPtr> plan = TranslateToAlgebra(*f, StructureId::kS, Schema(),
                                            db.alphabet(), 2);
    ASSERT_TRUE(plan.ok()) << query;
    AlgebraEvaluator::Options options;
    options.max_tuples = 30000000;
    AlgebraEvaluator algebra(&db, options);
    Result<Relation> out = algebra.Evaluate(*plan);
    ASSERT_TRUE(out.ok()) << query << ": " << out.status();
    EXPECT_TRUE(*out == *exact) << query << ": plan " << out->size()
                                << " vs exact " << exact->size();
  }
}

TEST(SafeTranslationTest, IffAndImpliesConnectives) {
  Database db = BinaryDb();
  AutomataEvaluator engine(&db);
  FormulaPtr f = *ParseFormula(
      "adom(x) & (last[1](x) <-> exists y. S(x, y))");
  Result<Relation> exact = engine.Evaluate(f);
  ASSERT_TRUE(exact.ok());
  Result<RaPtr> plan =
      TranslateToAlgebra(f, StructureId::kS, Schema(), db.alphabet(), 2);
  ASSERT_TRUE(plan.ok()) << plan.status();
  AlgebraEvaluator algebra(&db);
  Result<Relation> out = algebra.Evaluate(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(*out == *exact);
}

TEST(SafeTranslationTest, LenDomQuantifierTranslation) {
  Database db = BinaryDb();
  AutomataEvaluator engine(&db);
  // ∃y len adom with an S_len matrix; x bounded by adom membership.
  FormulaPtr f = *ParseFormula(
      "adom(x) & exists y len adom. eqlen(x, y) & last[1](y) & !(y = x)");
  Result<Relation> exact = engine.Evaluate(f);
  ASSERT_TRUE(exact.ok());
  Result<RaPtr> plan =
      TranslateToAlgebra(f, StructureId::kSLen, Schema(), db.alphabet(), 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  AlgebraEvaluator::Options options;
  options.max_tuples = 30000000;
  AlgebraEvaluator algebra(&db, options);
  Result<Relation> out = algebra.Evaluate(*plan);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(*out == *exact) << "plan " << out->size() << " vs exact "
                              << exact->size();
}

TEST(SafeTranslationTest, EmptyDatabaseEdgeCases) {
  Database db(Alphabet::Binary());
  ASSERT_TRUE(db.AddRelation("R", 1, {}).ok());
  ASSERT_TRUE(db.AddRelation("S", 2, {}).ok());
  AutomataEvaluator engine(&db);
  for (const char* query : {
           "R(x)",
           "adom(x) & exists y in adom. x <= y",
           "R(x) & !(exists y. S(x, y))",
       }) {
    Result<FormulaPtr> f = ParseFormula(query);
    ASSERT_TRUE(f.ok());
    Result<Relation> exact = engine.Evaluate(*f);
    ASSERT_TRUE(exact.ok()) << query;
    EXPECT_EQ(exact->size(), 0u) << query;
    Result<RaPtr> plan = TranslateToAlgebra(*f, StructureId::kS, Schema(),
                                            db.alphabet(), 2);
    ASSERT_TRUE(plan.ok()) << query;
    AlgebraEvaluator algebra(&db);
    Result<Relation> out = algebra.Evaluate(*plan);
    ASSERT_TRUE(out.ok()) << query << ": " << out.status();
    EXPECT_EQ(out->size(), 0u) << query;
  }
}

}  // namespace
}  // namespace strq
