#include "safety/query_safety.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace strq {
namespace {

const Alphabet kBin = Alphabet::Binary();

FormulaPtr Q(const std::string& input) {
  Result<FormulaPtr> r = ParseFormula(input);
  EXPECT_TRUE(r.ok()) << input << ": " << r.status();
  return *std::move(r);
}

Database BinaryDb() {
  Database db(Alphabet::Binary());
  EXPECT_TRUE(db.AddRelation("R", 1, {{"0"}, {"01"}, {"110"}}).ok());
  return db;
}

TEST(StateSafetyTest, Proposition7Decisions) {
  Database db = BinaryDb();
  // Finite output.
  Result<bool> safe = StateSafe(Q("exists y. R(y) & x <= y"), db);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(*safe);
  // Infinite output.
  Result<bool> unsafe = StateSafe(Q("exists y. R(y) & y <= x"), db);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_FALSE(*unsafe);
  // State-safety depends on the database: ¬R(x) ∧ member(x, '1*') is
  // infinite here...
  Result<bool> v = StateSafe(Q("!R(x) & member(x, '1*')"), db);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(*v);
}

TEST(StateSafetyTest, ConcatUndecidableSurfacesAsUnsupported) {
  Database db = BinaryDb();
  Result<bool> v = StateSafe(Q("exists w. R(w) & concat(w, w) = x"), db);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnsupported);
}

TEST(CQExtractionTest, RecognizesShape) {
  FormulaPtr f = Q("exists y. R(y) & x <= y & last[1](x)");
  Result<ConjunctiveQuery> cq = ExtractConjunctiveQuery(f);
  ASSERT_TRUE(cq.ok()) << cq.status();
  EXPECT_EQ(cq->head_vars, (std::vector<std::string>{"x"}));
  EXPECT_EQ(cq->exist_vars, (std::vector<std::string>{"y"}));
  EXPECT_EQ(cq->relation_atoms.size(), 1u);
  // γ gathers the two interpreted conjuncts.
  EXPECT_EQ(cq->gamma->kind, FormulaKind::kAnd);
}

TEST(CQExtractionTest, RejectsNonCQ) {
  EXPECT_FALSE(ExtractConjunctiveQuery(Q("forall y. R(y)")).ok());
  EXPECT_FALSE(
      ExtractConjunctiveQuery(Q("exists y in adom. R(y) & x = y")).ok());
  // Negated relation conjunct is outside the positive fragment.
  EXPECT_FALSE(ExtractConjunctiveQuery(Q("R(x) & !R(x)")).ok());
}

// Theorem 5 / Corollary 6: safety of conjunctive queries is decidable.
struct CQSafetyCase {
  const char* query;
  bool safe;
};

class CQSafetyTest : public ::testing::TestWithParam<CQSafetyCase> {};

TEST_P(CQSafetyTest, DecidesSafety) {
  const CQSafetyCase& c = GetParam();
  Result<ConjunctiveQuery> cq = ExtractConjunctiveQuery(Q(c.query));
  ASSERT_TRUE(cq.ok()) << c.query << ": " << cq.status();
  Result<bool> safe = ConjunctiveQuerySafe(*cq, kBin);
  ASSERT_TRUE(safe.ok()) << c.query << ": " << safe.status();
  EXPECT_EQ(*safe, c.safe) << c.query;
}

INSTANTIATE_TEST_SUITE_P(
    Battery, CQSafetyTest,
    ::testing::Values(
        // Head variable bound by a relation atom: safe.
        CQSafetyCase{"R(x) & last[1](x)", true},
        // Prefixes of a stored string: safe on every database.
        CQSafetyCase{"exists y. R(y) & x <= y", true},
        // Extensions of a stored string: unsafe.
        CQSafetyCase{"exists y. R(y) & y <= x", false},
        // Equal length to a stored string: safe (finitely many per length).
        CQSafetyCase{"exists y. R(y) & eqlen(x, y)", true},
        // At least the length of a stored string: unsafe.
        CQSafetyCase{"exists y. R(y) & leqlen(y, x)", false},
        // x unconstrained: unsafe.
        CQSafetyCase{"R(y) & x = x", false},
        // x = y·1 for stored y: safe (image of a function).
        CQSafetyCase{"exists y. R(y) & append[1](y) = x", true},
        // x with trim_1(x) stored: unsafe! If ε is stored, every x not
        // starting with 1 trims to ε.
        CQSafetyCase{"exists y. R(y) & trim[1](x) = y", false},
        // x = 1·y for stored y: safe.
        CQSafetyCase{"exists y. R(y) & prepend[1](y) = x", true},
        // lcp(x, y) stored: unsafe (x can diverge after the lcp).
        CQSafetyCase{"exists y. R(y) & lcp(x, '111') = y", false},
        // Boolean CQ (no head variable): always safe.
        CQSafetyCase{"exists y. R(y) & last[1](y)", true},
        // Member of a finite language: safe even without relations.
        CQSafetyCase{"member(x, '0|1|00')", true},
        // Member of an infinite language: unsafe.
        CQSafetyCase{"member(x, '(01)*')", false},
        // Two relation atoms sharing a variable.
        CQSafetyCase{"exists y. R(y) & R(append[1](y)) & x <= y", true},
        // Composite relation argument binding x through an invertible term.
        CQSafetyCase{"R(append[1](x))", true},
        // Suffix relationship: x ≼ y with y stored, plus regular suffix:
        CQSafetyCase{"exists y. R(y) & suffixin(x, y, '1*')", true}));

TEST(CQSafetyTest, UnionSafety) {
  Result<ConjunctiveQuery> safe_cq =
      ExtractConjunctiveQuery(Q("R(x) & last[1](x)"));
  Result<ConjunctiveQuery> unsafe_cq =
      ExtractConjunctiveQuery(Q("exists y. R(y) & y <= x"));
  ASSERT_TRUE(safe_cq.ok());
  ASSERT_TRUE(unsafe_cq.ok());
  Result<bool> both_safe = UnionOfCQsSafe({*safe_cq, *safe_cq}, kBin);
  ASSERT_TRUE(both_safe.ok());
  EXPECT_TRUE(*both_safe);
  Result<bool> mixed = UnionOfCQsSafe({*safe_cq, *unsafe_cq}, kBin);
  ASSERT_TRUE(mixed.ok());
  EXPECT_FALSE(*mixed);
}

TEST(CQSafetyTest, QuerySafeOnUnionFormula) {
  Result<bool> safe =
      QuerySafe(Q("(R(x) & last[1](x)) | (exists y. R(y) & x <= y)"), kBin);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(*safe);
  Result<bool> unsafe =
      QuerySafe(Q("(R(x) & last[1](x)) | (exists y. R(y) & y <= x)"), kBin);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_FALSE(*unsafe);
}

}  // namespace
}  // namespace strq
