#include "base/alphabet.h"

#include <limits>

namespace strq {

Result<Alphabet> Alphabet::Create(const std::string& chars) {
  if (chars.empty()) {
    return InvalidArgumentError("alphabet must be non-empty");
  }
  if (chars.size() >= std::numeric_limits<Symbol>::max()) {
    return InvalidArgumentError("alphabet too large");
  }
  for (size_t i = 0; i < chars.size(); ++i) {
    for (size_t j = i + 1; j < chars.size(); ++j) {
      if (chars[i] == chars[j]) {
        return InvalidArgumentError(std::string("duplicate character '") +
                                    chars[i] + "' in alphabet");
      }
    }
  }
  return Alphabet(chars);
}

Alphabet Alphabet::Binary() { return Alphabet("01"); }

Alphabet Alphabet::Abc() { return Alphabet("abc"); }

Result<Symbol> Alphabet::SymbolOf(char c) const {
  for (size_t i = 0; i < chars_.size(); ++i) {
    if (chars_[i] == c) return static_cast<Symbol>(i);
  }
  return InvalidArgumentError(std::string("character '") + c +
                              "' not in alphabet \"" + chars_ + "\"");
}

bool Alphabet::Contains(char c) const {
  return chars_.find(c) != std::string::npos;
}

Result<std::vector<Symbol>> Alphabet::Encode(const std::string& s) const {
  std::vector<Symbol> out;
  out.reserve(s.size());
  for (char c : s) {
    STRQ_ASSIGN_OR_RETURN(Symbol sym, SymbolOf(c));
    out.push_back(sym);
  }
  return out;
}

std::string Alphabet::Decode(const std::vector<Symbol>& s) const {
  std::string out;
  out.reserve(s.size());
  for (Symbol sym : s) out.push_back(CharOf(sym));
  return out;
}

}  // namespace strq
