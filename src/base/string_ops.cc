#include "base/string_ops.h"

#include <algorithm>
#include <cassert>

namespace strq {

bool IsPrefix(const std::string& x, const std::string& y) {
  return x.size() <= y.size() && y.compare(0, x.size(), x) == 0;
}

bool IsStrictPrefix(const std::string& x, const std::string& y) {
  return x.size() < y.size() && IsPrefix(x, y);
}

bool IsOneStepExtension(const std::string& x, const std::string& y) {
  return y.size() == x.size() + 1 && IsPrefix(x, y);
}

bool LastSymbolIs(const std::string& x, char a) {
  return !x.empty() && x.back() == a;
}

std::string AppendLast(const std::string& x, char a) { return x + a; }

std::string PrependFirst(const std::string& x, char a) {
  return std::string(1, a) + x;
}

std::string RelativeSuffix(const std::string& x, const std::string& y) {
  if (!IsPrefix(y, x)) return "";
  return x.substr(y.size());
}

std::string TrimLeading(const std::string& x, char a) {
  if (x.empty()) return "";
  if (x.front() != a) return "";
  return x.substr(1);
}

std::string LongestCommonPrefix(const std::string& x, const std::string& y) {
  size_t n = std::min(x.size(), y.size());
  size_t i = 0;
  while (i < n && x[i] == y[i]) ++i;
  return x.substr(0, i);
}

std::string InsertAfterPrefix(const std::string& p, const std::string& x,
                              char a) {
  if (!IsPrefix(p, x)) return "";
  return p + a + x.substr(p.size());
}

bool EqualLength(const std::string& x, const std::string& y) {
  return x.size() == y.size();
}

bool LexLeq(const std::string& x, const std::string& y,
            const std::string& order) {
  size_t n = std::min(x.size(), y.size());
  for (size_t i = 0; i < n; ++i) {
    if (x[i] == y[i]) continue;
    size_t px = order.find(x[i]);
    size_t py = order.find(y[i]);
    assert(px != std::string::npos && py != std::string::npos);
    return px < py;
  }
  return x.size() <= y.size();
}

namespace {

bool LikeMatchAt(const std::string& text, size_t ti, const std::string& pat,
                 size_t pi) {
  // Classic two-pointer with backtracking over '%'. Pattern sizes in queries
  // are tiny, so the worst-case quadratic behaviour is irrelevant here; the
  // DFA compiler in automata/like.h is the scalable path.
  while (pi < pat.size()) {
    char p = pat[pi];
    if (p == '%') {
      // Try to match the rest of the pattern at every remaining position.
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatchAt(text, k, pat, pi + 1)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (p != '_' && p != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  return LikeMatchAt(text, 0, pattern, 0);
}

std::vector<std::string> PrefixClosure(const std::vector<std::string>& c) {
  std::vector<std::string> out;
  for (const std::string& s : c) {
    for (size_t len = 0; len <= s.size(); ++len) {
      out.push_back(s.substr(0, len));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> AllStringsOfLength(const std::string& alphabet,
                                            int n) {
  std::vector<std::string> cur = {""};
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> next;
    next.reserve(cur.size() * alphabet.size());
    for (const std::string& s : cur) {
      for (char a : alphabet) next.push_back(s + a);
    }
    cur = std::move(next);
  }
  return cur;
}

std::vector<std::string> AllStringsUpToLength(const std::string& alphabet,
                                              int n) {
  std::vector<std::string> out;
  for (int len = 0; len <= n; ++len) {
    std::vector<std::string> layer = AllStringsOfLength(alphabet, len);
    out.insert(out.end(), layer.begin(), layer.end());
  }
  return out;
}

int DistanceToSet(const std::string& s, const std::vector<std::string>& c) {
  size_t best = 0;
  for (const std::string& t : c) {
    best = std::max(best, LongestCommonPrefix(s, t).size());
  }
  return static_cast<int>(s.size() - best);
}

}  // namespace strq
