#ifndef STRQ_BASE_STATUS_H_
#define STRQ_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace strq {

// Error categories used throughout the library. The library never throws
// exceptions across its public API; all expected failures are reported as a
// Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad pattern, unknown symbol, ...)
  kNotInLanguage,     // a formula/plan uses operations outside its calculus
  kUnsafe,            // a query was proven to have an infinite output
  kResourceExhausted, // a construction exceeded its configured budget
  kDeadlineExceeded,  // a request ran past its per-request deadline
  kUnsupported,       // a feature combination the engine does not implement
  kInternal,          // invariant violation; indicates a library bug
};

// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// A lightweight absl::Status-alike: a code plus a message. Ok statuses carry
// no message and are cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: bad pattern".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgumentError(std::string message);
Status NotInLanguageError(std::string message);
Status UnsafeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnsupportedError(std::string message);
Status InternalError(std::string message);

// Result<T> holds either a value or a non-ok Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows `return value;`
  // and `return SomeError(...);` from functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-ok Status from an expression of type Status.
#define STRQ_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::strq::Status strq_status_ = (expr);       \
    if (!strq_status_.ok()) return strq_status_; \
  } while (false)

// Evaluates a Result<T> expression, propagating errors and binding the value.
#define STRQ_ASSIGN_OR_RETURN(lhs, expr)                 \
  STRQ_ASSIGN_OR_RETURN_IMPL_(                           \
      STRQ_STATUS_CONCAT_(strq_result_, __LINE__), lhs, expr)

#define STRQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define STRQ_STATUS_CONCAT_(a, b) STRQ_STATUS_CONCAT_IMPL_(a, b)
#define STRQ_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace strq

#endif  // STRQ_BASE_STATUS_H_
