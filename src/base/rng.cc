#include "base/rng.h"

#include <algorithm>
#include <set>

namespace strq {

uint64_t Rng::Next() {
  // splitmix64: fast, tiny, and reproducible everywhere.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Modulo bias is negligible for the small bounds used here.
  return Next() % bound;
}

int Rng::NextInt(int lo, int hi) {
  return lo + static_cast<int>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

std::string Rng::NextString(const std::string& alphabet, int min_len,
                            int max_len) {
  int len = NextInt(min_len, max_len);
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(alphabet[NextBelow(alphabet.size())]);
  }
  return out;
}

std::vector<std::string> Rng::DistinctStrings(const std::string& alphabet,
                                              int min_len, int max_len,
                                              int count) {
  std::set<std::string> seen;
  // Bounded retry: the string space can be smaller than `count`.
  int attempts = count * 20 + 100;
  while (static_cast<int>(seen.size()) < count && attempts-- > 0) {
    seen.insert(NextString(alphabet, min_len, max_len));
  }
  return std::vector<std::string>(seen.begin(), seen.end());
}

}  // namespace strq
