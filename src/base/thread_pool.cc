#include "base/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "base/budget.h"
#include "obs/trace.h"

namespace strq {

int ParallelOptions::EffectiveThreads() const {
  if (num_threads == 1) return 1;
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 4;
  int n = num_threads <= 0 ? hw : num_threads;
  return std::clamp(n, 1, 64);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  obs::Count(obs::kPoolTasks);
  // Hand the submitter's trace context to the worker so spans opened inside
  // the task stitch into the submitting thread's span tree. The context is
  // two thread-local words; when no session is installed it is {0, 0} and
  // the install is a pair of TLS writes.
  obs::TraceContext ctx = obs::CurrentTraceContext();
  // The submitter's request budget rides along too (same lifetime argument:
  // every pooled path joins before the budget's scope unwinds), so worklist
  // deadline checks and product-state ceilings apply on workers exactly as
  // they do on the submitting thread.
  const RequestBudget* budget = CurrentRequestBudget();
  std::function<void()> wrapped = [ctx, budget, task = std::move(task)] {
    obs::ScopedTraceContext scope(ctx);
    ScopedRequestBudget budget_scope(budget);
    task();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty() && !shutdown_) {
        obs::Count(obs::kPoolStealsOrWaits);
        work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      }
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

// Process-wide helper pool backing ParallelFor. Sized to the hardware minus
// the calling thread (which always participates). Function-local static so
// threads are only ever created on first parallel use and joined at exit.
ThreadPool& SharedPool() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 4;
  static ThreadPool pool(std::max(1, hw - 1));
  return pool;
}

}  // namespace

void ThreadPool::ParallelFor(int num_threads, int n,
                             const std::function<void(int)>& fn) {
  ParallelOptions opts{num_threads};
  int k = std::min(opts.EffectiveThreads(), n);
  if (k <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Claim indices from a shared atomic; count completions under the mutex so
  // the caller's wait cannot miss the final notification. The caller drains
  // the counter too, so even a fully saturated pool (or a nested call from
  // inside a worker) always makes progress — no circular waits.
  struct Shared {
    std::atomic<int> next{0};
    int done = 0;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  auto body = [shared, &fn, n] {
    int i;
    while ((i = shared->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      fn(i);
      std::lock_guard<std::mutex> lock(shared->mu);
      if (++shared->done == n) shared->cv.notify_all();
    }
  };
  for (int t = 0; t < k - 1; ++t) SharedPool().Submit(body);
  body();
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->done == n; });
}

}  // namespace strq
