#ifndef STRQ_BASE_STRING_OPS_H_
#define STRQ_BASE_STRING_OPS_H_

#include <string>
#include <vector>

namespace strq {

// Reference implementations of the string operations of Section 2 of the
// paper, operating directly on character strings. These are the semantic
// ground truth the automata-based engines are property-tested against.

// x ≼ y : x is a prefix of y.
bool IsPrefix(const std::string& x, const std::string& y);

// x ≺ y : x is a strict prefix of y.
bool IsStrictPrefix(const std::string& x, const std::string& y);

// x < y in one step: y extends x by exactly one symbol.
bool IsOneStepExtension(const std::string& x, const std::string& y);

// L_a(x): the last symbol of x is a. False for the empty string.
bool LastSymbolIs(const std::string& x, char a);

// l_a(x) = x · a (append a as the last symbol).
std::string AppendLast(const std::string& x, char a);

// f_a(x) = a · x (prepend a as the first symbol).
std::string PrependFirst(const std::string& x, char a);

// x − y: the relative suffix of y in x; if x = y · z then z, else ε.
std::string RelativeSuffix(const std::string& x, const std::string& y);

// TRIM_a(x) = s' if x = a · s', and ε if the first symbol of x is not a
// (Section 7). Note TRIM_a(ε) = ε.
std::string TrimLeading(const std::string& x, char a);

// x ∩ y: the longest common prefix.
std::string LongestCommonPrefix(const std::string& x, const std::string& y);

// insert_a(p, x): the Conclusion's proposed operation — inserts a right
// after the prefix p of x: p·a·(x−p) if p ≼ x, and ε otherwise (mirroring
// TRIM's convention for inapplicable arguments).
std::string InsertAfterPrefix(const std::string& p, const std::string& x,
                              char a);

// el(x, y): |x| = |y|.
bool EqualLength(const std::string& x, const std::string& y);

// x ≤_lex y under the symbol order given by `order` (the alphabet string);
// this is the prefix-compatible lexicographic order defined in Section 4.
// Precondition: all characters of x and y occur in `order`.
bool LexLeq(const std::string& x, const std::string& y,
            const std::string& order);

// SQL LIKE matching: '%' matches any sequence (including empty), '_' matches
// exactly one character, all other pattern characters match themselves.
// This is the reference matcher; automata/like.h compiles patterns to DFAs.
bool LikeMatch(const std::string& text, const std::string& pattern);

// prefix(C): the prefix closure of a set of strings, sorted and deduplicated.
std::vector<std::string> PrefixClosure(const std::vector<std::string>& c);

// All strings over `alphabet` of length exactly n, in lexicographic order.
std::vector<std::string> AllStringsOfLength(const std::string& alphabet,
                                            int n);

// All strings over `alphabet` of length at most n, shortlex order.
std::vector<std::string> AllStringsUpToLength(const std::string& alphabet,
                                              int n);

// d(s, C) = |s| − |s ∩ C| where s ∩ C is the longest of the s ∩ c (Section 6).
// For empty C this is |s|.
int DistanceToSet(const std::string& s, const std::vector<std::string>& c);

}  // namespace strq

#endif  // STRQ_BASE_STRING_OPS_H_
