#ifndef STRQ_BASE_THREAD_POOL_H_
#define STRQ_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace strq {

// How much parallelism an engine may use when compiling independent
// subproblems. Threaded paths are on by default; `num_threads = 1` restores
// the exact serial execution order (no pool is ever constructed), and 0
// defers to the hardware concurrency.
struct ParallelOptions {
  int num_threads = 0;

  // The effective worker count: at least 1, capped so a bad hint cannot
  // oversubscribe wildly.
  int EffectiveThreads() const;

  bool serial() const { return EffectiveThreads() <= 1; }
};

// A deliberately small fixed-size thread pool: one shared FIFO queue, a
// mutex and a condition variable — no work stealing, no dynamic sizing.
// Automaton compilation tasks are coarse (each builds whole DFA products),
// so queue contention is negligible and the simple design keeps the
// determinism story auditable: results are joined in submission order by
// ParallelFor, never in completion order.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Safe to call from worker threads (tasks may spawn
  // subtasks), but the caller must not Wait() on work it transitively
  // depends on from inside a task.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task (including ones submitted while
  // waiting) has finished.
  void WaitIdle();

  // Runs fn(i) for i in [0, n) across the pool's workers plus the calling
  // thread, returning when all iterations are done. Iterations must be
  // independent. With num_threads <= 1 (or n <= 1) this degenerates to a
  // plain serial loop on the calling thread.
  static void ParallelFor(int num_threads, int n,
                          const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace strq

#endif  // STRQ_BASE_THREAD_POOL_H_
