#include "base/status.h"

namespace strq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotInLanguage:
      return "NOT_IN_LANGUAGE";
    case StatusCode::kUnsafe:
      return "UNSAFE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotInLanguageError(std::string message) {
  return Status(StatusCode::kNotInLanguage, std::move(message));
}
Status UnsafeError(std::string message) {
  return Status(StatusCode::kUnsafe, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace strq
