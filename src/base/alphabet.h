#ifndef STRQ_BASE_ALPHABET_H_
#define STRQ_BASE_ALPHABET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"

namespace strq {

// A symbol is an index into an Alphabet; strings manipulated by the engines
// are sequences of Symbols. Automata over convolution alphabets (src/mta)
// need up to (|Σ|+1)^k letters for arity-k relations, so Symbol is 16 bits.
using Symbol = uint16_t;

// A finite, ordered alphabet Σ. The order of the characters passed to the
// constructor defines the symbol order a_1 < a_2 < ... used by the
// lexicographic ordering of Section 4.
//
// Alphabets are small value types; copy freely.
class Alphabet {
 public:
  // Creates an alphabet from distinct printable characters, e.g. "01" or
  // "abc". Duplicate characters are rejected.
  static Result<Alphabet> Create(const std::string& chars);

  // Convenience alphabets used pervasively in tests and benches.
  static Alphabet Binary();  // {0, 1}
  static Alphabet Abc();     // {a, b, c}

  int size() const { return static_cast<int>(chars_.size()); }

  // Character rendering of a symbol; precondition: s < size().
  char CharOf(Symbol s) const { return chars_[s]; }

  // Symbol of a character, or InvalidArgument if the character is not in Σ.
  Result<Symbol> SymbolOf(char c) const;
  bool Contains(char c) const;

  // Encodes a character string as a symbol string; fails on foreign chars.
  Result<std::vector<Symbol>> Encode(const std::string& s) const;

  // Decodes a symbol string back to characters.
  std::string Decode(const std::vector<Symbol>& s) const;

  friend bool operator==(const Alphabet& a, const Alphabet& b) {
    return a.chars_ == b.chars_;
  }

 private:
  explicit Alphabet(std::string chars) : chars_(std::move(chars)) {}

  std::string chars_;
};

}  // namespace strq

#endif  // STRQ_BASE_ALPHABET_H_
