#include "base/budget.h"

namespace strq {

namespace {
thread_local const RequestBudget* t_budget = nullptr;
}  // namespace

RequestBudget RequestBudget::WithTimeout(std::chrono::nanoseconds timeout) {
  RequestBudget b;
  b.deadline = std::chrono::steady_clock::now() + timeout;
  b.has_deadline = true;
  return b;
}

const RequestBudget* CurrentRequestBudget() { return t_budget; }

ScopedRequestBudget::ScopedRequestBudget(const RequestBudget* budget)
    : saved_(t_budget) {
  t_budget = budget;
}

ScopedRequestBudget::~ScopedRequestBudget() { t_budget = saved_; }

Status CheckDeadline() {
  const RequestBudget* b = t_budget;
  if (b != nullptr && b->Expired()) {
    return DeadlineExceededError("request deadline exceeded");
  }
  return Status::Ok();
}

int CurrentMaxProductStates(int fallback) {
  const RequestBudget* b = t_budget;
  if (b != nullptr && b->max_product_states > 0) return b->max_product_states;
  return fallback;
}

size_t CurrentMaxAnswerTuples(size_t fallback) {
  const RequestBudget* b = t_budget;
  if (b != nullptr && b->max_answer_tuples > 0 &&
      b->max_answer_tuples < fallback) {
    return b->max_answer_tuples;
  }
  return fallback;
}

}  // namespace strq
