#ifndef STRQ_BASE_BUDGET_H_
#define STRQ_BASE_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "base/status.h"

namespace strq {

// Per-request resource limits, threaded from the serving layer down to the
// automaton kernels. Every field has a zero value meaning "no per-request
// limit; use the library default":
//
//   * deadline            absolute steady-clock point after which kernels
//                         abort with DEADLINE_EXCEEDED. Checked at worklist
//                         granularity (every few hundred pops), so even a
//                         blowing-up product stops within microseconds of
//                         the deadline.
//   * max_product_states  per-request override of kDefaultMaxProductStates
//                         (and the determinization budget). 0 = default.
//   * max_answer_tuples   cap on materialized answer tuples. 0 = the
//                         evaluator's own default.
//
// The budget travels as a thread-local pointer (ScopedRequestBudget), so the
// deep kernels consult it without signature churn; ThreadPool::Submit
// captures and re-installs it on workers the same way it propagates
// TraceContext, so parallel subplan compilation inherits the submitting
// request's limits. The pointed-to budget must outlive the scope (and any
// ParallelFor fanned out under it — the completion barrier guarantees that).
struct RequestBudget {
  std::chrono::steady_clock::time_point deadline{};  // meaningful iff set
  bool has_deadline = false;
  int max_product_states = 0;
  size_t max_answer_tuples = 0;

  // A budget whose deadline is `timeout` from now; non-positive timeouts
  // produce an already-expired deadline (useful for tests and for rejecting
  // requests that arrive late).
  static RequestBudget WithTimeout(std::chrono::nanoseconds timeout);

  bool Expired() const {
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }
};

// The budget installed on the current thread, or nullptr when the request is
// unbudgeted (library defaults apply everywhere).
const RequestBudget* CurrentRequestBudget();

// RAII install/restore, mirroring obs::ScopedTraceContext. Nesting is
// allowed; the innermost budget wins.
class ScopedRequestBudget {
 public:
  explicit ScopedRequestBudget(const RequestBudget* budget);
  ~ScopedRequestBudget();
  ScopedRequestBudget(const ScopedRequestBudget&) = delete;
  ScopedRequestBudget& operator=(const ScopedRequestBudget&) = delete;

 private:
  const RequestBudget* saved_;
};

// Ok while the current budget (if any) has time left; DEADLINE_EXCEEDED
// otherwise. Kernels call this every few hundred worklist pops.
Status CheckDeadline();

// The current budget's product-state ceiling, or `fallback` when no budget
// is installed / the budget leaves the knob at 0.
int CurrentMaxProductStates(int fallback);

// The current budget's answer-tuple cap combined with the evaluator default:
// the smaller of the two when both are set.
size_t CurrentMaxAnswerTuples(size_t fallback);

}  // namespace strq

#endif  // STRQ_BASE_BUDGET_H_
