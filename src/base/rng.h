#ifndef STRQ_BASE_RNG_H_
#define STRQ_BASE_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace strq {

// Deterministic pseudo-random generator (splitmix64) used by tests and
// benches so that workloads are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next();

  // Uniform integer in [0, bound); bound must be positive.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi);

  bool NextBool() { return (Next() & 1) != 0; }

  // Random string over `alphabet` with length uniform in [min_len, max_len].
  std::string NextString(const std::string& alphabet, int min_len,
                         int max_len);

  // `count` distinct random strings (may return fewer if the space is small).
  std::vector<std::string> DistinctStrings(const std::string& alphabet,
                                           int min_len, int max_len,
                                           int count);

 private:
  uint64_t state_;
};

}  // namespace strq

#endif  // STRQ_BASE_RNG_H_
