// Lazy on-the-fly products over the boolean skeleton of a compiled query
// (ROADMAP item 3). Where the eager pipeline interns the full intersection /
// union / complement product and minimizes it before the first answer comes
// out, a LazyProduct keeps the component DFAs separate and materializes
// joint states only as a consumer explores them, deduplicated through a
// signature-keyed state cache — the SparseAutomaton → DFACache pattern from
// RediSearch's levenshtein.h, lifted to multi-track convolution products.
//
// Three early-exit query modes drive the exploration:
//   * Contains(tuple)   — walk the single path of the tuple's convolution;
//                         cost is O(|conv|) state creations.
//   * ShortestWitness() — BFS over the product; stops at the first
//                         accepting state, yielding a shortest answer tuple.
//   * TopK(k)           — length-lexicographic (shortlex over canonical
//                         convolutions) enumeration of the first k answers,
//                         matching TrackAutomaton::EnumerateTuples order.
//
// States whose three-valued skeleton evaluation is false-forever (every
// component that could still flip is dead) are pruned: they are created,
// cached, and never expanded, which is what turns candidate enumeration into
// dead-subtree pruning. Deadlines and product-state budgets
// (base/budget.h) are polled at state-creation granularity, so a serving
// deadline interrupts the product within a handful of states.
//
// The lazy layer interns nothing: component DfaRefs are read through their
// public tables and joint states live only in this object's cache, so
// canonical AutomatonStore ids are unaffected by lazy traffic.

#ifndef STRQ_LAZY_LAZY_H_
#define STRQ_LAZY_LAZY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/store.h"
#include "base/alphabet.h"
#include "base/status.h"
#include "mta/conv.h"

namespace strq {
namespace lazy {

// The boolean skeleton of a planned formula: leaves are compiled component
// automata (quantified subformulas, predicates, relation atoms), inner nodes
// are the connectives above them. Nodes form a DAG addressed by index so
// rewrites may share children.
struct Skeleton {
  enum class Kind { kLeaf, kNot, kAnd, kOr, kImplies, kIff, kConst };
  struct Node {
    Kind kind = Kind::kConst;
    int leaf = -1;      // kLeaf: index into the component vector
    int left = -1;      // first child (kNot/kAnd/kOr/kImplies/kIff)
    int right = -1;     // second child (binary kinds)
    bool value = false; // kConst
  };
  std::vector<Node> nodes;
  int root = -1;
};

// A joint state is the signature (valid_state, leaf_1 state, ..., leaf_n
// state); acceptance is Valid ∧ skeleton over the component accept bits.
// Transition rows are filled lazily per state and memoized.
class LazyProduct {
 public:
  // All leaves and `valid` must be complete DFAs over the convolution
  // alphabet `conv` (alphabet_size == conv.num_letters()); `valid` is the
  // canonical-convolution language Valid(arity) that every materialized
  // TrackAutomaton conjoins. Leaf languages must already be cylindrified to
  // the full track set.
  static Result<LazyProduct> Create(Alphabet alphabet, ConvAlphabet conv,
                                    DfaRef valid, std::vector<DfaRef> leaves,
                                    Skeleton skeleton);

  // Membership of a tuple, positionally aligned with the track order the
  // caller compiled the leaves against (sorted free-variable names).
  Result<bool> Contains(const std::vector<std::string>& tuple);

  // A shortest answer tuple (by convolution length), or nullopt when the
  // answer set is empty. The arity-0 witness is the empty tuple.
  Result<std::optional<std::vector<std::string>>> ShortestWitness();

  // The first `k` answers in shortlex order of their canonical convolutions
  // — the same order TrackAutomaton::EnumerateTuples produces — with
  // convolution length capped at `max_len`.
  Result<std::vector<std::vector<std::string>>> TopK(size_t k, int max_len);

  int arity() const { return conv_.arity(); }
  const Alphabet& alphabet() const { return alphabet_; }

  // States materialized in this product's cache so far (monotone; the cache
  // lives as long as the product, so repeated queries reuse states).
  int64_t states_created() const {
    return static_cast<int64_t>(states_.size());
  }

 private:
  LazyProduct(Alphabet alphabet, ConvAlphabet conv, DfaRef valid,
              std::vector<DfaRef> leaves, Skeleton skeleton);

  // Three-valued "forever" verdict for a state: kFalse = no extension (nor
  // the current word) can satisfy the skeleton+valid conjunction; kTrue =
  // the skeleton is satisfied for every extension (acceptance reduces to
  // the valid component); kUnknown otherwise.
  enum class Tri { kFalse, kUnknown, kTrue };

  struct State {
    std::vector<int> sig;       // [valid, leaf_0, ..., leaf_{n-1}]
    bool accepting = false;
    bool dead = false;          // prune: never accepts from here
    std::vector<int> next;      // lazily filled transition row (empty until
                                // first expansion), indexed by letter
  };

  struct SigHash {
    size_t operator()(const std::vector<int>& sig) const;
  };

  // Cache lookup / on-demand creation; polls deadline and product-state
  // budget on every miss. Returns the dense state id.
  Result<int> GetOrCreate(std::vector<int> sig);
  Result<int> StartState();
  // The memoized transition row of `state` (filled on first call).
  Result<const std::vector<int>*> Expand(int state);

  bool EvalAccept(const std::vector<int>& sig) const;
  Tri EvalForever(int node, const std::vector<int>& sig) const;

  Alphabet alphabet_;
  ConvAlphabet conv_;
  DfaRef valid_;
  std::vector<DfaRef> leaves_;
  Skeleton skeleton_;

  // components_[0] = valid, components_[1+i] = leaf i (borrowed from the
  // refs above). dead_[c][q]: no accepting state reachable from q in
  // component c; univ_[c][q]: every state reachable from q accepts.
  std::vector<const Dfa*> components_;
  std::vector<std::vector<bool>> dead_;
  std::vector<std::vector<bool>> univ_;

  std::vector<State> states_;
  std::unordered_map<std::vector<int>, int, SigHash> ids_;
  int start_ = -1;  // created on first query
};

}  // namespace lazy
}  // namespace strq

#endif  // STRQ_LAZY_LAZY_H_
