#include "lazy/lazy.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>

#include "automata/ops.h"
#include "base/budget.h"
#include "obs/trace.h"

namespace strq {
namespace lazy {

namespace {

// States from which no accepting state is reachable (backward reachability
// from the accepting set, over condensed classes).
std::vector<bool> DeadStates(const Dfa& d) {
  const int n = d.num_states();
  std::vector<std::vector<int>> preds(n);
  for (int q = 0; q < n; ++q) {
    for (int cls = 0; cls < d.num_classes(); ++cls) {
      preds[d.NextByClass(q, cls)].push_back(q);
    }
  }
  std::vector<bool> live(n, false);
  std::vector<int> stack;
  for (int q = 0; q < n; ++q) {
    if (d.IsAccepting(q)) {
      live[q] = true;
      stack.push_back(q);
    }
  }
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    for (int p : preds[q]) {
      if (!live[p]) {
        live[p] = true;
        stack.push_back(p);
      }
    }
  }
  std::vector<bool> dead(n);
  for (int q = 0; q < n; ++q) dead[q] = !live[q];
  return dead;
}

// States from which every reachable state (including the state itself)
// accepts — the component's language is "true forever" from there. Greatest
// fixpoint of univ(q) = accepting(q) ∧ ∀cls univ(next(q, cls)).
std::vector<bool> UnivStates(const Dfa& d) {
  const int n = d.num_states();
  std::vector<bool> univ(n);
  for (int q = 0; q < n; ++q) univ[q] = d.IsAccepting(q);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 0; q < n; ++q) {
      if (!univ[q]) continue;
      for (int cls = 0; cls < d.num_classes(); ++cls) {
        if (!univ[d.NextByClass(q, cls)]) {
          univ[q] = false;
          changed = true;
          break;
        }
      }
    }
  }
  return univ;
}

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

size_t LazyProduct::SigHash::operator()(const std::vector<int>& sig) const {
  uint64_t h = 1469598103934665603ULL;
  for (int v : sig) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

Result<LazyProduct> LazyProduct::Create(Alphabet alphabet, ConvAlphabet conv,
                                        DfaRef valid,
                                        std::vector<DfaRef> leaves,
                                        Skeleton skeleton) {
  if (!valid) return InvalidArgumentError("lazy: null valid automaton");
  if (valid->alphabet_size() != conv.num_letters()) {
    return InvalidArgumentError(
        "lazy: valid automaton not over the convolution alphabet");
  }
  for (const DfaRef& leaf : leaves) {
    if (!leaf) return InvalidArgumentError("lazy: null leaf automaton");
    if (leaf->alphabet_size() != conv.num_letters()) {
      return InvalidArgumentError(
          "lazy: leaf automaton not over the convolution alphabet");
    }
  }
  const int n = static_cast<int>(skeleton.nodes.size());
  if (skeleton.root < 0 || skeleton.root >= n) {
    return InvalidArgumentError("lazy: skeleton root out of range");
  }
  for (const Skeleton::Node& node : skeleton.nodes) {
    switch (node.kind) {
      case Skeleton::Kind::kLeaf:
        if (node.leaf < 0 || node.leaf >= static_cast<int>(leaves.size())) {
          return InvalidArgumentError("lazy: skeleton leaf out of range");
        }
        break;
      case Skeleton::Kind::kNot:
        if (node.left < 0 || node.left >= n) {
          return InvalidArgumentError("lazy: skeleton child out of range");
        }
        break;
      case Skeleton::Kind::kAnd:
      case Skeleton::Kind::kOr:
      case Skeleton::Kind::kImplies:
      case Skeleton::Kind::kIff:
        if (node.left < 0 || node.left >= n || node.right < 0 ||
            node.right >= n) {
          return InvalidArgumentError("lazy: skeleton child out of range");
        }
        break;
      case Skeleton::Kind::kConst:
        break;
    }
  }
  return LazyProduct(std::move(alphabet), conv, std::move(valid),
                     std::move(leaves), std::move(skeleton));
}

LazyProduct::LazyProduct(Alphabet alphabet, ConvAlphabet conv, DfaRef valid,
                         std::vector<DfaRef> leaves, Skeleton skeleton)
    : alphabet_(std::move(alphabet)),
      conv_(conv),
      valid_(std::move(valid)),
      leaves_(std::move(leaves)),
      skeleton_(std::move(skeleton)) {
  components_.push_back(&*valid_);
  for (const DfaRef& leaf : leaves_) components_.push_back(&*leaf);
  dead_.reserve(components_.size());
  univ_.reserve(components_.size());
  for (const Dfa* d : components_) {
    dead_.push_back(DeadStates(*d));
    univ_.push_back(UnivStates(*d));
  }
}

bool LazyProduct::EvalAccept(const std::vector<int>& sig) const {
  if (!components_[0]->IsAccepting(sig[0])) return false;
  // Bool-evaluate the skeleton over the component accept bits.
  std::vector<int> memo(skeleton_.nodes.size(), -1);
  auto eval = [&](auto&& self, int idx) -> bool {
    if (memo[idx] >= 0) return memo[idx] != 0;
    const Skeleton::Node& node = skeleton_.nodes[idx];
    bool v = false;
    switch (node.kind) {
      case Skeleton::Kind::kLeaf:
        v = components_[1 + node.leaf]->IsAccepting(sig[1 + node.leaf]);
        break;
      case Skeleton::Kind::kNot:
        v = !self(self, node.left);
        break;
      case Skeleton::Kind::kAnd:
        v = self(self, node.left) && self(self, node.right);
        break;
      case Skeleton::Kind::kOr:
        v = self(self, node.left) || self(self, node.right);
        break;
      case Skeleton::Kind::kImplies:
        v = !self(self, node.left) || self(self, node.right);
        break;
      case Skeleton::Kind::kIff:
        v = self(self, node.left) == self(self, node.right);
        break;
      case Skeleton::Kind::kConst:
        v = node.value;
        break;
    }
    memo[idx] = v ? 1 : 0;
    return v;
  };
  return eval(eval, skeleton_.root);
}

LazyProduct::Tri LazyProduct::EvalForever(int idx,
                                          const std::vector<int>& sig) const {
  const Skeleton::Node& node = skeleton_.nodes[idx];
  auto as_int = [](Tri t) { return static_cast<int>(t); };
  auto from_int = [](int v) { return static_cast<Tri>(v); };
  switch (node.kind) {
    case Skeleton::Kind::kLeaf: {
      const int c = 1 + node.leaf;
      if (dead_[c][sig[c]]) return Tri::kFalse;
      if (univ_[c][sig[c]]) return Tri::kTrue;
      return Tri::kUnknown;
    }
    case Skeleton::Kind::kNot:
      return from_int(2 - as_int(EvalForever(node.left, sig)));
    case Skeleton::Kind::kAnd:
      return from_int(std::min(as_int(EvalForever(node.left, sig)),
                               as_int(EvalForever(node.right, sig))));
    case Skeleton::Kind::kOr:
      return from_int(std::max(as_int(EvalForever(node.left, sig)),
                               as_int(EvalForever(node.right, sig))));
    case Skeleton::Kind::kImplies:
      return from_int(std::max(2 - as_int(EvalForever(node.left, sig)),
                               as_int(EvalForever(node.right, sig))));
    case Skeleton::Kind::kIff: {
      Tri l = EvalForever(node.left, sig);
      Tri r = EvalForever(node.right, sig);
      if (l == Tri::kUnknown || r == Tri::kUnknown) return Tri::kUnknown;
      return l == r ? Tri::kTrue : Tri::kFalse;
    }
    case Skeleton::Kind::kConst:
      return node.value ? Tri::kTrue : Tri::kFalse;
  }
  return Tri::kUnknown;
}

Result<int> LazyProduct::GetOrCreate(std::vector<int> sig) {
  auto it = ids_.find(sig);
  if (it != ids_.end()) {
    obs::Count(obs::kLazyCacheHits);
    return it->second;
  }
  // Deadline and budget are polled exactly here: state creation is the unit
  // of lazy work, so a serving deadline stops the product within one state.
  STRQ_RETURN_IF_ERROR(CheckDeadline());
  const int cap = CurrentMaxProductStates(kDefaultMaxProductStates);
  if (static_cast<int>(states_.size()) >= cap) {
    return ResourceExhaustedError(
        "lazy product exceeded the product-state budget (" +
        std::to_string(cap) + " states)");
  }
  State state;
  state.sig = sig;
  state.accepting = EvalAccept(state.sig);
  state.dead = dead_[0][state.sig[0]] ||
               EvalForever(skeleton_.root, state.sig) == Tri::kFalse;
  const int id = static_cast<int>(states_.size());
  states_.push_back(std::move(state));
  ids_.emplace(std::move(sig), id);
  obs::Count(obs::kLazyStatesCreated);
  return id;
}

Result<int> LazyProduct::StartState() {
  if (start_ >= 0) return start_;
  std::vector<int> sig;
  sig.reserve(components_.size());
  for (const Dfa* d : components_) sig.push_back(d->start());
  STRQ_ASSIGN_OR_RETURN(start_, GetOrCreate(std::move(sig)));
  return start_;
}

Result<const std::vector<int>*> LazyProduct::Expand(int state) {
  if (!states_[state].next.empty()) return &states_[state].next;
  const int letters = conv_.num_letters();
  std::vector<int> row;
  row.reserve(letters);
  std::vector<int> sig(components_.size());
  for (int letter = 0; letter < letters; ++letter) {
    const std::vector<int>& src = states_[state].sig;
    for (size_t c = 0; c < components_.size(); ++c) {
      sig[c] = components_[c]->Next(src[c], static_cast<Symbol>(letter));
    }
    STRQ_ASSIGN_OR_RETURN(int target, GetOrCreate(sig));
    row.push_back(target);
  }
  states_[state].next = std::move(row);
  return &states_[state].next;
}

Result<bool> LazyProduct::Contains(const std::vector<std::string>& tuple) {
  const auto t0 = std::chrono::steady_clock::now();
  if (static_cast<int>(tuple.size()) != conv_.arity()) {
    return InvalidArgumentError("lazy Contains: tuple arity mismatch");
  }
  STRQ_ASSIGN_OR_RETURN(std::vector<Symbol> word,
                        conv_.ConvolveStrings(alphabet_, tuple));
  STRQ_ASSIGN_OR_RETURN(int cur, StartState());
  for (Symbol letter : word) {
    if (states_[cur].dead) break;  // no extension accepts; verdict is fixed
    const std::vector<int>& src = states_[cur].sig;
    std::vector<int> sig(components_.size());
    for (size_t c = 0; c < components_.size(); ++c) {
      sig[c] = components_[c]->Next(src[c], letter);
    }
    STRQ_ASSIGN_OR_RETURN(cur, GetOrCreate(std::move(sig)));
  }
  const bool accepted = !states_[cur].dead && states_[cur].accepting;
  obs::Observe(obs::kHistLazyFirstAnswerNs, ElapsedNs(t0));
  return accepted;
}

Result<std::optional<std::vector<std::string>>> LazyProduct::ShortestWitness() {
  const auto t0 = std::chrono::steady_clock::now();
  STRQ_ASSIGN_OR_RETURN(int start, StartState());
  auto finish = [&](std::optional<std::vector<std::string>> answer) {
    obs::Observe(obs::kHistLazyFirstAnswerNs, ElapsedNs(t0));
    return answer;
  };
  if (states_[start].dead) return finish(std::nullopt);
  if (states_[start].accepting) {
    obs::Count(obs::kLazyEarlyExits);
    return finish(conv_.DeconvolveStrings(alphabet_, {}));
  }
  // BFS with ascending-letter expansion: the first accepting state found is
  // reached by a shortest (and among its own paths, lex-least) word.
  std::unordered_map<int, std::pair<int, Symbol>> parent;
  std::deque<int> queue = {start};
  std::vector<bool> visited_hint;  // indexed by dense id, grown on demand
  auto visited = [&](int id) {
    return id < static_cast<int>(visited_hint.size()) && visited_hint[id];
  };
  auto mark = [&](int id) {
    if (id >= static_cast<int>(visited_hint.size())) {
      visited_hint.resize(id + 1, false);
    }
    visited_hint[id] = true;
  };
  mark(start);
  int64_t polls = 0;
  while (!queue.empty()) {
    if (((++polls) & 255) == 0) STRQ_RETURN_IF_ERROR(CheckDeadline());
    const int cur = queue.front();
    queue.pop_front();
    STRQ_ASSIGN_OR_RETURN(const std::vector<int>* row, Expand(cur));
    for (int letter = 0; letter < conv_.num_letters(); ++letter) {
      const int target = (*row)[letter];
      if (states_[target].dead || visited(target)) continue;
      mark(target);
      parent.emplace(target, std::make_pair(cur, static_cast<Symbol>(letter)));
      if (states_[target].accepting) {
        std::vector<Symbol> word;
        for (int at = target; at != start;) {
          const auto& [prev, via] = parent.at(at);
          word.push_back(via);
          at = prev;
        }
        std::reverse(word.begin(), word.end());
        obs::Count(obs::kLazyEarlyExits);
        return finish(conv_.DeconvolveStrings(alphabet_, word));
      }
      queue.push_back(target);
    }
  }
  return finish(std::nullopt);
}

Result<std::vector<std::vector<std::string>>> LazyProduct::TopK(size_t k,
                                                                int max_len) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<std::string>> answers;
  if (k == 0) return answers;
  const size_t limit = std::min(k, CurrentMaxAnswerTuples(k));
  STRQ_ASSIGN_OR_RETURN(int start, StartState());
  // Prefix frontier in shortlex order: pop order equals answer order because
  // children are pushed with letters ascending and the queue is FIFO.
  std::deque<std::pair<int, std::vector<Symbol>>> queue;
  if (!states_[start].dead) queue.emplace_back(start, std::vector<Symbol>{});
  bool first_answer = true;
  int64_t polls = 0;
  while (!queue.empty()) {
    if (((++polls) & 255) == 0) STRQ_RETURN_IF_ERROR(CheckDeadline());
    auto [cur, word] = std::move(queue.front());
    queue.pop_front();
    if (states_[cur].accepting) {
      if (first_answer) {
        obs::Observe(obs::kHistLazyFirstAnswerNs, ElapsedNs(t0));
        first_answer = false;
      }
      answers.push_back(conv_.DeconvolveStrings(alphabet_, word));
      if (answers.size() >= limit) {
        if (limit < k && !queue.empty()) {
          return ResourceExhaustedError(
              "lazy TopK hit the answer-tuple budget before k answers");
        }
        obs::Count(obs::kLazyEarlyExits);
        return answers;
      }
    }
    if (static_cast<int>(word.size()) >= max_len) continue;
    STRQ_ASSIGN_OR_RETURN(const std::vector<int>* row, Expand(cur));
    for (int letter = 0; letter < conv_.num_letters(); ++letter) {
      const int target = (*row)[letter];
      if (states_[target].dead) continue;
      std::vector<Symbol> next = word;
      next.push_back(static_cast<Symbol>(letter));
      queue.emplace_back(target, std::move(next));
    }
  }
  if (first_answer) obs::Observe(obs::kHistLazyFirstAnswerNs, ElapsedNs(t0));
  return answers;
}

}  // namespace lazy
}  // namespace strq
