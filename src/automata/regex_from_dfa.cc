#include "automata/regex_from_dfa.h"

#include <map>
#include <utility>
#include <vector>

namespace strq {

namespace {

// Simplifying regex combinators over a nullable representation: nullptr
// stands for the empty language ∅ (absent GNFA edge).
using Edge = RegexPtr;  // nullptr = ∅

bool IsEpsilon(const Edge& e) {
  return e != nullptr && e->kind == RegexKind::kEpsilon;
}

Edge SUnion(Edge a, Edge b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  // ε | ε collapses; deeper dedup is not worth the comparison cost here.
  if (IsEpsilon(a) && IsEpsilon(b)) return a;
  return RxUnion(std::move(a), std::move(b));
}

Edge SConcat(Edge a, Edge b) {
  if (a == nullptr || b == nullptr) return nullptr;  // ∅ annihilates
  if (IsEpsilon(a)) return b;
  if (IsEpsilon(b)) return a;
  return RxConcat(std::move(a), std::move(b));
}

Edge SStar(Edge a) {
  if (a == nullptr || IsEpsilon(a)) return RxEpsilon();  // ∅* = ε* = ε
  if (a->kind == RegexKind::kStar) return a;
  return RxStar(std::move(a));
}

}  // namespace

Result<RegexPtr> RegexFromDfa(const Dfa& dfa, const Alphabet& alphabet) {
  if (dfa.alphabet_size() != alphabet.size()) {
    return InvalidArgumentError("alphabet size mismatch");
  }
  int n = dfa.num_states();
  // GNFA with fresh start (n) and accept (n+1) nodes; edges as regexes.
  int start = n;
  int accept = n + 1;
  std::map<std::pair<int, int>, Edge> edges;
  auto add = [&](int from, int to, Edge e) {
    auto [it, inserted] = edges.emplace(std::make_pair(from, to), e);
    if (!inserted) it->second = SUnion(it->second, std::move(e));
  };
  for (int q = 0; q < n; ++q) {
    for (int s = 0; s < dfa.alphabet_size(); ++s) {
      add(q, dfa.Next(q, static_cast<Symbol>(s)),
          RxLiteral(alphabet.CharOf(static_cast<Symbol>(s))));
    }
    if (dfa.IsAccepting(q)) add(q, accept, RxEpsilon());
  }
  add(start, dfa.start(), RxEpsilon());

  auto get = [&](int from, int to) -> Edge {
    auto it = edges.find({from, to});
    return it == edges.end() ? nullptr : it->second;
  };

  // Eliminate the original states one by one.
  std::vector<int> alive;
  for (int q = 0; q < n; ++q) alive.push_back(q);
  for (int victim = 0; victim < n; ++victim) {
    Edge self = get(victim, victim);
    Edge loop = SStar(self);
    // All predecessors/successors among remaining nodes (incl. start/accept).
    std::vector<int> nodes;
    for (int q = victim + 1; q < n; ++q) nodes.push_back(q);
    nodes.push_back(start);
    nodes.push_back(accept);
    for (int p : nodes) {
      Edge in = get(p, victim);
      if (in == nullptr) continue;
      for (int r : nodes) {
        Edge out = get(victim, r);
        if (out == nullptr) continue;
        add(p, r, SConcat(in, SConcat(loop, out)));
      }
    }
    // Remove victim's edges.
    for (auto it = edges.begin(); it != edges.end();) {
      if (it->first.first == victim || it->first.second == victim) {
        it = edges.erase(it);
      } else {
        ++it;
      }
    }
  }
  Edge result = get(start, accept);
  if (result == nullptr) return RxEmptySet();
  return result;
}

Result<std::string> DescribeLanguage(const Dfa& dfa,
                                     const Alphabet& alphabet) {
  STRQ_ASSIGN_OR_RETURN(RegexPtr rx, RegexFromDfa(dfa.Minimized(), alphabet));
  return RegexToString(rx);
}

}  // namespace strq
