#include "automata/starfree.h"

#include <map>
#include <vector>

namespace strq {

namespace {

using Transformation = std::vector<int>;  // state -> state

Transformation Compose(const Transformation& f, const Transformation& g) {
  // (f then g): x -> g[f[x]].
  Transformation out(f.size());
  for (size_t i = 0; i < f.size(); ++i) out[i] = g[f[i]];
  return out;
}

// Enumerates the transition monoid of `dfa` (all transformations induced by
// non-empty words, plus identity) via BFS over generator composition.
Result<std::vector<Transformation>> EnumerateMonoid(const Dfa& dfa,
                                                    int max_monoid_size) {
  int n = dfa.num_states();
  std::vector<Transformation> generators;
  for (int s = 0; s < dfa.alphabet_size(); ++s) {
    Transformation t(n);
    for (int q = 0; q < n; ++q) t[q] = dfa.Next(q, static_cast<Symbol>(s));
    generators.push_back(std::move(t));
  }

  std::map<Transformation, int> seen;
  std::vector<Transformation> elements;
  auto intern = [&](Transformation t) -> bool {
    auto [it, inserted] = seen.emplace(t, static_cast<int>(elements.size()));
    if (inserted) elements.push_back(std::move(t));
    return inserted;
  };

  Transformation identity(n);
  for (int q = 0; q < n; ++q) identity[q] = q;
  intern(identity);
  for (const Transformation& g : generators) intern(g);

  for (size_t i = 0; i < elements.size(); ++i) {
    if (static_cast<int>(elements.size()) > max_monoid_size) {
      return ResourceExhaustedError("transition monoid exceeded budget");
    }
    for (const Transformation& g : generators) {
      intern(Compose(elements[i], g));
    }
  }
  return elements;
}

// Does t^k = t^{k+1} hold for some k <= num_states? In a finite monoid the
// powers of t eventually cycle; t is aperiodic iff that cycle has length 1.
bool IsAperiodicElement(const Transformation& t) {
  // Iterate powers until a repeat; the monoid of transformations on n points
  // guarantees a repeat within n^n steps, but in practice the index is tiny.
  // We detect the cycle with a map from transformation to first position.
  std::map<Transformation, int> first_seen;
  Transformation power = t;
  int step = 1;
  while (true) {
    auto [it, inserted] = first_seen.emplace(power, step);
    if (!inserted) {
      int cycle_len = step - it->second;
      return cycle_len == 1;
    }
    power = Compose(power, t);
    ++step;
  }
}

}  // namespace

Result<bool> IsStarFree(const Dfa& dfa, int max_monoid_size) {
  Dfa min = dfa.Minimized();
  STRQ_ASSIGN_OR_RETURN(std::vector<Transformation> monoid,
                        EnumerateMonoid(min, max_monoid_size));
  for (const Transformation& t : monoid) {
    if (!IsAperiodicElement(t)) return false;
  }
  return true;
}

Result<int> SyntacticMonoidSize(const Dfa& dfa, int max_monoid_size) {
  Dfa min = dfa.Minimized();
  STRQ_ASSIGN_OR_RETURN(std::vector<Transformation> monoid,
                        EnumerateMonoid(min, max_monoid_size));
  return static_cast<int>(monoid.size());
}

}  // namespace strq
