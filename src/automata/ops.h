#ifndef STRQ_AUTOMATA_OPS_H_
#define STRQ_AUTOMATA_OPS_H_

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/status.h"

namespace strq {

// Default ceiling on constructed DFA sizes; subset construction can blow up
// exponentially and callers get a ResourceExhausted error instead of an OOM.
inline constexpr int kDefaultMaxDfaStates = 1 << 20;

// Ceiling on materialized product states. Larger than the determinization
// budget: the reachable-only kernel only pays for pairs it actually visits,
// so products of already-large DFAs stay cheap unless genuinely explosive.
inline constexpr int kDefaultMaxProductStates = 1 << 22;

// Subset construction with epsilon closures. Already reachable-only: the
// worklist interns exactly the subsets reachable from the start closure.
Result<Dfa> Determinize(const Nfa& nfa, int max_states = kDefaultMaxDfaStates);

// Which product implementation the wrappers below use. The reachable-only
// worklist kernel is the default; the eager |A|x|B| kernel is retained as a
// differential-testing and ablation reference.
enum class ProductKernel { kReachable, kEager };
ProductKernel GetProductKernel();
void SetProductKernel(ProductKernel kernel);

// RAII kernel switch for tests and benches.
class ScopedProductKernel {
 public:
  explicit ScopedProductKernel(ProductKernel kernel)
      : saved_(GetProductKernel()) {
    SetProductKernel(kernel);
  }
  ~ScopedProductKernel() { SetProductKernel(saved_); }
  ScopedProductKernel(const ScopedProductKernel&) = delete;
  ScopedProductKernel& operator=(const ScopedProductKernel&) = delete;

 private:
  ProductKernel saved_;
};

// Product constructions on complete DFAs over the same alphabet. Only state
// pairs reachable from (start_a, start_b) are materialized (unless the eager
// reference kernel is selected); `max_states` bounds the materialized count.
Result<Dfa> Intersect(const Dfa& a, const Dfa& b,
                      int max_states = kDefaultMaxProductStates);
Result<Dfa> Union(const Dfa& a, const Dfa& b,
                  int max_states = kDefaultMaxProductStates);
Result<Dfa> Difference(const Dfa& a, const Dfa& b,
                       int max_states = kDefaultMaxProductStates);

// Is L(a) ∩ L(b) empty? Decided on the fly: the pair worklist stops at the
// first mutually-accepting pair, without ever building a product DFA.
Result<bool> IntersectionEmpty(const Dfa& a, const Dfa& b);

// Symmetric-difference emptiness: do a and b accept the same language?
// Early-exits at the first reachable pair where exactly one side accepts.
Result<bool> Equivalent(const Dfa& a, const Dfa& b);

// Is L(a) a subset of L(b)? Early-exits at the first counterexample pair.
Result<bool> Subset(const Dfa& a, const Dfa& b);

// The reversal language L(a)^R (via NFA reversal + determinization).
Result<Dfa> Reverse(const Dfa& a, int max_states = kDefaultMaxDfaStates);

// Left quotient a^{-1}L = {w | a·w ∈ L}: just advances the start state.
Dfa LeftQuotient(const Dfa& d, Symbol a);

// Concatenation of a single letter in front: {a·w | w ∈ L}.
Result<Dfa> PrependLetter(const Dfa& d, Symbol a);

// The prefix closure {u | ∃v: u·v ∈ L}.
Dfa PrefixClosureLang(const Dfa& d);

}  // namespace strq

#endif  // STRQ_AUTOMATA_OPS_H_
