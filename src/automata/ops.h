#ifndef STRQ_AUTOMATA_OPS_H_
#define STRQ_AUTOMATA_OPS_H_

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/status.h"

namespace strq {

// Default ceiling on constructed DFA sizes; subset construction can blow up
// exponentially and callers get a ResourceExhausted error instead of an OOM.
inline constexpr int kDefaultMaxDfaStates = 1 << 20;

// Subset construction with epsilon closures.
Result<Dfa> Determinize(const Nfa& nfa, int max_states = kDefaultMaxDfaStates);

// Product constructions on complete DFAs over the same alphabet.
Result<Dfa> Intersect(const Dfa& a, const Dfa& b);
Result<Dfa> Union(const Dfa& a, const Dfa& b);
Result<Dfa> Difference(const Dfa& a, const Dfa& b);

// Symmetric-difference emptiness: do a and b accept the same language?
Result<bool> Equivalent(const Dfa& a, const Dfa& b);

// Is L(a) a subset of L(b)?
Result<bool> Subset(const Dfa& a, const Dfa& b);

// The reversal language L(a)^R (via NFA reversal + determinization).
Result<Dfa> Reverse(const Dfa& a, int max_states = kDefaultMaxDfaStates);

// Left quotient a^{-1}L = {w | a·w ∈ L}: just advances the start state.
Dfa LeftQuotient(const Dfa& d, Symbol a);

// Concatenation of a single letter in front: {a·w | w ∈ L}.
Result<Dfa> PrependLetter(const Dfa& d, Symbol a);

// The prefix closure {u | ∃v: u·v ∈ L}.
Dfa PrefixClosureLang(const Dfa& d);

}  // namespace strq

#endif  // STRQ_AUTOMATA_OPS_H_
