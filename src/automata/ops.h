#ifndef STRQ_AUTOMATA_OPS_H_
#define STRQ_AUTOMATA_OPS_H_

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/status.h"

namespace strq {

// Default ceiling on constructed DFA sizes; subset construction can blow up
// exponentially and callers get a ResourceExhausted error instead of an OOM.
inline constexpr int kDefaultMaxDfaStates = 1 << 20;

// Ceiling on materialized product states. Larger than the determinization
// budget: the reachable-only kernel only pays for pairs it actually visits,
// so products of already-large DFAs stay cheap unless genuinely explosive.
//
// Both defaults are per-request knobs: when a RequestBudget (base/budget.h)
// is installed on the calling thread and a kernel is invoked with the
// compile-time default, the budget's max_product_states takes over (the
// determinization ceiling is only ever lowered, never raised). Kernels also
// poll the budget's deadline at worklist granularity and abort with
// DEADLINE_EXCEEDED.
inline constexpr int kDefaultMaxProductStates = 1 << 22;

// Subset construction with epsilon closures. Already reachable-only: the
// worklist interns exactly the subsets reachable from the start closure.
Result<Dfa> Determinize(const Nfa& nfa, int max_states = kDefaultMaxDfaStates);

// Subset construction over a class-level transition relation, for callers
// that already know a valid symbol partition of their NFA (all letters of a
// class have identical target sets from every state — the caller's
// contract). `targets[q][c]` lists the targets of NFA state q on any letter
// of class c (sorted target lists are not required; subsets are normalized
// internally). No epsilon transitions. The result is built condensed with
// (letter_class, num_classes) as the hint partition, so the dense letter
// axis is never materialized. Used by the class-aware projection in mta/.
Result<Dfa> DeterminizeClassed(
    int alphabet_size, const std::vector<int>& letter_class, int num_classes,
    int start, const std::vector<bool>& accepting,
    const std::vector<std::vector<std::vector<int>>>& targets,
    int max_states = kDefaultMaxDfaStates);

// Which product implementation the wrappers below use. The reachable-only
// worklist kernel is the default; the eager |A|x|B| kernel is retained as a
// differential-testing and ablation reference.
enum class ProductKernel { kReachable, kEager };
ProductKernel GetProductKernel();
void SetProductKernel(ProductKernel kernel);

// RAII kernel switch for tests and benches.
class ScopedProductKernel {
 public:
  explicit ScopedProductKernel(ProductKernel kernel)
      : saved_(GetProductKernel()) {
    SetProductKernel(kernel);
  }
  ~ScopedProductKernel() { SetProductKernel(saved_); }
  ScopedProductKernel(const ScopedProductKernel&) = delete;
  ScopedProductKernel& operator=(const ScopedProductKernel&) = delete;

 private:
  ProductKernel saved_;
};

// Product constructions on complete DFAs over the same alphabet. Only state
// pairs reachable from (start_a, start_b) are materialized (unless the eager
// reference kernel is selected); `max_states` bounds the materialized count.
// Under the condensed class kernel (see ClassKernel in automata/dfa.h) the
// per-pair work iterates the *joint refinement* classes(a) ⨯ classes(b) —
// typically far fewer columns than the raw alphabet — and the result is
// built directly in condensed form with the joint partition as hint.
Result<Dfa> Intersect(const Dfa& a, const Dfa& b,
                      int max_states = kDefaultMaxProductStates);
Result<Dfa> Union(const Dfa& a, const Dfa& b,
                  int max_states = kDefaultMaxProductStates);
Result<Dfa> Difference(const Dfa& a, const Dfa& b,
                       int max_states = kDefaultMaxProductStates);

// Is L(a) ∩ L(b) empty? Decided on the fly: the pair worklist stops at the
// first mutually-accepting pair, without ever building a product DFA.
Result<bool> IntersectionEmpty(const Dfa& a, const Dfa& b);

// Symmetric-difference emptiness: do a and b accept the same language?
// Early-exits at the first reachable pair where exactly one side accepts.
Result<bool> Equivalent(const Dfa& a, const Dfa& b);

// Is L(a) a subset of L(b)? Early-exits at the first counterexample pair.
Result<bool> Subset(const Dfa& a, const Dfa& b);

// The reversal language L(a)^R (via NFA reversal + determinization).
Result<Dfa> Reverse(const Dfa& a, int max_states = kDefaultMaxDfaStates);

// Left quotient a^{-1}L = {w | a·w ∈ L}: just advances the start state.
Dfa LeftQuotient(const Dfa& d, Symbol a);

// Concatenation of a single letter in front: {a·w | w ∈ L}.
Result<Dfa> PrependLetter(const Dfa& d, Symbol a);

// The prefix closure {u | ∃v: u·v ∈ L}.
Dfa PrefixClosureLang(const Dfa& d);

}  // namespace strq

#endif  // STRQ_AUTOMATA_OPS_H_
