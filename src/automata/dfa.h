#ifndef STRQ_AUTOMATA_DFA_H_
#define STRQ_AUTOMATA_DFA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// A complete deterministic finite automaton over symbols {0..alphabet_size-1}.
// Transition tables are total: every state has a successor on every symbol
// (constructions add an explicit sink where needed). States are dense ints.
class Dfa {
 public:
  // Creates a DFA; `next[q][s]` is the successor of state q on symbol s.
  // All rows must have exactly `alphabet_size` entries with valid targets.
  static Result<Dfa> Create(int alphabet_size, int start,
                            std::vector<std::vector<int>> next,
                            std::vector<bool> accepting);

  // The one-state DFA rejecting everything.
  static Dfa EmptyLanguage(int alphabet_size);
  // The one-state DFA accepting Σ*.
  static Dfa AllStrings(int alphabet_size);
  // Accepts exactly the given string.
  static Dfa SingleString(int alphabet_size, const std::vector<Symbol>& w);

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return static_cast<int>(next_.size()); }
  // Total transition-table entries, num_states() * alphabet_size(): the
  // tables are complete, so this is the memory-relevant size figure that
  // the observability layer records alongside state counts.
  int64_t NumTransitions() const {
    return static_cast<int64_t>(next_.size()) * alphabet_size_;
  }
  int start() const { return start_; }
  int Next(int state, Symbol s) const { return next_[state][s]; }
  bool IsAccepting(int state) const { return accepting_[state]; }

  // Runs the DFA on a symbol string from the start state.
  bool Accepts(const std::vector<Symbol>& w) const;

  // Convenience: encode `w` over `alphabet` and run. Foreign chars -> false.
  bool AcceptsString(const Alphabet& alphabet, const std::string& w) const;

  // Language predicates.
  bool IsEmpty() const;
  bool IsUniversal() const;
  // True iff the accepted language is finite.
  bool IsFinite() const;

  // Number of accepted strings of length exactly n, saturating at
  // kCountSaturated.
  static constexpr uint64_t kCountSaturated = ~0ULL;
  uint64_t CountLength(int n) const;

  // Number of accepted strings of length at most n (saturating).
  uint64_t CountUpToLength(int n) const;

  // Accepted strings in shortlex order, up to `max_count` strings and length
  // at most `max_len`. Exact for finite languages when the limits are large
  // enough.
  std::vector<std::vector<Symbol>> Enumerate(int max_len,
                                             size_t max_count) const;

  // A shortest accepted string, if the language is non-empty.
  std::optional<std::vector<Symbol>> ShortestAccepted() const;

  // Length of the longest accepted string: -1 if the language is empty,
  // nullopt if it is infinite. Used to enumerate finite languages exactly.
  std::optional<int> MaxAcceptedLength() const;

  // Language transformations (all return complete DFAs).
  Dfa Complemented() const;

  // Hopcroft minimization (also removes unreachable states).
  Dfa Minimized() const;

 private:
  Dfa(int alphabet_size, int start, std::vector<std::vector<int>> next,
      std::vector<bool> accepting)
      : alphabet_size_(alphabet_size),
        start_(start),
        next_(std::move(next)),
        accepting_(std::move(accepting)) {}

  // States reachable from start.
  std::vector<bool> ReachableStates() const;
  // States from which an accepting state is reachable.
  std::vector<bool> CoreachableStates() const;

  int alphabet_size_;
  int start_;
  std::vector<std::vector<int>> next_;
  std::vector<bool> accepting_;
};

}  // namespace strq

#endif  // STRQ_AUTOMATA_DFA_H_
