#ifndef STRQ_AUTOMATA_DFA_H_
#define STRQ_AUTOMATA_DFA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// A complete deterministic finite automaton over symbols {0..alphabet_size-1}.
// Transition tables are total: every state has a successor on every symbol
// (constructions add an explicit sink where needed). States are dense ints.
//
// The transition table is a single flat allocation in row-major order
// (next_[q * alphabet_size + s]), and every Dfa carries a structural hash
// computed once at construction. Together with the canonical state numbering
// produced by Minimized() this makes hash-consing possible: two minimized
// DFAs denote the same language iff they are structurally equal, which the
// AutomatonStore checks with one hash probe plus a memcmp-style compare.
class Dfa {
 public:
  // Creates a DFA; `next[q][s]` is the successor of state q on symbol s.
  // All rows must have exactly `alphabet_size` entries with valid targets.
  static Result<Dfa> Create(int alphabet_size, int start,
                            std::vector<std::vector<int>> next,
                            std::vector<bool> accepting);

  // Same, from an already-flat row-major table with `num_states` rows.
  // Avoids the per-row allocations of the nested form on hot paths.
  static Result<Dfa> CreateFlat(int alphabet_size, int num_states, int start,
                                std::vector<int> next,
                                std::vector<bool> accepting);

  // The one-state DFA rejecting everything.
  static Dfa EmptyLanguage(int alphabet_size);
  // The one-state DFA accepting Σ*.
  static Dfa AllStrings(int alphabet_size);
  // Accepts exactly the given string.
  static Dfa SingleString(int alphabet_size, const std::vector<Symbol>& w);

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return num_states_; }
  // Total transition-table entries, num_states() * alphabet_size(): the
  // tables are complete, so this is the memory-relevant size figure that
  // the observability layer records alongside state counts.
  int64_t NumTransitions() const {
    return static_cast<int64_t>(next_.size());
  }
  int start() const { return start_; }
  int Next(int state, Symbol s) const {
    return next_[static_cast<size_t>(state) * alphabet_size_ + s];
  }
  bool IsAccepting(int state) const { return accepting_[state]; }

  // Structural identity. The hash covers alphabet size, start state, the
  // full transition table and the accepting set; it is computed eagerly at
  // construction so reads are free. Equal structure implies equal language;
  // for canonically-minimized DFAs (the output of Minimized()) the converse
  // holds too, which is what the unique table relies on.
  uint64_t StructuralHash() const { return hash_; }
  bool StructurallyEqual(const Dfa& other) const;

  // Runs the DFA on a symbol string from the start state.
  bool Accepts(const std::vector<Symbol>& w) const;

  // Convenience: encode `w` over `alphabet` and run. Foreign chars -> false.
  bool AcceptsString(const Alphabet& alphabet, const std::string& w) const;

  // Language predicates.
  bool IsEmpty() const;
  bool IsUniversal() const;
  // True iff the accepted language is finite.
  bool IsFinite() const;

  // Number of accepted strings of length exactly n, saturating at
  // kCountSaturated.
  static constexpr uint64_t kCountSaturated = ~0ULL;
  uint64_t CountLength(int n) const;

  // Number of accepted strings of length at most n (saturating).
  uint64_t CountUpToLength(int n) const;

  // Accepted strings in shortlex order, up to `max_count` strings and length
  // at most `max_len`. Exact for finite languages when the limits are large
  // enough.
  std::vector<std::vector<Symbol>> Enumerate(int max_len,
                                             size_t max_count) const;

  // A shortest accepted string, if the language is non-empty.
  std::optional<std::vector<Symbol>> ShortestAccepted() const;

  // Length of the longest accepted string: -1 if the language is empty,
  // nullopt if it is infinite. Used to enumerate finite languages exactly.
  std::optional<int> MaxAcceptedLength() const;

  // Language transformations (all return complete DFAs).
  Dfa Complemented() const;

  // Hopcroft minimization, O(n·|Σ|·log n). Removes unreachable states and
  // renumbers the result canonically (BFS from the start state in symbol
  // order), so equivalent DFAs minimize to structurally identical automata.
  Dfa Minimized() const;

  // Reference Moore partition refinement (O(n²·|Σ|)), kept for differential
  // testing of Minimized(). Produces the same canonical numbering.
  Dfa MinimizedMoore() const;

 private:
  Dfa(int alphabet_size, int num_states, int start, std::vector<int> next,
      std::vector<bool> accepting);

  // Restrict to states reachable from start; fills the flat table/accepting
  // vector of the restriction and returns its start state.
  int ReachableRestriction(std::vector<int>* next, std::vector<bool>* acc,
                           int* num_states) const;
  // Quotient by a partition (part[q] = block id of q, blocks dense 0..k-1),
  // then renumber canonically by BFS from the start block in symbol order.
  static Dfa CanonicalQuotient(int alphabet_size, int num_states, int start,
                               const std::vector<int>& next,
                               const std::vector<bool>& accepting,
                               const std::vector<int>& part, int num_parts);

  // States reachable from start.
  std::vector<bool> ReachableStates() const;
  // States from which an accepting state is reachable.
  std::vector<bool> CoreachableStates() const;

  int alphabet_size_;
  int num_states_;
  int start_;
  // Row-major: next_[q * alphabet_size_ + s].
  std::vector<int> next_;
  std::vector<bool> accepting_;
  uint64_t hash_;
};

}  // namespace strq

#endif  // STRQ_AUTOMATA_DFA_H_
