#ifndef STRQ_AUTOMATA_DFA_H_
#define STRQ_AUTOMATA_DFA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// Which kernel variant the hot automaton algorithms use. The condensed
// kernels iterate the symbol-equivalence classes described below; the dense
// kernels iterate raw letters exactly like the pre-class code and are kept
// as the differential-testing and ablation baseline (mirroring the
// reachable/eager ProductKernel switch in automata/ops.h). Storage is
// canonically condensed under either kernel, so both produce structurally
// identical automata and identical store ids.
enum class ClassKernel { kCondensed, kDense };
ClassKernel GetClassKernel();
void SetClassKernel(ClassKernel kernel);

// RAII kernel switch for tests and benches.
class ScopedClassKernel {
 public:
  explicit ScopedClassKernel(ClassKernel kernel) : saved_(GetClassKernel()) {
    SetClassKernel(kernel);
  }
  ~ScopedClassKernel() { SetClassKernel(saved_); }
  ScopedClassKernel(const ScopedClassKernel&) = delete;
  ScopedClassKernel& operator=(const ScopedClassKernel&) = delete;

 private:
  ClassKernel saved_;
};

// A complete deterministic finite automaton over symbols {0..alphabet_size-1}.
// Transition tables are total: every state has a successor on every symbol
// (constructions add an explicit sink where needed). States are dense ints.
//
// The transition table is stored *condensed* over the automaton's symbol
// equivalence classes (character classes / minterms): the coarsest partition
// of the alphabet such that every state treats same-class letters
// identically, i.e. letters s, s' are equivalent iff Next(q,s) == Next(q,s')
// for all q. Over the padded convolution alphabets of the mta layer this
// partition is typically tiny — the equal-length atom distinguishes 4 classes
// out of (|Σ|+1)² letters — so the condensed table (num_states × num_classes)
// plus the letter→class map is exponentially smaller in the arity than the
// dense letter-indexed table it replaces.
//
// Classes are numbered canonically by first letter occurrence (class 0
// contains letter 0; the next class starts at the smallest letter not in
// class 0; ...). Every constructor coarsens and canonically renumbers, so the
// condensed form is a function of the dense transition structure alone. The
// structural hash is computed once over the condensed form; together with
// the canonical state numbering produced by Minimized() this makes
// hash-consing possible: two minimized DFAs denote the same language iff
// they are structurally equal, which the AutomatonStore checks with one
// hash probe plus a memcmp-style compare.
class Dfa {
 public:
  // Creates a DFA; `next[q][s]` is the successor of state q on symbol s.
  // All rows must have exactly `alphabet_size` entries with valid targets.
  static Result<Dfa> Create(int alphabet_size, int start,
                            std::vector<std::vector<int>> next,
                            std::vector<bool> accepting);

  // Same, from an already-flat row-major table with `num_states` rows.
  // Avoids the per-row allocations of the nested form on hot paths.
  static Result<Dfa> CreateFlat(int alphabet_size, int num_states, int start,
                                std::vector<int> next,
                                std::vector<bool> accepting);

  // Constructs from an already-condensed table, skipping the dense
  // materialization entirely: `letter_class[s]` maps each letter to a hint
  // class in 0..num_hint_classes-1 and `condensed_next` has one row of
  // `num_hint_classes` targets per state. The hint partition must be *valid*
  // (same-hint-class letters genuinely share a dense column — this is the
  // caller's contract and is what the class-aware kernels guarantee by
  // construction) but need not be coarsest and need not be canonically
  // numbered: the constructor coarsens hint classes with identical columns
  // and renumbers canonically, and hint classes no letter maps to are
  // dropped. Cost O(num_states · num_hint_classes + alphabet_size), so a
  // good hint avoids ever touching the dense |Σ| axis.
  static Result<Dfa> CreateCondensed(int alphabet_size, int num_states,
                                     int start, std::vector<int> letter_class,
                                     int num_hint_classes,
                                     std::vector<int> condensed_next,
                                     std::vector<bool> accepting);

  // The one-state DFA rejecting everything.
  static Dfa EmptyLanguage(int alphabet_size);
  // The one-state DFA accepting Σ*.
  static Dfa AllStrings(int alphabet_size);
  // Accepts exactly the given string.
  static Dfa SingleString(int alphabet_size, const std::vector<Symbol>& w);

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return num_states_; }
  // Total *dense-equivalent* transition-table entries,
  // num_states() * alphabet_size(): the tables are logically complete, so
  // this remains the size figure the observability layer records alongside
  // state counts, independent of how far the condensed storage compresses.
  int64_t NumTransitions() const {
    return static_cast<int64_t>(num_states_) * alphabet_size_;
  }
  int start() const { return start_; }
  int Next(int state, Symbol s) const {
    return cnext_[static_cast<size_t>(state) * num_classes_ +
                  letter_class_[s]];
  }
  bool IsAccepting(int state) const { return accepting_[state]; }

  // --- Character-class accessors ----------------------------------------

  // Number of symbol-equivalence classes (coarsest partition; >= 1).
  int num_classes() const { return num_classes_; }
  // Class id of a letter, in 0..num_classes()-1.
  int LetterClass(Symbol s) const { return letter_class_[s]; }
  // Smallest letter of a class (classes are numbered by first occurrence,
  // so ClassRep is strictly increasing in the class id).
  Symbol ClassRep(int cls) const { return class_rep_[cls]; }
  // Successor of `state` on every letter of class `cls`.
  int NextByClass(int state, int cls) const {
    return cnext_[static_cast<size_t>(state) * num_classes_ + cls];
  }
  // The letter→class map, alphabet_size() entries.
  const std::vector<int>& letter_classes() const { return letter_class_; }

  // Bytes actually held by the condensed transition structure (condensed
  // table + letter map + class representatives).
  int64_t TableBytesCondensed() const {
    return static_cast<int64_t>(cnext_.size() * sizeof(int) +
                                letter_class_.size() * sizeof(int) +
                                class_rep_.size() * sizeof(Symbol));
  }
  // Bytes a dense letter-indexed table for this automaton would occupy.
  int64_t TableBytesDenseEquiv() const {
    return NumTransitions() * static_cast<int64_t>(sizeof(int));
  }

  // Structural identity. The hash covers alphabet size, start state, the
  // letter→class map, the condensed transition table and the accepting set;
  // it is computed eagerly at construction so reads are free. Because the
  // condensed form is canonical (coarsest partition, first-occurrence class
  // numbering), equal dense structure implies equal condensed structure and
  // vice versa. Equal structure implies equal language; for canonically-
  // minimized DFAs (the output of Minimized()) the converse holds too, which
  // is what the unique table relies on.
  uint64_t StructuralHash() const { return hash_; }
  bool StructurallyEqual(const Dfa& other) const;

  // Runs the DFA on a symbol string from the start state.
  bool Accepts(const std::vector<Symbol>& w) const;

  // Convenience: encode `w` over `alphabet` and run. Foreign chars -> false.
  bool AcceptsString(const Alphabet& alphabet, const std::string& w) const;

  // Language predicates.
  bool IsEmpty() const;
  bool IsUniversal() const;
  // True iff the accepted language is finite.
  bool IsFinite() const;

  // Number of accepted strings of length exactly n, saturating at
  // kCountSaturated.
  static constexpr uint64_t kCountSaturated = ~0ULL;
  uint64_t CountLength(int n) const;

  // Number of accepted strings of length at most n (saturating).
  uint64_t CountUpToLength(int n) const;

  // Accepted strings in shortlex order, up to `max_count` strings and length
  // at most `max_len`. Exact for finite languages when the limits are large
  // enough.
  std::vector<std::vector<Symbol>> Enumerate(int max_len,
                                             size_t max_count) const;

  // A shortest accepted string, if the language is non-empty.
  std::optional<std::vector<Symbol>> ShortestAccepted() const;

  // Length of the longest accepted string: -1 if the language is empty,
  // nullopt if it is infinite. Used to enumerate finite languages exactly.
  std::optional<int> MaxAcceptedLength() const;

  // Language transformations (all return complete DFAs).
  Dfa Complemented() const;

  // Hopcroft minimization, O(n·C·log n) over the C symbol classes (O(n·|Σ|·
  // log n) under the dense kernel). Removes unreachable states and renumbers
  // the result canonically (BFS from the start state in class — equivalently
  // symbol — order), so equivalent DFAs minimize to structurally identical
  // automata under either kernel.
  Dfa Minimized() const;

  // Reference Moore partition refinement (O(n²·|Σ|)), kept for differential
  // testing of Minimized(). Produces the same canonical numbering. Always
  // letter-dense.
  Dfa MinimizedMoore() const;

 private:
  // Condensing constructor; every public construction funnels here. The
  // hint contract is as documented on CreateCondensed. The dense paths pass
  // the identity hint (num_hint_classes == alphabet_size).
  Dfa(int alphabet_size, int num_states, int start,
      std::vector<int> letter_class, int num_hint_classes,
      std::vector<int> condensed_next, std::vector<bool> accepting);

  // Dense convenience: identity hint over a flat letter-indexed table.
  Dfa(int alphabet_size, int num_states, int start, std::vector<int> next,
      std::vector<bool> accepting);

  // Restrict to states reachable from start; fills the condensed table
  // (num_classes_ columns) and accepting vector of the restriction and
  // returns its start state.
  int ReachableRestriction(std::vector<int>* cnext, std::vector<bool>* acc,
                           int* num_states) const;
  // Quotient by a state partition (part[q] = block id of q, blocks dense
  // 0..num_parts-1) of an automaton given in condensed form (`cnext` has
  // `num_hint_classes` columns; `letter_class` maps letters to those
  // columns), then renumber canonically by BFS from the start block in hint-
  // class order. Because hint classes are grouped letter intervals in first-
  // occurrence order, this is the same numbering the dense letter-order BFS
  // produces.
  static Dfa CanonicalQuotient(int alphabet_size,
                               const std::vector<int>& letter_class,
                               int num_hint_classes, int num_states, int start,
                               const std::vector<int>& cnext,
                               const std::vector<bool>& accepting,
                               const std::vector<int>& part, int num_parts);

  // States reachable from start.
  std::vector<bool> ReachableStates() const;
  // States from which an accepting state is reachable.
  std::vector<bool> CoreachableStates() const;

  int alphabet_size_;
  int num_states_;
  int start_;
  int num_classes_;
  // Letter -> class id; alphabet_size_ entries.
  std::vector<int> letter_class_;
  // Class id -> smallest member letter; num_classes_ entries.
  std::vector<Symbol> class_rep_;
  // Condensed transition table, row-major: cnext_[q * num_classes_ + c].
  std::vector<int> cnext_;
  std::vector<bool> accepting_;
  uint64_t hash_;
};

}  // namespace strq

#endif  // STRQ_AUTOMATA_DFA_H_
