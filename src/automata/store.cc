#include "automata/store.h"

#include <atomic>

#include "automata/ops.h"
#include "base/budget.h"
#include "obs/trace.h"

namespace strq {

namespace {

// Intern ids are drawn from one process-global counter so that ids issued
// by different stores (or by the same store across Clear()) never collide.
uint64_t NextInternId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Approximate heap footprint of one retained table entry (hash node, key,
// handle). Exact malloc overhead is allocator-specific; fixed charges keep
// the gauge proportional and its conservation exact (every insert's charge
// is returned on Clear/destruction).
constexpr int64_t kUniqueEntryBytes = 64;
constexpr int64_t kComputedEntryBytes = 96;
constexpr int64_t kDecidedEntryBytes = 64;

int64_t InternedDfaBytes(const Dfa& dfa) {
  return static_cast<int64_t>(sizeof(Dfa)) + dfa.TableBytesCondensed();
}

}  // namespace

const AutomatonStore& AutomatonStore::Default() {
  static AutomatonStore* store = new AutomatonStore(true);
  return *store;
}

void AutomatonStore::AddBytes(int64_t delta) const {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes += delta;
  }
  obs::MemAdd(obs::MemCategory::kStore, delta);
}

void AutomatonStore::CountUnique(bool hit) const {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (hit) {
      ++stats_.unique_hits;
    } else {
      ++stats_.unique_misses;
    }
  }
  obs::Count(hit ? obs::kStoreUniqueHits : obs::kStoreUniqueMisses);
}

void AutomatonStore::CountOp(bool hit) const {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (hit) {
      ++stats_.op_hits;
    } else {
      ++stats_.op_misses;
    }
  }
  obs::Count(hit ? obs::kStoreOpHits : obs::kStoreOpMisses);
}

DfaRef AutomatonStore::InternCanonical(Dfa canonical) const {
  if (!caching_enabled_) {
    CountUnique(false);
    return DfaRef(std::make_shared<const Dfa>(std::move(canonical)),
                  NextInternId());
  }
  uint64_t hash = canonical.StructuralHash();
  UniqueStripe& stripe = UniqueStripeFor(hash);
  uint64_t id = 0;
  std::shared_ptr<const Dfa> dfa;
  int64_t added = 0;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto [lo, hi] = stripe.entries.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.second->StructurallyEqual(canonical)) {
        CountUnique(true);
        return DfaRef(it->second.second, it->second.first);
      }
    }
    id = NextInternId();
    dfa = std::make_shared<const Dfa>(std::move(canonical));
    stripe.entries.emplace(hash, std::make_pair(id, dfa));
    added = InternedDfaBytes(*dfa) + kUniqueEntryBytes;
  }
  CountUnique(false);
  AddBytes(added);
  return DfaRef(std::move(dfa), id);
}

DfaRef AutomatonStore::Intern(const Dfa& dfa) const {
  return InternCanonical(dfa.Minimized());
}

std::optional<DfaRef> AutomatonStore::Lookup(const OpKey& key) const {
  if (caching_enabled_) {
    OpStripe& stripe = OpStripeFor(key);
    std::unique_lock<std::mutex> lock(stripe.mu);
    auto it = stripe.computed.find(key);
    if (it != stripe.computed.end()) {
      DfaRef hit = it->second;
      lock.unlock();
      CountOp(true);
      return hit;
    }
  }
  CountOp(false);
  return std::nullopt;
}

void AutomatonStore::Memoize(const OpKey& key, const DfaRef& value) const {
  if (!caching_enabled_ || !value) return;
  OpStripe& stripe = OpStripeFor(key);
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    inserted = stripe.computed.emplace(key, value).second;
  }
  if (inserted) {
    AddBytes(kComputedEntryBytes +
             static_cast<int64_t>(key.params.size() * sizeof(int64_t)));
  }
}

Result<DfaRef> AutomatonStore::BinaryOp(int op, const DfaRef& a,
                                        const DfaRef& b,
                                        int max_states) const {
  if (!a || !b) return InvalidArgumentError("null DfaRef operand");
  // Resolve the effective product budget up front so the memoization policy
  // and the kernel agree on one number. 0 means "whatever the request says".
  int effective = max_states > 0
                      ? max_states
                      : CurrentMaxProductStates(kDefaultMaxProductStates);
  bool budgeted = effective < kDefaultMaxProductStates;
  // Commutative ops: normalize the operand order so (a,b) and (b,a) share
  // one computed-table entry.
  uint64_t ia = a.id();
  uint64_t ib = b.id();
  const Dfa* da = &*a;
  const Dfa* db = &*b;
  if ((op == kOpIntersect || op == kOpUnion) && ia > ib) {
    std::swap(ia, ib);
    std::swap(da, db);
  }
  // A memoized full result is exact no matter what the current budget is, so
  // the canonical (budget-free) key is always consulted first. The peek is
  // manual rather than Lookup() so an exhausted-memo hit below is not also
  // charged as an op miss — it IS answered from memo.
  OpKey key{op, ia, ib, {}};
  if (caching_enabled_) {
    OpStripe& stripe = OpStripeFor(key);
    std::unique_lock<std::mutex> lock(stripe.mu);
    auto it = stripe.computed.find(key);
    if (it != stripe.computed.end()) {
      DfaRef hit = it->second;
      lock.unlock();
      CountOp(true);
      return hit;
    }
  }
  if (budgeted && caching_enabled_) {
    OpKey exhausted_key{op, ia, ib, {effective}};
    OpStripe& stripe = OpStripeFor(exhausted_key);
    bool fail_fast = false;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      fail_fast = stripe.exhausted.count(exhausted_key) > 0;
    }
    if (fail_fast) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.exhausted_hits;
      }
      obs::Count(obs::kStoreExhaustedHits);
      return ResourceExhaustedError(
          "product state budget exhausted (memoized)");
    }
  }
  CountOp(false);

  Result<Dfa> raw = op == kOpIntersect
                        ? strq::Intersect(*da, *db, effective)
                    : op == kOpUnion ? strq::Union(*da, *db, effective)
                                     : strq::Difference(*da, *db, effective);
  if (!raw.ok()) {
    // Running out of the requested budget is a property of (op, operands,
    // budget) and is safe to replay — but only to callers with the SAME
    // effective budget; an unbudgeted caller must get the real product. A
    // deadline abort says nothing about the operands and is never memoized.
    if (budgeted && caching_enabled_ &&
        raw.status().code() == StatusCode::kResourceExhausted) {
      OpKey exhausted_key{op, ia, ib, {effective}};
      OpStripe& stripe = OpStripeFor(exhausted_key);
      bool inserted = false;
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        inserted = stripe.exhausted.insert(exhausted_key).second;
      }
      if (inserted) AddBytes(kDecidedEntryBytes);
    }
    return raw.status();
  }
  DfaRef out = Intern(*raw);
  Memoize(key, out);
  return out;
}

Result<DfaRef> AutomatonStore::Intersect(const DfaRef& a, const DfaRef& b,
                                         int max_states) const {
  return BinaryOp(kOpIntersect, a, b, max_states);
}

Result<DfaRef> AutomatonStore::Union(const DfaRef& a, const DfaRef& b,
                                     int max_states) const {
  return BinaryOp(kOpUnion, a, b, max_states);
}

Result<DfaRef> AutomatonStore::Difference(const DfaRef& a, const DfaRef& b,
                                          int max_states) const {
  return BinaryOp(kOpDifference, a, b, max_states);
}

Result<bool> AutomatonStore::IsIntersectionEmpty(const DfaRef& a,
                                                 const DfaRef& b) const {
  if (!a || !b) return InvalidArgumentError("null DfaRef operand");
  uint64_t ia = a.id();
  uint64_t ib = b.id();
  const Dfa* da = &*a;
  const Dfa* db = &*b;
  if (ia > ib) {
    std::swap(ia, ib);
    std::swap(da, db);
  }
  OpKey key{kOpIntersectEmpty, ia, ib, {}};
  if (caching_enabled_) {
    // A materialized intersection already knows the answer. Note the product
    // key and the verdict key generally live in different stripes; two short
    // lock sections, never held together.
    OpKey product_key{kOpIntersect, ia, ib, {}};
    {
      OpStripe& stripe = OpStripeFor(product_key);
      std::unique_lock<std::mutex> lock(stripe.mu);
      auto mat = stripe.computed.find(product_key);
      if (mat != stripe.computed.end()) {
        bool empty = mat->second->IsEmpty();
        lock.unlock();
        CountOp(true);
        return empty;
      }
    }
    {
      OpStripe& stripe = OpStripeFor(key);
      std::unique_lock<std::mutex> lock(stripe.mu);
      auto it = stripe.decided.find(key);
      if (it != stripe.decided.end()) {
        bool empty = it->second;
        lock.unlock();
        CountOp(true);
        return empty;
      }
    }
    CountOp(false);
  }
  STRQ_ASSIGN_OR_RETURN(bool empty, strq::IntersectionEmpty(*da, *db));
  if (caching_enabled_) {
    OpStripe& stripe = OpStripeFor(key);
    bool inserted = false;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      inserted = stripe.decided.emplace(key, empty).second;
    }
    if (inserted) AddBytes(kDecidedEntryBytes);
  }
  return empty;
}

DfaRef AutomatonStore::Complemented(const DfaRef& a) const {
  if (!a) return DfaRef();
  OpKey key{kOpComplement, a.id(), 0, {}};
  if (std::optional<DfaRef> hit = Lookup(key)) return *hit;
  DfaRef out = Intern(a->Complemented());
  Memoize(key, out);
  // The complement of a minimal DFA is minimal, so complementation is an
  // involution on interned handles; prime the reverse entry too.
  Memoize(OpKey{kOpComplement, out.id(), 0, {}}, a);
  return out;
}

AutomatonStore::Stats AutomatonStore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t AutomatonStore::unique_size() const {
  size_t n = 0;
  for (UniqueStripe& stripe : unique_stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    n += stripe.entries.size();
  }
  return n;
}

size_t AutomatonStore::computed_size() const {
  size_t n = 0;
  for (OpStripe& stripe : op_stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    n += stripe.computed.size();
  }
  return n;
}

void AutomatonStore::Clear() const {
  for (UniqueStripe& stripe : unique_stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.entries.clear();
  }
  for (OpStripe& stripe : op_stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.computed.clear();
    stripe.decided.clear();
    stripe.exhausted.clear();
  }
  int64_t released = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    released = stats_.bytes;
    stats_.bytes = 0;
  }
  obs::MemAdd(obs::MemCategory::kStore, -released);
}

AutomatonStore::~AutomatonStore() {
  // Return this store's retained bytes to the process-wide gauge (local
  // stores come and go; the gauge must conserve).
  obs::MemAdd(obs::MemCategory::kStore, -stats_.bytes);
}

}  // namespace strq
