#include "automata/store.h"

#include <atomic>

#include "automata/ops.h"
#include "obs/trace.h"

namespace strq {

namespace {

// Intern ids are drawn from one process-global counter so that ids issued
// by different stores (or by the same store across Clear()) never collide.
uint64_t NextInternId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Approximate heap footprint of one retained table entry (hash node, key,
// handle). Exact malloc overhead is allocator-specific; fixed charges keep
// the gauge proportional and its conservation exact (every insert's charge
// is returned on Clear/destruction).
constexpr int64_t kUniqueEntryBytes = 64;
constexpr int64_t kComputedEntryBytes = 96;
constexpr int64_t kDecidedEntryBytes = 64;

int64_t InternedDfaBytes(const Dfa& dfa) {
  return static_cast<int64_t>(sizeof(Dfa)) + dfa.TableBytesCondensed();
}

}  // namespace

const AutomatonStore& AutomatonStore::Default() {
  static AutomatonStore* store = new AutomatonStore(true);
  return *store;
}

DfaRef AutomatonStore::InternCanonical(Dfa canonical) const {
  if (!caching_enabled_) {
    obs::Count(obs::kStoreUniqueMisses);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.unique_misses;
    return DfaRef(std::make_shared<const Dfa>(std::move(canonical)),
                  NextInternId());
  }
  uint64_t hash = canonical.StructuralHash();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [lo, hi] = unique_.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.second->StructurallyEqual(canonical)) {
        ++stats_.unique_hits;
        obs::Count(obs::kStoreUniqueHits);
        return DfaRef(it->second.second, it->second.first);
      }
    }
    uint64_t id = NextInternId();
    auto dfa = std::make_shared<const Dfa>(std::move(canonical));
    unique_.emplace(hash, std::make_pair(id, dfa));
    ++stats_.unique_misses;
    obs::Count(obs::kStoreUniqueMisses);
    int64_t bytes = InternedDfaBytes(*dfa) + kUniqueEntryBytes;
    stats_.bytes += bytes;
    obs::MemAdd(obs::MemCategory::kStore, bytes);
    return DfaRef(std::move(dfa), id);
  }
}

DfaRef AutomatonStore::Intern(const Dfa& dfa) const {
  return InternCanonical(dfa.Minimized());
}

std::optional<DfaRef> AutomatonStore::Lookup(const OpKey& key) const {
  if (caching_enabled_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = computed_.find(key);
    if (it != computed_.end()) {
      ++stats_.op_hits;
      obs::Count(obs::kStoreOpHits);
      return it->second;
    }
    ++stats_.op_misses;
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.op_misses;
  }
  obs::Count(obs::kStoreOpMisses);
  return std::nullopt;
}

void AutomatonStore::Memoize(const OpKey& key, const DfaRef& value) const {
  if (!caching_enabled_ || !value) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = computed_.emplace(key, value);
  if (inserted) {
    int64_t bytes = kComputedEntryBytes +
                    static_cast<int64_t>(key.params.size() * sizeof(int64_t));
    stats_.bytes += bytes;
    obs::MemAdd(obs::MemCategory::kStore, bytes);
  }
}

Result<DfaRef> AutomatonStore::BinaryOp(int op, const DfaRef& a,
                                        const DfaRef& b) const {
  if (!a || !b) return InvalidArgumentError("null DfaRef operand");
  // Commutative ops: normalize the operand order so (a,b) and (b,a) share
  // one computed-table entry.
  uint64_t ia = a.id();
  uint64_t ib = b.id();
  const Dfa* da = &*a;
  const Dfa* db = &*b;
  if ((op == kOpIntersect || op == kOpUnion) && ia > ib) {
    std::swap(ia, ib);
    std::swap(da, db);
  }
  OpKey key{op, ia, ib, {}};
  if (std::optional<DfaRef> hit = Lookup(key)) return *hit;

  Result<Dfa> raw = op == kOpIntersect  ? strq::Intersect(*da, *db)
                    : op == kOpUnion    ? strq::Union(*da, *db)
                                        : strq::Difference(*da, *db);
  STRQ_RETURN_IF_ERROR(raw.status());
  DfaRef out = Intern(*raw);
  Memoize(key, out);
  return out;
}

Result<DfaRef> AutomatonStore::Intersect(const DfaRef& a,
                                         const DfaRef& b) const {
  return BinaryOp(kOpIntersect, a, b);
}

Result<DfaRef> AutomatonStore::Union(const DfaRef& a, const DfaRef& b) const {
  return BinaryOp(kOpUnion, a, b);
}

Result<DfaRef> AutomatonStore::Difference(const DfaRef& a,
                                          const DfaRef& b) const {
  return BinaryOp(kOpDifference, a, b);
}

Result<bool> AutomatonStore::IsIntersectionEmpty(const DfaRef& a,
                                                 const DfaRef& b) const {
  if (!a || !b) return InvalidArgumentError("null DfaRef operand");
  uint64_t ia = a.id();
  uint64_t ib = b.id();
  const Dfa* da = &*a;
  const Dfa* db = &*b;
  if (ia > ib) {
    std::swap(ia, ib);
    std::swap(da, db);
  }
  OpKey key{kOpIntersectEmpty, ia, ib, {}};
  if (caching_enabled_) {
    std::lock_guard<std::mutex> lock(mu_);
    // A materialized intersection already knows the answer.
    auto mat = computed_.find(OpKey{kOpIntersect, ia, ib, {}});
    if (mat != computed_.end()) {
      ++stats_.op_hits;
      obs::Count(obs::kStoreOpHits);
      return mat->second->IsEmpty();
    }
    auto it = decided_.find(key);
    if (it != decided_.end()) {
      ++stats_.op_hits;
      obs::Count(obs::kStoreOpHits);
      return it->second;
    }
    ++stats_.op_misses;
    obs::Count(obs::kStoreOpMisses);
  }
  STRQ_ASSIGN_OR_RETURN(bool empty, strq::IntersectionEmpty(*da, *db));
  if (caching_enabled_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = decided_.emplace(key, empty);
    if (inserted) {
      stats_.bytes += kDecidedEntryBytes;
      obs::MemAdd(obs::MemCategory::kStore, kDecidedEntryBytes);
    }
  }
  return empty;
}

DfaRef AutomatonStore::Complemented(const DfaRef& a) const {
  if (!a) return DfaRef();
  OpKey key{kOpComplement, a.id(), 0, {}};
  if (std::optional<DfaRef> hit = Lookup(key)) return *hit;
  DfaRef out = Intern(a->Complemented());
  Memoize(key, out);
  // The complement of a minimal DFA is minimal, so complementation is an
  // involution on interned handles; prime the reverse entry too.
  Memoize(OpKey{kOpComplement, out.id(), 0, {}}, a);
  return out;
}

AutomatonStore::Stats AutomatonStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AutomatonStore::unique_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unique_.size();
}

size_t AutomatonStore::computed_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return computed_.size();
}

void AutomatonStore::Clear() const {
  std::lock_guard<std::mutex> lock(mu_);
  unique_.clear();
  computed_.clear();
  decided_.clear();
  obs::MemAdd(obs::MemCategory::kStore, -stats_.bytes);
  stats_.bytes = 0;
}

AutomatonStore::~AutomatonStore() {
  // Return this store's retained bytes to the process-wide gauge (local
  // stores come and go; the gauge must conserve).
  obs::MemAdd(obs::MemCategory::kStore, -stats_.bytes);
}

}  // namespace strq
