#ifndef STRQ_AUTOMATA_REGEX_FROM_DFA_H_
#define STRQ_AUTOMATA_REGEX_FROM_DFA_H_

#include <string>

#include "automata/dfa.h"
#include "automata/regex.h"
#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// Converts a DFA back into a regular expression by GNFA state elimination,
// with algebraic simplification (∅/ε absorption, common-prefix factoring of
// unions is not attempted) to keep outputs readable. The result is
// language-equivalent to the input — regex_from_dfa_test.cc round-trips it
// through the compiler and checks DFA equivalence.
//
// This closes the loop opened by the answer-automaton engine: a safe query's
// finite answers are enumerated, and an *unsafe* query's infinite answer set
// can still be described exactly, as a regular expression over Σ.
Result<RegexPtr> RegexFromDfa(const Dfa& dfa, const Alphabet& alphabet);

// Convenience: the language of `dfa` rendered in the classic syntax.
Result<std::string> DescribeLanguage(const Dfa& dfa, const Alphabet& alphabet);

}  // namespace strq

#endif  // STRQ_AUTOMATA_REGEX_FROM_DFA_H_
