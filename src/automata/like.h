#ifndef STRQ_AUTOMATA_LIKE_H_
#define STRQ_AUTOMATA_LIKE_H_

#include <string>

#include "automata/dfa.h"
#include "automata/regex.h"
#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// SQL LIKE patterns (Section 4): '%' matches zero or more characters, '_'
// matches exactly one, every other character matches itself. An optional
// escape character (SQL's ESCAPE clause) makes the following character
// literal; pass '\0' for no escape.
//
// LIKE patterns denote exactly star-free languages, which is why LIKE is
// expressible over S (Section 4); like_test.cc machine-checks star-freeness
// of every compiled pattern with IsStarFree().

// Translates a LIKE pattern into a regex AST ('%' -> .*, '_' -> .).
Result<RegexPtr> LikeToRegex(const std::string& pattern, char escape = '\0');

// Compiles a LIKE pattern into a minimal DFA over `alphabet`.
Result<Dfa> CompileLike(const std::string& pattern, const Alphabet& alphabet,
                        char escape = '\0');

// Compile-once, match-many LIKE execution: the DFA walk reads raw
// characters through a precomputed char→symbol table, with no per-call
// allocation or encoding — the hot path the algebra's σ_LIKE scans want.
// bench_sec4_like compares this against the reference backtracker.
class LikeMatcher {
 public:
  static Result<LikeMatcher> Create(const std::string& pattern,
                                    const Alphabet& alphabet,
                                    char escape = '\0');

  // False for texts containing characters outside the alphabet.
  bool Matches(const std::string& text) const;

  const Dfa& dfa() const { return dfa_; }

 private:
  LikeMatcher(Dfa dfa, std::vector<int16_t> symbol_of)
      : dfa_(std::move(dfa)), symbol_of_(std::move(symbol_of)) {}

  Dfa dfa_;
  std::vector<int16_t> symbol_of_;  // 256 entries; -1 = foreign character
};

}  // namespace strq

#endif  // STRQ_AUTOMATA_LIKE_H_
