#include "automata/regex.h"

#include <cassert>
#include <utility>

#include "automata/ops.h"

namespace strq {

namespace {

RegexPtr MakeNode(RegexNode node) {
  return std::make_shared<const RegexNode>(std::move(node));
}

}  // namespace

RegexPtr RxEmptySet() { return MakeNode({.kind = RegexKind::kEmptySet}); }
RegexPtr RxEpsilon() { return MakeNode({.kind = RegexKind::kEpsilon}); }
RegexPtr RxLiteral(char c) {
  return MakeNode({.kind = RegexKind::kLiteral, .literal = c});
}
RegexPtr RxAnyChar() { return MakeNode({.kind = RegexKind::kAnyChar}); }
RegexPtr RxCharClass(std::string chars, bool negated) {
  return MakeNode({.kind = RegexKind::kCharClass,
                   .char_class = std::move(chars),
                   .negated = negated});
}
RegexPtr RxConcat(RegexPtr a, RegexPtr b) {
  return MakeNode({.kind = RegexKind::kConcat,
                   .left = std::move(a),
                   .right = std::move(b)});
}
RegexPtr RxUnion(RegexPtr a, RegexPtr b) {
  return MakeNode(
      {.kind = RegexKind::kUnion, .left = std::move(a), .right = std::move(b)});
}
RegexPtr RxStar(RegexPtr a) {
  return MakeNode({.kind = RegexKind::kStar, .left = std::move(a)});
}
RegexPtr RxPlus(RegexPtr a) {
  return MakeNode({.kind = RegexKind::kPlus, .left = std::move(a)});
}
RegexPtr RxOptional(RegexPtr a) {
  return MakeNode({.kind = RegexKind::kOptional, .left = std::move(a)});
}

RegexPtr RxString(const std::string& s) {
  RegexPtr out = RxEpsilon();
  if (s.empty()) return out;
  out = RxLiteral(s[0]);
  for (size_t i = 1; i < s.size(); ++i) out = RxConcat(out, RxLiteral(s[i]));
  return out;
}

namespace {

bool IsMeta(char c) {
  switch (c) {
    case '|':
    case '*':
    case '+':
    case '?':
    case '(':
    case ')':
    case '[':
    case ']':
    case '.':
    case '\\':
    case '%':
    case '_':
      return true;
    default:
      return false;
  }
}

std::string EscapeLiteral(char c) {
  if (IsMeta(c)) return std::string("\\") + c;
  return std::string(1, c);
}

}  // namespace

std::string RegexToString(const RegexPtr& rx) {
  switch (rx->kind) {
    case RegexKind::kEmptySet:
      return "[]";  // an empty class matches nothing
    case RegexKind::kEpsilon:
      return "()";
    case RegexKind::kLiteral:
      return EscapeLiteral(rx->literal);
    case RegexKind::kAnyChar:
      return ".";
    case RegexKind::kCharClass: {
      std::string out = "[";
      if (rx->negated) out += "^";
      for (char c : rx->char_class) out += EscapeLiteral(c);
      out += "]";
      return out;
    }
    case RegexKind::kConcat:
      return RegexToString(rx->left) + RegexToString(rx->right);
    case RegexKind::kUnion:
      return "(" + RegexToString(rx->left) + "|" + RegexToString(rx->right) +
             ")";
    case RegexKind::kStar:
      return "(" + RegexToString(rx->left) + ")*";
    case RegexKind::kPlus:
      return "(" + RegexToString(rx->left) + ")+";
    case RegexKind::kOptional:
      return "(" + RegexToString(rx->left) + ")?";
  }
  return "";
}

namespace {

// Recursive-descent parser shared by classic and SIMILAR syntax. In SIMILAR
// mode '%' means Σ* and '_' means any single character; in classic mode both
// are plain literals.
class RegexParser {
 public:
  RegexParser(const std::string& input, bool similar_mode)
      : input_(input), similar_(similar_mode) {}

  Result<RegexPtr> Parse() {
    STRQ_ASSIGN_OR_RETURN(RegexPtr rx, ParseUnion());
    if (pos_ != input_.size()) {
      return InvalidArgumentError("unexpected '" +
                                  std::string(1, input_[pos_]) +
                                  "' at position " + std::to_string(pos_));
    }
    return rx;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  Result<RegexPtr> ParseUnion() {
    STRQ_ASSIGN_OR_RETURN(RegexPtr left, ParseConcat());
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      STRQ_ASSIGN_OR_RETURN(RegexPtr right, ParseConcat());
      left = RxUnion(std::move(left), std::move(right));
    }
    return left;
  }

  Result<RegexPtr> ParseConcat() {
    RegexPtr out = RxEpsilon();
    bool any = false;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      STRQ_ASSIGN_OR_RETURN(RegexPtr factor, ParsePostfix());
      out = any ? RxConcat(std::move(out), std::move(factor))
                : std::move(factor);
      any = true;
    }
    if (!any) return RxEpsilon();
    return out;
  }

  Result<RegexPtr> ParsePostfix() {
    STRQ_ASSIGN_OR_RETURN(RegexPtr atom, ParseAtom());
    while (!AtEnd()) {
      char c = Peek();
      if (c == '*') {
        atom = RxStar(std::move(atom));
      } else if (c == '+') {
        atom = RxPlus(std::move(atom));
      } else if (c == '?') {
        atom = RxOptional(std::move(atom));
      } else {
        break;
      }
      ++pos_;
    }
    return atom;
  }

  Result<RegexPtr> ParseAtom() {
    if (AtEnd()) return InvalidArgumentError("unexpected end of pattern");
    char c = Peek();
    if (c == '(') {
      ++pos_;
      STRQ_ASSIGN_OR_RETURN(RegexPtr inner, ParseUnion());
      if (AtEnd() || Peek() != ')') {
        return InvalidArgumentError("missing ')'");
      }
      ++pos_;
      return inner;
    }
    if (c == '[') return ParseCharClass();
    if (c == ')' || c == '*' || c == '+' || c == '?' || c == '|') {
      return InvalidArgumentError(std::string("misplaced '") + c + "'");
    }
    if (c == '\\') {
      ++pos_;
      if (AtEnd()) return InvalidArgumentError("dangling escape");
      char lit = Peek();
      ++pos_;
      return RxLiteral(lit);
    }
    ++pos_;
    if (c == '.') return RxAnyChar();
    if (similar_ && c == '%') return RxStar(RxAnyChar());
    if (similar_ && c == '_') return RxAnyChar();
    return RxLiteral(c);
  }

  Result<RegexPtr> ParseCharClass() {
    assert(Peek() == '[');
    ++pos_;
    bool negated = false;
    if (!AtEnd() && Peek() == '^') {
      negated = true;
      ++pos_;
    }
    std::string chars;
    while (!AtEnd() && Peek() != ']') {
      char c = Peek();
      ++pos_;
      if (c == '\\') {
        if (AtEnd()) return InvalidArgumentError("dangling escape in class");
        c = Peek();
        ++pos_;
      } else if (!AtEnd() && Peek() == '-' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] != ']') {
        // Character range a-z.
        ++pos_;  // consume '-'
        char hi = Peek();
        ++pos_;
        if (hi < c) return InvalidArgumentError("inverted range in class");
        for (char r = c; r <= hi; ++r) chars.push_back(r);
        continue;
      }
      chars.push_back(c);
    }
    if (AtEnd()) return InvalidArgumentError("missing ']'");
    ++pos_;  // consume ']'
    return RxCharClass(std::move(chars), negated);
  }

  const std::string& input_;
  bool similar_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(const std::string& pattern) {
  return RegexParser(pattern, /*similar_mode=*/false).Parse();
}

Result<RegexPtr> ParseSimilar(const std::string& pattern) {
  return RegexParser(pattern, /*similar_mode=*/true).Parse();
}

namespace {

// Thompson construction: returns (start, accept) fragment state pair.
struct Fragment {
  int start;
  int accept;
};

Result<Fragment> Build(const RegexPtr& rx, const Alphabet& alphabet,
                       Nfa& nfa) {
  int start = nfa.AddState();
  int accept = nfa.AddState();
  switch (rx->kind) {
    case RegexKind::kEmptySet:
      break;  // no path start -> accept
    case RegexKind::kEpsilon:
      nfa.AddEpsilon(start, accept);
      break;
    case RegexKind::kLiteral: {
      STRQ_ASSIGN_OR_RETURN(Symbol s, alphabet.SymbolOf(rx->literal));
      nfa.AddTransition(start, s, accept);
      break;
    }
    case RegexKind::kAnyChar:
      for (int s = 0; s < alphabet.size(); ++s) {
        nfa.AddTransition(start, static_cast<Symbol>(s), accept);
      }
      break;
    case RegexKind::kCharClass: {
      std::vector<bool> in_class(alphabet.size(), false);
      for (char c : rx->char_class) {
        // Characters outside the alphabet in a class simply never match;
        // this matches SQL semantics of classes over a wider charset.
        Result<Symbol> s = alphabet.SymbolOf(c);
        if (s.ok()) in_class[*s] = true;
      }
      for (int s = 0; s < alphabet.size(); ++s) {
        if (in_class[s] != rx->negated) {
          nfa.AddTransition(start, static_cast<Symbol>(s), accept);
        }
      }
      break;
    }
    case RegexKind::kConcat: {
      STRQ_ASSIGN_OR_RETURN(Fragment a, Build(rx->left, alphabet, nfa));
      STRQ_ASSIGN_OR_RETURN(Fragment b, Build(rx->right, alphabet, nfa));
      nfa.AddEpsilon(start, a.start);
      nfa.AddEpsilon(a.accept, b.start);
      nfa.AddEpsilon(b.accept, accept);
      break;
    }
    case RegexKind::kUnion: {
      STRQ_ASSIGN_OR_RETURN(Fragment a, Build(rx->left, alphabet, nfa));
      STRQ_ASSIGN_OR_RETURN(Fragment b, Build(rx->right, alphabet, nfa));
      nfa.AddEpsilon(start, a.start);
      nfa.AddEpsilon(start, b.start);
      nfa.AddEpsilon(a.accept, accept);
      nfa.AddEpsilon(b.accept, accept);
      break;
    }
    case RegexKind::kStar: {
      STRQ_ASSIGN_OR_RETURN(Fragment a, Build(rx->left, alphabet, nfa));
      nfa.AddEpsilon(start, accept);
      nfa.AddEpsilon(start, a.start);
      nfa.AddEpsilon(a.accept, a.start);
      nfa.AddEpsilon(a.accept, accept);
      break;
    }
    case RegexKind::kPlus: {
      STRQ_ASSIGN_OR_RETURN(Fragment a, Build(rx->left, alphabet, nfa));
      nfa.AddEpsilon(start, a.start);
      nfa.AddEpsilon(a.accept, a.start);
      nfa.AddEpsilon(a.accept, accept);
      break;
    }
    case RegexKind::kOptional: {
      STRQ_ASSIGN_OR_RETURN(Fragment a, Build(rx->left, alphabet, nfa));
      nfa.AddEpsilon(start, accept);
      nfa.AddEpsilon(start, a.start);
      nfa.AddEpsilon(a.accept, accept);
      break;
    }
  }
  return Fragment{start, accept};
}

}  // namespace

Result<Nfa> RegexToNfa(const RegexPtr& rx, const Alphabet& alphabet) {
  Nfa nfa(alphabet.size());
  STRQ_ASSIGN_OR_RETURN(Fragment frag, Build(rx, alphabet, nfa));
  nfa.SetStart(frag.start);
  nfa.SetAccepting(frag.accept);
  return nfa;
}

Result<Dfa> CompileRegex(const std::string& pattern,
                         const Alphabet& alphabet) {
  STRQ_ASSIGN_OR_RETURN(RegexPtr rx, ParseRegex(pattern));
  STRQ_ASSIGN_OR_RETURN(Nfa nfa, RegexToNfa(rx, alphabet));
  STRQ_ASSIGN_OR_RETURN(Dfa dfa, Determinize(nfa));
  return dfa.Minimized();
}

Result<Dfa> CompileSimilar(const std::string& pattern,
                           const Alphabet& alphabet) {
  STRQ_ASSIGN_OR_RETURN(RegexPtr rx, ParseSimilar(pattern));
  STRQ_ASSIGN_OR_RETURN(Nfa nfa, RegexToNfa(rx, alphabet));
  STRQ_ASSIGN_OR_RETURN(Dfa dfa, Determinize(nfa));
  return dfa.Minimized();
}

}  // namespace strq
