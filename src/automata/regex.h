#ifndef STRQ_AUTOMATA_REGEX_H_
#define STRQ_AUTOMATA_REGEX_H_

#include <memory>
#include <string>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

enum class RegexKind {
  kEmptySet,   // ∅
  kEpsilon,    // ε
  kLiteral,    // a single character
  kAnyChar,    // '.', any single alphabet character
  kCharClass,  // [abc] or [^abc]
  kConcat,
  kUnion,
  kStar,
  kPlus,
  kOptional,
};

struct RegexNode;
using RegexPtr = std::shared_ptr<const RegexNode>;

// Immutable regular-expression AST. Shared subtrees are fine; nodes are
// never mutated after construction.
struct RegexNode {
  RegexKind kind;
  char literal = '\0';       // kLiteral
  std::string char_class;    // kCharClass: the listed characters
  bool negated = false;      // kCharClass: [^...]
  RegexPtr left;             // kConcat/kUnion left, unary child otherwise
  RegexPtr right;            // kConcat/kUnion right
};

// AST constructors.
RegexPtr RxEmptySet();
RegexPtr RxEpsilon();
RegexPtr RxLiteral(char c);
RegexPtr RxAnyChar();
RegexPtr RxCharClass(std::string chars, bool negated);
RegexPtr RxConcat(RegexPtr a, RegexPtr b);
RegexPtr RxUnion(RegexPtr a, RegexPtr b);
RegexPtr RxStar(RegexPtr a);
RegexPtr RxPlus(RegexPtr a);
RegexPtr RxOptional(RegexPtr a);
// Concatenation of the literal characters of `s` (ε for empty s).
RegexPtr RxString(const std::string& s);

// Renders the AST back to (classic) regex syntax.
std::string RegexToString(const RegexPtr& rx);

// Parses classic regex syntax: alternation '|', postfix '*' '+' '?',
// grouping '(...)', '.' wildcard, character classes '[abc]' / '[^abc]',
// backslash escapes for metacharacters.
Result<RegexPtr> ParseRegex(const std::string& pattern);

// Parses an SQL3 SIMILAR TO pattern (Section 4 of the paper: "essentially
// grep"): like classic regex, but '%' matches any string and '_' any single
// character, as in LIKE.
Result<RegexPtr> ParseSimilar(const std::string& pattern);

// Thompson construction. All literal/class characters must be in `alphabet`.
Result<Nfa> RegexToNfa(const RegexPtr& rx, const Alphabet& alphabet);

// Convenience: parse-compile-determinize-minimize pipeline.
Result<Dfa> CompileRegex(const std::string& pattern, const Alphabet& alphabet);
Result<Dfa> CompileSimilar(const std::string& pattern,
                           const Alphabet& alphabet);

}  // namespace strq

#endif  // STRQ_AUTOMATA_REGEX_H_
