#ifndef STRQ_AUTOMATA_STARFREE_H_
#define STRQ_AUTOMATA_STARFREE_H_

#include "automata/dfa.h"
#include "base/status.h"

namespace strq {

// Star-freeness (aperiodicity) testing.
//
// A regular language is star-free iff its syntactic monoid is aperiodic
// (Schützenberger). This is the dividing line the paper leans on throughout:
// the subsets of Σ* definable over S and S_left are exactly the star-free
// languages, while S_reg and S_len define all regular languages (Sections 4
// and 7). The Figure-1 separation benches call IsStarFree on answer
// languages to machine-check these characterizations.

// Ceiling on the enumerated transition monoid; the monoid of an n-state DFA
// has at most n^n elements, so a budget keeps adversarial inputs bounded.
inline constexpr int kDefaultMaxMonoidSize = 200000;

// Tests whether L(dfa) is star-free, by minimizing and checking that every
// element t of the transition monoid satisfies t^k = t^{k+1} for some k
// (aperiodicity). Returns ResourceExhausted if the monoid exceeds the budget.
Result<bool> IsStarFree(const Dfa& dfa,
                        int max_monoid_size = kDefaultMaxMonoidSize);

// Size of the transition monoid of the *minimal* DFA for L(dfa) (also the
// syntactic monoid size). Mostly for diagnostics and benches.
Result<int> SyntacticMonoidSize(const Dfa& dfa,
                                int max_monoid_size = kDefaultMaxMonoidSize);

}  // namespace strq

#endif  // STRQ_AUTOMATA_STARFREE_H_
