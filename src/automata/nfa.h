#ifndef STRQ_AUTOMATA_NFA_H_
#define STRQ_AUTOMATA_NFA_H_

#include <vector>

#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// A nondeterministic finite automaton with epsilon transitions, used as the
// intermediate form for Thompson construction and for operations that are
// naturally nondeterministic (projection in the multi-track engine reuses the
// same subset-construction machinery via automata/ops.h).
class Nfa {
 public:
  explicit Nfa(int alphabet_size) : alphabet_size_(alphabet_size) {}

  int alphabet_size() const { return alphabet_size_; }
  int num_states() const { return static_cast<int>(trans_.size()); }

  // Adds a fresh state and returns its id.
  int AddState();

  void AddTransition(int from, Symbol symbol, int to);
  void AddEpsilon(int from, int to);
  void SetStart(int state) { start_ = state; }
  void SetAccepting(int state, bool accepting = true);

  int start() const { return start_; }
  bool IsAccepting(int state) const { return accepting_[state]; }
  // Targets of `from` on `symbol` (no epsilon closure applied).
  const std::vector<int>& Targets(int from, Symbol symbol) const {
    return trans_[from][symbol];
  }
  const std::vector<int>& EpsilonTargets(int from) const {
    return epsilon_[from];
  }

  // Epsilon closure of a set of states (sorted, deduplicated).
  std::vector<int> EpsilonClosure(std::vector<int> states) const;

  // Direct NFA run (used for differential tests against the DFA path).
  bool Accepts(const std::vector<Symbol>& w) const;

 private:
  int alphabet_size_;
  int start_ = 0;
  // trans_[state][symbol] -> target list.
  std::vector<std::vector<std::vector<int>>> trans_;
  std::vector<std::vector<int>> epsilon_;
  std::vector<bool> accepting_;
};

}  // namespace strq

#endif  // STRQ_AUTOMATA_NFA_H_
