#include "automata/levenshtein.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <utility>

namespace strq {

namespace {

// Inserts `p` into the sorted antichain `state`, dropping subsumed
// positions. (i,e) subsumes (j,f) iff e + |i - j| <= f: with |i-j| extra
// deletions/insertions position i can reach offset j spending e + |i-j|,
// so anything (j,f) accepts, (i,e) accepts too.
void AddPos(SparseLevenshtein::State& state, SparseLevenshtein::Pos p) {
  for (const auto& q : state) {
    if (q.edits + std::abs(q.offset - p.offset) <= p.edits) return;
  }
  state.erase(std::remove_if(state.begin(), state.end(),
                             [&](const SparseLevenshtein::Pos& q) {
                               return p.edits + std::abs(p.offset - q.offset) <=
                                      q.edits;
                             }),
              state.end());
  auto it = std::lower_bound(state.begin(), state.end(), p,
                             [](const SparseLevenshtein::Pos& a,
                                const SparseLevenshtein::Pos& b) {
                               return a.offset < b.offset;
                             });
  state.insert(it, p);
}

}  // namespace

SparseLevenshtein::SparseLevenshtein(std::vector<Symbol> word, int max_edits)
    : word_(std::move(word)), max_edits_(max_edits) {}

SparseLevenshtein::State SparseLevenshtein::Start() const {
  return {Pos{0, 0}};
}

SparseLevenshtein::State SparseLevenshtein::Step(const State& state,
                                                 Symbol c) const {
  State next;
  const int m = static_cast<int>(word_.size());
  for (const Pos& p : state) {
    if (p.offset < m && word_[p.offset] == c) {
      AddPos(next, Pos{p.offset + 1, p.edits});  // match
    }
    if (p.edits < max_edits_) {
      AddPos(next, Pos{p.offset, p.edits + 1});  // insert c
      if (p.offset < m) {
        AddPos(next, Pos{p.offset + 1, p.edits + 1});  // substitute
      }
      // Delete d word characters, then match c against word[p.offset + d].
      for (int d = 1; p.edits + d <= max_edits_ && p.offset + d < m; ++d) {
        if (word_[p.offset + d] == c) {
          AddPos(next, Pos{p.offset + d + 1, p.edits + d});
        }
      }
    }
  }
  return next;
}

bool SparseLevenshtein::IsAccepting(const State& state) const {
  const int m = static_cast<int>(word_.size());
  for (const Pos& p : state) {
    if (m - p.offset <= max_edits_ - p.edits) return true;
  }
  return false;
}

Result<Dfa> LevenshteinDfa(const Alphabet& alphabet, const std::string& word,
                           int max_edits) {
  if (max_edits < 0) {
    return InvalidArgumentError("~k distance must be non-negative");
  }
  STRQ_ASSIGN_OR_RETURN(std::vector<Symbol> encoded, alphabet.Encode(word));
  SparseLevenshtein nfa(std::move(encoded), max_edits);

  // Subset construction keyed on the sparse state vector itself: equal
  // antichains are equal states, so the map doubles as the signature cache.
  using Key = std::vector<std::pair<int, int>>;
  auto key_of = [](const SparseLevenshtein::State& s) {
    Key k;
    k.reserve(s.size());
    for (const auto& p : s) k.emplace_back(p.offset, p.edits);
    return k;
  };

  std::map<Key, int> ids;
  std::vector<SparseLevenshtein::State> states;
  auto intern = [&](SparseLevenshtein::State s) {
    Key k = key_of(s);
    auto [it, inserted] = ids.emplace(std::move(k),
                                      static_cast<int>(states.size()));
    if (inserted) states.push_back(std::move(s));
    return it->second;
  };

  const int sigma = alphabet.size();
  intern(nfa.Start());
  intern(SparseLevenshtein::State{});  // dead sink, always present
  std::vector<int> flat_next;
  std::vector<bool> accepting;
  for (size_t q = 0; q < states.size(); ++q) {
    // `states` grows as successors are interned; index access stays valid
    // because we copy the source state before stepping.
    SparseLevenshtein::State src = states[q];
    accepting.push_back(nfa.IsAccepting(src));
    for (int c = 0; c < sigma; ++c) {
      flat_next.push_back(intern(nfa.Step(src, static_cast<Symbol>(c))));
    }
  }
  return Dfa::CreateFlat(sigma, static_cast<int>(states.size()),
                         /*start=*/0, std::move(flat_next),
                         std::move(accepting));
}

bool WithinEditDistance(const std::string& a, const std::string& b,
                        int max_edits) {
  if (max_edits < 0) return false;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (std::abs(n - m) > max_edits) return false;
  // Banded Levenshtein DP, one row at a time; entries outside the band are
  // implicitly > max_edits.
  const int inf = max_edits + 1;
  std::vector<int> prev(m + 1, inf), cur(m + 1, inf);
  for (int j = 0; j <= std::min(m, max_edits); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), inf);
    const int lo = std::max(1, i - max_edits);
    const int hi = std::min(m, i + max_edits);
    if (i - max_edits <= 0) cur[0] = i;
    for (int j = lo; j <= hi; ++j) {
      int best = std::min(prev[j], cur[j - 1]) + 1;
      best = std::min(best, prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1));
      cur[j] = std::min(best, inf);
    }
    std::swap(prev, cur);
    if (*std::min_element(prev.begin(), prev.end()) > max_edits) return false;
  }
  return prev[m] <= max_edits;
}

}  // namespace strq
