#include "automata/nfa.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace strq {

int Nfa::AddState() {
  trans_.emplace_back(alphabet_size_);
  epsilon_.emplace_back();
  accepting_.push_back(false);
  return num_states() - 1;
}

void Nfa::AddTransition(int from, Symbol symbol, int to) {
  assert(from >= 0 && from < num_states());
  assert(to >= 0 && to < num_states());
  assert(symbol < alphabet_size_);
  trans_[from][symbol].push_back(to);
}

void Nfa::AddEpsilon(int from, int to) {
  assert(from >= 0 && from < num_states());
  assert(to >= 0 && to < num_states());
  epsilon_[from].push_back(to);
}

void Nfa::SetAccepting(int state, bool accepting) {
  assert(state >= 0 && state < num_states());
  accepting_[state] = accepting;
}

std::vector<int> Nfa::EpsilonClosure(std::vector<int> states) const {
  std::vector<bool> seen(num_states(), false);
  std::deque<int> queue;
  for (int q : states) {
    if (!seen[q]) {
      seen[q] = true;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int t : epsilon_[q]) {
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  std::vector<int> out;
  for (int q = 0; q < num_states(); ++q) {
    if (seen[q]) out.push_back(q);
  }
  return out;
}

bool Nfa::Accepts(const std::vector<Symbol>& w) const {
  if (num_states() == 0) return false;
  std::vector<int> current = EpsilonClosure({start_});
  for (Symbol s : w) {
    std::vector<int> next;
    for (int q : current) {
      const std::vector<int>& ts = trans_[q][s];
      next.insert(next.end(), ts.begin(), ts.end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = EpsilonClosure(std::move(next));
    if (current.empty()) return false;
  }
  for (int q : current) {
    if (accepting_[q]) return true;
  }
  return false;
}

}  // namespace strq
