#include "automata/like.h"

#include "automata/ops.h"

namespace strq {

Result<RegexPtr> LikeToRegex(const std::string& pattern, char escape) {
  RegexPtr out = RxEpsilon();
  bool any = false;
  auto append = [&](RegexPtr piece) {
    out = any ? RxConcat(std::move(out), std::move(piece)) : std::move(piece);
    any = true;
  };
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (escape != '\0' && c == escape) {
      if (i + 1 >= pattern.size()) {
        return InvalidArgumentError("LIKE pattern ends with escape character");
      }
      append(RxLiteral(pattern[++i]));
    } else if (c == '%') {
      append(RxStar(RxAnyChar()));
    } else if (c == '_') {
      append(RxAnyChar());
    } else {
      append(RxLiteral(c));
    }
  }
  return out;
}

Result<Dfa> CompileLike(const std::string& pattern, const Alphabet& alphabet,
                        char escape) {
  STRQ_ASSIGN_OR_RETURN(RegexPtr rx, LikeToRegex(pattern, escape));
  STRQ_ASSIGN_OR_RETURN(Nfa nfa, RegexToNfa(rx, alphabet));
  STRQ_ASSIGN_OR_RETURN(Dfa dfa, Determinize(nfa));
  return dfa.Minimized();
}

Result<LikeMatcher> LikeMatcher::Create(const std::string& pattern,
                                        const Alphabet& alphabet,
                                        char escape) {
  STRQ_ASSIGN_OR_RETURN(Dfa dfa, CompileLike(pattern, alphabet, escape));
  std::vector<int16_t> symbol_of(256, -1);
  for (int s = 0; s < alphabet.size(); ++s) {
    unsigned char c =
        static_cast<unsigned char>(alphabet.CharOf(static_cast<Symbol>(s)));
    symbol_of[c] = static_cast<int16_t>(s);
  }
  return LikeMatcher(std::move(dfa), std::move(symbol_of));
}

bool LikeMatcher::Matches(const std::string& text) const {
  int q = dfa_.start();
  for (char c : text) {
    int16_t s = symbol_of_[static_cast<unsigned char>(c)];
    if (s < 0) return false;
    q = dfa_.Next(q, static_cast<Symbol>(s));
  }
  return dfa_.IsAccepting(q);
}

}  // namespace strq
