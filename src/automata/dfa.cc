#include "automata/dfa.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <numeric>

#include "obs/trace.h"

namespace strq {

Result<Dfa> Dfa::Create(int alphabet_size, int start,
                        std::vector<std::vector<int>> next,
                        std::vector<bool> accepting) {
  int n = static_cast<int>(next.size());
  if (n == 0) return InvalidArgumentError("DFA must have at least one state");
  if (alphabet_size <= 0) {
    return InvalidArgumentError("alphabet size must be positive");
  }
  if (start < 0 || start >= n) return InvalidArgumentError("bad start state");
  if (static_cast<int>(accepting.size()) != n) {
    return InvalidArgumentError("accepting vector size mismatch");
  }
  for (const auto& row : next) {
    if (static_cast<int>(row.size()) != alphabet_size) {
      return InvalidArgumentError("transition row size mismatch");
    }
    for (int t : row) {
      if (t < 0 || t >= n) return InvalidArgumentError("bad transition target");
    }
  }
  return Dfa(alphabet_size, start, std::move(next), std::move(accepting));
}

Dfa Dfa::EmptyLanguage(int alphabet_size) {
  return Dfa(alphabet_size, 0,
             {std::vector<int>(static_cast<size_t>(alphabet_size), 0)},
             {false});
}

Dfa Dfa::AllStrings(int alphabet_size) {
  return Dfa(alphabet_size, 0,
             {std::vector<int>(static_cast<size_t>(alphabet_size), 0)},
             {true});
}

Dfa Dfa::SingleString(int alphabet_size, const std::vector<Symbol>& w) {
  // States 0..|w| along the string, plus a sink at |w|+1.
  int n = static_cast<int>(w.size()) + 2;
  int sink = n - 1;
  std::vector<std::vector<int>> next(
      n, std::vector<int>(static_cast<size_t>(alphabet_size), sink));
  for (size_t i = 0; i < w.size(); ++i) {
    next[i][w[i]] = static_cast<int>(i) + 1;
  }
  std::vector<bool> accepting(n, false);
  accepting[w.size()] = true;
  return Dfa(alphabet_size, 0, std::move(next), std::move(accepting));
}

bool Dfa::Accepts(const std::vector<Symbol>& w) const {
  int q = start_;
  for (Symbol s : w) {
    assert(s < alphabet_size_);
    q = next_[q][s];
  }
  return accepting_[q];
}

bool Dfa::AcceptsString(const Alphabet& alphabet, const std::string& w) const {
  Result<std::vector<Symbol>> enc = alphabet.Encode(w);
  if (!enc.ok()) return false;
  return Accepts(*enc);
}

std::vector<bool> Dfa::ReachableStates() const {
  std::vector<bool> seen(next_.size(), false);
  std::deque<int> queue = {start_};
  seen[start_] = true;
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int t : next_[q]) {
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return seen;
}

std::vector<bool> Dfa::CoreachableStates() const {
  int n = num_states();
  std::vector<std::vector<int>> rev(n);
  for (int q = 0; q < n; ++q) {
    for (int t : next_[q]) rev[t].push_back(q);
  }
  std::vector<bool> seen(n, false);
  std::deque<int> queue;
  for (int q = 0; q < n; ++q) {
    if (accepting_[q]) {
      seen[q] = true;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int p : rev[q]) {
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return seen;
}

bool Dfa::IsEmpty() const {
  std::vector<bool> reach = ReachableStates();
  for (int q = 0; q < num_states(); ++q) {
    if (reach[q] && accepting_[q]) return false;
  }
  return true;
}

bool Dfa::IsUniversal() const { return Complemented().IsEmpty(); }

bool Dfa::IsFinite() const {
  // The language is infinite iff some *useful* state (reachable from start,
  // able to reach an accepting state) lies on a cycle within useful states.
  std::vector<bool> reach = ReachableStates();
  std::vector<bool> coreach = CoreachableStates();
  int n = num_states();
  std::vector<bool> useful(n);
  for (int q = 0; q < n; ++q) useful[q] = reach[q] && coreach[q];

  // Iterative DFS with colors over the useful subgraph.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n, kWhite);
  for (int root = 0; root < n; ++root) {
    if (!useful[root] || color[root] != kWhite) continue;
    // Stack of (state, next symbol index to explore).
    std::vector<std::pair<int, int>> stack = {{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [q, i] = stack.back();
      if (i >= alphabet_size_) {
        color[q] = kBlack;
        stack.pop_back();
        continue;
      }
      int t = next_[q][i++];
      if (!useful[t]) continue;
      if (color[t] == kGray) return false;  // cycle among useful states
      if (color[t] == kWhite) {
        color[t] = kGray;
        stack.push_back({t, 0});
      }
    }
  }
  return true;
}

namespace {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  if (a > Dfa::kCountSaturated - b) return Dfa::kCountSaturated;
  return a + b;
}

}  // namespace

uint64_t Dfa::CountLength(int n) const {
  // counts[q] = number of strings of the processed length ending in q.
  std::vector<uint64_t> counts(next_.size(), 0);
  counts[start_] = 1;
  for (int step = 0; step < n; ++step) {
    std::vector<uint64_t> nxt(next_.size(), 0);
    for (size_t q = 0; q < next_.size(); ++q) {
      if (counts[q] == 0) continue;
      for (int s = 0; s < alphabet_size_; ++s) {
        int t = next_[q][s];
        if (counts[q] == kCountSaturated) {
          nxt[t] = kCountSaturated;
        } else {
          nxt[t] = SaturatingAdd(nxt[t], counts[q]);
        }
      }
    }
    counts = std::move(nxt);
  }
  uint64_t total = 0;
  for (size_t q = 0; q < next_.size(); ++q) {
    if (accepting_[q]) total = SaturatingAdd(total, counts[q]);
  }
  return total;
}

uint64_t Dfa::CountUpToLength(int n) const {
  uint64_t total = 0;
  for (int len = 0; len <= n; ++len) {
    total = SaturatingAdd(total, CountLength(len));
  }
  return total;
}

std::vector<std::vector<Symbol>> Dfa::Enumerate(int max_len,
                                                size_t max_count) const {
  std::vector<std::vector<Symbol>> out;
  std::vector<bool> coreach = CoreachableStates();
  if (!coreach[start_]) return out;

  // Shortlex: breadth-first over (state, word) pruned to co-reachable states.
  std::deque<std::pair<int, std::vector<Symbol>>> queue;
  queue.push_back({start_, {}});
  while (!queue.empty() && out.size() < max_count) {
    auto [q, w] = std::move(queue.front());
    queue.pop_front();
    if (accepting_[q]) out.push_back(w);
    if (static_cast<int>(w.size()) >= max_len) continue;
    for (int s = 0; s < alphabet_size_; ++s) {
      int t = next_[q][s];
      if (!coreach[t]) continue;
      std::vector<Symbol> w2 = w;
      w2.push_back(static_cast<Symbol>(s));
      queue.push_back({t, std::move(w2)});
    }
  }
  return out;
}

std::optional<std::vector<Symbol>> Dfa::ShortestAccepted() const {
  // BFS from start recording the first-reached word.
  std::vector<bool> seen(next_.size(), false);
  std::deque<std::pair<int, std::vector<Symbol>>> queue;
  queue.push_back({start_, {}});
  seen[start_] = true;
  while (!queue.empty()) {
    auto [q, w] = std::move(queue.front());
    queue.pop_front();
    if (accepting_[q]) return w;
    for (int s = 0; s < alphabet_size_; ++s) {
      int t = next_[q][s];
      if (seen[t]) continue;
      seen[t] = true;
      std::vector<Symbol> w2 = w;
      w2.push_back(static_cast<Symbol>(s));
      queue.push_back({t, std::move(w2)});
    }
  }
  return std::nullopt;
}

std::optional<int> Dfa::MaxAcceptedLength() const {
  if (!IsFinite()) return std::nullopt;
  std::vector<bool> reach = ReachableStates();
  std::vector<bool> coreach = CoreachableStates();
  int n = num_states();
  std::vector<bool> useful(n);
  bool any = false;
  for (int q = 0; q < n; ++q) {
    useful[q] = reach[q] && coreach[q];
    any = any || useful[q];
  }
  if (!any) return -1;

  // The useful subgraph is a DAG (IsFinite). Longest path from start to an
  // accepting state via memoized DFS; memo[q] = longest suffix-path length
  // ending at an accepting state from q (-1 if none, which cannot happen for
  // useful q).
  std::vector<int> memo(n, -2);  // -2 = unvisited
  // Iterative post-order.
  std::vector<std::pair<int, int>> stack = {{start_, 0}};
  if (!useful[start_]) return -1;
  while (!stack.empty()) {
    auto& [q, i] = stack.back();
    if (i == 0 && memo[q] != -2) {
      stack.pop_back();
      continue;
    }
    if (i < alphabet_size_) {
      int t = next_[q][i++];
      if (useful[t] && memo[t] == -2) stack.push_back({t, 0});
      continue;
    }
    // All children done; compute.
    int best = accepting_[q] ? 0 : -1;
    for (int s = 0; s < alphabet_size_; ++s) {
      int t = next_[q][s];
      if (useful[t] && memo[t] >= 0) best = std::max(best, memo[t] + 1);
    }
    memo[q] = best;
    stack.pop_back();
  }
  return memo[start_];
}

Dfa Dfa::Complemented() const {
  std::vector<bool> acc(accepting_.size());
  for (size_t q = 0; q < accepting_.size(); ++q) acc[q] = !accepting_[q];
  return Dfa(alphabet_size_, start_, next_, std::move(acc));
}

Dfa Dfa::Minimized() const {
  obs::Span span("dfa.minimize");
  // Restrict to reachable states first.
  std::vector<bool> reach = ReachableStates();
  std::vector<int> remap(next_.size(), -1);
  int m = 0;
  for (size_t q = 0; q < next_.size(); ++q) {
    if (reach[q]) remap[q] = m++;
  }
  std::vector<std::vector<int>> next(m);
  std::vector<bool> accepting(m);
  for (size_t q = 0; q < next_.size(); ++q) {
    if (!reach[q]) continue;
    std::vector<int> row(alphabet_size_);
    for (int s = 0; s < alphabet_size_; ++s) row[s] = remap[next_[q][s]];
    next[remap[q]] = std::move(row);
    accepting[remap[q]] = accepting_[q];
  }
  int start = remap[start_];

  // Moore partition refinement: O(n^2 * |Σ|) worst case, fine at our scale
  // (states number in the hundreds). Partition ids per state.
  std::vector<int> part(m);
  for (int q = 0; q < m; ++q) part[q] = accepting[q] ? 1 : 0;
  int num_parts = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature of each state: (part, part of successors).
    std::map<std::vector<int>, int> sig_to_id;
    std::vector<int> new_part(m);
    for (int q = 0; q < m; ++q) {
      std::vector<int> sig;
      sig.reserve(alphabet_size_ + 1);
      sig.push_back(part[q]);
      for (int s = 0; s < alphabet_size_; ++s) sig.push_back(part[next[q][s]]);
      auto [it, inserted] =
          sig_to_id.emplace(std::move(sig), static_cast<int>(sig_to_id.size()));
      new_part[q] = it->second;
      (void)inserted;
    }
    int new_num = static_cast<int>(sig_to_id.size());
    if (new_num != num_parts) {
      changed = true;
      num_parts = new_num;
    }
    part = std::move(new_part);
  }

  std::vector<std::vector<int>> min_next(
      num_parts, std::vector<int>(static_cast<size_t>(alphabet_size_), 0));
  std::vector<bool> min_acc(num_parts, false);
  for (int q = 0; q < m; ++q) {
    int p = part[q];
    for (int s = 0; s < alphabet_size_; ++s) min_next[p][s] = part[next[q][s]];
    if (accepting[q]) min_acc[p] = true;
  }
  span.Attr("in_states", num_states());
  span.Attr("out_states", num_parts);
  obs::Count(obs::kDfaMinimizations);
  obs::Count(obs::kDfaStatesBuilt, num_parts);
  return Dfa(alphabet_size_, part[start], std::move(min_next),
             std::move(min_acc));
}

}  // namespace strq
