#include "automata/dfa.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <map>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"

namespace strq {

namespace {

std::atomic<ClassKernel> g_class_kernel{ClassKernel::kCondensed};

// FNV-1a over the condensed structural content. Cheap, stable across
// platforms, and good enough for the unique table (which compares
// structurally on hash collisions anyway). Because every constructor
// canonicalizes the class partition, hashing the condensed form is
// equivalent to hashing the dense table — just O(n·C + |Σ|) instead of
// O(n·|Σ|).
uint64_t HashStructure(int alphabet_size, int num_states, int start,
                       const std::vector<int>& letter_class,
                       const std::vector<int>& cnext,
                       const std::vector<bool>& accepting) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(alphabet_size));
  mix(static_cast<uint64_t>(num_states));
  mix(static_cast<uint64_t>(start));
  for (int c : letter_class) mix(static_cast<uint64_t>(c) + 0x9e3779b97f4a7c15ULL);
  for (int t : cnext) mix(static_cast<uint64_t>(t) + 0x9e3779b97f4a7c15ULL);
  for (size_t q = 0; q < accepting.size(); ++q) {
    if (accepting[q]) mix(q * 2 + 1);
  }
  return h;
}

std::vector<int> IdentityLetterMap(int alphabet_size) {
  std::vector<int> id(alphabet_size);
  std::iota(id.begin(), id.end(), 0);
  return id;
}

}  // namespace

ClassKernel GetClassKernel() {
  return g_class_kernel.load(std::memory_order_relaxed);
}

void SetClassKernel(ClassKernel kernel) {
  g_class_kernel.store(kernel, std::memory_order_relaxed);
}

Dfa::Dfa(int alphabet_size, int num_states, int start,
         std::vector<int> letter_class, int num_hint_classes,
         std::vector<int> condensed_next, std::vector<bool> accepting)
    : alphabet_size_(alphabet_size),
      num_states_(num_states),
      start_(start),
      accepting_(std::move(accepting)) {
  const int h = num_hint_classes;
  // Coarsen: merge hint classes whose condensed columns coincide, so the
  // stored partition is the coarsest one even when the hint is finer (e.g.
  // the identity hint of the dense construction paths, or a product's joint
  // refinement that over-splits). Columns are bucketed by hash and verified
  // exactly on collision.
  std::vector<int> group_of(h);
  {
    std::vector<uint64_t> col_hash(h);
    for (int c = 0; c < h; ++c) {
      uint64_t hh = 1469598103934665603ULL;
      for (int q = 0; q < num_states_; ++q) {
        hh ^= static_cast<uint64_t>(
                  condensed_next[static_cast<size_t>(q) * h + c]) +
              0x9e3779b97f4a7c15ULL;
        hh *= 1099511628211ULL;
      }
      col_hash[c] = hh;
    }
    auto same_col = [&](int c1, int c2) {
      for (int q = 0; q < num_states_; ++q) {
        if (condensed_next[static_cast<size_t>(q) * h + c1] !=
            condensed_next[static_cast<size_t>(q) * h + c2]) {
          return false;
        }
      }
      return true;
    };
    std::unordered_map<uint64_t, std::vector<int>> buckets;
    for (int c = 0; c < h; ++c) {
      std::vector<int>& reps = buckets[col_hash[c]];
      int g = -1;
      for (int r : reps) {
        if (same_col(r, c)) {
          g = r;
          break;
        }
      }
      if (g < 0) {
        reps.push_back(c);
        g = c;
      }
      group_of[c] = g;
    }
  }
  // Canonical renumbering by first letter occurrence; hint classes no letter
  // maps to are dropped. This makes the condensed form a function of the
  // dense transition structure alone, so structural hashing/equality work on
  // it directly.
  letter_class_.resize(alphabet_size_);
  std::vector<int> canon_of_group(h, -1);
  std::vector<int> member_hint;  // canonical class -> source hint class
  for (int s = 0; s < alphabet_size_; ++s) {
    int g = group_of[letter_class[s]];
    if (canon_of_group[g] < 0) {
      canon_of_group[g] = static_cast<int>(member_hint.size());
      member_hint.push_back(g);
      class_rep_.push_back(static_cast<Symbol>(s));
    }
    letter_class_[s] = canon_of_group[g];
  }
  num_classes_ = static_cast<int>(member_hint.size());
  cnext_.resize(static_cast<size_t>(num_states_) * num_classes_);
  for (int q = 0; q < num_states_; ++q) {
    const int* row = &condensed_next[static_cast<size_t>(q) * h];
    int* out = &cnext_[static_cast<size_t>(q) * num_classes_];
    for (int c = 0; c < num_classes_; ++c) out[c] = row[member_hint[c]];
  }
  hash_ = HashStructure(alphabet_size_, num_states_, start_, letter_class_,
                        cnext_, accepting_);
  obs::Count(obs::kDfaClassesTotal, num_classes_);
  obs::Count(obs::kDfaTableBytesCondensed, TableBytesCondensed());
  obs::Count(obs::kDfaTableBytesDenseEquiv, TableBytesDenseEquiv());
}

Dfa::Dfa(int alphabet_size, int num_states, int start, std::vector<int> next,
         std::vector<bool> accepting)
    : Dfa(alphabet_size, num_states, start, IdentityLetterMap(alphabet_size),
          alphabet_size, std::move(next), std::move(accepting)) {}

bool Dfa::StructurallyEqual(const Dfa& other) const {
  return hash_ == other.hash_ && alphabet_size_ == other.alphabet_size_ &&
         num_states_ == other.num_states_ && start_ == other.start_ &&
         num_classes_ == other.num_classes_ &&
         letter_class_ == other.letter_class_ && cnext_ == other.cnext_ &&
         accepting_ == other.accepting_;
}

Result<Dfa> Dfa::Create(int alphabet_size, int start,
                        std::vector<std::vector<int>> next,
                        std::vector<bool> accepting) {
  int n = static_cast<int>(next.size());
  if (alphabet_size <= 0) {
    return InvalidArgumentError("alphabet size must be positive");
  }
  std::vector<int> flat;
  flat.reserve(static_cast<size_t>(n) * alphabet_size);
  for (const auto& row : next) {
    if (static_cast<int>(row.size()) != alphabet_size) {
      return InvalidArgumentError("transition row size mismatch");
    }
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return CreateFlat(alphabet_size, n, start, std::move(flat),
                    std::move(accepting));
}

Result<Dfa> Dfa::CreateFlat(int alphabet_size, int num_states, int start,
                            std::vector<int> next,
                            std::vector<bool> accepting) {
  if (num_states <= 0) {
    return InvalidArgumentError("DFA must have at least one state");
  }
  if (alphabet_size <= 0) {
    return InvalidArgumentError("alphabet size must be positive");
  }
  if (start < 0 || start >= num_states) {
    return InvalidArgumentError("bad start state");
  }
  if (static_cast<int>(accepting.size()) != num_states) {
    return InvalidArgumentError("accepting vector size mismatch");
  }
  if (next.size() != static_cast<size_t>(num_states) * alphabet_size) {
    return InvalidArgumentError("transition table size mismatch");
  }
  for (int t : next) {
    if (t < 0 || t >= num_states) {
      return InvalidArgumentError("bad transition target");
    }
  }
  return Dfa(alphabet_size, num_states, start, std::move(next),
             std::move(accepting));
}

Result<Dfa> Dfa::CreateCondensed(int alphabet_size, int num_states, int start,
                                 std::vector<int> letter_class,
                                 int num_hint_classes,
                                 std::vector<int> condensed_next,
                                 std::vector<bool> accepting) {
  if (num_states <= 0) {
    return InvalidArgumentError("DFA must have at least one state");
  }
  if (alphabet_size <= 0) {
    return InvalidArgumentError("alphabet size must be positive");
  }
  if (num_hint_classes <= 0) {
    return InvalidArgumentError("hint partition must have at least one class");
  }
  if (start < 0 || start >= num_states) {
    return InvalidArgumentError("bad start state");
  }
  if (static_cast<int>(accepting.size()) != num_states) {
    return InvalidArgumentError("accepting vector size mismatch");
  }
  if (static_cast<int>(letter_class.size()) != alphabet_size) {
    return InvalidArgumentError("letter-class map size mismatch");
  }
  for (int c : letter_class) {
    if (c < 0 || c >= num_hint_classes) {
      return InvalidArgumentError("letter-class id out of range");
    }
  }
  if (condensed_next.size() !=
      static_cast<size_t>(num_states) * num_hint_classes) {
    return InvalidArgumentError("condensed table size mismatch");
  }
  for (int t : condensed_next) {
    if (t < 0 || t >= num_states) {
      return InvalidArgumentError("bad transition target");
    }
  }
  return Dfa(alphabet_size, num_states, start, std::move(letter_class),
             num_hint_classes, std::move(condensed_next),
             std::move(accepting));
}

Dfa Dfa::EmptyLanguage(int alphabet_size) {
  return Dfa(alphabet_size, 1, 0, std::vector<int>(alphabet_size, 0), 1, {0},
             {false});
}

Dfa Dfa::AllStrings(int alphabet_size) {
  return Dfa(alphabet_size, 1, 0, std::vector<int>(alphabet_size, 0), 1, {0},
             {true});
}

Dfa Dfa::SingleString(int alphabet_size, const std::vector<Symbol>& w) {
  // States 0..|w| along the string, plus a sink at |w|+1.
  int n = static_cast<int>(w.size()) + 2;
  int sink = n - 1;
  std::vector<int> next(static_cast<size_t>(n) * alphabet_size, sink);
  for (size_t i = 0; i < w.size(); ++i) {
    next[i * alphabet_size + w[i]] = static_cast<int>(i) + 1;
  }
  std::vector<bool> accepting(n, false);
  accepting[w.size()] = true;
  return Dfa(alphabet_size, n, 0, std::move(next), std::move(accepting));
}

bool Dfa::Accepts(const std::vector<Symbol>& w) const {
  int q = start_;
  for (Symbol s : w) {
    assert(s < alphabet_size_);
    q = Next(q, s);
  }
  return accepting_[q];
}

bool Dfa::AcceptsString(const Alphabet& alphabet, const std::string& w) const {
  Result<std::vector<Symbol>> enc = alphabet.Encode(w);
  if (!enc.ok()) return false;
  return Accepts(*enc);
}

std::vector<bool> Dfa::ReachableStates() const {
  // Reachability only needs one edge per class: same-class letters share
  // their target by construction.
  std::vector<bool> seen(num_states_, false);
  std::deque<int> queue = {start_};
  seen[start_] = true;
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int c = 0; c < num_classes_; ++c) {
      int t = NextByClass(q, c);
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return seen;
}

std::vector<bool> Dfa::CoreachableStates() const {
  int n = num_states_;
  std::vector<std::vector<int>> rev(n);
  for (int q = 0; q < n; ++q) {
    for (int c = 0; c < num_classes_; ++c) rev[NextByClass(q, c)].push_back(q);
  }
  std::vector<bool> seen(n, false);
  std::deque<int> queue;
  for (int q = 0; q < n; ++q) {
    if (accepting_[q]) {
      seen[q] = true;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int p : rev[q]) {
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return seen;
}

bool Dfa::IsEmpty() const {
  std::vector<bool> reach = ReachableStates();
  for (int q = 0; q < num_states_; ++q) {
    if (reach[q] && accepting_[q]) return false;
  }
  return true;
}

bool Dfa::IsUniversal() const { return Complemented().IsEmpty(); }

bool Dfa::IsFinite() const {
  // The language is infinite iff some *useful* state (reachable from start,
  // able to reach an accepting state) lies on a cycle within useful states.
  // Cycle existence is insensitive to edge multiplicity, so the walk goes
  // class by class.
  std::vector<bool> reach = ReachableStates();
  std::vector<bool> coreach = CoreachableStates();
  int n = num_states_;
  std::vector<bool> useful(n);
  for (int q = 0; q < n; ++q) useful[q] = reach[q] && coreach[q];

  // Iterative DFS with colors over the useful subgraph.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n, kWhite);
  for (int root = 0; root < n; ++root) {
    if (!useful[root] || color[root] != kWhite) continue;
    // Stack of (state, next class index to explore).
    std::vector<std::pair<int, int>> stack = {{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [q, i] = stack.back();
      if (i >= num_classes_) {
        color[q] = kBlack;
        stack.pop_back();
        continue;
      }
      int t = NextByClass(q, i++);
      if (!useful[t]) continue;
      if (color[t] == kGray) return false;  // cycle among useful states
      if (color[t] == kWhite) {
        color[t] = kGray;
        stack.push_back({t, 0});
      }
    }
  }
  return true;
}

namespace {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  if (a > Dfa::kCountSaturated - b) return Dfa::kCountSaturated;
  return a + b;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > Dfa::kCountSaturated / b) return Dfa::kCountSaturated;
  return a * b;
}

}  // namespace

uint64_t Dfa::CountLength(int n) const {
  // counts[q] = number of strings of the processed length ending in q.
  // Counting *does* depend on multiplicity, so each class edge is weighted
  // by the number of letters it stands for.
  std::vector<uint64_t> class_size(num_classes_, 0);
  for (int s = 0; s < alphabet_size_; ++s) ++class_size[letter_class_[s]];
  std::vector<uint64_t> counts(num_states_, 0);
  counts[start_] = 1;
  for (int step = 0; step < n; ++step) {
    std::vector<uint64_t> nxt(num_states_, 0);
    for (int q = 0; q < num_states_; ++q) {
      if (counts[q] == 0) continue;
      for (int c = 0; c < num_classes_; ++c) {
        int t = NextByClass(q, c);
        nxt[t] = SaturatingAdd(nxt[t], SaturatingMul(counts[q], class_size[c]));
      }
    }
    counts = std::move(nxt);
  }
  uint64_t total = 0;
  for (int q = 0; q < num_states_; ++q) {
    if (accepting_[q]) total = SaturatingAdd(total, counts[q]);
  }
  return total;
}

uint64_t Dfa::CountUpToLength(int n) const {
  uint64_t total = 0;
  for (int len = 0; len <= n; ++len) {
    total = SaturatingAdd(total, CountLength(len));
  }
  return total;
}

std::vector<std::vector<Symbol>> Dfa::Enumerate(int max_len,
                                                size_t max_count) const {
  std::vector<std::vector<Symbol>> out;
  std::vector<bool> coreach = CoreachableStates();
  if (!coreach[start_]) return out;

  // Shortlex: breadth-first over (state, word) pruned to co-reachable
  // states. Words are letter sequences, so this loop is inherently
  // letter-indexed.
  std::deque<std::pair<int, std::vector<Symbol>>> queue;
  queue.push_back({start_, {}});
  while (!queue.empty() && out.size() < max_count) {
    auto [q, w] = std::move(queue.front());
    queue.pop_front();
    if (accepting_[q]) out.push_back(w);
    if (static_cast<int>(w.size()) >= max_len) continue;
    for (int s = 0; s < alphabet_size_; ++s) {
      int t = Next(q, static_cast<Symbol>(s));
      if (!coreach[t]) continue;
      std::vector<Symbol> w2 = w;
      w2.push_back(static_cast<Symbol>(s));
      queue.push_back({t, std::move(w2)});
    }
  }
  return out;
}

std::optional<std::vector<Symbol>> Dfa::ShortestAccepted() const {
  // BFS from start recording the first-reached word (letter order keeps the
  // witness shortlex-minimal).
  std::vector<bool> seen(num_states_, false);
  std::deque<std::pair<int, std::vector<Symbol>>> queue;
  queue.push_back({start_, {}});
  seen[start_] = true;
  while (!queue.empty()) {
    auto [q, w] = std::move(queue.front());
    queue.pop_front();
    if (accepting_[q]) return w;
    for (int s = 0; s < alphabet_size_; ++s) {
      int t = Next(q, static_cast<Symbol>(s));
      if (seen[t]) continue;
      seen[t] = true;
      std::vector<Symbol> w2 = w;
      w2.push_back(static_cast<Symbol>(s));
      queue.push_back({t, std::move(w2)});
    }
  }
  return std::nullopt;
}

std::optional<int> Dfa::MaxAcceptedLength() const {
  if (!IsFinite()) return std::nullopt;
  std::vector<bool> reach = ReachableStates();
  std::vector<bool> coreach = CoreachableStates();
  int n = num_states_;
  std::vector<bool> useful(n);
  bool any = false;
  for (int q = 0; q < n; ++q) {
    useful[q] = reach[q] && coreach[q];
    any = any || useful[q];
  }
  if (!any) return -1;

  // The useful subgraph is a DAG (IsFinite). Longest path from start to an
  // accepting state via memoized DFS; path length only needs one edge per
  // class. memo[q] = longest suffix-path length ending at an accepting state
  // from q (-1 if none, which cannot happen for useful q).
  std::vector<int> memo(n, -2);  // -2 = unvisited
  // Iterative post-order.
  std::vector<std::pair<int, int>> stack = {{start_, 0}};
  if (!useful[start_]) return -1;
  while (!stack.empty()) {
    auto& [q, i] = stack.back();
    if (i == 0 && memo[q] != -2) {
      stack.pop_back();
      continue;
    }
    if (i < num_classes_) {
      int t = NextByClass(q, i++);
      if (useful[t] && memo[t] == -2) stack.push_back({t, 0});
      continue;
    }
    // All children done; compute.
    int best = accepting_[q] ? 0 : -1;
    for (int c = 0; c < num_classes_; ++c) {
      int t = NextByClass(q, c);
      if (useful[t] && memo[t] >= 0) best = std::max(best, memo[t] + 1);
    }
    memo[q] = best;
    stack.pop_back();
  }
  return memo[start_];
}

Dfa Dfa::Complemented() const {
  std::vector<bool> acc(accepting_.size());
  for (size_t q = 0; q < accepting_.size(); ++q) acc[q] = !accepting_[q];
  // Flipping acceptance leaves every transition column unchanged, so the
  // existing partition is passed through as the (already coarsest) hint.
  return Dfa(alphabet_size_, num_states_, start_, letter_class_, num_classes_,
             cnext_, std::move(acc));
}

int Dfa::ReachableRestriction(std::vector<int>* cnext, std::vector<bool>* acc,
                              int* num_states) const {
  std::vector<bool> reach = ReachableStates();
  std::vector<int> remap(num_states_, -1);
  int m = 0;
  for (int q = 0; q < num_states_; ++q) {
    if (reach[q]) remap[q] = m++;
  }
  cnext->assign(static_cast<size_t>(m) * num_classes_, 0);
  acc->assign(m, false);
  for (int q = 0; q < num_states_; ++q) {
    if (!reach[q]) continue;
    for (int c = 0; c < num_classes_; ++c) {
      (*cnext)[static_cast<size_t>(remap[q]) * num_classes_ + c] =
          remap[NextByClass(q, c)];
    }
    (*acc)[remap[q]] = accepting_[q];
  }
  *num_states = m;
  return remap[start_];
}

Dfa Dfa::CanonicalQuotient(int alphabet_size,
                           const std::vector<int>& letter_class,
                           int num_hint_classes, int num_states, int start,
                           const std::vector<int>& cnext,
                           const std::vector<bool>& accepting,
                           const std::vector<int>& part, int num_parts) {
  const int h = num_hint_classes;
  // Quotient transition function via one representative per block.
  std::vector<int> rep(num_parts, -1);
  for (int q = 0; q < num_states; ++q) {
    if (rep[part[q]] < 0) rep[part[q]] = q;
  }
  // Canonical renumbering: BFS over blocks from the start block, exploring
  // hint classes in increasing order. Hint classes are numbered by first
  // letter occurrence and same-class letters share targets, so this visits
  // blocks in exactly the order a dense BFS in letter order would — the
  // numbering is the same under either kernel. Every block contains a
  // reachable state, so the BFS covers all blocks; the resulting numbering
  // depends only on the quotient automaton, making equivalent inputs
  // structurally identical.
  std::vector<int> order(num_parts, -1);
  int assigned = 0;
  std::deque<int> queue;
  order[part[start]] = assigned++;
  queue.push_back(part[start]);
  while (!queue.empty()) {
    int b = queue.front();
    queue.pop_front();
    int q = rep[b];
    for (int c = 0; c < h; ++c) {
      int tb = part[cnext[static_cast<size_t>(q) * h + c]];
      if (order[tb] < 0) {
        order[tb] = assigned++;
        queue.push_back(tb);
      }
    }
  }
  assert(assigned == num_parts);

  std::vector<int> min_cnext(static_cast<size_t>(num_parts) * h, 0);
  std::vector<bool> min_acc(num_parts, false);
  for (int b = 0; b < num_parts; ++b) {
    int q = rep[b];
    for (int c = 0; c < h; ++c) {
      min_cnext[static_cast<size_t>(order[b]) * h + c] =
          order[part[cnext[static_cast<size_t>(q) * h + c]]];
    }
    min_acc[order[b]] = accepting[q];
  }
  return Dfa(alphabet_size, num_parts, order[part[start]], letter_class, h,
             std::move(min_cnext), std::move(min_acc));
}

Dfa Dfa::Minimized() const {
  obs::Span span("dfa.minimize");
  std::vector<int> rnext;
  std::vector<bool> accepting;
  int m = 0;
  int start = ReachableRestriction(&rnext, &accepting, &m);

  // Effective column table the refinement splits on. Splitting on a class is
  // equivalent to splitting on any of its letters (identical preimages), so
  // the condensed kernel refines over the C class columns; the dense
  // baseline expands them back to the |Σ| letter columns and reproduces the
  // pre-class behavior exactly.
  const bool dense = GetClassKernel() == ClassKernel::kDense;
  int k;
  std::vector<int> eff;
  std::vector<int> eff_letter_class;
  if (dense) {
    k = alphabet_size_;
    eff.resize(static_cast<size_t>(m) * k);
    for (int q = 0; q < m; ++q) {
      for (int s = 0; s < k; ++s) {
        eff[static_cast<size_t>(q) * k + s] =
            rnext[static_cast<size_t>(q) * num_classes_ + letter_class_[s]];
      }
    }
    eff_letter_class = IdentityLetterMap(k);
  } else {
    k = num_classes_;
    eff = std::move(rnext);
    eff_letter_class = letter_class_;
  }

  // Hopcroft partition refinement over the reachable restriction.
  //
  // Inverse transitions in CSR form per effective column: the sources of t
  // under column s are rev[rev_off[s * (m+1) + t] .. rev_off[s * (m+1) + t +
  // 1]).
  std::vector<int> rev_off(static_cast<size_t>(k) * (m + 1) + 1, 0);
  {
    for (int q = 0; q < m; ++q) {
      for (int s = 0; s < k; ++s) {
        int t = eff[static_cast<size_t>(q) * k + s];
        ++rev_off[static_cast<size_t>(s) * (m + 1) + t + 1];
      }
    }
    for (size_t i = 1; i < rev_off.size(); ++i) rev_off[i] += rev_off[i - 1];
  }
  std::vector<int> rev(static_cast<size_t>(m) * k);
  {
    std::vector<int> cursor(rev_off.begin(), rev_off.end() - 1);
    for (int q = 0; q < m; ++q) {
      for (int s = 0; s < k; ++s) {
        int t = eff[static_cast<size_t>(q) * k + s];
        rev[cursor[static_cast<size_t>(s) * (m + 1) + t]++] = q;
      }
    }
  }

  // Initial partition: accepting vs rejecting (skip an empty side).
  std::vector<int> block_of(m, 0);
  std::vector<std::vector<int>> blocks;
  {
    std::vector<int> acc_states, rej_states;
    for (int q = 0; q < m; ++q) {
      (accepting[q] ? acc_states : rej_states).push_back(q);
    }
    if (!acc_states.empty()) {
      for (int q : acc_states) block_of[q] = static_cast<int>(blocks.size());
      blocks.push_back(std::move(acc_states));
    }
    if (!rej_states.empty()) {
      for (int q : rej_states) block_of[q] = static_cast<int>(blocks.size());
      blocks.push_back(std::move(rej_states));
    }
  }

  // Worklist of (block, column) splitters. Seeding with every pair is
  // correct; the smaller-half rule below keeps the refinement O(n·k·log n).
  std::deque<std::pair<int, int>> worklist;
  std::vector<std::vector<bool>> in_worklist;
  for (size_t b = 0; b < blocks.size(); ++b) {
    in_worklist.emplace_back(k, true);
    for (int s = 0; s < k; ++s) worklist.emplace_back(static_cast<int>(b), s);
  }

  std::vector<bool> marked(m, false);
  std::vector<int> marked_states;
  while (!worklist.empty()) {
    auto [a, s] = worklist.front();
    worklist.pop_front();
    in_worklist[a][s] = false;

    // X = preimage of block a under column s.
    marked_states.clear();
    for (int t : blocks[a]) {
      int lo = rev_off[static_cast<size_t>(s) * (m + 1) + t];
      int hi = rev_off[static_cast<size_t>(s) * (m + 1) + t + 1];
      for (int i = lo; i < hi; ++i) {
        int q = rev[i];
        if (!marked[q]) {
          marked[q] = true;
          marked_states.push_back(q);
        }
      }
    }
    if (marked_states.empty()) continue;

    // Group the marked states by their current block.
    std::map<int, std::vector<int>> by_block;
    for (int q : marked_states) by_block[block_of[q]].push_back(q);

    for (auto& [b, hit] : by_block) {
      if (hit.size() == blocks[b].size()) continue;  // whole block marked
      // Split: unmarked states keep block id b, marked move to a new block.
      std::vector<int> rest;
      rest.reserve(blocks[b].size() - hit.size());
      for (int q : blocks[b]) {
        if (!marked[q]) rest.push_back(q);
      }
      int nb = static_cast<int>(blocks.size());
      blocks[b] = std::move(rest);
      for (int q : hit) block_of[q] = nb;
      blocks.push_back(std::move(hit));
      in_worklist.emplace_back(k, false);
      for (int c = 0; c < k; ++c) {
        if (in_worklist[b][c]) {
          // (b, c) is still pending; both halves must be processed.
          in_worklist[nb][c] = true;
          worklist.emplace_back(nb, c);
        } else {
          // Hopcroft's rule: it suffices to add the smaller half.
          int smaller = blocks[b].size() <= blocks[nb].size() ? b : nb;
          in_worklist[smaller][c] = true;
          worklist.emplace_back(smaller, c);
        }
      }
    }
    for (int q : marked_states) marked[q] = false;
  }

  int num_parts = static_cast<int>(blocks.size());
  span.Attr("in_states", num_states());
  span.Attr("out_states", num_parts);
  span.Attr("classes", num_classes_);
  obs::Count(obs::kDfaMinimizations);
  obs::Count(obs::kDfaStatesBuilt, num_parts);
  return CanonicalQuotient(alphabet_size_, eff_letter_class, k, m, start, eff,
                           accepting, block_of, num_parts);
}

Dfa Dfa::MinimizedMoore() const {
  obs::Span span("dfa.minimize");
  std::vector<int> rnext;
  std::vector<bool> accepting;
  int m = 0;
  int start = ReachableRestriction(&rnext, &accepting, &m);

  // Moore partition refinement: O(n^2 * |Σ|) worst case, signatures taken
  // letter by letter. Kept as the reference implementation that Minimized()
  // is differential-tested against under both class kernels.
  std::vector<int> part(m);
  for (int q = 0; q < m; ++q) part[q] = accepting[q] ? 1 : 0;
  int num_parts = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature of each state: (part, part of successors).
    std::map<std::vector<int>, int> sig_to_id;
    std::vector<int> new_part(m);
    for (int q = 0; q < m; ++q) {
      std::vector<int> sig;
      sig.reserve(alphabet_size_ + 1);
      sig.push_back(part[q]);
      for (int s = 0; s < alphabet_size_; ++s) {
        sig.push_back(part[rnext[static_cast<size_t>(q) * num_classes_ +
                                 letter_class_[s]]]);
      }
      auto [it, inserted] =
          sig_to_id.emplace(std::move(sig), static_cast<int>(sig_to_id.size()));
      new_part[q] = it->second;
      (void)inserted;
    }
    int new_num = static_cast<int>(sig_to_id.size());
    if (new_num != num_parts) {
      changed = true;
      num_parts = new_num;
    }
    part = std::move(new_part);
  }

  span.Attr("in_states", num_states());
  span.Attr("out_states", num_parts);
  obs::Count(obs::kDfaMinimizations);
  obs::Count(obs::kDfaStatesBuilt, num_parts);
  return CanonicalQuotient(alphabet_size_, letter_class_, num_classes_, m,
                           start, rnext, accepting, part, num_parts);
}

}  // namespace strq
