#ifndef STRQ_AUTOMATA_STORE_H_
#define STRQ_AUTOMATA_STORE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "base/status.h"

namespace strq {

// A handle to an interned, canonically-minimized, immutable DFA. Copying a
// DfaRef is a shared_ptr bump; the payload automaton is never mutated after
// interning, so handles can be cached and shared freely across evaluators
// and threads. Two refs produced by the same AutomatonStore have equal id()
// iff their automata accept the same language (canonical minimal DFAs are
// unique per language).
class DfaRef {
 public:
  DfaRef() = default;

  const Dfa& operator*() const { return *dfa_; }
  const Dfa* operator->() const { return dfa_.get(); }
  const std::shared_ptr<const Dfa>& shared() const { return dfa_; }

  // Intern identity: 0 for a default-constructed (null) ref, otherwise a
  // process-unique id that is never reused — not even across stores or
  // Clear() — so computed-table keys built from ids can never alias.
  uint64_t id() const { return id_; }
  explicit operator bool() const { return dfa_ != nullptr; }

 private:
  friend class AutomatonStore;
  DfaRef(std::shared_ptr<const Dfa> dfa, uint64_t id)
      : dfa_(std::move(dfa)), id_(id) {}

  std::shared_ptr<const Dfa> dfa_;
  uint64_t id_ = 0;
};

// Computed-table key: an operation tag, the intern ids of the operands, and
// op-specific scalar parameters (alphabet sizes, track indices, permutations).
// Callers above the automata layer (mta/) use this to memoize their own
// DFA-valued operations in the same store.
struct OpKey {
  int op = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  std::vector<int64_t> params;

  bool operator==(const OpKey& other) const {
    return op == other.op && a == other.a && b == other.b &&
           params == other.params;
  }
};

struct OpKeyHash {
  size_t operator()(const OpKey& key) const {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(static_cast<uint64_t>(key.op));
    mix(key.a);
    mix(key.b);
    for (int64_t p : key.params) mix(static_cast<uint64_t>(p));
    return static_cast<size_t>(h);
  }
};

// Hash-consing store for DFAs, in the style of a BDD package's unique and
// computed tables:
//
//  * The unique table interns canonically-minimized DFAs by structural hash,
//    so every regular language appearing in a computation is represented by
//    exactly one immutable Dfa object, addressed by a cheap DfaRef handle.
//  * The computed table memoizes DFA-valued operations keyed on the intern
//    ids of their operands: Intersect/Union/Difference/Complemented here,
//    and the mta/ track operations (cylindrify, project, permute,
//    ValidConvolutions) through the generic Lookup/Memoize interface.
//
// Because interned DFAs are immutable and ids are never reused, memoized
// results can never be invalidated — the computed table needs no epochs.
//
// All methods are const and thread-safe. Both tables are lock-striped (the
// unique table by structural hash, the computed/decided tables by OpKey
// hash) so concurrent serving sessions sharing one store contend only when
// they touch the same bucket neighborhood; automata are always built outside
// any lock, and a racing duplicate build is resolved by the unique table
// (first intern wins, the loser's copy is dropped).
//
// Binary ops honor per-request state budgets: an explicit `max_states`
// argument (or, at the default, the installed RequestBudget's
// max_product_states) bounds the product kernel, and a budget-exhausted
// verdict is memoized SEPARATELY, keyed with the effective budget — a
// truncation under a small per-request budget is never served to an
// unbudgeted caller, while a repeat of the same doomed budgeted request
// fails fast.
//
// A store constructed with enable_caching=false performs the same
// canonicalization but remembers nothing — it is used to measure the
// ablation and by the store-on/off differential tests.
//
// Hit/miss counts are kept in always-on internal stats and also forwarded
// to the obs metrics (store.unique_{hits,misses}, store.op_{hits,misses})
// when tracing is enabled, so they surface in EXPLAIN ANALYZE and bench
// JSON.
class AutomatonStore {
 public:
  // Operation tags for computed-table keys. The automata-level binary ops
  // are used internally; the mta/ tags are claimed here so all users of one
  // store draw from a single namespace.
  enum OpTag : int {
    kOpIntersect = 1,
    kOpUnion = 2,
    kOpDifference = 3,
    kOpComplement = 4,
    kOpValidConvolutions = 5,
    kOpCylindrify = 6,
    kOpProject = 7,
    kOpPermute = 8,
    // Boolean-valued: memoized emptiness decisions (IsIntersectionEmpty).
    kOpIntersectEmpty = 9,
  };

  struct Stats {
    int64_t unique_hits = 0;
    int64_t unique_misses = 0;
    int64_t op_hits = 0;
    int64_t op_misses = 0;
    // Budgeted binary ops that failed fast off the exhausted memo instead of
    // re-running a doomed product.
    int64_t exhausted_hits = 0;
    // Bytes currently RETAINED by this store: interned DFA payloads
    // (condensed transition tables, via TableBytesCondensed) plus table
    // entry overheads. Unlike the counters this is a gauge — Clear() and
    // the destructor return it to zero, and the same deltas are mirrored
    // into the process-wide obs::MemCategory::kStore gauge, so an eviction
    // policy can watch one number across all stores. Dedup never
    // double-counts: a unique-table hit adds nothing.
    int64_t bytes = 0;
  };

  explicit AutomatonStore(bool enable_caching = true)
      : caching_enabled_(enable_caching) {}
  ~AutomatonStore();
  AutomatonStore(const AutomatonStore&) = delete;
  AutomatonStore& operator=(const AutomatonStore&) = delete;

  // The process-wide default store, shared by everything that does not
  // explicitly thread its own (evaluators, safety deciders, the shell).
  static const AutomatonStore& Default();

  bool caching_enabled() const { return caching_enabled_; }

  // Minimizes (canonically) and interns. The returned handle's id is stable
  // for the lifetime of the store: interning a DFA for the same language
  // returns the same id and the same underlying object.
  DfaRef Intern(const Dfa& dfa) const;

  // Memoized language operations. Operands may come from a different store;
  // they are re-interned here first (cheap when already canonical).
  // `max_states` bounds the product kernel: 0 resolves to the installed
  // RequestBudget's max_product_states (or the library default when no
  // budget is installed). Successful results are exact regardless of budget
  // and land in the shared computed table; a ResourceExhausted verdict is
  // memoized under a budget-specific key so it is replayed only to callers
  // with the same effective budget.
  Result<DfaRef> Intersect(const DfaRef& a, const DfaRef& b,
                           int max_states = 0) const;
  Result<DfaRef> Union(const DfaRef& a, const DfaRef& b,
                       int max_states = 0) const;
  Result<DfaRef> Difference(const DfaRef& a, const DfaRef& b,
                            int max_states = 0) const;
  DfaRef Complemented(const DfaRef& a) const;

  // Is L(a) ∩ L(b) empty? Decided without building the product: a pair
  // worklist early-exits at the first mutually-accepting pair. Serves the
  // safety deciders and the planner's cost probes. If the intersection is
  // already in the computed table its emptiness is read off directly; the
  // boolean verdict itself is memoized under kOpIntersectEmpty.
  Result<bool> IsIntersectionEmpty(const DfaRef& a, const DfaRef& b) const;

  // Generic computed-table access for callers with their own DFA-valued
  // operations (the mta layer). Lookup counts a hit or a miss; Memoize is a
  // no-op when caching is disabled.
  std::optional<DfaRef> Lookup(const OpKey& key) const;
  void Memoize(const OpKey& key, const DfaRef& value) const;

  Stats stats() const;
  size_t unique_size() const;
  size_t computed_size() const;

  // Drops both tables (handed-out refs stay valid; ids are not reused).
  void Clear() const;

 private:
  static constexpr int kNumStripes = 8;

  struct UniqueStripe {
    std::mutex mu;
    // Structural hash -> interned entries with that hash (collisions
    // resolved by full structural comparison).
    std::unordered_multimap<uint64_t,
                            std::pair<uint64_t, std::shared_ptr<const Dfa>>>
        entries;
  };
  struct OpStripe {
    std::mutex mu;
    std::unordered_map<OpKey, DfaRef, OpKeyHash> computed;
    // Boolean verdicts (kOpIntersectEmpty) live beside the DFA-valued
    // computed table; same key space, same lifetime rules.
    std::unordered_map<OpKey, bool, OpKeyHash> decided;
    // Budget-exhausted binary ops, keyed {op, a, b, {effective_budget}}.
    // Disjoint from `computed` by construction: canonical result keys carry
    // empty params. Never consulted on the unbudgeted path.
    std::unordered_set<OpKey, OpKeyHash> exhausted;
  };

  UniqueStripe& UniqueStripeFor(uint64_t hash) const {
    return unique_stripes_[hash % kNumStripes];
  }
  OpStripe& OpStripeFor(const OpKey& key) const {
    return op_stripes_[OpKeyHash{}(key) % kNumStripes];
  }

  void AddBytes(int64_t delta) const;
  void CountUnique(bool hit) const;
  void CountOp(bool hit) const;

  // Interns an already canonically-minimized DFA.
  DfaRef InternCanonical(Dfa canonical) const;
  Result<DfaRef> BinaryOp(int op, const DfaRef& a, const DfaRef& b,
                          int max_states) const;

  bool caching_enabled_;
  mutable std::array<UniqueStripe, kNumStripes> unique_stripes_;
  mutable std::array<OpStripe, kNumStripes> op_stripes_;
  mutable std::mutex stats_mu_;
  mutable Stats stats_;
};

}  // namespace strq

#endif  // STRQ_AUTOMATA_STORE_H_
