#include "automata/ops.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/budget.h"
#include "obs/trace.h"

namespace strq {

namespace {

// Worklist loops poll the per-request deadline once per this many popped
// states: frequent enough that a blowing-up construction stops promptly,
// rare enough that the steady_clock read never shows up in profiles.
constexpr size_t kDeadlineStride = 256;

inline Status DeadlineAt(size_t i) {
  if ((i & (kDeadlineStride - 1)) == 0) return CheckDeadline();
  return Status::Ok();
}

// Resolves a state budget against the installed request budget: a caller
// passing the compile-time default gets the per-request ceiling (when one is
// set), while an explicit non-default argument always wins. `cap` keeps the
// smaller determinization default from being raised past its library
// ceiling by a product-sized request budget.
inline int ResolveBudget(int max_states, int library_default, int cap) {
  if (max_states != library_default) return max_states;
  return std::min(cap, CurrentMaxProductStates(library_default));
}

}  // namespace

Result<Dfa> Determinize(const Nfa& nfa, int max_states) {
  max_states = ResolveBudget(max_states, kDefaultMaxDfaStates,
                             kDefaultMaxDfaStates);
  if (nfa.num_states() == 0) {
    return Dfa::EmptyLanguage(nfa.alphabet_size());
  }
  obs::Span span("dfa.determinize");
  span.Attr("nfa_states", nfa.num_states());
  int k = nfa.alphabet_size();
  std::map<std::vector<int>, int> ids;
  std::vector<std::vector<int>> subsets;
  std::vector<std::vector<int>> next;
  std::vector<bool> accepting;

  auto intern = [&](std::vector<int> subset) -> int {
    auto [it, inserted] = ids.emplace(subset, static_cast<int>(subsets.size()));
    if (inserted) {
      subsets.push_back(std::move(subset));
      next.emplace_back(k, -1);
      accepting.push_back(false);
    }
    return it->second;
  };

  int start = intern(nfa.EpsilonClosure({nfa.start()}));
  for (size_t i = 0; i < subsets.size(); ++i) {
    if (static_cast<int>(subsets.size()) > max_states) {
      return ResourceExhaustedError("determinization exceeded state budget");
    }
    STRQ_RETURN_IF_ERROR(DeadlineAt(i));
    // Mark accepting.
    for (int q : subsets[i]) {
      if (nfa.IsAccepting(q)) {
        accepting[i] = true;
        break;
      }
    }
    for (int s = 0; s < k; ++s) {
      std::vector<int> moved;
      for (int q : subsets[i]) {
        const std::vector<int>& ts = nfa.Targets(q, static_cast<Symbol>(s));
        moved.insert(moved.end(), ts.begin(), ts.end());
      }
      std::sort(moved.begin(), moved.end());
      moved.erase(std::unique(moved.begin(), moved.end()), moved.end());
      int target = intern(nfa.EpsilonClosure(std::move(moved)));
      next[i][s] = target;
    }
  }
  span.Attr("dfa_states", static_cast<int64_t>(subsets.size()));
  obs::Count(obs::kDfaDeterminizations);
  obs::Count(obs::kDfaStatesBuilt, static_cast<int64_t>(subsets.size()));
  return Dfa::Create(k, start, std::move(next), std::move(accepting));
}

Result<Dfa> DeterminizeClassed(
    int alphabet_size, const std::vector<int>& letter_class, int num_classes,
    int start, const std::vector<bool>& accepting,
    const std::vector<std::vector<std::vector<int>>>& targets,
    int max_states) {
  max_states = ResolveBudget(max_states, kDefaultMaxDfaStates,
                             kDefaultMaxDfaStates);
  int n = static_cast<int>(targets.size());
  if (n == 0) return Dfa::EmptyLanguage(alphabet_size);
  obs::Span span("dfa.determinize");
  span.Attr("nfa_states", n);
  span.Attr("classes", num_classes);
  std::map<std::vector<int>, int> ids;
  std::vector<std::vector<int>> subsets;
  std::vector<int> cnext;
  std::vector<bool> dfa_accepting;

  auto intern = [&](std::vector<int> subset) -> int {
    auto [it, inserted] = ids.emplace(subset, static_cast<int>(subsets.size()));
    if (inserted) subsets.push_back(std::move(subset));
    return it->second;
  };

  int dstart = intern({start});
  for (size_t i = 0; i < subsets.size(); ++i) {
    if (static_cast<int>(subsets.size()) > max_states) {
      return ResourceExhaustedError("determinization exceeded state budget");
    }
    STRQ_RETURN_IF_ERROR(DeadlineAt(i));
    bool acc = false;
    for (int q : subsets[i]) acc = acc || accepting[q];
    dfa_accepting.push_back(acc);
    for (int c = 0; c < num_classes; ++c) {
      std::vector<int> moved;
      for (int q : subsets[i]) {
        const std::vector<int>& ts = targets[q][c];
        moved.insert(moved.end(), ts.begin(), ts.end());
      }
      std::sort(moved.begin(), moved.end());
      moved.erase(std::unique(moved.begin(), moved.end()), moved.end());
      cnext.push_back(intern(std::move(moved)));
    }
  }
  int m = static_cast<int>(subsets.size());
  span.Attr("dfa_states", m);
  obs::Count(obs::kDfaDeterminizations);
  obs::Count(obs::kDfaStatesBuilt, m);
  return Dfa::CreateCondensed(alphabet_size, m, dstart, letter_class,
                              num_classes, std::move(cnext),
                              std::move(dfa_accepting));
}

namespace {

std::atomic<ProductKernel> g_product_kernel{ProductKernel::kReachable};

// The joint refinement of the operands' symbol partitions: letters grouped
// by their (class-in-a, class-in-b) pair. All letters of a joint class take
// identical target pairs from any state pair, so the product only needs one
// transition computation per joint class. Joint classes are numbered by
// first letter occurrence, which makes the condensed BFS below discover
// pairs in exactly the order the dense letter-order BFS would.
struct JointPartition {
  std::vector<int> letter_class;        // letter -> joint class
  std::vector<std::pair<int, int>> cc;  // joint class -> (class_a, class_b)
};

JointPartition JoinPartitions(const Dfa& a, const Dfa& b) {
  JointPartition jp;
  int k = a.alphabet_size();
  jp.letter_class.resize(k);
  std::unordered_map<int64_t, int> ids;
  for (int s = 0; s < k; ++s) {
    int ca = a.LetterClass(static_cast<Symbol>(s));
    int cb = b.LetterClass(static_cast<Symbol>(s));
    int64_t key = static_cast<int64_t>(ca) * b.num_classes() + cb;
    auto [it, inserted] = ids.emplace(key, static_cast<int>(jp.cc.size()));
    if (inserted) jp.cc.emplace_back(ca, cb);
    jp.letter_class[s] = it->second;
  }
  return jp;
}

// Reachable-only product, dense baseline: a BFS worklist from (start_a,
// start_b) interning state pairs in discovery order, so only the reachable
// region of the |A|x|B| pair space is ever allocated. Rows are appended in
// pop order, which coincides with the dense ids, so the flat transition
// table needs no final permutation.
Result<Dfa> ProductReachableDense(const Dfa& a, const Dfa& b,
                                  bool (*combine)(bool, bool),
                                  int max_states) {
  int k = a.alphabet_size();
  int64_t nb = b.num_states();
  std::unordered_map<int64_t, int> ids;
  std::vector<int64_t> pairs;
  auto intern = [&](int qa, int qb) -> int {
    int64_t key = static_cast<int64_t>(qa) * nb + qb;
    auto [it, inserted] = ids.emplace(key, static_cast<int>(pairs.size()));
    if (inserted) pairs.push_back(key);
    return it->second;
  };
  (void)intern(a.start(), b.start());
  std::vector<int> next;
  std::vector<bool> accepting;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (static_cast<int>(pairs.size()) > max_states) {
      return ResourceExhaustedError("product exceeded state budget");
    }
    STRQ_RETURN_IF_ERROR(DeadlineAt(i));
    int qa = static_cast<int>(pairs[i] / nb);
    int qb = static_cast<int>(pairs[i] % nb);
    accepting.push_back(combine(a.IsAccepting(qa), b.IsAccepting(qb)));
    for (int s = 0; s < k; ++s) {
      next.push_back(intern(a.Next(qa, static_cast<Symbol>(s)),
                            b.Next(qb, static_cast<Symbol>(s))));
    }
  }
  int n = static_cast<int>(pairs.size());
  obs::Count(obs::kDfaStatesBuilt, n);
  obs::Count(obs::kDfaProductStatesExplored, n);
  obs::Count(obs::kDfaProductTransitions, static_cast<int64_t>(n) * k);
  return Dfa::CreateFlat(k, n, 0, std::move(next), std::move(accepting));
}

// Reachable-only product over the joint refinement: per popped pair the
// worklist computes one target pair per joint class instead of one per
// letter, and the result is assembled condensed with the joint partition as
// hint — the dense letter axis is never touched beyond the O(|Σ|) letter
// map. Produces a Dfa structurally identical to the dense kernel's (same
// pair discovery order, and the Dfa constructor re-canonicalizes the
// partition either way).
Result<Dfa> ProductReachableCondensed(const Dfa& a, const Dfa& b,
                                      bool (*combine)(bool, bool),
                                      int max_states) {
  JointPartition jp = JoinPartitions(a, b);
  int nj = static_cast<int>(jp.cc.size());
  int64_t nb = b.num_states();
  std::unordered_map<int64_t, int> ids;
  std::vector<int64_t> pairs;
  auto intern = [&](int qa, int qb) -> int {
    int64_t key = static_cast<int64_t>(qa) * nb + qb;
    auto [it, inserted] = ids.emplace(key, static_cast<int>(pairs.size()));
    if (inserted) pairs.push_back(key);
    return it->second;
  };
  (void)intern(a.start(), b.start());
  std::vector<int> cnext;
  std::vector<bool> accepting;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (static_cast<int>(pairs.size()) > max_states) {
      return ResourceExhaustedError("product exceeded state budget");
    }
    STRQ_RETURN_IF_ERROR(DeadlineAt(i));
    int qa = static_cast<int>(pairs[i] / nb);
    int qb = static_cast<int>(pairs[i] % nb);
    accepting.push_back(combine(a.IsAccepting(qa), b.IsAccepting(qb)));
    for (int j = 0; j < nj; ++j) {
      cnext.push_back(intern(a.NextByClass(qa, jp.cc[j].first),
                             b.NextByClass(qb, jp.cc[j].second)));
    }
  }
  int n = static_cast<int>(pairs.size());
  obs::Count(obs::kDfaStatesBuilt, n);
  obs::Count(obs::kDfaProductStatesExplored, n);
  obs::Count(obs::kDfaProductTransitions, static_cast<int64_t>(n) * nj);
  return Dfa::CreateCondensed(a.alphabet_size(), n, 0,
                              std::move(jp.letter_class), nj, std::move(cnext),
                              std::move(accepting));
}

Result<Dfa> ProductReachable(const Dfa& a, const Dfa& b,
                             bool (*combine)(bool, bool), int max_states) {
  return GetClassKernel() == ClassKernel::kDense
             ? ProductReachableDense(a, b, combine, max_states)
             : ProductReachableCondensed(a, b, combine, max_states);
}

// Eager reference kernel: allocates the full |A|x|B| pair space up front.
// Kept for differential testing and the ablation bench; sizes computed in
// 64 bits so huge operands fail the budget check instead of wrapping.
Result<Dfa> ProductEager(const Dfa& a, const Dfa& b,
                         bool (*combine)(bool, bool), int max_states) {
  int k = a.alphabet_size();
  int nb = b.num_states();
  int64_t n64 = static_cast<int64_t>(a.num_states()) * nb;
  if (n64 > max_states) {
    return ResourceExhaustedError("product exceeded state budget");
  }
  int n = static_cast<int>(n64);
  auto encode = [nb](int qa, int qb) { return qa * nb + qb; };
  obs::Count(obs::kDfaStatesBuilt, n);
  obs::Count(obs::kDfaProductStatesExplored, n);
  obs::Count(obs::kDfaProductTransitions, static_cast<int64_t>(n) * k);
  std::vector<int> next(static_cast<size_t>(n) * k);
  std::vector<bool> accepting(n);
  for (int qa = 0; qa < a.num_states(); ++qa) {
    STRQ_RETURN_IF_ERROR(DeadlineAt(static_cast<size_t>(qa)));
    for (int qb = 0; qb < nb; ++qb) {
      int q = encode(qa, qb);
      accepting[q] = combine(a.IsAccepting(qa), b.IsAccepting(qb));
      for (int s = 0; s < k; ++s) {
        next[static_cast<size_t>(q) * k + s] =
            encode(a.Next(qa, static_cast<Symbol>(s)),
                   b.Next(qb, static_cast<Symbol>(s)));
      }
    }
  }
  return Dfa::CreateFlat(k, n, encode(a.start(), b.start()), std::move(next),
                         std::move(accepting));
}

// Generic product DFA with a boolean combiner on acceptance.
Result<Dfa> Product(const Dfa& a, const Dfa& b, bool (*combine)(bool, bool),
                    int max_states) {
  if (a.alphabet_size() != b.alphabet_size()) {
    return InvalidArgumentError("product of DFAs over different alphabets");
  }
  max_states = ResolveBudget(max_states, kDefaultMaxProductStates,
                             kDefaultMaxProductStates);
  obs::Span span("dfa.product");
  span.Attr("a_states", a.num_states());
  span.Attr("b_states", b.num_states());
  obs::Count(obs::kDfaProducts);
  obs::Count(obs::kDfaProductStatesAllocated,
             static_cast<int64_t>(a.num_states()) * b.num_states());
  Result<Dfa> out =
      GetProductKernel() == ProductKernel::kEager
          ? ProductEager(a, b, combine, max_states)
          : ProductReachable(a, b, combine, max_states);
  if (out.ok()) span.Attr("states_explored", out->num_states());
  return out;
}

// Decides emptiness of the combined language on the fly: walks reachable
// pairs and stops at the first pair where `combine` accepts. Never builds a
// product DFA; the visited set is the only allocation.
Result<bool> ProductEmpty(const Dfa& a, const Dfa& b,
                          bool (*combine)(bool, bool)) {
  if (a.alphabet_size() != b.alphabet_size()) {
    return InvalidArgumentError("product of DFAs over different alphabets");
  }
  obs::Count(obs::kDfaProducts);
  obs::Count(obs::kDfaProductStatesAllocated,
             static_cast<int64_t>(a.num_states()) * b.num_states());
  // The decision only needs one successor pair per joint class; the dense
  // baseline walks raw letters instead.
  const bool dense = GetClassKernel() == ClassKernel::kDense;
  int k = a.alphabet_size();
  JointPartition jp;
  if (!dense) jp = JoinPartitions(a, b);
  const int cols = dense ? k : static_cast<int>(jp.cc.size());
  int64_t nb = b.num_states();
  std::unordered_map<int64_t, int> seen;
  std::vector<int64_t> pairs;
  auto visit = [&](int qa, int qb) {
    int64_t key = static_cast<int64_t>(qa) * nb + qb;
    if (seen.emplace(key, 0).second) pairs.push_back(key);
  };
  visit(a.start(), b.start());
  for (size_t i = 0; i < pairs.size(); ++i) {
    STRQ_RETURN_IF_ERROR(DeadlineAt(i));
    int qa = static_cast<int>(pairs[i] / nb);
    int qb = static_cast<int>(pairs[i] % nb);
    if (combine(a.IsAccepting(qa), b.IsAccepting(qb))) {
      obs::Count(obs::kDfaProductStatesExplored,
                 static_cast<int64_t>(pairs.size()));
      obs::Count(obs::kDfaProductTransitions,
                 static_cast<int64_t>(pairs.size()) * cols);
      obs::Count(obs::kDfaEarlyExits);
      return false;
    }
    if (dense) {
      for (int s = 0; s < k; ++s) {
        visit(a.Next(qa, static_cast<Symbol>(s)),
              b.Next(qb, static_cast<Symbol>(s)));
      }
    } else {
      for (const auto& [ca, cb] : jp.cc) {
        visit(a.NextByClass(qa, ca), b.NextByClass(qb, cb));
      }
    }
  }
  obs::Count(obs::kDfaProductStatesExplored,
             static_cast<int64_t>(pairs.size()));
  obs::Count(obs::kDfaProductTransitions,
             static_cast<int64_t>(pairs.size()) * cols);
  return true;
}

}  // namespace

ProductKernel GetProductKernel() {
  return g_product_kernel.load(std::memory_order_relaxed);
}

void SetProductKernel(ProductKernel kernel) {
  g_product_kernel.store(kernel, std::memory_order_relaxed);
}

Result<Dfa> Intersect(const Dfa& a, const Dfa& b, int max_states) {
  return Product(
      a, b, [](bool x, bool y) { return x && y; }, max_states);
}

Result<Dfa> Union(const Dfa& a, const Dfa& b, int max_states) {
  return Product(
      a, b, [](bool x, bool y) { return x || y; }, max_states);
}

Result<Dfa> Difference(const Dfa& a, const Dfa& b, int max_states) {
  return Product(
      a, b, [](bool x, bool y) { return x && !y; }, max_states);
}

Result<bool> IntersectionEmpty(const Dfa& a, const Dfa& b) {
  return ProductEmpty(a, b, [](bool x, bool y) { return x && y; });
}

Result<bool> Equivalent(const Dfa& a, const Dfa& b) {
  return ProductEmpty(a, b, [](bool x, bool y) { return x != y; });
}

Result<bool> Subset(const Dfa& a, const Dfa& b) {
  return ProductEmpty(a, b, [](bool x, bool y) { return x && !y; });
}

Result<Dfa> Reverse(const Dfa& a, int max_states) {
  Nfa rev(a.alphabet_size());
  for (int q = 0; q < a.num_states(); ++q) rev.AddState();
  int new_start = rev.AddState();
  rev.SetStart(new_start);
  for (int q = 0; q < a.num_states(); ++q) {
    for (int s = 0; s < a.alphabet_size(); ++s) {
      rev.AddTransition(a.Next(q, static_cast<Symbol>(s)),
                        static_cast<Symbol>(s), q);
    }
    if (a.IsAccepting(q)) rev.AddEpsilon(new_start, q);
  }
  rev.SetAccepting(a.start());
  return Determinize(rev, max_states);
}

Dfa LeftQuotient(const Dfa& d, Symbol a) {
  std::vector<std::vector<int>> next;
  std::vector<bool> accepting;
  for (int q = 0; q < d.num_states(); ++q) {
    std::vector<int> row(d.alphabet_size());
    for (int s = 0; s < d.alphabet_size(); ++s) {
      row[s] = d.Next(q, static_cast<Symbol>(s));
    }
    next.push_back(std::move(row));
    accepting.push_back(d.IsAccepting(q));
  }
  Result<Dfa> out = Dfa::Create(d.alphabet_size(), d.Next(d.start(), a),
                                std::move(next), std::move(accepting));
  // Construction cannot fail: inputs come from a valid DFA.
  return *std::move(out);
}

Result<Dfa> PrependLetter(const Dfa& d, Symbol a) {
  Nfa nfa(d.alphabet_size());
  for (int q = 0; q < d.num_states(); ++q) {
    nfa.AddState();
    nfa.SetAccepting(q, d.IsAccepting(q));
  }
  for (int q = 0; q < d.num_states(); ++q) {
    for (int s = 0; s < d.alphabet_size(); ++s) {
      nfa.AddTransition(q, static_cast<Symbol>(s),
                        d.Next(q, static_cast<Symbol>(s)));
    }
  }
  int fresh = nfa.AddState();
  nfa.AddTransition(fresh, a, d.start());
  nfa.SetStart(fresh);
  return Determinize(nfa);
}

Dfa PrefixClosureLang(const Dfa& d) {
  // A prefix u is in the closure iff from δ(start, u) an accepting state is
  // reachable. So: mark all co-reachable states accepting. We recompute
  // co-reachability locally to keep Dfa's internals private.
  int n = d.num_states();
  std::vector<std::vector<int>> rev(n);
  std::vector<std::vector<int>> next(n);
  std::vector<bool> accepting(n);
  for (int q = 0; q < n; ++q) {
    std::vector<int> row(d.alphabet_size());
    for (int s = 0; s < d.alphabet_size(); ++s) {
      row[s] = d.Next(q, static_cast<Symbol>(s));
      rev[row[s]].push_back(q);
    }
    next[q] = std::move(row);
    accepting[q] = d.IsAccepting(q);
  }
  std::vector<bool> coreach(n, false);
  std::vector<int> stack;
  for (int q = 0; q < n; ++q) {
    if (accepting[q]) {
      coreach[q] = true;
      stack.push_back(q);
    }
  }
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    for (int p : rev[q]) {
      if (!coreach[p]) {
        coreach[p] = true;
        stack.push_back(p);
      }
    }
  }
  for (int q = 0; q < n; ++q) accepting[q] = coreach[q];
  Result<Dfa> out =
      Dfa::Create(d.alphabet_size(), d.start(), std::move(next),
                  std::move(accepting));
  return *std::move(out);
}

}  // namespace strq
