// Sparse Levenshtein automata over an interned alphabet: the NFA whose
// language is every string within bounded edit distance of a fixed word,
// kept as a sparse vector of (offset, edits) pairs, plus an on-the-fly
// determinization with a signature-keyed state cache that yields a complete
// Dfa over the base alphabet. This is the SparseAutomaton → DFA-cache
// pattern (RediSearch levenshtein.h) referenced by ROADMAP item 3; the
// resulting DFA backs the `~k` similarity predicate in both engines and the
// guard automata of the trie-guided candidate scan.
//
// Bounded-edit-distance neighborhoods are finite languages, hence star-free,
// hence inside the paper's fragment S — the signature checker admits `~k`
// atoms on that basis.

#ifndef STRQ_AUTOMATA_LEVENSHTEIN_H_
#define STRQ_AUTOMATA_LEVENSHTEIN_H_

#include <string>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "base/alphabet.h"
#include "base/status.h"

namespace strq {

// The NFA for { v : edit_distance(v, word) <= max_edits }, with states kept
// sparse: a state is the antichain of (offset, edits) pairs that survive
// subsumption ((i,e) subsumes (j,f) when e <= f - |i - j|: anything f edits
// can still do from offset j, e edits can do from offset i). Offsets index
// into `word`; edits counts consumed budget. All vectors are sorted by
// offset, so equal states compare equal componentwise — that makes the
// sparse vector itself the signature key for determinization.
class SparseLevenshtein {
 public:
  // One NFA position: `offset` characters of the word matched so far using
  // `edits` of the budget.
  struct Pos {
    int offset;
    int edits;
    friend bool operator==(const Pos& a, const Pos& b) {
      return a.offset == b.offset && a.edits == b.edits;
    }
  };
  using State = std::vector<Pos>;

  SparseLevenshtein(std::vector<Symbol> word, int max_edits);

  State Start() const;

  // The successor state on input symbol `c` (match / substitute / insert /
  // delete-then-match), re-sparsified. An empty result is the dead sink.
  State Step(const State& state, Symbol c) const;

  // Whether the state can accept here: some position can delete the
  // remaining word suffix within its leftover budget.
  bool IsAccepting(const State& state) const;

  int word_size() const { return static_cast<int>(word_.size()); }
  int max_edits() const { return max_edits_; }

 private:
  std::vector<Symbol> word_;
  int max_edits_;
};

// Determinizes the sparse NFA for `word` (which must encode over `alphabet`)
// into a complete DFA over the base alphabet, creating subset states only as
// reachable and deduplicating them through a signature-keyed cache. The
// result is NOT minimized or interned — callers that want canonical identity
// route it through the AutomatonStore (AtomCache::CompiledSimilarity does).
Result<Dfa> LevenshteinDfa(const Alphabet& alphabet, const std::string& word,
                           int max_edits);

// Plain banded dynamic program: edit_distance(a, b) <= max_edits. Engine B
// evaluates `~k` atoms on ground strings with this — no automaton needed —
// and the differential tests pit it against the compiled DFA.
bool WithinEditDistance(const std::string& a, const std::string& b,
                        int max_edits);

}  // namespace strq

#endif  // STRQ_AUTOMATA_LEVENSHTEIN_H_
