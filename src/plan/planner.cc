#include "plan/planner.h"

#include <utility>

#include "base/budget.h"
#include "logic/simplify.h"
#include "obs/trace.h"
#include "plan/cost_model.h"
#include "plan/rules.h"

namespace strq {
namespace plan {

namespace {

// Fixed charge for one cache entry (map node, vector slot, the shared
// formula handles); the variable part is the pretty-printed plan text. As
// with the store and atom-cache gauges the point is proportionality and
// exact conservation, not allocator-faithful byte counts.
constexpr int64_t kPlanEntryBytes = 128;

int64_t PlanEntryBytes(const PlannedQuery& planned) {
  return kPlanEntryBytes + static_cast<int64_t>(planned.pretty.size());
}

}  // namespace

Planner::Planner(PlannerOptions options) : options_(options) {}

Planner::~Planner() {
  // Local planners come and go; return their retained bytes to the
  // process-wide gauge so it conserves.
  obs::MemAdd(obs::MemCategory::kPlanCache, -stats_.bytes);
}

uint64_t Planner::CacheKey(const FormulaPtr& f, const Database* db) const {
  uint64_t h = StructuralHash(f);
  // The cost model (and hence reordering) depends on the database contents;
  // revisions are process-unique and never reused, so stale plans are
  // simply never looked up again.
  uint64_t rev = db != nullptr ? static_cast<uint64_t>(db->revision()) : 0;
  h ^= rev + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

PlannedQuery Planner::PlanUncached(const FormulaPtr& f, const Database* db,
                                   const AtomCache* cache) const {
  PlannedQuery out;
  out.formula = f;
  if (!options_.enable) return out;

  // Rule 0 (AST level): the simplify.h passes — constant folding,
  // double-negation and idempotence — are the planner's fold rule.
  FormulaPtr ast = f;
  int64_t fired = 0;
  if (options_.enable_fold) {
    FormulaPtr simplified = Simplify(ast);
    if (!StructurallyEqual(simplified, ast)) ++fired;
    ast = std::move(simplified);
  }

  PlanStore store;
  RewriteContext ctx{&store, 0};
  const PlanNode* root = Lower(store, ast);
  if (options_.enable_negation_pushdown) root = PushNegations(ctx, root);
  if (options_.enable_miniscope) root = Miniscope(ctx, root);
  if (options_.enable_prune) root = PruneDead(ctx, root, cache);
  CostModel cost(db, cache);
  if (options_.enable_reorder) root = Reorder(ctx, root, cost);

  out.estimated_states = cost.Annotate(root);
  out.rules_fired = fired + ctx.fired;
  out.shared_subplans = store.shared_hits();
  out.pretty = Pretty(root);
  auto folds = std::make_shared<std::unordered_set<const Formula*>>();
  out.formula = Render(root, folds.get());
  out.parallel_folds = std::move(folds);
  return out;
}

PlannedQuery Planner::Plan(const FormulaPtr& f, const Database* db,
                           const AtomCache* cache) {
  obs::Span span("plan");
  // A request whose deadline already passed gets the identity plan: the
  // evaluator aborts at its next deadline poll anyway, so spending rewrite
  // time (or polluting the cache-hit stats) on it helps nobody.
  if (const RequestBudget* budget = CurrentRequestBudget();
      budget != nullptr && budget->Expired()) {
    PlannedQuery out;
    out.formula = f;
    return out;
  }
  if (!options_.enable || !options_.enable_cache) {
    PlannedQuery out = PlanUncached(f, db, cache);
    if (options_.enable) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.cache_misses += 1;
      stats_.rules_fired += out.rules_fired;
      stats_.shared_subplans += out.shared_subplans;
    }
    obs::Count(obs::kPlanCacheMisses);
    obs::Count(obs::kPlanRulesFired, out.rules_fired);
    obs::Count(obs::kPlanSharedSubplans, out.shared_subplans);
    obs::Count(obs::kPlanEstimatedStates,
               static_cast<int64_t>(out.estimated_states));
    if (span.active()) {
      span.Attr("rules_fired", out.rules_fired);
      span.Attr("est_states", static_cast<int64_t>(out.estimated_states));
    }
    return out;
  }

  uint64_t key = CacheKey(f, db);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      for (const CacheEntry& entry : it->second) {
        if (StructurallyEqual(entry.original, f)) {
          ++stats_.cache_hits;
          obs::Count(obs::kPlanCacheHits);
          PlannedQuery out = entry.planned;
          out.cache_hit = true;
          if (span.active()) {
            span.Attr("cache_hit", 1);
            span.Attr("est_states",
                      static_cast<int64_t>(out.estimated_states));
          }
          return out;
        }
      }
    }
  }

  PlannedQuery out = PlanUncached(f, db, cache);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cache_misses;
    stats_.rules_fired += out.rules_fired;
    stats_.shared_subplans += out.shared_subplans;
    cache_[key].push_back(CacheEntry{f, out, std::nullopt});
    int64_t bytes = PlanEntryBytes(out);
    stats_.bytes += bytes;
    obs::MemAdd(obs::MemCategory::kPlanCache, bytes);
  }
  obs::Count(obs::kPlanCacheMisses);
  obs::Count(obs::kPlanRulesFired, out.rules_fired);
  obs::Count(obs::kPlanSharedSubplans, out.shared_subplans);
  obs::Count(obs::kPlanEstimatedStates,
             static_cast<int64_t>(out.estimated_states));
  if (span.active()) {
    span.Attr("rules_fired", out.rules_fired);
    span.Attr("est_states", static_cast<int64_t>(out.estimated_states));
  }
  return out;
}

void Planner::RecordActual(const FormulaPtr& f, const Database* db,
                           int64_t actual_states) {
  obs::Count(obs::kPlanActualStates, actual_states);
  {
    // The cross-revision record feeds AdvisePatch; it is kept even with the
    // plan cache disabled (patch advice is orthogonal to plan reuse).
    uint64_t h = StructuralHash(f);
    std::lock_guard<std::mutex> lock(mu_);
    if (latest_actuals_.size() > kMaxLatestActuals) latest_actuals_.clear();
    std::vector<LatestActual>& bucket = latest_actuals_[h];
    bool found = false;
    for (LatestActual& entry : bucket) {
      if (StructurallyEqual(entry.formula, f)) {
        entry.actual_states = actual_states;
        found = true;
        break;
      }
    }
    if (!found) bucket.push_back(LatestActual{f, actual_states});
  }
  if (!options_.enable || !options_.enable_cache) return;
  uint64_t key = CacheKey(f, db);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  for (CacheEntry& entry : it->second) {
    if (StructurallyEqual(entry.original, f)) {
      entry.actual_states = actual_states;
      return;
    }
  }
}

std::optional<int64_t> Planner::ActualFor(const FormulaPtr& f,
                                          const Database* db) const {
  uint64_t key = CacheKey(f, db);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return std::nullopt;
  for (const CacheEntry& entry : it->second) {
    if (StructurallyEqual(entry.original, f)) return entry.actual_states;
  }
  return std::nullopt;
}

std::optional<int64_t> Planner::LastActualFor(const FormulaPtr& f) const {
  uint64_t h = StructuralHash(f);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_actuals_.find(h);
  if (it == latest_actuals_.end()) return std::nullopt;
  for (const LatestActual& entry : it->second) {
    if (StructurallyEqual(entry.formula, f)) return entry.actual_states;
  }
  return std::nullopt;
}

bool Planner::AdvisePatch(const FormulaPtr& f, int64_t delta_ops,
                          const AutomatonStore::Stats& store) const {
  if (delta_ops <= 0) return false;
  std::optional<int64_t> actual = LastActualFor(f);
  // Never-compiled plans have no recompile-cost estimate to beat: patch
  // only deltas small enough to be safe under any answer size.
  if (!actual.has_value()) return delta_ops <= 16;
  // Patch cost scales with the delta trie (a handful of states per tuple
  // write plus one union/difference product each); recompile cost scales
  // with rebuilding an answer of the recorded size. A warm computed table
  // halves the expected product cost (the patch's operands are interned
  // handles the store has likely combined before).
  bool warm_ops = store.op_hits >= store.op_misses;
  int64_t patch_cost = delta_ops * (warm_ops ? 4 : 8);
  return patch_cost <= *actual + 64;
}

bool Planner::AdviseLazy(const FormulaPtr& f, double estimated_states) const {
  // A recorded actual from a prior full compile is the strongest signal:
  // small answer automata are cheaper to materialize once than to chase
  // lazily on every request.
  std::optional<int64_t> actual = LastActualFor(f);
  if (actual.has_value()) return *actual > 64;
  // Otherwise trust the cost model's root estimate; a tiny estimate means
  // the eager pipeline finishes in microseconds anyway.
  return !(estimated_states > 0 && estimated_states <= 64);
}

Planner::Stats Planner::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Planner::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  obs::MemAdd(obs::MemCategory::kPlanCache, -stats_.bytes);
  stats_.bytes = 0;
}

}  // namespace plan
}  // namespace strq
