#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

namespace strq {
namespace plan {

namespace {

constexpr double kMaxEstimate = 1e15;

double Clamp(double v) {
  if (v < 1.0) return 1.0;
  return std::min(v, kMaxEstimate);
}

int TermNodes(const TermPtr& t) {
  if (t == nullptr) return 0;
  return 1 + TermNodes(t->arg0) + TermNodes(t->arg1);
}

// Extra states charged for composite terms: every non-variable term node
// introduces a fresh track, a graph atom and a projection in the compiler.
double TermOverhead(const std::vector<TermPtr>& args) {
  int nodes = 0;
  for (const TermPtr& t : args) nodes += TermNodes(t) - 1;
  return 1.0 + 2.0 * nodes;
}

int SharedVars(const std::set<std::string>& a, const std::set<std::string>& b) {
  int n = 0;
  const std::set<std::string>& small = a.size() <= b.size() ? a : b;
  const std::set<std::string>& big = a.size() <= b.size() ? b : a;
  for (const std::string& v : small) n += big.count(v) ? 1 : 0;
  return n;
}

}  // namespace

double CostModel::ProductEstimate(double a, double b, int shared_vars) {
  // Disjoint tracks multiply exactly; each shared track constrains the
  // product, modeled as a damping divisor. Never below the larger operand's
  // square root — a product rarely collapses below that in practice.
  double p = a * b / (1.0 + 2.0 * shared_vars);
  return Clamp(std::max(p, std::sqrt(std::max(a, b))));
}

double CostModel::AdomEstimate() const {
  if (db_ == nullptr) return 8.0;
  // A trie over adom has at most total-characters + 1 states; estimate the
  // string count from relation cardinalities without materializing adom.
  double strings = 0;
  for (const auto& [name, rel] : db_->relations()) {
    strings += static_cast<double>(rel.size()) * rel.arity();
  }
  double avg_len = static_cast<double>(db_->MaxAdomLength()) / 2.0 + 1.0;
  return Clamp(strings * avg_len + 1.0);
}

double CostModel::LeafEstimate(const FormulaPtr& atom) const {
  switch (atom->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return 1.0;
    case FormulaKind::kRelation: {
      const Relation* rel =
          db_ != nullptr ? db_->Find(atom->relation) : nullptr;
      double base = 8.0;
      if (rel != nullptr) {
        double avg_len =
            static_cast<double>(db_->MaxAdomLength()) / 2.0 + 1.0;
        base = static_cast<double>(rel->size()) * rel->arity() * avg_len + 1.0;
      }
      return Clamp(base * TermOverhead(atom->args));
    }
    case FormulaKind::kPred: {
      double base = 2.0;
      switch (atom->pred) {
        case PredKind::kEq:
        case PredKind::kPrefix:
        case PredKind::kLast:
        case PredKind::kEqLen:
        case PredKind::kLeqLen:
          base = 2.0;
          break;
        case PredKind::kStrictPrefix:
        case PredKind::kOneStep:
          base = 3.0;
          break;
        case PredKind::kLexLeq:
          base = 4.0;
          break;
        case PredKind::kAdom:
          base = AdomEstimate();
          break;
        case PredKind::kMember:
        case PredKind::kLike:
        case PredKind::kSuffixIn: {
          // Observed size when the pattern was compiled before; otherwise a
          // syntax-driven guess (each literal/class roughly one state).
          base = 2.0 * static_cast<double>(atom->pattern.size()) + 2.0;
          if (cache_ != nullptr) {
            if (std::optional<DfaRef> dfa =
                    cache_->PeekPattern(atom->pattern, atom->syntax)) {
              base = static_cast<double>((*dfa)->num_states()) + 1.0;
            }
          }
          if (atom->pred == PredKind::kSuffixIn) base += 2.0;
          break;
        }
        case PredKind::kNear:
          // A Levenshtein DFA for word w with budget k has O(|w|·k) states.
          base = 2.0 * static_cast<double>(atom->pattern.size()) *
                     (atom->distance + 1) +
                 2.0;
          break;
      }
      return Clamp(base * TermOverhead(atom->args));
    }
    default:
      // Non-atom formulas are not leaves; Annotate handles them.
      return 8.0;
  }
}

double CostModel::Annotate(const PlanNode* n) const {
  double est = 1.0;
  switch (n->kind) {
    case NodeKind::kLeaf:
      est = LeafEstimate(n->leaf);
      break;
    case NodeKind::kNot:
      // Complement relative to Valid of a deterministic automaton is
      // size-preserving (plus the sink).
      est = Annotate(n->children[0]) + 1.0;
      break;
    case NodeKind::kAnd: {
      est = Annotate(n->children[0]);
      std::set<std::string> seen = n->children[0]->free_vars;
      for (size_t i = 1; i < n->children.size(); ++i) {
        double c = Annotate(n->children[i]);
        est = ProductEstimate(est, c,
                              SharedVars(seen, n->children[i]->free_vars));
        seen.insert(n->children[i]->free_vars.begin(),
                    n->children[i]->free_vars.end());
      }
      break;
    }
    case NodeKind::kOr: {
      est = 0.0;
      for (const PlanNode* c : n->children) est += Annotate(c);
      est = Clamp(est);
      break;
    }
    case NodeKind::kQuant: {
      double body = Annotate(n->children[0]);
      if (n->range != QuantRange::kAll) {
        // Range constraint intersected before projecting.
        body = ProductEstimate(body, AdomEstimate(), 1);
      }
      // Projection can force a re-determinization; ∀ adds complements on
      // both sides of the projection (¬∃¬).
      est = Clamp(body * (n->is_forall ? 2.0 : 1.25));
      break;
    }
  }
  n->est_states = est;
  return est;
}

}  // namespace plan
}  // namespace strq
