#ifndef STRQ_PLAN_COST_MODEL_H_
#define STRQ_PLAN_COST_MODEL_H_

#include "mta/atom_cache.h"
#include "plan/plan_ir.h"
#include "relational/database.h"

namespace strq {
namespace plan {

// Estimates the number of states of the track automaton each plan node
// compiles to. The absolute numbers are rough; what the planner needs is a
// *monotone ordering signal* for conjunct/disjunct reordering, seeded from
// what has actually been observed:
//
//   * pattern leaves ask AtomCache::PeekPattern for the real DFA size when
//     the pattern was compiled before (warm caches make later plans more
//     accurate — the feedback loop the store statistics provide);
//   * database leaves are priced from relation cardinalities and string
//     lengths (a trie over the tuples has at most total-characters states);
//   * built-in predicate atoms have small closed-form sizes (they are fixed
//     automatic relations, see mta/atoms.h);
//   * products multiply, damped by the number of shared variables (shared
//     tracks constrain the product; disjoint tracks really do multiply);
//   * unions add; complement is size-preserving (the store complements
//     relative to Valid on an already-deterministic automaton); projection
//     can re-determinize, charged a small blow-up factor.
//
// Both the db and the cache may be null: the model then falls back to the
// closed forms (used by tests and by planning before a database exists).
class CostModel {
 public:
  CostModel(const Database* db, const AtomCache* cache)
      : db_(db), cache_(cache) {}

  // Recursively estimates `n` and annotates every node's est_states.
  // Idempotent; returns the root estimate.
  double Annotate(const PlanNode* n) const;

  // Leaf pricing, exposed for tests and for the reorder rule.
  double LeafEstimate(const FormulaPtr& atom) const;

  // Estimated states of the product of two subautomata that share
  // `shared_vars` tracks.
  static double ProductEstimate(double a, double b, int shared_vars);

 private:
  double AdomEstimate() const;

  const Database* db_;
  const AtomCache* cache_;
};

}  // namespace plan
}  // namespace strq

#endif  // STRQ_PLAN_COST_MODEL_H_
