#include "plan/rules.h"

#include <algorithm>
#include <numeric>

namespace strq {
namespace plan {

namespace {

bool IsTrueLeaf(const PlanNode* n) {
  return n->kind == NodeKind::kLeaf && n->leaf->kind == FormulaKind::kTrue;
}
bool IsFalseLeaf(const PlanNode* n) {
  return n->kind == NodeKind::kLeaf && n->leaf->kind == FormulaKind::kFalse;
}

bool Parameterized(QuantRange r) {
  return r == QuantRange::kPrefixDom || r == QuantRange::kLenDom;
}

std::set<std::string> ParamsOf(const std::set<std::string>& body_fv,
                               const std::string& var) {
  std::set<std::string> out = body_fv;
  out.erase(var);
  return out;
}

// ---- Negation pushdown ---------------------------------------------------

const PlanNode* Push(RewriteContext& ctx, const PlanNode* n, bool negate) {
  PlanStore& store = *ctx.store;
  switch (n->kind) {
    case NodeKind::kLeaf:
      if (!negate) return n;
      if (IsTrueLeaf(n)) {
        ++ctx.fired;
        return store.False();
      }
      if (IsFalseLeaf(n)) {
        ++ctx.fired;
        return store.True();
      }
      return store.Not(n);
    case NodeKind::kNot:
      if (negate) ++ctx.fired;  // double negation eliminated
      return Push(ctx, n->children[0], !negate);
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<const PlanNode*> kids;
      kids.reserve(n->children.size());
      for (const PlanNode* c : n->children) kids.push_back(Push(ctx, c, negate));
      bool is_and = (n->kind == NodeKind::kAnd) != negate;
      if (negate) ++ctx.fired;  // De Morgan
      return is_and ? store.And(std::move(kids)) : store.Or(std::move(kids));
    }
    case NodeKind::kQuant: {
      // ¬∀x∈R φ ≡ ∃x∈R ¬φ and dually, for every range kind (the engines
      // themselves implement ∀ as ¬∃¬; see simplify.h).
      const PlanNode* body = Push(ctx, n->children[0], negate);
      if (negate) ++ctx.fired;
      return store.Quant(negate ? !n->is_forall : n->is_forall, n->var,
                         n->range, body);
    }
  }
  return n;
}

}  // namespace

const PlanNode* PushNegations(RewriteContext& ctx, const PlanNode* n) {
  return Push(ctx, n, false);
}

// ---- Miniscoping ---------------------------------------------------------

namespace {

// Rewrites Quant(is_forall, var, range, body) after `body` has itself been
// miniscoped. Returns an equivalent plan with the quantifier pushed as deep
// as the soundness gates allow.
const PlanNode* RewriteQuant(RewriteContext& ctx, bool is_forall,
                             const std::string& var, QuantRange range,
                             const PlanNode* body) {
  PlanStore& store = *ctx.store;
  std::set<std::string> params_before = ParamsOf(body->free_vars, var);

  // Extraction: ∃x∈R (IN ∧ OUT) ≡ OUT ∧ ∃x∈R IN, and dually
  // ∀x∈R (IN ∨ OUT) ≡ OUT ∨ ∀x∈R IN, where x ∉ FV(OUT). Both equivalences
  // hold for EVERY range, including empty ones (empty R makes ∃ false and
  // ∀ true on both sides). For parameterized ranges the remaining body must
  // keep the full parameter set, otherwise the range itself would change.
  NodeKind extract_from = is_forall ? NodeKind::kOr : NodeKind::kAnd;
  if (body->kind == extract_from) {
    std::vector<const PlanNode*> in;
    std::vector<const PlanNode*> out;
    for (const PlanNode* c : body->children) {
      (c->free_vars.count(var) ? in : out).push_back(c);
    }
    if (!out.empty()) {
      const PlanNode* inner =
          is_forall ? store.Or(std::move(in)) : store.And(std::move(in));
      bool gate_ok = !Parameterized(range) ||
                     ParamsOf(inner->free_vars, var) == params_before;
      if (gate_ok) {
        ++ctx.fired;
        const PlanNode* q =
            RewriteQuant(ctx, is_forall, var, range, inner);
        out.push_back(q);
        return is_forall ? store.Or(std::move(out))
                         : store.And(std::move(out));
      }
    }
  }

  // Distribution: ∀x∈R (φ1 ∧ … ∧ φn) ≡ ∀x∈R φ1 ∧ … ∧ ∀x∈R φn, and dually
  // ∃ over ∨ — sound for any fixed range R. Only worthwhile (and only a
  // scope *shrink*) when some child drops the variable; gated on per-child
  // parameter preservation for parameterized ranges, since each child
  // becomes its own quantifier body.
  NodeKind distribute_over = is_forall ? NodeKind::kAnd : NodeKind::kOr;
  if (body->kind == distribute_over) {
    bool shrinks = false;
    bool gate_ok = true;
    for (const PlanNode* c : body->children) {
      if (!c->free_vars.count(var)) shrinks = true;
      if (Parameterized(range) &&
          ParamsOf(c->free_vars, var) != params_before) {
        gate_ok = false;
      }
    }
    if (shrinks && gate_ok) {
      ++ctx.fired;
      std::vector<const PlanNode*> kids;
      kids.reserve(body->children.size());
      for (const PlanNode* c : body->children) {
        kids.push_back(RewriteQuant(ctx, is_forall, var, range, c));
      }
      return is_forall ? store.And(std::move(kids))
                       : store.Or(std::move(kids));
    }
  }

  return store.Quant(is_forall, var, range, body);
}

}  // namespace

const PlanNode* Miniscope(RewriteContext& ctx, const PlanNode* n) {
  PlanStore& store = *ctx.store;
  switch (n->kind) {
    case NodeKind::kLeaf:
      return n;
    case NodeKind::kNot:
      return store.Not(Miniscope(ctx, n->children[0]));
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<const PlanNode*> kids;
      kids.reserve(n->children.size());
      for (const PlanNode* c : n->children) kids.push_back(Miniscope(ctx, c));
      return n->kind == NodeKind::kAnd ? store.And(std::move(kids))
                                       : store.Or(std::move(kids));
    }
    case NodeKind::kQuant:
      return RewriteQuant(ctx, n->is_forall, n->var, n->range,
                          Miniscope(ctx, n->children[0]));
  }
  return n;
}

// ---- Dead-plan pruning ---------------------------------------------------

namespace {

// member/like(x, pattern) with a plain variable argument: the only leaf
// shape the conjunction emptiness probe understands.
bool IsSingleVarPatternAtom(const PlanNode* n, std::string* var) {
  if (n->kind != NodeKind::kLeaf) return false;
  const Formula& f = *n->leaf;
  if (f.kind != FormulaKind::kPred) return false;
  if (f.pred != PredKind::kMember && f.pred != PredKind::kLike) return false;
  if (f.args.size() != 1 || f.args[0]->kind != TermKind::kVar) return false;
  *var = f.args[0]->var;
  return true;
}

// True when two pattern conjuncts over the same variable provably have
// empty language intersection. Only consults already-compiled patterns
// (PeekPattern) and the store's early-exit emptiness decider, so the probe
// costs at most one pair worklist over minimal DFAs — never a compilation.
bool ConjunctionProvablyEmpty(const std::vector<const PlanNode*>& kids,
                              const AtomCache* cache) {
  if (cache == nullptr) return false;
  std::vector<std::pair<std::string, DfaRef>> langs;
  for (const PlanNode* c : kids) {
    std::string var;
    if (!IsSingleVarPatternAtom(c, &var)) continue;
    std::optional<DfaRef> lang =
        cache->PeekPattern(c->leaf->pattern, c->leaf->syntax);
    if (!lang.has_value()) continue;
    for (const auto& [other_var, other_lang] : langs) {
      if (other_var != var) continue;
      Result<bool> empty =
          cache->store().IsIntersectionEmpty(other_lang, *lang);
      if (empty.ok() && *empty) return true;
    }
    langs.emplace_back(var, *std::move(lang));
  }
  return false;
}

}  // namespace

const PlanNode* PruneDead(RewriteContext& ctx, const PlanNode* n,
                          const AtomCache* cache) {
  PlanStore& store = *ctx.store;
  switch (n->kind) {
    case NodeKind::kLeaf:
      return n;
    case NodeKind::kNot: {
      const PlanNode* c = PruneDead(ctx, n->children[0], cache);
      if (IsTrueLeaf(c)) {
        ++ctx.fired;
        return store.False();
      }
      if (IsFalseLeaf(c)) {
        ++ctx.fired;
        return store.True();
      }
      if (c->kind == NodeKind::kNot) {
        ++ctx.fired;
        return c->children[0];
      }
      return store.Not(c);
    }
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      bool is_and = n->kind == NodeKind::kAnd;
      std::vector<const PlanNode*> kids;
      for (const PlanNode* raw : n->children) {
        const PlanNode* c = PruneDead(ctx, raw, cache);
        // Unit and zero elements.
        if (is_and ? IsTrueLeaf(c) : IsFalseLeaf(c)) {
          ++ctx.fired;
          continue;
        }
        if (is_and ? IsFalseLeaf(c) : IsTrueLeaf(c)) {
          ++ctx.fired;
          return is_and ? store.False() : store.True();
        }
        // Idempotence: hash-consing makes structurally equal subplans the
        // same pointer, so duplicate elimination is a pointer scan.
        if (std::find(kids.begin(), kids.end(), c) != kids.end()) {
          ++ctx.fired;
          continue;
        }
        kids.push_back(c);
      }
      if (is_and && ConjunctionProvablyEmpty(kids, cache)) {
        ++ctx.fired;
        return store.False();
      }
      return is_and ? store.And(std::move(kids)) : store.Or(std::move(kids));
    }
    case NodeKind::kQuant: {
      const PlanNode* body = PruneDead(ctx, n->children[0], cache);
      if (!body->free_vars.count(n->var)) {
        // The variable's track is dead. Drop the quantifier when the range
        // is provably non-empty: Σ* always, ↓adom always contains ε, and
        // the prefix range contains ε as soon as it has a parameter. The
        // kAdom range (and a parameterless prefix range) can be empty on an
        // empty database, so those quantifiers stay.
        bool nonempty =
            n->range == QuantRange::kAll || n->range == QuantRange::kLenDom ||
            (n->range == QuantRange::kPrefixDom && !body->free_vars.empty());
        if (nonempty) {
          ++ctx.fired;
          return body;
        }
      }
      return store.Quant(n->is_forall, n->var, n->range, body);
    }
  }
  return n;
}

// ---- Cost-based reordering -----------------------------------------------

namespace {

int SharedCount(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  int out = 0;
  const std::set<std::string>& small = a.size() <= b.size() ? a : b;
  const std::set<std::string>& big = a.size() <= b.size() ? b : a;
  for (const std::string& v : small) out += big.count(v) ? 1 : 0;
  return out;
}

// Greedy smallest-product-first order: start from the cheapest conjunct,
// then repeatedly append the conjunct whose product with the accumulated
// prefix is estimated cheapest (sharing tracks with the prefix damps the
// product, so well-connected conjuncts are preferred over disjoint ones).
std::vector<const PlanNode*> GreedyAndOrder(
    const std::vector<const PlanNode*>& children) {
  std::vector<const PlanNode*> rest = children;
  std::vector<const PlanNode*> out;
  auto cheapest = std::min_element(
      rest.begin(), rest.end(), [](const PlanNode* a, const PlanNode* b) {
        if (a->est_states != b->est_states) {
          return a->est_states < b->est_states;
        }
        return a->id < b->id;
      });
  out.push_back(*cheapest);
  rest.erase(cheapest);
  double acc_est = out[0]->est_states;
  std::set<std::string> acc_vars = out[0]->free_vars;
  while (!rest.empty()) {
    auto best = rest.begin();
    double best_cost = -1;
    for (auto it = rest.begin(); it != rest.end(); ++it) {
      double c = CostModel::ProductEstimate(
          acc_est, (*it)->est_states, SharedCount(acc_vars, (*it)->free_vars));
      if (best_cost < 0 || c < best_cost ||
          (c == best_cost && (*it)->id < (*best)->id)) {
        best_cost = c;
        best = it;
      }
    }
    acc_est = best_cost;
    acc_vars.insert((*best)->free_vars.begin(), (*best)->free_vars.end());
    out.push_back(*best);
    rest.erase(best);
  }
  return out;
}

}  // namespace

const PlanNode* Reorder(RewriteContext& ctx, const PlanNode* n,
                        const CostModel& cost) {
  PlanStore& store = *ctx.store;
  switch (n->kind) {
    case NodeKind::kLeaf:
      return n;
    case NodeKind::kNot:
      return store.Not(Reorder(ctx, n->children[0], cost));
    case NodeKind::kQuant:
      return store.Quant(n->is_forall, n->var, n->range,
                         Reorder(ctx, n->children[0], cost));
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::vector<const PlanNode*> kids;
      kids.reserve(n->children.size());
      for (const PlanNode* c : n->children) {
        kids.push_back(Reorder(ctx, c, cost));
      }
      // A binary product is the same automaton either way round; only with
      // three or more operands does the fold order shape the intermediates.
      if (kids.size() >= 3) {
        for (const PlanNode* c : kids) cost.Annotate(c);
        std::vector<const PlanNode*> ordered;
        if (n->kind == NodeKind::kAnd) {
          ordered = GreedyAndOrder(kids);
        } else {
          ordered = kids;
          std::stable_sort(ordered.begin(), ordered.end(),
                           [](const PlanNode* a, const PlanNode* b) {
                             return a->est_states < b->est_states;
                           });
        }
        if (ordered != kids) ++ctx.fired;
        kids = std::move(ordered);
      }
      return n->kind == NodeKind::kAnd ? store.And(std::move(kids))
                                       : store.Or(std::move(kids));
    }
  }
  return n;
}

}  // namespace plan
}  // namespace strq
