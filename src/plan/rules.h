#ifndef STRQ_PLAN_RULES_H_
#define STRQ_PLAN_RULES_H_

#include <cstdint>

#include "plan/cost_model.h"
#include "plan/plan_ir.h"

namespace strq {
namespace plan {

// Soundness-preserving plan rewrites. Each rule is a pure function
// IR → IR over a shared PlanStore and bumps `ctx.fired` once per local
// rewrite it performs, so the planner can report plan.rules_fired.
//
// The soundness obligations the rules discharge (tests/plan/rules_test.cc
// exercises each one):
//
//   * kPrefixDom/kLenDom quantifier ranges are PARAMETERIZED by the free
//     variables of the body (∃x ≼ dom means "x is a prefix of an adom
//     string or of a parameter value"; both engines compute the parameter
//     set as FreeVars(body) \ {x}). Any rewrite that shrinks a quantifier
//     body's free-variable set changes the range itself, so miniscoping is
//     gated on parameter-set preservation for those ranges. kAll and kAdom
//     are parameter-free and never gated.
//   * kAdom and kPrefixDom ranges can be EMPTY (empty database, no
//     parameters), so rewrites that hold only over non-empty domains
//     (∃x∈R (φ ∨ ψ) ≡ ψ ∨ ∃x∈R φ with x ∉ FV(ψ)) are restricted to the
//     provably non-empty kAll. The always-sound forms are used instead:
//     ∃x∈R (φ ∧ ψ) ≡ ψ ∧ ∃x∈R φ and ∀x∈R (φ ∨ ψ) ≡ ψ ∨ ∀x∈R φ hold for
//     every range including the empty one, and ∀/∃ distribute over ∧/∨
//     for any fixed range.
struct RewriteContext {
  PlanStore* store;
  int64_t fired = 0;
};

// Negation pushdown: De Morgan through And/Or, double-negation elimination,
// dualization through quantifiers (∀x∈R φ ≡ ¬∃x∈R ¬φ holds for every range
// kind). Runs ahead of complement: the automata engine complements exactly
// where kNot/kForall remain, so pushing negation to the leaves replaces one
// complement of a large product by small complements of atoms.
const PlanNode* PushNegations(RewriteContext& ctx, const PlanNode* n);

// Quantifier miniscoping / early projection of dead tracks: pushes each
// quantifier into the smallest sub-conjunction that mentions its variable,
// so the variable's track is projected away right after the conjuncts that
// constrain it — dead tracks never reach the outer products. Applies the
// extraction and distribution forms listed above, with the range gates.
const PlanNode* Miniscope(RewriteContext& ctx, const PlanNode* n);

// Dead-plan pruning: unit/zero elimination in And/Or (constant leaves),
// duplicate-child elimination (pointer equality — hash-consing makes
// structurally equal subplans one node), ¬true/¬false folding, and
// unused-variable quantifier elimination for ranges that are provably
// non-empty (kAll always; kLenDom always contains ε).
//
// With a non-null `cache`, conjunctions additionally get an emptiness
// probe: two single-variable pattern conjuncts member/like(x, L1) ∧
// member/like(x, L2) over the same x whose patterns are both already
// compiled (PeekPattern only — the probe never compiles) and whose
// languages have empty intersection (the store's early-exit
// IsIntersectionEmpty) fold the whole conjunction to false.
const PlanNode* PruneDead(RewriteContext& ctx, const PlanNode* n,
                          const AtomCache* cache = nullptr);

// Cost-based conjunct/disjunct reordering: annotates the subtree with the
// cost model, then greedily orders And children smallest-first, preferring
// children that share variables with what has been folded so far (shared
// tracks damp the product); Or children are sorted by ascending estimate.
// Fires only on nodes with three or more children — a binary product is
// the same automaton in either order.
const PlanNode* Reorder(RewriteContext& ctx, const PlanNode* n,
                        const CostModel& cost);

}  // namespace plan
}  // namespace strq

#endif  // STRQ_PLAN_RULES_H_
