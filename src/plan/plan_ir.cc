#include "plan/plan_ir.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

namespace strq {
namespace plan {

namespace {

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 1099511628211ULL;
}

uint64_t NodeHash(const PlanNode& n) {
  uint64_t h = HashMix(0x9a17u, static_cast<uint64_t>(n.kind));
  if (n.kind == NodeKind::kLeaf) {
    h = HashMix(h, StructuralHash(n.leaf));
  }
  for (const PlanNode* c : n.children) {
    h = HashMix(h, static_cast<uint64_t>(c->id) + 1);
  }
  if (n.kind == NodeKind::kQuant) {
    h = HashMix(h, n.is_forall ? 2 : 1);
    h = HashMix(h, n.var.size());
    for (unsigned char c : n.var) h = HashMix(h, c);
    h = HashMix(h, static_cast<uint64_t>(n.range));
  }
  return h;
}

// Structural equality of candidate vs interned node. Children compare by
// pointer: they are already interned.
bool NodeEqual(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind || a.children != b.children) return false;
  if (a.kind == NodeKind::kLeaf && !StructurallyEqual(a.leaf, b.leaf)) {
    return false;
  }
  if (a.kind == NodeKind::kQuant &&
      (a.is_forall != b.is_forall || a.var != b.var || a.range != b.range)) {
    return false;
  }
  return true;
}

}  // namespace

const PlanNode* PlanStore::Intern(PlanNode n) {
  n.hash = NodeHash(n);
  auto& bucket = table_[n.hash];
  for (const PlanNode* existing : bucket) {
    if (NodeEqual(*existing, n)) {
      ++shared_hits_;
      return existing;
    }
  }
  n.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::make_unique<PlanNode>(std::move(n)));
  const PlanNode* out = nodes_.back().get();
  bucket.push_back(out);
  return out;
}

const PlanNode* PlanStore::True() { return Leaf(FTrue()); }
const PlanNode* PlanStore::False() { return Leaf(FFalse()); }

const PlanNode* PlanStore::Leaf(FormulaPtr atom) {
  assert(atom != nullptr);
  PlanNode n;
  n.kind = NodeKind::kLeaf;
  n.free_vars = FreeVars(atom);
  n.leaf = std::move(atom);
  return Intern(std::move(n));
}

const PlanNode* PlanStore::Not(const PlanNode* a) {
  PlanNode n;
  n.kind = NodeKind::kNot;
  n.children = {a};
  n.free_vars = a->free_vars;
  return Intern(std::move(n));
}

const PlanNode* PlanStore::And(std::vector<const PlanNode*> children) {
  std::vector<const PlanNode*> flat;
  for (const PlanNode* c : children) {
    if (c->kind == NodeKind::kAnd) {
      flat.insert(flat.end(), c->children.begin(), c->children.end());
    } else {
      flat.push_back(c);
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  PlanNode n;
  n.kind = NodeKind::kAnd;
  for (const PlanNode* c : flat) {
    n.free_vars.insert(c->free_vars.begin(), c->free_vars.end());
  }
  n.children = std::move(flat);
  return Intern(std::move(n));
}

const PlanNode* PlanStore::Or(std::vector<const PlanNode*> children) {
  std::vector<const PlanNode*> flat;
  for (const PlanNode* c : children) {
    if (c->kind == NodeKind::kOr) {
      flat.insert(flat.end(), c->children.begin(), c->children.end());
    } else {
      flat.push_back(c);
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  PlanNode n;
  n.kind = NodeKind::kOr;
  for (const PlanNode* c : flat) {
    n.free_vars.insert(c->free_vars.begin(), c->free_vars.end());
  }
  n.children = std::move(flat);
  return Intern(std::move(n));
}

const PlanNode* PlanStore::Quant(bool is_forall, std::string var,
                                 QuantRange range, const PlanNode* body) {
  PlanNode n;
  n.kind = NodeKind::kQuant;
  n.children = {body};
  n.is_forall = is_forall;
  n.free_vars = body->free_vars;
  n.free_vars.erase(var);
  // Parameterized ranges mention the parameters in the range itself, so
  // they stay free even if the body drops them — but parameters ARE free
  // variables of the body by definition (FreeVars(body) \ {var}), so the
  // set above is already correct for every range kind.
  n.var = std::move(var);
  n.range = range;
  return Intern(std::move(n));
}

const PlanNode* Lower(PlanStore& store, const FormulaPtr& f) {
  switch (f->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kPred:
    case FormulaKind::kRelation:
      return store.Leaf(f);
    case FormulaKind::kNot:
      return store.Not(Lower(store, f->left));
    case FormulaKind::kAnd:
      return store.And({Lower(store, f->left), Lower(store, f->right)});
    case FormulaKind::kOr:
      return store.Or({Lower(store, f->left), Lower(store, f->right)});
    case FormulaKind::kImplies: {
      const PlanNode* a = Lower(store, f->left);
      const PlanNode* b = Lower(store, f->right);
      return store.Or({store.Not(a), b});
    }
    case FormulaKind::kIff: {
      const PlanNode* a = Lower(store, f->left);
      const PlanNode* b = Lower(store, f->right);
      return store.And({store.Or({store.Not(a), b}),
                        store.Or({store.Not(b), a})});
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return store.Quant(f->kind == FormulaKind::kForall, f->var, f->range,
                         Lower(store, f->left));
  }
  return store.True();
}

FormulaPtr Render(const PlanNode* n) { return Render(n, nullptr); }

FormulaPtr Render(const PlanNode* n,
                  std::unordered_set<const Formula*>* parallel_folds) {
  switch (n->kind) {
    case NodeKind::kLeaf:
      return n->leaf;
    case NodeKind::kNot:
      return FNot(Render(n->children[0], parallel_folds));
    case NodeKind::kAnd: {
      FormulaPtr out = Render(n->children[0], parallel_folds);
      for (size_t i = 1; i < n->children.size(); ++i) {
        out = FAnd(out, Render(n->children[i], parallel_folds));
        if (parallel_folds != nullptr) parallel_folds->insert(out.get());
      }
      return out;
    }
    case NodeKind::kOr: {
      FormulaPtr out = Render(n->children[0], parallel_folds);
      for (size_t i = 1; i < n->children.size(); ++i) {
        out = FOr(out, Render(n->children[i], parallel_folds));
        if (parallel_folds != nullptr) parallel_folds->insert(out.get());
      }
      return out;
    }
    case NodeKind::kQuant: {
      FormulaPtr body = Render(n->children[0], parallel_folds);
      return n->is_forall ? FForall(n->var, std::move(body), n->range)
                          : FExists(n->var, std::move(body), n->range);
    }
  }
  return FTrue();
}

namespace {

const char* RangeName(QuantRange r) {
  switch (r) {
    case QuantRange::kAll: return "";
    case QuantRange::kAdom: return " in adom";
    case QuantRange::kPrefixDom: return " pre adom";
    case QuantRange::kLenDom: return " len adom";
  }
  return "";
}

void PrettyRec(const PlanNode* n, const std::string& indent, bool last,
               std::string* out) {
  *out += indent;
  if (!indent.empty()) *out += last ? "`- " : "|- ";
  char buf[96];
  switch (n->kind) {
    case NodeKind::kLeaf: {
      std::string text = ToString(n->leaf);
      if (text.size() > 48) {
        text.resize(48);
        text += "...";
      }
      *out += "leaf " + text;
      break;
    }
    case NodeKind::kNot:
      *out += "not";
      break;
    case NodeKind::kAnd:
      std::snprintf(buf, sizeof(buf), "and (%zu)", n->children.size());
      *out += buf;
      break;
    case NodeKind::kOr:
      std::snprintf(buf, sizeof(buf), "or (%zu)", n->children.size());
      *out += buf;
      break;
    case NodeKind::kQuant:
      *out += n->is_forall ? "forall " : "exists ";
      *out += n->var;
      *out += RangeName(n->range);
      break;
  }
  if (n->est_states > 0) {
    std::snprintf(buf, sizeof(buf), "  est=%.0f", n->est_states);
    *out += buf;
  }
  if (!n->free_vars.empty()) {
    *out += "  fv={";
    bool first = true;
    for (const std::string& v : n->free_vars) {
      if (!first) *out += ",";
      *out += v;
      first = false;
    }
    *out += "}";
  }
  *out += "\n";
  std::string next = indent.empty() ? "  " : indent + (last ? "   " : "|  ");
  for (size_t i = 0; i < n->children.size(); ++i) {
    PrettyRec(n->children[i], next, i + 1 == n->children.size(), out);
  }
}

}  // namespace

std::string Pretty(const PlanNode* n) {
  std::string out;
  PrettyRec(n, "", true, &out);
  return out;
}

}  // namespace plan
}  // namespace strq
