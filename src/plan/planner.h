#ifndef STRQ_PLAN_PLANNER_H_
#define STRQ_PLAN_PLANNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "logic/ast.h"
#include "mta/atom_cache.h"
#include "plan/plan_ir.h"
#include "relational/database.h"

namespace strq {
namespace plan {

// Per-rule toggles. The master switch (`enable`) short-circuits everything:
// the planned formula is then the input formula, untouched — the planner-off
// rows of bench_ablation and the differential fuzz baseline.
struct PlannerOptions {
  bool enable = true;
  // Constant folding / simplification (the logic/simplify.h passes, run as
  // the planner's first rule on the AST — Simplify() remains the thin
  // standalone wrapper for callers that want AST-level output only).
  bool enable_fold = true;
  // Negation pushdown ahead of complement (De Morgan + quantifier duality).
  bool enable_negation_pushdown = true;
  // Quantifier miniscoping / early projection of dead tracks.
  bool enable_miniscope = true;
  // Dead-plan pruning: unit/zero/duplicate elimination, unused-variable
  // quantifier removal over provably non-empty ranges.
  bool enable_prune = true;
  // Cost-based conjunct/disjunct reordering.
  bool enable_reorder = true;
  // Plan cache keyed on the formula's structural hash + database revision.
  bool enable_cache = true;
};

// The result of planning one query.
struct PlannedQuery {
  // What the engines should compile; logically equivalent to the input.
  FormulaPtr formula;
  // Root estimate from the cost model (states of the answer automaton).
  double estimated_states = 0.0;
  // Total local rewrites performed across all rules.
  int64_t rules_fired = 0;
  // Interned plan nodes that were structural repeats (common subplans).
  int64_t shared_subplans = 0;
  // Served from the plan cache?
  bool cache_hit = false;
  // Indented plan tree with per-node estimates (explain's plan phase).
  std::string pretty;
  // Parallelizable-children annotation: the binary And/Or fold nodes of
  // `formula` that Render produced from one n-ary plan node. Their flattened
  // spine children are independent subplans; engines honoring a
  // ParallelOptions knob compile them concurrently and fold the results in
  // planner order. Null when planning is disabled. Shared (not copied) by
  // plan-cache hits; the sets are immutable after planning.
  std::shared_ptr<const std::unordered_set<const Formula*>> parallel_folds;
};

// The planning facade all three engines (and through them the safety
// deciders) route through: AST in, rewritten AST out, with the IR, rules
// and cost model of this directory in between. Thread-safe; share one
// Planner between engines to share its plan cache.
class Planner {
 public:
  struct Stats {
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t rules_fired = 0;
    int64_t shared_subplans = 0;
    // Bytes currently retained by the plan cache (entries, key strings and
    // pretty-printed plan text; the planned formula's AST nodes are shared
    // with callers and counted here once per cached entry). A gauge, not a
    // counter: ClearCache() and the destructor return it to zero, and every
    // delta is mirrored into the process-wide obs::MemCategory::kPlanCache
    // gauge (plan.cache_bytes).
    int64_t bytes = 0;
  };

  explicit Planner(PlannerOptions options = PlannerOptions());
  ~Planner();
  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  const PlannerOptions& options() const { return options_; }

  // Plans `f` against `db` (cost model context; either may be null — the
  // cost model then uses closed-form estimates only). Never fails: the
  // worst case is returning the input formula unchanged (also the fast path
  // taken when the calling request's deadline has already expired — the
  // evaluator's own deadline poll aborts right after, so no rewrite time is
  // spent on a dead request).
  PlannedQuery Plan(const FormulaPtr& f, const Database* db,
                    const AtomCache* cache);

  // The plan-cache key for (f, db): the formula's structural hash mixed with
  // the database revision. Structurally identical queries against the same
  // revision collide here by design — the serving layer keys its in-flight
  // compilation dedup on this value (with a StructurallyEqual guard against
  // genuine hash collisions).
  uint64_t QueryKey(const FormulaPtr& f, const Database* db) const {
    return CacheKey(f, db);
  }

  // Feedback: the actual answer-automaton size observed for the query that
  // was planned as `f` (the ORIGINAL formula). Recorded into the cache
  // entry and the plan.actual_states counter, so estimated-vs-actual drift
  // is visible in explain output and metrics.
  void RecordActual(const FormulaPtr& f, const Database* db,
                    int64_t actual_states);

  // Last recorded actual size for `f`, if any.
  std::optional<int64_t> ActualFor(const FormulaPtr& f,
                                   const Database* db) const;

  // Revision-agnostic variant: the most recently recorded actual size for
  // the structurally-equal formula at ANY database revision. Incremental
  // maintenance consults this across commits (the per-revision entry for
  // the new head does not exist yet when the patch decision is made).
  std::optional<int64_t> LastActualFor(const FormulaPtr& f) const;

  // Patch-vs-recompile advice for incremental answer maintenance: given a
  // delta of `delta_ops` tuple writes against a plan whose last full
  // compile produced LastActualFor(f) states, is patching (delta compile +
  // interned union/difference) expected to beat recompiling? Patch cost
  // scales with the delta; recompile cost with the recorded answer size; a
  // warm store computed table (op_hits ≥ op_misses) discounts the patch's
  // products. Plans with no recorded actual only patch trivial deltas.
  // See docs/INCREMENTAL.md for the policy.
  bool AdvisePatch(const FormulaPtr& f, int64_t delta_ops,
                   const AutomatonStore::Stats& store) const;

  // Lazy-vs-materialize advice for the early-exit query modes (Contains /
  // ExistsWitness / TopK): a query whose last full compile produced a small
  // answer automaton — or, with no recorded actual, whose cost-model
  // estimate is small — is cheaper to materialize outright (the store
  // interns it once and every later mode reuses it) than to re-explore
  // lazily per request. Everything else goes lazy: the on-the-fly product
  // creates only the states the mode's traversal touches.
  bool AdviseLazy(const FormulaPtr& f, double estimated_states) const;

  Stats stats() const;

  // Drops every cached plan and returns Stats.bytes (and the mirrored
  // obs gauge) to zero. Hit/miss counters are left untouched.
  void ClearCache();

 private:
  struct CacheEntry {
    FormulaPtr original;  // collision guard: verified with StructurallyEqual
    PlannedQuery planned;
    std::optional<int64_t> actual_states;
  };

  uint64_t CacheKey(const FormulaPtr& f, const Database* db) const;
  PlannedQuery PlanUncached(const FormulaPtr& f, const Database* db,
                            const AtomCache* cache) const;

  PlannerOptions options_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<CacheEntry>> cache_;
  // Latest actual answer size per structural hash, across revisions (the
  // per-revision record lives in cache_). Bounded: cleared wholesale if it
  // ever exceeds kMaxLatestActuals distinct formulas.
  struct LatestActual {
    FormulaPtr formula;  // collision guard
    int64_t actual_states = 0;
  };
  static constexpr size_t kMaxLatestActuals = 4096;
  std::map<uint64_t, std::vector<LatestActual>> latest_actuals_;
  Stats stats_;
};

}  // namespace plan
}  // namespace strq

#endif  // STRQ_PLAN_PLANNER_H_
